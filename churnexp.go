package rtroute

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtroute/internal/churn"
	"rtroute/internal/sim"
	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
)

// Re-exported churn surface, so drivers configure the dynamic-topology
// plane without importing internal packages.
type (
	// ChurnMix weights the event kinds a churn model draws from.
	ChurnMix = churn.Mix
	// ChurnEvent is one timestamped topology event.
	ChurnEvent = churn.Event
	// DamperOptions tunes the per-link flap damper (RFC 2439 shape).
	DamperOptions = churn.DamperConfig
	// ChurnOverlay drives a mutable graph under churn events.
	ChurnOverlay = churn.Overlay
	// ChurnModel draws seeded, replayable Poisson-clocked event streams.
	ChurnModel = churn.Model
)

// DefaultChurnMix is the standard event-kind weighting.
var DefaultChurnMix = churn.DefaultMix

// ErrUnroutable matches (via errors.Is) roundtrips that failed typed on
// an administratively down link before repair caught up.
var ErrUnroutable = sim.ErrUnroutable

// NewChurnOverlay wraps the system's graph for churn; damper fields at
// zero select the RFC-flavored defaults.
func NewChurnOverlay(g *Graph, damper DamperOptions) (*ChurnOverlay, error) {
	return churn.NewOverlay(g, churn.NewDamper(damper))
}

// NewChurnModel creates a seeded event model over an overlay; the event
// stream is a pure function of (seed, rate, mix).
func NewChurnModel(ov *ChurnOverlay, seed int64, rate float64, mix ChurnMix, maxW Dist) *ChurnModel {
	return churn.NewModel(ov, seed, rate, mix, maxW)
}

// ChurnConfig parameterizes one RunChurn experiment.
type ChurnConfig struct {
	// Kind selects the maintained scheme (default StretchSix).
	Kind SchemeKind
	// Build is the scheme construction config (Seed drives the build).
	Build BuildConfig
	// ChurnSeed seeds the event model (independent of Build.Seed).
	ChurnSeed int64
	// Rate is the churn intensity in events per 10k served packets
	// (default 1). With PacketsPerEpoch it fixes the events per epoch.
	Rate float64
	// Epochs is the number of serve->churn->repair rounds (default 8).
	Epochs int
	// PacketsPerEpoch is the post-repair serving quota per epoch
	// (default 10000).
	PacketsPerEpoch int64
	// StaleFraction sizes the pre-repair serving window as a fraction
	// of PacketsPerEpoch (default 0.05): packets served on stale tables
	// between the topology events and the repair, where typed drops are
	// expected and counted.
	StaleFraction float64
	// Mix weights the event kinds (zero value = DefaultChurnMix).
	Mix ChurnMix
	// MaxWeight bounds perturbed edge weights (default 64).
	MaxWeight Dist
	// MinWeight floors perturbed edge weights (default 1); set it to the
	// graph's weight floor so perturbations stay inside the domain.
	MinWeight Dist
	// Damper tunes flap damping (zero value = defaults).
	Damper DamperOptions
	// Workers is the serving pool size per window (0 = GOMAXPROCS).
	Workers int
	// MaxHops bounds each leg (0 = sim default).
	MaxHops int
	// Workload selects the pair distribution (zero value = uniform).
	Workload TrafficWorkload
	// Certify re-certifies the maintained plane bit-identical to a
	// from-scratch build after every epoch's repair.
	Certify bool
	// Sink, when non-nil, publishes the churn counters as gauges on
	// /metrics (rtroute_churn_*).
	Sink *TelemetrySink
}

func (cfg *ChurnConfig) fill() {
	if cfg.Kind == 0 {
		cfg.Kind = StretchSix
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 8
	}
	if cfg.PacketsPerEpoch <= 0 {
		cfg.PacketsPerEpoch = 10000
	}
	if cfg.StaleFraction <= 0 {
		cfg.StaleFraction = 0.05
	}
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	if cfg.Mix == (ChurnMix{}) {
		cfg.Mix = DefaultChurnMix
	}
}

// ChurnEpoch is one epoch's record.
type ChurnEpoch struct {
	Epoch  int `json:"epoch"`
	Events int `json:"events"`
	// Dirty is the union affected set size; DirtyFrac is Dirty/n — the
	// per-epoch "delta rebuild touched X% of nodes" measurement.
	Dirty     int     `json:"dirty"`
	DirtyFrac float64 `json:"dirty_frac"`
	// Stale window accounting (served on stale tables, pre-repair).
	StaleServed   int64 `json:"stale_served"`
	Drops         int64 `json:"drops"`
	Misroutes     int64 `json:"misroutes"`
	PostServed    int64 `json:"post_served"`
	PostDrops     int64 `json:"post_drops"`
	RepairNs      int64 `json:"repair_ns"`
	CertifyNs     int64 `json:"certify_ns,omitempty"`
	RebuiltTables int   `json:"rebuilt_tables"`
	RebuiltTrees  int   `json:"rebuilt_trees"`
	PatchedLabels int   `json:"patched_labels"`
	FullRebuild   bool  `json:"full_rebuild,omitempty"`
	SuppressedNow int   `json:"suppressed_now"`
	DownNow       int   `json:"down_now"`
	FailedNow     int   `json:"failed_now"`
}

// ChurnResult aggregates one RunChurn experiment.
type ChurnResult struct {
	Kind            string        `json:"kind"`
	N               int           `json:"n"`
	Epochs          []ChurnEpoch  `json:"epochs"`
	TotalEvents     int64         `json:"total_events"`
	TotalServed     int64         `json:"total_served"`
	TotalDrops      int64         `json:"total_drops"`
	TotalMisroutes  int64         `json:"total_misroutes"`
	TotalRepairs    int64         `json:"total_repairs"`
	SuppressedFlaps int64         `json:"suppressed_flaps"`
	DamperReleases  int64         `json:"damper_releases"`
	MeanDirtyFrac   float64       `json:"mean_dirty_frac"`
	MaxDirtyFrac    float64       `json:"max_dirty_frac"`
	MeanRepairNs    int64         `json:"mean_repair_ns"`
	MaxRepairNs     int64         `json:"max_repair_ns"`
	Certified       bool          `json:"certified"`
	Elapsed         time.Duration `json:"elapsed_ns"`
}

// churnCounters is the atomically updated live counter block the sink
// gauges read while an experiment runs.
type churnCounters struct {
	repairs     atomic.Int64
	drops       atomic.Int64
	misroutes   atomic.Int64
	staleServes atomic.Int64
	suppressed  atomic.Int64
	events      atomic.Int64
}

func (c *churnCounters) register(sink *telemetry.Sink) {
	if sink == nil {
		return
	}
	sink.RegisterGauge("churn_repairs_total", func() float64 { return float64(c.repairs.Load()) })
	sink.RegisterGauge("churn_drops_total", func() float64 { return float64(c.drops.Load()) })
	sink.RegisterGauge("churn_misroutes_total", func() float64 { return float64(c.misroutes.Load()) })
	sink.RegisterGauge("churn_stale_serves_total", func() float64 { return float64(c.staleServes.Load()) })
	sink.RegisterGauge("churn_suppressed_flaps_total", func() float64 { return float64(c.suppressed.Load()) })
	sink.RegisterGauge("churn_events_total", func() float64 { return float64(c.events.Load()) })
}

// RunChurn drives the full dynamic-topology loop over the system: build
// a maintained scheme, then per epoch (1) draw and apply a batch of
// seeded churn events, (2) serve a stale window on the un-repaired
// tables — every roundtrip either completes on a stale-but-alive route
// or fails typed with ErrUnroutable, never hangs — counting drops and
// misroutes, (3) repair via RebuildNodes over the batch's union affected
// set, clocking the repair latency, (4) optionally certify the repaired
// plane bit-identical to a from-scratch build, and (5) serve the epoch
// quota on the repaired plane, where drops can no longer occur.
//
// The system must be built with MetricLazy (BuildMaintained's oracle
// requirement). Workloads never address a failed endpoint: pairs drawn
// against currently failed nodes are resampled, modeling clients that
// stop calling a dead service.
func RunChurn(sys *System, cfg ChurnConfig) (*ChurnResult, error) {
	cfg.fill()
	if cfg.Build.K == 0 {
		cfg.Build.K = 2
	}
	m, err := sys.BuildMaintained(cfg.Kind, func(c *BuildConfig) { *c = cfg.Build })
	if err != nil {
		return nil, err
	}
	ov, err := churn.NewOverlay(sys.Graph, churn.NewDamper(cfg.Damper))
	if err != nil {
		return nil, err
	}
	model := churn.NewModel(ov, cfg.ChurnSeed, cfg.Rate, cfg.Mix, cfg.MaxWeight)
	if cfg.MinWeight > 1 {
		model.SetMinWeight(cfg.MinWeight)
	}

	eventsPerEpoch := int(cfg.Rate * float64(cfg.PacketsPerEpoch) / 10000)
	if eventsPerEpoch < 1 {
		eventsPerEpoch = 1
	}
	stalePackets := int64(cfg.StaleFraction * float64(cfg.PacketsPerEpoch))
	if stalePackets < 1 {
		stalePackets = 1
	}

	var ctr churnCounters
	ctr.register(cfg.Sink)

	n := sys.Graph.N()
	res := &ChurnResult{Kind: cfg.Kind.String(), N: n, Certified: cfg.Certify}
	start := time.Now()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		ep := ChurnEpoch{Epoch: epoch}

		// (1) Event batch: apply, union the affected sets, then advance
		// the damper clock to the batch's end (released links rejoin).
		seen := make([]bool, n)
		var dirty []NodeID
		union := func(ds []NodeID) {
			for _, v := range ds {
				if !seen[v] {
					seen[v] = true
					dirty = append(dirty, v)
				}
			}
		}
		var at float64
		for i := 0; i < eventsPerEpoch; i++ {
			ev := model.Next()
			at = ev.At
			ds, err := ov.Apply(ev)
			if err != nil {
				return nil, fmt.Errorf("rtroute: churn epoch %d event %d (%v): %w", epoch, i, ev, err)
			}
			union(ds)
			ep.Events++
			ctr.events.Add(1)
		}
		released, err := ov.Advance(at)
		if err != nil {
			return nil, fmt.Errorf("rtroute: churn epoch %d damper release: %w", epoch, err)
		}
		union(released)
		churn.SortNodeIDs(dirty)
		ep.Dirty = len(dirty)
		ep.DirtyFrac = float64(len(dirty)) / float64(n)

		// (2) Stale window: the tables still describe the pre-batch
		// topology; routes crossing a downed link fail typed.
		sw, err := serveWindow(m.Plane(), ov, cfg, stalePackets, true)
		if err != nil {
			return nil, fmt.Errorf("rtroute: churn epoch %d stale window: %w", epoch, err)
		}
		ep.StaleServed = sw.served
		ep.Drops = sw.drops
		ep.Misroutes = sw.misroutes
		ctr.drops.Add(sw.drops)
		ctr.misroutes.Add(sw.misroutes)
		ctr.staleServes.Add(sw.served)

		// (3) Repair.
		t0 := time.Now()
		rep, err := m.RebuildNodes(dirty)
		if err != nil {
			return nil, fmt.Errorf("rtroute: churn epoch %d repair: %w", epoch, err)
		}
		ep.RepairNs = int64(time.Since(t0))
		ep.RebuiltTables = rep.RebuiltTables
		ep.RebuiltTrees = rep.RebuiltTrees
		ep.PatchedLabels = rep.PatchedLabels
		ep.FullRebuild = rep.FullRebuild
		ctr.repairs.Add(1)

		// (4) Certification against a from-scratch build.
		if cfg.Certify {
			t1 := time.Now()
			if err := m.Certify(); err != nil {
				return nil, fmt.Errorf("rtroute: churn epoch %d certification: %w", epoch, err)
			}
			ep.CertifyNs = int64(time.Since(t1))
		}

		// (5) Post-repair serving: the repaired tables route around every
		// down link (live graph stays strongly connected), so drops here
		// indicate a maintenance bug — they are counted, not tolerated.
		pw, err := serveWindow(m.Plane(), ov, cfg, cfg.PacketsPerEpoch, false)
		if err != nil {
			return nil, fmt.Errorf("rtroute: churn epoch %d post-repair serving: %w", epoch, err)
		}
		ep.PostServed = pw.served
		ep.PostDrops = pw.drops
		if pw.misroutes > 0 {
			return nil, fmt.Errorf("rtroute: churn epoch %d: %d misroutes on repaired tables", epoch, pw.misroutes)
		}

		ovs := ov.Stats()
		ctr.suppressed.Store(ovs.SuppressedFlaps)
		ep.SuppressedNow = ovDamperSuppressed(ov)
		ep.DownNow = ov.DownCount()
		ep.FailedNow = ov.FailedCount()

		res.Epochs = append(res.Epochs, ep)
		res.TotalEvents += int64(ep.Events)
		res.TotalServed += ep.StaleServed + ep.PostServed
		res.TotalDrops += ep.Drops + ep.PostDrops
		res.TotalMisroutes += ep.Misroutes
		res.TotalRepairs++
		res.MeanDirtyFrac += ep.DirtyFrac
		if ep.DirtyFrac > res.MaxDirtyFrac {
			res.MaxDirtyFrac = ep.DirtyFrac
		}
		res.MeanRepairNs += ep.RepairNs
		if ep.RepairNs > res.MaxRepairNs {
			res.MaxRepairNs = ep.RepairNs
		}
	}
	res.Elapsed = time.Since(start)
	if len(res.Epochs) > 0 {
		res.MeanDirtyFrac /= float64(len(res.Epochs))
		res.MeanRepairNs /= int64(len(res.Epochs))
	}
	ovs := ov.Stats()
	res.SuppressedFlaps = ovs.SuppressedFlaps
	res.DamperReleases = ovs.DamperReleases
	return res, nil
}

func ovDamperSuppressed(ov *churn.Overlay) int { return ov.SuppressedCount() }

// windowStats is one serving window's outcome tally. Every attempted
// roundtrip lands in exactly one bucket — served, drops or misroutes —
// which is the zero-hung-roundtrips accounting the churn acceptance
// checks.
type windowStats struct {
	served    int64
	drops     int64
	misroutes int64
}

// serveWindow serves quota roundtrips over the plane with a worker
// pool, resampling pairs whose endpoints are currently failed. In a
// stale window (stale=true) typed unroutable failures are expected and
// counted as drops, and any other forwarding failure (delivery at a
// wrong node, hop-budget exhaustion on a route invalidated mid-window)
// is a misroute; outside one, both are still counted and the caller
// decides whether they are fatal.
func serveWindow(plane Scheme, ov *churn.Overlay, cfg ChurnConfig, quota int64, stale bool) (windowStats, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wl, err := traffic.NewWorkload(cfg.Workload, plane.Graph().N(), cfg.Build.Seed^cfg.ChurnSeed)
	if err != nil {
		return windowStats{}, err
	}
	quotas := traffic.SplitQuota(quota, workers)
	shards := make([]windowStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		gen := wl.Generator(w)
		myQuota := quotas[w]
		sh := &shards[w]
		errp := &errs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var hdr sim.Header
			for i := int64(0); i < myQuota; i++ {
				src, dst := gen.Next()
				// Failed-endpoint exclusion: clients don't call dead
				// services. Bounded resampling keeps the loop total even
				// if the model failed most of the universe.
				for tries := 0; tries < 64 && (ov.NodeFailed(plane.NodeOf(src)) || ov.NodeFailed(plane.NodeOf(dst))); tries++ {
					src, dst = gen.Next()
				}
				var ferr error
				_, _, hdr, ferr = sim.RoundtripFlightReusing(plane, hdr, src, dst, cfg.MaxHops)
				switch {
				case ferr == nil:
					sh.served++
				case errors.Is(ferr, sim.ErrUnroutable):
					sh.drops++
					// A failed roundtrip may leave the header in an
					// undefined state; drop it and reallocate.
					hdr = nil
				case stale:
					sh.misroutes++
					hdr = nil
				default:
					*errp = ferr
					return
				}
			}
		}()
	}
	wg.Wait()
	var total windowStats
	for w := range shards {
		if errs[w] != nil {
			return total, errs[w]
		}
		total.served += shards[w].served
		total.drops += shards[w].drops
		total.misroutes += shards[w].misroutes
	}
	return total, nil
}

// Format renders the churn result as the E17 report.
func (r *ChurnResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn: %s over n=%d, %d epochs, %d events, elapsed %v\n",
		r.Kind, r.N, len(r.Epochs), r.TotalEvents, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "served %d roundtrips: %d dropped on down links (typed), %d misrouted on stale tables, 0 hung\n",
		r.TotalServed, r.TotalDrops, r.TotalMisroutes)
	fmt.Fprintf(&b, "repairs %d: mean latency %v, max %v; dirty/event-batch mean %.1f%%, max %.1f%% of nodes\n",
		r.TotalRepairs, time.Duration(r.MeanRepairNs).Round(time.Microsecond),
		time.Duration(r.MaxRepairNs).Round(time.Microsecond),
		100*r.MeanDirtyFrac, 100*r.MaxDirtyFrac)
	fmt.Fprintf(&b, "damping: %d recoveries suppressed, %d released\n", r.SuppressedFlaps, r.DamperReleases)
	if r.Certified {
		fmt.Fprintf(&b, "certified: plane bit-identical to from-scratch build after every epoch\n")
	}
	fmt.Fprintf(&b, "\n%-6s %7s %7s %8s %6s %6s %9s %9s %7s %6s %6s\n",
		"epoch", "events", "dirty", "dirty%", "drops", "misrt", "stale-ok", "post-ok", "repair", "trees", "tables")
	for _, ep := range r.Epochs {
		fmt.Fprintf(&b, "%-6d %7d %7d %7.1f%% %6d %6d %9d %9d %7s %6d %6d\n",
			ep.Epoch, ep.Events, ep.Dirty, 100*ep.DirtyFrac, ep.Drops, ep.Misroutes,
			ep.StaleServed, ep.PostServed,
			time.Duration(ep.RepairNs).Round(time.Microsecond),
			ep.RebuiltTrees, ep.RebuiltTables)
	}
	return b.String()
}
