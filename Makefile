GO ?= go

.PHONY: all build test verify race short large bench fmt vet lint ci

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md).
verify: build test

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# 5,000-node lazy-oracle acceptance run (see oracle_equiv_test.go).
large:
	RTROUTE_LARGE=1 $(GO) test -run TestLazyStretchSixLargeScale -v -timeout 3600s .

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint: fmt vet

ci: lint build race
