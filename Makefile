GO ?= go

# benchcmp knobs: make benchcmp OUT=new.txt COUNT=10, then
# `benchstat old.txt new.txt`.
BENCH_PATTERN ?= Dijkstra|EdgeByPort|MetricBuild|TrafficThroughput
COUNT ?= 5
OUT ?= bench-new.txt

.PHONY: all build test verify race short large bench bench-smoke bench-json benchcmp fmt vet lint ci traffic traffic-large cluster obs churn churn-cluster docs fuzz-smoke sizes

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md) + wire-decoder fuzz smoke.
verify: build test fuzz-smoke

# Short coverage-guided runs of the wire decoder fuzzers: arbitrary
# bytes must error cleanly, never panic or over-allocate.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshalScheme -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshalHeader -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshalFrame -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshalFlightFrame -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzUnmarshalChurnFrame -fuzztime 5s

# E14 space certification: per-node encoded bytes across n=256..4096
# (also: rtroute -sizes).
sizes:
	RTROUTE_LARGE=1 $(GO) test -run TestEncodedSpaceCert -v -timeout 3600s ./internal/eval

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# 5,000-node lazy-oracle acceptance run (see oracle_equiv_test.go).
large:
	RTROUTE_LARGE=1 $(GO) test -run TestLazyStretchSixLargeScale -v -timeout 3600s .

# Smoke-sized concurrent serving run under the race detector: exercises
# the compiled-plane hot path end-to-end on every CI push (E12).
traffic:
	$(GO) run -race ./cmd/rtbench -exp traffic -n 96 -packets 20000 -workers 4 -workload zipf -seed 1
	$(GO) run -race ./cmd/rtbench -exp traffic -n 96 -packets 10000 -workers 4 -workload hotspot -scheme rtz -seed 1

# Million-packet serving acceptance: 1,000-node StretchSix over the lazy
# oracle, GOMAXPROCS workers, stretch certified against sequential
# replays (see traffic_test.go).
traffic-large:
	RTROUTE_LARGE=1 $(GO) test -run TestTrafficLargeScale -v -timeout 3600s .

# Smoke-sized sharded cluster serving under the race detector: 8 shards
# over the channel bus via rtbench, then the loopback-TCP daemon round
# (E15); both wire-encode every boundary-crossing packet.
cluster:
	$(GO) run -race ./cmd/rtbench -exp cluster -n 96 -packets 20000 -shards 8 -placement rtz -seed 1
	$(GO) test -race -run 'TestClusterMatchesSequentialRun|TestClusterSurvivesReorderingAdversary|TestPipelinedTCPMatchesSequential|TestTCPLoopback|TestTCPFlappingPeer' ./internal/cluster

# Observability smoke (E16): the telemetry plane end-to-end under the
# race detector — sink-attached cluster run with the machine-produced
# stage-timing table, then the live-plane tests (snapshot-during-run,
# /metrics == Stats() exactness over loopback TCP, window occupancy,
# link-health counters) and the telemetry package units.
obs:
	$(GO) run -race ./cmd/rtbench -exp traffic -n 96 -packets 20000 -workers 4 -workload zipf -seed 1 -timing
	$(GO) run -race ./cmd/rtbench -exp cluster -n 96 -packets 20000 -shards 8 -placement rtz -seed 1 -timing
	$(GO) test -race -run 'TestClusterLiveSnapshot|TestTCPMetricsEndpoint|TestWindow|TestTCPFlappingPeer' ./internal/cluster
	$(GO) test -race ./internal/telemetry

# Dynamic-topology smoke (E17/E18) under the race detector: the churn
# epoch loop — seeded events, stale-window serving with typed drops,
# incremental repair, per-epoch certification against a from-scratch
# build — then the maintenance property/fuzz tests and the TCP
# peer-flap units (monitor detection, mid-batch kill).
churn:
	$(GO) run -race ./cmd/rtbench -exp churn -n 128 -packets 6000 -epochs 3 -rate 4 -seed 1
	$(GO) test -race -run 'TestRunChurnSmoke|TestIncrementalMatchesFreshUnderEventFuzz|TestRebuildAllMatchesFreshBuild|TestModelReplayDeterminism|TestAffectedSetIsSound' .
	$(GO) test -race -run 'TestTCPPeerDeathDetectedByMonitor|TestTCPPeerFlapMidBatch' ./internal/cluster

# Cluster-churn smoke (E19) under the race detector: churn events ride
# the fabric as wire frames, every shard repairs its owned slice behind
# its epoch fence while serving, each batch certified bit-identical to a
# from-scratch build — plus the reordering adversary, the bounded
# affected-set soundness property, the churn-frame golden/codec units,
# and the mid-repair peer-death / poisoned-repair TCP tests.
churn-cluster:
	$(GO) run -race ./cmd/rtbench -exp churncluster -n 96 -shards 8 -epochs 3 -events 3 -packets 9000 -seed 1
	$(GO) test -race -run 'TestClusterChurnMatchesSequential|TestClusterChurnUnderReorderingAdversary|TestBoundedAffectedSetSupersetOfExact' .
	$(GO) test -race -run 'TestTCPPeerDeathMidRepair|TestRepairFailurePoisonsShard' ./internal/cluster
	$(GO) test -race -run 'TestChurnEventFrameGolden' ./internal/wire

# Docs gate: README/DESIGN Go fences must parse (gofmt-clean when
# written as complete files) and relative links must resolve.
docs:
	$(GO) run ./internal/docscheck README.md DESIGN.md

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

# One iteration of every benchmark: catches bit-rotted benchmark code on
# every CI push without paying for real measurements.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Canonical perf suite -> committed trajectory artifact (E13). Bump the
# output name per PR: BENCH_PR3.json, BENCH_PR4.json, ...
bench-json:
	$(GO) run ./cmd/rtbench -exp bench -json -out BENCH_PR7.json

# Before/after comparisons: run `make benchcmp OUT=old.txt` on the old
# commit, again with OUT=new.txt on the new one, then
# `benchstat old.txt new.txt` (golang.org/x/perf/cmd/benchstat).
benchcmp:
	$(GO) test -run XXX -bench '$(BENCH_PATTERN)' -benchmem -count $(COUNT) . > $(OUT)
	@cat $(OUT)
	@echo "# wrote $(OUT); compare with: benchstat <old>.txt $(OUT)"

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint: fmt vet

ci: lint build race traffic cluster obs churn churn-cluster docs bench-smoke fuzz-smoke
