GO ?= go

.PHONY: all build test verify race short large bench fmt vet lint ci traffic traffic-large

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 verification (ROADMAP.md).
verify: build test

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# 5,000-node lazy-oracle acceptance run (see oracle_equiv_test.go).
large:
	RTROUTE_LARGE=1 $(GO) test -run TestLazyStretchSixLargeScale -v -timeout 3600s .

# Smoke-sized concurrent serving run under the race detector: exercises
# the compiled-plane hot path end-to-end on every CI push (E12).
traffic:
	$(GO) run -race ./cmd/rtbench -exp traffic -n 96 -packets 20000 -workers 4 -workload zipf -seed 1
	$(GO) run -race ./cmd/rtbench -exp traffic -n 96 -packets 10000 -workers 4 -workload hotspot -scheme rtz -seed 1

# Million-packet serving acceptance: 1,000-node StretchSix over the lazy
# oracle, GOMAXPROCS workers, stretch certified against sequential
# replays (see traffic_test.go).
traffic-large:
	RTROUTE_LARGE=1 $(GO) test -run TestTrafficLargeScale -v -timeout 3600s .

bench:
	$(GO) test -run XXX -bench . -benchmem ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

lint: fmt vet

ci: lint build race traffic
