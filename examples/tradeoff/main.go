// Tradeoff sweeps the parameter k of both generalized schemes on one
// network and prints the space/stretch tradeoff — the lower half of the
// paper's Fig. 1, measured instead of asymptotic.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rtroute"
)

func main() {
	const n = 100
	rng := rand.New(rand.NewSource(11))
	g := rtroute.RandomSC(n, 5*n, 8, rng)
	sys, err := rtroute.NewSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("space/stretch tradeoff on %d nodes, %d edges\n\n", g.N(), g.M())
	fmt.Printf("%-16s %3s %10s %10s %9s %9s %9s\n",
		"scheme", "k", "maxTblW", "avgTblW", "maxS", "meanS", "bound")

	s6, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	report(sys, "stretch6", 2, s6, "6")

	for _, k := range []int{2, 3, 4} {
		ex, err := sys.Build(rtroute.ExStretch, rtroute.WithK(k), rtroute.WithSeed(int64(k)))
		if err != nil {
			log.Fatal(err)
		}
		report(sys, "exstretch", k, ex, fmt.Sprintf("(2^%d-1)*hop", k))
	}
	for _, k := range []int{2, 3} {
		poly, err := sys.Build(rtroute.Polynomial, rtroute.WithK(k))
		if err != nil {
			log.Fatal(err)
		}
		report(sys, "polystretch", k, poly, fmt.Sprintf("%d", 8*k*k+4*k-4))
	}

	fmt.Println("\nlarger k shrinks tables and grows stretch: the §3/§4 tradeoffs")
}

func report(sys *rtroute.System, name string, k int, sch rtroute.Scheme, bound string) {
	stats, err := rtroute.MeasureScheme(sys, sch, 3000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %3d %10d %10.1f %9.3f %9.3f %9s\n",
		name, k, sch.MaxTableWords(), sch.AvgTableWords(), stats.Max, stats.Mean, bound)
}
