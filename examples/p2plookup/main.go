// P2P lookup: the application the paper's conclusion motivates. Peers in
// an overlay choose their own opaque names (here 128-bit-style strings);
// the §1.1.2 hashing reduction maps them onto the TINN name space
// {0..n-1}; object lookups are request/acknowledgment roundtrips routed
// by the stretch-6 scheme. Collisions under the hash are disambiguated
// by the full name carried in the application payload, exactly the
// constant-factor dictionary blowup the reduction promises.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rtroute"
)

func main() {
	const n = 64
	rng := rand.New(rand.NewSource(23))

	// A scale-free overlay: the degree distribution of real P2P systems.
	g := rtroute.ScaleFreeSC(n, 3, 4, rng)

	// Peers pick their own names with no coordination.
	fullNames := make([]string, n)
	for i := range fullNames {
		fullNames[i] = fmt.Sprintf("peer-%016x", rng.Uint64())
	}
	dir, err := rtroute.NewDirectory(fullNames, n, rng)
	if err != nil {
		log.Fatal(err)
	}

	// The hashed slots are NOT a permutation (collisions happen), so the
	// overlay assigns each peer a TINN name by bucket order: peers in the
	// same slot get consecutive names — the "constant blowup" bucket.
	// Here we build the TINN name permutation from the directory.
	nameOf := make(map[string]int32, n)
	next := int32(0)
	for slot := int32(0); slot < int32(n); slot++ {
		for _, full := range dir.Bucket(slot) {
			nameOf[full] = next
			next++
		}
	}
	permNames := make([]int32, n)
	for i, full := range fullNames {
		permNames[i] = nameOf[full]
	}
	naming, err := rtroute.NewNaming(permNames)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := rtroute.NewSystem(g, naming)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("overlay: %d peers, %d links; max bucket %d peers/slot\n\n", g.N(), g.M(), dir.MaxBucket())
	fmt.Printf("%-22s %-22s %9s %9s %8s\n", "requester", "object holder", "optimal", "routed", "stretch")

	lookups := 0
	var worst float64
	for lookups < 10 {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		lookups++
		src, dst := fullNames[a], fullNames[b]
		// A lookup knows only the holder's self-chosen name; the TINN
		// name comes from the shared hash + bucket discipline.
		tr, err := scheme.Roundtrip(nameOf[src], nameOf[dst])
		if err != nil {
			log.Fatal(err)
		}
		s := sys.Stretch(nameOf[src], nameOf[dst], tr)
		if s > worst {
			worst = s
		}
		fmt.Printf("%-22s %-22s %9d %9d %8.3f\n",
			src, dst, sys.R(nameOf[src], nameOf[dst]), tr.Weight(), s)
	}
	fmt.Printf("\nworst lookup stretch %.3f (bound 6); request+ack both routed compactly\n", worst)
}
