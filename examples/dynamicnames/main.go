// Dynamicnames demonstrates the TINN model's motivation (§1): node names
// are decoupled from topology, so when the network re-labels every node —
// peers churn, identifiers get reassigned — the SAME topology keeps
// routing with the SAME guarantees after a table rebuild, and no
// in-flight name ever has to encode coordinates.
//
// A topology-dependent scheme would have to re-address every packet in
// flight; a TINN scheme only rebuilds local tables.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rtroute"
)

func main() {
	const n = 40
	rng := rand.New(rand.NewSource(31))
	g := rtroute.RandomSC(n, 4*n, 6, rng)

	fmt.Printf("one topology (%d nodes, %d edges), three different namings:\n\n", g.N(), g.M())
	fmt.Printf("%-12s %9s %9s %9s %10s\n", "naming", "maxS", "meanS", "p99S", "avgTblW")

	namings := []struct {
		label string
		perm  *rtroute.Naming
	}{
		{"identity", rtroute.IdentityNaming(n)},
		{"reversed", rtroute.ReversedNaming(n)},
		{"epoch-2", rtroute.RandomNaming(n, rng)},
	}

	var prev rtroute.StretchStats
	for i, nm := range namings {
		sys, err := rtroute.NewSystem(g, nm.perm)
		if err != nil {
			log.Fatal(err)
		}
		scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(17))
		if err != nil {
			log.Fatal(err)
		}
		stats, err := rtroute.MeasureScheme(sys, scheme, n*(n-1), 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %9.3f %9.3f %9.3f %10.1f\n",
			nm.label, stats.Max, stats.Mean, stats.P99, scheme.AvgTableWords())
		if i > 0 && (stats.Max > 6 || prev.Max > 6) {
			log.Fatal("stretch bound depends on naming: TINN property broken")
		}
		prev = stats
	}

	fmt.Println("\nevery naming meets the same stretch-6 bound: names carry no topology,")
	fmt.Println("so re-naming the whole network never degrades the routing guarantee.")
}
