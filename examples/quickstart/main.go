// Quickstart: build the stretch-6 TINN scheme over a random strongly
// connected directed network, route a few roundtrips, and print their
// measured stretch against the paper's worst-case bound of 6.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rtroute"
)

func main() {
	const n = 48
	rng := rand.New(rand.NewSource(7))

	// A random strongly connected weighted digraph with adversarial
	// port labels, and an adversarial (random) node naming: names carry
	// zero information about where a node sits in the topology.
	g := rtroute.RandomSC(n, 4*n, 10, rng)
	sys, err := rtroute.NewSystem(g, rtroute.RandomNaming(n, rng))
	if err != nil {
		log.Fatal(err)
	}

	scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d nodes, max table %d words (n=%d, sqrt(n)≈%d)\n\n",
		scheme.SchemeName(), n, scheme.MaxTableWords(), n, 7)

	fmt.Printf("%6s %6s %10s %10s %9s\n", "src", "dst", "optimal", "routed", "stretch")
	for i := 0; i < 8; i++ {
		src := int32(rng.Intn(n))
		dst := int32(rng.Intn(n))
		if src == dst {
			continue
		}
		tr, err := scheme.Roundtrip(src, dst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %6d %10d %10d %9.3f\n",
			src, dst, sys.R(src, dst), tr.Weight(), sys.Stretch(src, dst, tr))
	}

	stats, err := rtroute.MeasureScheme(sys, scheme, n*(n-1), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d ordered pairs: max stretch %.3f (bound 6), mean %.3f\n",
		stats.Pairs, stats.Max, stats.Mean)
}
