package rtroute

import (
	"math/rand"
	"testing"
)

// TestExhaustiveFourNodeGraphs enumerates EVERY strongly connected
// digraph on 4 nodes (all 2^12 subsets of the 12 possible directed
// edges, unit weights) and asserts the stretch-6 bound on every ordered
// pair of every one of them. Worst-case bounds deserve exhaustive small
// cases, not just random sampling.
func TestExhaustiveFourNodeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short")
	}
	type edge struct{ u, v NodeID }
	var edges []edge
	for u := NodeID(0); u < 4; u++ {
		for v := NodeID(0); v < 4; v++ {
			if u != v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	if len(edges) != 12 {
		t.Fatalf("expected 12 candidate edges, got %d", len(edges))
	}

	rng := rand.New(rand.NewSource(1))
	checked := 0
	for mask := 0; mask < 1<<12; mask++ {
		g := NewGraph(4)
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				g.MustAddEdge(e.u, e.v, 1)
			}
		}
		if !StronglyConnected(g) {
			continue
		}
		g.AssignPorts(rng.Intn)
		sys, err := NewSystem(g, ReversedNaming(4))
		if err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		sch, err := sys.BuildStretchSix(int64(mask))
		if err != nil {
			t.Fatalf("mask %d: build: %v", mask, err)
		}
		for u := int32(0); u < 4; u++ {
			for v := int32(0); v < 4; v++ {
				if u == v {
					continue
				}
				tr, err := sch.Roundtrip(u, v)
				if err != nil {
					t.Fatalf("mask %d: roundtrip (%d,%d): %v", mask, u, v, err)
				}
				if r := sys.R(u, v); tr.Weight() > 6*r {
					t.Fatalf("mask %d: stretch-6 violated at (%d,%d): %d > %d",
						mask, u, v, tr.Weight(), 6*r)
				}
			}
		}
		checked++
	}
	// Exactly 1606 of the 4096 labeled 4-node digraphs are strongly
	// connected (OEIS A003030 row sums give the count for labeled SC
	// digraphs on 4 nodes = 1606); assert the filter found a plausible
	// count so the test cannot silently go vacuous.
	if checked < 1000 {
		t.Fatalf("only %d strongly connected graphs enumerated; filter broken?", checked)
	}
	t.Logf("exhaustively verified %d strongly connected 4-node digraphs", checked)
}

// TestExhaustiveThreeNodeWeighted enumerates all strongly connected
// 3-node digraphs with ALL weight assignments from {1,3,9} and asserts
// the bound for every scheme — full coverage of a small weighted space.
func TestExhaustiveThreeNodeWeighted(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short")
	}
	type edge struct{ u, v NodeID }
	var edges []edge
	for u := NodeID(0); u < 3; u++ {
		for v := NodeID(0); v < 3; v++ {
			if u != v {
				edges = append(edges, edge{u, v})
			}
		}
	}
	weights := []Dist{1, 3, 9}
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for mask := 0; mask < 1<<6; mask++ {
		// Enumerate weight assignments for the selected edges.
		var sel []edge
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				sel = append(sel, e)
			}
		}
		assignments := 1
		for range sel {
			assignments *= len(weights)
		}
		for a := 0; a < assignments; a++ {
			g := NewGraph(3)
			x := a
			for _, e := range sel {
				g.MustAddEdge(e.u, e.v, weights[x%len(weights)])
				x /= len(weights)
			}
			if !StronglyConnected(g) {
				break // connectivity is weight-independent; skip all assignments
			}
			g.AssignPorts(rng.Intn)
			sys, err := NewSystem(g, ReversedNaming(3))
			if err != nil {
				t.Fatal(err)
			}
			s6, err := sys.BuildStretchSix(int64(a))
			if err != nil {
				t.Fatal(err)
			}
			poly, err := sys.BuildPolynomial(2)
			if err != nil {
				t.Fatal(err)
			}
			for u := int32(0); u < 3; u++ {
				for v := int32(0); v < 3; v++ {
					if u == v {
						continue
					}
					r := sys.R(u, v)
					tr, err := s6.Roundtrip(u, v)
					if err != nil {
						t.Fatalf("mask %d a %d: s6 (%d,%d): %v", mask, a, u, v, err)
					}
					if tr.Weight() > 6*r {
						t.Fatalf("mask %d a %d: s6 stretch violated at (%d,%d)", mask, a, u, v)
					}
					tr, err = poly.Roundtrip(u, v)
					if err != nil {
						t.Fatalf("mask %d a %d: poly (%d,%d): %v", mask, a, u, v, err)
					}
					if tr.Weight() > 36*r {
						t.Fatalf("mask %d a %d: poly stretch violated at (%d,%d)", mask, a, u, v)
					}
				}
			}
			checked++
		}
	}
	if checked < 500 {
		t.Fatalf("only %d weighted instances enumerated", checked)
	}
	t.Logf("exhaustively verified %d weighted 3-node instances", checked)
}
