package rtroute

import (
	"fmt"
	"math/rand"

	"rtroute/internal/core"
	"rtroute/internal/rtz"
	"rtroute/internal/wire"
)

// SchemeKind selects which routing scheme System.Build constructs.
type SchemeKind = core.Kind

// Scheme kinds for Build. StretchSix, ExStretch and Polynomial are the
// paper's three TINN schemes; RTZStretch3 and HopSubstrate are the
// name-dependent substrate planes (servable baselines).
const (
	StretchSix   = core.KindStretchSix
	ExStretch    = core.KindExStretch
	Polynomial   = core.KindPolynomial
	RTZStretch3  = core.KindRTZ
	HopSubstrate = core.KindHop
)

// SubstrateOptions configures the stretch-3 substrate (center sampling).
type SubstrateOptions = rtz.Config

// BuildConfig collects every construction knob across all scheme kinds.
// Zero values select the defaults the legacy Build* methods used. Most
// callers should use Build with functional options instead of filling
// this struct directly.
type BuildConfig struct {
	// Seed drives all randomized construction (center sampling, block
	// assignment). Ignored by Polynomial, whose construction is
	// deterministic.
	Seed int64
	// K is the tradeoff parameter for ExStretch, Polynomial and
	// HopSubstrate (default 2).
	K int
	// CoverK overrides the hop substrate's sparse-cover parameter
	// (ExStretch only; defaults to K).
	CoverK int
	// ScaleBase is the cover scale ladder ratio (ExStretch, Polynomial,
	// HopSubstrate; default 2).
	ScaleBase float64
	// Variant selects the sparse-cover construction (default
	// Awerbuch-Peleg).
	Variant CoverVariant
	// Blocks configures the Lemma 1/4 dictionary assignment (StretchSix,
	// ExStretch).
	Blocks BlockOptions
	// Substrate configures the stretch-3 substrate (StretchSix,
	// RTZStretch3).
	Substrate SubstrateOptions
	// ViaSource selects the §2.2 StretchSix variant that fetches the
	// destination's address back to the source before routing.
	ViaSource bool
	// DirectReturn selects the §3.5 ExStretch variant that carries the
	// source's globally valid label instead of the waypoint stack.
	DirectReturn bool
	// BuildWorkers parallelizes per-node table construction
	// (0 = GOMAXPROCS, 1 = sequential). Output is identical either way.
	BuildWorkers int
}

// BuildOption tunes one Build call.
type BuildOption func(*BuildConfig)

// WithSeed sets the construction seed.
func WithSeed(seed int64) BuildOption { return func(c *BuildConfig) { c.Seed = seed } }

// WithK sets the tradeoff parameter k >= 2.
func WithK(k int) BuildOption { return func(c *BuildConfig) { c.K = k } }

// WithCoverK overrides the hop substrate's cover parameter (ExStretch).
func WithCoverK(k int) BuildOption { return func(c *BuildConfig) { c.CoverK = k } }

// WithScaleBase sets the cover scale ladder ratio.
func WithScaleBase(base float64) BuildOption { return func(c *BuildConfig) { c.ScaleBase = base } }

// WithCoverVariant selects the sparse-cover construction.
func WithCoverVariant(v CoverVariant) BuildOption { return func(c *BuildConfig) { c.Variant = v } }

// WithBlocks configures the dictionary block assignment.
func WithBlocks(b BlockOptions) BuildOption { return func(c *BuildConfig) { c.Blocks = b } }

// WithSubstrate configures the stretch-3 substrate.
func WithSubstrate(s SubstrateOptions) BuildOption { return func(c *BuildConfig) { c.Substrate = s } }

// WithViaSource selects the §2.2 StretchSix variant.
func WithViaSource() BuildOption { return func(c *BuildConfig) { c.ViaSource = true } }

// WithDirectReturn selects the §3.5 ExStretch variant.
func WithDirectReturn() BuildOption { return func(c *BuildConfig) { c.DirectReturn = true } }

// WithBuildWorkers sets construction parallelism.
func WithBuildWorkers(w int) BuildOption { return func(c *BuildConfig) { c.BuildWorkers = w } }

// Build constructs a routing scheme of the given kind over the system's
// graph, oracle and naming. It is the single entry point replacing the
// per-scheme Build* methods: every knob those methods exposed is
// available as a functional option, and every kind — the three TINN
// schemes and the two substrate baselines — comes back as a Scheme
// (forwarding plane + roundtrip tracer + table accounting).
//
//	s6, _  := sys.Build(rtroute.StretchSix, rtroute.WithSeed(42))
//	ex, _  := sys.Build(rtroute.ExStretch, rtroute.WithK(3), rtroute.WithSeed(42))
//	p, _   := sys.Build(rtroute.Polynomial, rtroute.WithK(2))
//	rtz, _ := sys.Build(rtroute.RTZStretch3, rtroute.WithSeed(42))
func (s *System) Build(kind SchemeKind, opts ...BuildOption) (Scheme, error) {
	cfg := BuildConfig{K: 2}
	for _, o := range opts {
		o(&cfg)
	}
	return s.BuildWith(kind, cfg)
}

// BuildWith is Build with an explicit configuration struct, for callers
// that assemble configurations programmatically.
func (s *System) BuildWith(kind SchemeKind, cfg BuildConfig) (Scheme, error) {
	if cfg.K == 0 {
		cfg.K = 2
	}
	rng := func() *rand.Rand { return rand.New(rand.NewSource(cfg.Seed)) }
	switch kind {
	case StretchSix:
		return core.NewStretchSix(s.Graph, s.Metric, s.Naming, rng(), core.Stretch6Config{
			Blocks:       cfg.Blocks,
			Substrate:    cfg.Substrate,
			ViaSource:    cfg.ViaSource,
			BuildWorkers: cfg.BuildWorkers,
		})
	case ExStretch:
		return core.NewExStretch(s.Graph, s.Metric, s.Naming, rng(), core.ExStretchConfig{
			K:            cfg.K,
			CoverK:       cfg.CoverK,
			ScaleBase:    cfg.ScaleBase,
			Variant:      cfg.Variant,
			Blocks:       cfg.Blocks,
			DirectReturn: cfg.DirectReturn,
			BuildWorkers: cfg.BuildWorkers,
		})
	case Polynomial:
		return core.NewPolynomialStretch(s.Graph, s.Metric, s.Naming, core.PolyConfig{
			K:            cfg.K,
			ScaleBase:    cfg.ScaleBase,
			Variant:      cfg.Variant,
			BuildWorkers: cfg.BuildWorkers,
		})
	case RTZStretch3:
		sub, err := rtz.New(s.Graph, s.Metric, rng(), cfg.Substrate)
		if err != nil {
			return nil, err
		}
		return core.NewRTZPlane(sub, s.Naming)
	case HopSubstrate:
		base := cfg.ScaleBase
		if base <= 1 {
			base = 2
		}
		hop, err := rtz.NewHop(s.Graph, s.Metric, cfg.K, base, cfg.Variant)
		if err != nil {
			return nil, err
		}
		return core.NewHopPlane(hop, s.Naming)
	default:
		return nil, fmt.Errorf("rtroute: unknown scheme kind %v", kind)
	}
}

// Deployment is a scheme reassembled from per-node LocalState as
// per-node Routers: it implements the same forwarding-plane contract as
// a monolithic scheme (sim/traffic drive it identically) while every
// Forward goes through the addressed node's Router alone. Snapshots
// restored by UnmarshalScheme come back as Deployments carrying their
// per-node encoded byte sizes.
type Deployment = core.Deployment

// Router is one node's forwarding agent within a Deployment.
type Router = core.Router

// Deploy decomposes a built scheme into per-node local states and
// reassembles it as a Deployment, certifying that node-local state plus
// the packet header suffice to forward.
func Deploy(p ForwardingPlane) (*Deployment, error) { return core.Deploy(p) }

// MarshalScheme encodes a built scheme (or Deployment) as a
// self-contained versioned binary snapshot: graph, naming, shared
// parameters, and one length-prefixed section per node.
func MarshalScheme(p ForwardingPlane) ([]byte, error) { return wire.MarshalScheme(p) }

// MarshalSchemeSizes is MarshalScheme returning each node's encoded
// section length alongside the blob (one encode pass).
func MarshalSchemeSizes(p ForwardingPlane) ([]byte, []int, error) {
	return wire.MarshalSchemeSizes(p)
}

// UnmarshalScheme restores a snapshot as a Deployment of per-node
// routers, route-identical to the scheme that was marshaled; per-node
// encoded sizes are available via Deployment.EncodedSize.
func UnmarshalScheme(data []byte) (*Deployment, error) { return wire.UnmarshalScheme(data) }

// MarshalHeader encodes a packet header as a self-contained byte packet.
func MarshalHeader(h Header) ([]byte, error) { return wire.MarshalHeader(h) }

// UnmarshalHeader decodes a header packet.
func UnmarshalHeader(data []byte) (Header, error) { return wire.UnmarshalHeader(data) }

// EncodedNodeSizes returns every node's local routing state encoded in
// wire bytes — the empirical per-node space bound of Theorems 6 and 11.
func EncodedNodeSizes(p ForwardingPlane) ([]int, error) { return wire.NodeSizes(p) }
