package rtroute

import (
	"fmt"
	"math/rand"
	"sort"
)

// NamedSystem wraps a System for deployments where nodes choose their own
// opaque string names (the §1.1.2 model): it applies the hashing
// reduction end to end, so callers route by string name and never see
// the internal {0..n-1} TINN names.
type NamedSystem struct {
	Sys *System
	Dir *Directory

	nameOf map[string]int32 // full name -> TINN name
	fullOf []string         // TINN name -> full name
}

// NewNamedSystem builds a NamedSystem over g. fullNames[v] is the
// self-chosen name of node v; names must be unique. The TINN permutation
// is derived from the hash directory: colliding names share a slot and
// receive consecutive TINN names (the constant-factor bucket blowup).
func NewNamedSystem(g *Graph, fullNames []string, rng *rand.Rand) (*NamedSystem, error) {
	n := g.N()
	if len(fullNames) != n {
		return nil, fmt.Errorf("rtroute: %d names for %d nodes", len(fullNames), n)
	}
	dir, err := NewDirectory(fullNames, n, rng)
	if err != nil {
		return nil, err
	}
	// Assign TINN names by slot order, buckets flattened. Iterating
	// slots ascending keeps the assignment deterministic given the hash.
	nameOf := make(map[string]int32, n)
	fullOf := make([]string, n)
	next := int32(0)
	slots := make([]int32, 0, len(dir.Buckets))
	for slot := range dir.Buckets {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, slot := range slots {
		for _, full := range dir.Bucket(slot) {
			nameOf[full] = next
			fullOf[next] = full
			next++
		}
	}
	permNames := make([]int32, n)
	for v, full := range fullNames {
		permNames[v] = nameOf[full]
	}
	naming, err := NewNaming(permNames)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(g, naming)
	if err != nil {
		return nil, err
	}
	return &NamedSystem{Sys: sys, Dir: dir, nameOf: nameOf, fullOf: fullOf}, nil
}

// TINNName resolves a self-chosen name to its TINN name.
func (ns *NamedSystem) TINNName(fullName string) (int32, error) {
	nm, ok := ns.nameOf[fullName]
	if !ok {
		return 0, fmt.Errorf("rtroute: unknown name %q", fullName)
	}
	return nm, nil
}

// FullName resolves a TINN name back to the node's self-chosen name.
func (ns *NamedSystem) FullName(tinnName int32) (string, error) {
	if tinnName < 0 || int(tinnName) >= len(ns.fullOf) {
		return "", fmt.Errorf("rtroute: TINN name %d out of range", tinnName)
	}
	return ns.fullOf[tinnName], nil
}

// Roundtrip routes between two self-chosen names over the given scheme.
func (ns *NamedSystem) Roundtrip(sch Scheme, srcFull, dstFull string) (*RoundtripTrace, error) {
	src, err := ns.TINNName(srcFull)
	if err != nil {
		return nil, err
	}
	dst, err := ns.TINNName(dstFull)
	if err != nil {
		return nil, err
	}
	return sch.Roundtrip(src, dst)
}

// Stretch returns the measured stretch of a trace between two self-chosen
// names.
func (ns *NamedSystem) Stretch(srcFull, dstFull string, tr *RoundtripTrace) (float64, error) {
	src, err := ns.TINNName(srcFull)
	if err != nil {
		return 0, err
	}
	dst, err := ns.TINNName(dstFull)
	if err != nil {
		return 0, err
	}
	return ns.Sys.Stretch(src, dst, tr), nil
}
