package rtroute_test

import (
	"fmt"
	"math/rand"

	"rtroute"
)

// ExampleNewSystem shows the minimal end-to-end flow: generate a network,
// attach an adversarial naming, build the stretch-6 scheme, and route.
func ExampleNewSystem() {
	rng := rand.New(rand.NewSource(1))
	g := rtroute.RandomSC(16, 64, 4, rng)
	sys, err := rtroute.NewSystem(g, rtroute.ReversedNaming(16))
	if err != nil {
		panic(err)
	}
	scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(7))
	if err != nil {
		panic(err)
	}
	tr, err := scheme.Roundtrip(3, 12)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Weight() <= 6*sys.R(3, 12))
	// Output: true
}

// ExampleSystem_Build demonstrates the §4 polynomial-tradeoff scheme —
// Build(Polynomial, WithK(2)) — and its worst-case bound 8k^2+4k-4.
func ExampleSystem_Build() {
	rng := rand.New(rand.NewSource(2))
	g := rtroute.Grid(4, 4, rng)
	sys, err := rtroute.NewSystem(g, rtroute.RandomNaming(16, rng))
	if err != nil {
		panic(err)
	}
	poly, err := sys.Build(rtroute.Polynomial, rtroute.WithK(2))
	if err != nil {
		panic(err)
	}
	tr, err := poly.Roundtrip(sys.Naming.Name(0), sys.Naming.Name(15))
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Weight() <= 36*sys.R(sys.Naming.Name(0), sys.Naming.Name(15)))
	// Output: true
}

// ExampleNewDirectory shows the §1.1.2 hashing reduction: self-chosen
// names land in {0..n-1} slots with small buckets.
func ExampleNewDirectory() {
	rng := rand.New(rand.NewSource(3))
	names := []string{"alice", "bob", "carol", "dave"}
	dir, err := rtroute.NewDirectory(names, 4, rng)
	if err != nil {
		panic(err)
	}
	slot := dir.SlotOf("alice")
	found := false
	for _, nm := range dir.Bucket(slot) {
		if nm == "alice" {
			found = true
		}
	}
	fmt.Println(found, slot >= 0 && slot < 4)
	// Output: true true
}

// ExampleMeasureScheme aggregates stretch over sampled pairs — the
// building block of the DESIGN.md experiment index.
func ExampleMeasureScheme() {
	rng := rand.New(rand.NewSource(4))
	g := rtroute.RandomSC(24, 96, 5, rng)
	sys, err := rtroute.NewSystem(g, rtroute.RandomNaming(24, rng))
	if err != nil {
		panic(err)
	}
	scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(5))
	if err != nil {
		panic(err)
	}
	stats, err := rtroute.MeasureScheme(sys, scheme, 200, 6)
	if err != nil {
		panic(err)
	}
	fmt.Println(stats.Pairs == 200, stats.Max <= 6, stats.Mean >= 1)
	// Output: true true true
}

// ExampleSystem_ServeCluster shards a scheme across an in-process
// 8-shard cluster: packets cross shard boundaries as wire-encoded
// frames, and the served aggregates equal a sequential replay's.
func ExampleSystem_ServeCluster() {
	rng := rand.New(rand.NewSource(8))
	g := rtroute.RandomSC(48, 192, 8, rng)
	sys, err := rtroute.NewSystem(g, rtroute.RandomNaming(48, rng))
	if err != nil {
		panic(err)
	}
	scheme, err := sys.Build(rtroute.StretchSix, rtroute.WithSeed(8))
	if err != nil {
		panic(err)
	}
	res, err := sys.ServeCluster(scheme, rtroute.ClusterConfig{
		Shards:    8,
		Placement: rtroute.PlaceRTZAligned,
		Packets:   2000,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Packets == 2000, res.CrossShard > 0, res.Stretch.Max <= 6)
	// Output: true true true
}
