package blocks

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtroute/internal/graph"
	"rtroute/internal/rtmetric"
)

func TestUniverseRadix(t *testing.T) {
	tests := []struct {
		n, k, wantQ int
	}{
		{36, 2, 6},
		{16, 2, 4},
		{17, 2, 5},
		{27, 3, 3},
		{28, 3, 4},
		{1000, 2, 32}, // 32^2 = 1024 >= 1000
		{1, 2, 1},
	}
	for _, tc := range tests {
		u := NewUniverse(tc.n, tc.k)
		if u.Q != tc.wantQ {
			t.Fatalf("NewUniverse(%d,%d).Q = %d, want %d", tc.n, tc.k, u.Q, tc.wantQ)
		}
		if pow(u.Q, u.K) < tc.n {
			t.Fatalf("q^k = %d < n = %d", pow(u.Q, u.K), tc.n)
		}
	}
}

func TestUniversePanics(t *testing.T) {
	for _, tc := range []struct {
		n, k int
	}{{10, 1}, {10, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewUniverse(%d,%d) did not panic", tc.n, tc.k)
				}
			}()
			NewUniverse(tc.n, tc.k)
		}()
	}
}

func TestDigitsAndPrefix(t *testing.T) {
	u := NewUniverse(36, 2) // q = 6, k = 2
	d := u.Digits(23)       // 23 = 3*6 + 5
	if d[0] != 3 || d[1] != 5 {
		t.Fatalf("Digits(23) = %v, want [3 5]", d)
	}
	if u.Prefix(23, 0) != 0 || u.Prefix(23, 1) != 3 || u.Prefix(23, 2) != 23 {
		t.Fatalf("Prefix(23, ·) = %d,%d,%d; want 0,3,23",
			u.Prefix(23, 0), u.Prefix(23, 1), u.Prefix(23, 2))
	}
	if u.BlockOf(23) != 3 {
		t.Fatalf("BlockOf(23) = %d, want 3", u.BlockOf(23))
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	err := quick.Check(func(nameRaw uint16, kRaw uint8) bool {
		k := int(kRaw)%4 + 2
		n := 4096
		name := int32(int(nameRaw) % n)
		u := NewUniverse(n, k)
		d := u.Digits(name)
		if len(d) != k {
			return false
		}
		v := 0
		for _, dig := range d {
			if dig < 0 || dig >= u.Q {
				return false
			}
			v = v*u.Q + dig
		}
		return int32(v) == name
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrefixConsistentWithDigits(t *testing.T) {
	u := NewUniverse(1000, 3)
	for name := int32(0); name < 1000; name += 37 {
		d := u.Digits(name)
		for i := 0; i <= u.K; i++ {
			want := 0
			for j := 0; j < i; j++ {
				want = want*u.Q + d[j]
			}
			if got := u.Prefix(name, i); got != int32(want) {
				t.Fatalf("Prefix(%d,%d) = %d, want %d", name, i, got, want)
			}
		}
	}
}

func TestBlockPrefixConsistency(t *testing.T) {
	u := NewUniverse(216, 3) // q = 6, k = 3, blocks are 2-digit words
	for name := int32(0); name < 216; name++ {
		b := u.BlockOf(name)
		for i := 0; i < u.K; i++ {
			if u.BlockPrefix(b, i) != u.Prefix(name, i) {
				t.Fatalf("σ^%d(B_%d) = %d != σ^%d(%d) = %d",
					i, b, u.BlockPrefix(b, i), i, name, u.Prefix(name, i))
			}
		}
	}
}

func TestNamesInBlock(t *testing.T) {
	u := NewUniverse(36, 2)
	names := u.NamesInBlock(3)
	if len(names) != 6 {
		t.Fatalf("block 3 has %d names, want 6", len(names))
	}
	for i, nm := range names {
		if nm != int32(18+i) {
			t.Fatalf("block 3 names = %v, want 18..23", names)
		}
	}
	// Last block of a non-perfect-square n is short.
	u2 := NewUniverse(34, 2) // q = 6, block 5 holds 30..33
	if got := len(u2.NamesInBlock(5)); got != 4 {
		t.Fatalf("short block has %d names, want 4", got)
	}
}

func TestMatchLen(t *testing.T) {
	u := NewUniverse(10000, 4) // q = 10
	tests := []struct {
		a, b int32
		want int
	}{
		{2357, 2357, 4},
		{2357, 2358, 3},
		{2357, 2300, 2},
		{2357, 2999, 1},
		{2357, 3357, 0},
	}
	for _, tc := range tests {
		if got := u.MatchLen(tc.a, tc.b); got != tc.want {
			t.Fatalf("MatchLen(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func newSpace(t testing.TB, seed int64, n, extra int) *rtmetric.Space {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, extra, 10, rng)
	return rtmetric.New(g, graph.AllPairs(g), nil)
}

// TestLemma1 verifies the two bullets of Lemma 1 (k = 2): every node
// finds every block type within its sqrt(n) neighborhood, and set sizes
// are O(log n). This regenerates the guarantee illustrated by Fig. 2.
func TestLemma1(t *testing.T) {
	space := newSpace(t, 11, 64, 256)
	rng := rand.New(rand.NewSource(12))
	a, err := Assign(space, 2, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := space.G.N()
	sizes := rtmetric.NeighborhoodSizes(n, 2)
	maxPrefix := a.U.Prefix(int32(n-1), 1)
	for v := 0; v < n; v++ {
		nbhd := space.Neighborhood(graph.NodeID(v), sizes[1])
		for tau := int32(0); tau <= maxPrefix; tau++ {
			found := false
			for _, w := range nbhd {
				if a.Holds(w, 1, tau) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no node in N(%d) holds block %d", v, tau)
			}
		}
	}
	// |S_v| = O(log n): with boost 4 the expectation is 4 ln n ≈ 17;
	// allow generous concentration slack.
	if m := a.MaxSetSize(); m > 8*17 {
		t.Fatalf("max |S_v| = %d, implausibly large for O(log n)", m)
	}
}

// TestLemma4 verifies the hierarchical version for k = 3: every length-i
// prefix class is represented within N_i(v) for i = 1..k-1.
func TestLemma4(t *testing.T) {
	space := newSpace(t, 13, 64, 256)
	rng := rand.New(rand.NewSource(14))
	a, err := Assign(space, 3, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	n := space.G.N()
	sizes := rtmetric.NeighborhoodSizes(n, 3)
	for v := 0; v < n; v++ {
		for i := 1; i < 3; i++ {
			nbhd := space.Neighborhood(graph.NodeID(v), sizes[i])
			maxPrefix := a.U.Prefix(int32(n-1), i)
			for tau := int32(0); tau <= maxPrefix; tau++ {
				found := false
				for _, w := range nbhd {
					if a.Holds(w, i, tau) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("level %d: no node in N_%d(%d) holds prefix %d", i, i, v, tau)
				}
			}
		}
	}
}

func TestAssignIncludesOwnBlock(t *testing.T) {
	space := newSpace(t, 15, 36, 108)
	rng := rand.New(rand.NewSource(16))
	a, err := Assign(space, 2, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < space.G.N(); v++ {
		if !a.HoldsBlock(graph.NodeID(v), a.U.BlockOf(int32(v))) {
			t.Fatalf("node %d does not hold its own block (S'_u requirement, §3.3)", v)
		}
	}
}

func TestAssignWithNamePermutation(t *testing.T) {
	space := newSpace(t, 17, 49, 150)
	rng := rand.New(rand.NewSource(18))
	n := space.G.N()
	names := make([]int32, n)
	for i, p := range rng.Perm(n) {
		names[i] = int32(p)
	}
	a, err := Assign(space, 2, rng, Config{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if !a.HoldsBlock(graph.NodeID(v), a.U.BlockOf(names[v])) {
			t.Fatalf("node %d does not hold the block of its own NAME %d", v, names[v])
		}
	}
}

func TestAssignDeterministicGivenSeed(t *testing.T) {
	space := newSpace(t, 19, 25, 75)
	a1, err := Assign(space, 2, rand.New(rand.NewSource(20)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Assign(space, 2, rand.New(rand.NewSource(20)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a1.Sets {
		if len(a1.Sets[v]) != len(a2.Sets[v]) {
			t.Fatalf("node %d set size differs across same-seed runs", v)
		}
		for i := range a1.Sets[v] {
			if a1.Sets[v][i] != a2.Sets[v][i] {
				t.Fatalf("node %d block %d differs across same-seed runs", v, i)
			}
		}
	}
}

func TestSetsAreSorted(t *testing.T) {
	space := newSpace(t, 21, 49, 150)
	a, err := Assign(space, 2, rand.New(rand.NewSource(22)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, set := range a.Sets {
		for i := 1; i < len(set); i++ {
			if set[i] < set[i-1] {
				t.Fatalf("node %d set not sorted: %v", v, set)
			}
		}
	}
}
