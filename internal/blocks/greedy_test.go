package blocks

import (
	"math/rand"
	"reflect"
	"testing"

	"rtroute/internal/graph"
	"rtroute/internal/rtmetric"
)

func greedySpace(t *testing.T, n int, k int, seed int64) (*rtmetric.Space, *Assignment) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 8, rng)
	m := graph.AllPairs(g)
	space := rtmetric.New(g, m, nil)
	a, err := Assign(space, k, rng, Config{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	return space, a
}

// TestGreedyAssignmentCoverage: the deficiency-repair assignment must
// satisfy the same Lemma 1/4 property the sampled one does, at every
// level, and include every node's own block.
func TestGreedyAssignmentCoverage(t *testing.T) {
	for _, k := range []int{2, 3} {
		space, a := greedySpace(t, 96, k, 7)
		sizes := rtmetric.NeighborhoodSizes(96, k)
		if !a.verify(space, sizes) {
			t.Fatalf("k=%d: greedy assignment fails the Lemma verifier", k)
		}
		for v := 0; v < 96; v++ {
			if !a.HoldsBlock(graph.NodeID(v), a.U.BlockOf(int32(v))) {
				t.Fatalf("k=%d: node %d lost its own block", k, v)
			}
		}
	}
}

// TestGreedyAssignmentDeterministic: no randomness consumed — two runs
// produce identical sets, and the RNG's stream position is untouched.
func TestGreedyAssignmentDeterministic(t *testing.T) {
	_, a1 := greedySpace(t, 64, 2, 3)
	_, a2 := greedySpace(t, 64, 2, 3)
	if !reflect.DeepEqual(a1.Sets, a2.Sets) {
		t.Fatal("greedy assignment differs across identical runs")
	}
	g := graph.RandomSC(64, 256, 8, rand.New(rand.NewSource(3)))
	space := rtmetric.New(g, graph.AllPairs(g), nil)
	rng := rand.New(rand.NewSource(99))
	if _, err := Assign(space, 2, rng, Config{Greedy: true}); err != nil {
		t.Fatal(err)
	}
	if rng.Int63() != rand.New(rand.NewSource(99)).Int63() {
		t.Fatal("greedy assignment consumed randomness")
	}
}

// TestGreedySmallerThanSampled: the point of the greedy mode is leaner
// tables; on a representative instance it must not exceed the sampled
// distribution's average set size.
func TestGreedySmallerThanSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomSC(128, 512, 8, rng)
	m := graph.AllPairs(g)
	space := rtmetric.New(g, m, nil)
	greedy, err := Assign(space, 2, rand.New(rand.NewSource(9)), Config{Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Assign(space, 2, rand.New(rand.NewSource(9)), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.AvgSetSize() > sampled.AvgSetSize() {
		t.Fatalf("greedy avg set size %.2f exceeds sampled %.2f",
			greedy.AvgSetSize(), sampled.AvgSetSize())
	}
}
