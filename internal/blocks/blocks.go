// Package blocks implements the distributed-dictionary block machinery of
// §2 (Lemma 1) and §3.1 (Lemma 4) of the paper: the address space
// {0..n-1} is written in base q = ceil(n^(1/k)) as words of length k over
// the alphabet Σ = {0..q-1}; a block B_α (α ∈ Σ^(k-1)) holds the
// dictionary entries of the q names whose (k-1)-digit prefix is α; and a
// randomized assignment gives every node a set S_v of O(log n) blocks such
// that every prefix class is represented inside every neighborhood
// N_i(v).
package blocks

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"rtroute/internal/graph"
	"rtroute/internal/rtmetric"
)

// BlockID identifies a block B_α by the integer value of its prefix word
// α, i.e. BlockID(name) = name / q. Prefix extraction σ^i is integer
// division: σ^i(B_α) = α / q^(k-1-i).
type BlockID = int32

// Universe captures the base-q coding of the name space.
type Universe struct {
	N int // number of names (names are 0..N-1)
	K int // word length k >= 2
	Q int // radix q = ceil(N^(1/k)), adjusted so q^k >= N
}

// NewUniverse computes the radix for the given n and k. It panics if
// k < 2 or n < 1 (Lemma 1 is the k = 2 case).
func NewUniverse(n, k int) Universe {
	if k < 2 {
		panic(fmt.Sprintf("blocks: k must be >= 2, got %d", k))
	}
	if n < 1 {
		panic(fmt.Sprintf("blocks: n must be >= 1, got %d", n))
	}
	q := 1
	for pow(q, k) < n {
		q++
	}
	return Universe{N: n, K: k, Q: q}
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		if r > 1<<31 {
			return 1 << 31
		}
		r *= b
	}
	return r
}

// NumBlocks returns q^(k-1), the number of blocks covering the name space
// (some may be empty when n is not a perfect k-th power).
func (u Universe) NumBlocks() int { return pow(u.Q, u.K-1) }

// BlockOf returns the block containing the given name.
func (u Universe) BlockOf(name int32) BlockID { return BlockID(int(name) / u.Q) }

// Digits returns ⟨name⟩: the base-q representation of name, MSB first,
// zero-padded to length k.
func (u Universe) Digits(name int32) []int {
	d := make([]int, u.K)
	v := int(name)
	for i := u.K - 1; i >= 0; i-- {
		d[i] = v % u.Q
		v /= u.Q
	}
	return d
}

// Prefix returns σ^i(⟨name⟩) as an integer: the value of the first i
// base-q digits of name. Prefix(name, 0) == 0 for all names.
func (u Universe) Prefix(name int32, i int) int32 {
	return int32(int(name) / pow(u.Q, u.K-i))
}

// BlockPrefix returns σ^i(B_α): the value of the first i digits of the
// (k-1)-digit block word α.
func (u Universe) BlockPrefix(b BlockID, i int) int32 {
	return int32(int(b) / pow(u.Q, u.K-1-i))
}

// NamesInBlock returns the names {αq .. αq+q-1} ∩ [0,n) of block b.
func (u Universe) NamesInBlock(b BlockID) []int32 {
	var names []int32
	for x := int(b) * u.Q; x < (int(b)+1)*u.Q && x < u.N; x++ {
		names = append(names, int32(x))
	}
	return names
}

// MatchLen returns the length of the longest common base-q prefix of
// ⟨a⟩ and ⟨b⟩ (between 0 and k).
func (u Universe) MatchLen(a, b int32) int {
	for i := u.K; i >= 0; i-- {
		if u.Prefix(a, i) == u.Prefix(b, i) {
			return i
		}
	}
	return 0
}

// Assignment is a Lemma 1 / Lemma 4 block distribution: Sets[v] lists the
// blocks stored at node v (sorted ascending, own block always included as
// required by §3.3's S'_u).
type Assignment struct {
	U    Universe
	Sets [][]BlockID
}

// Config controls the assignment construction.
type Config struct {
	// Boost multiplies the per-block inclusion probability c·ln(n)/#blocks.
	// The Lemma's union bound needs a constant >= 3; larger values trade
	// table space for fewer verification retries. Default 4.
	Boost float64
	// MaxAttempts bounds the sample-and-verify loop. Default 32.
	MaxAttempts int
	// Names maps topological node index -> TINN name. nil means identity.
	// The dictionary is keyed by names; neighborhoods are topological.
	Names []int32
	// Greedy selects the deterministic deficiency-repair assignment
	// instead of probabilistic sampling: every node starts with its own
	// block, then each uncovered prefix class of each neighborhood is
	// repaired by assigning one representative block to the least-loaded
	// member. The result passes the same Lemma 1/4 verifier as the
	// sampled distribution but with near-minimal tables — the
	// construction the encoded-space certification (E14) measures, since
	// the Lemma is existential and the space bound should be measured on
	// the leanest assignment that realizes it. Deterministic: no
	// randomness consumed.
	Greedy bool
}

func (c *Config) fill() {
	if c.Boost <= 0 {
		c.Boost = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 32
	}
}

// Assign produces a block distribution satisfying Lemma 4 over the given
// roundtrip-metric space: for every node v, level 0 <= i < k and prefix
// τ ∈ Σ^i there is a node w in N_i+... — precisely, following the paper's
// usage (storage item (2) of §2 and (3a/3b) of §3.3), the verifier
// demands a block-holder for every length-i prefix inside N_i(v) for
// 1 <= i <= k-1, where |N_i(v)| = ceil(n^(i/k)). Lemma 1 is the k = 2
// case. The procedure samples the probabilistic-method distribution and
// verifies; failure to verify within MaxAttempts returns an error.
func Assign(space *rtmetric.Space, k int, rng *rand.Rand, cfg Config) (*Assignment, error) {
	cfg.fill()
	n := space.G.N()
	u := NewUniverse(n, k)
	names := cfg.Names
	if names == nil {
		names = make([]int32, n)
		for i := range names {
			names[i] = int32(i)
		}
	}
	nb := u.NumBlocks()
	// Inclusion probability per (node, block): boost * ln(n) / nb,
	// capped at 1.
	lnN := math.Log(float64(n))
	if lnN < 1 {
		lnN = 1
	}
	p := cfg.Boost * lnN / float64(nb)
	if p > 1 {
		p = 1
	}

	sizes := rtmetric.NeighborhoodSizes(n, k)
	if cfg.Greedy {
		return assignGreedy(space, u, names, sizes)
	}
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		a := &Assignment{U: u, Sets: make([][]BlockID, n)}
		for v := 0; v < n; v++ {
			own := u.BlockOf(names[v])
			set := []BlockID{own}
			for b := 0; b < nb; b++ {
				if BlockID(b) != own && rng.Float64() < p {
					set = append(set, BlockID(b))
				}
			}
			sortBlocks(set)
			a.Sets[v] = set
		}
		if a.verify(space, sizes) {
			return a, nil
		}
	}
	return nil, fmt.Errorf("blocks: no valid assignment after %d attempts (n=%d k=%d boost=%g)",
		cfg.MaxAttempts, n, k, cfg.Boost)
}

// assignGreedy is the deterministic deficiency-repair assignment:
// starting from own blocks, walk levels from finest (i = k-1) to
// coarsest and, for every node's neighborhood N_i(v), assign each
// missing length-i prefix class to the member currently holding the
// fewest blocks (representative block: the smallest realized block with
// that prefix). Repairs are monotone — adding blocks never uncovers a
// neighborhood processed earlier — so one pass per level suffices; the
// shared verifier still hard-checks the result.
func assignGreedy(space *rtmetric.Space, u Universe, names []int32, sizes []int) (*Assignment, error) {
	n := space.G.N()
	held := make([]map[BlockID]bool, n)
	counts := make([]int, n)
	for v := 0; v < n; v++ {
		held[v] = map[BlockID]bool{u.BlockOf(names[v]): true}
		counts[v] = 1
	}
	for i := u.K - 1; i >= 1; i-- {
		maxPrefix := u.Prefix(int32(u.N-1), i)
		repStep := pow(u.Q, u.K-1-i) // smallest block with prefix tau is tau*repStep
		covered := make(map[int32]bool)
		for v := 0; v < n; v++ {
			nbhd := space.Neighborhood(graph.NodeID(v), sizes[i])
			for key := range covered {
				delete(covered, key)
			}
			for _, w := range nbhd {
				for b := range held[w] {
					covered[u.BlockPrefix(b, i)] = true
				}
			}
			for tau := int32(0); tau <= maxPrefix; tau++ {
				if covered[tau] {
					continue
				}
				rep := BlockID(int(tau) * repStep)
				best := nbhd[0]
				for _, w := range nbhd[1:] {
					if counts[w] < counts[best] || (counts[w] == counts[best] && w < best) {
						best = w
					}
				}
				held[best][rep] = true
				counts[best]++
				covered[tau] = true
			}
		}
	}
	pruneGreedy(space, u, names, sizes, held)
	a := &Assignment{U: u, Sets: make([][]BlockID, n)}
	for v := 0; v < n; v++ {
		set := make([]BlockID, 0, len(held[v]))
		for b := range held[v] {
			set = append(set, b)
		}
		sortBlocks(set)
		a.Sets[v] = set
	}
	if !a.verify(space, sizes) {
		return nil, fmt.Errorf("blocks: greedy assignment failed verification (n=%d k=%d)", n, u.K)
	}
	return a, nil
}

// pruneGreedy is the reverse-delete pass of the deficiency-repair
// assignment: drop every block whose removal keeps all neighborhoods
// covered at every level. Coverage counts only decrease, so a block
// found unremovable stays unremovable and one deterministic pass yields
// an irredundant (locally minimal) assignment. Own blocks are kept
// unconditionally (§3.3's S'_u).
func pruneGreedy(space *rtmetric.Space, u Universe, names []int32, sizes []int, held []map[BlockID]bool) {
	n := space.G.N()
	levels := u.K - 1
	// inv[i][w] lists the nodes v with w in N_{i+1}(v); cnt[i] holds, per
	// node v and prefix class tau, the number of (member, block) pairs of
	// N_{i+1}(v) matching tau.
	inv := make([][][]graph.NodeID, levels)
	cnt := make([][][]int32, levels)
	stride := make([]int, levels)
	for li := 0; li < levels; li++ {
		i := li + 1
		stride[li] = int(u.Prefix(int32(u.N-1), i)) + 1
		inv[li] = make([][]graph.NodeID, n)
		cnt[li] = make([][]int32, n)
		for v := 0; v < n; v++ {
			cnt[li][v] = make([]int32, stride[li])
		}
		for v := 0; v < n; v++ {
			for _, w := range space.Neighborhood(graph.NodeID(v), sizes[i]) {
				inv[li][w] = append(inv[li][w], graph.NodeID(v))
				for b := range held[w] {
					cnt[li][v][u.BlockPrefix(b, i)]++
				}
			}
		}
	}
	// Deterministic order: heaviest nodes first, blocks descending, so
	// the over-assigned repair targets shed load first.
	order := make([]graph.NodeID, n)
	for v := range order {
		order[v] = graph.NodeID(v)
	}
	sort.Slice(order, func(a, b int) bool {
		if len(held[order[a]]) != len(held[order[b]]) {
			return len(held[order[a]]) > len(held[order[b]])
		}
		return order[a] < order[b]
	})
	for _, w := range order {
		own := u.BlockOf(names[w])
		blocks := make([]BlockID, 0, len(held[w]))
		for b := range held[w] {
			if b != own {
				blocks = append(blocks, b)
			}
		}
		sortBlocks(blocks)
		for j := len(blocks) - 1; j >= 0; j-- {
			b := blocks[j]
			removable := true
			for li := 0; li < levels && removable; li++ {
				tau := u.BlockPrefix(b, li+1)
				for _, v := range inv[li][w] {
					if cnt[li][v][tau] < 2 {
						removable = false
						break
					}
				}
			}
			if !removable {
				continue
			}
			delete(held[w], b)
			for li := 0; li < levels; li++ {
				tau := u.BlockPrefix(b, li+1)
				for _, v := range inv[li][w] {
					cnt[li][v][tau]--
				}
			}
		}
	}
}

func sortBlocks(s []BlockID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Holds reports whether node w stores a block whose length-i prefix is τ.
func (a *Assignment) Holds(w graph.NodeID, i int, tau int32) bool {
	for _, b := range a.Sets[w] {
		if a.U.BlockPrefix(b, i) == tau {
			return true
		}
	}
	return false
}

// HoldsBlock reports whether node w stores block b.
func (a *Assignment) HoldsBlock(w graph.NodeID, b BlockID) bool {
	for _, x := range a.Sets[w] {
		if x == b {
			return true
		}
	}
	return false
}

// verify checks the Lemma 4 coverage property for all nodes, levels and
// prefixes realized by actual names.
func (a *Assignment) verify(space *rtmetric.Space, sizes []int) bool {
	n := space.G.N()
	u := a.U
	for v := 0; v < n; v++ {
		for i := 1; i < u.K; i++ {
			nbhd := space.Neighborhood(graph.NodeID(v), sizes[i])
			// Collect covered prefixes of length i within N_i(v).
			covered := make(map[int32]bool)
			for _, w := range nbhd {
				for _, b := range a.Sets[w] {
					covered[u.BlockPrefix(b, i)] = true
				}
			}
			// Every realizable prefix must appear. Realizable prefixes of
			// length i are σ^i(name) for names 0..n-1, i.e. 0..ceil stuff;
			// enumerate via blocks of real names.
			maxPrefix := u.Prefix(int32(u.N-1), i)
			for tau := int32(0); tau <= maxPrefix; tau++ {
				if !covered[tau] {
					return false
				}
			}
		}
	}
	return true
}

// MaxSetSize returns max_v |S_v|, the quantity Lemma 1/4 bound by O(log n).
func (a *Assignment) MaxSetSize() int {
	m := 0
	for _, s := range a.Sets {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// AvgSetSize returns the mean |S_v|.
func (a *Assignment) AvgSetSize() float64 {
	total := 0
	for _, s := range a.Sets {
		total += len(s)
	}
	return float64(total) / float64(len(a.Sets))
}
