package blocks

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAssignFailsWhenImpossible(t *testing.T) {
	// A boost so small that coverage cannot verify: Assign must give up
	// with a diagnosable error after MaxAttempts, not loop forever.
	space := newSpace(t, 60, 64, 192)
	rng := rand.New(rand.NewSource(61))
	_, err := Assign(space, 2, rng, Config{Boost: 0.0001, MaxAttempts: 3})
	// Own blocks alone occasionally cover tiny instances; accept either
	// outcome but require the failure message to be informative when it
	// fails.
	if err != nil && !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("uninformative failure: %v", err)
	}
}

func TestAssignDefaultsApplied(t *testing.T) {
	space := newSpace(t, 62, 25, 75)
	rng := rand.New(rand.NewSource(63))
	a, err := Assign(space, 2, rng, Config{}) // zero config: defaults
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxSetSize() < 1 {
		t.Fatal("empty sets under defaults")
	}
}

func TestHoldsNegativeCases(t *testing.T) {
	space := newSpace(t, 64, 16, 48)
	rng := rand.New(rand.NewSource(65))
	a, err := Assign(space, 2, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A prefix value beyond the realizable range is held by nobody.
	for v := 0; v < 16; v++ {
		if a.Holds(int32(v), 1, 9999) {
			t.Fatalf("node %d claims to hold impossible prefix", v)
		}
		if a.HoldsBlock(int32(v), 9999) {
			t.Fatalf("node %d claims to hold impossible block", v)
		}
	}
}

func TestAvgSetSizeBounds(t *testing.T) {
	space := newSpace(t, 66, 49, 150)
	rng := rand.New(rand.NewSource(67))
	a, err := Assign(space, 2, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	avg := a.AvgSetSize()
	if avg < 1 || avg > float64(a.U.NumBlocks()) {
		t.Fatalf("avg set size %.2f outside [1, %d]", avg, a.U.NumBlocks())
	}
	if float64(a.MaxSetSize()) < avg {
		t.Fatalf("max %d below avg %.2f", a.MaxSetSize(), avg)
	}
}

func TestUniverseSingleNode(t *testing.T) {
	u := NewUniverse(1, 2)
	if u.Q != 1 || u.NumBlocks() != 1 {
		t.Fatalf("singleton universe wrong: q=%d blocks=%d", u.Q, u.NumBlocks())
	}
	if u.BlockOf(0) != 0 || u.Prefix(0, 1) != 0 {
		t.Fatal("singleton coding wrong")
	}
}
