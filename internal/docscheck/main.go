// Command docscheck is the docs CI gate: it holds the markdown
// documentation to the same hygiene bar as the code. For every file
// named on the command line it
//
//   - extracts each ```go code fence, wraps bare statement snippets in
//     a minimal package/function shell, and requires the result to
//     parse as Go — a fence with a package clause must additionally be
//     gofmt-clean as written;
//   - resolves every relative markdown link ([text](path), optionally
//     with a #fragment) against the filesystem, and checks fragments
//     against the target's GitHub-style heading anchors.
//
// External links (http/https/mailto) are not fetched. Exit status is
// non-zero if any fence or link fails, with one diagnostic per finding.
//
// Usage:
//
//	go run ./internal/docscheck README.md DESIGN.md
package main

import (
	"fmt"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck FILE.md ...")
		os.Exit(2)
	}
	failures := 0
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			failures++
			continue
		}
		text := string(data)
		failures += checkFences(path, text)
		failures += checkLinks(path, text)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", failures)
		os.Exit(1)
	}
}

// fence is one extracted ```go block.
type fence struct {
	line int
	code string
}

func goFences(text string) []fence {
	var out []fence
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		out = append(out, fence{line: start + 1, code: strings.Join(lines[start:j], "\n")})
		i = j
	}
	return out
}

// checkFences parses every Go fence; fences written as complete files
// (leading package clause) must also be gofmt-clean byte for byte.
func checkFences(path, text string) int {
	failures := 0
	for _, f := range goFences(text) {
		src, complete := wrapSnippet(f.code)
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "fence.go", src, parser.ParseComments); err != nil {
			fmt.Fprintf(os.Stderr, "%s:%d: go fence does not parse: %v\n", path, f.line, err)
			failures++
			continue
		}
		if complete {
			formatted, err := format.Source([]byte(f.code))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: go fence does not format: %v\n", path, f.line, err)
				failures++
				continue
			}
			if strings.TrimSuffix(string(formatted), "\n") != strings.TrimSuffix(f.code, "\n") {
				fmt.Fprintf(os.Stderr, "%s:%d: go fence is not gofmt-clean\n", path, f.line)
				failures++
			}
		}
	}
	return failures
}

// wrapSnippet turns a fence into a parseable file: complete files pass
// through; top-level declaration snippets get a package clause;
// statement snippets get a package clause and a function shell.
func wrapSnippet(code string) (src string, complete bool) {
	trimmed := strings.TrimSpace(code)
	if strings.HasPrefix(trimmed, "package ") {
		return code, true
	}
	for _, prefix := range []string{"func ", "type ", "import ", "const ", "var "} {
		if strings.HasPrefix(trimmed, prefix) {
			return "package fence\n" + code, false
		}
	}
	return "package fence\n\nfunc fence() {\n" + code + "\n}\n", false
}

var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks resolves every relative link target and fragment.
func checkLinks(path, text string) int {
	failures := 0
	dir := filepath.Dir(path)
	// Strip code fences: link-looking text inside them (slice syntax,
	// index expressions) is code, not markdown.
	stripped := stripFences(text)
	for _, m := range linkRe.FindAllStringSubmatch(stripped, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		resolved := path
		if file != "" {
			resolved = filepath.Join(dir, file)
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s: broken link %q: %v\n", path, target, err)
				failures++
				continue
			}
		}
		if frag == "" {
			continue
		}
		data, err := os.ReadFile(resolved)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: link %q: %v\n", path, target, err)
			failures++
			continue
		}
		if !anchors(string(data))[frag] {
			fmt.Fprintf(os.Stderr, "%s: link %q: no heading anchor #%s in %s\n", path, target, frag, resolved)
			failures++
		}
	}
	return failures
}

func stripFences(text string) string {
	var b strings.Builder
	in := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			in = !in
			continue
		}
		if !in {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

var anchorStrip = regexp.MustCompile(`[^a-z0-9 \-]`)

// anchors collects GitHub-style heading anchors: lowercase, punctuation
// dropped, spaces to hyphens.
func anchors(text string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(stripFences(text), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		h := strings.TrimLeft(line, "#")
		h = strings.ToLower(strings.TrimSpace(h))
		h = anchorStrip.ReplaceAllString(h, "")
		h = strings.ReplaceAll(h, " ", "-")
		out[h] = true
	}
	return out
}
