package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// ownsAll / ownsNone are the two extreme localities for the lazy flight
// decoder: the owning endpoint (every label decoded) and a pure transit
// shard (endpoint labels skipped).
type ownsAll struct{}

func (ownsAll) OwnsName(int32) bool { return true }

type ownsNone struct{}

func (ownsNone) OwnsName(int32) bool { return false }

// flightTestFrame is the fixed preamble the golden flight blobs carry.
func flightTestFrame() *Frame {
	return &Frame{
		Kind: FrameFlight, SrcName: 2, DstName: 9, At: 5, Home: 1,
		Origin: 7, Rt: 42, Sampled: true,
		Out: LegTotals{Hops: 3, Weight: 117, MaxHeaderWords: 14},
	}
}

// TestGoldenFlightFrames locks the flight frame's fixed layout, the
// byte-stability the zero-decode crossing path depends on: for every
// scheme kind, a committed blob must (a) byte-match a fresh encoding,
// (b) survive a lazy decode at a pure transit shard and at an owning
// shard and re-encode to the identical bytes in both cases, and (c)
// patch in place (RepatchFlight) to exactly the bytes a full re-encode
// would produce. Any layout change trips this test — bump Version and
// regenerate with `go test ./internal/wire -run TestGoldenFlight -update`.
func TestGoldenFlightFrames(t *testing.T) {
	planes, _ := testPlanes(t, 20, 42)
	keys := make([]string, 0, len(planes))
	for k := range planes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, name := range keys {
		p := planes[name]
		t.Run(name, func(t *testing.T) {
			h, err := p.NewHeader(2, 9)
			if err != nil {
				t.Fatal(err)
			}
			f := flightTestFrame()
			blob, err := AppendFlightFrame(nil, f, h, nil)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "flight-"+name+".rtwf")
			if *update {
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("fresh encoding (%d bytes) differs from golden %s (%d bytes): flight layout changed without a version bump",
					len(blob), path, len(want))
			}

			// Decode lazily at both locality extremes; re-encoding with
			// the received frame as prev must reproduce it byte for
			// byte — transit shards never perturb the labels they skip.
			for _, loc := range []struct {
				name string
				loc  Locality
			}{{"transit", ownsNone{}}, {"owner", ownsAll{}}} {
				var fr Frame
				if err := UnmarshalFlightFrame(want, &fr); err != nil {
					t.Fatal(err)
				}
				var hd HeaderDecoder
				dh, fs, err := hd.DecodeFlight(&fr, loc.loc)
				if err != nil {
					t.Fatalf("%s decode: %v", loc.name, err)
				}
				again, err := AppendFlightFrame(nil, &fr, dh, want)
				if err != nil {
					t.Fatalf("%s re-encode: %v", loc.name, err)
				}
				if !bytes.Equal(again, want) {
					t.Fatalf("%s re-encode does not reproduce the golden bytes", loc.name)
				}
				// A clean crossing's in-place patch must be
				// indistinguishable from the full re-encode.
				if fs.CanPatch(&fr, dh) {
					fr.At = 11
					fr.Out.Hops += 2
					fr.Out.Weight += 31
					patched := append([]byte(nil), want...)
					if err := RepatchFlight(patched, &fr, dh); err != nil {
						t.Fatal(err)
					}
					full, err := AppendFlightFrame(nil, &fr, dh, want)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(patched, full) {
						t.Fatalf("%s: RepatchFlight and AppendFlightFrame disagree", loc.name)
					}
				}
			}
		})
	}
}
