package wire_test

import (
	"bytes"
	"fmt"
	"math/rand"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/wire"
)

// Example snapshots a built scheme to wire bytes and restores it as a
// Deployment of per-node routers: the marshal/unmarshal roundtrip is
// canonical (re-encoding the restored deployment reproduces the blob
// byte for byte) and the restored routers forward identically.
func Example() {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomSC(16, 64, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(5)), core.Stretch6Config{})
	if err != nil {
		fmt.Println(err)
		return
	}

	blob, err := wire.MarshalScheme(s6)
	if err != nil {
		fmt.Println(err)
		return
	}
	info, err := wire.PeekSnapshot(blob)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("snapshot: %s over %d nodes (format v%d)\n", info.Kind, info.Nodes, info.Version)

	dep, err := wire.UnmarshalScheme(blob)
	if err != nil {
		fmt.Println(err)
		return
	}
	again, err := wire.MarshalScheme(dep)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("canonical re-encode:", bytes.Equal(blob, again))
	// Output:
	// snapshot: stretch6 over 16 nodes (format v2)
	// canonical re-encode: true
}
