package wire

import (
	"encoding/binary"
	"fmt"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// The flight frame: the fixed-layout form an in-flight packet wears
// between shards. A forwarding shard touches a frame many times but
// *reads* almost none of it — it needs the current node, the running
// leg totals and the roundtrip routing preamble, and it mutates at most
// one scheme byte per segment (the rtz leg phase, the hop descent
// flag). The varint frame (FramePacket) makes every crossing pay a full
// header decode and re-encode; the flight frame puts everything a
// forwarding shard reads at fixed offsets, leaves the big label blobs
// as opaque byte ranges copied verbatim (or not copied at all: a clean
// crossing patches the received buffer in place and ships it onward),
// and defers full varint label decode to the shards that own the
// roundtrip's endpoints.
//
// Layout (all fixed-width fields little-endian):
//
//	offset  0: magic "RTWF" (4 bytes)
//	offset  4: version (1 byte — Version < 0x80, so the envelope's
//	           uvarint version collapses to a fixed byte)
//	offset  5: blob type (3 = frame)
//	offset  6: frame kind (6 = flight)
//	offset  7: flags (bit0 = return leg, bit1 = sampled)
//	offset  8: source name   (u32)
//	offset 12: dest name     (u32)
//	offset 16: current node  (u32)
//	offset 20: home shard    (u32, two's-complement int32)
//	offset 24: origin        (u64)
//	offset 32: roundtrip tag (u64)
//	offset 40: outbound totals (hops u32, weight u64, header words u32)
//	offset 56: return totals   (same 16-byte shape)
//	offset 72: header kind (1 byte, core.Kind)
//	offset 73: header section, kind-specific (below), to end of frame
//
// The header section splits into a small fixed part (the scalars the
// scheme's waypoint logic compares, plus u16 offsets locating the
// variable blobs) and the label blobs in the existing varint codecs.
// The blobs a crossing never reads — the stretch-6 source/fetched
// labels, the rtz source label, the hop handshake — are located by
// offset so the lazy decoder can skip them entirely and the re-encoder
// can copy them verbatim from the received frame.

const (
	flightOffFlags   = 7
	flightOffSrcName = 8
	flightOffDstName = 12
	flightOffAt      = 16
	flightOffHome    = 20
	flightOffOrigin  = 24
	flightOffRt      = 32
	flightOffOut     = 40
	flightOffBack    = 56
	flightOffKind    = 72
	flightOffSection = 73
	// flightMinLen is the smallest structurally valid flight frame:
	// preamble + header kind byte + at least one section byte.
	flightMinLen = flightOffSection + 1
)

const (
	flightFlagReturn  byte = 1 << 0
	flightFlagSampled byte = 1 << 1
)

// Stretch-6 section, offsets relative to the section start. The
// forwarding shard patches only the leg phase byte; mode/stage/dict
// changes (waypoint transitions) force a re-encode.
const (
	s6OffMode       = 0  // core.Mode byte
	s6OffStage      = 1  // core.S6Stage byte
	s6OffPhase      = 2  // rtz.Phase byte (the patch byte)
	s6OffLegSet     = 3  // bool byte
	s6OffDict       = 4  // dict waypoint name (u32, -1 = direct)
	s6OffLegDest    = 8  // leg destination node (u32)
	s6OffLegNode    = 12 // leg label node (u32)
	s6OffLegCtrIdx  = 16 // leg label center index (u32)
	s6OffLegCenter  = 20 // leg label center (u32)
	s6OffLegTin     = 24 // leg label tree tin (u32)
	s6OffLegW       = 28 // Leg.Words() (u16)
	s6OffSrcW       = 30 // SrcLabel.Words() (u16)
	s6OffFetchedW   = 32 // Fetched.Words() (u16)
	s6OffSrcOff     = 34 // section-relative offset of the SrcLabel blob (u16)
	s6OffFetchedOff = 36 // section-relative offset of the Fetched blob (u16)
	s6FixedLen      = 38 // then: leg light hops (fixed) | SrcLabel | Fetched blobs
)

// The leg's light-hop list is read at EVERY crossing (the rtz descent
// logic walks it), so unlike the endpoint-only label blobs it is stored
// fixed-width — u16 count then 8 bytes per hop (branch tin u32, port
// u32) — and decodes with straight-line loads instead of a varint loop.
const lightHopBytes = 8

// RTZ-plane section. No word-count fields: the header is fixed-size
// per leg and its source label is only measured where it is decoded.
const (
	rtzOffPhase     = 0  // rtz.Phase byte (the patch byte)
	rtzOffLegDest   = 1  // u32
	rtzOffLegNode   = 5  // u32
	rtzOffLegCtrIdx = 9  // u32
	rtzOffLegCenter = 13 // u32
	rtzOffLegTin    = 17 // u32
	rtzOffSrcOff    = 21 // section-relative offset of the SrcLabel blob (u16)
	rtzFixedLen     = 23 // then: leg light hops | SrcLabel blobs
)

// Hop-plane section.
const (
	hopOffDescending = 0  // bool byte (the patch byte)
	hopOffRefLevel   = 1  // u32
	hopOffRefIndex   = 5  // u32
	hopOffTargetTin  = 9  // u32
	hopOffHSOff      = 13 // section-relative offset of the handshake blob (u16)
	hopFixedLen      = 15 // then: target light hops | handshake blobs
)

// The Ex/Poly schemes rewrite waypoint stacks mid-leg, so their section
// is simply the existing varint header body: always fully decoded,
// always re-encoded, never patched. They are the ablation baselines,
// not the serving hot path.

// Locality is the lazy flight decoder's view of which roundtrip
// endpoints are local: label blobs are decoded only when this shard
// will read them (the destination's flip, the dictionary fetch, the
// source's completion). OwnsName must return false — never panic — for
// names outside the deployment, because flight frames are untrusted
// input on the network transport.
type Locality interface {
	OwnsName(name int32) bool
}

// FlightState is the decode-time snapshot DecodeFlight returns so the
// shard can detect, after forwarding, whether the received bytes are
// still valid (CanPatch) or the header changed shape and must be
// re-encoded.
type FlightState struct {
	kind      core.Kind
	ret       bool
	mode      core.Mode
	stage     core.S6Stage
	dict      int32
	patchable bool
}

// CanPatch reports whether the forwarded header can be shipped by
// patching the received flight frame in place (RepatchFlight): the leg
// did not flip and no waypoint transition rewrote a label. Forwarding
// mutates nothing else — the rtz substrate advances only the leg
// phase, the hop substrate only the descent flag — so equality of the
// snapshot scalars implies byte-stability of everything but the patch
// fields.
func (fs FlightState) CanPatch(f *Frame, h sim.Header) bool {
	if !fs.patchable || f.Return != fs.ret {
		return false
	}
	switch hh := h.(type) {
	case *core.S6Header:
		return fs.kind == core.KindStretchSix &&
			hh.Mode == fs.mode && hh.Stage == fs.stage && hh.DictName == fs.dict
	case *core.RTZHeader:
		return fs.kind == core.KindRTZ
	case *core.HopHeader:
		return fs.kind == core.KindHop
	default:
		return false
	}
}

// PeekFrameKind reads a transport message's frame kind without decoding
// it, so the shard can route flight frames and inject batches to their
// fixed-layout decoders and everything else to UnmarshalFrame. ok is
// false when the envelope is not this build's (the caller falls back to
// UnmarshalFrame for the full diagnostic).
func PeekFrameKind(data []byte) (FrameKind, bool) {
	if len(data) < flightOffFlags {
		return 0, false
	}
	for i, c := range magic {
		if data[i] != c {
			return 0, false
		}
	}
	if data[4] != Version || data[5] != blobFrame {
		return 0, false
	}
	return FrameKind(data[6]), true
}

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) flightTotals(t LegTotals) {
	e.u32(uint32(t.Hops))
	e.u64(uint64(t.Weight))
	e.u32(uint32(t.MaxHeaderWords))
}

func putFlightTotals(b []byte, t LegTotals) {
	binary.LittleEndian.PutUint32(b[0:], uint32(t.Hops))
	binary.LittleEndian.PutUint64(b[4:], uint64(t.Weight))
	binary.LittleEndian.PutUint32(b[12:], uint32(t.MaxHeaderWords))
}

func getFlightTotals(b []byte) (LegTotals, error) {
	var t LegTotals
	t.Hops = int32(binary.LittleEndian.Uint32(b[0:]))
	if t.Hops < 0 {
		return t, fmt.Errorf("wire: flight frame: negative leg hops %d", t.Hops)
	}
	w := binary.LittleEndian.Uint64(b[4:])
	if w > uint64(graph.Inf) {
		return t, fmt.Errorf("wire: flight frame: leg weight %d outside [0, Inf]", w)
	}
	t.Weight = graph.Dist(w)
	t.MaxHeaderWords = int32(binary.LittleEndian.Uint32(b[12:]))
	if t.MaxHeaderWords < 0 {
		return t, fmt.Errorf("wire: flight frame: negative header words %d", t.MaxHeaderWords)
	}
	return t, nil
}

// word16 bounds a cached word count to the section's u16 field.
func word16(w int) (uint16, error) {
	if w < 0 || w > 0xffff {
		return 0, fmt.Errorf("wire: label word count %d outside u16", w)
	}
	return uint16(w), nil
}

// UnmarshalFlightFrame decodes a flight frame's preamble into *f
// (overwriting every field). f.Header aliases the header section
// (kind byte included); decode it with HeaderDecoder.DecodeFlight.
func UnmarshalFlightFrame(data []byte, f *Frame) error {
	if len(data) < flightMinLen {
		return fmt.Errorf("wire: flight frame: %d bytes, need at least %d", len(data), flightMinLen)
	}
	for i, c := range magic {
		if data[i] != c {
			return fmt.Errorf("wire: flight frame: bad magic %q", data[:len(magic)])
		}
	}
	if data[4] != Version {
		return fmt.Errorf("wire: %w: flight frame has version byte %d, this build reads %d",
			ErrVersion, data[4], Version)
	}
	if data[5] != blobFrame {
		return fmt.Errorf("wire: flight frame: blob type %d, want %d", data[5], blobFrame)
	}
	if data[6] != byte(FrameFlight) {
		return fmt.Errorf("wire: flight frame: frame kind %d, want %d", data[6], FrameFlight)
	}
	flags := data[flightOffFlags]
	if flags&^(flightFlagReturn|flightFlagSampled) != 0 {
		return fmt.Errorf("wire: flight frame: unknown flag bits %#x", flags)
	}
	// Field-by-field assignment, not a struct literal: the composite
	// form zero-fills and copies the whole 96-byte Frame per received
	// frame (a measurable duffcopy on the crossing path). The info
	// fields other frame kinds use are cleared explicitly.
	f.Kind = FrameFlight
	f.Return = flags&flightFlagReturn != 0
	f.Sampled = flags&flightFlagSampled != 0
	f.SrcName = int32(binary.LittleEndian.Uint32(data[flightOffSrcName:]))
	f.DstName = int32(binary.LittleEndian.Uint32(data[flightOffDstName:]))
	f.At = graph.NodeID(int32(binary.LittleEndian.Uint32(data[flightOffAt:])))
	f.Home = int32(binary.LittleEndian.Uint32(data[flightOffHome:]))
	f.Origin = binary.LittleEndian.Uint64(data[flightOffOrigin:])
	f.Rt = binary.LittleEndian.Uint64(data[flightOffRt:])
	f.SchemeKind = 0
	f.Nodes = 0
	f.Shards = 0
	if f.Home < HomeClient {
		return fmt.Errorf("wire: flight frame: home %d outside [-2, MaxInt32]", f.Home)
	}
	var err error
	if f.Out, err = getFlightTotals(data[flightOffOut:]); err != nil {
		return err
	}
	if f.Back, err = getFlightTotals(data[flightOffBack:]); err != nil {
		return err
	}
	f.Header = data[flightOffKind:]
	return nil
}

// DecodeFlight decodes the header section of a flight frame previously
// opened with UnmarshalFlightFrame, into the decoder's reusable scratch
// storage (same reuse contract as DecodeBare). Label blobs that only
// the roundtrip's endpoints read are decoded when loc owns the relevant
// endpoint and left zero otherwise — the undecoded bytes stay in the
// received frame, which AppendFlightFrame copies verbatim and
// RepatchFlight never touches. The returned FlightState snapshots the
// patch-relevant scalars.
func (hd *HeaderDecoder) DecodeFlight(f *Frame, loc Locality) (sim.Header, FlightState, error) {
	if f.Kind != FrameFlight || len(f.Header) < 2 {
		return nil, FlightState{}, fmt.Errorf("wire: DecodeFlight needs an unmarshaled flight frame")
	}
	hd.light.reset()
	hd.wps.reset()
	hd.glbs.reset()
	kind := core.Kind(f.Header[0])
	sec := f.Header[1:]
	switch kind {
	case core.KindStretchSix:
		hh, ok := hd.scratch.(*core.S6Header)
		if !ok {
			hh = &core.S6Header{}
			hd.scratch = hh
		}
		fs, err := decodeFlightS6(sec, f, hh, loc, hd)
		if err != nil {
			return nil, FlightState{}, err
		}
		return hh, fs, nil
	case core.KindRTZ:
		hh, ok := hd.scratch.(*core.RTZHeader)
		if !ok {
			hh = &core.RTZHeader{}
			hd.scratch = hh
		}
		fs, err := decodeFlightRTZ(sec, f, hh, loc, hd)
		if err != nil {
			return nil, FlightState{}, err
		}
		return hh, fs, nil
	case core.KindHop:
		hh, ok := hd.scratch.(*core.HopHeader)
		if !ok {
			hh = &core.HopHeader{}
			hd.scratch = hh
		}
		fs, err := decodeFlightHop(sec, f, hh, loc, hd)
		if err != nil {
			return nil, FlightState{}, err
		}
		return hh, fs, nil
	case core.KindExStretch, core.KindPolynomial:
		// Generic section: the varint header body, fully decoded.
		d := &decoder{data: sec, hd: hd}
		h, err := hd.dispatch(d, kind, true)
		if err != nil {
			return nil, FlightState{}, err
		}
		return h, FlightState{kind: kind, ret: f.Return}, nil
	default:
		return nil, FlightState{}, fmt.Errorf("wire: flight frame: unknown header kind %d", byte(kind))
	}
}

// The blob decoders decode one offset-located blob strictly: the blob
// must fill its byte range exactly.

func (e *encoder) lightHopsFixed(light []tree.LightHop) error {
	if len(light) > 0xffff {
		return fmt.Errorf("wire: flight frame: %d light hops exceeds u16", len(light))
	}
	n := len(e.buf)
	e.buf = append(e.buf, make([]byte, 2+len(light)*lightHopBytes)...)
	b := e.buf[n:]
	binary.LittleEndian.PutUint16(b, uint16(len(light)))
	b = b[2:]
	for i := range light {
		binary.LittleEndian.PutUint32(b[i*lightHopBytes:], uint32(light[i].BranchTin))
		binary.LittleEndian.PutUint32(b[i*lightHopBytes+4:], uint32(light[i].Port))
	}
	return nil
}

func decodeLightFixed(blob []byte, hd *HeaderDecoder) ([]tree.LightHop, error) {
	light, n, err := decodeLightFixedAt(blob, hd)
	if err != nil {
		return nil, err
	}
	if n != len(blob) {
		return nil, fmt.Errorf("wire: flight frame: light-hop blob %d bytes, expected %d", len(blob), n)
	}
	return light, nil
}

// decodeLightFixedAt decodes one fixed-width light-hop list from the
// front of blob and reports how many bytes it spanned, so callers with
// several variable-width fields in sequence (the handshake blob) can
// walk them without per-field offsets.
func decodeLightFixedAt(blob []byte, hd *HeaderDecoder) ([]tree.LightHop, int, error) {
	if len(blob) < 2 {
		return nil, 0, fmt.Errorf("wire: flight frame: light-hop blob %d bytes, need 2", len(blob))
	}
	c := int(binary.LittleEndian.Uint16(blob))
	n := 2 + c*lightHopBytes
	if len(blob) < n {
		return nil, 0, fmt.Errorf("wire: flight frame: light-hop blob %d bytes, count %d needs %d",
			len(blob), c, n)
	}
	if c == 0 {
		return nil, n, nil
	}
	light := hd.light.take(c)
	for i := range light {
		off := 2 + i*lightHopBytes
		light[i].BranchTin = int32(binary.LittleEndian.Uint32(blob[off:]))
		light[i].Port = graph.PortID(int32(binary.LittleEndian.Uint32(blob[off+4:])))
	}
	return light, n, nil
}

// The endpoint label blobs use the same fixed-width discipline as the
// leg's light hops — four u32 scalars then the light-hop list — rather
// than the schemes' varint codecs: the blobs are internal to the flight
// frame (forwarding shards copy them verbatim by offset), and the
// endpoints that do decode them shouldn't pay a varint loop for it.
const labelFixedLen = 16

func (e *encoder) rtzLabelFixed(l rtz.Label) error {
	var fixed [labelFixedLen]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(l.Node))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(l.CenterIdx))
	binary.LittleEndian.PutUint32(fixed[8:], uint32(l.Center))
	binary.LittleEndian.PutUint32(fixed[12:], uint32(l.TreeLabel.Tin))
	e.buf = append(e.buf, fixed[:]...)
	return e.lightHopsFixed(l.TreeLabel.Light)
}

func decodeLabelBlob(blob []byte, hd *HeaderDecoder) (rtz.Label, error) {
	var l rtz.Label
	if len(blob) < labelFixedLen+2 {
		return l, fmt.Errorf("wire: flight frame: label blob %d bytes, need %d", len(blob), labelFixedLen+2)
	}
	l.Node = graph.NodeID(int32(binary.LittleEndian.Uint32(blob[0:])))
	l.CenterIdx = int32(binary.LittleEndian.Uint32(blob[4:]))
	l.Center = graph.NodeID(int32(binary.LittleEndian.Uint32(blob[8:])))
	l.TreeLabel.Tin = int32(binary.LittleEndian.Uint32(blob[12:]))
	var err error
	l.TreeLabel.Light, err = decodeLightFixed(blob[labelFixedLen:], hd)
	return l, err
}

func (e *encoder) handshakeFixed(hs rtz.Handshake) error {
	var fixed [8]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(hs.Ref.Level))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(hs.Ref.Index))
	e.buf = append(e.buf, fixed[:]...)
	e.u32(uint32(hs.ULabel.Tin))
	if err := e.lightHopsFixed(hs.ULabel.Light); err != nil {
		return err
	}
	e.u32(uint32(hs.VLabel.Tin))
	return e.lightHopsFixed(hs.VLabel.Light)
}

func decodeHandshakeBlob(blob []byte, hd *HeaderDecoder) (rtz.Handshake, error) {
	var hs rtz.Handshake
	if len(blob) < 12 {
		return hs, fmt.Errorf("wire: flight frame: handshake blob %d bytes, need 12", len(blob))
	}
	hs.Ref.Level = int32(binary.LittleEndian.Uint32(blob[0:]))
	hs.Ref.Index = int32(binary.LittleEndian.Uint32(blob[4:]))
	hs.ULabel.Tin = int32(binary.LittleEndian.Uint32(blob[8:]))
	light, n, err := decodeLightFixedAt(blob[12:], hd)
	if err != nil {
		return hs, err
	}
	hs.ULabel.Light = light
	rest := blob[12+n:]
	if len(rest) < 4 {
		return hs, fmt.Errorf("wire: flight frame: handshake blob truncated before second label")
	}
	hs.VLabel.Tin = int32(binary.LittleEndian.Uint32(rest[0:]))
	if hs.VLabel.Light, err = decodeLightFixed(rest[4:], hd); err != nil {
		return hs, err
	}
	return hs, nil
}

func decodeBoolByte(v byte) (bool, error) {
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("wire: flight frame: invalid bool byte %d", v)
	}
}

func decodeFlightS6(sec []byte, f *Frame, hh *core.S6Header, loc Locality, hd *HeaderDecoder) (FlightState, error) {
	if len(sec) < s6FixedLen {
		return FlightState{}, fmt.Errorf("wire: flight frame: stretch-6 section %d bytes, need %d", len(sec), s6FixedLen)
	}
	srcOff := int(binary.LittleEndian.Uint16(sec[s6OffSrcOff:]))
	fetchedOff := int(binary.LittleEndian.Uint16(sec[s6OffFetchedOff:]))
	if srcOff < s6FixedLen || srcOff > fetchedOff || fetchedOff > len(sec) {
		return FlightState{}, fmt.Errorf("wire: flight frame: stretch-6 blob offsets (%d, %d) outside [%d, %d]",
			srcOff, fetchedOff, s6FixedLen, len(sec))
	}
	legSet, err := decodeBoolByte(sec[s6OffLegSet])
	if err != nil {
		return FlightState{}, err
	}
	hh.Mode = core.Mode(sec[s6OffMode])
	hh.Stage = core.S6Stage(sec[s6OffStage])
	// The endpoint names live in the frame preamble, not the section:
	// honest encodes always agree, so the section stores them once.
	hh.DestName = f.DstName
	hh.SrcName = f.SrcName
	hh.DictName = int32(binary.LittleEndian.Uint32(sec[s6OffDict:]))
	hh.Leg.Dest = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[s6OffLegDest:])))
	hh.Leg.Label.Node = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[s6OffLegNode:])))
	hh.Leg.Label.CenterIdx = int32(binary.LittleEndian.Uint32(sec[s6OffLegCtrIdx:]))
	hh.Leg.Label.Center = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[s6OffLegCenter:])))
	hh.Leg.Label.TreeLabel.Tin = int32(binary.LittleEndian.Uint32(sec[s6OffLegTin:]))
	hh.Leg.Phase = rtz.Phase(sec[s6OffPhase])
	hh.LegSet = legSet
	if hh.Leg.Label.TreeLabel.Light, err = decodeLightFixed(sec[s6FixedLen:srcOff], hd); err != nil {
		return FlightState{}, err
	}
	// Lazy label decode: SrcLabel is read at the destination's flip and
	// at the dictionary waypoint's fetch branch; Fetched is read back at
	// the source during the via-source fetch return. Everywhere else the
	// blobs travel as opaque bytes.
	needSrc := !f.Return && (loc.OwnsName(f.DstName) ||
		(hh.Stage == core.S6StageFetch && loc.OwnsName(hh.DictName)))
	if needSrc {
		if hh.SrcLabel, err = decodeLabelBlob(sec[srcOff:fetchedOff], hd); err != nil {
			return FlightState{}, err
		}
	} else {
		hh.SrcLabel = rtz.Label{}
	}
	needFetched := !f.Return && hh.Stage == core.S6StageFetchReturn && loc.OwnsName(f.SrcName)
	if needFetched {
		if hh.Fetched, err = decodeLabelBlob(sec[fetchedOff:], hd); err != nil {
			return FlightState{}, err
		}
	} else {
		hh.Fetched = rtz.Label{}
	}
	hh.PrimeWordCaches(
		int32(binary.LittleEndian.Uint16(sec[s6OffLegW:])),
		int32(binary.LittleEndian.Uint16(sec[s6OffSrcW:])),
		int32(binary.LittleEndian.Uint16(sec[s6OffFetchedW:])))
	return FlightState{
		kind: core.KindStretchSix, ret: f.Return,
		mode: hh.Mode, stage: hh.Stage, dict: hh.DictName, patchable: true,
	}, nil
}

func decodeFlightRTZ(sec []byte, f *Frame, hh *core.RTZHeader, loc Locality, hd *HeaderDecoder) (FlightState, error) {
	if len(sec) < rtzFixedLen {
		return FlightState{}, fmt.Errorf("wire: flight frame: rtz section %d bytes, need %d", len(sec), rtzFixedLen)
	}
	srcOff := int(binary.LittleEndian.Uint16(sec[rtzOffSrcOff:]))
	if srcOff < rtzFixedLen || srcOff > len(sec) {
		return FlightState{}, fmt.Errorf("wire: flight frame: rtz blob offset %d outside [%d, %d]",
			srcOff, rtzFixedLen, len(sec))
	}
	hh.SrcName = f.SrcName
	hh.DstName = f.DstName
	hh.Leg.Dest = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[rtzOffLegDest:])))
	hh.Leg.Label.Node = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[rtzOffLegNode:])))
	hh.Leg.Label.CenterIdx = int32(binary.LittleEndian.Uint32(sec[rtzOffLegCtrIdx:]))
	hh.Leg.Label.Center = graph.NodeID(int32(binary.LittleEndian.Uint32(sec[rtzOffLegCenter:])))
	hh.Leg.Label.TreeLabel.Tin = int32(binary.LittleEndian.Uint32(sec[rtzOffLegTin:]))
	hh.Leg.Phase = rtz.Phase(sec[rtzOffPhase])
	var err error
	if hh.Leg.Label.TreeLabel.Light, err = decodeLightFixed(sec[rtzFixedLen:srcOff], hd); err != nil {
		return FlightState{}, err
	}
	// SrcLabel is read only at the destination's flip (BeginReturn).
	if !f.Return && loc.OwnsName(f.DstName) {
		if hh.SrcLabel, err = decodeLabelBlob(sec[srcOff:], hd); err != nil {
			return FlightState{}, err
		}
	} else {
		hh.SrcLabel = rtz.Label{}
	}
	return FlightState{kind: core.KindRTZ, ret: f.Return, patchable: true}, nil
}

func decodeFlightHop(sec []byte, f *Frame, hh *core.HopHeader, loc Locality, hd *HeaderDecoder) (FlightState, error) {
	if len(sec) < hopFixedLen {
		return FlightState{}, fmt.Errorf("wire: flight frame: hop section %d bytes, need %d", len(sec), hopFixedLen)
	}
	hsOff := int(binary.LittleEndian.Uint16(sec[hopOffHSOff:]))
	if hsOff < hopFixedLen || hsOff > len(sec) {
		return FlightState{}, fmt.Errorf("wire: flight frame: hop blob offset %d outside [%d, %d]",
			hsOff, hopFixedLen, len(sec))
	}
	descending, err := decodeBoolByte(sec[hopOffDescending])
	if err != nil {
		return FlightState{}, err
	}
	hh.Leg.Ref.Level = int32(binary.LittleEndian.Uint32(sec[hopOffRefLevel:]))
	hh.Leg.Ref.Index = int32(binary.LittleEndian.Uint32(sec[hopOffRefIndex:]))
	hh.Leg.Target.Tin = int32(binary.LittleEndian.Uint32(sec[hopOffTargetTin:]))
	hh.Leg.Descending = descending
	if hh.Leg.Target.Light, err = decodeLightFixed(sec[hopFixedLen:hsOff], hd); err != nil {
		return FlightState{}, err
	}
	// The handshake is read only at the destination's flip.
	if !f.Return && loc.OwnsName(f.DstName) {
		if hh.HS, err = decodeHandshakeBlob(sec[hsOff:], hd); err != nil {
			return FlightState{}, err
		}
	} else {
		hh.HS = rtz.Handshake{}
	}
	return FlightState{kind: core.KindHop, ret: f.Return, patchable: true}, nil
}

// RepatchFlight rewrites the routing preamble (current node, leg
// totals) and the scheme's single mutable byte in place, so a clean
// crossing — FlightState.CanPatch — ships the received buffer onward
// without re-encoding anything. data must be the frame the header was
// decoded from.
func RepatchFlight(data []byte, f *Frame, h sim.Header) error {
	if len(data) < flightMinLen || data[6] != byte(FrameFlight) {
		return fmt.Errorf("wire: RepatchFlight needs a flight frame")
	}
	binary.LittleEndian.PutUint32(data[flightOffAt:], uint32(f.At))
	putFlightTotals(data[flightOffOut:], f.Out)
	putFlightTotals(data[flightOffBack:], f.Back)
	sec := data[flightOffSection:]
	switch hh := h.(type) {
	case *core.S6Header:
		if data[flightOffKind] != byte(core.KindStretchSix) || len(sec) < s6FixedLen {
			return fmt.Errorf("wire: RepatchFlight: frame is not the header's")
		}
		sec[s6OffPhase] = byte(hh.Leg.Phase)
	case *core.RTZHeader:
		if data[flightOffKind] != byte(core.KindRTZ) || len(sec) < rtzFixedLen {
			return fmt.Errorf("wire: RepatchFlight: frame is not the header's")
		}
		sec[rtzOffPhase] = byte(hh.Leg.Phase)
	case *core.HopHeader:
		if data[flightOffKind] != byte(core.KindHop) || len(sec) < hopFixedLen {
			return fmt.Errorf("wire: RepatchFlight: frame is not the header's")
		}
		if hh.Leg.Descending {
			sec[hopOffDescending] = 1
		} else {
			sec[hopOffDescending] = 0
		}
	default:
		return fmt.Errorf("wire: RepatchFlight: %T header is not patchable", h)
	}
	return nil
}

// AppendFlightFrame encodes f and the live header h as a flight frame,
// appending to dst. prev, when non-nil, must be the flight frame h was
// decoded from (lazily): the label blobs the decoder skipped are copied
// from prev verbatim, so a frame stays byte-stable across shards that
// never read those labels. prev == nil (injection, or arrival in the
// legacy varint form) encodes every blob from the fully decoded struct.
func AppendFlightFrame(dst []byte, f *Frame, h sim.Header, prev []byte) ([]byte, error) {
	k, err := headerKind(h)
	if err != nil {
		return nil, err
	}
	var prevSec []byte
	if prev != nil {
		if len(prev) < flightMinLen || prev[6] != byte(FrameFlight) || prev[flightOffKind] != byte(k) {
			return nil, fmt.Errorf("wire: AppendFlightFrame: prev is not a %v flight frame", k)
		}
		prevSec = prev[flightOffSection:]
	}
	e := &encoder{buf: dst}
	e.buf = append(e.buf, magic[:]...)
	e.buf = append(e.buf, byte(Version), blobFrame, byte(FrameFlight))
	var flags byte
	if f.Return {
		flags |= flightFlagReturn
	}
	if f.Sampled {
		flags |= flightFlagSampled
	}
	e.byte1(flags)
	e.u32(uint32(f.SrcName))
	e.u32(uint32(f.DstName))
	e.u32(uint32(f.At))
	e.u32(uint32(f.Home))
	e.u64(f.Origin)
	e.u64(f.Rt)
	e.flightTotals(f.Out)
	e.flightTotals(f.Back)
	e.byte1(byte(k))
	secStart := len(e.buf)
	switch hh := h.(type) {
	case *core.S6Header:
		if err := e.flightS6Section(hh, prevSec, secStart); err != nil {
			return nil, err
		}
	case *core.RTZHeader:
		if err := e.flightRTZSection(hh, prevSec, secStart); err != nil {
			return nil, err
		}
	case *core.HopHeader:
		if err := e.flightHopSection(hh, prevSec, secStart); err != nil {
			return nil, err
		}
	default:
		// Generic section: the varint header body.
		if err := e.headerBody(h); err != nil {
			return nil, err
		}
	}
	return e.buf, nil
}

func (e *encoder) flightS6Section(hh *core.S6Header, prevSec []byte, secStart int) error {
	var fixed [s6FixedLen]byte
	fixed[s6OffMode] = byte(hh.Mode)
	fixed[s6OffStage] = byte(hh.Stage)
	fixed[s6OffPhase] = byte(hh.Leg.Phase)
	if hh.LegSet {
		fixed[s6OffLegSet] = 1
	}
	binary.LittleEndian.PutUint32(fixed[s6OffDict:], uint32(hh.DictName))
	binary.LittleEndian.PutUint32(fixed[s6OffLegDest:], uint32(hh.Leg.Dest))
	binary.LittleEndian.PutUint32(fixed[s6OffLegNode:], uint32(hh.Leg.Label.Node))
	binary.LittleEndian.PutUint32(fixed[s6OffLegCtrIdx:], uint32(hh.Leg.Label.CenterIdx))
	binary.LittleEndian.PutUint32(fixed[s6OffLegCenter:], uint32(hh.Leg.Label.Center))
	binary.LittleEndian.PutUint32(fixed[s6OffLegTin:], uint32(hh.Leg.Label.TreeLabel.Tin))
	legW, err := word16(hh.Leg.Words())
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(fixed[s6OffLegW:], legW)
	e.buf = append(e.buf, fixed[:]...)
	if err := e.lightHopsFixed(hh.Leg.Label.TreeLabel.Light); err != nil {
		return err
	}
	srcOff := len(e.buf) - secStart
	var srcW, fetchedW uint16
	if prevSec != nil {
		// SrcLabel is written once, at injection, before the first
		// crossing: copy the arrived bytes verbatim.
		pSrcOff := int(binary.LittleEndian.Uint16(prevSec[s6OffSrcOff:]))
		pFetchedOff := int(binary.LittleEndian.Uint16(prevSec[s6OffFetchedOff:]))
		if pSrcOff < s6FixedLen || pSrcOff > pFetchedOff || pFetchedOff > len(prevSec) {
			return fmt.Errorf("wire: AppendFlightFrame: corrupt prev stretch-6 offsets")
		}
		e.buf = append(e.buf, prevSec[pSrcOff:pFetchedOff]...)
		srcW = binary.LittleEndian.Uint16(prevSec[s6OffSrcW:])
		fetchedOff := len(e.buf) - secStart
		// Fetched is rewritten exactly at the dictionary waypoint's
		// Fetch -> FetchReturn transition (where it was just decoded
		// from the local table); every other crossing carries it
		// verbatim.
		if core.S6Stage(prevSec[s6OffStage]) == core.S6StageFetch && hh.Stage != core.S6StageFetch {
			if err := e.rtzLabelFixed(hh.Fetched); err != nil {
				return err
			}
			w, err := word16(hh.Fetched.Words())
			if err != nil {
				return err
			}
			fetchedW = w
		} else {
			e.buf = append(e.buf, prevSec[pFetchedOff:]...)
			fetchedW = binary.LittleEndian.Uint16(prevSec[s6OffFetchedW:])
		}
		return e.finishS6Section(secStart, srcOff, fetchedOff, srcW, fetchedW)
	}
	if err := e.rtzLabelFixed(hh.SrcLabel); err != nil {
		return err
	}
	w, err := word16(hh.SrcLabel.Words())
	if err != nil {
		return err
	}
	srcW = w
	fetchedOff := len(e.buf) - secStart
	if err := e.rtzLabelFixed(hh.Fetched); err != nil {
		return err
	}
	if fetchedW, err = word16(hh.Fetched.Words()); err != nil {
		return err
	}
	return e.finishS6Section(secStart, srcOff, fetchedOff, srcW, fetchedW)
}

func (e *encoder) finishS6Section(secStart, srcOff, fetchedOff int, srcW, fetchedW uint16) error {
	if fetchedOff > 0xffff {
		return fmt.Errorf("wire: flight section %d bytes exceeds u16 offsets", fetchedOff)
	}
	sec := e.buf[secStart:]
	binary.LittleEndian.PutUint16(sec[s6OffSrcW:], srcW)
	binary.LittleEndian.PutUint16(sec[s6OffFetchedW:], fetchedW)
	binary.LittleEndian.PutUint16(sec[s6OffSrcOff:], uint16(srcOff))
	binary.LittleEndian.PutUint16(sec[s6OffFetchedOff:], uint16(fetchedOff))
	return nil
}

func (e *encoder) flightRTZSection(hh *core.RTZHeader, prevSec []byte, secStart int) error {
	var fixed [rtzFixedLen]byte
	fixed[rtzOffPhase] = byte(hh.Leg.Phase)
	binary.LittleEndian.PutUint32(fixed[rtzOffLegDest:], uint32(hh.Leg.Dest))
	binary.LittleEndian.PutUint32(fixed[rtzOffLegNode:], uint32(hh.Leg.Label.Node))
	binary.LittleEndian.PutUint32(fixed[rtzOffLegCtrIdx:], uint32(hh.Leg.Label.CenterIdx))
	binary.LittleEndian.PutUint32(fixed[rtzOffLegCenter:], uint32(hh.Leg.Label.Center))
	binary.LittleEndian.PutUint32(fixed[rtzOffLegTin:], uint32(hh.Leg.Label.TreeLabel.Tin))
	e.buf = append(e.buf, fixed[:]...)
	if err := e.lightHopsFixed(hh.Leg.Label.TreeLabel.Light); err != nil {
		return err
	}
	srcOff := len(e.buf) - secStart
	if srcOff > 0xffff {
		return fmt.Errorf("wire: flight section %d bytes exceeds u16 offsets", srcOff)
	}
	if prevSec != nil {
		pSrcOff := int(binary.LittleEndian.Uint16(prevSec[rtzOffSrcOff:]))
		if pSrcOff < rtzFixedLen || pSrcOff > len(prevSec) {
			return fmt.Errorf("wire: AppendFlightFrame: corrupt prev rtz offset")
		}
		e.buf = append(e.buf, prevSec[pSrcOff:]...)
	} else if err := e.rtzLabelFixed(hh.SrcLabel); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(e.buf[secStart+rtzOffSrcOff:], uint16(srcOff))
	return nil
}

func (e *encoder) flightHopSection(hh *core.HopHeader, prevSec []byte, secStart int) error {
	var fixed [hopFixedLen]byte
	if hh.Leg.Descending {
		fixed[hopOffDescending] = 1
	}
	binary.LittleEndian.PutUint32(fixed[hopOffRefLevel:], uint32(hh.Leg.Ref.Level))
	binary.LittleEndian.PutUint32(fixed[hopOffRefIndex:], uint32(hh.Leg.Ref.Index))
	binary.LittleEndian.PutUint32(fixed[hopOffTargetTin:], uint32(hh.Leg.Target.Tin))
	e.buf = append(e.buf, fixed[:]...)
	if err := e.lightHopsFixed(hh.Leg.Target.Light); err != nil {
		return err
	}
	hsOff := len(e.buf) - secStart
	if hsOff > 0xffff {
		return fmt.Errorf("wire: flight section %d bytes exceeds u16 offsets", hsOff)
	}
	if prevSec != nil {
		pHSOff := int(binary.LittleEndian.Uint16(prevSec[hopOffHSOff:]))
		if pHSOff < hopFixedLen || pHSOff > len(prevSec) {
			return fmt.Errorf("wire: AppendFlightFrame: corrupt prev hop offset")
		}
		e.buf = append(e.buf, prevSec[pHSOff:]...)
	} else if err := e.handshakeFixed(hh.HS); err != nil {
		return err
	}
	binary.LittleEndian.PutUint16(e.buf[secStart+hopOffHSOff:], uint16(hsOff))
	return nil
}

// --- inject batches ---

// InjectEntry is one roundtrip request inside a FrameInjectBatch.
type InjectEntry struct {
	Src, Dst int32
	Rt       uint64
	Sampled  bool
}

// AppendInjectBatch encodes many injects sharing one reply route as a
// single transport message, appending to dst. Injectors amortize one
// mailbox rendezvous (or one socket write) over the whole burst.
func AppendInjectBatch(dst []byte, home int32, origin uint64, entries []InjectEntry) []byte {
	e := &encoder{buf: dst}
	e.envelope(blobFrame, core.Kind(FrameInjectBatch))
	e.i(int64(home))
	e.u(origin)
	e.u(uint64(len(entries)))
	for i := range entries {
		e.i(int64(entries[i].Src))
		e.i(int64(entries[i].Dst))
		e.b(entries[i].Sampled)
		e.u(entries[i].Rt)
	}
	return e.buf
}

// ForEachInject decodes a FrameInjectBatch, filling *f as a FrameInject
// for each entry (Home/Origin from the batch envelope, the rest per
// entry) and invoking fn. fn's error aborts the iteration.
func ForEachInject(data []byte, f *Frame, fn func(*Frame) error) error {
	d := &decoder{data: data}
	kind, err := d.envelope(blobFrame)
	if err != nil {
		return err
	}
	if FrameKind(kind) != FrameInjectBatch {
		return d.fail("frame kind %d, want inject batch", byte(kind))
	}
	home, err := d.i()
	if err != nil {
		return err
	}
	if home < int64(HomeClient) || home > math32Max {
		return d.fail("batch home %d outside [-2, MaxInt32]", home)
	}
	origin, err := d.u()
	if err != nil {
		return err
	}
	n, err := d.count(4) // src + dst + sampled + rt: at least 4 bytes each
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		*f = Frame{Kind: FrameInject, Home: int32(home), Origin: origin}
		if f.SrcName, err = d.i32(); err != nil {
			return err
		}
		if f.DstName, err = d.i32(); err != nil {
			return err
		}
		if f.Sampled, err = d.b(); err != nil {
			return err
		}
		if f.Rt, err = d.u(); err != nil {
			return err
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return d.done()
}

const math32Max = int64(1)<<31 - 1
