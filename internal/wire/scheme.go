package wire

import (
	"fmt"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// MarshalScheme encodes a built forwarding plane as a self-contained
// snapshot: envelope, network fabric, naming, O(1) shared parameters,
// then one length-prefixed section per node holding exactly that node's
// local state. It accepts the three TINN schemes, the core substrate
// planes, an assembled Deployment, and the traffic-engine plane adapters
// (matched structurally through their Substrate/Naming accessors).
func MarshalScheme(p sim.Plane) ([]byte, error) {
	blob, _, err := MarshalSchemeSizes(p)
	return blob, err
}

// MarshalSchemeSizes is MarshalScheme returning, alongside the blob,
// each node's section length in bytes — the same numbers NodeSizes
// reports, without encoding the scheme twice.
func MarshalSchemeSizes(p sim.Plane) ([]byte, []int, error) {
	st, locals, err := decomposeAny(p)
	if err != nil {
		return nil, nil, err
	}
	e := &encoder{}
	e.envelope(blobScheme, st.Kind)
	encodeShared(e, st)
	sizes := make([]int, len(locals))
	for i := range locals {
		body := encodeLocal(&locals[i])
		sizes[i] = len(body)
		e.u(uint64(len(body)))
		e.buf = append(e.buf, body...)
	}
	return e.buf, sizes, nil
}

// NodeSizes returns the encoded size in bytes of every node's local
// state — the empirical per-node space bound, excluding the shared
// envelope (graph, naming, parameters), which is the network's and the
// model's "global knowledge", not routing state.
func NodeSizes(p sim.Plane) ([]int, error) {
	_, locals, err := decomposeAny(p)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(locals))
	for i := range locals {
		sizes[i] = len(encodeLocal(&locals[i]))
	}
	return sizes, nil
}

// SnapshotInfo is what PeekSnapshot reads from a scheme blob's preamble:
// enough to say what the snapshot is before paying for the full decode.
type SnapshotInfo struct {
	Version uint64
	Kind    core.Kind
	Nodes   int
}

// PeekSnapshot reads a snapshot's envelope and node count without
// decoding the graph or any table. A version mismatch still reports the
// blob's version alongside an error wrapping ErrVersion, so callers can
// tell "snapshot from another release" apart from corruption.
func PeekSnapshot(data []byte) (SnapshotInfo, error) {
	var info SnapshotInfo
	d := &decoder{data: data}
	ver, err := d.preamble()
	if err != nil {
		return info, err
	}
	info.Version = ver
	if ver != Version {
		return info, fmt.Errorf("wire: %w: blob has version %d, this build reads %d", ErrVersion, ver, Version)
	}
	bt, err := d.byte1()
	if err != nil {
		return info, err
	}
	if bt != blobScheme {
		return info, d.fail("blob type %d is not a scheme snapshot", bt)
	}
	k, err := d.byte1()
	if err != nil {
		return info, err
	}
	info.Kind = core.Kind(k)
	nu, err := d.u()
	if err != nil {
		return info, err
	}
	if nu > maxNodes {
		return info, d.fail("node count %d exceeds limit", nu)
	}
	info.Nodes = int(nu)
	return info, nil
}

// UnmarshalScheme decodes a scheme snapshot and reassembles it as a
// Deployment of per-node routers, recording each node's encoded size.
func UnmarshalScheme(data []byte) (*core.Deployment, error) {
	d := &decoder{data: data}
	kind, err := d.envelope(blobScheme)
	if err != nil {
		return nil, err
	}
	st, err := decodeShared(d, kind)
	if err != nil {
		return nil, err
	}
	n := st.Graph.N()
	locals := make([]core.LocalState, n)
	sizes := make([]int, n)
	for v := 0; v < n; v++ {
		size, err := d.count(1)
		if err != nil {
			return nil, err
		}
		if size > d.remaining() {
			return nil, d.fail("node %d section length %d exceeds remaining input", v, size)
		}
		nd := &decoder{data: d.data[d.off : d.off+size]}
		loc, err := decodeLocal(nd, kind, graph.NodeID(v))
		if err != nil {
			return nil, fmt.Errorf("wire: node %d: %w", v, err)
		}
		if err := nd.done(); err != nil {
			return nil, fmt.Errorf("wire: node %d: %w", v, err)
		}
		d.off += size
		locals[v] = *loc
		sizes[v] = size
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	dep, err := core.Assemble(st, locals)
	if err != nil {
		return nil, err
	}
	dep.SetEncodedSizes(sizes)
	return dep, nil
}

// rtzPlaneLike / hopPlaneLike match the traffic package's plane adapters
// structurally, so the codec serves them without an import cycle
// (traffic already imports eval, which imports wire).
type rtzPlaneLike interface {
	Substrate() *rtz.Scheme
	Naming() *names.Permutation
}

type hopPlaneLike interface {
	Substrate() *rtz.HopScheme
	Naming() *names.Permutation
}

func decomposeAny(p sim.Plane) (*core.SchemeState, []core.LocalState, error) {
	if st, locals, err := core.Decompose(p); err == nil {
		return st, locals, nil
	}
	switch x := p.(type) {
	case rtzPlaneLike:
		pl, err := core.NewRTZPlane(x.Substrate(), x.Naming())
		if err != nil {
			return nil, nil, err
		}
		return core.Decompose(pl)
	case hopPlaneLike:
		pl, err := core.NewHopPlane(x.Substrate(), x.Naming())
		if err != nil {
			return nil, nil, err
		}
		return core.Decompose(pl)
	default:
		return nil, nil, fmt.Errorf("wire: cannot marshal %T", p)
	}
}

// --- shared section ---

func encodeShared(e *encoder, st *core.SchemeState) {
	n := st.Graph.N()
	e.u(uint64(n))
	for _, nm := range st.Names {
		e.u(uint64(nm))
	}
	e.graph(st.Graph)
	e.u(uint64(st.K))
	e.u(uint64(st.Levels))
	e.b(st.ViaSource)
	e.b(st.DirectReturn)
}

func decodeShared(d *decoder, kind core.Kind) (*core.SchemeState, error) {
	nu, err := d.u()
	if err != nil {
		return nil, err
	}
	if nu < 2 || nu > maxNodes {
		return nil, d.fail("node count %d outside [2,%d]", nu, maxNodes)
	}
	n := int(nu)
	if n > d.remaining() {
		return nil, d.fail("node count %d exceeds remaining input", n)
	}
	st := &core.SchemeState{Kind: kind, Names: make([]int32, n)}
	for v := 0; v < n; v++ {
		nm, err := d.u()
		if err != nil {
			return nil, err
		}
		if nm >= uint64(n) {
			return nil, d.fail("name %d outside [0,%d)", nm, n)
		}
		st.Names[v] = int32(nm)
	}
	if st.Graph, err = d.graph(n); err != nil {
		return nil, err
	}
	k, err := d.u()
	if err != nil {
		return nil, err
	}
	lv, err := d.u()
	if err != nil {
		return nil, err
	}
	if k > uint64(n) || lv > uint64(maxNodes) {
		return nil, d.fail("implausible parameters k=%d levels=%d", k, lv)
	}
	st.K, st.Levels = int(k), int(lv)
	if st.ViaSource, err = d.b(); err != nil {
		return nil, err
	}
	if st.DirectReturn, err = d.b(); err != nil {
		return nil, err
	}
	return st, nil
}

// --- per-node sections ---

func encodeLocal(ls *core.LocalState) []byte {
	e := &encoder{}
	switch {
	case ls.S6 != nil:
		e.encodeS6Local(ls.S6)
	case ls.Ex != nil:
		e.encodeExLocal(ls.Ex)
	case ls.Poly != nil:
		e.encodePolyLocal(ls.Poly)
	case ls.RTZ != nil:
		e.encodeRTZLocal(ls.RTZ)
	case ls.Hop != nil:
		e.encodeHopLocal(ls.Hop)
	}
	return e.buf
}

func decodeLocal(d *decoder, kind core.Kind, node graph.NodeID) (*core.LocalState, error) {
	ls := &core.LocalState{Node: node}
	var err error
	switch kind {
	case core.KindStretchSix:
		ls.S6, err = d.decodeS6Local()
	case core.KindExStretch:
		ls.Ex, err = d.decodeExLocal()
	case core.KindPolynomial:
		ls.Poly, err = d.decodePolyLocal()
	case core.KindRTZ:
		ls.RTZ, err = d.decodeRTZLocal()
	case core.KindHop:
		ls.Hop, err = d.decodeHopLocal()
	default:
		return nil, d.fail("unknown scheme kind %d", uint8(kind))
	}
	if err != nil {
		return nil, err
	}
	return ls, nil
}

func (e *encoder) encodeRTZTable(t *core.RTZTableLocal) {
	e.u(uint64(len(t.InPorts)))
	for _, p := range t.InPorts {
		e.i(int64(p))
	}
	for _, s := range t.TreeStates {
		e.treeState(s)
	}
	e.u(uint64(len(t.Direct)))
	for _, dd := range t.Direct {
		e.i(int64(dd.Dst))
		e.i(int64(dd.Port))
	}
}

func (d *decoder) decodeRTZTable() (core.RTZTableLocal, error) {
	var t core.RTZTableLocal
	centers, err := d.count(4) // 1 byte port + >= 3 bytes state
	if err != nil {
		return t, err
	}
	if centers > 0 {
		t.InPorts = make([]graph.PortID, centers)
		t.TreeStates = make([]tree.State, centers)
		for i := range t.InPorts {
			if t.InPorts[i], err = d.i32(); err != nil {
				return t, err
			}
		}
		for i := range t.TreeStates {
			if t.TreeStates[i], err = d.treeState(); err != nil {
				return t, err
			}
		}
	}
	nd, err := d.count(2)
	if err != nil {
		return t, err
	}
	if nd > 0 {
		t.Direct = make([]core.RTZDirect, nd)
		for i := range t.Direct {
			if t.Direct[i].Dst, err = d.i32(); err != nil {
				return t, err
			}
			if t.Direct[i].Port, err = d.i32(); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

func (e *encoder) encodeS6Local(l *core.S6Local) {
	e.i(int64(l.SelfName))
	e.rtzLabel(l.OwnLabel)
	// Entries are sorted by name (Decompose's canonical order), so names
	// are delta-encoded: dictionary gaps are small regardless of n.
	e.u(uint64(len(l.Entries)))
	prev := int64(0)
	for i, en := range l.Entries {
		if i == 0 {
			e.i(int64(en.Name))
		} else {
			e.i(int64(en.Name) - prev)
		}
		prev = int64(en.Name)
		e.rtzLabel(en.Label)
	}
	e.u(uint64(len(l.BlockHolder)))
	for _, h := range l.BlockHolder {
		e.i(int64(h))
	}
	e.u(uint64(l.NeighborEntries))
	e.encodeRTZTable(&l.Tab3)
}

func (d *decoder) decodeS6Local() (*core.S6Local, error) {
	l := &core.S6Local{}
	var err error
	if l.SelfName, err = d.i32(); err != nil {
		return nil, err
	}
	if l.OwnLabel, err = d.rtzLabel(); err != nil {
		return nil, err
	}
	ne, err := d.count(5)
	if err != nil {
		return nil, err
	}
	if ne > 0 {
		l.Entries = make([]core.S6Entry, ne)
		prev := int64(0)
		for i := range l.Entries {
			dv, err := d.i()
			if err != nil {
				return nil, err
			}
			if i > 0 {
				dv += prev
			}
			if dv < -(1<<31) || dv >= 1<<31 {
				return nil, d.fail("entry name %d outside int32", dv)
			}
			l.Entries[i].Name = int32(dv)
			prev = dv
			if l.Entries[i].Label, err = d.rtzLabel(); err != nil {
				return nil, err
			}
		}
	}
	nb, err := d.count(1)
	if err != nil {
		return nil, err
	}
	l.BlockHolder = make([]int32, nb)
	for i := range l.BlockHolder {
		if l.BlockHolder[i], err = d.i32(); err != nil {
			return nil, err
		}
	}
	nn, err := d.u()
	if err != nil {
		return nil, err
	}
	if nn > maxNodes {
		return nil, d.fail("implausible neighborhood size %d", nn)
	}
	l.NeighborEntries = int32(nn)
	if l.Tab3, err = d.decodeRTZTable(); err != nil {
		return nil, err
	}
	return l, nil
}

func (e *encoder) encodeExLocal(l *core.ExLocal) {
	e.i(int64(l.SelfName))
	e.u(uint64(len(l.Neighbors)))
	for _, nb := range l.Neighbors {
		e.i(int64(nb.Name))
		e.handshake(nb.HS)
	}
	e.u(uint64(len(l.Dict)))
	for _, de := range l.Dict {
		e.i(int64(de.Level))
		e.i(int64(de.Prefix))
		e.i(int64(de.Tau))
		e.i(int64(de.TargetName))
		e.handshake(de.HS)
	}
	e.u(uint64(len(l.Full)))
	for _, fe := range l.Full {
		e.i(int64(fe.Name))
		e.handshake(fe.HS)
	}
	e.u(uint64(len(l.Global)))
	for _, gl := range l.Global {
		e.treeRef(gl.Ref)
		e.treeLabel(gl.Label)
	}
	e.u(uint64(len(l.HopTab)))
	for _, he := range l.HopTab {
		e.treeRef(he.Ref)
		e.treeState(he.State)
		e.i(int64(he.InPort))
		e.b(he.IsRoot)
	}
}

func (d *decoder) decodeExLocal() (*core.ExLocal, error) {
	l := &core.ExLocal{}
	var err error
	if l.SelfName, err = d.i32(); err != nil {
		return nil, err
	}
	nn, err := d.count(7)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nn; i++ {
		var nb core.ExNeighbor
		if nb.Name, err = d.i32(); err != nil {
			return nil, err
		}
		if nb.HS, err = d.handshake(); err != nil {
			return nil, err
		}
		l.Neighbors = append(l.Neighbors, nb)
	}
	ndict, err := d.count(10)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ndict; i++ {
		var de core.ExDictLocal
		lv, err := d.i32()
		if err != nil {
			return nil, err
		}
		if lv < -128 || lv > 127 {
			return nil, d.fail("dictionary level %d outside int8", lv)
		}
		de.Level = int8(lv)
		if de.Prefix, err = d.i32(); err != nil {
			return nil, err
		}
		if de.Tau, err = d.i32(); err != nil {
			return nil, err
		}
		if de.TargetName, err = d.i32(); err != nil {
			return nil, err
		}
		if de.HS, err = d.handshake(); err != nil {
			return nil, err
		}
		l.Dict = append(l.Dict, de)
	}
	nf, err := d.count(7)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nf; i++ {
		var fe core.ExNeighbor
		if fe.Name, err = d.i32(); err != nil {
			return nil, err
		}
		if fe.HS, err = d.handshake(); err != nil {
			return nil, err
		}
		l.Full = append(l.Full, fe)
	}
	ng, err := d.count(3)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ng; i++ {
		var gl core.ExGlobal
		if gl.Ref, err = d.treeRef(); err != nil {
			return nil, err
		}
		if gl.Label, err = d.treeLabel(); err != nil {
			return nil, err
		}
		l.Global = append(l.Global, gl)
	}
	nh, err := d.count(7)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nh; i++ {
		var he core.HopEntryLocal
		if he.Ref, err = d.treeRef(); err != nil {
			return nil, err
		}
		if he.State, err = d.treeState(); err != nil {
			return nil, err
		}
		if he.InPort, err = d.i32(); err != nil {
			return nil, err
		}
		if he.IsRoot, err = d.b(); err != nil {
			return nil, err
		}
		l.HopTab = append(l.HopTab, he)
	}
	return l, nil
}

func (e *encoder) encodePolyLocal(l *core.PolyLocal) {
	e.i(int64(l.SelfName))
	e.u(uint64(len(l.Home)))
	for _, r := range l.Home {
		e.treeRef(r)
	}
	e.u(uint64(len(l.Trees)))
	for _, t := range l.Trees {
		e.treeRef(t.Ref)
		e.treeState(t.State)
		e.i(int64(t.InPort))
		e.b(t.IsRoot)
		e.treeLabel(t.OwnLabel)
		e.u(uint64(len(t.Dict)))
		for _, de := range t.Dict {
			e.i(int64(de.J))
			e.i(int64(de.Tau))
			e.i(int64(de.Name))
			e.treeLabel(de.Label)
		}
	}
}

func (d *decoder) decodePolyLocal() (*core.PolyLocal, error) {
	l := &core.PolyLocal{}
	var err error
	if l.SelfName, err = d.i32(); err != nil {
		return nil, err
	}
	nh, err := d.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nh; i++ {
		r, err := d.treeRef()
		if err != nil {
			return nil, err
		}
		l.Home = append(l.Home, r)
	}
	nt, err := d.count(10)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nt; i++ {
		var t core.PolyTreeLocal
		if t.Ref, err = d.treeRef(); err != nil {
			return nil, err
		}
		if t.State, err = d.treeState(); err != nil {
			return nil, err
		}
		if t.InPort, err = d.i32(); err != nil {
			return nil, err
		}
		if t.IsRoot, err = d.b(); err != nil {
			return nil, err
		}
		if t.OwnLabel, err = d.treeLabel(); err != nil {
			return nil, err
		}
		ndict, err := d.count(5)
		if err != nil {
			return nil, err
		}
		for j := 0; j < ndict; j++ {
			var de core.PolyDictLocal
			jj, err := d.i32()
			if err != nil {
				return nil, err
			}
			if jj < -128 || jj > 127 {
				return nil, d.fail("dictionary level %d outside int8", jj)
			}
			de.J = int8(jj)
			if de.Tau, err = d.i32(); err != nil {
				return nil, err
			}
			if de.Name, err = d.i32(); err != nil {
				return nil, err
			}
			if de.Label, err = d.treeLabel(); err != nil {
				return nil, err
			}
			t.Dict = append(t.Dict, de)
		}
		l.Trees = append(l.Trees, t)
	}
	return l, nil
}

func (e *encoder) encodeRTZLocal(l *core.RTZLocal) {
	e.rtzLabel(l.SelfLabel)
	e.encodeRTZTable(&l.Table)
}

func (d *decoder) decodeRTZLocal() (*core.RTZLocal, error) {
	l := &core.RTZLocal{}
	var err error
	if l.SelfLabel, err = d.rtzLabel(); err != nil {
		return nil, err
	}
	if l.Table, err = d.decodeRTZTable(); err != nil {
		return nil, err
	}
	return l, nil
}

func (e *encoder) encodeHopLocal(l *core.HopLocal) {
	e.u(uint64(len(l.Members)))
	for _, m := range l.Members {
		e.treeRef(m.Ref)
		e.treeState(m.State)
		e.i(int64(m.InPort))
		e.b(m.IsRoot)
		e.treeLabel(m.OwnLabel)
		e.i(int64(m.DistTo))
		e.i(int64(m.DistFrom))
	}
}

func (d *decoder) decodeHopLocal() (*core.HopLocal, error) {
	l := &core.HopLocal{}
	nm, err := d.count(11)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nm; i++ {
		var m core.HopMember
		if m.Ref, err = d.treeRef(); err != nil {
			return nil, err
		}
		if m.State, err = d.treeState(); err != nil {
			return nil, err
		}
		if m.InPort, err = d.i32(); err != nil {
			return nil, err
		}
		if m.IsRoot, err = d.b(); err != nil {
			return nil, err
		}
		if m.OwnLabel, err = d.treeLabel(); err != nil {
			return nil, err
		}
		dt, err := d.i()
		if err != nil {
			return nil, err
		}
		df, err := d.i()
		if err != nil {
			return nil, err
		}
		if dt < 0 || df < 0 || dt >= graph.Inf || df >= graph.Inf {
			return nil, d.fail("tree distance outside [0, Inf)")
		}
		m.DistTo, m.DistFrom = graph.Dist(dt), graph.Dist(df)
		l.Members = append(l.Members, m)
	}
	// Memberships appear in sorted (level, index) order; the assembler
	// relies on the monolithic membership order for handshake
	// tie-breaking.
	for i := 1; i < len(l.Members); i++ {
		a, b := l.Members[i-1].Ref, l.Members[i].Ref
		if !(a.Level < b.Level || (a.Level == b.Level && a.Index < b.Index)) {
			return nil, d.fail("membership list not sorted by (level, index)")
		}
	}
	return l, nil
}
