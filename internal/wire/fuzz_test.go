package wire

import (
	"testing"
)

// fuzzSeeds collects valid blobs of every kind plus adversarial
// variants, so the fuzzers start from deep-format corpora.
func fuzzSchemeSeeds(f *testing.F) {
	planes, _ := testPlanes(f, 16, 21)
	for _, p := range planes {
		blob, err := MarshalScheme(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:8])
		// Flip a mid-payload byte.
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0x5a
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("RTWF"))
	f.Add([]byte("RTWF\x01\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
}

// FuzzUnmarshalScheme: arbitrary bytes must error cleanly — never
// panic, and never allocate beyond O(len(input)) (the decoder's count
// guards). A successful decode must re-encode.
func FuzzUnmarshalScheme(f *testing.F) {
	fuzzSchemeSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dep, err := UnmarshalScheme(data)
		if err != nil {
			return
		}
		if dep == nil {
			t.Fatal("nil deployment without error")
		}
		if _, err := MarshalScheme(dep); err != nil {
			t.Fatalf("decoded deployment does not re-encode: %v", err)
		}
	})
}

// FuzzUnmarshalFrame: same contract for cluster transport frames. A
// successful decode must re-encode, and a packet frame's embedded
// header blob must itself decode.
func FuzzUnmarshalFrame(f *testing.F) {
	planes, _ := testPlanes(f, 16, 23)
	for _, p := range planes {
		h, err := p.NewHeader(2, 3)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := MarshalFrame(&Frame{
			Kind: FramePacket, SrcName: 2, DstName: 3, At: 5,
			Out:  LegTotals{Hops: 4, Weight: 17, MaxHeaderWords: 9},
			Home: HomeLocal, Sampled: true,
		}, h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-2])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0x81
		f.Add(mut)
	}
	for _, fr := range []*Frame{
		{Kind: FrameInject, SrcName: 1, DstName: 2, Home: HomeClient},
		{Kind: FrameDone, SrcName: 1, DstName: 2, Origin: 7},
		{Kind: FrameInfoReq},
		{Kind: FrameInfo, SchemeKind: 1, Nodes: 16, Shards: 8},
		{Kind: FrameDrop, SrcName: 1, DstName: 2, Origin: 7, Rt: 11, Reason: DropUnroutable},
		{Kind: FrameDrop, SrcName: 3, DstName: 4, Reason: DropMisroute},
	} {
		blob, err := MarshalFrame(fr, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte("RTWF\x01\x03\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := UnmarshalFrame(data, &fr); err != nil {
			return
		}
		if fr.Kind == FramePacket {
			var hdec HeaderDecoder
			if _, err := hdec.DecodeBare(fr.Header); err != nil {
				return // preamble valid, header garbage: fine, it errors
			}
		}
		if _, err := MarshalFrame(&fr, nil); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

// FuzzUnmarshalFlightFrame: the fixed-layout flight frame and the
// batched inject are parsed straight off the socket, so arbitrary bytes
// must error cleanly at some stage — preamble, lazy section decode, or
// re-encode — and never panic. (Byte identity is NOT a fuzz property:
// it holds for canonical encodings and is locked by the golden tests.)
func FuzzUnmarshalFlightFrame(f *testing.F) {
	planes, _ := testPlanes(f, 16, 24)
	for _, p := range planes {
		h, err := p.NewHeader(2, 9)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := AppendFlightFrame(nil, flightTestFrame(), h, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-3])
		f.Add(blob[:flightMinLen])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0x81
		f.Add(mut)
		// Corrupt the section's offset fields specifically: the lazy
		// decoder trusts them only after validation.
		off := append([]byte(nil), blob...)
		off[flightOffSection+10] ^= 0xff
		f.Add(off)
	}
	f.Add(AppendInjectBatch(nil, HomeClient, 3, []InjectEntry{
		{Src: 1, Dst: 2, Rt: 9, Sampled: true}, {Src: 2, Dst: 3, Rt: 10},
	}))
	f.Add([]byte{})
	f.Add([]byte("RTWF\x02\x03\x06"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if k, ok := PeekFrameKind(data); ok && k == FrameInjectBatch {
			var fr Frame
			_ = ForEachInject(data, &fr, func(*Frame) error { return nil })
			return
		}
		var fr Frame
		if err := UnmarshalFlightFrame(data, &fr); err != nil {
			return
		}
		for _, loc := range []Locality{ownsNone{}, ownsAll{}} {
			var hd HeaderDecoder
			h, fs, err := hd.DecodeFlight(&fr, loc)
			if err != nil {
				continue
			}
			_ = fs.CanPatch(&fr, h)
			// Re-encode both ways — blobs verbatim from the received
			// frame, and from whatever the lazy decode populated. Either
			// may reject hostile word counts; neither may panic.
			if again, err := AppendFlightFrame(nil, &fr, h, data); err == nil {
				var fr2 Frame
				if err := UnmarshalFlightFrame(again, &fr2); err != nil {
					t.Fatalf("verbatim re-encode does not re-open: %v", err)
				}
			}
			_, _ = AppendFlightFrame(nil, &fr, h, nil)
		}
	})
}

// FuzzUnmarshalHeader: same contract for header packets.
func FuzzUnmarshalHeader(f *testing.F) {
	planes, _ := testPlanes(f, 16, 22)
	for _, p := range planes {
		h, err := p.NewHeader(0, 1)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := MarshalHeader(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-1])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("RTWF\x01\x02\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHeader(data)
		if err != nil {
			return
		}
		if h == nil {
			t.Fatal("nil header without error")
		}
		if _, err := MarshalHeader(h); err != nil {
			t.Fatalf("decoded header does not re-encode: %v", err)
		}
		_ = h.Words()
	})
}
