package wire

import (
	"testing"
)

// fuzzSeeds collects valid blobs of every kind plus adversarial
// variants, so the fuzzers start from deep-format corpora.
func fuzzSchemeSeeds(f *testing.F) {
	planes, _ := testPlanes(f, 16, 21)
	for _, p := range planes {
		blob, err := MarshalScheme(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:8])
		// Flip a mid-payload byte.
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0x5a
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("RTWF"))
	f.Add([]byte("RTWF\x01\x01\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
}

// FuzzUnmarshalScheme: arbitrary bytes must error cleanly — never
// panic, and never allocate beyond O(len(input)) (the decoder's count
// guards). A successful decode must re-encode.
func FuzzUnmarshalScheme(f *testing.F) {
	fuzzSchemeSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dep, err := UnmarshalScheme(data)
		if err != nil {
			return
		}
		if dep == nil {
			t.Fatal("nil deployment without error")
		}
		if _, err := MarshalScheme(dep); err != nil {
			t.Fatalf("decoded deployment does not re-encode: %v", err)
		}
	})
}

// FuzzUnmarshalHeader: same contract for header packets.
func FuzzUnmarshalHeader(f *testing.F) {
	planes, _ := testPlanes(f, 16, 22)
	for _, p := range planes {
		h, err := p.NewHeader(0, 1)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := MarshalHeader(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-1])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("RTWF\x01\x02\x03"))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHeader(data)
		if err != nil {
			return
		}
		if h == nil {
			t.Fatal("nil header without error")
		}
		if _, err := MarshalHeader(h); err != nil {
			t.Fatalf("decoded header does not re-encode: %v", err)
		}
		_ = h.Words()
	})
}
