package wire

import (
	"fmt"

	"rtroute/internal/core"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// MarshalHeader encodes a packet header as a self-contained byte packet:
// envelope plus the kind-specific field layout. A header decoded on
// another process forwards identically — the deployment route-identity
// tests drive roundtrips through marshal/unmarshal at every hop.
func MarshalHeader(h sim.Header) ([]byte, error) {
	e := &encoder{}
	if err := e.header(h); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// header appends a self-contained header blob (envelope included).
func (e *encoder) header(h sim.Header) error {
	k, err := headerKind(h)
	if err != nil {
		return err
	}
	e.envelope(blobHeader, k)
	return e.headerBody(h)
}

// headerBare appends the frame-embedded header form: one kind byte plus
// the body — no magic or version, because the enclosing frame already
// carries both. This is the form packet frames ship at every shard
// crossing.
func (e *encoder) headerBare(h sim.Header) error {
	k, err := headerKind(h)
	if err != nil {
		return err
	}
	e.byte1(byte(k))
	return e.headerBody(h)
}

func headerKind(h sim.Header) (core.Kind, error) {
	switch h.(type) {
	case *core.S6Header:
		return core.KindStretchSix, nil
	case *core.ExHeader:
		return core.KindExStretch, nil
	case *core.PolyHeader:
		return core.KindPolynomial, nil
	case *core.RTZHeader:
		return core.KindRTZ, nil
	case *core.HopHeader:
		return core.KindHop, nil
	default:
		return 0, fmt.Errorf("wire: cannot marshal %T header", h)
	}
}

func (e *encoder) headerBody(h sim.Header) error {
	switch hh := h.(type) {
	case *core.S6Header:
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.rtzLabel(hh.SrcLabel)
		e.i(int64(hh.DictName))
		e.byte1(byte(hh.Stage))
		e.rtzLabel(hh.Fetched)
		e.rtzHeader(hh.Leg)
		e.b(hh.LegSet)
	case *core.ExHeader:
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.i(int64(hh.Hop))
		e.i(int64(hh.NextWaypointName))
		e.u(uint64(len(hh.Stack)))
		for _, w := range hh.Stack {
			e.i(int64(w.Name))
			e.handshake(w.HS)
		}
		e.u(uint64(len(hh.Global)))
		for _, g := range hh.Global {
			e.treeRef(g.Ref)
			e.treeLabel(g.Label)
		}
		e.hopLeg(hh.Leg)
		e.b(hh.LegSet)
	case *core.PolyHeader:
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.i(int64(hh.Level))
		e.b(hh.Found)
		e.treeRef(hh.Ref)
		e.treeLabel(hh.SourceLabel)
		e.i(int64(hh.NextWaypointName))
		e.treeLabel(hh.Target)
		e.b(hh.Descending)
	case *core.RTZHeader:
		e.i(int64(hh.SrcName))
		e.i(int64(hh.DstName))
		e.rtzLabel(hh.SrcLabel)
		e.rtzHeader(hh.Leg)
	case *core.HopHeader:
		e.handshake(hh.HS)
		e.hopLeg(hh.Leg)
	default:
		return fmt.Errorf("wire: cannot marshal %T header", h)
	}
	return nil
}

// UnmarshalHeader decodes a header packet into a freshly allocated
// header of the kind's live type, ready to hand to the matching plane's
// Forward. Streams of packets (the cluster's shard workers) should use
// a HeaderDecoder, which reuses storage across decodes.
func UnmarshalHeader(data []byte) (sim.Header, error) {
	var hd HeaderDecoder
	return hd.decode(data, false)
}

// HeaderDecoder decodes header packets into reusable storage: the
// scratch header struct itself plus small arenas for the variable-size
// sections (tree-label root paths, waypoint stacks), so a worker
// decoding one packet per frame allocates nothing in steady state.
//
// The returned header — including every slice it references — is valid
// only until the next Decode call, and a HeaderDecoder is not safe for
// concurrent use: one per worker goroutine. The arenas are essential
// for correctness, not just speed: a live header's slices may alias
// read-only scheme tables (a dictionary fetch writes a table label into
// the header), so decoding "into" a previous header's slices could
// corrupt shared state — the decoder therefore only ever writes into
// memory it owns.
type HeaderDecoder struct {
	scratch sim.Header
	light   arenaOf[tree.LightHop]
	wps     arenaOf[core.ExWaypoint]
	glbs    arenaOf[core.ExGlobal]
}

// arenaOf hands out small carve-out slices of one backing array,
// recycled wholesale on reset. Growing abandons the old array to any
// slices already carved from it (they stay valid until reset).
type arenaOf[T any] struct{ buf []T }

func (a *arenaOf[T]) take(n int) []T {
	if cap(a.buf)-len(a.buf) < n {
		a.buf = make([]T, 0, 2*(len(a.buf)+n)+16)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}

func (a *arenaOf[T]) reset() { a.buf = a.buf[:0] }

// Decode decodes one header packet, reusing the decoder's scratch
// storage. The result is invalidated by the next Decode.
func (hd *HeaderDecoder) Decode(data []byte) (sim.Header, error) {
	return hd.decode(data, true)
}

// DecodeBare decodes the frame-embedded header form (kind byte + body,
// no envelope), reusing the decoder's scratch storage like Decode.
func (hd *HeaderDecoder) DecodeBare(data []byte) (sim.Header, error) {
	hd.light.reset()
	hd.wps.reset()
	hd.glbs.reset()
	d := &decoder{data: data, hd: hd}
	kb, err := d.byte1()
	if err != nil {
		return nil, err
	}
	return hd.dispatch(d, core.Kind(kb), true)
}

func (hd *HeaderDecoder) decode(data []byte, reuse bool) (sim.Header, error) {
	d := &decoder{data: data}
	if reuse {
		hd.light.reset()
		hd.wps.reset()
		hd.glbs.reset()
		d.hd = hd
	}
	kind, err := d.envelope(blobHeader)
	if err != nil {
		return nil, err
	}
	return hd.dispatch(d, kind, reuse)
}

func (hd *HeaderDecoder) dispatch(d *decoder, kind core.Kind, reuse bool) (sim.Header, error) {
	var h sim.Header
	var err error
	switch kind {
	case core.KindStretchSix:
		hh, ok := hd.scratch.(*core.S6Header)
		if !ok || !reuse {
			hh = &core.S6Header{}
			hd.scratch = hh
		}
		h, err = hh, decodeS6HeaderInto(d, hh)
	case core.KindExStretch:
		hh, ok := hd.scratch.(*core.ExHeader)
		if !ok || !reuse {
			hh = &core.ExHeader{}
			hd.scratch = hh
		}
		h, err = hh, decodeExHeaderInto(d, hh)
	case core.KindPolynomial:
		hh, ok := hd.scratch.(*core.PolyHeader)
		if !ok || !reuse {
			hh = &core.PolyHeader{}
			hd.scratch = hh
		}
		h, err = hh, decodePolyHeaderInto(d, hh)
	case core.KindRTZ:
		hh, ok := hd.scratch.(*core.RTZHeader)
		if !ok || !reuse {
			hh = &core.RTZHeader{}
			hd.scratch = hh
		}
		h, err = hh, decodeRTZPlaneHeaderInto(d, hh)
	case core.KindHop:
		hh, ok := hd.scratch.(*core.HopHeader)
		if !ok || !reuse {
			hh = &core.HopHeader{}
			hd.scratch = hh
		}
		h, err = hh, decodeHopPlaneHeaderInto(d, hh)
	default:
		return nil, d.fail("unknown header kind %d", uint8(kind))
	}
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return h, nil
}

// The decode*Into functions assign every field of their target, so a
// reused scratch header carries no state across packets.
func decodeS6HeaderInto(d *decoder, h *core.S6Header) error {
	m, err := d.byte1()
	if err != nil {
		return err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return err
	}
	if h.SrcLabel, err = d.rtzLabel(); err != nil {
		return err
	}
	if h.DictName, err = d.i32(); err != nil {
		return err
	}
	st, err := d.byte1()
	if err != nil {
		return err
	}
	h.Stage = core.S6Stage(st)
	if h.Fetched, err = d.rtzLabel(); err != nil {
		return err
	}
	if h.Leg, err = d.rtzHeader(); err != nil {
		return err
	}
	if h.LegSet, err = d.b(); err != nil {
		return err
	}
	h.SyncCaches()
	return nil
}

func decodeExHeaderInto(d *decoder, h *core.ExHeader) error {
	m, err := d.byte1()
	if err != nil {
		return err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return err
	}
	hop, err := d.i32()
	if err != nil {
		return err
	}
	if hop < -128 || hop > 127 {
		return d.fail("hop index %d outside int8", hop)
	}
	h.Hop = int8(hop)
	if h.NextWaypointName, err = d.i32(); err != nil {
		return err
	}
	ns, err := d.count(7)
	if err != nil {
		return err
	}
	h.Stack = nil
	if ns > 0 {
		if d.hd != nil {
			h.Stack = d.hd.wps.take(ns)
		} else {
			h.Stack = make([]core.ExWaypoint, ns)
		}
	}
	for i := 0; i < ns; i++ {
		w := &h.Stack[i]
		if w.Name, err = d.i32(); err != nil {
			return err
		}
		if w.HS, err = d.handshake(); err != nil {
			return err
		}
	}
	ng, err := d.count(3)
	if err != nil {
		return err
	}
	h.Global = nil
	if ng > 0 {
		if d.hd != nil {
			h.Global = d.hd.glbs.take(ng)
		} else {
			h.Global = make([]core.ExGlobal, ng)
		}
	}
	for i := 0; i < ng; i++ {
		g := &h.Global[i]
		if g.Ref, err = d.treeRef(); err != nil {
			return err
		}
		if g.Label, err = d.treeLabel(); err != nil {
			return err
		}
	}
	if h.Leg, err = d.hopLeg(); err != nil {
		return err
	}
	if h.LegSet, err = d.b(); err != nil {
		return err
	}
	return nil
}

func decodePolyHeaderInto(d *decoder, h *core.PolyHeader) error {
	m, err := d.byte1()
	if err != nil {
		return err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return err
	}
	if h.Level, err = d.i32(); err != nil {
		return err
	}
	if h.Found, err = d.b(); err != nil {
		return err
	}
	if h.Ref, err = d.treeRef(); err != nil {
		return err
	}
	if h.SourceLabel, err = d.treeLabel(); err != nil {
		return err
	}
	if h.NextWaypointName, err = d.i32(); err != nil {
		return err
	}
	if h.Target, err = d.treeLabel(); err != nil {
		return err
	}
	if h.Descending, err = d.b(); err != nil {
		return err
	}
	return nil
}

func decodeRTZPlaneHeaderInto(d *decoder, h *core.RTZHeader) error {
	var err error
	if h.SrcName, err = d.i32(); err != nil {
		return err
	}
	if h.DstName, err = d.i32(); err != nil {
		return err
	}
	if h.SrcLabel, err = d.rtzLabel(); err != nil {
		return err
	}
	if h.Leg, err = d.rtzHeader(); err != nil {
		return err
	}
	return nil
}

func decodeHopPlaneHeaderInto(d *decoder, h *core.HopHeader) error {
	var err error
	if h.HS, err = d.handshake(); err != nil {
		return err
	}
	if h.Leg, err = d.hopLeg(); err != nil {
		return err
	}
	return nil
}
