package wire

import (
	"fmt"

	"rtroute/internal/core"
	"rtroute/internal/sim"
)

// MarshalHeader encodes a packet header as a self-contained byte packet:
// envelope plus the kind-specific field layout. A header decoded on
// another process forwards identically — the deployment route-identity
// tests drive roundtrips through marshal/unmarshal at every hop.
func MarshalHeader(h sim.Header) ([]byte, error) {
	e := &encoder{}
	switch hh := h.(type) {
	case *core.S6Header:
		e.envelope(blobHeader, core.KindStretchSix)
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.rtzLabel(hh.SrcLabel)
		e.i(int64(hh.DictName))
		e.byte1(byte(hh.Stage))
		e.rtzLabel(hh.Fetched)
		e.rtzHeader(hh.Leg)
		e.b(hh.LegSet)
	case *core.ExHeader:
		e.envelope(blobHeader, core.KindExStretch)
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.i(int64(hh.Hop))
		e.i(int64(hh.NextWaypointName))
		e.u(uint64(len(hh.Stack)))
		for _, w := range hh.Stack {
			e.i(int64(w.Name))
			e.handshake(w.HS)
		}
		e.u(uint64(len(hh.Global)))
		for _, g := range hh.Global {
			e.treeRef(g.Ref)
			e.treeLabel(g.Label)
		}
		e.hopLeg(hh.Leg)
		e.b(hh.LegSet)
	case *core.PolyHeader:
		e.envelope(blobHeader, core.KindPolynomial)
		e.byte1(byte(hh.Mode))
		e.i(int64(hh.DestName))
		e.i(int64(hh.SrcName))
		e.i(int64(hh.Level))
		e.b(hh.Found)
		e.treeRef(hh.Ref)
		e.treeLabel(hh.SourceLabel)
		e.i(int64(hh.NextWaypointName))
		e.treeLabel(hh.Target)
		e.b(hh.Descending)
	case *core.RTZHeader:
		e.envelope(blobHeader, core.KindRTZ)
		e.i(int64(hh.SrcName))
		e.i(int64(hh.DstName))
		e.rtzLabel(hh.SrcLabel)
		e.rtzHeader(hh.Leg)
	case *core.HopHeader:
		e.envelope(blobHeader, core.KindHop)
		e.handshake(hh.HS)
		e.hopLeg(hh.Leg)
	default:
		return nil, fmt.Errorf("wire: cannot marshal %T header", h)
	}
	return e.buf, nil
}

// UnmarshalHeader decodes a header packet into the kind's live header
// type, ready to hand to the matching plane's Forward.
func UnmarshalHeader(data []byte) (sim.Header, error) {
	d := &decoder{data: data}
	kind, err := d.envelope(blobHeader)
	if err != nil {
		return nil, err
	}
	var h sim.Header
	switch kind {
	case core.KindStretchSix:
		h, err = decodeS6Header(d)
	case core.KindExStretch:
		h, err = decodeExHeader(d)
	case core.KindPolynomial:
		h, err = decodePolyHeader(d)
	case core.KindRTZ:
		h, err = decodeRTZPlaneHeader(d)
	case core.KindHop:
		h, err = decodeHopPlaneHeader(d)
	default:
		return nil, d.fail("unknown header kind %d", uint8(kind))
	}
	if err != nil {
		return nil, err
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return h, nil
}

func decodeS6Header(d *decoder) (*core.S6Header, error) {
	h := &core.S6Header{}
	m, err := d.byte1()
	if err != nil {
		return nil, err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.SrcLabel, err = d.rtzLabel(); err != nil {
		return nil, err
	}
	if h.DictName, err = d.i32(); err != nil {
		return nil, err
	}
	st, err := d.byte1()
	if err != nil {
		return nil, err
	}
	h.Stage = core.S6Stage(st)
	if h.Fetched, err = d.rtzLabel(); err != nil {
		return nil, err
	}
	if h.Leg, err = d.rtzHeader(); err != nil {
		return nil, err
	}
	if h.LegSet, err = d.b(); err != nil {
		return nil, err
	}
	h.SyncCaches()
	return h, nil
}

func decodeExHeader(d *decoder) (*core.ExHeader, error) {
	h := &core.ExHeader{}
	m, err := d.byte1()
	if err != nil {
		return nil, err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return nil, err
	}
	hop, err := d.i32()
	if err != nil {
		return nil, err
	}
	if hop < -128 || hop > 127 {
		return nil, d.fail("hop index %d outside int8", hop)
	}
	h.Hop = int8(hop)
	if h.NextWaypointName, err = d.i32(); err != nil {
		return nil, err
	}
	ns, err := d.count(7)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ns; i++ {
		var w core.ExWaypoint
		if w.Name, err = d.i32(); err != nil {
			return nil, err
		}
		if w.HS, err = d.handshake(); err != nil {
			return nil, err
		}
		h.Stack = append(h.Stack, w)
	}
	ng, err := d.count(3)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ng; i++ {
		var g core.ExGlobal
		if g.Ref, err = d.treeRef(); err != nil {
			return nil, err
		}
		if g.Label, err = d.treeLabel(); err != nil {
			return nil, err
		}
		h.Global = append(h.Global, g)
	}
	if h.Leg, err = d.hopLeg(); err != nil {
		return nil, err
	}
	if h.LegSet, err = d.b(); err != nil {
		return nil, err
	}
	return h, nil
}

func decodePolyHeader(d *decoder) (*core.PolyHeader, error) {
	h := &core.PolyHeader{}
	m, err := d.byte1()
	if err != nil {
		return nil, err
	}
	h.Mode = core.Mode(m)
	if h.DestName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.SrcName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.Level, err = d.i32(); err != nil {
		return nil, err
	}
	if h.Found, err = d.b(); err != nil {
		return nil, err
	}
	if h.Ref, err = d.treeRef(); err != nil {
		return nil, err
	}
	if h.SourceLabel, err = d.treeLabel(); err != nil {
		return nil, err
	}
	if h.NextWaypointName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.Target, err = d.treeLabel(); err != nil {
		return nil, err
	}
	if h.Descending, err = d.b(); err != nil {
		return nil, err
	}
	return h, nil
}

func decodeRTZPlaneHeader(d *decoder) (*core.RTZHeader, error) {
	h := &core.RTZHeader{}
	var err error
	if h.SrcName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.DstName, err = d.i32(); err != nil {
		return nil, err
	}
	if h.SrcLabel, err = d.rtzLabel(); err != nil {
		return nil, err
	}
	if h.Leg, err = d.rtzHeader(); err != nil {
		return nil, err
	}
	return h, nil
}

func decodeHopPlaneHeader(d *decoder) (*core.HopHeader, error) {
	h := &core.HopHeader{}
	var err error
	if h.HS, err = d.handshake(); err != nil {
		return nil, err
	}
	if h.Leg, err = d.hopLeg(); err != nil {
		return nil, err
	}
	return h, nil
}
