package wire

import (
	"fmt"
	"math"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
)

// This file is the cluster frame codec: the envelope a packet wears
// while it is *between* shards. A frame is one transport message — the
// shard routing preamble (who the roundtrip is for, which leg it is on,
// the per-leg totals accumulated so far, where the completion report
// must go) followed, for in-flight packets, by the live header in its
// bare frame-embedded form (kind byte + body; the enclosing frame
// already carries magic and version). Frames are length-delimited by
// the transport (a channel element in process, a length-prefixed TCP
// segment on the network), so the header section simply extends to the
// end of the frame and costs no inner length prefix.

// FrameKind discriminates cluster frames.
type FrameKind byte

const (
	// FramePacket is an in-flight packet crossing a shard boundary.
	FramePacket FrameKind = 1
	// FrameInject asks the shard owning SrcName's node to start a
	// roundtrip (header creation is the source's job, so injection must
	// land on the source's shard; a shard re-routes foreign injects).
	FrameInject FrameKind = 2
	// FrameDone reports a completed roundtrip back to its home.
	FrameDone FrameKind = 3
	// FrameInfoReq asks a shard to describe its deployment.
	FrameInfoReq FrameKind = 4
	// FrameInfo answers FrameInfoReq.
	FrameInfo FrameKind = 5
	// FrameFlight is an in-flight packet in the fixed-layout flight
	// form (see flight.go): the forwarding shards read and patch a few
	// fixed offsets, and only the owning endpoints pay a full varint
	// decode. Decode with UnmarshalFlightFrame, never UnmarshalFrame.
	FrameFlight FrameKind = 6
	// FrameInjectBatch carries many injects as one transport message
	// (see AppendInjectBatch / ForEachInject in flight.go).
	FrameInjectBatch FrameKind = 7
	// FrameChurn carries one seeded topology-event batch into a shard
	// (see AppendChurnFrame / DecodeChurnFrame in churnframe.go). A
	// batch with no events is the repair acknowledgment a daemon sends
	// back to the connection that injected the batch.
	FrameChurn FrameKind = 8
	// FrameDrop reports a roundtrip abandoned during churn convergence
	// (stale route hit a down link or misdelivered) back to its home —
	// the lossy counterpart of FrameDone, so pipelined clients account
	// for every issued roundtrip even while shards repair.
	FrameDrop FrameKind = 9
)

// FrameDrop reasons.
const (
	// DropUnroutable: the route crossed an administratively down link
	// (typed sim.ErrUnroutable) before repair caught up.
	DropUnroutable byte = 1
	// DropMisroute: the packet misdelivered or failed forwarding on a
	// stale-but-alive route during convergence.
	DropMisroute byte = 2
)

// Home values of a frame: non-negative is the shard the completion
// report must be sent to (Origin is that shard's reply token for the
// client connection the inject arrived on).
const (
	// HomeLocal marks in-process roundtrips: the completing shard
	// records the roundtrip in its own stats and no Done frame flows.
	HomeLocal int32 = -1
	// HomeClient marks injects arriving fresh from a client connection;
	// the first shard that receives one stamps Home/Origin before
	// processing or re-routing it.
	HomeClient int32 = -2
)

// LegTotals is one leg's accumulated flight record, the frame's portable
// form of sim.Flight.
type LegTotals struct {
	Hops           int32
	Weight         graph.Dist
	MaxHeaderWords int32
}

// Frame is the decoded form of one cluster transport message.
type Frame struct {
	Kind             FrameKind
	SrcName, DstName int32
	// Return is true once the packet is on its return leg.
	Return bool
	// At is the node where the next Forward runs (FramePacket).
	At graph.NodeID
	// Out and Back accumulate each leg's totals; the leg in flight is
	// partial, the other is final.
	Out, Back LegTotals
	// Home and Origin say where the completion report goes (see the
	// Home* constants).
	Home   int32
	Origin uint64
	// Rt is the injector's roundtrip tag, echoed untouched through
	// packet frames into the completion report so a pipelined client can
	// match out-of-order completions (Origin cannot serve: the first
	// shard overwrites it with the connection's reply token).
	Rt      uint64
	Sampled bool
	// Reason classifies a FrameDrop (Drop* constants).
	Reason byte
	// Header is the in-flight packet's header in its frame-embedded
	// bare form — kind byte plus body, no envelope; decode with
	// HeaderDecoder.DecodeBare (FramePacket only). After UnmarshalFrame
	// it aliases the input buffer: decode it before recycling the frame
	// bytes.
	Header []byte
	// Info payload (FrameInfo only).
	SchemeKind core.Kind
	Nodes      int32
	Shards     int32
}

// AppendFrame encodes f and appends the bytes to dst, returning the
// extended slice. For packet frames the live header h is marshaled
// directly into the frame (f.Header is ignored); for every other kind h
// must be nil.
func AppendFrame(dst []byte, f *Frame, h sim.Header) ([]byte, error) {
	e := &encoder{buf: dst}
	e.envelope(blobFrame, core.Kind(f.Kind))
	switch f.Kind {
	case FramePacket:
		e.i(int64(f.SrcName))
		e.i(int64(f.DstName))
		e.b(f.Return)
		e.i(int64(f.At))
		e.legTotals(f.Out)
		e.legTotals(f.Back)
		e.i(int64(f.Home))
		e.u(f.Origin)
		e.u(f.Rt)
		e.b(f.Sampled)
		if h != nil {
			if err := e.headerBare(h); err != nil {
				return nil, err
			}
		} else {
			e.buf = append(e.buf, f.Header...)
		}
	case FrameInject:
		if h != nil {
			return nil, fmt.Errorf("wire: inject frame carries no header")
		}
		e.i(int64(f.SrcName))
		e.i(int64(f.DstName))
		e.i(int64(f.Home))
		e.u(f.Origin)
		e.u(f.Rt)
		e.b(f.Sampled)
	case FrameDone:
		if h != nil {
			return nil, fmt.Errorf("wire: done frame carries no header")
		}
		e.i(int64(f.SrcName))
		e.i(int64(f.DstName))
		e.legTotals(f.Out)
		e.legTotals(f.Back)
		e.u(f.Origin)
		e.u(f.Rt)
		e.b(f.Sampled)
	case FrameInfoReq:
		if h != nil {
			return nil, fmt.Errorf("wire: info request carries no header")
		}
	case FrameInfo:
		if h != nil {
			return nil, fmt.Errorf("wire: info frame carries no header")
		}
		e.byte1(byte(f.SchemeKind))
		e.i(int64(f.Nodes))
		e.i(int64(f.Shards))
	case FrameDrop:
		if h != nil {
			return nil, fmt.Errorf("wire: drop frame carries no header")
		}
		e.i(int64(f.SrcName))
		e.i(int64(f.DstName))
		e.u(f.Origin)
		e.u(f.Rt)
		e.byte1(f.Reason)
	case FrameFlight:
		return nil, fmt.Errorf("wire: flight frame: encode with AppendFlightFrame")
	case FrameInjectBatch:
		return nil, fmt.Errorf("wire: inject batch: encode with AppendInjectBatch")
	case FrameChurn:
		return nil, fmt.Errorf("wire: churn batch: encode with AppendChurnFrame")
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", f.Kind)
	}
	return e.buf, nil
}

// MarshalFrame is AppendFrame into a fresh buffer.
func MarshalFrame(f *Frame, h sim.Header) ([]byte, error) {
	return AppendFrame(nil, f, h)
}

// UnmarshalFrame decodes one transport message into *f (overwriting
// every field). Packet frames leave the header as raw bytes in f.Header
// — aliasing data — for the shard to decode with
// HeaderDecoder.DecodeBare.
func UnmarshalFrame(data []byte, f *Frame) error {
	d := &decoder{data: data}
	kind, err := d.envelope(blobFrame)
	if err != nil {
		return err
	}
	*f = Frame{Kind: FrameKind(kind)}
	switch f.Kind {
	case FramePacket:
		if err := d.framePair(f); err != nil {
			return err
		}
		if f.Return, err = d.b(); err != nil {
			return err
		}
		at, err := d.i32()
		if err != nil {
			return err
		}
		f.At = graph.NodeID(at)
		if f.Out, err = d.legTotals(); err != nil {
			return err
		}
		if f.Back, err = d.legTotals(); err != nil {
			return err
		}
		if err := d.homeOrigin(f); err != nil {
			return err
		}
		if f.Rt, err = d.u(); err != nil {
			return err
		}
		if f.Sampled, err = d.b(); err != nil {
			return err
		}
		if d.remaining() == 0 {
			return d.fail("packet frame missing header section")
		}
		f.Header = d.data[d.off:]
		return nil // header consumes the rest; nothing can trail it
	case FrameInject:
		if err := d.framePair(f); err != nil {
			return err
		}
		if err := d.homeOrigin(f); err != nil {
			return err
		}
		if f.Rt, err = d.u(); err != nil {
			return err
		}
		if f.Sampled, err = d.b(); err != nil {
			return err
		}
	case FrameDone:
		if err := d.framePair(f); err != nil {
			return err
		}
		if f.Out, err = d.legTotals(); err != nil {
			return err
		}
		if f.Back, err = d.legTotals(); err != nil {
			return err
		}
		if f.Origin, err = d.u(); err != nil {
			return err
		}
		if f.Rt, err = d.u(); err != nil {
			return err
		}
		if f.Sampled, err = d.b(); err != nil {
			return err
		}
	case FrameInfoReq:
		// no payload
	case FrameInfo:
		k, err := d.byte1()
		if err != nil {
			return err
		}
		f.SchemeKind = core.Kind(k)
		if f.Nodes, err = d.i32(); err != nil {
			return err
		}
		if f.Shards, err = d.i32(); err != nil {
			return err
		}
	case FrameDrop:
		if err := d.framePair(f); err != nil {
			return err
		}
		if f.Origin, err = d.u(); err != nil {
			return err
		}
		if f.Rt, err = d.u(); err != nil {
			return err
		}
		if f.Reason, err = d.byte1(); err != nil {
			return err
		}
		if f.Reason != DropUnroutable && f.Reason != DropMisroute {
			return d.fail("unknown drop reason %d", f.Reason)
		}
	case FrameFlight:
		return d.fail("flight frame: decode with UnmarshalFlightFrame")
	case FrameInjectBatch:
		return d.fail("inject batch: decode with ForEachInject")
	case FrameChurn:
		return d.fail("churn batch: decode with DecodeChurnFrame")
	default:
		return d.fail("unknown frame kind %d", byte(f.Kind))
	}
	return d.done()
}

func (e *encoder) legTotals(t LegTotals) {
	e.i(int64(t.Hops))
	e.i(int64(t.Weight))
	e.i(int64(t.MaxHeaderWords))
}

func (d *decoder) legTotals() (LegTotals, error) {
	var t LegTotals
	var err error
	if t.Hops, err = d.i32(); err != nil {
		return t, err
	}
	if t.Hops < 0 {
		return t, d.fail("negative leg hops %d", t.Hops)
	}
	w, err := d.i()
	if err != nil {
		return t, err
	}
	if w < 0 || w > int64(graph.Inf) {
		return t, d.fail("leg weight %d outside [0, Inf]", w)
	}
	t.Weight = graph.Dist(w)
	if t.MaxHeaderWords, err = d.i32(); err != nil {
		return t, err
	}
	if t.MaxHeaderWords < 0 {
		return t, d.fail("negative header words %d", t.MaxHeaderWords)
	}
	return t, nil
}

func (d *decoder) framePair(f *Frame) error {
	var err error
	if f.SrcName, err = d.i32(); err != nil {
		return err
	}
	if f.DstName, err = d.i32(); err != nil {
		return err
	}
	return nil
}

func (d *decoder) homeOrigin(f *Frame) error {
	home, err := d.i()
	if err != nil {
		return err
	}
	if home < int64(HomeClient) || home > math.MaxInt32 {
		return d.fail("frame home %d outside [-2, MaxInt32]", home)
	}
	f.Home = int32(home)
	if f.Origin, err = d.u(); err != nil {
		return err
	}
	return nil
}
