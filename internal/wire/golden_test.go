package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden wire blobs")

// TestGoldenSchemes locks the wire format: committed blobs for each
// scheme kind on a fixed seed must (a) byte-match a fresh encoding,
// (b) decode into a route-identical deployment, and (c) re-encode to the
// exact golden bytes. Any layout change trips this test — bump Version
// and regenerate with `go test ./internal/wire -run TestGolden -update`.
func TestGoldenSchemes(t *testing.T) {
	const n = 20
	planes, _ := testPlanes(t, n, 42)
	keys := make([]string, 0, len(planes))
	for k := range planes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, name := range keys {
		p := planes[name]
		t.Run(name, func(t *testing.T) {
			blob, err := MarshalScheme(p)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".rtwf")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(blob, want) {
				t.Fatalf("fresh encoding (%d bytes) differs from golden %s (%d bytes): wire format changed without a version bump",
					len(blob), path, len(want))
			}
			dep, err := UnmarshalScheme(want)
			if err != nil {
				t.Fatal(err)
			}
			sameRoutes(t, name, p, dep, n)
			again, err := MarshalScheme(dep)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again, want) {
				t.Fatal("re-encoding the decoded deployment does not reproduce the golden bytes")
			}
		})
	}
}
