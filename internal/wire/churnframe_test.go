package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rtroute/internal/churn"
)

// testChurnBatch is a fixed batch exercising every event kind, the
// DownWeight ceiling, and non-integral Poisson clocks.
func testChurnBatch() (uint64, []churn.Event) {
	return 7, []churn.Event{
		{Kind: churn.EdgeDown, U: 3, V: 11, At: 0.125},
		{Kind: churn.EdgeUp, U: 3, V: 11, At: 0.6875},
		{Kind: churn.WeightChange, U: 9, V: 2, Weight: 41, At: 1.375},
		{Kind: churn.NodeFail, Node: 14, At: 2.03125},
		{Kind: churn.NodeRecover, Node: 14, At: 3.5},
	}
}

// TestChurnEventFrameGolden locks the churn frame's bytes: the
// committed blob must byte-match a fresh encoding and decode back to
// the exact batch, Poisson clocks bit-identical — the replayability
// contract daemons rely on. Regenerate with -update.
func TestChurnEventFrameGolden(t *testing.T) {
	seq, events := testChurnBatch()
	blob := AppendChurnFrame(nil, seq, events)
	path := filepath.Join("testdata", "churnev.rtwf")
	if *update {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("churn frame bytes diverge from golden %s: layout changed without a version bump (regenerate with -update if intended)", path)
	}
	gotSeq, got, err := DecodeChurnFrame(want, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq || !reflect.DeepEqual(got, events) {
		t.Fatalf("golden decode mismatch:\n got seq=%d %v\nwant seq=%d %v", gotSeq, got, seq, events)
	}
	if k, ok := PeekFrameKind(want); !ok || k != FrameChurn {
		t.Fatalf("PeekFrameKind = %d, %v; want FrameChurn", k, ok)
	}
	// The empty batch is the daemon's repair acknowledgment.
	ack := AppendChurnFrame(nil, seq, nil)
	ackSeq, ackEvs, err := DecodeChurnFrame(ack, nil)
	if err != nil || ackSeq != seq || len(ackEvs) != 0 {
		t.Fatalf("ack roundtrip: seq=%d events=%v err=%v", ackSeq, ackEvs, err)
	}
}

// TestDropFrameRoundtrip covers the lossy completion report.
func TestDropFrameRoundtrip(t *testing.T) {
	for _, reason := range []byte{DropUnroutable, DropMisroute} {
		in := Frame{Kind: FrameDrop, SrcName: 5, DstName: 9, Origin: 3, Rt: 77, Reason: reason}
		blob, err := MarshalFrame(&in, nil)
		if err != nil {
			t.Fatal(err)
		}
		var out Frame
		if err := UnmarshalFrame(blob, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("drop frame roundtrip: got %+v want %+v", out, in)
		}
	}
	bad := Frame{Kind: FrameDrop, Reason: 3}
	blob, err := MarshalFrame(&bad, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out Frame
	if err := UnmarshalFrame(blob, &out); err == nil {
		t.Fatal("decoder accepted unknown drop reason")
	}
}

// FuzzUnmarshalChurnFrame: arbitrary bytes must error cleanly — never
// panic, never over-allocate — and a successful decode must re-encode
// into a batch that decodes back identically (byte identity is a
// golden-test property, not a fuzz property: varints have non-minimal
// encodings).
func FuzzUnmarshalChurnFrame(f *testing.F) {
	seq, events := testChurnBatch()
	blob := AppendChurnFrame(nil, seq, events)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add(blob[:8])
	mut := append([]byte(nil), blob...)
	mut[len(mut)/3] ^= 0x5a
	f.Add(mut)
	f.Add(AppendChurnFrame(nil, 1, nil))
	f.Add([]byte{})
	f.Add([]byte("RTWF\x02\x03\x08"))
	f.Fuzz(func(t *testing.T, data []byte) {
		gotSeq, evs, err := DecodeChurnFrame(data, nil)
		if err != nil {
			return
		}
		again := AppendChurnFrame(nil, gotSeq, evs)
		seq2, evs2, err := DecodeChurnFrame(again, nil)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		if seq2 != gotSeq || !reflect.DeepEqual(evs, evs2) {
			t.Fatalf("re-encode changed the batch: %v vs %v", evs, evs2)
		}
	})
}
