package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// testPlanes builds one instance of every scheme kind over a shared
// seeded graph.
func testPlanes(t testing.TB, n int, seed int64) (map[string]sim.Plane, *names.Permutation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)

	planes := make(map[string]sim.Plane)
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(seed)), core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	planes["stretch6"] = s6
	s6v, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(seed)), core.Stretch6Config{ViaSource: true})
	if err != nil {
		t.Fatal(err)
	}
	planes["stretch6-viasource"] = s6v
	ex, err := core.NewExStretch(g, m, perm, rand.New(rand.NewSource(seed)), core.ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	planes["exstretch"] = ex
	exd, err := core.NewExStretch(g, m, perm, rand.New(rand.NewSource(seed)), core.ExStretchConfig{K: 2, DirectReturn: true})
	if err != nil {
		t.Fatal(err)
	}
	planes["exstretch-directreturn"] = exd
	poly, err := core.NewPolynomialStretch(g, m, perm, core.PolyConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	planes["polystretch"] = poly
	sub, err := rtz.New(g, m, rand.New(rand.NewSource(seed)), rtz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := core.NewRTZPlane(sub, perm)
	if err != nil {
		t.Fatal(err)
	}
	planes["rtz"] = rp
	hop, err := rtz.NewHop(g, m, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := core.NewHopPlane(hop, perm)
	if err != nil {
		t.Fatal(err)
	}
	planes["hop"] = hp
	return planes, perm
}

// sameRoutes drives every ordered pair through both planes and demands
// bit-identical traces: same per-hop path, weight, and header growth.
func sameRoutes(t *testing.T, name string, want, got sim.Plane, n int) {
	t.Helper()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			src, dst := int32(u), int32(v)
			a, err := sim.Roundtrip(want, src, dst, 0)
			if err != nil {
				t.Fatalf("%s: reference roundtrip %d->%d: %v", name, src, dst, err)
			}
			b, err := sim.Roundtrip(got, src, dst, 0)
			if err != nil {
				t.Fatalf("%s: deployment roundtrip %d->%d: %v", name, src, dst, err)
			}
			if !reflect.DeepEqual(a.Out.Path, b.Out.Path) || !reflect.DeepEqual(a.Back.Path, b.Back.Path) {
				t.Fatalf("%s: %d->%d paths diverge:\n ref out %v back %v\n got out %v back %v",
					name, src, dst, a.Out.Path, a.Back.Path, b.Out.Path, b.Back.Path)
			}
			if a.Weight() != b.Weight() || a.Hops() != b.Hops() || a.MaxHeaderWords() != b.MaxHeaderWords() {
				t.Fatalf("%s: %d->%d aggregates diverge: ref (%d,%d,%d) got (%d,%d,%d)",
					name, src, dst, a.Weight(), a.Hops(), a.MaxHeaderWords(),
					b.Weight(), b.Hops(), b.MaxHeaderWords())
			}
		}
	}
}

// TestSchemeWireRoundtrip is the acceptance check: for every scheme
// kind, Unmarshal(Marshal(scheme)) produces a Deployment whose routes
// are bit-identical to the in-memory scheme over all pairs, and
// re-encoding the deployment reproduces the exact bytes.
func TestSchemeWireRoundtrip(t *testing.T) {
	const n = 28
	planes, _ := testPlanes(t, n, 7)
	for name, p := range planes {
		t.Run(name, func(t *testing.T) {
			blob, err := MarshalScheme(p)
			if err != nil {
				t.Fatal(err)
			}
			dep, err := UnmarshalScheme(blob)
			if err != nil {
				t.Fatal(err)
			}
			sameRoutes(t, name, p, dep, n)

			// Re-encoding the deployment is byte-identical: the format is
			// canonical, not merely round-trip stable.
			blob2, err := MarshalScheme(dep)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(blob, blob2) {
				t.Fatalf("%s: re-encoded blob differs (%d vs %d bytes)", name, len(blob), len(blob2))
			}

			// Per-node sizes recorded on the deployment match NodeSizes on
			// the original and sum below the blob size (shared envelope).
			sizes, err := NodeSizes(p)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for v := 0; v < n; v++ {
				if dep.EncodedSize(graph.NodeID(v)) != sizes[v] {
					t.Fatalf("%s: node %d encoded size %d != NodeSizes %d",
						name, v, dep.EncodedSize(graph.NodeID(v)), sizes[v])
				}
				total += sizes[v]
			}
			if total >= len(blob) {
				t.Fatalf("%s: node sections (%d bytes) not smaller than whole blob (%d)", name, total, len(blob))
			}
		})
	}
}

// TestDeployInProcess certifies the codec-free path: Decompose →
// Assemble produces route-identical deployments for every kind.
func TestDeployInProcess(t *testing.T) {
	const n = 24
	planes, _ := testPlanes(t, n, 11)
	for name, p := range planes {
		t.Run(name, func(t *testing.T) {
			dep, err := core.Deploy(p)
			if err != nil {
				t.Fatal(err)
			}
			if dep.EncodedSize(0) != -1 {
				t.Fatalf("in-process deployment reports encoded size %d, want -1", dep.EncodedSize(0))
			}
			sameRoutes(t, name, p, dep, n)
		})
	}
}

// TestHeaderWireRoundtrip marshals headers mid-flight at every hop of a
// roundtrip and checks the decoded header forwards identically — the
// "headers are real byte packets" property.
func TestHeaderWireRoundtrip(t *testing.T) {
	const n = 20
	planes, _ := testPlanes(t, n, 3)
	for name, p := range planes {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for trial := 0; trial < 40; trial++ {
				src := int32(rng.Intn(n))
				dst := int32(rng.Intn(n))
				if src == dst {
					continue
				}
				h, err := p.NewHeader(src, dst)
				if err != nil {
					t.Fatal(err)
				}
				g := p.Graph()
				cur := p.NodeOf(src)
				for leg := 0; leg < 2; leg++ {
					if leg == 1 {
						if err := p.BeginReturn(h); err != nil {
							t.Fatal(err)
						}
					}
					for hop := 0; hop < 4*n; hop++ {
						// Roundtrip the header through bytes before every
						// forwarding decision.
						blob, err := MarshalHeader(h)
						if err != nil {
							t.Fatalf("hop %d: %v", hop, err)
						}
						decoded, err := UnmarshalHeader(blob)
						if err != nil {
							t.Fatalf("hop %d: %v", hop, err)
						}
						if decoded.Words() != h.Words() {
							t.Fatalf("hop %d: decoded header words %d != %d", hop, decoded.Words(), h.Words())
						}
						h = decoded
						port, delivered, err := p.Forward(cur, h)
						if err != nil {
							t.Fatalf("forward at %d: %v", cur, err)
						}
						if delivered {
							break
						}
						e, ok := g.EdgeByPort(cur, port)
						if !ok {
							t.Fatalf("node %d has no port %d", cur, port)
						}
						cur = e.To
					}
				}
				if cur != p.NodeOf(src) {
					t.Fatalf("roundtrip through marshaled headers ended at %d, not source %d", cur, p.NodeOf(src))
				}
			}
		})
	}
}
