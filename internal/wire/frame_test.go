package wire

import (
	"errors"
	"reflect"
	"testing"
)

// TestFrameRoundtrip locks the frame codec: every kind encodes and
// decodes bit-identically, and a packet frame's embedded header decodes
// back to a header with the original word count.
func TestFrameRoundtrip(t *testing.T) {
	planes, _ := testPlanes(t, 16, 31)
	for name, p := range planes {
		h, err := p.NewHeader(4, 9)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := Frame{
			Kind: FramePacket, SrcName: 4, DstName: 9, Return: true, At: 7,
			Out:  LegTotals{Hops: 3, Weight: 41, MaxHeaderWords: 12},
			Back: LegTotals{Hops: 1, Weight: 5, MaxHeaderWords: 12},
			Home: 2, Origin: 99, Sampled: true,
		}
		blob, err := MarshalFrame(&in, h)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var out Frame
		if err := UnmarshalFrame(blob, &out); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		hdr := out.Header
		out.Header = nil
		in.Header = nil
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("%s: preamble mismatch:\n in: %+v\nout: %+v", name, in, out)
		}
		var hdec HeaderDecoder
		h2, err := hdec.DecodeBare(hdr)
		if err != nil {
			t.Fatalf("%s: embedded header: %v", name, err)
		}
		if h2.Words() != h.Words() {
			t.Fatalf("%s: embedded header words %d, want %d", name, h2.Words(), h.Words())
		}
	}

	for _, in := range []Frame{
		{Kind: FrameInject, SrcName: 1, DstName: 14, Home: HomeClient, Origin: 0, Sampled: true},
		{Kind: FrameInject, SrcName: 3, DstName: 2, Home: 5, Origin: 12},
		{Kind: FrameDone, SrcName: 1, DstName: 14,
			Out: LegTotals{Hops: 2, Weight: 9, MaxHeaderWords: 8}, Back: LegTotals{Hops: 4, Weight: 11, MaxHeaderWords: 8}, Origin: 12},
		{Kind: FrameInfoReq},
		{Kind: FrameInfo, SchemeKind: 2, Nodes: 1024, Shards: 8},
	} {
		blob, err := MarshalFrame(&in, nil)
		if err != nil {
			t.Fatalf("kind %d: marshal: %v", in.Kind, err)
		}
		var out Frame
		if err := UnmarshalFrame(blob, &out); err != nil {
			t.Fatalf("kind %d: unmarshal: %v", in.Kind, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("kind %d mismatch:\n in: %+v\nout: %+v", in.Kind, in, out)
		}
		if in.Kind != FramePacket {
			if err := UnmarshalFrame(append(blob, 0), &out); err == nil {
				t.Fatalf("kind %d: trailing garbage accepted", in.Kind)
			}
		}
	}
}

// TestFrameDecodeRejects locks strictness: truncation, bad kinds and a
// missing header section all error.
func TestFrameDecodeRejects(t *testing.T) {
	blob, err := MarshalFrame(&Frame{Kind: FrameInject, SrcName: 1, DstName: 2, Home: HomeLocal}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var f Frame
	for cut := 1; cut < len(blob); cut++ {
		if err := UnmarshalFrame(blob[:cut], &f); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[6] = 77 // frame kind slot
	if err := UnmarshalFrame(bad, &f); err == nil {
		t.Fatal("unknown frame kind accepted")
	}
	if _, err := MarshalFrame(&Frame{Kind: 77}, nil); err == nil {
		t.Fatal("unknown frame kind encoded")
	}
	// A packet frame must carry a header section.
	pkt, err := MarshalFrame(&Frame{Kind: FramePacket, Header: []byte{1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := UnmarshalFrame(pkt[:len(pkt)-1], &f); err == nil {
		t.Fatal("packet frame without header accepted")
	}
}

// TestPeekSnapshot locks the cheap preamble reader and the ErrVersion
// sentinel for snapshots written by a different format version.
func TestPeekSnapshot(t *testing.T) {
	planes, _ := testPlanes(t, 16, 33)
	for name, p := range planes {
		blob, err := MarshalScheme(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		info, err := PeekSnapshot(blob)
		if err != nil {
			t.Fatalf("%s: peek: %v", name, err)
		}
		if info.Version != Version || info.Nodes != 16 {
			t.Fatalf("%s: peek got %+v", name, info)
		}
		dep, err := UnmarshalScheme(blob)
		if err != nil {
			t.Fatal(err)
		}
		if dep.Kind() != info.Kind {
			t.Fatalf("%s: peek kind %v, decode kind %v", name, info.Kind, dep.Kind())
		}
		// Bump the version varint (currently one byte) and require the
		// sentinel from both the peek and the full decode.
		mut := append([]byte(nil), blob...)
		mut[4] = Version + 1
		if info, err = PeekSnapshot(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: version bump: got %v", name, err)
		} else if info.Version != Version+1 {
			t.Fatalf("%s: peek reported version %d, want %d", name, info.Version, Version+1)
		}
		if _, err := UnmarshalScheme(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("%s: decode version bump: got %v", name, err)
		}
	}
}
