// Package wire is the versioned binary codec for routing schemes and
// packet headers: the layer that turns the in-memory per-node
// decomposition (core.LocalState / core.SchemeState) into real bytes, so
// schemes survive snapshot/restore across processes, headers travel as
// byte packets, and the paper's Theorem 6/11 space bounds are certified
// in encoded bytes per node rather than abstract "words".
//
// Every blob starts with a fixed envelope:
//
//	offset 0: magic "RTWF" (4 bytes)
//	offset 4: format version (uvarint, currently 2)
//	then:     blob type (1 byte: 1 = scheme, 2 = header, 3 = frame)
//	then:     scheme kind (1 byte, core.Kind)
//
// All integers are varint-encoded (unsigned counts as uvarint, signed
// values zigzag), so small tables cost small bytes — the encoding the
// space report measures. Scheme blobs carry the network fabric, the
// naming, the O(1) shared parameters, and then one length-prefixed
// section per node holding exactly that node's LocalState; the section
// lengths are the per-node encoded sizes the eval space report and
// `rtroute -sizes` print.
//
// Decoding is strict: every read is bounds-checked, counts are validated
// against the remaining input before any allocation (a hostile blob can
// never make the decoder allocate more than O(len(input))), and trailing
// garbage is rejected. Arbitrary bytes must produce an error, never a
// panic — the fuzz tests lock this.
//
// Version policy: the version is bumped whenever the payload layout
// changes incompatibly; decoders reject versions they do not know. The
// golden-file tests pin the current version's exact bytes, so an
// accidental layout change fails CI rather than silently orphaning
// saved snapshots.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rtroute/internal/core"
	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/rtz"
	"rtroute/internal/tree"
)

// Version is the current wire-format version. Version 2 added the
// roundtrip tag to packet/inject/done frames and the fixed-layout
// flight-frame and inject-batch kinds.
const Version = 2

// magic opens every blob.
var magic = [4]byte{'R', 'T', 'W', 'F'}

const (
	blobScheme byte = 1
	blobHeader byte = 2
	blobFrame  byte = 3
)

// ErrVersion is wrapped by every decode failure caused by a format
// version this build does not read, so tools can distinguish "snapshot
// from a different release" from a corrupt blob and say so.
var ErrVersion = errors.New("wire: unsupported format version")

// maxNodes caps the node count a scheme blob may declare, far above any
// graph this repository can build but low enough to bound hostile
// allocation.
const maxNodes = 1 << 24

// --- encoder ---

type encoder struct {
	buf []byte
}

func (e *encoder) envelope(blobType byte, kind core.Kind) {
	e.buf = append(e.buf, magic[:]...)
	e.u(Version)
	e.buf = append(e.buf, blobType, byte(kind))
}

// u appends an unsigned varint. Header fields are overwhelmingly tiny
// (names, ports, DFS-time deltas), so the single-byte case is inlined;
// the slow path is bit-identical binary.AppendUvarint.
func (e *encoder) u(v uint64) {
	if v < 0x80 {
		e.buf = append(e.buf, byte(v))
		return
	}
	e.buf = binary.AppendUvarint(e.buf, v)
}

// i appends a zigzag-encoded signed varint (the explicit zigzag is
// byte-identical to binary.AppendVarint).
func (e *encoder) i(v int64) { e.u(uint64(v<<1) ^ uint64(v>>63)) }

// b appends a bool byte.
func (e *encoder) b(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// byte1 appends one raw byte.
func (e *encoder) byte1(v byte) { e.buf = append(e.buf, v) }

// --- decoder ---

type decoder struct {
	data []byte
	off  int
	// hd, when non-nil, supplies reusable arena storage for decoded
	// variable-size sections (set by HeaderDecoder).
	hd *HeaderDecoder
}

func (d *decoder) fail(format string, args ...any) error {
	return fmt.Errorf("wire: offset %d: %s", d.off, fmt.Sprintf(format, args...))
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) u() (uint64, error) {
	// Single-byte fast path; the slow path reads the identical format.
	if d.off < len(d.data) {
		if b := d.data[d.off]; b < 0x80 {
			d.off++
			return uint64(b), nil
		}
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.fail("truncated or oversized uvarint")
	}
	d.off += n
	return v, nil
}

func (d *decoder) i() (int64, error) {
	ux, err := d.u()
	if err != nil {
		return 0, d.fail("truncated or oversized varint")
	}
	return int64(ux>>1) ^ -int64(ux&1), nil
}

// i32 decodes a signed varint that must fit int32.
func (d *decoder) i32() (int32, error) {
	v, err := d.i()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, d.fail("value %d outside int32", v)
	}
	return int32(v), nil
}

func (d *decoder) b() (bool, error) {
	v, err := d.byte1()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, d.fail("invalid bool byte %d", v)
	}
}

func (d *decoder) byte1() (byte, error) {
	if d.off >= len(d.data) {
		return 0, d.fail("truncated")
	}
	v := d.data[d.off]
	d.off++
	return v, nil
}

// count decodes an element count and validates it against the remaining
// input: each element occupies at least minBytes bytes, so a hostile
// count can never drive an allocation beyond O(len(input)).
func (d *decoder) count(minBytes int) (int, error) {
	v, err := d.u()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(d.remaining()/minBytes) {
		return 0, d.fail("count %d exceeds remaining input (%d bytes, >= %d per element)",
			v, d.remaining(), minBytes)
	}
	return int(v), nil
}

// preamble reads magic + version, returning the blob's version before
// enforcing it (PeekSnapshot reports foreign versions, envelope rejects
// them).
func (d *decoder) preamble() (uint64, error) {
	if d.remaining() < len(magic) {
		return 0, d.fail("blob shorter than magic")
	}
	for i, c := range magic {
		if d.data[d.off+i] != c {
			return 0, d.fail("bad magic %q", d.data[d.off:d.off+len(magic)])
		}
	}
	d.off += len(magic)
	return d.u()
}

func (d *decoder) envelope(wantType byte) (core.Kind, error) {
	ver, err := d.preamble()
	if err != nil {
		return 0, err
	}
	if ver != Version {
		return 0, fmt.Errorf("wire: offset %d: %w: blob has version %d, this build reads %d",
			d.off, ErrVersion, ver, Version)
	}
	bt, err := d.byte1()
	if err != nil {
		return 0, err
	}
	if bt != wantType {
		return 0, d.fail("blob type %d, want %d", bt, wantType)
	}
	k, err := d.byte1()
	if err != nil {
		return 0, err
	}
	return core.Kind(k), nil
}

// done rejects trailing garbage.
func (d *decoder) done() error {
	if d.remaining() != 0 {
		return d.fail("%d trailing bytes", d.remaining())
	}
	return nil
}

// --- shared sub-structure codecs ---

// treeLabel encodes a tree address with its structure exploited: light
// hops carry strictly ascending DFS entry times down the root path, so
// every hop after the first stores only the (small) delta — the widths
// that would otherwise grow with log n collapse to a byte or two.
func (e *encoder) treeLabel(l tree.Label) {
	e.i(int64(l.Tin))
	e.lightHops(l.Light)
}

// lightHops is the root-path blob shared by treeLabel and the flight
// frame's fixed sections (which hoist Tin into their fixed fields).
func (e *encoder) lightHops(light []tree.LightHop) {
	e.u(uint64(len(light)))
	prev := int64(0)
	for i, h := range light {
		if i == 0 {
			e.i(int64(h.BranchTin))
		} else {
			e.i(int64(h.BranchTin) - prev)
		}
		prev = int64(h.BranchTin)
		e.i(int64(h.Port))
	}
}

func (d *decoder) treeLabel() (tree.Label, error) {
	var l tree.Label
	tin, err := d.i32()
	if err != nil {
		return l, err
	}
	l.Tin = tin
	if l.Light, err = d.lightHops(); err != nil {
		return l, err
	}
	return l, nil
}

func (d *decoder) lightHops() ([]tree.LightHop, error) {
	c, err := d.count(2)
	if err != nil {
		return nil, err
	}
	if c == 0 {
		return nil, nil
	}
	var light []tree.LightHop
	if d.hd != nil {
		light = d.hd.light.take(c)
	} else {
		light = make([]tree.LightHop, c)
	}
	prev := int64(0)
	for i := range light {
		dv, err := d.i()
		if err != nil {
			return nil, err
		}
		if i > 0 {
			dv += prev
		}
		if dv < math.MinInt32 || dv > math.MaxInt32 {
			return nil, d.fail("branch tin %d outside int32", dv)
		}
		light[i].BranchTin = int32(dv)
		prev = dv
		if light[i].Port, err = d.i32(); err != nil {
			return nil, err
		}
	}
	return light, nil
}

// treeState encodes the O(1) per-tree node state with the DFS-interval
// structure exploited: Tout >= Tin always (leaves store the common 0
// delta in one byte), and the heavy child's interval — all zeros on
// leaves — is encoded relative to the parent's only when present.
func (e *encoder) treeState(s tree.State) {
	e.i(int64(s.Tin))
	e.u(uint64(int64(s.Tout) - int64(s.Tin)))
	e.i(int64(s.HeavyPort))
	if s.HeavyPort >= 0 {
		e.i(int64(s.HeavyTin) - int64(s.Tin))
		e.u(uint64(int64(s.HeavyTout) - int64(s.HeavyTin)))
	}
}

func (d *decoder) treeState() (tree.State, error) {
	var s tree.State
	var err error
	if s.Tin, err = d.i32(); err != nil {
		return s, err
	}
	span, err := d.u()
	if err != nil {
		return s, err
	}
	tout := int64(s.Tin) + int64(span)
	if tout > math.MaxInt32 {
		return s, d.fail("tout %d outside int32", tout)
	}
	s.Tout = int32(tout)
	if s.HeavyPort, err = d.i32(); err != nil {
		return s, err
	}
	if s.HeavyPort >= 0 {
		dv, err := d.i()
		if err != nil {
			return s, err
		}
		htin := int64(s.Tin) + dv
		if htin < math.MinInt32 || htin > math.MaxInt32 {
			return s, d.fail("heavy tin %d outside int32", htin)
		}
		s.HeavyTin = int32(htin)
		hspan, err := d.u()
		if err != nil {
			return s, err
		}
		htout := htin + int64(hspan)
		if htout > math.MaxInt32 {
			return s, d.fail("heavy tout %d outside int32", htout)
		}
		s.HeavyTout = int32(htout)
	}
	return s, nil
}

func (e *encoder) rtzLabel(l rtz.Label) {
	e.i(int64(l.Node))
	e.i(int64(l.CenterIdx))
	e.i(int64(l.Center))
	e.treeLabel(l.TreeLabel)
}

func (d *decoder) rtzLabel() (rtz.Label, error) {
	var l rtz.Label
	var err error
	if l.Node, err = d.i32(); err != nil {
		return l, err
	}
	if l.CenterIdx, err = d.i32(); err != nil {
		return l, err
	}
	if l.Center, err = d.i32(); err != nil {
		return l, err
	}
	if l.TreeLabel, err = d.treeLabel(); err != nil {
		return l, err
	}
	return l, nil
}

func (e *encoder) treeRef(r cover.TreeRef) {
	e.i(int64(r.Level))
	e.i(int64(r.Index))
}

func (d *decoder) treeRef() (cover.TreeRef, error) {
	var r cover.TreeRef
	var err error
	if r.Level, err = d.i32(); err != nil {
		return r, err
	}
	if r.Index, err = d.i32(); err != nil {
		return r, err
	}
	return r, nil
}

func (e *encoder) handshake(hs rtz.Handshake) {
	e.treeRef(hs.Ref)
	e.treeLabel(hs.ULabel)
	e.treeLabel(hs.VLabel)
}

func (d *decoder) handshake() (rtz.Handshake, error) {
	var hs rtz.Handshake
	var err error
	if hs.Ref, err = d.treeRef(); err != nil {
		return hs, err
	}
	if hs.ULabel, err = d.treeLabel(); err != nil {
		return hs, err
	}
	if hs.VLabel, err = d.treeLabel(); err != nil {
		return hs, err
	}
	return hs, nil
}

func (e *encoder) rtzHeader(h rtz.Header) {
	e.i(int64(h.Dest))
	e.rtzLabel(h.Label)
	e.byte1(byte(h.Phase))
}

func (d *decoder) rtzHeader() (rtz.Header, error) {
	var h rtz.Header
	var err error
	if h.Dest, err = d.i32(); err != nil {
		return h, err
	}
	if h.Label, err = d.rtzLabel(); err != nil {
		return h, err
	}
	ph, err := d.byte1()
	if err != nil {
		return h, err
	}
	h.Phase = rtz.Phase(ph)
	return h, nil
}

func (e *encoder) hopLeg(h rtz.HopHeader) {
	e.treeRef(h.Ref)
	e.treeLabel(h.Target)
	e.b(h.Descending)
}

func (d *decoder) hopLeg() (rtz.HopHeader, error) {
	var h rtz.HopHeader
	var err error
	if h.Ref, err = d.treeRef(); err != nil {
		return h, err
	}
	if h.Target, err = d.treeLabel(); err != nil {
		return h, err
	}
	if h.Descending, err = d.b(); err != nil {
		return h, err
	}
	return h, nil
}

// --- graph codec ---

func (e *encoder) graph(g *graph.Graph) {
	n := g.N()
	for u := 0; u < n; u++ {
		out := g.Out(graph.NodeID(u))
		e.u(uint64(len(out)))
		for _, ed := range out {
			e.u(uint64(ed.To))
			e.u(uint64(ed.Weight))
			e.i(int64(ed.Port))
		}
	}
}

func (d *decoder) graph(n int) (*graph.Graph, error) {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		deg, err := d.count(3)
		if err != nil {
			return nil, err
		}
		for i := 0; i < deg; i++ {
			to, err := d.u()
			if err != nil {
				return nil, err
			}
			if to >= uint64(n) {
				return nil, d.fail("edge head %d outside [0,%d)", to, n)
			}
			w, err := d.u()
			if err != nil {
				return nil, err
			}
			if w > uint64(graph.Inf) {
				return nil, d.fail("edge weight %d exceeds Inf", w)
			}
			port, err := d.i32()
			if err != nil {
				return nil, err
			}
			if err := g.AddEdgePort(graph.NodeID(u), graph.NodeID(to), graph.Dist(w), port); err != nil {
				return nil, d.fail("%v", err)
			}
		}
	}
	if err := g.ValidatePorts(); err != nil {
		return nil, d.fail("%v", err)
	}
	return g, nil
}
