package wire

import (
	"math"

	"rtroute/internal/churn"
	"rtroute/internal/core"
	"rtroute/internal/graph"
)

// This file is the churn event frame codec: a topology-event batch in
// transit to a shard. A batch carries a strictly increasing sequence
// number (the shard applies batches in Seq order behind its epoch
// fence, holding early arrivals) plus the events themselves in their
// replayable form — the Poisson clock is shipped as exact float64 bits
// so a daemon's flap damper advances on the same instants the
// generator drew, keeping every replica's overlay bit-deterministic.

// minChurnEventBytes is the smallest wire footprint of one event: kind
// byte, three varint node ids, weight varint, clock varint.
const minChurnEventBytes = 6

// AppendChurnFrame encodes one churn event batch and appends the bytes
// to dst. An empty events slice encodes the repair acknowledgment.
func AppendChurnFrame(dst []byte, seq uint64, events []churn.Event) []byte {
	e := &encoder{buf: dst}
	e.envelope(blobFrame, core.Kind(FrameChurn))
	e.u(seq)
	e.u(uint64(len(events)))
	for _, ev := range events {
		e.byte1(byte(ev.Kind))
		e.i(int64(ev.U))
		e.i(int64(ev.V))
		e.i(int64(ev.Node))
		e.i(int64(ev.Weight))
		e.u(math.Float64bits(ev.At))
	}
	return e.buf
}

// DecodeChurnFrame decodes one churn event batch, appending the events
// to evs (pass a recycled slice to keep the ingestion path
// allocation-lean). Every field is validated with the frame decoders'
// strictness discipline: hostile bytes error, never panic, and a
// hostile count cannot drive an allocation beyond O(len(data)).
func DecodeChurnFrame(data []byte, evs []churn.Event) (seq uint64, out []churn.Event, err error) {
	d := &decoder{data: data}
	kind, err := d.envelope(blobFrame)
	if err != nil {
		return 0, evs, err
	}
	if FrameKind(kind) != FrameChurn {
		return 0, evs, d.fail("frame kind %d is not a churn batch", byte(kind))
	}
	if seq, err = d.u(); err != nil {
		return 0, evs, err
	}
	n, err := d.count(minChurnEventBytes)
	if err != nil {
		return 0, evs, err
	}
	for i := 0; i < n; i++ {
		var ev churn.Event
		k, err := d.byte1()
		if err != nil {
			return 0, evs, err
		}
		ev.Kind = churn.EventKind(k)
		if ev.Kind < churn.EdgeDown || ev.Kind > churn.NodeRecover {
			return 0, evs, d.fail("unknown churn event kind %d", k)
		}
		u, err := d.i32()
		if err != nil {
			return 0, evs, err
		}
		v, err := d.i32()
		if err != nil {
			return 0, evs, err
		}
		node, err := d.i32()
		if err != nil {
			return 0, evs, err
		}
		if u < 0 || u >= maxNodes || v < 0 || v >= maxNodes || node < 0 || node >= maxNodes {
			return 0, evs, d.fail("churn event node id outside [0, maxNodes)")
		}
		ev.U, ev.V, ev.Node = graph.NodeID(u), graph.NodeID(v), graph.NodeID(node)
		w, err := d.i()
		if err != nil {
			return 0, evs, err
		}
		if w < 0 || w > int64(graph.DownWeight) {
			return 0, evs, d.fail("churn event weight %d outside [0, DownWeight]", w)
		}
		ev.Weight = graph.Dist(w)
		bits, err := d.u()
		if err != nil {
			return 0, evs, err
		}
		ev.At = math.Float64frombits(bits)
		if math.IsNaN(ev.At) || math.IsInf(ev.At, 0) || ev.At < 0 {
			return 0, evs, d.fail("churn event clock is not a finite non-negative time")
		}
		evs = append(evs, ev)
	}
	if err := d.done(); err != nil {
		return 0, evs, err
	}
	return seq, evs, nil
}
