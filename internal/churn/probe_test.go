package churn

import (
	"math/rand"
	"testing"

	"rtroute/internal/graph"
)

// probeEvents draws an admissible event stream and yields, for every
// event that actually moves the metric, the (u, v, wNew) mutation —
// applying it to both graphs so exact and bounded probes see identical
// configurations.
func probeStream(t testing.TB, n int, seed int64, events int,
	check func(gx, gb *graph.Graph, u, v graph.NodeID, wNew graph.Dist)) {
	rng := rand.New(rand.NewSource(seed))
	gx := graph.RandomSC(n, 4*n, 8, rng)
	// Remap into [33, 64] so no edge dominates its node (the churn
	// experiments' weight-domain discipline).
	for u := 0; u < n; u++ {
		for _, e := range gx.Out(graph.NodeID(u)) {
			if err := gx.SetEdgeWeight(graph.NodeID(u), e.To, 33+(e.Weight-1)%32); err != nil {
				t.Fatal(err)
			}
		}
	}
	gb := gx.Clone()
	ov, err := NewOverlay(gx.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(ov, seed+1, 5, Mix{}, 64)
	m.SetMinWeight(33)
	for i := 0; i < events; i++ {
		ev := m.Next()
		var u, v graph.NodeID
		var wNew graph.Dist
		switch ev.Kind {
		case EdgeDown:
			u, v, wNew = ev.U, ev.V, graph.DownWeight
		case EdgeUp:
			if w, ok := gx.EdgeWeight(ev.U, ev.V); !ok || w != graph.DownWeight {
				// Model admissibility tracks its own overlay; skip
				// recoveries of edges our graphs never took down.
				u, v, wNew = ev.U, ev.V, 0
			} else {
				u, v, wNew = ev.U, ev.V, 33+graph.Dist(i%32)
			}
		case WeightChange:
			u, v, wNew = ev.U, ev.V, ev.Weight
		}
		if _, err := ov.Apply(ev); err != nil {
			t.Fatal(err)
		}
		if wNew == 0 {
			continue // node event or inadmissible recovery
		}
		if w, _ := gx.EdgeWeight(u, v); w == wNew {
			continue
		}
		check(gx, gb, u, v, wNew)
	}
}

// TestBoundedAffectedSetSupersetOfExact drives random event sequences
// through both probes on twin graphs: the bounded set must contain
// every node of the 8-Dijkstra exact set (the soundness the delta
// maintainers rely on) — and by the closure argument in probe.go it
// matches it exactly, which is asserted too.
func TestBoundedAffectedSetSupersetOfExact(t *testing.T) {
	for _, n := range []int{24, 64, 128} {
		probeStream(t, n, int64(100+n), 60, func(gx, gb *graph.Graph, u, v graph.NodeID, wNew graph.Dist) {
			exact := Affected(gx, u, v, wNew)
			bounded := AffectedBounded(gb, u, v, wNew)
			inB := make(map[graph.NodeID]bool, len(bounded))
			for _, x := range bounded {
				inB[x] = true
			}
			for _, x := range exact {
				if !inB[x] {
					t.Fatalf("n=%d (%d,%d)->%d: exact node %d missing from bounded set %v (exact %v)",
						n, u, v, wNew, x, bounded, exact)
				}
			}
			if len(bounded) != len(exact) {
				t.Fatalf("n=%d (%d,%d)->%d: bounded set has %d nodes, exact %d\nbounded %v\nexact   %v",
					n, u, v, wNew, len(bounded), len(exact), bounded, exact)
			}
		})
	}
}

// FuzzChurnEventStream feeds fuzzer-chosen event streams through twin
// overlays — one per probe — checking the superset property and that
// both graphs stay weight-identical (the probes' mutate-inside
// contracts agree).
func FuzzChurnEventStream(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 4, 5})
	f.Add(int64(7), []byte{2, 2, 2, 0, 1, 0, 1})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, picks []byte) {
		if len(picks) > 64 {
			picks = picks[:64]
		}
		const n = 24
		rng := rand.New(rand.NewSource(seed))
		gx := graph.RandomSC(n, 4*n, 8, rng)
		gb := gx.Clone()
		var edges [][2]graph.NodeID
		for u := 0; u < n; u++ {
			for _, e := range gx.Out(graph.NodeID(u)) {
				edges = append(edges, [2]graph.NodeID{graph.NodeID(u), e.To})
			}
		}
		for i, b := range picks {
			ed := edges[int(b)%len(edges)]
			u, v := ed[0], ed[1]
			wCur, _ := gx.EdgeWeight(u, v)
			var wNew graph.Dist
			switch {
			case b%3 == 0 && wCur < graph.DownWeight:
				wNew = graph.DownWeight // down
			case wCur == graph.DownWeight:
				wNew = 1 + graph.Dist(i%8) // back up
			default:
				wNew = 1 + graph.Dist(int(b)%8)
			}
			if wNew == graph.DownWeight && !liveStronglyConnected(gx, linkID{u, v}) {
				continue
			}
			exact := Affected(gx, u, v, wNew)
			bounded := AffectedBounded(gb, u, v, wNew)
			inB := make(map[graph.NodeID]bool, len(bounded))
			for _, x := range bounded {
				inB[x] = true
			}
			for _, x := range exact {
				if !inB[x] {
					t.Fatalf("event %d (%d,%d)->%d: exact node %d missing from bounded %v", i, u, v, wNew, x, bounded)
				}
			}
			for uu := 0; uu < n; uu++ {
				for _, e := range gx.Out(graph.NodeID(uu)) {
					wb, _ := gb.EdgeWeight(graph.NodeID(uu), e.To)
					if wb != e.Weight {
						t.Fatalf("graphs diverged at (%d,%d): %d vs %d", uu, e.To, e.Weight, wb)
					}
				}
			}
		}
	})
}

// benchProbe times one probe flavor over a fixed mutation schedule.
func benchProbe(b *testing.B, n int, bounded bool) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomSC(n, 4*n, 8, rng)
	for u := 0; u < n; u++ {
		for _, e := range g.Out(graph.NodeID(u)) {
			if err := g.SetEdgeWeight(graph.NodeID(u), e.To, 33+(e.Weight-1)%32); err != nil {
				b.Fatal(err)
			}
		}
	}
	var edges [][2]graph.NodeID
	for u := 0; u < n; u++ {
		for _, e := range g.Out(graph.NodeID(u)) {
			edges = append(edges, [2]graph.NodeID{graph.NodeID(u), e.To})
		}
	}
	p := NewProber()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ed := edges[i%len(edges)]
		w := 33 + graph.Dist(i%32)
		if bounded {
			p.Affected(g, ed[0], ed[1], w)
		} else {
			Affected(g, ed[0], ed[1], w)
		}
	}
}

func BenchmarkAffectedExact1024(b *testing.B)   { benchProbe(b, 1024, false) }
func BenchmarkAffectedBounded1024(b *testing.B) { benchProbe(b, 1024, true) }
