package churn

import (
	"math"
	"sort"
)

// DamperConfig tunes the flap damper. The shape follows BGP route-flap
// damping (RFC 2439): each flap adds a fixed penalty, the penalty decays
// exponentially with a configured half-life, a link whose penalty crosses
// the suppress threshold is quarantined, and it is released once decay
// brings the penalty under the reuse threshold.
type DamperConfig struct {
	Penalty  float64 // added per flap (default 1000)
	Suppress float64 // quarantine above this (default 2000)
	Reuse    float64 // release below this (default 750)
	HalfLife float64 // penalty half-life in event-time seconds (default 15)
}

func (c *DamperConfig) fill() {
	if c.Penalty <= 0 {
		c.Penalty = 1000
	}
	if c.Suppress <= 0 {
		c.Suppress = 2000
	}
	if c.Reuse <= 0 {
		c.Reuse = 750
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 15
	}
}

type linkDamp struct {
	penalty    float64
	at         float64 // event time the penalty was last decayed to
	suppressed bool
}

// Damper is the per-link penalty/suppress/reuse state machine. It is
// clocked purely by event time, so a churn run replays identically from
// its seed regardless of wall-clock speed. It is not safe for concurrent
// use; the churn plane drives it from the (single) event-application
// goroutine.
type Damper struct {
	cfg   DamperConfig
	links map[linkID]*linkDamp
}

// NewDamper creates a flap damper; zero-value fields of cfg take the
// RFC-flavored defaults.
func NewDamper(cfg DamperConfig) *Damper {
	cfg.fill()
	return &Damper{cfg: cfg, links: make(map[linkID]*linkDamp)}
}

// Config returns the effective (default-filled) configuration.
func (d *Damper) Config() DamperConfig { return d.cfg }

func (d *Damper) decay(l *linkDamp, at float64) {
	if at > l.at {
		l.penalty *= math.Exp2(-(at - l.at) / d.cfg.HalfLife)
		l.at = at
	}
}

// Flap records one flap of (u, v) at the given event time and reports
// whether the link is now suppressed.
func (d *Damper) Flap(u, v int32, at float64) bool {
	key := linkID{u, v}
	l := d.links[key]
	if l == nil {
		l = &linkDamp{at: at}
		d.links[key] = l
	}
	d.decay(l, at)
	l.penalty += d.cfg.Penalty
	if l.penalty >= d.cfg.Suppress {
		l.suppressed = true
	}
	return l.suppressed
}

// Suppressed reports whether (u, v) is quarantined at the given event
// time, applying decay (and release, if decay crossed the reuse
// threshold) first.
func (d *Damper) Suppressed(u, v int32, at float64) bool {
	l := d.links[linkID{u, v}]
	if l == nil {
		return false
	}
	d.decay(l, at)
	if l.suppressed && l.penalty <= d.cfg.Reuse {
		l.suppressed = false
	}
	return l.suppressed
}

// SuppressedCount returns the number of currently quarantined links
// (without advancing time).
func (d *Damper) SuppressedCount() int {
	c := 0
	for _, l := range d.links {
		if l.suppressed {
			c++
		}
	}
	return c
}

// Advance decays every link to event time at and returns the links whose
// suppression released, in sorted order (replay determinism). Links whose
// penalty decayed to noise are forgotten.
func (d *Damper) Advance(at float64) []linkID {
	var released []linkID
	for key, l := range d.links {
		d.decay(l, at)
		if l.suppressed && l.penalty <= d.cfg.Reuse {
			l.suppressed = false
			released = append(released, key)
		}
		if !l.suppressed && l.penalty < 1 {
			delete(d.links, key)
		}
	}
	sort.Slice(released, func(i, j int) bool {
		if released[i].U != released[j].U {
			return released[i].U < released[j].U
		}
		return released[i].V < released[j].V
	})
	return released
}
