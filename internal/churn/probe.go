package churn

import (
	"fmt"

	"rtroute/internal/graph"
)

// This file is the bounded affected-set probe: the same may-use set as
// Affected at half the Dijkstra bill, plus two frontier walks that stop
// at the first unaffected node.
//
// Affected's eight rows exist only to evaluate two equalities per graph
// configuration: x is source-affected when d(x,v) = d(x,u) + w (some
// shortest path from x to v crosses the edge), destination-affected
// when d(u,y) = w + d(v,y). The probe evaluates each equality set
// without the second row of its pair:
//
//   - The source set is exactly the backward closure of u under tight
//     in-edges of the single row t(x) = d(x,v): u belongs iff
//     t(u) = w, and y joins iff it has an out-edge (y, x) to a member x
//     with t(y) = w(y,x) + t(x). (⊇: walk a shortest x→v path ending
//     with the edge — every suffix is shortest, so every hop is tight
//     and every node on it satisfies the equality. ⊆: membership gives
//     d(y,u)+w ≤ w(y,x)+d(x,u)+w = t(y) ≤ d(y,u)+w, so equality.)
//   - The destination set is symmetrically the forward closure of v
//     under tight out-edges of the row f(y) = d(u,y).
//
// So each configuration costs one forward Dijkstra from u, one reverse
// Dijkstra from v, and two closure walks that touch only affected
// nodes and their incident edges — the walk stops at the first
// frontier node that breaks the tightness equality. Old plus new
// configuration: 4 full Dijkstras instead of 8, and the closure cost
// is proportional to the affected set, near zero in the common case
// where neither endpoint test fires. The result is the same set
// Affected returns, node for node — the superset property the
// maintainers need holds as equality.

// Prober computes bounded affected sets with reusable scratch: two
// Dijkstra scratches (the forward and reverse rows of one
// configuration are alive simultaneously), a stamp array for closure
// membership, and the work queue.
type Prober struct {
	fwd, rev *graph.SSSPScratch
	// mark accumulates the union of the four closures per probe; seen
	// is the per-closure traversal stamp (the closures overlap, so a
	// node found by one must not stop another's walk short).
	mark      []uint32
	epoch     uint32
	seen      []uint32
	seenEpoch uint32
	queue     []graph.NodeID
	dirty     []graph.NodeID
}

// NewProber returns a prober sized lazily to the graphs it probes.
func NewProber() *Prober { return &Prober{} }

// Affected is the bounded probe, with Affected's exact contract: it
// mutates edge (u, v) of g to weight wNew and returns the sorted
// may-use affected node set. The returned slice is owned by the caller;
// the prober's scratch is reused across calls.
func (p *Prober) Affected(g *graph.Graph, u, v graph.NodeID, wNew graph.Dist) []graph.NodeID {
	n := g.N()
	if p.fwd == nil {
		p.fwd = graph.NewSSSPScratch(n)
		p.rev = graph.NewSSSPScratch(n)
	}
	if len(p.mark) < n {
		p.mark = make([]uint32, n)
		p.seen = make([]uint32, n)
		p.epoch, p.seenEpoch = 0, 0
	}
	p.epoch++
	if p.epoch == 0 { // wrapped: stamps ambiguous, clear
		clear(p.mark)
		p.epoch = 1
	}
	wOld, ok := g.EdgeWeight(u, v)
	if !ok {
		panic(fmt.Sprintf("churn: no edge (%d,%d) to probe", u, v))
	}
	p.closures(g, u, v, wOld)
	if err := g.SetEdgeWeight(u, v, wNew); err != nil {
		panic(fmt.Sprintf("churn: reweight (%d,%d): %v", u, v, err))
	}
	p.closures(g, u, v, wNew)

	p.dirty = p.dirty[:0]
	for i := 0; i < n; i++ {
		if p.mark[i] == p.epoch {
			p.dirty = append(p.dirty, graph.NodeID(i))
		}
	}
	return append([]graph.NodeID(nil), p.dirty...)
}

// closures marks the source and destination equality sets of the
// current graph configuration with weight w on (u, v).
func (p *Prober) closures(g *graph.Graph, u, v graph.NodeID, w graph.Dist) {
	// Source side: backward closure of u under in-edges tight w.r.t.
	// t(x) = d(x, v).
	t := p.rev.DijkstraRev(g, v).Dist
	if t[u] == w {
		p.begin()
		p.visit(u)
		for len(p.queue) > 0 {
			x := p.queue[len(p.queue)-1]
			p.queue = p.queue[:len(p.queue)-1]
			for _, e := range g.In(x) {
				if y := e.From; p.seen[y] != p.seenEpoch && t[y] == e.Weight+t[x] {
					p.visit(y)
				}
			}
		}
	}
	// Destination side: forward closure of v under out-edges tight
	// w.r.t. f(y) = d(u, y).
	f := p.fwd.Dijkstra(g, u).Dist
	if f[v] == w {
		p.begin()
		p.visit(v)
		for len(p.queue) > 0 {
			x := p.queue[len(p.queue)-1]
			p.queue = p.queue[:len(p.queue)-1]
			for _, e := range g.Out(x) {
				if z := e.To; p.seen[z] != p.seenEpoch && f[z] == f[x]+e.Weight {
					p.visit(z)
				}
			}
		}
	}
}

// begin opens one closure walk: fresh traversal stamp, empty queue.
func (p *Prober) begin() {
	p.seenEpoch++
	if p.seenEpoch == 0 { // wrapped: stamps ambiguous, clear
		clear(p.seen)
		p.seenEpoch = 1
	}
	p.queue = p.queue[:0]
}

// visit adds a node to the closure in progress and the probe's union.
func (p *Prober) visit(x graph.NodeID) {
	p.seen[x] = p.seenEpoch
	p.mark[x] = p.epoch
	p.queue = append(p.queue, x)
}

// AffectedBounded is the one-shot form of Prober.Affected, for callers
// without a probe stream to amortize scratch over.
func AffectedBounded(g *graph.Graph, u, v graph.NodeID, wNew graph.Dist) []graph.NodeID {
	return NewProber().Affected(g, u, v, wNew)
}
