package churn

import (
	"fmt"
	"math/rand"
	"sort"

	"rtroute/internal/graph"
)

// linkID keys per-directed-edge churn state.
type linkID struct{ U, V graph.NodeID }

// downState is the record of one administratively down edge.
type downState struct {
	// Weight is the weight to restore on recovery. WeightChange events
	// hitting a down edge retarget this, not the live graph.
	Weight graph.Dist
	// WantUp marks an edge whose recovery arrived while the flap damper
	// had it suppressed: it comes back when the damper releases it.
	WantUp bool
}

// OverlayStats counts what the overlay did, for the telemetry plane.
type OverlayStats struct {
	Events          int64 // events applied
	TopologyChanges int64 // events that actually moved the metric
	SuppressedFlaps int64 // recoveries deferred by the flap damper
	DamperReleases  int64 // suppressed links finally restored
}

// Overlay drives a mutable working graph under churn. The graph is
// mutated in place — weights only, never adjacency — so every derived
// structure (port tables, routing schemes, oracles) keys against a stable
// topology skeleton while the metric moves underneath. Each mutation
// computes the may-use affected node set (see Affected) so the scheme
// maintainers can delta-rebuild exactly the state the event can touch.
//
// The overlay guards an invariant the rest of the plane relies on: the
// graph stays strongly connected over its live (weight < DownWeight)
// edges, so every distance stays finite and every scheme build succeeds.
type Overlay struct {
	G      *graph.Graph
	damper *Damper

	down   map[linkID]*downState
	failed []bool
	stats  OverlayStats
	// prober is the bounded affected-set probe (probe.go), scratch
	// shared across the overlay's whole event stream.
	prober *Prober
}

// NewOverlay wraps g (typically a clone of a pristine base graph) for
// churn. damper may be nil (no flap damping).
func NewOverlay(g *graph.Graph, damper *Damper) (*Overlay, error) {
	if !graph.StronglyConnected(g) {
		return nil, fmt.Errorf("churn: base graph is not strongly connected")
	}
	return &Overlay{
		G:      g,
		damper: damper,
		down:   make(map[linkID]*downState),
		failed: make([]bool, g.N()),
		prober: NewProber(),
	}, nil
}

// Stats returns a snapshot of the overlay counters.
func (ov *Overlay) Stats() OverlayStats { return ov.stats }

// EdgeDown reports whether (u, v) is currently administratively down.
func (ov *Overlay) EdgeDown(u, v graph.NodeID) bool {
	_, ok := ov.down[linkID{u, v}]
	return ok
}

// DownCount returns the number of currently down edges.
func (ov *Overlay) DownCount() int { return len(ov.down) }

// NodeFailed reports whether v's endpoint is currently failed.
func (ov *Overlay) NodeFailed(v graph.NodeID) bool { return ov.failed[v] }

// SuppressedCount returns the number of links the flap damper currently
// quarantines (0 without a damper).
func (ov *Overlay) SuppressedCount() int {
	if ov.damper == nil {
		return 0
	}
	return ov.damper.SuppressedCount()
}

// FailedCount returns the number of currently failed endpoints.
func (ov *Overlay) FailedCount() int {
	c := 0
	for _, f := range ov.failed {
		if f {
			c++
		}
	}
	return c
}

// Apply incorporates one event into the working graph and returns the
// may-use affected node set — every node whose anchored distance rows
// (either direction) could have changed, including tie changes. An empty
// set means the metric did not move (endpoint events, deferred
// recoveries, perturbations of down edges).
func (ov *Overlay) Apply(ev Event) ([]graph.NodeID, error) {
	ov.stats.Events++
	switch ev.Kind {
	case EdgeDown:
		key := linkID{ev.U, ev.V}
		if _, isDown := ov.down[key]; isDown {
			return nil, nil
		}
		if ov.wouldDisconnect(ev.U, ev.V) {
			return nil, fmt.Errorf("churn: downing (%d,%d) would disconnect the live graph", ev.U, ev.V)
		}
		w, ok := ov.G.EdgeWeight(ev.U, ev.V)
		if !ok {
			return nil, fmt.Errorf("churn: no edge (%d,%d)", ev.U, ev.V)
		}
		ov.down[key] = &downState{Weight: w}
		if ov.damper != nil {
			ov.damper.Flap(ev.U, ev.V, ev.At)
		}
		return ov.mutate(ev.U, ev.V, graph.DownWeight)

	case EdgeUp:
		key := linkID{ev.U, ev.V}
		ds, isDown := ov.down[key]
		if !isDown {
			return nil, nil
		}
		if ov.damper != nil && ov.damper.Suppressed(ev.U, ev.V, ev.At) {
			ds.WantUp = true
			ov.stats.SuppressedFlaps++
			return nil, nil
		}
		delete(ov.down, key)
		return ov.mutate(ev.U, ev.V, ds.Weight)

	case WeightChange:
		if ds, isDown := ov.down[linkID{ev.U, ev.V}]; isDown {
			ds.Weight = ev.Weight
			return nil, nil
		}
		return ov.mutate(ev.U, ev.V, ev.Weight)

	case NodeFail:
		ov.failed[ev.Node] = true
		return nil, nil

	case NodeRecover:
		ov.failed[ev.Node] = false
		return nil, nil
	}
	return nil, fmt.Errorf("churn: unknown event kind %v", ev.Kind)
}

// Advance moves the damper clock to time at, restoring any suppressed
// links whose deferred recovery is now allowed. Returns the union of the
// affected sets of those restorations.
func (ov *Overlay) Advance(at float64) ([]graph.NodeID, error) {
	if ov.damper == nil {
		return nil, nil
	}
	var dirty []graph.NodeID
	seen := make([]bool, ov.G.N())
	for _, key := range ov.damper.Advance(at) {
		ds, isDown := ov.down[key]
		if !isDown || !ds.WantUp {
			continue
		}
		delete(ov.down, key)
		ov.stats.DamperReleases++
		d, err := ov.mutate(key.U, key.V, ds.Weight)
		if err != nil {
			return nil, err
		}
		for _, v := range d {
			if !seen[v] {
				seen[v] = true
				dirty = append(dirty, v)
			}
		}
	}
	SortNodeIDs(dirty)
	return dirty, nil
}

// mutate reweights (u, v) and returns the may-use affected set.
func (ov *Overlay) mutate(u, v graph.NodeID, wNew graph.Dist) ([]graph.NodeID, error) {
	wOld, ok := ov.G.EdgeWeight(u, v)
	if !ok {
		return nil, fmt.Errorf("churn: no edge (%d,%d)", u, v)
	}
	if wOld == wNew {
		return nil, nil
	}
	dirty := ov.prober.Affected(ov.G, u, v, wNew)
	ov.stats.TopologyChanges++
	return dirty, nil
}

// Affected mutates edge (u, v) of g to weight wNew and returns the
// may-use affected node set: a sorted superset of every node whose
// shortest-path distance rows — in either direction, counting ties —
// differ between the old and new graph. Eight Dijkstras total: the four
// rows anchored at u and v on the old graph and the same four on the new.
//
// The set is exact for the schemes' purposes: a node x is
// source-affected iff some shortest path from x uses (or newly ties
// with) the edge, which on either graph is the equality
// d(x,v) = d(x,u) + w; destination-affected symmetrically via
// d(u,y) = w + d(v,y). Checking the equalities on both the pre- and
// post-mutation rows captures destroyed ties (weight increases) and
// created ties (decreases). Nodes outside the set keep bit-identical
// Dijkstra outcomes — distances and deterministic parent choices — in
// every solver the schemes run.
func Affected(g *graph.Graph, u, v graph.NodeID, wNew graph.Dist) []graph.NodeID {
	n := g.N()
	fuO := graph.Dijkstra(g, u).Dist
	fvO := graph.Dijkstra(g, v).Dist
	tuO := graph.DijkstraRev(g, u).Dist
	tvO := graph.DijkstraRev(g, v).Dist
	wOld, _ := g.EdgeWeight(u, v)

	if err := g.SetEdgeWeight(u, v, wNew); err != nil {
		panic(fmt.Sprintf("churn: reweight (%d,%d): %v", u, v, err))
	}
	fuN := graph.Dijkstra(g, u).Dist
	fvN := graph.Dijkstra(g, v).Dist
	tuN := graph.DijkstraRev(g, u).Dist
	tvN := graph.DijkstraRev(g, v).Dist

	var dirty []graph.NodeID
	for i := 0; i < n; i++ {
		x := graph.NodeID(i)
		srcAff := tvO[x] == tuO[x]+wOld || tvN[x] == tuN[x]+wNew
		dstAff := fuO[x] == wOld+fvO[x] || fuN[x] == wNew+fvN[x]
		if srcAff || dstAff {
			dirty = append(dirty, x)
		}
	}
	return dirty
}

// wouldDisconnect reports whether taking (u, v) down would break strong
// connectivity of the live graph (edges below DownWeight).
func (ov *Overlay) wouldDisconnect(u, v graph.NodeID) bool {
	return !liveStronglyConnected(ov.G, linkID{u, v})
}

// liveStronglyConnected checks strong connectivity over live edges,
// treating skip as down: every node must be reachable from node 0 going
// forward and reach node 0 going backward.
func liveStronglyConnected(g *graph.Graph, skip linkID) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	reached := make([]bool, n)
	stack := []graph.NodeID{0}
	reached[0] = true
	count := 1
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(x) {
			if e.Weight >= graph.DownWeight || (x == skip.U && e.To == skip.V) {
				continue
			}
			if !reached[e.To] {
				reached[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	if count < n {
		return false
	}
	for i := range reached {
		reached[i] = false
	}
	stack = append(stack[:0], 0)
	reached[0] = true
	count = 1
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.In(x) {
			w := e.Weight
			if w >= graph.DownWeight || (e.From == skip.U && x == skip.V) {
				continue
			}
			if !reached[e.From] {
				reached[e.From] = true
				count++
				stack = append(stack, e.From)
			}
		}
	}
	return count == n
}

// pickDown deterministically samples one down edge (sorted key order, so
// replay is exact across runs).
func (ov *Overlay) pickDown(rng *rand.Rand) (linkID, bool) {
	if len(ov.down) == 0 {
		return linkID{}, false
	}
	keys := make([]linkID, 0, len(ov.down))
	for k := range ov.down {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	return keys[rng.Intn(len(keys))], true
}

// pickFailed deterministically samples one failed node.
func (ov *Overlay) pickFailed(rng *rand.Rand) (graph.NodeID, bool) {
	var failed []graph.NodeID
	for v, f := range ov.failed {
		if f {
			failed = append(failed, graph.NodeID(v))
		}
	}
	if len(failed) == 0 {
		return 0, false
	}
	return failed[rng.Intn(len(failed))], true
}

// SortNodeIDs sorts a dirty set in place (the canonical order every
// affected set and union is reported in).
func SortNodeIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
