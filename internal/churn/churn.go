// Package churn is the dynamic-topology plane: a deterministic, seeded
// model of link and node churn driving a mutable overlay over the live
// routing graph, the may-use affected-set machinery that turns each
// topology event into the (provably sufficient) dirty node set the
// incremental scheme maintainers consume, and an RFC 2439-style flap
// damper that quarantines unstable links.
//
// Design decisions, mirrored in DESIGN.md:
//
//   - Edges churn in place. A down edge keeps its adjacency slot and port
//     label and has its weight pushed to graph.DownWeight, so the CSR
//     layout, port numbering and neighbor lists every routing table was
//     built against never shift under churn. On a graph kept strongly
//     connected over its live edges, a DownWeight edge is never on a
//     shortest path and never in a shortest-path tie, so it vanishes from
//     every scheme's view of the metric while staying addressable (a
//     stale route that still points at it fails typed, it does not
//     vanish into a missing port).
//
//   - Node failure is an endpoint-availability event, not a topology
//     event. Removing a vertex would change n and the TINN name universe,
//     making "rebuild incrementally, certify against a fresh build"
//     incoherent mid-run. A failed node stops originating and answering
//     roundtrips (the workload excludes it; traffic addressed to it
//     counts as dropped) but keeps forwarding transit — the model of a
//     host losing its service while its router stays up. Link events
//     carry all actual topology churn.
//
//   - Every event stream is replayable from (seed, rate, mix): events are
//     Poisson-clocked (exponential inter-arrival at the given rate) and
//     all choices come from one seeded source, with deterministic
//     fallbacks when a pick is inadmissible (e.g. a down-pick whose loss
//     would disconnect the live graph degrades to a perturbation).
package churn

import (
	"fmt"
	"math/rand"

	"rtroute/internal/graph"
)

// EventKind classifies a topology event.
type EventKind int8

const (
	// EdgeDown takes a live edge administratively down.
	EdgeDown EventKind = iota
	// EdgeUp restores a down edge at its pre-down weight (subject to
	// flap damping: a suppressed link stays quarantined until reuse).
	EdgeUp
	// WeightChange perturbs a live edge's weight.
	WeightChange
	// NodeFail marks a node's endpoint down (transit unaffected).
	NodeFail
	// NodeRecover restores a failed node's endpoint.
	NodeRecover
)

func (k EventKind) String() string {
	switch k {
	case EdgeDown:
		return "edge-down"
	case EdgeUp:
		return "edge-up"
	case WeightChange:
		return "weight-change"
	case NodeFail:
		return "node-fail"
	case NodeRecover:
		return "node-recover"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one churn event. Edge events carry (U, V); node events carry
// Node. At is the Poisson event time in abstract seconds.
type Event struct {
	Kind   EventKind
	U, V   graph.NodeID
	Node   graph.NodeID
	Weight graph.Dist // WeightChange: the new weight
	At     float64
}

func (e Event) String() string {
	switch e.Kind {
	case NodeFail, NodeRecover:
		return fmt.Sprintf("%s node=%d t=%.3f", e.Kind, e.Node, e.At)
	case WeightChange:
		return fmt.Sprintf("%s edge=(%d,%d) w=%d t=%.3f", e.Kind, e.U, e.V, e.Weight, e.At)
	}
	return fmt.Sprintf("%s edge=(%d,%d) t=%.3f", e.Kind, e.U, e.V, e.At)
}

// Mix weighs the event kinds. Zero-value mixes select DefaultMix. The
// weights need not be normalized.
type Mix struct {
	EdgeDown    float64
	EdgeUp      float64
	Perturb     float64
	NodeFail    float64
	NodeRecover float64
}

// DefaultMix flaps links (down slightly more often than up, so a few
// links are usually down), perturbs weights, and fails the occasional
// endpoint.
var DefaultMix = Mix{EdgeDown: 3, EdgeUp: 3, Perturb: 3, NodeFail: 0.5, NodeRecover: 0.5}

func (m Mix) total() float64 {
	return m.EdgeDown + m.EdgeUp + m.Perturb + m.NodeFail + m.NodeRecover
}

// Model is the seeded churn event generator. It observes (but does not
// mutate) the overlay's state to keep its picks admissible; the caller
// feeds each generated event back through Overlay.Apply.
type Model struct {
	ov    *Overlay
	rng   *rand.Rand
	rate  float64
	mix   Mix
	clock float64
	edges []Event // candidate edge list (U, V fields used)
	minW  graph.Dist
	maxW  graph.Dist
}

// NewModel creates the generator. rate is events per abstract second;
// the zero Mix selects DefaultMix. Perturbed weights are drawn uniformly
// from [1, maxW] (maxW <= 0 uses the graph's current maximum weight).
func NewModel(ov *Overlay, seed int64, rate float64, mix Mix, maxW graph.Dist) *Model {
	if mix.total() <= 0 {
		mix = DefaultMix
	}
	if rate <= 0 {
		rate = 1
	}
	if maxW <= 0 {
		maxW = ov.G.MaxWeight()
		if maxW >= graph.DownWeight {
			maxW = 64
		}
	}
	m := &Model{ov: ov, rng: rand.New(rand.NewSource(seed)), rate: rate, mix: mix, minW: 1, maxW: maxW}
	n := ov.G.N()
	for u := 0; u < n; u++ {
		for _, e := range ov.G.Out(graph.NodeID(u)) {
			m.edges = append(m.edges, Event{U: graph.NodeID(u), V: e.To})
		}
	}
	return m
}

// Clock returns the current event time.
func (m *Model) Clock() float64 { return m.clock }

// SetMinWeight raises the floor of the perturbation weight domain
// (default 1), matching a graph whose weights live in [min, max]. A
// weight domain with max/min under 2 keeps any single edge from
// dominating its head node's entry, which is what keeps per-event
// affected sets proportional to real path diversity.
func (m *Model) SetMinWeight(w graph.Dist) {
	if w >= 1 && w <= m.maxW {
		m.minW = w
	}
}

// Next generates the next event. The event is admissible against the
// overlay state at generation time (a down-pick keeps the live graph
// strongly connected, an up-pick names a down edge, and so on);
// inadmissible draws degrade deterministically to a WeightChange on a
// live edge, so the stream never stalls.
func (m *Model) Next() Event {
	m.clock += m.rng.ExpFloat64() / m.rate
	kind := m.pickKind()
	const retries = 8
	switch kind {
	case EdgeDown:
		for i := 0; i < retries; i++ {
			c := m.edges[m.rng.Intn(len(m.edges))]
			if m.ov.EdgeDown(c.U, c.V) {
				continue
			}
			if !m.ov.wouldDisconnect(c.U, c.V) {
				return Event{Kind: EdgeDown, U: c.U, V: c.V, At: m.clock}
			}
		}
	case EdgeUp:
		if pick, ok := m.ov.pickDown(m.rng); ok {
			return Event{Kind: EdgeUp, U: pick.U, V: pick.V, At: m.clock}
		}
	case NodeFail:
		for i := 0; i < retries; i++ {
			v := graph.NodeID(m.rng.Intn(m.ov.G.N()))
			if !m.ov.failed[v] {
				return Event{Kind: NodeFail, Node: v, At: m.clock}
			}
		}
	case NodeRecover:
		if pick, ok := m.ov.pickFailed(m.rng); ok {
			return Event{Kind: NodeRecover, Node: pick, At: m.clock}
		}
	}
	// WeightChange, or the deterministic fallback for every starved pick.
	for i := 0; ; i++ {
		c := m.edges[m.rng.Intn(len(m.edges))]
		if !m.ov.EdgeDown(c.U, c.V) || i >= retries {
			w := m.minW + graph.Dist(m.rng.Int63n(int64(m.maxW-m.minW+1)))
			return Event{Kind: WeightChange, U: c.U, V: c.V, Weight: w, At: m.clock}
		}
	}
}

func (m *Model) pickKind() EventKind {
	x := m.rng.Float64() * m.mix.total()
	if x -= m.mix.EdgeDown; x < 0 {
		return EdgeDown
	}
	if x -= m.mix.EdgeUp; x < 0 {
		return EdgeUp
	}
	if x -= m.mix.Perturb; x < 0 {
		return WeightChange
	}
	if x -= m.mix.NodeFail; x < 0 {
		return NodeFail
	}
	return NodeRecover
}
