package churn

import (
	"math"
	"testing"
)

// TestDamperStateMachine walks one link through the full penalty
// lifecycle: below suppression after one flap, quarantined after the
// threshold crossing, held while the penalty stays above reuse, and
// released by decay — with the release also reported by Advance.
func TestDamperStateMachine(t *testing.T) {
	d := NewDamper(DamperConfig{})
	cfg := d.Config()

	if d.Flap(1, 2, 0) {
		t.Fatal("suppressed after a single flap (penalty 1000 < suppress 2000)")
	}
	if d.Suppressed(1, 2, 0) {
		t.Fatal("Suppressed reports quarantine after a single flap")
	}
	if !d.Flap(1, 2, 0) {
		t.Fatal("not suppressed after the second flap crossed the threshold")
	}
	if !d.Suppressed(1, 2, 0) {
		t.Fatal("Suppressed disagrees with Flap's quarantine report")
	}
	if got := d.SuppressedCount(); got != 1 {
		t.Fatalf("SuppressedCount = %d, want 1", got)
	}

	// Penalty 2*Penalty at t=0; solve for the time decay crosses Reuse
	// and check both sides of the boundary.
	release := cfg.HalfLife * math.Log2(2*cfg.Penalty/cfg.Reuse)
	if !d.Suppressed(1, 2, release-1) {
		t.Fatalf("released early: penalty at t=%.2f already under reuse", release-1)
	}
	if d.Suppressed(1, 2, release+1) {
		t.Fatalf("still suppressed at t=%.2f, past the reuse crossing %.2f", release+1, release)
	}

	// A suppressed link releases via Advance too, reported in order.
	d.Flap(3, 4, 100)
	if !d.Flap(3, 4, 100) {
		t.Fatal("link (3,4) not suppressed after two instant flaps")
	}
	rel := d.Advance(100 + 10*cfg.HalfLife)
	if len(rel) != 1 || rel[0] != (linkID{3, 4}) {
		t.Fatalf("Advance released %v, want [(3,4)]", rel)
	}
	if d.SuppressedCount() != 0 {
		t.Fatalf("SuppressedCount = %d after release, want 0", d.SuppressedCount())
	}
}

// TestDamperForgetsQuietLinks locks the map cleanup: a link whose
// penalty decays to noise is dropped, so a long run's damper state is
// bounded by the recently flapping links, not every link that ever
// flapped.
func TestDamperForgetsQuietLinks(t *testing.T) {
	d := NewDamper(DamperConfig{})
	d.Flap(1, 2, 0)
	d.Advance(20 * d.Config().HalfLife)
	if len(d.links) != 0 {
		t.Fatalf("damper still tracks %d links after full decay, want 0", len(d.links))
	}
}
