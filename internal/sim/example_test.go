package sim_test

import (
	"fmt"

	"rtroute/internal/graph"
	"rtroute/internal/sim"
)

// hdr is a minimal mutable packet header: just the destination node.
type hdr struct{ dst graph.NodeID }

func (h *hdr) Words() int { return 1 }

// ringFwd forwards clockwise around a ring until the header's
// destination is reached — the simplest possible local forwarding
// function F(table(x), header(P)): it consults only the current node
// and the header.
type ringFwd struct{}

func (ringFwd) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	if at == h.(*hdr).dst {
		return 0, true, nil
	}
	return 0, false, nil // every ring node's single out-edge is port 0
}

// Example drives a packet around a 5-node ring with Run, the
// full-trace runner; the fabric resolves each returned port over the
// graph and enforces the hop budget.
func Example() {
	g := graph.New(5)
	for v := 0; v < 5; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID((v+1)%5), 1)
	}
	tr, err := sim.Run(g, ringFwd{}, 1, &hdr{dst: 4}, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("path:", tr.Path)
	fmt.Println("hops:", tr.Hops, "weight:", tr.Weight)
	// Output:
	// path: [1 2 3 4]
	// hops: 3 weight: 3
}
