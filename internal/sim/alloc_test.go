package sim

import (
	"errors"
	"testing"

	"rtroute/internal/graph"
)

// TestFlyZeroAllocsPerHop is the hot-path allocation regression gate:
// once the graph is sealed and the header exists, forwarding a packet
// allocates nothing — not per hop and not per flight.
func TestFlyZeroAllocsPerHop(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	g := ringWithPorts(t, 16)
	g.Seal()
	h := &hopHeader{ports: make([]graph.PortID, 12)}
	// Warm up (first PortTable call may seal).
	if _, err := Fly(g, scriptForwarder{}, 0, h, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		h.pos = 0
		if _, err := Fly(g, scriptForwarder{}, 0, h, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Fly allocates %.1f times per 12-hop flight, want 0", allocs)
	}
}

// poisonHeader panics if its size is read after a failed Forward — the
// regression guard for the fly() ordering bug where a failed Forward's
// possibly-invalid header was measured before the error was checked.
type poisonHeader struct {
	poisoned bool
}

func (h *poisonHeader) Words() int {
	if h.poisoned {
		panic("sim: header read after failed Forward")
	}
	return 1
}

type poisonForwarder struct{}

func (poisonForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	hdr.(*poisonHeader).poisoned = true
	return 0, false, errBoom
}

func TestFlyChecksForwardErrorBeforeHeader(t *testing.T) {
	g := ringWithPorts(t, 3)
	_, err := Fly(g, poisonForwarder{}, 0, &poisonHeader{}, 0)
	if !errors.Is(err, errBoom) {
		t.Fatalf("Forward error not propagated: %v", err)
	}
	if _, err := Run(g, poisonForwarder{}, 0, &poisonHeader{}, 0); !errors.Is(err, errBoom) {
		t.Fatalf("Run: Forward error not propagated: %v", err)
	}
}

// fixedToyHeader exercises the FixedSizeHeader fast path: Words must be
// sampled at least once per leg, and the recorded maximum must match the
// leg-invariant size.
type fixedToyHeader struct {
	hopHeader
}

func (h *fixedToyHeader) FixedWords() bool { return true }
func (h *fixedToyHeader) Words() int       { return 1 + len(h.ports) } // leg-invariant

type fixedScriptForwarder struct{}

func (fixedScriptForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	h := hdr.(*fixedToyHeader)
	if h.pos >= len(h.ports) {
		return 0, true, nil
	}
	p := h.ports[h.pos]
	h.pos++
	return p, false, nil
}

func TestFlyFixedSizeHeaderSampledOnce(t *testing.T) {
	g := ringWithPorts(t, 8)
	h := &fixedToyHeader{hopHeader{ports: make([]graph.PortID, 5)}}
	want := h.Words()
	fl, err := Fly(g, fixedScriptForwarder{}, 0, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fl.MaxHeaderWords != want {
		t.Fatalf("MaxHeaderWords = %d, want leg-invariant %d", fl.MaxHeaderWords, want)
	}
}

// TestRoundtripFlightReusingMatchesFresh locks the reuse contract on the
// toy plane: a reused header must route exactly like a fresh one.
func TestRoundtripFlightReusingMatchesFresh(t *testing.T) {
	p := &ringPlane{g: ringWithPorts(t, 9)}
	pairs := [][2]int32{{2, 5}, {0, 8}, {7, 1}, {4, 4}, {3, 6}}
	var hdr Header
	for _, pr := range pairs {
		if pr[0] == pr[1] {
			continue
		}
		fo, fb, err := RoundtripFlight(p, pr[0], pr[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		var ro, rb Flight
		ro, rb, hdr, err = RoundtripFlightReusing(p, hdr, pr[0], pr[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if ro != fo || rb != fb {
			t.Fatalf("pair %v: reused %+v/%+v != fresh %+v/%+v", pr, ro, rb, fo, fb)
		}
	}
}
