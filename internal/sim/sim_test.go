package sim

import (
	"errors"
	"testing"

	"rtroute/internal/graph"
)

// hopHeader is a toy header: route along a fixed port script.
type hopHeader struct {
	ports []graph.PortID
	pos   int
}

func (h *hopHeader) Words() int { return 1 + len(h.ports) - h.pos }

// scriptForwarder forwards along the header's port script and delivers
// when the script is exhausted.
type scriptForwarder struct{}

func (scriptForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	h := hdr.(*hopHeader)
	if h.pos >= len(h.ports) {
		return 0, true, nil
	}
	p := h.ports[h.pos]
	h.pos++
	return p, false, nil
}

func ringWithPorts(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graph.Ring(n, nil) // sequential ports: each node's port 0 goes forward
}

func TestRunDelivers(t *testing.T) {
	g := ringWithPorts(t, 5)
	h := &hopHeader{ports: []graph.PortID{0, 0, 0}}
	tr, err := Run(g, scriptForwarder{}, 1, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops != 3 || tr.Weight != 3 {
		t.Fatalf("trace hops=%d weight=%d, want 3,3", tr.Hops, tr.Weight)
	}
	wantPath := []graph.NodeID{1, 2, 3, 4}
	if len(tr.Path) != len(wantPath) {
		t.Fatalf("path %v, want %v", tr.Path, wantPath)
	}
	for i := range wantPath {
		if tr.Path[i] != wantPath[i] {
			t.Fatalf("path %v, want %v", tr.Path, wantPath)
		}
	}
}

func TestRunRecordsMaxHeaderWords(t *testing.T) {
	g := ringWithPorts(t, 4)
	h := &hopHeader{ports: []graph.PortID{0, 0}}
	tr, err := Run(g, scriptForwarder{}, 0, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Initial header is largest: 1 + 2 words.
	if tr.MaxHeaderWords != 3 {
		t.Fatalf("MaxHeaderWords = %d, want 3", tr.MaxHeaderWords)
	}
}

type loopForwarder struct{}

func (loopForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 0, false, nil // forever forward: a routing loop
}

func TestRunHopBudget(t *testing.T) {
	g := ringWithPorts(t, 3)
	_, err := Run(g, loopForwarder{}, 0, &hopHeader{}, 10)
	if err == nil {
		t.Fatal("routing loop not detected")
	}
}

type badPortForwarder struct{}

func (badPortForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 999, false, nil
}

func TestRunRejectsUnknownPort(t *testing.T) {
	g := ringWithPorts(t, 3)
	if _, err := Run(g, badPortForwarder{}, 0, &hopHeader{}, 0); err == nil {
		t.Fatal("unknown port accepted")
	}
}

type errForwarder struct{}

var errBoom = errors.New("boom")

func (errForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 0, false, errBoom
}

func TestRunPropagatesForwardError(t *testing.T) {
	g := ringWithPorts(t, 3)
	_, err := Run(g, errForwarder{}, 0, &hopHeader{}, 0)
	if !errors.Is(err, errBoom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestFlyMatchesRun(t *testing.T) {
	g := ringWithPorts(t, 6)
	tr, err := Run(g, scriptForwarder{}, 2, &hopHeader{ports: []graph.PortID{0, 0, 0, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := Fly(g, scriptForwarder{}, 2, &hopHeader{ports: []graph.PortID{0, 0, 0, 0}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Weight != tr.Weight || fl.Hops != tr.Hops || fl.MaxHeaderWords != tr.MaxHeaderWords {
		t.Fatalf("Fly %+v disagrees with Run %+v", fl, tr)
	}
	if want := tr.Path[len(tr.Path)-1]; fl.Last != want {
		t.Fatalf("Fly.Last = %d, want %d", fl.Last, want)
	}
}

func TestFlyHopBudget(t *testing.T) {
	g := ringWithPorts(t, 3)
	if _, err := Fly(g, loopForwarder{}, 0, &hopHeader{}, 10); err == nil {
		t.Fatal("routing loop not detected by Fly")
	}
}

// ringPlane is a toy Plane over the port-0 ring: names are node ids, the
// header scripts dst-src forward hops out and src-dst+n back.
type ringPlane struct {
	g *graph.Graph
}

type ringHeader struct {
	src, dst int32
	h        hopHeader
}

func (h *ringHeader) Words() int { return h.h.Words() }

func (p *ringPlane) NewHeader(srcName, dstName int32) (Header, error) {
	n := int32(p.g.N())
	steps := (dstName - srcName + n) % n
	return &ringHeader{src: srcName, dst: dstName, h: hopHeader{ports: make([]graph.PortID, steps)}}, nil
}

func (p *ringPlane) ResetHeader(h Header, srcName, dstName int32) error {
	hh := h.(*ringHeader)
	n := int32(p.g.N())
	steps := (dstName - srcName + n) % n
	*hh = ringHeader{src: srcName, dst: dstName, h: hopHeader{ports: make([]graph.PortID, steps)}}
	return nil
}

func (p *ringPlane) BeginReturn(h Header) error {
	hh := h.(*ringHeader)
	n := int32(p.g.N())
	steps := (hh.src - hh.dst + n) % n
	hh.h = hopHeader{ports: make([]graph.PortID, steps)}
	return nil
}

func (p *ringPlane) Forward(at graph.NodeID, h Header) (graph.PortID, bool, error) {
	return scriptForwarder{}.Forward(at, &h.(*ringHeader).h)
}

func (p *ringPlane) NodeOf(name int32) graph.NodeID { return graph.NodeID(name) }
func (p *ringPlane) Graph() *graph.Graph            { return p.g }

func TestPlaneRoundtripAndFlight(t *testing.T) {
	p := &ringPlane{g: ringWithPorts(t, 8)}
	rt, err := Roundtrip(p, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Out.Hops != 3 || rt.Back.Hops != 5 || rt.Hops() != 8 {
		t.Fatalf("roundtrip hops out=%d back=%d", rt.Out.Hops, rt.Back.Hops)
	}
	if last := rt.Out.Path[len(rt.Out.Path)-1]; last != 5 {
		t.Fatalf("outbound delivered at %d", last)
	}
	out, back, err := RoundtripFlight(p, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hops != rt.Out.Hops || back.Hops != rt.Back.Hops ||
		out.Weight != rt.Out.Weight || back.Weight != rt.Back.Weight ||
		out.Last != 5 || back.Last != 2 {
		t.Fatalf("flight %+v/%+v disagrees with trace", out, back)
	}
}

func TestRoundtripTraceAggregation(t *testing.T) {
	rt := &RoundtripTrace{
		Out:  &Trace{Weight: 7, Hops: 3, MaxHeaderWords: 5},
		Back: &Trace{Weight: 9, Hops: 4, MaxHeaderWords: 8},
	}
	if rt.Weight() != 16 || rt.Hops() != 7 || rt.MaxHeaderWords() != 8 {
		t.Fatalf("aggregation wrong: %d %d %d", rt.Weight(), rt.Hops(), rt.MaxHeaderWords())
	}
}
