package sim

import (
	"errors"
	"testing"

	"rtroute/internal/graph"
)

// hopHeader is a toy header: route along a fixed port script.
type hopHeader struct {
	ports []graph.PortID
	pos   int
}

func (h *hopHeader) Words() int { return 1 + len(h.ports) - h.pos }

// scriptForwarder forwards along the header's port script and delivers
// when the script is exhausted.
type scriptForwarder struct{}

func (scriptForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	h := hdr.(*hopHeader)
	if h.pos >= len(h.ports) {
		return 0, true, nil
	}
	p := h.ports[h.pos]
	h.pos++
	return p, false, nil
}

func ringWithPorts(t *testing.T, n int) *graph.Graph {
	t.Helper()
	return graph.Ring(n, nil) // sequential ports: each node's port 0 goes forward
}

func TestRunDelivers(t *testing.T) {
	g := ringWithPorts(t, 5)
	h := &hopHeader{ports: []graph.PortID{0, 0, 0}}
	tr, err := Run(g, scriptForwarder{}, 1, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Hops != 3 || tr.Weight != 3 {
		t.Fatalf("trace hops=%d weight=%d, want 3,3", tr.Hops, tr.Weight)
	}
	wantPath := []graph.NodeID{1, 2, 3, 4}
	if len(tr.Path) != len(wantPath) {
		t.Fatalf("path %v, want %v", tr.Path, wantPath)
	}
	for i := range wantPath {
		if tr.Path[i] != wantPath[i] {
			t.Fatalf("path %v, want %v", tr.Path, wantPath)
		}
	}
}

func TestRunRecordsMaxHeaderWords(t *testing.T) {
	g := ringWithPorts(t, 4)
	h := &hopHeader{ports: []graph.PortID{0, 0}}
	tr, err := Run(g, scriptForwarder{}, 0, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Initial header is largest: 1 + 2 words.
	if tr.MaxHeaderWords != 3 {
		t.Fatalf("MaxHeaderWords = %d, want 3", tr.MaxHeaderWords)
	}
}

type loopForwarder struct{}

func (loopForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 0, false, nil // forever forward: a routing loop
}

func TestRunHopBudget(t *testing.T) {
	g := ringWithPorts(t, 3)
	_, err := Run(g, loopForwarder{}, 0, &hopHeader{}, 10)
	if err == nil {
		t.Fatal("routing loop not detected")
	}
}

type badPortForwarder struct{}

func (badPortForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 999, false, nil
}

func TestRunRejectsUnknownPort(t *testing.T) {
	g := ringWithPorts(t, 3)
	if _, err := Run(g, badPortForwarder{}, 0, &hopHeader{}, 0); err == nil {
		t.Fatal("unknown port accepted")
	}
}

type errForwarder struct{}

var errBoom = errors.New("boom")

func (errForwarder) Forward(at graph.NodeID, hdr Header) (graph.PortID, bool, error) {
	return 0, false, errBoom
}

func TestRunPropagatesForwardError(t *testing.T) {
	g := ringWithPorts(t, 3)
	_, err := Run(g, errForwarder{}, 0, &hopHeader{}, 0)
	if !errors.Is(err, errBoom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRoundtripTraceAggregation(t *testing.T) {
	rt := &RoundtripTrace{
		Out:  &Trace{Weight: 7, Hops: 3, MaxHeaderWords: 5},
		Back: &Trace{Weight: 9, Hops: 4, MaxHeaderWords: 8},
	}
	if rt.Weight() != 16 || rt.Hops() != 7 || rt.MaxHeaderWords() != 8 {
		t.Fatalf("aggregation wrong: %d %d %d", rt.Weight(), rt.Hops(), rt.MaxHeaderWords())
	}
}
