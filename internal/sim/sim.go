// Package sim is the packet-level simulation fabric: it delivers packets
// by repeatedly invoking a scheme's local forwarding function and
// resolving the returned port over the graph — exactly the network's role
// in §1.1.1. The engine enforces the model's disciplines: forwarding sees
// only (node, header), port resolution is the fabric's job, hop budgets
// catch routing loops, and header growth is recorded so tests can assert
// the O(log^2 n)-bit bound.
//
// Two runners share one forwarding loop: Run records the full per-hop
// path (tracing, replay verification), Fly records only aggregates (the
// traffic engine's hot path). Both drive the same Forwarder contract, so
// a scheme certified for one is certified for the other.
package sim

import (
	"errors"
	"fmt"

	"rtroute/internal/graph"
)

// ErrUnroutable is the sentinel for roundtrips that hit an
// administratively down link (weight >= graph.DownWeight) before the
// scheme maintainers caught up with the topology event. The forwarding
// loops fail the packet immediately and typed — never traverse the dead
// link, never hang — so the traffic plane can count it as a churn drop
// and retry after repair. Match with errors.Is.
var ErrUnroutable = errors.New("route crosses a down link")

// UnroutableError records where a packet died on a down link. It unwraps
// to ErrUnroutable.
type UnroutableError struct {
	At   graph.NodeID // node holding the stale route
	To   graph.NodeID // unreachable neighbor across the down link
	Hops int          // hops flown before hitting the dead link
}

func (e *UnroutableError) Error() string {
	return fmt.Sprintf("sim: unroutable at node %d: link to %d is down (hop %d)", e.At, e.To, e.Hops)
}

func (e *UnroutableError) Unwrap() error { return ErrUnroutable }

// Header is the mutable packet header a scheme reads and rewrites at each
// node (TINN schemes require writable headers, §1.1.4).
type Header interface {
	// Words reports the current header size in machine words.
	Words() int
}

// FixedSizeHeader is an optional Header extension for headers whose
// Words() cannot change while a leg is in flight (BeginReturn and
// ResetHeader may still resize it between legs). The runners sample
// Words once per leg for such headers instead of once per hop.
type FixedSizeHeader interface {
	Header
	// FixedWords reports whether the header's size is leg-invariant.
	FixedWords() bool
}

// Forwarder is a routing scheme's local forwarding function
// F(table(x), header(P)) of §1.1.1. Implementations must only consult
// the local table of the given node plus the header.
type Forwarder interface {
	Forward(at graph.NodeID, h Header) (port graph.PortID, delivered bool, err error)
}

// Plane is the compiled forwarding contract shared by the sequential
// tracer and the concurrent traffic engine: a frozen scheme whose tables
// are read-only after construction, plus the header lifecycle needed to
// inject roundtrip packets addressed by NAME. Implementations must be
// safe for concurrent use by any number of goroutines — Forward,
// NewHeader and BeginReturn may only mutate the packet header passed to
// them, never shared table state.
type Plane interface {
	Forwarder
	// NewHeader returns a fresh outbound header for one roundtrip from
	// the node named srcName to the node named dstName.
	NewHeader(srcName, dstName int32) (Header, error)
	// ResetHeader rewrites h — which must have been produced by an
	// earlier NewHeader on the SAME plane — into a fresh outbound header
	// for a new roundtrip, reusing the header's storage. After a
	// successful reset the header is indistinguishable from a
	// NewHeader(srcName, dstName) result, so a worker can serve its whole
	// packet stream with O(1) header allocations.
	ResetHeader(h Header, srcName, dstName int32) error
	// BeginReturn flips a delivered outbound header into the return leg
	// (the acknowledgment that reuses topology learned on the way out).
	BeginReturn(h Header) error
	// NodeOf maps a TINN name to its topological node index.
	NodeOf(name int32) graph.NodeID
	// Graph returns the network fabric the plane forwards over.
	Graph() *graph.Graph
}

// Trace records one packet's journey hop by hop.
type Trace struct {
	Path           []graph.NodeID
	Weight         graph.Dist
	Hops           int
	MaxHeaderWords int
}

// Flight is the compact per-leg record of the allocation-lean runner: the
// same aggregates as a Trace without the per-hop path.
type Flight struct {
	Weight         graph.Dist
	Hops           int
	MaxHeaderWords int
	// Last is the node the packet was delivered at.
	Last graph.NodeID
}

// Run injects a packet with header h at src and forwards it until the
// scheme reports delivery, the hop budget is exhausted, or forwarding
// fails. maxHops <= 0 selects the default budget of 4n hops.
func Run(g *graph.Graph, f Forwarder, src graph.NodeID, h Header, maxHops int) (*Trace, error) {
	path := []graph.NodeID{src}
	fl, err := fly(g, f, src, h, maxHops, &path)
	if err != nil {
		return nil, err
	}
	return &Trace{Path: path, Weight: fl.Weight, Hops: fl.Hops, MaxHeaderWords: fl.MaxHeaderWords}, nil
}

// Fly is the hot-path runner: identical forwarding semantics to Run, but
// it records only the Flight aggregates — no per-hop path, no per-packet
// slice growth.
func Fly(g *graph.Graph, f Forwarder, src graph.NodeID, h Header, maxHops int) (Flight, error) {
	return fly(g, f, src, h, maxHops, nil)
}

// fly is the single forwarding loop behind Run and Fly. When path is
// non-nil every visited node is appended to it.
//
// Per-hop discipline: the port table is hoisted once per leg (no per-hop
// index loads), a failed Forward is reported before the header is read
// again (a failing scheme may leave the header in an invalid state), and
// fixed-size headers are measured once per leg instead of once per hop.
func fly(g *graph.Graph, f Forwarder, src graph.NodeID, h Header, maxHops int, path *[]graph.NodeID) (Flight, error) {
	if maxHops <= 0 {
		maxHops = 4 * g.N()
	}
	ports := g.PortTable()
	fl := Flight{Last: src, MaxHeaderWords: h.Words()}
	fixed := false
	if fs, ok := h.(FixedSizeHeader); ok {
		fixed = fs.FixedWords()
	}
	cur := src
	for {
		port, delivered, err := f.Forward(cur, h)
		if err != nil {
			return fl, fmt.Errorf("sim: forwarding at node %d (hop %d): %w", cur, fl.Hops, err)
		}
		if !fixed {
			if w := h.Words(); w > fl.MaxHeaderWords {
				fl.MaxHeaderWords = w
			}
		}
		if delivered {
			return fl, nil
		}
		e, ok := ports.EdgeByPort(cur, port)
		if !ok {
			return fl, fmt.Errorf("sim: node %d has no out-port %d", cur, port)
		}
		if e.Weight >= graph.DownWeight {
			return fl, &UnroutableError{At: cur, To: e.To, Hops: fl.Hops}
		}
		fl.Weight += e.Weight
		cur = e.To
		fl.Last = cur
		if path != nil {
			*path = append(*path, cur)
		}
		if fl.Hops++; fl.Hops > maxHops {
			if path != nil {
				return fl, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop); path tail %v",
					maxHops, tail(*path, 8))
			}
			return fl, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop) at node %d", maxHops, cur)
		}
	}
}

// FlySegment advances one leg of a packet's flight across the slice of
// the fabric a caller owns: starting at fl.Last, it forwards while
// own(current node) holds and stops — without invoking the foreign
// node's forwarding function — as soon as the packet crosses onto a node
// the caller does not own (delivered=false, fl.Last is that node), or
// when the scheme reports delivery (delivered=true). It is the cluster
// engine's per-shard runner: a leg is a chain of segments, one per shard
// visited, and the chain's accounting is hop-for-hop identical to one
// fly loop because fl carries the leg's running totals between segments.
//
// The caller owns the leg lifecycle: initialize fl = Flight{Last: src,
// MaxHeaderWords: h.Words()} when the leg starts, and carry fl (plus the
// wire-encoded header) across segment boundaries. maxHops bounds the
// whole leg, not the segment (<= 0 selects the default 4n budget).
func FlySegment(g *graph.Graph, f Forwarder, h Header, fl *Flight, maxHops int, own func(graph.NodeID) bool) (delivered bool, err error) {
	if maxHops <= 0 {
		maxHops = 4 * g.N()
	}
	ports := g.PortTable()
	fixed := false
	if fs, ok := h.(FixedSizeHeader); ok {
		fixed = fs.FixedWords()
	}
	cur := fl.Last
	for {
		if !own(cur) {
			return false, nil
		}
		port, delivered, err := f.Forward(cur, h)
		if err != nil {
			return false, fmt.Errorf("sim: forwarding at node %d (hop %d): %w", cur, fl.Hops, err)
		}
		if !fixed {
			if w := h.Words(); w > fl.MaxHeaderWords {
				fl.MaxHeaderWords = w
			}
		}
		if delivered {
			return true, nil
		}
		e, ok := ports.EdgeByPort(cur, port)
		if !ok {
			return false, fmt.Errorf("sim: node %d has no out-port %d", cur, port)
		}
		if e.Weight >= graph.DownWeight {
			return false, &UnroutableError{At: cur, To: e.To, Hops: fl.Hops}
		}
		fl.Weight += e.Weight
		cur = e.To
		fl.Last = cur
		if fl.Hops++; fl.Hops > maxHops {
			return false, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop) at node %d", maxHops, cur)
		}
	}
}

// SegmentRunner is FlySegment with the per-call setup hoisted: the port
// table, the ownership predicate, the resolved hop budget. A cluster
// shard drives every segment of every packet through one runner, so the
// crossing path pays no per-segment closure construction or table
// lookup. The runner is read-only after construction and safe for
// concurrent use by a shard's worker pool.
type SegmentRunner struct {
	f       Forwarder
	ports   graph.PortTable
	own     func(graph.NodeID) bool
	maxHops int
}

// NewSegmentRunner builds a runner over the caller's slice of the
// fabric. maxHops bounds each whole leg (<= 0 selects the default 4n
// budget). own must be safe for concurrent use.
func NewSegmentRunner(g *graph.Graph, f Forwarder, maxHops int, own func(graph.NodeID) bool) *SegmentRunner {
	if maxHops <= 0 {
		maxHops = 4 * g.N()
	}
	return &SegmentRunner{f: f, ports: g.PortTable(), own: own, maxHops: maxHops}
}

// Fly advances one segment, with FlySegment's exact contract.
func (r *SegmentRunner) Fly(h Header, fl *Flight) (delivered bool, err error) {
	fixed := false
	if fs, ok := h.(FixedSizeHeader); ok {
		fixed = fs.FixedWords()
	}
	cur := fl.Last
	for {
		if !r.own(cur) {
			return false, nil
		}
		port, delivered, err := r.f.Forward(cur, h)
		if err != nil {
			return false, fmt.Errorf("sim: forwarding at node %d (hop %d): %w", cur, fl.Hops, err)
		}
		if !fixed {
			if w := h.Words(); w > fl.MaxHeaderWords {
				fl.MaxHeaderWords = w
			}
		}
		if delivered {
			return true, nil
		}
		e, ok := r.ports.EdgeByPort(cur, port)
		if !ok {
			return false, fmt.Errorf("sim: node %d has no out-port %d", cur, port)
		}
		if e.Weight >= graph.DownWeight {
			return false, &UnroutableError{At: cur, To: e.To, Hops: fl.Hops}
		}
		fl.Weight += e.Weight
		cur = e.To
		fl.Last = cur
		if fl.Hops++; fl.Hops > r.maxHops {
			return false, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop) at node %d", r.maxHops, cur)
		}
	}
}

// HopHook observes one forwarded hop of a traced packet: the node
// arrived at, the leg's running hop count, and the leg weight so far.
// Hooks run inline on the forwarding path, so implementations must be
// cheap and allocation-free; the telemetry flight recorder is the
// intended consumer.
type HopHook func(at graph.NodeID, hops int, weight graph.Dist)

// FlyHooked advances one segment with FlySegment's exact contract,
// invoking hook after every forwarded hop. It is a separate loop so
// the untraced Fly — the overwhelmingly common case — carries no hook
// test per hop; the cluster engine selects FlyHooked only for
// roundtrips armed by the trace sampler.
func (r *SegmentRunner) FlyHooked(h Header, fl *Flight, hook HopHook) (delivered bool, err error) {
	fixed := false
	if fs, ok := h.(FixedSizeHeader); ok {
		fixed = fs.FixedWords()
	}
	cur := fl.Last
	for {
		if !r.own(cur) {
			return false, nil
		}
		port, delivered, err := r.f.Forward(cur, h)
		if err != nil {
			return false, fmt.Errorf("sim: forwarding at node %d (hop %d): %w", cur, fl.Hops, err)
		}
		if !fixed {
			if w := h.Words(); w > fl.MaxHeaderWords {
				fl.MaxHeaderWords = w
			}
		}
		if delivered {
			return true, nil
		}
		e, ok := r.ports.EdgeByPort(cur, port)
		if !ok {
			return false, fmt.Errorf("sim: node %d has no out-port %d", cur, port)
		}
		if e.Weight >= graph.DownWeight {
			return false, &UnroutableError{At: cur, To: e.To, Hops: fl.Hops}
		}
		fl.Weight += e.Weight
		cur = e.To
		fl.Last = cur
		if fl.Hops++; fl.Hops > r.maxHops {
			return false, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop) at node %d", r.maxHops, cur)
		}
		hook(cur, fl.Hops, fl.Weight)
	}
}

func tail(p []graph.NodeID, k int) []graph.NodeID {
	if len(p) <= k {
		return p
	}
	return p[len(p)-k:]
}

// Roundtrip routes one roundtrip srcName -> dstName -> srcName over the
// plane, recording full per-hop traces for both legs and validating the
// delivery nodes. This is the single roundtrip path the schemes' own
// Roundtrip methods and the replay-verification tests go through.
func Roundtrip(p Plane, srcName, dstName int32, maxHops int) (*RoundtripTrace, error) {
	h, err := p.NewHeader(srcName, dstName)
	if err != nil {
		return nil, fmt.Errorf("sim: header %d->%d: %w", srcName, dstName, err)
	}
	src, dst := p.NodeOf(srcName), p.NodeOf(dstName)
	out, err := Run(p.Graph(), p, src, h, maxHops)
	if err != nil {
		return nil, fmt.Errorf("sim: outbound %d->%d: %w", srcName, dstName, err)
	}
	if last := out.Path[len(out.Path)-1]; last != dst {
		return nil, fmt.Errorf("sim: outbound %d->%d delivered at wrong node %d", srcName, dstName, last)
	}
	if err := p.BeginReturn(h); err != nil {
		return nil, fmt.Errorf("sim: return header %d->%d: %w", srcName, dstName, err)
	}
	back, err := Run(p.Graph(), p, dst, h, maxHops)
	if err != nil {
		return nil, fmt.Errorf("sim: return %d->%d: %w", dstName, srcName, err)
	}
	if last := back.Path[len(back.Path)-1]; last != src {
		return nil, fmt.Errorf("sim: return %d->%d delivered at wrong node %d", dstName, srcName, last)
	}
	return &RoundtripTrace{Out: out, Back: back}, nil
}

// RoundtripFlight is the allocation-lean roundtrip used on the traffic
// engine's hot path: same forwarding and delivery validation as
// Roundtrip, but no per-hop paths are recorded. Each call allocates a
// fresh header; streams of roundtrips should use RoundtripFlightReusing.
func RoundtripFlight(p Plane, srcName, dstName int32, maxHops int) (out, back Flight, err error) {
	out, back, _, err = RoundtripFlightReusing(p, nil, srcName, dstName, maxHops)
	return out, back, err
}

// RoundtripFlightReusing is RoundtripFlight with the header-reuse
// contract: pass h == nil on a worker's first roundtrip and the returned
// header on every subsequent one, so the whole stream costs O(1) header
// allocations. The header must only be reused against the plane that
// created it.
func RoundtripFlightReusing(p Plane, h Header, srcName, dstName int32, maxHops int) (out, back Flight, hdr Header, err error) {
	if h == nil {
		if h, err = p.NewHeader(srcName, dstName); err != nil {
			return out, back, nil, fmt.Errorf("sim: header %d->%d: %w", srcName, dstName, err)
		}
	} else if err = p.ResetHeader(h, srcName, dstName); err != nil {
		return out, back, h, fmt.Errorf("sim: header %d->%d: %w", srcName, dstName, err)
	}
	g := p.Graph()
	src, dst := p.NodeOf(srcName), p.NodeOf(dstName)
	out, err = Fly(g, p, src, h, maxHops)
	if err != nil {
		return out, back, h, fmt.Errorf("sim: outbound %d->%d: %w", srcName, dstName, err)
	}
	if out.Last != dst {
		return out, back, h, fmt.Errorf("sim: outbound %d->%d delivered at wrong node %d", srcName, dstName, out.Last)
	}
	if err = p.BeginReturn(h); err != nil {
		return out, back, h, fmt.Errorf("sim: return header %d->%d: %w", srcName, dstName, err)
	}
	back, err = Fly(g, p, dst, h, maxHops)
	if err != nil {
		return out, back, h, fmt.Errorf("sim: return %d->%d: %w", dstName, srcName, err)
	}
	if back.Last != src {
		return out, back, h, fmt.Errorf("sim: return %d->%d delivered at wrong node %d", dstName, srcName, back.Last)
	}
	return out, back, h, nil
}

// RoundtripTrace aggregates the outbound and return legs of a roundtrip.
type RoundtripTrace struct {
	Out, Back *Trace
}

// Weight returns the total roundtrip weight.
func (rt *RoundtripTrace) Weight() graph.Dist { return rt.Out.Weight + rt.Back.Weight }

// Hops returns the total roundtrip hop count.
func (rt *RoundtripTrace) Hops() int { return rt.Out.Hops + rt.Back.Hops }

// MaxHeaderWords returns the peak header size over both legs.
func (rt *RoundtripTrace) MaxHeaderWords() int {
	if rt.Out.MaxHeaderWords > rt.Back.MaxHeaderWords {
		return rt.Out.MaxHeaderWords
	}
	return rt.Back.MaxHeaderWords
}
