// Package sim is the packet-level simulation fabric: it delivers packets
// by repeatedly invoking a scheme's local forwarding function and
// resolving the returned port over the graph — exactly the network's role
// in §1.1.1. The engine enforces the model's disciplines: forwarding sees
// only (node, header), port resolution is the fabric's job, hop budgets
// catch routing loops, and header growth is recorded so tests can assert
// the O(log^2 n)-bit bound.
package sim

import (
	"fmt"

	"rtroute/internal/graph"
)

// Header is the mutable packet header a scheme reads and rewrites at each
// node (TINN schemes require writable headers, §1.1.4).
type Header interface {
	// Words reports the current header size in machine words.
	Words() int
}

// Forwarder is a routing scheme's local forwarding function
// F(table(x), header(P)) of §1.1.1. Implementations must only consult
// the local table of the given node plus the header.
type Forwarder interface {
	Forward(at graph.NodeID, h Header) (port graph.PortID, delivered bool, err error)
}

// Trace records one packet's journey.
type Trace struct {
	Path           []graph.NodeID
	Weight         graph.Dist
	Hops           int
	MaxHeaderWords int
}

// Run injects a packet with header h at src and forwards it until the
// scheme reports delivery, the hop budget is exhausted, or forwarding
// fails. maxHops <= 0 selects the default budget of 4n hops.
func Run(g *graph.Graph, f Forwarder, src graph.NodeID, h Header, maxHops int) (*Trace, error) {
	if maxHops <= 0 {
		maxHops = 4 * g.N()
	}
	tr := &Trace{Path: []graph.NodeID{src}, MaxHeaderWords: h.Words()}
	cur := src
	for {
		port, delivered, err := f.Forward(cur, h)
		if w := h.Words(); w > tr.MaxHeaderWords {
			tr.MaxHeaderWords = w
		}
		if err != nil {
			return nil, fmt.Errorf("sim: forwarding at node %d (hop %d): %w", cur, tr.Hops, err)
		}
		if delivered {
			if cur != src || tr.Hops > 0 {
				// Mark the final node once; Path already ends at cur.
			}
			return tr, nil
		}
		e, ok := g.EdgeByPort(cur, port)
		if !ok {
			return nil, fmt.Errorf("sim: node %d has no out-port %d", cur, port)
		}
		tr.Weight += e.Weight
		cur = e.To
		tr.Path = append(tr.Path, cur)
		if tr.Hops++; tr.Hops > maxHops {
			return nil, fmt.Errorf("sim: hop budget %d exhausted (likely routing loop); path tail %v",
				maxHops, tail(tr.Path, 8))
		}
	}
}

func tail(p []graph.NodeID, k int) []graph.NodeID {
	if len(p) <= k {
		return p
	}
	return p[len(p)-k:]
}

// RoundtripTrace aggregates the outbound and return legs of a roundtrip.
type RoundtripTrace struct {
	Out, Back *Trace
}

// Weight returns the total roundtrip weight.
func (rt *RoundtripTrace) Weight() graph.Dist { return rt.Out.Weight + rt.Back.Weight }

// Hops returns the total roundtrip hop count.
func (rt *RoundtripTrace) Hops() int { return rt.Out.Hops + rt.Back.Hops }

// MaxHeaderWords returns the peak header size over both legs.
func (rt *RoundtripTrace) MaxHeaderWords() int {
	if rt.Out.MaxHeaderWords > rt.Back.MaxHeaderWords {
		return rt.Out.MaxHeaderWords
	}
	return rt.Back.MaxHeaderWords
}
