//go:build race

package sim

// raceEnabled skips allocation-count assertions under the race detector,
// whose instrumentation changes allocation behavior.
const raceEnabled = true
