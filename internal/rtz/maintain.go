package rtz

import (
	"fmt"
	"math/rand"

	"rtroute/internal/graph"
	"rtroute/internal/tree"
)

// Maintainer keeps a live stretch-3 scheme consistent with a mutating
// graph by delta-rebuilding exactly the state a batch of edge events can
// touch, instead of reconstructing the whole substrate. It retains the
// construction intermediates a from-scratch build throws away — the
// per-center double-trees (which also serve as per-center distance rows),
// the center radii r(v, A), and the per-destination cluster member lists —
// and guarantees that after Apply the scheme is identical, entry for
// entry, to what New would build on the mutated graph with the same
// centers.
//
// The dirty contract: Apply(dirty) is correct whenever dirty is a
// superset of the may-use affected sets of the events since the last
// Apply — every node x whose outgoing shortest-path distances could have
// changed (or gained/lost a tie) and every node y whose incoming ones
// could have. churn.Affected computes exactly that set from 8 Dijkstras
// per event. Per-scheme dirty derivation from that one node set:
//
//   - center trees: center w's out-tree can change only if d(w, ·)
//     changed somewhere (w in the source-affected set) and its in-tree
//     only if d(·, w) changed (w destination-affected) — so only trees of
//     centers IN dirty are rebuilt (full double-tree rebuild, giving
//     bit-identical DFS intervals to a fresh build);
//   - nearest centers and labels: r(v, w) for every (node, center) pair
//     is re-read from the maintained trees — pure arithmetic, no solver;
//   - clusters: C(y) = {x : r(x,y) < r(y,A)} can change only if y is
//     dirty (membership and parents both need a d(·,y) or radius change),
//     or if r(y,A) itself moved; those destinations are re-solved with
//     one reverse Dijkstra each, stale entries removed via the member
//     lists.
type Maintainer struct {
	s *Scheme
	m graph.DistanceOracle

	trees        []*tree.Tree
	centerRadius []graph.Dist
	members      [][]graph.NodeID
	scratch      *graph.SSSPScratch
}

// MaintainReport accounts one Apply: what the delta rebuild actually
// touched, for the churn experiments' delta-cost metrics.
type MaintainReport struct {
	// DirtyNodes is the size of the dirty set handed in — the nodes whose
	// per-node solver state was re-derived.
	DirtyNodes int
	// RebuiltTrees counts center double-trees rebuilt from scratch.
	RebuiltTrees int
	// RebuiltClusters counts destinations whose cluster was re-solved
	// (one reverse Dijkstra plus one oracle row each).
	RebuiltClusters int
	// ChangedLabels lists nodes whose address R3(v) changed — including
	// nodes outside the dirty set whose tree label was renumbered by a
	// center-tree rebuild. Their stored state is patched by value
	// (no solver work), and dictionary layers above must re-point their
	// copies.
	ChangedLabels []graph.NodeID
}

// NewMaintained builds the scheme exactly as New does (same rng
// consumption, same centers, same tables) but keeps the construction
// intermediates for incremental maintenance. The returned scheme's
// tables stay unsealed; routing behavior is identical.
func NewMaintained(g *graph.Graph, m graph.DistanceOracle, rng *rand.Rand, cfg Config) (*Maintainer, error) {
	mt := &Maintainer{members: make([][]graph.NodeID, g.N())}
	if _, err := build(g, m, rng, cfg, mt); err != nil {
		return nil, err
	}
	return mt, nil
}

// Scheme returns the maintained live scheme.
func (mt *Maintainer) Scheme() *Scheme { return mt.s }

// labelEqual compares two substrate addresses structurally (tree labels
// carry a light-hop slice, so == does not apply).
func labelEqual(a, b Label) bool {
	if a.Node != b.Node || a.CenterIdx != b.CenterIdx || a.Center != b.Center {
		return false
	}
	if a.TreeLabel.Tin != b.TreeLabel.Tin || len(a.TreeLabel.Light) != len(b.TreeLabel.Light) {
		return false
	}
	for i := range a.TreeLabel.Light {
		if a.TreeLabel.Light[i] != b.TreeLabel.Light[i] {
			return false
		}
	}
	return true
}

// Apply incorporates a batch of topology mutations whose may-use affected
// set is covered by dirty. The graph must already be mutated; dirty must
// list every node whose anchored distance rows may have changed (both
// directions). On return the scheme equals what New would build from
// scratch on the current graph.
func (mt *Maintainer) Apply(dirty []graph.NodeID) (MaintainReport, error) {
	s := mt.s
	g := s.g
	n := g.N()
	rep := MaintainReport{DirtyNodes: len(dirty)}
	inDirty := make([]bool, n)
	for _, v := range dirty {
		inDirty[v] = true
	}

	// 1. Rebuild the double-trees of dirty centers; patch every node's
	// per-center slots (cheap vector writes, identical to a fresh build's
	// fill loop).
	for ci, w := range s.Centers {
		if !inDirty[w] {
			continue
		}
		t, err := tree.BuildDouble(g, w, nil)
		if err != nil {
			return rep, fmt.Errorf("rtz: maintain center %d: %w", w, err)
		}
		mt.trees[ci] = t
		for v := 0; v < n; v++ {
			st, _ := t.State(graph.NodeID(v))
			s.Tables[v].TreeStates[ci] = st
			if graph.NodeID(v) != w {
				p, ok := t.InPort(graph.NodeID(v))
				if !ok {
					return rep, fmt.Errorf("rtz: node %d missing in-port toward center %d", v, w)
				}
				s.Tables[v].InPorts[ci] = p
			}
		}
		rep.RebuiltTrees++
	}

	// 2. Re-derive nearest centers, radii and labels for every node from
	// the maintained trees: r(v, w) = d(v,w) + d(w,v) is two map reads per
	// (node, center) pair, and the argmin replicates New's tie-break
	// exactly. Pure arithmetic — no per-node solver work.
	newRadius := make([]graph.Dist, n)
	for v := 0; v < n; v++ {
		best, bestIdx := graph.Inf, -1
		for ci, w := range s.Centers {
			df, _ := mt.trees[ci].DistFrom(graph.NodeID(v)) // d(w, v)
			dt, _ := mt.trees[ci].DistTo(graph.NodeID(v))   // d(v, w)
			r := dt + df
			if r < best || (r == best && bestIdx >= 0 && w < s.Centers[bestIdx]) {
				best, bestIdx = r, ci
			}
		}
		newRadius[v] = best
		lbl, _ := mt.trees[bestIdx].LabelOf(graph.NodeID(v))
		nl := Label{
			Node:      graph.NodeID(v),
			CenterIdx: int32(bestIdx),
			Center:    s.Centers[bestIdx],
			TreeLabel: lbl,
		}
		if !labelEqual(s.Labels[v], nl) {
			rep.ChangedLabels = append(rep.ChangedLabels, graph.NodeID(v))
			s.Labels[v] = nl
		}
	}

	// 3. Re-solve clusters for destinations that can have changed: dirty
	// nodes plus any destination whose center radius moved. Stale entries
	// come out via the member lists before the fresh ones go in.
	for y := 0; y < n; y++ {
		if !inDirty[y] && newRadius[y] == mt.centerRadius[y] {
			continue
		}
		yid := graph.NodeID(y)
		for _, x := range mt.members[y] {
			delete(s.Tables[x].Direct, yid)
		}
		rev := mt.scratch.DijkstraRev(g, yid)
		toY := rev.Dist
		fromY := mt.m.FromSource(yid)
		radius := newRadius[y]
		var members []graph.NodeID
		for x := 0; x < n; x++ {
			if x != y && graph.RFromRows(fromY, toY, graph.NodeID(x)) < radius {
				members = append(members, graph.NodeID(x))
			}
		}
		for _, x := range members {
			next := rev.Parent[x]
			port, ok := g.PortTo(x, next)
			if !ok {
				return rep, fmt.Errorf("rtz: missing edge (%d,%d) for direct entry", x, next)
			}
			s.Tables[x].Direct[yid] = port
		}
		mt.members[y] = members
		rep.RebuiltClusters++
	}
	mt.centerRadius = newRadius
	return rep, nil
}

// SchemesEquivalent certifies that two substrate schemes are
// route-identical entry for entry: same labels, same per-center routing
// state, same direct entries. Sealed and unsealed tables compare equal if
// their contents do. Centers are compared only when both schemes carry
// them (reassembled schemes do not).
func SchemesEquivalent(a, b *Scheme) error {
	if len(a.Tables) != len(b.Tables) || len(a.Labels) != len(b.Labels) {
		return fmt.Errorf("rtz: scheme sizes differ: %d/%d tables, %d/%d labels",
			len(a.Tables), len(b.Tables), len(a.Labels), len(b.Labels))
	}
	if len(a.Centers) > 0 && len(b.Centers) > 0 {
		if len(a.Centers) != len(b.Centers) {
			return fmt.Errorf("rtz: center counts differ: %d vs %d", len(a.Centers), len(b.Centers))
		}
		for i := range a.Centers {
			if a.Centers[i] != b.Centers[i] {
				return fmt.Errorf("rtz: center %d differs: %d vs %d", i, a.Centers[i], b.Centers[i])
			}
		}
	}
	for v := range a.Labels {
		if !labelEqual(a.Labels[v], b.Labels[v]) {
			return fmt.Errorf("rtz: label of node %d differs: %+v vs %+v", v, a.Labels[v], b.Labels[v])
		}
	}
	for v := range a.Tables {
		ta, tb := a.Tables[v], b.Tables[v]
		if ta.Self != tb.Self {
			return fmt.Errorf("rtz: table %d self mismatch: %d vs %d", v, ta.Self, tb.Self)
		}
		if len(ta.InPorts) != len(tb.InPorts) || len(ta.TreeStates) != len(tb.TreeStates) {
			return fmt.Errorf("rtz: table %d shape differs", v)
		}
		for ci := range ta.InPorts {
			if ta.InPorts[ci] != tb.InPorts[ci] {
				return fmt.Errorf("rtz: table %d in-port for center %d differs: %d vs %d",
					v, ci, ta.InPorts[ci], tb.InPorts[ci])
			}
			if ta.TreeStates[ci] != tb.TreeStates[ci] {
				return fmt.Errorf("rtz: table %d tree state for center %d differs: %+v vs %+v",
					v, ci, ta.TreeStates[ci], tb.TreeStates[ci])
			}
		}
		if ta.DirectCount() != tb.DirectCount() {
			return fmt.Errorf("rtz: table %d direct count differs: %d vs %d",
				v, ta.DirectCount(), tb.DirectCount())
		}
		var mismatch error
		ta.DirectEntries(func(dst graph.NodeID, port graph.PortID) {
			if mismatch != nil {
				return
			}
			p, ok := tb.DirectPort(dst)
			if !ok || p != port {
				mismatch = fmt.Errorf("rtz: table %d direct entry for %d differs", v, dst)
			}
		})
		if mismatch != nil {
			return mismatch
		}
	}
	return nil
}
