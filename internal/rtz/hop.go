package rtz

import (
	"fmt"
	"math/rand"

	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/tree"
)

// Handshake is R2(u,v) (§3.3): the name of the most convenient double
// tree for routing between u and v, together with the topology-dependent
// tree addresses of both endpoints. It is valid only at u and v (and
// inside the tree), not globally — exactly the limitation §3.3 notes.
type Handshake struct {
	Ref    cover.TreeRef
	ULabel tree.Label
	VLabel tree.Label
}

// Words returns the handshake size in machine words (o(log^2 n) bits).
func (hs Handshake) Words() int { return 2 + hs.ULabel.Words() + hs.VLabel.Words() }

// HopEntry is a node's O(1) state for one double-tree it belongs to.
type HopEntry struct {
	State  tree.State
	InPort graph.PortID
	IsRoot bool
}

// HopTable is the node-local storage of the hop substrate: one entry per
// double-tree containing the node, across all levels of the hierarchy.
type HopTable struct {
	Self  graph.NodeID
	Trees map[cover.TreeRef]HopEntry
}

// Words returns the table size in machine words.
func (t *HopTable) Words() int { return 1 + 9*len(t.Trees) }

// HopHeader is the packet state for one Hop(u,v) leg.
type HopHeader struct {
	Ref        cover.TreeRef
	Target     tree.Label
	Descending bool
}

// Words returns the header size in machine words.
func (h HopHeader) Words() int { return 3 + h.Target.Words() }

// HopScheme is the Lemma 5 substrate: double-tree covers at geometric
// scales with root-relayed routing inside a named tree.
type HopScheme struct {
	Hierarchy *cover.Hierarchy
	Tables    []*HopTable

	g *graph.Graph
}

// NewHop builds the hop substrate with the given cover parameter k, scale
// base, and cover variant. m may be any distance oracle.
func NewHop(g *graph.Graph, m graph.DistanceOracle, k int, base float64, variant cover.Variant) (*HopScheme, error) {
	h, err := cover.BuildHierarchy(g, m, k, base, variant)
	if err != nil {
		return nil, err
	}
	return NewHopFromHierarchy(g, h)
}

// NewHopFromHierarchy wraps an existing hierarchy (letting callers share
// one hierarchy across substrates).
func NewHopFromHierarchy(g *graph.Graph, h *cover.Hierarchy) (*HopScheme, error) {
	if h.N() != g.N() {
		return nil, fmt.Errorf("rtz: hierarchy over %d nodes cannot serve a %d-node graph", h.N(), g.N())
	}
	s := &HopScheme{Hierarchy: h, g: g, Tables: make([]*HopTable, g.N())}
	for v := 0; v < g.N(); v++ {
		tab := &HopTable{Self: graph.NodeID(v), Trees: make(map[cover.TreeRef]HopEntry)}
		for _, ref := range h.Memberships(graph.NodeID(v)) {
			t := h.Tree(ref)
			st, ok := t.State(graph.NodeID(v))
			if !ok {
				return nil, fmt.Errorf("rtz: membership %v lacks state for %d", ref, v)
			}
			e := HopEntry{State: st, IsRoot: t.Root == graph.NodeID(v)}
			if !e.IsRoot {
				p, ok := t.InPort(graph.NodeID(v))
				if !ok {
					return nil, fmt.Errorf("rtz: membership %v lacks in-port for %d", ref, v)
				}
				e.InPort = p
			}
			tab.Trees[ref] = e
		}
		s.Tables[v] = tab
	}
	return s, nil
}

// Graph returns the network the substrate was built over.
func (s *HopScheme) Graph() *graph.Graph { return s.g }

// R2 returns the handshake for the pair (u,v) plus the roundtrip cost
// bound through the tree root.
func (s *HopScheme) R2(u, v graph.NodeID) (Handshake, graph.Dist, error) {
	ref, cost, ok := s.Hierarchy.BestTree(u, v)
	if !ok {
		return Handshake{}, 0, fmt.Errorf("rtz: no shared double-tree for (%d,%d)", u, v)
	}
	t := s.Hierarchy.Tree(ref)
	ul, ok1 := t.LabelOf(u)
	vl, ok2 := t.LabelOf(v)
	if !ok1 || !ok2 {
		return Handshake{}, 0, fmt.Errorf("rtz: tree %v missing labels for (%d,%d)", ref, u, v)
	}
	return Handshake{Ref: ref, ULabel: ul, VLabel: vl}, cost, nil
}

// ForwardHop is the local forwarding function for a hop leg: climb the
// named tree's in-tree to the root, then descend the out-tree to the
// target label. Deliver as soon as the local state matches the target.
func ForwardHop(tab *HopTable, h *HopHeader) (port graph.PortID, delivered bool, err error) {
	e, ok := tab.Trees[h.Ref]
	if !ok {
		return 0, false, fmt.Errorf("rtz: node %d is outside tree %v", tab.Self, h.Ref)
	}
	if e.State.Tin == h.Target.Tin {
		return 0, true, nil
	}
	if !h.Descending {
		if e.IsRoot {
			h.Descending = true
		} else {
			return e.InPort, false, nil
		}
	}
	p, done, err := tree.NextPort(e.State, h.Target)
	if err != nil {
		return 0, false, fmt.Errorf("rtz: hop descent at %d: %w", tab.Self, err)
	}
	if done {
		return 0, true, nil
	}
	return p, false, nil
}

// RouteHop simulates one leg of Hop routing from src to the given target
// label within the handshake's tree, returning path weight and hops.
func (s *HopScheme) RouteHop(src graph.NodeID, ref cover.TreeRef, target tree.Label) (graph.Dist, int, error) {
	h := &HopHeader{Ref: ref, Target: target}
	cur := src
	var weight graph.Dist
	hops := 0
	maxHops := 4 * s.g.N()
	for {
		port, delivered, err := ForwardHop(s.Tables[cur], h)
		if err != nil {
			return 0, 0, err
		}
		if delivered {
			return weight, hops, nil
		}
		e, ok := s.g.EdgeByPort(cur, port)
		if !ok {
			return 0, 0, fmt.Errorf("rtz: node %d has no port %d", cur, port)
		}
		weight += e.Weight
		cur = e.To
		if hops++; hops > maxHops {
			return 0, 0, fmt.Errorf("rtz: hop route exceeded %d hops", maxHops)
		}
	}
}

// HopRoundtrip simulates the full Hop(u,v) roundtrip u -> v -> u through
// the handshake tree, the unit of cost in §3's analysis.
func (s *HopScheme) HopRoundtrip(u, v graph.NodeID) (graph.Dist, error) {
	hs, _, err := s.R2(u, v)
	if err != nil {
		return 0, err
	}
	out, _, err := s.RouteHop(u, hs.Ref, hs.VLabel)
	if err != nil {
		return 0, err
	}
	back, _, err := s.RouteHop(v, hs.Ref, hs.ULabel)
	if err != nil {
		return 0, err
	}
	return out + back, nil
}

// MaxTableWords returns the largest node table in words.
func (s *HopScheme) MaxTableWords() int {
	m := 0
	for _, t := range s.Tables {
		if w := t.Words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords returns the mean node table size in words.
func (s *HopScheme) AvgTableWords() float64 {
	total := 0
	for _, t := range s.Tables {
		total += t.Words()
	}
	return float64(total) / float64(len(s.Tables))
}

// RandomCenters is a helper for tests wanting reproducible center sets.
func RandomCenters(n, count int, rng *rand.Rand) []graph.NodeID {
	perm := rng.Perm(n)
	if count > n {
		count = n
	}
	out := make([]graph.NodeID, count)
	for i := range out {
		out[i] = graph.NodeID(perm[i])
	}
	return out
}
