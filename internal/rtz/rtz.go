// Package rtz implements the name-dependent (topology-dependent) roundtrip
// routing substrates the paper imports from Roditty, Thorup and Zwick
// ("Roundtrip spanners and roundtrip routing in directed graphs", SODA'02):
//
//   - Scheme: the O~(sqrt n)-space stretch-3 roundtrip scheme of Lemma 2,
//     with topology-dependent addresses R3(v) and the one-way guarantee
//     p(u,v) <= r(u,v) + d(u,v) used throughout §2's analysis.
//
//   - HopScheme: the double-tree-cover scheme behind Lemma 5, exposing the
//     R2(u,v) "handshake" labels and Hop(u,v) routes the §3 scheme stores
//     in its distributed dictionary. Built on the paper's own Theorem 13
//     covers (per §4.4 this improves RTZ's roundtrip stretch to 4k-2+eps).
//
// Construction of Scheme, following Thorup–Zwick style sampling adapted to
// the roundtrip metric:
//
//   - Sample a center set A (about sqrt(n ln n) nodes). For each center w,
//     build a full double-tree: every node stores its next-hop port toward
//     w (in-tree) and O(1) tree-routing state for w's out-tree.
//   - a(v) = the center nearest to v in roundtrip distance; the address
//     R3(v) = (v, a(v), v's label in a(v)'s out-tree).
//   - Every node x with r(x,y) < r(y,A) stores a direct entry for y: the
//     first-hop port of a shortest x->y path. Crucially this cluster
//     C(y) = {x : r(x,y) < r(y,A)} is defined by the DESTINATION's
//     center-radius, which makes it closed under shortest-path subpaths
//     (if x' is on a shortest x->y path then r(x',y) <= r(x,y) < r(y,A)),
//     so a direct route never strands a packet at a node without an entry.
//
// Routing x->y with R3(y): deliver if x = y; follow the direct entry if
// present; otherwise climb the in-tree of a(y) and descend a(y)'s
// out-tree using y's tree label. One-way cost: d(x,y) when direct, else
// d(x,a(y)) + d(a(y),y) <= d(x,y) + r(y,A) <= d(x,y) + r(x,y) since
// x outside C(y) means r(y,A) <= r(x,y). A roundtrip that carries R3(s)
// back therefore costs at most r(s,t) + 2*r(s,t) = 3*r(s,t): stretch 3.
package rtz

import (
	"fmt"
	"math"
	"math/rand"

	"rtroute/internal/graph"
	"rtroute/internal/sealed"
	"rtroute/internal/tree"
)

// Label is the topology-dependent address R3(v): o(log^2 n) bits.
type Label struct {
	Node      graph.NodeID // v itself (topological index)
	CenterIdx int32        // index of a(v) in the scheme's center list
	Center    graph.NodeID // a(v)
	TreeLabel tree.Label   // v's address in a(v)'s out-tree
}

// Words returns the label size in machine words for header accounting.
func (l Label) Words() int { return 3 + l.TreeLabel.Words() }

// Phase tracks the progress of a one-way route in the packet header.
type Phase int8

const (
	// PhaseSeek means the packet is climbing toward the destination's
	// center (or following direct entries when it meets them).
	PhaseSeek Phase = iota
	// PhaseDescend means the packet is inside the center's out-tree.
	PhaseDescend
	// PhaseDirect means the packet is on a stored shortest path to the
	// destination; it never leaves this phase.
	PhaseDirect
)

// Header is the mutable routing state carried by a one-way packet.
type Header struct {
	Dest  graph.NodeID
	Label Label
	Phase Phase
}

// Words returns the header size in machine words.
func (h Header) Words() int { return 2 + h.Label.Words() }

// Table is the node-local storage of the stretch-3 scheme. All slices are
// indexed by center index.
type Table struct {
	Self       graph.NodeID
	InPorts    []graph.PortID // next-hop port toward each center
	TreeStates []tree.State   // O(1) routing state in each center's out-tree
	// Direct maps destination -> first-hop port of a shortest path, for
	// every destination whose cluster contains this node. Builder state
	// only: Seal compiles it into the probe table the forwarding hot
	// path reads and then drops the map, so a long-lived serving plane
	// does not hold the cluster entries twice. Read entries through
	// DirectPort / DirectEntries, which serve sealed and unsealed
	// (hand-built) tables alike.
	Direct map[graph.NodeID]graph.PortID
	direct sealed.Table[graph.PortID]
}

// Words returns the table size in machine words (the O~(sqrt n) of §2.1).
func (t *Table) Words() int {
	n := len(t.Direct)
	if t.direct.Built() {
		n = t.direct.Len()
	}
	return 1 + len(t.InPorts) + 5*len(t.TreeStates) + 2*n
}

// Seal compiles the Direct map into the flat probe table and releases
// the builder map. New calls it on every table.
func (t *Table) Seal() {
	t.direct = sealed.Compile(t.Direct)
	t.Direct = nil
}

// DirectPort returns the stored first-hop port toward dst, if any.
func (t *Table) DirectPort(dst graph.NodeID) (graph.PortID, bool) {
	if !t.direct.Built() {
		p, ok := t.Direct[dst]
		return p, ok
	}
	return t.direct.Get(dst)
}

// DirectEntries calls fn for every stored direct entry, in unspecified
// order (the introspection hook the property tests use).
func (t *Table) DirectEntries(fn func(dst graph.NodeID, port graph.PortID)) {
	if t.direct.Built() {
		t.direct.Range(func(k int32, p graph.PortID) { fn(k, p) })
		return
	}
	for dst, p := range t.Direct {
		fn(dst, p)
	}
}

// DirectCount returns the number of stored direct entries.
func (t *Table) DirectCount() int {
	if t.direct.Built() {
		return t.direct.Len()
	}
	return len(t.Direct)
}

// Config tunes scheme construction.
type Config struct {
	// CenterCount overrides the default ceil(sqrt(n*ln n)) sample size.
	CenterCount int
}

// Scheme is the built stretch-3 name-dependent roundtrip routing scheme.
type Scheme struct {
	Centers []graph.NodeID
	Tables  []*Table
	Labels  []Label

	g *graph.Graph
}

// New builds the scheme over g with distance oracle m. Construction is
// row-oriented: every oracle access is anchored at one node at a time, so
// a bounded lazy oracle serves it without materializing n^2 distances.
func New(g *graph.Graph, m graph.DistanceOracle, rng *rand.Rand, cfg Config) (*Scheme, error) {
	s, err := build(g, m, rng, cfg, nil)
	if err != nil {
		return nil, err
	}
	for _, t := range s.Tables {
		t.Seal()
	}
	return s, nil
}

// build is the shared construction body. When retain is non-nil it is a
// maintained build: the per-center trees, center radii and cluster member
// lists are kept for incremental updates, and the tables stay unsealed so
// the maintainer can patch Direct entries in place. Either way the routing
// content produced is identical.
func build(g *graph.Graph, m graph.DistanceOracle, rng *rand.Rand, cfg Config, retain *Maintainer) (*Scheme, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("rtz: need at least 2 nodes, got %d", n)
	}
	count := cfg.CenterCount
	if count <= 0 {
		count = int(math.Ceil(math.Sqrt(float64(n) * math.Max(1, math.Log(float64(n))))))
	}
	if count > n {
		count = n
	}

	perm := rng.Perm(n)
	centers := make([]graph.NodeID, count)
	for i := 0; i < count; i++ {
		centers[i] = graph.NodeID(perm[i])
	}

	s := &Scheme{Centers: centers, g: g, Tables: make([]*Table, n), Labels: make([]Label, n)}
	for v := 0; v < n; v++ {
		s.Tables[v] = &Table{
			Self:       graph.NodeID(v),
			InPorts:    make([]graph.PortID, count),
			TreeStates: make([]tree.State, count),
			Direct:     make(map[graph.NodeID]graph.PortID),
		}
	}

	// Full double-tree per center.
	trees := make([]*tree.Tree, count)
	for ci, w := range centers {
		t, err := tree.BuildDouble(g, w, nil)
		if err != nil {
			return nil, fmt.Errorf("rtz: center %d: %w", w, err)
		}
		trees[ci] = t
		for v := 0; v < n; v++ {
			st, _ := t.State(graph.NodeID(v))
			s.Tables[v].TreeStates[ci] = st
			if graph.NodeID(v) != w {
				p, ok := t.InPort(graph.NodeID(v))
				if !ok {
					return nil, fmt.Errorf("rtz: node %d missing in-port toward center %d", v, w)
				}
				s.Tables[v].InPorts[ci] = p
			}
		}
	}

	// Nearest centers and labels. r(v, w) = d(v,w) + d(w,v) comes from the
	// two rows anchored at v, fetched once per node.
	centerRadius := make([]graph.Dist, n) // r(v, A)
	for v := 0; v < n; v++ {
		fwd := m.FromSource(graph.NodeID(v)) // d(v, ·)
		rev := m.ToSink(graph.NodeID(v))     // d(·, v)
		best, bestIdx := graph.Inf, -1
		for ci, w := range centers {
			r := graph.RFromRows(fwd, rev, w)
			if r < best || (r == best && bestIdx >= 0 && w < centers[bestIdx]) {
				best, bestIdx = r, ci
			}
		}
		centerRadius[v] = best
		lbl, _ := trees[bestIdx].LabelOf(graph.NodeID(v))
		s.Labels[v] = Label{
			Node:      graph.NodeID(v),
			CenterIdx: int32(bestIdx),
			Center:    centers[bestIdx],
			TreeLabel: lbl,
		}
	}

	// Cluster (direct) entries: for each destination y, every x with
	// r(x,y) < r(y,A) stores the first hop of a shortest x->y path.
	// Each oracle shape gets its cheapest plan: on the dense matrix,
	// membership comes from resident rows and the reverse Dijkstra (for
	// the shortest-path parents) runs only for destinations with a
	// non-empty cluster; on any other oracle one reverse Dijkstra per
	// destination supplies both the d(·,y) distances and the parents, so
	// a lazy build pays exactly one reverse SSSP per destination.
	dense, isDense := m.(*graph.DenseMetric)
	// One scratch serves every per-destination reverse Dijkstra below;
	// its rows are consumed within the iteration that computed them.
	scratch := graph.NewSSSPScratch(n)
	for y := 0; y < n; y++ {
		radius := centerRadius[y]
		yid := graph.NodeID(y)
		var (
			toY     []graph.Dist // d(·, y)
			rev     graph.SSSP
			haveRev bool
		)
		if isDense {
			toY = dense.ToSink(yid)
		} else {
			rev = scratch.DijkstraRev(g, yid)
			toY = rev.Dist
			haveRev = true
		}
		fromY := m.FromSource(yid) // d(y, ·)
		var members []graph.NodeID
		for x := 0; x < n; x++ {
			if x != y && graph.RFromRows(fromY, toY, graph.NodeID(x)) < radius {
				members = append(members, graph.NodeID(x))
			}
		}
		if len(members) > 0 {
			if !haveRev {
				rev = scratch.DijkstraRev(g, yid)
			}
			for _, x := range members {
				next := rev.Parent[x]
				port, ok := g.PortTo(x, next)
				if !ok {
					return nil, fmt.Errorf("rtz: missing edge (%d,%d) for direct entry", x, next)
				}
				s.Tables[x].Direct[graph.NodeID(y)] = port
			}
		}
		if retain != nil {
			retain.members[y] = members
		}
	}
	if retain != nil {
		retain.s = s
		retain.m = m
		retain.trees = trees
		retain.centerRadius = centerRadius
		retain.scratch = scratch
	}
	return s, nil
}

// AssembleScheme rebuilds a substrate from per-node state alone — the
// deployment/wire reassembly path. Tables and labels must be indexed by
// node; Centers is left empty (it is construction bookkeeping, not
// routing state).
func AssembleScheme(g *graph.Graph, tables []*Table, labels []Label) (*Scheme, error) {
	if len(tables) != g.N() || len(labels) != g.N() {
		return nil, fmt.Errorf("rtz: assembling over %d nodes needs %d tables and labels, got %d/%d",
			g.N(), g.N(), len(tables), len(labels))
	}
	return &Scheme{Tables: tables, Labels: labels, g: g}, nil
}

// LabelOf returns R3(v).
func (s *Scheme) LabelOf(v graph.NodeID) Label { return s.Labels[v] }

// Graph returns the network the scheme was built over (read-only for
// forwarding; plane compilation needs it to resolve ports).
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Forward is the local forwarding function: given only the node's table
// and the packet header it returns the outgoing port (mutating the
// header's phase), or delivered = true. It never consults global state.
func Forward(tab *Table, h *Header) (port graph.PortID, delivered bool, err error) {
	if tab.Self == h.Dest {
		return 0, true, nil
	}
	// A direct entry is always safe and optimal from here on: the cluster
	// is closed under shortest-path subpaths.
	if h.Phase == PhaseDirect {
		p, ok := tab.DirectPort(h.Dest)
		if !ok {
			return 0, false, fmt.Errorf("rtz: direct-phase packet for %d at %d with no entry (cluster closure violated)", h.Dest, tab.Self)
		}
		return p, false, nil
	}
	if p, ok := tab.DirectPort(h.Dest); ok {
		h.Phase = PhaseDirect
		return p, false, nil
	}
	if h.Phase == PhaseSeek {
		if tab.Self == h.Label.Center {
			h.Phase = PhaseDescend
		} else {
			return tab.InPorts[h.Label.CenterIdx], false, nil
		}
	}
	// Descend the center's out-tree toward the destination.
	st := tab.TreeStates[h.Label.CenterIdx]
	p, done, err := tree.NextPort(st, h.Label.TreeLabel)
	if err != nil {
		return 0, false, fmt.Errorf("rtz: descent at %d toward %d: %w", tab.Self, h.Dest, err)
	}
	if done {
		// The tree label addresses this node, so it must be the
		// destination — guarded above, defensive here.
		return 0, true, nil
	}
	return p, false, nil
}

// Route simulates the one-way route from src to the node addressed by
// lbl, returning the path weight and hop count. It drives Forward with
// node-local tables only; the graph is used solely to resolve ports, as
// the network fabric would.
func (s *Scheme) Route(src graph.NodeID, lbl Label) (graph.Dist, int, error) {
	h := &Header{Dest: lbl.Node, Label: lbl, Phase: PhaseSeek}
	cur := src
	var weight graph.Dist
	hops := 0
	maxHops := 4 * s.g.N()
	for {
		port, delivered, err := Forward(s.Tables[cur], h)
		if err != nil {
			return 0, 0, err
		}
		if delivered {
			return weight, hops, nil
		}
		e, ok := s.g.EdgeByPort(cur, port)
		if !ok {
			return 0, 0, fmt.Errorf("rtz: node %d has no port %d", cur, port)
		}
		weight += e.Weight
		cur = e.To
		if hops++; hops > maxHops {
			return 0, 0, fmt.Errorf("rtz: route %d->%d exceeded %d hops", src, lbl.Node, maxHops)
		}
	}
}

// Roundtrip simulates src -> dst -> src, carrying R3(src) on the forward
// leg as the paper's return-trip headers do. Returns total weight.
func (s *Scheme) Roundtrip(src, dst graph.NodeID) (graph.Dist, error) {
	out, _, err := s.Route(src, s.Labels[dst])
	if err != nil {
		return 0, err
	}
	back, _, err := s.Route(dst, s.Labels[src])
	if err != nil {
		return 0, err
	}
	return out + back, nil
}

// MaxTableWords returns the largest node table in words.
func (s *Scheme) MaxTableWords() int {
	m := 0
	for _, t := range s.Tables {
		if w := t.Words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords returns the mean node table size in words.
func (s *Scheme) AvgTableWords() float64 {
	total := 0
	for _, t := range s.Tables {
		total += t.Words()
	}
	return float64(total) / float64(len(s.Tables))
}
