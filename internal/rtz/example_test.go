package rtz_test

import (
	"fmt"
	"math/rand"

	"rtroute/internal/graph"
	"rtroute/internal/rtz"
)

// Example builds the name-dependent Roditty–Thorup–Zwick stretch-3
// substrate over a small digraph and checks one routed roundtrip
// against the bound: routed weight at most 3 times the optimal
// roundtrip distance.
func Example() {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomSC(32, 128, 8, rng)
	m := graph.AllPairs(g)

	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	routed, err := sub.Roundtrip(2, 19)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stretch within 3:", float64(routed) <= 3*float64(m.R(2, 19)))
	// Output:
	// stretch within 3: true
}
