package rtz

import (
	"math/rand"
	"strings"
	"testing"

	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/tree"
)

func TestForwardDirectPhaseClosureViolation(t *testing.T) {
	// A header claiming PhaseDirect at a node without a direct entry is
	// a protocol violation the forwarder must name explicitly.
	s, _, _ := buildScheme(t, 50, 20, 60, 4)
	var victim graph.NodeID = -1
	var target graph.NodeID
	for v := 0; v < 20 && victim < 0; v++ {
		for y := 0; y < 20; y++ {
			if v == y {
				continue
			}
			if _, ok := s.Tables[v].DirectPort(graph.NodeID(y)); !ok {
				victim, target = graph.NodeID(v), graph.NodeID(y)
				break
			}
		}
	}
	if victim < 0 {
		t.Skip("every node stores every destination directly (tiny graph)")
	}
	h := &Header{Dest: target, Label: s.LabelOf(target), Phase: PhaseDirect}
	_, _, err := Forward(s.Tables[victim], h)
	if err == nil || !strings.Contains(err.Error(), "closure") {
		t.Fatalf("closure violation not diagnosed: %v", err)
	}
}

func TestHopRoundtripSelf(t *testing.T) {
	s, _, _ := buildHop(t, 51, 16, 48, 2, 2)
	w, err := s.HopRoundtrip(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 {
		t.Fatalf("self hop roundtrip weight %d, want 0", w)
	}
}

func TestRouteHopFromOutsideTree(t *testing.T) {
	s, g, _ := buildHop(t, 52, 20, 60, 2, 2)
	// Find a level-0 tree and a node outside it.
	lvl := s.Hierarchy.Levels[0]
	for ti, tr := range lvl.Trees {
		if len(tr.Members) == g.N() {
			continue
		}
		outside := graph.NodeID(-1)
		for v := 0; v < g.N(); v++ {
			if !tr.Contains(graph.NodeID(v)) {
				outside = graph.NodeID(v)
				break
			}
		}
		if outside < 0 {
			continue
		}
		lbl, _ := tr.LabelOf(tr.Root)
		ref := cover.TreeRef{Level: 0, Index: int32(ti)}
		if _, _, err := s.RouteHop(outside, ref, lbl); err == nil {
			t.Fatal("routing from outside the tree did not fail")
		}
		return
	}
	t.Skip("all level-0 trees span V on this instance")
}

func TestSchemeLabelsAreConsistent(t *testing.T) {
	// Every label's center must be the roundtrip-nearest center, and its
	// tree label must address the node in that center's out-tree.
	s, g, m := buildScheme(t, 53, 30, 120, 5)
	for v := 0; v < g.N(); v++ {
		lbl := s.LabelOf(graph.NodeID(v))
		if lbl.Node != graph.NodeID(v) {
			t.Fatalf("label of %d names node %d", v, lbl.Node)
		}
		best := graph.Inf
		for _, w := range s.Centers {
			if r := m.R(graph.NodeID(v), w); r < best {
				best = r
			}
		}
		if got := m.R(graph.NodeID(v), lbl.Center); got != best {
			t.Fatalf("label center of %d at roundtrip %d; nearest is %d", v, got, best)
		}
	}
}

func TestHopSchemeRejectsForeignHierarchy(t *testing.T) {
	// NewHopFromHierarchy over a mismatched graph must fail when tree
	// state is missing, not build silently.
	rng := rand.New(rand.NewSource(54))
	gSmall := graph.RandomSC(10, 30, 3, rng)
	mSmall := graph.AllPairs(gSmall)
	h, err := cover.BuildHierarchy(gSmall, mSmall, 2, 2, cover.VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	gBig := graph.RandomSC(20, 60, 3, rng)
	if _, err := NewHopFromHierarchy(gBig, h); err == nil {
		t.Fatal("foreign hierarchy accepted for a larger graph")
	}
}

func TestHandshakeWords(t *testing.T) {
	hs := Handshake{
		ULabel: tree.Label{Tin: 1, Light: []tree.LightHop{{BranchTin: 0, Port: 2}}},
		VLabel: tree.Label{Tin: 5},
	}
	// 2 (ref) + (1+2) + 1 = 6 words.
	if got := hs.Words(); got != 6 {
		t.Fatalf("Handshake.Words() = %d, want 6", got)
	}
}

func TestHeaderWordsAccounting(t *testing.T) {
	s, _, _ := buildScheme(t, 55, 16, 48, 3)
	lbl := s.LabelOf(5)
	h := Header{Dest: 5, Label: lbl}
	if h.Words() != 2+lbl.Words() {
		t.Fatalf("Header.Words() = %d, want %d", h.Words(), 2+lbl.Words())
	}
}
