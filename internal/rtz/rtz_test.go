package rtz

import (
	"math/rand"
	"testing"

	"rtroute/internal/cover"
	"rtroute/internal/graph"
)

func buildScheme(t testing.TB, seed int64, n, extra int, maxW graph.Dist) (*Scheme, *graph.Graph, *graph.Metric) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, extra, maxW, rng)
	m := graph.AllPairs(g)
	s, err := New(g, m, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, g, m
}

// TestLemma2OneWayGuarantee verifies the exact contract of Lemma 2 the
// §2 scheme depends on: the one-way path from u to the node addressed by
// R3(v) satisfies p(u,v) <= r(u,v) + d(u,v), for ALL pairs.
func TestLemma2OneWayGuarantee(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		s, g, m := buildScheme(t, seed, 48, 192, 8)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				w, _, err := s.Route(graph.NodeID(u), s.LabelOf(graph.NodeID(v)))
				if err != nil {
					t.Fatalf("seed %d route %d->%d: %v", seed, u, v, err)
				}
				bound := m.R(graph.NodeID(u), graph.NodeID(v)) + m.D(graph.NodeID(u), graph.NodeID(v))
				if w > bound {
					t.Fatalf("seed %d: p(%d,%d) = %d > r+d = %d", seed, u, v, w, bound)
				}
				if w < m.D(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("seed %d: p(%d,%d) = %d below shortest distance %d (accounting bug)",
						seed, u, v, w, m.D(graph.NodeID(u), graph.NodeID(v)))
				}
			}
		}
	}
}

// TestLemma2RoundtripStretch3 verifies roundtrip stretch 3 for all pairs.
func TestLemma2RoundtripStretch3(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		s, g, m := buildScheme(t, seed, 40, 160, 10)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				w, err := s.Roundtrip(graph.NodeID(u), graph.NodeID(v))
				if err != nil {
					t.Fatal(err)
				}
				r := m.R(graph.NodeID(u), graph.NodeID(v))
				if w > 3*r {
					t.Fatalf("seed %d: roundtrip(%d,%d) = %d > 3r = %d", seed, u, v, w, 3*r)
				}
				if w < r {
					t.Fatalf("seed %d: roundtrip(%d,%d) = %d below optimum %d", seed, u, v, w, r)
				}
			}
		}
	}
}

func TestRouteToSelf(t *testing.T) {
	s, _, _ := buildScheme(t, 6, 20, 60, 5)
	w, hops, err := s.Route(7, s.LabelOf(7))
	if err != nil || w != 0 || hops != 0 {
		t.Fatalf("self route: w=%d hops=%d err=%v; want 0,0,nil", w, hops, err)
	}
}

func TestDirectEntriesClusterClosure(t *testing.T) {
	// For every direct entry (x -> y), following the stored port must
	// reach a node that also has a direct entry for y (or y itself) —
	// the subpath-closure argument made in the package doc.
	s, g, _ := buildScheme(t, 7, 40, 160, 6)
	for x := 0; x < g.N(); x++ {
		s.Tables[x].DirectEntries(func(y graph.NodeID, port graph.PortID) {
			e, ok := g.EdgeByPort(graph.NodeID(x), port)
			if !ok {
				t.Fatalf("direct entry (%d,%d) names missing port %d", x, y, port)
			}
			if e.To == y {
				return
			}
			if _, ok := s.Tables[e.To].DirectPort(y); !ok {
				t.Fatalf("cluster closure violated: %d->%d hops to %d which lacks an entry", x, y, e.To)
			}
		})
	}
}

func TestDirectEntriesAreShortestFirstHops(t *testing.T) {
	s, g, m := buildScheme(t, 8, 36, 144, 7)
	for x := 0; x < g.N(); x++ {
		s.Tables[x].DirectEntries(func(y graph.NodeID, port graph.PortID) {
			e, _ := g.EdgeByPort(graph.NodeID(x), port)
			want := m.D(graph.NodeID(x), y)
			if e.Weight+m.D(e.To, y) != want {
				t.Fatalf("direct entry (%d,%d) not on a shortest path: %d + %d != %d",
					x, y, e.Weight, m.D(e.To, y), want)
			}
		})
	}
}

func TestHeaderAndLabelSizes(t *testing.T) {
	s, g, _ := buildScheme(t, 9, 256, 1024, 9)
	// O(log^2 n) bits: in words, labels are 3 + O(log n).
	maxWords := 0
	for v := 0; v < g.N(); v++ {
		if w := s.LabelOf(graph.NodeID(v)).Words(); w > maxWords {
			maxWords = w
		}
	}
	// log2(256) = 8 light hops max -> label at most 3 + 1 + 16 = 20 words.
	if maxWords > 20 {
		t.Fatalf("max label words = %d, exceeds O(log n) expectation", maxWords)
	}
}

func TestTableGrowthIsSublinear(t *testing.T) {
	// Average table words should grow roughly like sqrt(n) * polylog —
	// far slower than n. Compare n=64 vs n=256: the ratio of average
	// table sizes must be well below the 4x growth of n itself.
	s64, _, _ := buildScheme(t, 10, 64, 256, 5)
	s256, _, _ := buildScheme(t, 11, 256, 1024, 5)
	ratio := s256.AvgTableWords() / s64.AvgTableWords()
	if ratio > 3.5 {
		t.Fatalf("table growth ratio %0.2f for 4x nodes suggests super-sqrt growth", ratio)
	}
}

func TestCustomCenterCount(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.RandomSC(30, 120, 5, rng)
	m := graph.AllPairs(g)
	s, err := New(g, m, rng, Config{CenterCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Centers) != 5 {
		t.Fatalf("got %d centers, want 5", len(s.Centers))
	}
	// Still correct (possibly worse stretch... no: stretch-3 analysis
	// holds for ANY center set; fewer centers only grow tables).
	for u := 0; u < g.N(); u += 5 {
		for v := 0; v < g.N(); v += 3 {
			if u == v {
				continue
			}
			w, err := s.Roundtrip(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if r := m.R(graph.NodeID(u), graph.NodeID(v)); w > 3*r {
				t.Fatalf("few-centers roundtrip(%d,%d) = %d > 3r = %d", u, v, w, 3*r)
			}
		}
	}
}

func TestSchemeOnRing(t *testing.T) {
	// Rings are the adversarial case for roundtrip routing: every
	// roundtrip costs n. Stretch 3 must still hold.
	rng := rand.New(rand.NewSource(13))
	g := graph.Ring(16, rng)
	m := graph.AllPairs(g)
	s, err := New(g, m, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			w, err := s.Roundtrip(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if w > 3*16 {
				t.Fatalf("ring roundtrip(%d,%d) = %d > 48", u, v, w)
			}
		}
	}
}

func TestNewRejectsTrivialGraph(t *testing.T) {
	g := graph.New(1)
	m := graph.AllPairs(g)
	if _, err := New(g, m, rand.New(rand.NewSource(1)), Config{}); err == nil {
		t.Fatal("expected error for single-node graph")
	}
}

// --- Hop substrate tests (Lemma 5 role) ---

func buildHop(t testing.TB, seed int64, n, extra, k int, base float64) (*HopScheme, *graph.Graph, *graph.Metric) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, extra, 6, rng)
	m := graph.AllPairs(g)
	s, err := NewHop(g, m, k, base, cover.VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	return s, g, m
}

func TestHopRoundtripDeliversWithinBound(t *testing.T) {
	k := 2
	s, g, m := buildHop(t, 14, 36, 144, k, 2)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			w, err := s.HopRoundtrip(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			r := m.R(graph.NodeID(u), graph.NodeID(v))
			// Bound: 2*(2k-1)*scale where scale <= 2*max(r,2)
			// (geometric base-2 ladder starting at 2).
			scale := graph.Dist(2)
			for scale < r {
				scale *= 2
			}
			bound := 2 * graph.Dist(2*k-1) * scale
			if w > bound {
				t.Fatalf("hop roundtrip(%d,%d) = %d > bound %d (r=%d)", u, v, w, bound, r)
			}
			if w < r {
				t.Fatalf("hop roundtrip(%d,%d) = %d below optimum %d", u, v, w, r)
			}
		}
	}
}

func TestHopCostMatchesPrediction(t *testing.T) {
	s, g, _ := buildHop(t, 15, 30, 90, 2, 2)
	for u := 0; u < g.N(); u += 3 {
		for v := 0; v < g.N(); v += 2 {
			if u == v {
				continue
			}
			hs, cost, err := s.R2(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := s.RouteHop(graph.NodeID(u), hs.Ref, hs.VLabel)
			if err != nil {
				t.Fatal(err)
			}
			back, _, err := s.RouteHop(graph.NodeID(v), hs.Ref, hs.ULabel)
			if err != nil {
				t.Fatal(err)
			}
			// Early delivery on the climb can only improve on the
			// through-the-root prediction.
			if out+back > cost {
				t.Fatalf("hop(%d,%d) measured %d > predicted %d", u, v, out+back, cost)
			}
		}
	}
}

func TestHopFinerScalesReduceCost(t *testing.T) {
	// Scale base 1.25 must never be worse than base 2 in aggregate —
	// the §4.4 eps-tightening ablation.
	sCoarse, g, _ := buildHop(t, 16, 32, 128, 2, 2)
	rng := rand.New(rand.NewSource(16))
	_ = rng
	m := graph.AllPairs(g)
	sFine, err := NewHop(g, m, 2, 1.25, cover.VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	var coarse, fine graph.Dist
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			wc, err := sCoarse.HopRoundtrip(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			wf, err := sFine.HopRoundtrip(graph.NodeID(u), graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			coarse += wc
			fine += wf
		}
	}
	if fine > coarse {
		t.Fatalf("finer scales cost more in aggregate: %d > %d", fine, coarse)
	}
}

func TestHopTableWordsTrackMemberships(t *testing.T) {
	s, g, _ := buildHop(t, 17, 28, 84, 2, 2)
	for v := 0; v < g.N(); v++ {
		want := 1 + 9*len(s.Hierarchy.Memberships(graph.NodeID(v)))
		if got := s.Tables[v].Words(); got != want {
			t.Fatalf("table words at %d = %d, want %d", v, got, want)
		}
	}
	if s.MaxTableWords() <= 0 || s.AvgTableWords() <= 0 {
		t.Fatal("degenerate table accounting")
	}
}

func TestForwardHopOutsideTree(t *testing.T) {
	s, _, _ := buildHop(t, 18, 20, 60, 2, 2)
	h := &HopHeader{Ref: cover.TreeRef{Level: 99, Index: 0}}
	if _, _, err := ForwardHop(s.Tables[0], h); err == nil {
		t.Fatal("expected error for unknown tree ref")
	}
}

func TestRandomCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cs := RandomCenters(10, 4, rng)
	if len(cs) != 4 {
		t.Fatalf("got %d centers, want 4", len(cs))
	}
	seen := map[graph.NodeID]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Fatal("duplicate center")
		}
		seen[c] = true
	}
	if got := RandomCenters(3, 10, rng); len(got) != 3 {
		t.Fatalf("overlong request returned %d centers, want 3", len(got))
	}
}
