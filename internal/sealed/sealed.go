// Package sealed provides the small immutable open-addressed lookup
// tables the forwarding hot paths read: non-negative int32 keys
// (node ids, TINN names, port labels) hashed into a power-of-two
// segment with linear probing at load factor <= 1/2, so a lookup is one
// or two cache lines instead of a Go map traversal. Tables are compiled
// once from a builder map and never mutated — the same build-then-seal
// discipline as the graph's CSR index.
package sealed

// Hash spreads an int32 id (Knuth multiplicative hash with an xor fold
// so the low bits used by the mask are well mixed). Any bit pattern is
// valid input; Table keys are additionally required to be non-negative
// because -1 is the empty-slot sentinel.
func Hash(v int32) uint32 {
	h := uint32(v) * 2654435761
	return h ^ h>>15
}

// Table is an immutable open-addressed map. The zero value is an empty
// table: every Get misses and Built reports false.
type Table[V any] struct {
	keys []int32 // -1 marks an empty slot
	vals []V
	n    int
}

// Compile builds a table holding every entry of m. Keys must be
// non-negative (the key space of node ids, names and ports).
func Compile[V any](m map[int32]V) Table[V] {
	if len(m) == 0 {
		return Table[V]{}
	}
	size := 2
	for size < 2*len(m) {
		size <<= 1
	}
	t := Table[V]{keys: make([]int32, size), vals: make([]V, size), n: len(m)}
	for i := range t.keys {
		t.keys[i] = -1
	}
	mask := uint32(size - 1)
	for k, v := range m {
		if k < 0 {
			panic("sealed: negative key")
		}
		i := Hash(k) & mask
		for t.keys[i] >= 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = k
		t.vals[i] = v
	}
	return t
}

// Built reports whether the table was compiled from a non-empty map.
func (t *Table[V]) Built() bool { return t.keys != nil }

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored under k. Negative keys are never stored
// (Compile rejects them) and always miss — they must not be compared
// against the -1 empty-slot sentinel.
func (t *Table[V]) Get(k int32) (V, bool) {
	if t.keys == nil || k < 0 {
		var zero V
		return zero, false
	}
	mask := uint32(len(t.keys)) - 1
	for i := Hash(k) & mask; ; i = (i + 1) & mask {
		switch kk := t.keys[i]; {
		case kk == k:
			return t.vals[i], true
		case kk < 0:
			var zero V
			return zero, false
		}
	}
}

// Range calls fn for every entry, in unspecified order.
func (t *Table[V]) Range(fn func(k int32, v V)) {
	for i, k := range t.keys {
		if k >= 0 {
			fn(k, t.vals[i])
		}
	}
}
