package sealed

import (
	"math/rand"
	"testing"
)

func TestTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := make(map[int32]int64)
		for i := 0; i < rng.Intn(200); i++ {
			m[int32(rng.Intn(1<<20))] = rng.Int63()
		}
		tab := Compile(m)
		if tab.Len() != len(m) {
			t.Fatalf("Len = %d, want %d", tab.Len(), len(m))
		}
		if tab.Built() != (len(m) > 0) {
			t.Fatalf("Built = %v with %d entries", tab.Built(), len(m))
		}
		for k, v := range m {
			if got, ok := tab.Get(k); !ok || got != v {
				t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, got, ok, v)
			}
		}
		for i := 0; i < 100; i++ {
			k := int32(rng.Intn(1 << 21))
			want, wantOK := m[k]
			if got, ok := tab.Get(k); ok != wantOK || (ok && got != want) {
				t.Fatalf("Get(%d) = (%d, %v), map has (%d, %v)", k, got, ok, want, wantOK)
			}
		}
		seen := make(map[int32]int64)
		tab.Range(func(k int32, v int64) { seen[k] = v })
		if len(seen) != len(m) {
			t.Fatalf("Range visited %d entries, want %d", len(seen), len(m))
		}
	}
}

func TestGetNegativeKeyMisses(t *testing.T) {
	tab := Compile(map[int32]int{0: 1, 7: 2})
	for _, k := range []int32{-1, -5, -1 << 30} {
		if v, ok := tab.Get(k); ok {
			t.Fatalf("Get(%d) = (%d, true), want miss: negative keys must not match the empty-slot sentinel", k, v)
		}
	}
}

func TestZeroTable(t *testing.T) {
	var tab Table[int]
	if tab.Built() || tab.Len() != 0 {
		t.Fatal("zero table should be empty and unbuilt")
	}
	if _, ok := tab.Get(7); ok {
		t.Fatal("zero table returned a value")
	}
	tab.Range(func(int32, int) { t.Fatal("zero table ranged an entry") })
}

func TestCompileRejectsNegativeKeys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative key accepted")
		}
	}()
	Compile(map[int32]int{-1: 1})
}
