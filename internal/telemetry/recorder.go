package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// EvKind discriminates flight-recorder events: the life of one traced
// roundtrip as it is injected, crosses shards, hops, flips at the
// destination and completes.
type EvKind uint8

const (
	// EvInject marks a roundtrip starting at its source's shard.
	EvInject EvKind = iota
	// EvArrive marks a flight frame received and decoded by a shard.
	EvArrive
	// EvHop marks one forwarded hop (recorded via the sim hop hook).
	EvHop
	// EvFlip marks outbound delivery: the return leg begins.
	EvFlip
	// EvDepart marks a flight frame shipped to another shard (Arg is
	// the destination shard).
	EvDepart
	// EvComplete marks the roundtrip finishing at its source.
	EvComplete
)

var evNames = [...]string{"inject", "arrive", "hop", "flip", "depart", "complete"}

// String returns the event kind's name.
func (k EvKind) String() string {
	if int(k) < len(evNames) {
		return evNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind as its name.
func (k EvKind) MarshalJSON() ([]byte, error) { return strconv.AppendQuote(nil, k.String()), nil }

// UnmarshalJSON decodes a kind name.
func (k *EvKind) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	for i, n := range evNames {
		if n == s {
			*k = EvKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown event kind %q", s)
}

// Event is one flight-recorder entry. Shard and Worker identify the
// recording probe; At is the node involved (or -1), Arg carries the
// kind-specific detail (destination shard for depart, -1 otherwise),
// Hops is the roundtrip's running hop count and Return marks the
// return leg.
type Event struct {
	Ns     int64  `json:"ns"`
	Rt     uint64 `json:"rt"`
	Kind   EvKind `json:"ev"`
	Shard  int32  `json:"shard"`
	Worker int32  `json:"worker"`
	At     int32  `json:"at"`
	Arg    int32  `json:"arg"`
	Hops   int32  `json:"hops"`
	Return bool   `json:"return,omitempty"`
}

// ring is a per-worker event buffer. The writer (the worker goroutine)
// uses TryLock so the serving path never blocks on a concurrent dump:
// if a reader holds the lock, the event is dropped and counted instead
// — "lock-free" in the sense that matters, no waiting on the hot path.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	n       uint64 // total recorded; buf[(n-1) % len] is the newest
	dropped atomic.Int64
}

func (r *ring) init(size int) {
	if size > 0 {
		r.buf = make([]Event, size)
	}
}

func (r *ring) record(ev Event) {
	if len(r.buf) == 0 {
		return
	}
	if !r.mu.TryLock() {
		r.dropped.Add(1)
		return
	}
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
	r.mu.Unlock()
}

// snapshot appends the ring's events, oldest first, filtered by rt
// (0 = all), to out.
func (r *ring) snapshot(out []Event, rt uint64) []Event {
	if len(r.buf) == 0 {
		return out
	}
	r.mu.Lock()
	size := uint64(len(r.buf))
	start := uint64(0)
	if r.n > size {
		start = r.n - size
	}
	for i := start; i < r.n; i++ {
		ev := r.buf[i%size]
		if rt == 0 || ev.Rt == rt {
			out = append(out, ev)
		}
	}
	r.mu.Unlock()
	return out
}

// Traced reports whether roundtrip tag rt is armed for recording:
// tagged (non-zero) and on the probe's trace stride. One predicate
// test per frame is the whole idle cost of the recorder.
func (p *Probe) Traced(rt uint64) bool {
	if p == nil || p.traceEvery == 0 || rt == 0 {
		return false
	}
	return p.traceEvery == 1 || rt%p.traceEvery == 1
}

// Record appends one event for an armed roundtrip. Callers gate on
// Traced first; Record itself re-checks nothing but nil.
func (p *Probe) Record(kind EvKind, rt uint64, shard int, worker int, at, arg, hops int32, ret bool) {
	if p == nil {
		return
	}
	p.ring.record(Event{
		Ns: p.Now(), Rt: rt, Kind: kind,
		Shard: int32(shard), Worker: int32(worker),
		At: at, Arg: arg, Hops: hops, Return: ret,
	})
}

// Events merges every probe's ring into one timeline, filtered by
// roundtrip tag (rt == 0 keeps everything), ordered by timestamp.
func (s *Sink) Events(rt uint64) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, row := range s.shards {
		for _, p := range row {
			out = p.ring.snapshot(out, rt)
		}
	}
	for _, p := range s.inject {
		out = p.ring.snapshot(out, rt)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ns < out[j].Ns })
	return out
}

// TraceDropped returns the total events dropped ring-wide (a reader
// held a ring lock at record time, or a ring wrapped — wraps are not
// counted here, only contention drops).
func (s *Sink) TraceDropped() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for _, row := range s.shards {
		for _, p := range row {
			n += p.ring.dropped.Load()
		}
	}
	for _, p := range s.inject {
		n += p.ring.dropped.Load()
	}
	return n
}

// EventsJSON renders events as a JSON array.
func EventsJSON(events []Event) ([]byte, error) {
	return json.MarshalIndent(events, "", " ")
}

// ChromeTrace renders events in Chrome trace_event format (load in
// chrome://tracing or Perfetto): one instant event per record, pid =
// shard, tid = worker, timestamps in microseconds.
func ChromeTrace(events []Event) ([]byte, error) {
	type chromeEvent struct {
		Name  string         `json:"name"`
		Ph    string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Pid   int32          `json:"pid"`
		Tid   int32          `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, 0, len(events))}
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("rt%d %s", ev.Rt, ev.Kind),
			Ph:   "i", Ts: float64(ev.Ns) / 1e3,
			Pid: ev.Shard, Tid: ev.Worker, Scope: "t",
			Args: map[string]any{
				"rt": ev.Rt, "at": ev.At, "arg": ev.Arg,
				"hops": ev.Hops, "return": ev.Return,
			},
		})
	}
	return json.Marshal(&out)
}

// FormatTimeline renders a merged event list as a human-readable
// single-roundtrip timeline (the rtroute -connect -trace output).
func FormatTimeline(events []Event) string {
	var b []byte
	var t0 int64
	for i, ev := range events {
		if i == 0 {
			t0 = ev.Ns
		}
		b = append(b, fmt.Sprintf("%10.1fµs  shard %d/%d  %-8s rt=%d at=%d arg=%d hops=%d return=%v\n",
			float64(ev.Ns-t0)/1e3, ev.Shard, ev.Worker, ev.Kind, ev.Rt, ev.At, ev.Arg, ev.Hops, ev.Return)...)
	}
	if len(b) == 0 {
		return "no recorded events\n"
	}
	return string(b)
}
