package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestNilSinkIsOff locks the off switch: a nil *Sink hands out nil
// probes, and every method on both is a no-op — the whole plane must
// be callable unconditionally from the hot path.
func TestNilSinkIsOff(t *testing.T) {
	var s *Sink
	if p := s.Probe(0, 0); p != nil {
		t.Fatal("nil sink handed out a probe")
	}
	if p := s.InjectorProbe(0); p != nil {
		t.Fatal("nil sink handed out an injector probe")
	}
	if s.Tracing() || s.SampleEvery() != 0 || s.UptimeNs() != 0 {
		t.Fatal("nil sink reports live state")
	}
	s.RegisterGauge("x", func() float64 { return 1 })
	if snap := s.Snapshot(); snap != nil {
		t.Fatal("nil sink produced a snapshot")
	}
	if evs := s.Events(0); evs != nil {
		t.Fatal("nil sink produced events")
	}

	var p *Probe
	if t0 := p.BatchStart(0); t0 != 0 {
		t.Fatal("nil probe armed a lap chain")
	}
	if now := p.Lap(StageRoute, 123); now != 0 {
		t.Fatal("nil probe lap returned non-zero")
	}
	p.Heat(1)
	p.Publish(Counters{Packets: 1})
	p.Record(EvHop, 1, 0, 0, 0, -1, 1, false)
	if p.Traced(1) {
		t.Fatal("nil probe claims tracing")
	}
	if p.Now() != 0 {
		t.Fatal("nil probe has a clock")
	}
}

// TestProbeShape locks probe indexing: shard rows follow Config.Shards
// order, out-of-shape indices return nil rather than panicking.
func TestProbeShape(t *testing.T) {
	s := New(Config{Shards: []int{3, 7}, Workers: 2, Injectors: 1})
	if s.Probe(0, 0) == nil || s.Probe(1, 1) == nil || s.InjectorProbe(0) == nil {
		t.Fatal("in-shape probe missing")
	}
	if s.Probe(2, 0) != nil || s.Probe(0, 2) != nil || s.Probe(-1, 0) != nil || s.InjectorProbe(1) != nil {
		t.Fatal("out-of-shape index returned a probe")
	}
	if s.Probe(0, 0) == s.Probe(1, 0) {
		t.Fatal("distinct shard rows share a probe")
	}
}

// TestBatchSampling locks the sampling contract: with SampleEvery = k,
// exactly one batch in k arms the lap chain (phase k-1, skipping the
// cold start), unsampled batches flow a zero t through Lap for free,
// and the snapshot's EstNs scales sampled time by the batch count.
func TestBatchSampling(t *testing.T) {
	s := New(Config{Shards: []int{0}, SampleEvery: 4})
	p := s.Probe(0, 0)
	sampled := 0
	for i := 0; i < 16; i++ {
		if t0 := p.BatchStart(0); t0 != 0 {
			sampled++
			if i%4 != 3 {
				t.Fatalf("batch %d sampled; want phase 3 of 4", i)
			}
			t0 = p.Lap(StageRoute, t0)
			if t0 == 0 {
				t.Fatal("lap broke the chain on a sampled batch")
			}
		} else if next := p.Lap(StageRoute, 0); next != 0 {
			t.Fatal("zero t0 did not flow through Lap")
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 batches at stride 4, want 4", sampled)
	}
	p.Publish(Counters{Packets: 16})
	snap := s.Snapshot()
	sh := snap.Shards[0]
	if sh.Batches != 16 || sh.SampledBatches != 4 {
		t.Fatalf("snapshot counted %d batches / %d sampled, want 16 / 4", sh.Batches, sh.SampledBatches)
	}
	for _, st := range sh.Stages {
		if st.Stage != "route" {
			continue
		}
		// EstNs = SampledNs * batches/sampled = SampledNs * 4.
		if st.SampledNs > 0 && (st.EstNs < 3*st.SampledNs || st.EstNs > 5*st.SampledNs) {
			t.Fatalf("EstNs %d not ~4x SampledNs %d", st.EstNs, st.SampledNs)
		}
	}
}

// TestPublishSnapshotExactness locks the design contract that makes
// /metrics trustworthy: the snapshot reproduces the exact counter
// struct each worker last published — no probe-side accumulation that
// could drift from the engine's own stats.
func TestPublishSnapshotExactness(t *testing.T) {
	s := New(Config{Shards: []int{0, 1}, Injectors: 1})
	want0 := Counters{Packets: 10, Hops: 100, Weight: 500, FramesIn: 7, FramesOut: 7, Errors: 1, Allocs: 2}
	want1 := Counters{Packets: 20, Hops: 50, Weight: 900}
	s.Probe(0, 0).Publish(Counters{Packets: 3}) // overwritten by the next publish
	s.Probe(0, 0).Publish(want0)
	s.Probe(1, 0).Publish(want1)
	s.InjectorProbe(0).Publish(Counters{Injects: 30, Allocs: 4})
	snap := s.Snapshot()
	if snap.Shards[0].Counters != want0 {
		t.Fatalf("shard 0 counters %+v, want %+v", snap.Shards[0].Counters, want0)
	}
	if snap.Shards[1].Counters != want1 {
		t.Fatalf("shard 1 counters %+v, want %+v", snap.Shards[1].Counters, want1)
	}
	if snap.Injectors == nil || snap.Injectors.Injects != 30 {
		t.Fatal("injector publish lost")
	}
	if snap.Totals.Packets != 30 || snap.Totals.Injects != 30 || snap.Totals.Allocs != 6 {
		t.Fatalf("totals %+v", snap.Totals)
	}
}

// TestSnapshotSub locks the diff: counters and batches subtract per
// shard id, so a poller can turn two absolute snapshots into the
// activity between them.
func TestSnapshotSub(t *testing.T) {
	s := New(Config{Shards: []int{0}, Injectors: 1})
	s.Probe(0, 0).Publish(Counters{Packets: 10, Hops: 40})
	s.InjectorProbe(0).Publish(Counters{Injects: 12})
	prev := s.Snapshot()
	s.Probe(0, 0).Publish(Counters{Packets: 25, Hops: 110})
	s.InjectorProbe(0).Publish(Counters{Injects: 27})
	diff := s.Snapshot().Sub(prev)
	if diff.Shards[0].Packets != 15 || diff.Shards[0].Hops != 70 {
		t.Fatalf("diff shard counters %+v, want packets 15 hops 70", diff.Shards[0].Counters)
	}
	if diff.Injectors.Injects != 15 {
		t.Fatalf("diff injects %d, want 15", diff.Injectors.Injects)
	}
	if diff.Totals.Packets != 15 {
		t.Fatalf("diff totals %+v", diff.Totals)
	}
	if diff.UptimeNs < 0 {
		t.Fatal("diff uptime negative")
	}
}

// TestHeatSketch locks the space-saving top-K: heavy destinations
// survive eviction, per-worker sketches merge by destination, and the
// merged list is sorted by estimated count.
func TestHeatSketch(t *testing.T) {
	s := New(Config{Shards: []int{0}, Workers: 2, HeatK: 4})
	p0, p1 := s.Probe(0, 0), s.Probe(0, 1)
	for i := 0; i < 100; i++ {
		p0.Heat(7) // the heavy hitter on worker 0
		if i%2 == 0 {
			p1.Heat(7) // and half as heavy on worker 1
		}
		p0.Heat(int32(100 + i%17)) // churn that must not evict dst 7
		p1.Heat(int32(200 + i%13))
	}
	p0.Publish(Counters{})
	p1.Publish(Counters{})
	heat := s.Snapshot().Shards[0].Heat
	if len(heat) == 0 || len(heat) > 4 {
		t.Fatalf("merged heat has %d entries, want 1..4", len(heat))
	}
	if heat[0].Dst != 7 {
		t.Fatalf("top destination %d, want 7", heat[0].Dst)
	}
	// Space-saving guarantee: estimate >= true count, and the error
	// bound is tracked per entry.
	if heat[0].Count < 150 {
		t.Fatalf("dst 7 estimated %d, true count 150; space-saving must not undercount", heat[0].Count)
	}
	for i := 1; i < len(heat); i++ {
		if heat[i].Count > heat[i-1].Count {
			t.Fatal("merged heat not sorted by count")
		}
	}
}

// TestRecorder locks the flight recorder: the trace predicate, ring
// wrap (oldest events overwritten, newest kept), rt filtering, and the
// merged timeline's time order.
func TestRecorder(t *testing.T) {
	s := New(Config{Shards: []int{0}, TraceEvery: 8, RingSize: 4})
	p := s.Probe(0, 0)
	for rt, want := range map[uint64]bool{0: false, 1: true, 8: false, 9: true, 17: true} {
		if got := p.Traced(rt); got != want {
			t.Fatalf("Traced(%d) = %v, want %v", rt, got, want)
		}
	}
	for i := 0; i < 6; i++ {
		p.Record(EvHop, 1, 0, 0, int32(i), -1, int32(i), false)
	}
	evs := s.Events(1)
	if len(evs) != 4 {
		t.Fatalf("ring of 4 kept %d events", len(evs))
	}
	if evs[0].At != 2 || evs[3].At != 5 {
		t.Fatalf("ring kept events at %d..%d, want newest 2..5", evs[0].At, evs[3].At)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Ns < evs[i-1].Ns {
			t.Fatal("merged events out of time order")
		}
	}
	// A seventh record wraps once more: the ring now holds hops 3..5
	// plus the complete.
	p.Record(EvComplete, 9, 0, 0, 0, -1, 3, true)
	if got := len(s.Events(9)); got != 1 {
		t.Fatalf("rt filter returned %d events, want 1", got)
	}
	if got := len(s.Events(0)); got != 4 {
		t.Fatalf("unfiltered merge returned %d events, want 4", got)
	}
}

// TestTracingDisabled locks the zero-config behavior: without
// TraceEvery nothing is traced and nothing is recorded.
func TestTracingDisabled(t *testing.T) {
	s := New(Config{Shards: []int{0}})
	if s.Tracing() {
		t.Fatal("sink without TraceEvery claims tracing")
	}
	p := s.Probe(0, 0)
	if p.Traced(1) {
		t.Fatal("probe without TraceEvery traced rt 1")
	}
	p.Record(EvHop, 1, 0, 0, 0, -1, 0, false) // must not panic on the empty ring
	if evs := s.Events(0); len(evs) != 0 {
		t.Fatalf("recorded %d events with tracing off", len(evs))
	}
}

// TestEventJSONRoundtrip locks the wire shape rtroute -trace consumes:
// events marshal with the kind as its name and unmarshal back.
func TestEventJSONRoundtrip(t *testing.T) {
	in := []Event{
		{Ns: 10, Rt: 1, Kind: EvInject, Shard: 0, Worker: 0, At: 3, Arg: -1},
		{Ns: 20, Rt: 1, Kind: EvDepart, Shard: 0, Worker: 0, At: 5, Arg: 1, Hops: 2},
		{Ns: 30, Rt: 1, Kind: EvComplete, Shard: 1, Worker: 0, At: 3, Arg: -1, Hops: 6, Return: true},
	}
	data, err := EventsJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("roundtrip lost events: %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("event %d roundtripped to %+v, want %+v", i, out[i], in[i])
		}
	}
	if !strings.Contains(string(data), `"ev": "depart"`) {
		t.Fatalf("kind not encoded by name:\n%s", data)
	}
}

// TestChromeTrace locks the trace_event export: valid JSON with one
// instant event per record, pid = shard, ts in microseconds.
func TestChromeTrace(t *testing.T) {
	data, err := ChromeTrace([]Event{{Ns: 2500, Rt: 1, Kind: EvHop, Shard: 3, Worker: 1, At: 9}})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int32   `json:"pid"`
			Tid  int32   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("%d trace events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Ph != "i" || ev.Pid != 3 || ev.Tid != 1 || ev.Ts != 2.5 {
		t.Fatalf("chrome event %+v", ev)
	}
	if !strings.Contains(ev.Name, "hop") {
		t.Fatalf("event name %q misses the kind", ev.Name)
	}
}

// TestStageTable locks the cost decomposition: busy rows first sorted
// hottest-first, wait rows (credit-wait, synthetic recv-wait) reported
// but excluded from the busy sum.
func TestStageTable(t *testing.T) {
	snap := &Snapshot{
		Shards: []ShardSnap{{
			Shard:      0,
			Counters:   Counters{Packets: 100},
			RecvWaitNs: 5000,
			Stages: []StageSnap{
				{Stage: "route", EstNs: 40000, MaxNs: 900, P50Ns: 300},
				{Stage: "decode", EstNs: 10000, MaxNs: 200, P50Ns: 80},
				{Stage: "credit-wait", Wait: true, EstNs: 90000},
			},
		}},
		Totals: Counters{Packets: 100},
	}
	rows := snap.StageTable(0)
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 (route, decode, credit-wait, recv-wait)", len(rows))
	}
	if rows[0].Stage != "route" || rows[1].Stage != "decode" {
		t.Fatalf("busy rows out of order: %s, %s", rows[0].Stage, rows[1].Stage)
	}
	if !rows[2].Wait || !rows[3].Wait {
		t.Fatal("wait rows not last")
	}
	if got := BusySum(rows); got != 500 {
		t.Fatalf("busy sum %f ns/rt, want 500 (40000+10000 over 100 packets)", got)
	}
	out := FormatStageTable(rows, 600)
	for _, want := range []string{"route", "decode", "credit-wait", "recv-wait", "busy sum", "coverage 83.3%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table misses %q:\n%s", want, out)
		}
	}
}

// TestPrometheus locks the scrape format: counter families labeled by
// shard, stage estimates, gauges sanitized, uptime present.
func TestPrometheus(t *testing.T) {
	s := New(Config{Shards: []int{2}, Injectors: 1})
	s.Probe(2-2, 0).Publish(Counters{Packets: 42, Hops: 99})
	s.InjectorProbe(0).Publish(Counters{Injects: 42})
	s.RegisterGauge("Window Occupancy", func() float64 { return 3.5 })
	text := string(Prometheus(s.Snapshot()))
	for _, want := range []string{
		`rtroute_packets_total{shard="2"} 42`,
		`rtroute_hops_total{shard="2"} 99`,
		`rtroute_injects_total{shard="injectors"} 42`,
		"rtroute_window_occupancy 3.5",
		"rtroute_uptime_seconds",
		"# TYPE rtroute_packets_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output misses %q:\n%s", want, text)
		}
	}
}

// TestGauges locks gauge registration and snapshot reads.
func TestGauges(t *testing.T) {
	s := New(Config{Shards: []int{0}})
	v := 1.0
	s.RegisterGauge("x", func() float64 { return v })
	v = 2.5
	snap := s.Snapshot()
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "x" || snap.Gauges[0].Value != 2.5 {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
}
