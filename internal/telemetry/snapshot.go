package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"rtroute/internal/eval"
)

// StageSnap is one stage's merged timing inside a snapshot. SampledNs
// is the raw clocked time inside sampled batches; EstNs scales it by
// each probe's exact batch count (batches / sampled batches) before
// merging, so it estimates the stage's true total across *all*
// batches — the quantity the -timing table divides by packets.
type StageSnap struct {
	Stage     string `json:"stage"`
	Wait      bool   `json:"wait,omitempty"`
	SampledNs int64  `json:"sampled_ns"`
	EstNs     int64  `json:"est_ns"`
	MaxNs     int64  `json:"max_ns"`
	P50Ns     int64  `json:"p50_ns"`
}

// ShardSnap is one shard's merged probe state (or the merged injector
// pseudo-shard, Shard == -1).
type ShardSnap struct {
	Shard int `json:"shard"`
	Counters
	Batches        int64 `json:"batches"`
	SampledBatches int64 `json:"sampled_batches"`
	RecvWaitNs     int64 `json:"recv_wait_ns"`
	// ClippedNs is sampled lap time attributed to scheduler preemption
	// (laps far over the stage's running median) and excluded from the
	// stage totals; a large value means the stage table is fighting an
	// oversubscribed host.
	ClippedNs int64       `json:"clipped_ns,omitempty"`
	Stages    []StageSnap `json:"stages,omitempty"`
	Heat      []HeatEntry `json:"heat,omitempty"`
}

// GaugeValue is one registered gauge's reading at snapshot time.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is one race-clean point-in-time merge of every probe's
// published state: the diffable epoch the live plane serves. Two
// snapshots subtract (Sub) into the activity between them.
type Snapshot struct {
	UptimeNs     int64        `json:"uptime_ns"`
	SampleEvery  int          `json:"sample_every"`
	Shards       []ShardSnap  `json:"shards"`
	Injectors    *ShardSnap   `json:"injectors,omitempty"`
	Gauges       []GaugeValue `json:"gauges,omitempty"`
	Totals       Counters     `json:"totals"`
	TraceDropped int64        `json:"trace_dropped,omitempty"`
}

// mergeSnap folds published probe states into one ShardSnap.
func (s *Sink) mergeSnap(shard int, probes []*Probe) ShardSnap {
	out := ShardSnap{Shard: shard}
	var stageNs, stageEst, stageMax [NumStages]int64
	var hists [NumStages]eval.Hist
	heatParts := make([][]HeatEntry, 0, len(probes))
	for _, p := range probes {
		pub := p.read()
		out.Counters.add(pub.c)
		out.Batches += pub.batches
		out.SampledBatches += pub.sampled
		out.RecvWaitNs += pub.recvWaitNs
		out.ClippedNs += pub.clippedNs
		for st := Stage(0); st < NumStages; st++ {
			stageNs[st] += pub.stageNs[st]
			if pub.sampled > 0 {
				scale := float64(pub.batches) / float64(pub.sampled)
				stageEst[st] += int64(float64(pub.stageNs[st]) * scale)
			}
			if pub.stageMax[st] > stageMax[st] {
				stageMax[st] = pub.stageMax[st]
			}
			hists[st].Merge(&pub.stageHist[st])
		}
		if len(pub.heat) > 0 {
			heatParts = append(heatParts, pub.heat)
		}
	}
	for st := Stage(0); st < NumStages; st++ {
		if stageNs[st] == 0 {
			continue
		}
		out.Stages = append(out.Stages, StageSnap{
			Stage: st.String(), Wait: st.Wait(),
			SampledNs: stageNs[st], EstNs: stageEst[st],
			MaxNs: stageMax[st], P50Ns: hists[st].Quantile(0.5),
		})
	}
	out.Heat = mergeHeat(s.cfg.HeatK, heatParts...)
	return out
}

// Snapshot merges every probe's last published state. Safe to call
// concurrently with a live run; what it sees is each worker's most
// recent batch-boundary publish.
func (s *Sink) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	snap := &Snapshot{
		UptimeNs:     s.UptimeNs(),
		SampleEvery:  s.SampleEvery(),
		Shards:       make([]ShardSnap, len(s.shards)),
		TraceDropped: s.TraceDropped(),
	}
	for i, probes := range s.shards {
		snap.Shards[i] = s.mergeSnap(s.cfg.Shards[i], probes)
		snap.Totals.add(snap.Shards[i].Counters)
	}
	if len(s.inject) > 0 {
		inj := s.mergeSnap(-1, s.inject)
		snap.Injectors = &inj
		snap.Totals.Injects += inj.Counters.Injects
		snap.Totals.Allocs += inj.Counters.Allocs
	}
	s.mu.Lock()
	gauges := append([]Gauge(nil), s.gauges...)
	s.mu.Unlock()
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: g.Name, Value: g.Fn()})
	}
	return snap
}

func subShard(a, b ShardSnap) ShardSnap {
	out := a
	out.Counters.sub(b.Counters)
	out.Batches -= b.Batches
	out.SampledBatches -= b.SampledBatches
	out.RecvWaitNs -= b.RecvWaitNs
	out.ClippedNs -= b.ClippedNs
	out.Stages = append([]StageSnap(nil), a.Stages...)
	for i := range out.Stages {
		for _, prev := range b.Stages {
			if prev.Stage == out.Stages[i].Stage {
				out.Stages[i].SampledNs -= prev.SampledNs
				out.Stages[i].EstNs -= prev.EstNs
				break
			}
		}
	}
	// Heat and max/p50 are not diffable; the newer reading stands.
	return out
}

// Sub returns the activity between prev and s (counters and stage
// times subtract per shard; heat, maxima and gauges keep the newer
// reading). Shards are matched by id, so a snapshot pair from the same
// sink always lines up.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	if prev == nil {
		return s
	}
	out := *s
	out.Shards = make([]ShardSnap, len(s.Shards))
	out.Totals = Counters{}
	for i, cur := range s.Shards {
		out.Shards[i] = cur
		for _, old := range prev.Shards {
			if old.Shard == cur.Shard {
				out.Shards[i] = subShard(cur, old)
				break
			}
		}
		out.Totals.add(out.Shards[i].Counters)
	}
	if s.Injectors != nil && prev.Injectors != nil {
		inj := subShard(*s.Injectors, *prev.Injectors)
		out.Injectors = &inj
		out.Totals.Injects += inj.Counters.Injects
		out.Totals.Allocs += inj.Counters.Allocs
	}
	out.UptimeNs = s.UptimeNs - prev.UptimeNs
	return &out
}

// StageRow is one line of the machine-produced cost decomposition.
type StageRow struct {
	Stage   string  `json:"stage"`
	Wait    bool    `json:"wait,omitempty"`
	NsPerRT float64 `json:"ns_per_rt"`
	EstNs   int64   `json:"est_ns"`
	MaxNs   int64   `json:"max_ns"`
	P50Ns   int64   `json:"p50_ns"`
}

// StageTable merges the snapshot's per-shard stage estimates into
// whole-run per-roundtrip rows: busy stages first (hottest first),
// then wait stages (recv-wait last). packets 0 falls back to the
// snapshot's own total.
func (s *Snapshot) StageTable(packets int64) []StageRow {
	if s == nil {
		return nil
	}
	if packets <= 0 {
		packets = s.Totals.Packets
	}
	if packets <= 0 {
		return nil
	}
	type agg struct {
		est, max, p50, sampled int64
		wait                   bool
	}
	merged := map[string]*agg{}
	fold := func(sh *ShardSnap) {
		for _, st := range sh.Stages {
			a := merged[st.Stage]
			if a == nil {
				a = &agg{wait: st.Wait}
				merged[st.Stage] = a
			}
			a.est += st.EstNs
			a.sampled += st.SampledNs
			if st.MaxNs > a.max {
				a.max = st.MaxNs
			}
			if st.P50Ns > a.p50 {
				a.p50 = st.P50Ns
			}
		}
	}
	for i := range s.Shards {
		fold(&s.Shards[i])
	}
	if s.Injectors != nil {
		fold(s.Injectors)
	}
	rows := make([]StageRow, 0, len(merged)+1)
	for name, a := range merged {
		rows = append(rows, StageRow{
			Stage: name, Wait: a.wait,
			NsPerRT: float64(a.est) / float64(packets),
			EstNs:   a.est, MaxNs: a.max, P50Ns: a.p50,
		})
	}
	var recvWait int64
	for i := range s.Shards {
		recvWait += s.Shards[i].RecvWaitNs
	}
	if s.Injectors != nil {
		recvWait += s.Injectors.RecvWaitNs
	}
	if recvWait > 0 {
		rows = append(rows, StageRow{
			Stage: "recv-wait", Wait: true,
			NsPerRT: float64(recvWait) / float64(packets), EstNs: recvWait,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Wait != rows[j].Wait {
			return !rows[i].Wait
		}
		return rows[i].NsPerRT > rows[j].NsPerRT
	})
	return rows
}

// BusySum returns the non-wait rows' total ns/rt — the stage sum the
// acceptance bound compares against measured wall ns/rt.
func BusySum(rows []StageRow) float64 {
	var sum float64
	for _, r := range rows {
		if !r.Wait {
			sum += r.NsPerRT
		}
	}
	return sum
}

// FormatStageTable renders the decomposition. wallNsPerRT, when > 0,
// adds the coverage line (busy stage sum over measured wall time per
// roundtrip; wait rows overlap other goroutines' busy time on a
// saturated host and are excluded).
func FormatStageTable(rows []StageRow, wallNsPerRT float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %8s %10s %10s\n", "stage", "ns/rt", "share", "p50-ns", "max-ns")
	busy := BusySum(rows)
	for _, r := range rows {
		if r.Wait {
			continue
		}
		share := 0.0
		if busy > 0 {
			share = 100 * r.NsPerRT / busy
		}
		fmt.Fprintf(&b, "%-12s %10.0f %7.1f%% %10d %10d\n", r.Stage, r.NsPerRT, share, r.P50Ns, r.MaxNs)
	}
	fmt.Fprintf(&b, "%-12s %10.0f\n", "busy sum", busy)
	for _, r := range rows {
		if r.Wait {
			fmt.Fprintf(&b, "%-12s %10.0f   (wait: overlaps busy, excluded)\n", r.Stage, r.NsPerRT)
		}
	}
	if wallNsPerRT > 0 {
		fmt.Fprintf(&b, "measured     %10.0f ns/rt  coverage %.1f%%\n", wallNsPerRT, 100*busy/wallNsPerRT)
	}
	return b.String()
}
