package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the sink's export surface:
//
//	/metrics              expvar-style JSON snapshot (?format=prometheus
//	                      or an Accept: text/plain header selects the
//	                      Prometheus text format)
//	/trace                flight-recorder dump (?rt=N filters one
//	                      roundtrip tag; ?format=chrome emits Chrome
//	                      trace_event JSON for chrome://tracing)
//	/debug/pprof/*        the runtime profiles
//
// extra, when non-nil, contributes static identity fields ("shard",
// "addr", scheme kind...) merged into the /metrics JSON root.
func Handler(s *Sink, extra func() map[string]any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Snapshot()
		if snap == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		format := r.URL.Query().Get("format")
		if format == "prometheus" || (format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(Prometheus(snap))
			return
		}
		root := map[string]any{"telemetry": snap}
		if extra != nil {
			for k, v := range extra() {
				root[k] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(root)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		var rt uint64
		if v := r.URL.Query().Get("rt"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad rt: "+err.Error(), http.StatusBadRequest)
				return
			}
			rt = n
		}
		events := s.Events(rt)
		var (
			body []byte
			err  error
		)
		if r.URL.Query().Get("format") == "chrome" {
			body, err = ChromeTrace(events)
		} else {
			body, err = EventsJSON(events)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "rtroute telemetry: /metrics /metrics?format=prometheus /trace?rt=N&format=chrome /debug/pprof/\n")
	})
	return mux
}

// Serve starts the export surface on addr (e.g. "127.0.0.1:8080",
// ":0" for an ephemeral port) and returns the server plus the bound
// address. The caller owns shutdown via srv.Close.
func Serve(addr string, s *Sink, extra func() map[string]any) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(s, extra)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Prometheus renders a snapshot in the Prometheus text exposition
// format (one counter family per Counters field, labeled by shard;
// stage estimates and heat as labeled families; gauges verbatim).
func Prometheus(snap *Snapshot) []byte {
	var b strings.Builder
	counter := func(name, help string, get func(*ShardSnap) int64) {
		fmt.Fprintf(&b, "# HELP rtroute_%s %s\n# TYPE rtroute_%s counter\n", name, help, name)
		emit := func(sh *ShardSnap, label string) {
			fmt.Fprintf(&b, "rtroute_%s{shard=%q} %d\n", name, label, get(sh))
		}
		for i := range snap.Shards {
			emit(&snap.Shards[i], strconv.Itoa(snap.Shards[i].Shard))
		}
		if snap.Injectors != nil {
			emit(snap.Injectors, "injectors")
		}
	}
	counter("packets_total", "roundtrips completed", func(s *ShardSnap) int64 { return s.Packets })
	counter("hops_total", "hops forwarded over completed roundtrips", func(s *ShardSnap) int64 { return s.Hops })
	counter("weight_total", "roundtrip weight served", func(s *ShardSnap) int64 { return s.Weight })
	counter("frames_in_total", "packet frames received from other shards", func(s *ShardSnap) int64 { return s.FramesIn })
	counter("frames_out_total", "packet frames shipped to other shards", func(s *ShardSnap) int64 { return s.FramesOut })
	counter("errors_total", "frames dropped or batches refused", func(s *ShardSnap) int64 { return s.Errors })
	counter("injects_total", "roundtrips injected", func(s *ShardSnap) int64 { return s.Injects })
	counter("tracked_allocs_total", "tracked allocation events", func(s *ShardSnap) int64 { return s.Allocs })
	counter("batches_total", "mailbox batches processed", func(s *ShardSnap) int64 { return s.Batches })
	counter("recv_wait_ns_total", "nanoseconds blocked in Recv", func(s *ShardSnap) int64 { return s.RecvWaitNs })

	fmt.Fprintf(&b, "# HELP rtroute_stage_est_ns_total estimated total nanoseconds per stage\n# TYPE rtroute_stage_est_ns_total counter\n")
	emitStages := func(sh *ShardSnap, label string) {
		for _, st := range sh.Stages {
			fmt.Fprintf(&b, "rtroute_stage_est_ns_total{shard=%q,stage=%q} %d\n", label, st.Stage, st.EstNs)
		}
	}
	for i := range snap.Shards {
		emitStages(&snap.Shards[i], strconv.Itoa(snap.Shards[i].Shard))
	}
	if snap.Injectors != nil {
		emitStages(snap.Injectors, "injectors")
	}

	fmt.Fprintf(&b, "# HELP rtroute_heat_count estimated completions per hot destination (space-saving top-K)\n# TYPE rtroute_heat_count gauge\n")
	for i := range snap.Shards {
		for _, e := range snap.Shards[i].Heat {
			fmt.Fprintf(&b, "rtroute_heat_count{shard=%q,dst=%q} %d\n",
				strconv.Itoa(snap.Shards[i].Shard), strconv.Itoa(int(e.Dst)), e.Count)
		}
	}

	gauges := append([]GaugeValue(nil), snap.Gauges...)
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	for _, g := range gauges {
		name := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' {
				return r
			}
			return '_'
		}, strings.ToLower(g.Name))
		fmt.Fprintf(&b, "# TYPE rtroute_%s gauge\nrtroute_%s %g\n", name, name, g.Value)
	}
	fmt.Fprintf(&b, "# TYPE rtroute_uptime_seconds gauge\nrtroute_uptime_seconds %g\n", float64(snap.UptimeNs)/1e9)
	return []byte(b.String())
}
