package telemetry

import "sort"

// HeatEntry is one destination's estimated completion count from the
// space-saving sketch. Count overestimates by at most Err, so
// Count - Err is a guaranteed lower bound — the usual space-saving
// error accounting.
type HeatEntry struct {
	Dst   int32 `json:"dst"`
	Count int64 `json:"count"`
	Err   int64 `json:"err,omitempty"`
}

// sketch is a fixed-size space-saving top-K counter (Metwally et al.):
// a hit increments its entry, a miss evicts the current minimum and
// inherits its count as the new entry's error bound. K is small (16 by
// default) so the hit path is a linear scan over one cache line's
// worth of entries — no hashing, no allocation, single-goroutine.
type sketch struct {
	k int
	e []HeatEntry
}

func (s *sketch) init(k int) {
	s.k = k
	s.e = make([]HeatEntry, 0, k)
}

func (s *sketch) add(key int32) {
	if s.k == 0 {
		return
	}
	mini := -1
	var min int64
	for i := range s.e {
		if s.e[i].Dst == key {
			s.e[i].Count++
			return
		}
		if mini < 0 || s.e[i].Count < min {
			mini, min = i, s.e[i].Count
		}
	}
	if len(s.e) < s.k {
		s.e = append(s.e, HeatEntry{Dst: key, Count: 1})
		return
	}
	// Evict the minimum: the newcomer could have been undercounted by
	// up to the evicted count, recorded as its error bound.
	s.e[mini] = HeatEntry{Dst: key, Count: min + 1, Err: min}
}

// copyInto copies the sketch's entries into dst (reusing its backing
// array), for Publish.
func (s *sketch) copyInto(dst []HeatEntry) []HeatEntry {
	dst = dst[:0]
	return append(dst, s.e...)
}

// mergeHeat folds many published sketches into one estimated top-k:
// counts for the same destination sum (as do error bounds), then the
// largest k survive, ordered hottest first.
func mergeHeat(k int, parts ...[]HeatEntry) []HeatEntry {
	merged := make(map[int32]HeatEntry)
	for _, part := range parts {
		for _, e := range part {
			m := merged[e.Dst]
			m.Dst = e.Dst
			m.Count += e.Count
			m.Err += e.Err
			merged[e.Dst] = m
		}
	}
	if len(merged) == 0 {
		return nil
	}
	out := make([]HeatEntry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Dst < out[j].Dst
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
