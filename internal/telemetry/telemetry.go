// Package telemetry is the serving stack's observability plane: an
// allocation-free, sharded layer the traffic engine, the cluster
// fabric and the daemons thread their counters, stage timings, heat
// sketches and hop traces through. The design contract, enforced by
// the cluster alloc gate and the BENCH telemetry-on/off rows:
//
//   - Hot counters are not kept here at all. Workers keep their
//     existing private stats and hand the probe a *copy* at batch
//     boundaries (Publish), so the serving loop pays one short
//     mutex-guarded struct copy per ~64-frame batch and readers
//     (/metrics, Snapshot) always see a race-clean, self-consistent
//     point-in-time value that matches the engine's own accounting
//     field for field.
//   - Stage timing is sampled per mailbox batch (1-in-SampleEvery),
//     not per packet: a sampled batch chains monotonic-clock Laps
//     through decode, route, encode, complete and send, so every
//     nanosecond between batch start and flush end is attributed to
//     exactly one stage and the per-stage totals scale back up by the
//     exact batch count — the machine-produced replacement for the
//     DESIGN "Serving numbers" hand arithmetic.
//   - Tracing (the flight recorder) is gated per roundtrip tag and
//     costs one predicate test per frame when idle; see recorder.go.
//   - Everything lives behind a nil-check: a nil *Sink hands out nil
//     *Probes, and every Probe method is a nil-receiver no-op, so the
//     instrumented hot path is branch-per-call when telemetry is off.
package telemetry

import (
	"sync"
	"time"

	"rtroute/internal/eval"
)

// Stage identifies one attributed slice of a worker's serving loop.
// The stages tile a sampled batch: chained Laps leave no unattributed
// gap between batch start and flush end, which is what lets the
// -timing table's stage sum approximate measured wall ns/rt.
type Stage uint8

const (
	// StageDecode is frame + header decode of a received frame.
	StageDecode Stage = iota
	// StageRoute is segment forwarding (the per-hop loop) plus the
	// roundtrip protocol glue around it (header reset, leg flip).
	StageRoute
	// StageEncode is flight repatch / re-encode and done-frame encode.
	StageEncode
	// StageComplete is completion accounting: stats, histograms,
	// samples, the window credit Put.
	StageComplete
	// StageSend is transport rendezvous: SendBatch and Reply calls.
	StageSend
	// StageInject is injector-side work: pair generation and
	// inject-batch encode.
	StageInject
	// StageCredit is the injector's window.Take. It is a *wait* stage:
	// its span covers blocked time that overlaps other goroutines'
	// busy time, so the stage table reports it but excludes it from
	// the busy sum.
	StageCredit
	// NumStages sizes per-probe stage arrays.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "route", "encode", "complete", "send", "inject", "credit-wait",
}

// String returns the stage's table label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Wait reports whether the stage measures blocked time rather than CPU
// work (excluded from the busy sum, see StageCredit).
func (s Stage) Wait() bool { return s == StageCredit }

// Config sizes a Sink.
type Config struct {
	// Shards lists the shard ids the sink serves, one probe row per
	// entry; the ids are display labels (a single-shard daemon passes
	// its own shard number). Required non-empty.
	Shards []int
	// Workers is the per-shard worker pool size (default 1).
	Workers int
	// Injectors is the number of injector probes (0 = none).
	Injectors int
	// SampleEvery samples stage timing on every k-th mailbox batch
	// (default 16; < 0 disables timing entirely).
	SampleEvery int
	// TraceEvery arms the flight recorder for roundtrip tags rt with
	// rt % TraceEvery == 1 (1 = every tagged roundtrip, 0 = tracing
	// off). Untagged roundtrips (rt == 0) are never traced.
	TraceEvery int
	// RingSize is each worker's event ring capacity (default 4096,
	// ignored when TraceEvery == 0).
	RingSize int
	// HeatK is the per-worker top-K destination sketch size
	// (default 16; < 0 disables heat tracking).
	HeatK int
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 16
	}
	if c.RingSize <= 0 {
		c.RingSize = 4096
	}
	if c.HeatK == 0 {
		c.HeatK = 16
	}
}

// Gauge is a named instantaneous reading registered on a Sink; the
// function must be safe to call concurrently with the serving loop
// (the Window and TCP link counters are atomics, for example).
type Gauge struct {
	Name string
	Fn   func() float64
}

// Sink owns the probes of one serving run. A nil *Sink is valid
// everywhere and turns the whole plane off.
type Sink struct {
	cfg     Config
	epoch   time.Time
	clockNs int64      // calibrated cost of one monotonic clock read
	shards  [][]*Probe // [shard][worker]
	inject  []*Probe

	mu     sync.Mutex
	gauges []Gauge
}

// calibrateClock measures the cost of one monotonic clock read, so Lap
// can subtract its own instrument from every sampled lap — at a
// sampling stride of 16, fourteen-odd uncorrected ~50ns reads per
// roundtrip would show up as ~700 phantom ns/rt in the stage table.
// The minimum over several short rounds keeps a scheduler preemption
// during calibration from inflating the estimate for the sink's whole
// lifetime.
func calibrateClock(epoch time.Time) int64 {
	const reads = 512
	best := int64(1 << 62)
	for round := 0; round < 8; round++ {
		start := time.Now()
		for i := 0; i < reads; i++ {
			_ = time.Since(epoch)
		}
		if d := int64(time.Since(start)) / reads; d < best {
			best = d
		}
	}
	return best
}

// New creates a sink for the given shape. New(nil-ish config) panics
// early rather than serving misindexed probes.
func New(cfg Config) *Sink {
	cfg.fill()
	if len(cfg.Shards) == 0 {
		panic("telemetry: Config.Shards must be non-empty")
	}
	s := &Sink{cfg: cfg, epoch: time.Now()}
	s.clockNs = calibrateClock(s.epoch)
	s.shards = make([][]*Probe, len(cfg.Shards))
	for i := range s.shards {
		s.shards[i] = make([]*Probe, cfg.Workers)
		for w := range s.shards[i] {
			s.shards[i][w] = s.newProbe()
		}
	}
	s.inject = make([]*Probe, cfg.Injectors)
	for i := range s.inject {
		s.inject[i] = s.newProbe()
	}
	return s
}

func (s *Sink) newProbe() *Probe {
	p := &Probe{sink: s}
	if s.cfg.SampleEvery > 0 {
		p.every = uint64(s.cfg.SampleEvery)
	}
	if s.cfg.TraceEvery > 0 {
		p.traceEvery = uint64(s.cfg.TraceEvery)
		p.ring.init(s.cfg.RingSize)
	}
	if s.cfg.HeatK > 0 {
		p.heat.init(s.cfg.HeatK)
	}
	return p
}

// Probe returns the probe for one shard worker (indexes into
// Config.Shards / Config.Workers). A nil sink, or an index outside the
// configured shape, returns nil — the off switch.
func (s *Sink) Probe(shard, worker int) *Probe {
	if s == nil || shard < 0 || shard >= len(s.shards) {
		return nil
	}
	if worker < 0 || worker >= len(s.shards[shard]) {
		return nil
	}
	return s.shards[shard][worker]
}

// InjectorProbe returns injector i's probe (nil when out of shape).
func (s *Sink) InjectorProbe(i int) *Probe {
	if s == nil || i < 0 || i >= len(s.inject) {
		return nil
	}
	return s.inject[i]
}

// Tracing reports whether the sink records hop traces — callers use it
// to decide whether stamping roundtrip tags is worth the bytes.
func (s *Sink) Tracing() bool { return s != nil && s.cfg.TraceEvery > 0 }

// SampleEvery returns the resolved batch sampling stride (0 = timing
// disabled).
func (s *Sink) SampleEvery() int {
	if s == nil || s.cfg.SampleEvery < 0 {
		return 0
	}
	return s.cfg.SampleEvery
}

// RegisterGauge attaches a named instantaneous reading to snapshots.
func (s *Sink) RegisterGauge(name string, fn func() float64) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.gauges = append(s.gauges, Gauge{Name: name, Fn: fn})
	s.mu.Unlock()
}

// UptimeNs returns nanoseconds since the sink was created.
func (s *Sink) UptimeNs() int64 {
	if s == nil {
		return 0
	}
	return int64(time.Since(s.epoch))
}

// Counters is the per-worker counter set a probe publishes. The cluster
// worker fills it straight from its ShardStats (so /metrics matches the
// end-of-run merge exactly); the traffic engine and the injectors fill
// the fields that apply and leave the rest zero.
type Counters struct {
	Packets   int64 `json:"packets"`
	Hops      int64 `json:"hops"`
	Weight    int64 `json:"weight"`
	FramesIn  int64 `json:"frames_in"`
	FramesOut int64 `json:"frames_out"`
	Errors    int64 `json:"errors"`
	Injects   int64 `json:"injects"`
	// Allocs counts tracked allocation events at the worker's known
	// allocation sites (pool misses, injector batch buffers) — the
	// per-worker replacement for whole-process ReadMemStats deltas.
	Allocs int64 `json:"allocs"`
}

func (c *Counters) add(o Counters) {
	c.Packets += o.Packets
	c.Hops += o.Hops
	c.Weight += o.Weight
	c.FramesIn += o.FramesIn
	c.FramesOut += o.FramesOut
	c.Errors += o.Errors
	c.Injects += o.Injects
	c.Allocs += o.Allocs
}

func (c *Counters) sub(o Counters) {
	c.Packets -= o.Packets
	c.Hops -= o.Hops
	c.Weight -= o.Weight
	c.FramesIn -= o.FramesIn
	c.FramesOut -= o.FramesOut
	c.Errors -= o.Errors
	c.Injects -= o.Injects
	c.Allocs -= o.Allocs
}

// published is the reader-visible copy of a probe's state, guarded by
// Probe.mu and overwritten whole on each Publish.
type published struct {
	c          Counters
	batches    int64
	sampled    int64
	recvWaitNs int64
	clippedNs  int64
	stageNs    [NumStages]int64
	stageMax   [NumStages]int64
	stageHist  [NumStages]eval.Hist
	heat       []HeatEntry
}

// Probe is one worker goroutine's instrument. All recording methods
// are single-goroutine (the owning worker's); Publish hands readers a
// copy under the probe mutex. Every method is a nil-receiver no-op.
type Probe struct {
	sink       *Sink
	every      uint64 // batch sampling stride, 0 = timing off
	traceEvery uint64 // roundtrip-tag trace stride, 0 = tracing off

	// Hot state, owned by the worker goroutine.
	batches    uint64
	sampled    int64
	recvWaitNs int64
	clippedNs  int64
	stageNs    [NumStages]int64
	stageMax   [NumStages]int64
	stageHist  [NumStages]eval.Hist
	heat       sketch
	ring       ring

	mu  sync.Mutex
	pub published
}

// Now returns the probe clock (ns since the sink epoch), 0 on nil.
func (p *Probe) Now() int64 {
	if p == nil {
		return 0
	}
	return int64(time.Since(p.sink.epoch))
}

// BatchStart opens one mailbox batch: it counts the batch, charges the
// Recv block (now - waitFrom, when waitFrom > 0) to recv-wait, and —
// on every SampleEvery-th batch — returns a non-zero t0 that arms the
// Lap chain for the whole batch. An unsampled batch (and a nil probe)
// returns 0, which every Lap passes through untouched.
func (p *Probe) BatchStart(waitFrom int64) int64 {
	if p == nil {
		return 0
	}
	n := p.batches
	p.batches = n + 1
	// Sampling phase every-1 (not 0): the worker's first batches carry
	// cold-start cost — pool warmup, first-touch page faults — that the
	// batch-count scaling would multiply by the whole stride.
	if waitFrom > 0 {
		now := p.Now()
		p.recvWaitNs += now - waitFrom
		if p.every != 0 && n%p.every == p.every-1 {
			p.sampled++
			return now
		}
		return 0
	}
	if p.every != 0 && n%p.every == p.every-1 {
		p.sampled++
		return p.Now()
	}
	return 0
}

// Lap clip parameters: a sampled lap is clipped to clipMult times the
// stage's running median once the stage has clipWarm laps of history,
// but never below clipFloorNs. A lap two orders of magnitude over the
// median of a sub-millisecond stage is the scheduler preempting the
// worker mid-lap on an oversubscribed host, not stage work — and the
// batch-count scaling would multiply each such lap by the whole
// sampling stride. The clipped excess is kept (ClippedNs in the
// snapshot), not silently dropped.
const (
	clipFloorNs = 4096
	clipMult    = 64
	clipWarm    = 32
)

// Lap attributes the time since t0 to stage s and returns the new
// chain point. A zero t0 (unsampled batch, nil probe) flows through
// for free, so instrumented code calls Lap unconditionally.
func (p *Probe) Lap(s Stage, t0 int64) int64 {
	if t0 == 0 || p == nil {
		return 0
	}
	now := int64(time.Since(p.sink.epoch))
	d := now - t0 - p.sink.clockNs
	if d < 0 {
		d = 0
	}
	if d > clipFloorNs && !s.Wait() && p.stageHist[s].N >= clipWarm {
		if lim := clipMult * p.stageHist[s].Quantile(0.5); d > lim && lim >= clipFloorNs {
			p.clippedNs += d - lim
			d = lim
		}
	}
	p.stageNs[s] += d
	if d > p.stageMax[s] {
		p.stageMax[s] = d
	}
	p.stageHist[s].Add(int(d))
	return now
}

// Heat records one completed roundtrip's destination in the top-K
// sketch.
func (p *Probe) Heat(dst int32) {
	if p == nil {
		return
	}
	p.heat.add(dst)
}

// Publish copies the caller's counters plus the probe's accumulated
// timing, heat and sampling state into the reader-visible snapshot.
// Call at batch boundaries and once on worker exit.
func (p *Probe) Publish(c Counters) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.pub.c = c
	p.pub.batches = int64(p.batches)
	p.pub.sampled = p.sampled
	p.pub.recvWaitNs = p.recvWaitNs
	p.pub.clippedNs = p.clippedNs
	p.pub.stageNs = p.stageNs
	p.pub.stageMax = p.stageMax
	p.pub.stageHist = p.stageHist
	p.pub.heat = p.heat.copyInto(p.pub.heat)
	p.mu.Unlock()
}

// read returns the last published state.
func (p *Probe) read() published {
	p.mu.Lock()
	out := p.pub
	out.heat = append([]HeatEntry(nil), p.pub.heat...)
	p.mu.Unlock()
	return out
}
