package traffic_test

import (
	"fmt"
	"math/rand"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/traffic"
)

// Example compiles a built scheme into a frozen concurrent forwarding
// plane and serves a deterministic Zipf workload through it. Everything
// except the elapsed time is a pure function of (Seed, Workers,
// Workload, Packets), so the aggregates print identically on every
// run.
func Example() {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomSC(32, 128, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(32, rng)
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(9)), core.Stretch6Config{})
	if err != nil {
		fmt.Println(err)
		return
	}

	pl, err := traffic.Compile(s6)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := traffic.Run(pl, traffic.Config{
		Workers: 2,
		Packets: 5000,
		Seed:    1,
		Workload: traffic.Spec{
			Kind:      traffic.Zipf,
			ZipfTheta: 0.9,
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("packets:", res.Packets, "hops:", res.Hops, "weight:", res.Weight)
	// Output:
	// packets: 5000 hops: 35285 weight: 85597
}
