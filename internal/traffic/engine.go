package traffic

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
	"rtroute/internal/telemetry"
)

// Config parameterizes one engine run.
type Config struct {
	// Workers is the number of serving goroutines (0 = GOMAXPROCS).
	Workers int
	// Packets is the total number of roundtrips to serve; required > 0.
	Packets int64
	// Workload selects the pair distribution (zero value = uniform).
	Workload Spec
	// Seed makes the workload reproducible: same (Seed, Workers,
	// Workload, Packets) serves the identical pair multiset.
	Seed int64
	// MaxHops bounds each leg (0 = sim's default 4n budget).
	MaxHops int
	// Oracle, when non-nil, enables stretch accounting: measured
	// roundtrip weight over true roundtrip distance. The oracle is
	// consulted only in the post-run merge — never on the hot path —
	// grouped by source so a lazy oracle pays at most two Dijkstras per
	// distinct source.
	Oracle graph.DistanceOracle
	// SampleEvery records every k-th packet of each worker for stretch
	// accounting (0 or 1 = every packet). Counters and histograms
	// always cover every packet.
	SampleEvery int
	// Sink, when non-nil, attaches the telemetry plane: one probe per
	// worker on the sink's single pseudo-shard (shard row 0), counters
	// published every publishEvery roundtrips, whole-roundtrip timing
	// sampled on the sink's batch stride, destination heat per packet.
	Sink *telemetry.Sink
}

// publishEvery is the engine's counter publish cadence (the monolith
// has no mailbox batches, so a fixed roundtrip stride stands in).
const publishEvery = 32

// SinkShape returns a telemetry.Config matching this run config's
// probe shape (one pseudo-shard, one probe per worker), resolving the
// same worker default Run does.
func (cfg Config) SinkShape() telemetry.Config {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return telemetry.Config{Shards: []int{0}, Workers: workers}
}

// WorkerStats is one worker's merged shard.
type WorkerStats struct {
	Worker  int
	Packets int64
	Hops    int64
	Weight  int64
}

// Result aggregates one engine run.
type Result struct {
	Workers   int
	Packets   int64
	Hops      int64
	Weight    int64
	Elapsed   time.Duration
	HopHist   eval.Hist // per-roundtrip hop counts
	HdrHist   eval.Hist // per-roundtrip peak header words
	Stretch   eval.Quantiles
	Sampled   int // packets in the stretch sample
	PerWorker []WorkerStats
}

// PacketsPerSec returns the serving rate.
func (r *Result) PacketsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds()
}

// HopsPerSec returns the per-hop forwarding rate.
func (r *Result) HopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Hops) / r.Elapsed.Seconds()
}

// Sample is one recorded roundtrip for the stretch post-pass
// (StretchQuantiles): the pair in topological indices plus the measured
// roundtrip weight. The cluster engine records the same samples, so one
// post-pass serves both serving layers.
type Sample struct {
	Src, Dst graph.NodeID
	Weight   graph.Dist
}

// shard is one worker's private state: RNG, counters, histograms,
// samples. Each shard is its own heap allocation touched by exactly one
// goroutine; nothing is shared until the merge after the run.
type shard struct {
	stats   WorkerStats
	hopHist eval.Hist
	hdrHist eval.Hist
	samples []Sample
	err     error
}

// Run serves cfg.Packets roundtrips through the compiled plane and
// merges the shards. The pair multiset — and therefore every
// distribution in the Result — is a pure function of (Seed, Workers,
// Workload, Packets); only Elapsed and the rates vary between runs.
func Run(pl *Plane, cfg Config) (*Result, error) {
	if cfg.Packets <= 0 {
		return nil, fmt.Errorf("traffic: packets must be > 0, got %d", cfg.Packets)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	wl, err := NewWorkload(cfg.Workload, pl.N(), cfg.Seed)
	if err != nil {
		return nil, err
	}
	stride := int64(cfg.SampleEvery)
	if stride < 1 {
		stride = 1
	}
	quotas := SplitQuota(cfg.Packets, workers)
	shards := make([]*shard, workers)

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		sh := &shard{stats: WorkerStats{Worker: w}}
		shards[w] = sh
		gen := wl.Generator(w)
		quota := quotas[w]
		wg.Add(1)
		p := cfg.Sink.Probe(0, w)
		go func() {
			defer wg.Done()
			if cfg.Oracle != nil {
				sh.samples = make([]Sample, 0, quota/stride+1)
			}
			publish := func() {
				p.Publish(telemetry.Counters{
					Packets: sh.stats.Packets, Hops: sh.stats.Hops, Weight: sh.stats.Weight,
				})
			}
			if p != nil {
				defer publish()
			}
			// One header serves the worker's whole stream: the first
			// roundtrip allocates it, every later one resets it in place.
			var hdr sim.Header
			for i := int64(0); i < quota; i++ {
				// The monolith has no mailbox batches, so each roundtrip
				// opens a probe "batch": the sink's sampling stride picks
				// whole roundtrips to clock, tiled as inject (pair
				// generation), route (the forwarding loop) and complete
				// (accounting).
				t := p.BatchStart(0)
				src, dst := gen.Next()
				t = p.Lap(telemetry.StageInject, t)
				var out, back sim.Flight
				var err error
				out, back, hdr, err = sim.RoundtripFlightReusing(pl, hdr, src, dst, cfg.MaxHops)
				if err != nil {
					sh.err = fmt.Errorf("traffic: worker %d packet %d: %w", sh.stats.Worker, i, err)
					return
				}
				t = p.Lap(telemetry.StageRoute, t)
				weight := out.Weight + back.Weight
				hops := out.Hops + back.Hops
				sh.stats.Packets++
				sh.stats.Hops += int64(hops)
				sh.stats.Weight += int64(weight)
				sh.hopHist.Add(hops)
				hw := out.MaxHeaderWords
				if back.MaxHeaderWords > hw {
					hw = back.MaxHeaderWords
				}
				sh.hdrHist.Add(hw)
				if cfg.Oracle != nil && i%stride == 0 {
					sh.samples = append(sh.samples, Sample{Src: pl.NodeOf(src), Dst: pl.NodeOf(dst), Weight: weight})
				}
				if p != nil {
					p.Heat(dst)
					p.Lap(telemetry.StageComplete, t)
					if sh.stats.Packets%publishEvery == 0 {
						publish()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Workers: workers, Elapsed: elapsed, PerWorker: make([]WorkerStats, workers)}
	var samples []Sample
	for w, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
		res.PerWorker[w] = sh.stats
		res.Packets += sh.stats.Packets
		res.Hops += sh.stats.Hops
		res.Weight += sh.stats.Weight
		res.HopHist.Merge(&sh.hopHist)
		res.HdrHist.Merge(&sh.hdrHist)
		samples = append(samples, sh.samples...)
	}
	if cfg.Oracle != nil {
		res.Stretch, err = StretchQuantiles(cfg.Oracle, samples)
		if err != nil {
			return nil, err
		}
		res.Sampled = len(samples)
	}
	return res, nil
}

// SplitQuota divides total packets across workers, front-loading
// remainders: worker w serves total/workers plus one when
// w < total%workers. The replay tests and the cluster engine's
// injector streams mirror this partition, so it is part of the
// determinism contract shared by both serving layers.
func SplitQuota(total int64, workers int) []int64 {
	quotas := make([]int64, workers)
	base, rem := total/int64(workers), total%int64(workers)
	for w := range quotas {
		quotas[w] = base
		if int64(w) < rem {
			quotas[w]++
		}
	}
	return quotas
}

// StretchQuantiles computes measured-over-true roundtrip stretch for
// the samples. Samples are grouped by source so each distinct source
// costs two oracle rows (one forward, one reverse) no matter how many
// packets it sent — the same anchored-row discipline the scheme
// constructions use, which keeps a lazy oracle's work proportional to
// distinct sources, not packets. The sample order does not matter: the
// pass sorts internally, so concurrently collected shards fold into the
// same quantiles as a sequential replay.
func StretchQuantiles(m graph.DistanceOracle, samples []Sample) (eval.Quantiles, error) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Src != samples[j].Src {
			return samples[i].Src < samples[j].Src
		}
		return samples[i].Dst < samples[j].Dst
	})
	xs := make([]float64, 0, len(samples))
	var fwd, rev []graph.Dist
	cur := graph.NodeID(-1)
	for _, s := range samples {
		if s.Src != cur {
			cur = s.Src
			fwd = m.FromSource(cur)
			rev = m.ToSink(cur)
		}
		r := graph.RFromRows(fwd, rev, s.Dst)
		if r <= 0 || r >= graph.Inf {
			return eval.Quantiles{}, fmt.Errorf("traffic: degenerate roundtrip distance for (%d,%d)", s.Src, s.Dst)
		}
		xs = append(xs, float64(s.Weight)/float64(r))
	}
	return eval.QuantilesOf(xs), nil
}

// Format renders the result as the E12 serving report.
func (r *Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "packets %d  workers %d  elapsed %v\n", r.Packets, r.Workers, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "throughput %.0f packets/s  %.0f hops/s  (%.1f hops/roundtrip)\n",
		r.PacketsPerSec(), r.HopsPerSec(), r.HopHist.Mean())
	if r.Sampled > 0 {
		fmt.Fprintf(&b, "stretch (over %d sampled packets): p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
			r.Sampled, r.Stretch.P50, r.Stretch.P95, r.Stretch.P99, r.Stretch.Max, r.Stretch.Mean)
	}
	fmt.Fprintf(&b, "\nroundtrip hops\n%s", r.HopHist.Format("hops"))
	fmt.Fprintf(&b, "\npeak header words\n%s", r.HdrHist.Format("words"))
	fmt.Fprintf(&b, "\n%-8s %12s %12s %12s\n", "worker", "packets", "hops", "weight")
	for _, ws := range r.PerWorker {
		fmt.Fprintf(&b, "%-8d %12d %12d %12d\n", ws.Worker, ws.Packets, ws.Hops, ws.Weight)
	}
	return b.String()
}
