// Package traffic is the concurrent routed-traffic engine: it compiles a
// built routing scheme into a frozen forwarding plane, generates
// deterministic skewed workloads, and drives millions of roundtrips
// through the plane from sharded workers — answering "how many packets
// per second can a built scheme serve, and what stretch do real, skewed
// workloads actually see?" (the serving-plane question the ROADMAP's
// north star poses, and the lens of Krioukov et al.'s critique that
// stretch only matters as experienced under traffic).
//
// Architecture (worker-sharded, ddtxn-style):
//
//   - Plane: a certified read-only view of one scheme's tables plus its
//     header factories (sim.Plane), sealed so many goroutines consult it
//     with zero locks.
//   - Workload: a seeded factory of per-worker pair Generators. The
//     shared skew structure (Zipf popularity ranking, hotspot set) is
//     drawn once from the seed; each worker's stream is an independent
//     deterministic RNG, so a run is reproducible pair-for-pair.
//   - Engine (Run): W workers, per-worker RNG and stats shards — no
//     shared atomics or locks on the hot path — merged into aggregate
//     packets/s, hops/s, stretch quantiles and hop/header histograms.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind names a workload pair distribution.
type Kind string

const (
	// Uniform draws independent uniform (src, dst) pairs — every
	// ordered pair equally likely, the classical all-pairs view.
	Uniform Kind = "uniform"
	// Zipf draws destinations from a YCSB-style Zipf popularity ranking
	// (à la ddtxn's zipf.go) with uniform sources: a few names soak up
	// most of the traffic, as real request logs do.
	Zipf Kind = "zipf"
	// Hotspot sends a fixed fraction of packets to a small hot set of
	// destinations and the rest uniformly.
	Hotspot Kind = "hotspot"
	// RPC models roundtrip request/response flows: each worker sticks
	// to one (client, server) pair for a geometrically distributed
	// number of consecutive roundtrips before opening a new flow.
	RPC Kind = "rpc"
)

// Spec parameterizes a workload. The zero value of every field selects a
// sensible default, so Spec{Kind: Zipf} is a complete spec.
type Spec struct {
	Kind Kind
	// ZipfTheta is the YCSB skew parameter, 0 <= theta < 1; higher is
	// more skewed, and 0 is a valid value meaning an unskewed
	// popularity ranking. Zipf workloads only. (rtbench's -zipf flag
	// supplies its own 0.9 default.)
	ZipfTheta float64
	// HotFraction is the fraction of packets aimed at the hot set
	// (default 0.9). Hotspot workloads only.
	HotFraction float64
	// HotSetSize is the number of hot destinations (default
	// max(1, n/64)). Hotspot workloads only.
	HotSetSize int
	// MeanFlowLength is the mean number of consecutive roundtrips per
	// RPC flow (default 8). RPC workloads only.
	MeanFlowLength int
}

// Generator draws (srcName, dstName) pairs with srcName != dstName.
// Generators are NOT safe for concurrent use: the engine hands each
// worker its own.
type Generator interface {
	Next() (srcName, dstName int32)
}

// Workload is a validated spec bound to a name universe and seed. The
// skew structure shared by all workers (popularity ranking, hot set,
// Zipf constants) is derived once from the seed; Generator(w) then
// yields worker w's reproducible pair stream.
type Workload struct {
	spec Spec
	n    int
	seed int64
	rank []int32 // popularity rank -> name (zipf, hotspot)
	zipf *zipfDist
}

// NewWorkload validates the spec over a universe of n names {0..n-1}.
func NewWorkload(spec Spec, n int, seed int64) (*Workload, error) {
	if n < 2 {
		return nil, fmt.Errorf("traffic: workload needs at least 2 names, got %d", n)
	}
	if spec.Kind == "" {
		spec.Kind = Uniform
	}
	w := &Workload{spec: spec, n: n, seed: seed}
	shared := rand.New(rand.NewSource(seed))
	switch spec.Kind {
	case Uniform:
	case Zipf:
		if w.spec.ZipfTheta < 0 || w.spec.ZipfTheta >= 1 {
			return nil, fmt.Errorf("traffic: zipf theta %v outside [0,1)", w.spec.ZipfTheta)
		}
		w.rank = shuffledNames(n, shared)
		w.zipf = newZipfDist(n, w.spec.ZipfTheta)
	case Hotspot:
		if spec.HotFraction == 0 {
			w.spec.HotFraction = 0.9
		}
		if w.spec.HotFraction <= 0 || w.spec.HotFraction > 1 {
			return nil, fmt.Errorf("traffic: hot fraction %v outside (0,1]", w.spec.HotFraction)
		}
		if spec.HotSetSize == 0 {
			w.spec.HotSetSize = n / 64
			if w.spec.HotSetSize < 1 {
				w.spec.HotSetSize = 1
			}
		}
		if w.spec.HotSetSize < 1 || w.spec.HotSetSize > n {
			return nil, fmt.Errorf("traffic: hot set size %d outside [1,%d]", w.spec.HotSetSize, n)
		}
		w.rank = shuffledNames(n, shared)
	case RPC:
		if spec.MeanFlowLength == 0 {
			w.spec.MeanFlowLength = 8
		}
		if w.spec.MeanFlowLength < 1 {
			return nil, fmt.Errorf("traffic: mean flow length %d < 1", w.spec.MeanFlowLength)
		}
	default:
		return nil, fmt.Errorf("traffic: unknown workload kind %q", spec.Kind)
	}
	return w, nil
}

// N returns the name-universe size.
func (w *Workload) N() int { return w.n }

// Spec returns the validated spec with defaults filled in.
func (w *Workload) Spec() Spec { return w.spec }

// Generator returns worker's deterministic pair stream. Calling it again
// with the same worker index restarts the identical stream — the replay
// hook the engine-vs-sequential equivalence tests use.
func (w *Workload) Generator(worker int) Generator {
	// Distinct odd stride keeps per-worker streams decorrelated while
	// remaining a pure function of (seed, worker).
	rng := rand.New(rand.NewSource(w.seed + 0x9E3779B9*int64(worker+1)))
	switch w.spec.Kind {
	case Zipf:
		return &zipfGen{n: w.n, rng: rng, rank: w.rank, dist: w.zipf}
	case Hotspot:
		hot := w.rank[:w.spec.HotSetSize]
		return &hotspotGen{n: w.n, rng: rng, hot: hot, frac: w.spec.HotFraction}
	case RPC:
		return &rpcGen{n: w.n, rng: rng, cont: 1 - 1/float64(w.spec.MeanFlowLength)}
	default:
		return &uniformGen{n: w.n, rng: rng}
	}
}

func shuffledNames(n int, rng *rand.Rand) []int32 {
	rank := make([]int32, n)
	for i := range rank {
		rank[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { rank[i], rank[j] = rank[j], rank[i] })
	return rank
}

type uniformGen struct {
	n   int
	rng *rand.Rand
}

func (g *uniformGen) Next() (int32, int32) {
	src := int32(g.rng.Intn(g.n))
	dst := int32(g.rng.Intn(g.n - 1))
	if dst >= src {
		dst++
	}
	return src, dst
}

// zipfDist holds the constants of the YCSB Zipf sampler (Gray et al.,
// "Quickly generating billion-record synthetic databases"): rank 0 is
// the most popular, with P(rank) ∝ 1/(rank+1)^theta.
type zipfDist struct {
	n                         int
	zetan, alpha, eta, powHlf float64
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += math.Pow(1/float64(i), theta)
	}
	return sum
}

func newZipfDist(n int, theta float64) *zipfDist {
	zetan := zeta(n, theta)
	return &zipfDist{
		n:      n,
		zetan:  zetan,
		alpha:  1 / (1 - theta),
		eta:    (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/zetan),
		powHlf: math.Pow(0.5, theta),
	}
}

func (z *zipfDist) rank(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.powHlf {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

type zipfGen struct {
	n    int
	rng  *rand.Rand
	rank []int32
	dist *zipfDist
}

func (g *zipfGen) Next() (int32, int32) {
	dst := g.rank[g.dist.rank(g.rng)]
	src := int32(g.rng.Intn(g.n - 1))
	if src >= dst {
		src++
	}
	return src, dst
}

type hotspotGen struct {
	n    int
	rng  *rand.Rand
	hot  []int32
	frac float64
}

func (g *hotspotGen) Next() (int32, int32) {
	var dst int32
	if g.rng.Float64() < g.frac {
		dst = g.hot[g.rng.Intn(len(g.hot))]
	} else {
		dst = int32(g.rng.Intn(g.n))
	}
	src := int32(g.rng.Intn(g.n - 1))
	if src >= dst {
		src++
	}
	return src, dst
}

type rpcGen struct {
	n        int
	rng      *rand.Rand
	cont     float64 // probability a flow continues; mean length 1/(1-cont)
	src, dst int32
	left     int
}

func (g *rpcGen) Next() (int32, int32) {
	if g.left == 0 {
		g.src = int32(g.rng.Intn(g.n))
		g.dst = int32(g.rng.Intn(g.n - 1))
		if g.dst >= g.src {
			g.dst++
		}
		g.left = 1
		for g.rng.Float64() < g.cont {
			g.left++
		}
	}
	g.left--
	return g.src, g.dst
}
