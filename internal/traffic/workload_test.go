package traffic

import (
	"testing"
)

func collect(g Generator, k int) [][2]int32 {
	out := make([][2]int32, k)
	for i := range out {
		s, d := g.Next()
		out[i] = [2]int32{s, d}
	}
	return out
}

func TestWorkloadsValidAndDeterministic(t *testing.T) {
	const n = 50
	for _, spec := range []Spec{
		{Kind: Uniform},
		{Kind: Zipf},
		{Kind: Zipf, ZipfTheta: 0.5},
		{Kind: Hotspot},
		{Kind: Hotspot, HotFraction: 0.5, HotSetSize: 3},
		{Kind: RPC},
		{Kind: RPC, MeanFlowLength: 4},
		{}, // zero value = uniform
	} {
		w1, err := NewWorkload(spec, n, 7)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		w2, err := NewWorkload(spec, n, 7)
		if err != nil {
			t.Fatal(err)
		}
		a := collect(w1.Generator(3), 2000)
		b := collect(w2.Generator(3), 2000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: stream diverges at %d: %v vs %v", spec.Kind, i, a[i], b[i])
			}
			src, dst := a[i][0], a[i][1]
			if src == dst {
				t.Fatalf("%s: degenerate pair %v", spec.Kind, a[i])
			}
			if src < 0 || src >= n || dst < 0 || dst >= n {
				t.Fatalf("%s: pair %v outside universe", spec.Kind, a[i])
			}
		}
		// Distinct workers draw distinct streams.
		c := collect(w1.Generator(4), 100)
		same := 0
		for i := range c {
			if c[i] == a[i] {
				same++
			}
		}
		if same == len(c) {
			t.Fatalf("%s: workers 3 and 4 produced identical streams", spec.Kind)
		}
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []Spec{
		{Kind: "nope"},
		{Kind: Zipf, ZipfTheta: 1.0},
		{Kind: Zipf, ZipfTheta: -0.1},
		{Kind: Hotspot, HotFraction: 1.5},
		{Kind: Hotspot, HotSetSize: 99},
		{Kind: RPC, MeanFlowLength: -1},
	}
	for _, spec := range bad {
		if _, err := NewWorkload(spec, 10, 1); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if _, err := NewWorkload(Spec{}, 1, 1); err == nil {
		t.Error("1-name universe accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	const n, draws = 200, 50000
	w, err := NewWorkload(Spec{Kind: Zipf, ZipfTheta: 0.9}, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int32]int)
	g := w.Generator(0)
	for i := 0; i < draws; i++ {
		_, d := g.Next()
		counts[d]++
	}
	// The most popular name is rank 0 of the shared shuffled ranking.
	top := counts[w.rank[0]]
	if uniform := draws / n; top < 8*uniform {
		t.Fatalf("top destination drew %d of %d, want heavy skew (uniform would be %d)", top, draws, uniform)
	}
	// Same ranking for every worker: worker 5's top name matches.
	counts5 := make(map[int32]int)
	g5 := w.Generator(5)
	for i := 0; i < draws; i++ {
		_, d := g5.Next()
		counts5[d]++
	}
	if top5 := counts5[w.rank[0]]; top5 < 8*(draws/n) {
		t.Fatalf("worker 5 does not share the popularity ranking (top name drew %d)", top5)
	}
}

func TestHotspotFraction(t *testing.T) {
	const n, draws = 100, 40000
	w, err := NewWorkload(Spec{Kind: Hotspot, HotFraction: 0.8, HotSetSize: 2}, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	hot := map[int32]bool{w.rank[0]: true, w.rank[1]: true}
	g := w.Generator(0)
	hits := 0
	for i := 0; i < draws; i++ {
		_, d := g.Next()
		if hot[d] {
			hits++
		}
	}
	frac := float64(hits) / draws
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("hot fraction %.3f, want ~0.8", frac)
	}
}

func TestRPCFlowsRepeatPairs(t *testing.T) {
	w, err := NewWorkload(Spec{Kind: RPC, MeanFlowLength: 8}, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Generator(0)
	pairs := collect(g, 10000)
	repeats := 0
	for i := 1; i < len(pairs); i++ {
		if pairs[i] == pairs[i-1] {
			repeats++
		}
	}
	// Mean flow length 8 means ~7/8 of consecutive pairs repeat.
	if frac := float64(repeats) / float64(len(pairs)-1); frac < 0.7 || frac > 0.95 {
		t.Fatalf("repeat fraction %.3f, want ~0.875", frac)
	}
}
