package traffic

import (
	"math/rand"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// resetPlanes builds one instance of every servable plane kind over a
// shared network, for the header-reuse certification tests.
func resetPlanes(t *testing.T, n int, seed int64) []struct {
	name  string
	plane sim.Plane
} {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 6, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)

	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	s6v, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{ViaSource: true})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.NewExStretch(g, m, perm, rng, core.ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := core.NewPolynomialStretch(g, m, perm, core.PolyConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rzp, err := NewRTZPlane(sub, perm)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := rtz.NewHop(g, m, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hpp, err := NewHopPlane(hop, perm)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name  string
		plane sim.Plane
	}{
		{"stretch6", s6},
		{"stretch6-via-source", s6v},
		{"exstretch-k2", ex},
		{"poly-k2", poly},
		{"rtz", rzp},
		{"hop", hpp},
	}
}

// TestResetHeaderMatchesNewHeader certifies the reuse contract on every
// plane: a stream served through one reused header must produce flight-
// identical results to fresh per-roundtrip headers.
func TestResetHeaderMatchesNewHeader(t *testing.T) {
	const n = 32
	for _, tc := range resetPlanes(t, n, 23) {
		t.Run(tc.name, func(t *testing.T) {
			var hdr sim.Header
			for s := int32(0); s < n; s++ {
				for _, d := range []int32{(s + 1) % n, (s + n/2) % n, (s*5 + 2) % n} {
					if s == d {
						continue
					}
					fo, fb, err := sim.RoundtripFlight(tc.plane, s, d, 0)
					if err != nil {
						t.Fatalf("fresh (%d,%d): %v", s, d, err)
					}
					var ro, rb sim.Flight
					ro, rb, hdr, err = sim.RoundtripFlightReusing(tc.plane, hdr, s, d, 0)
					if err != nil {
						t.Fatalf("reused (%d,%d): %v", s, d, err)
					}
					if ro != fo || rb != fb {
						t.Fatalf("pair (%d,%d): reused %+v/%+v != fresh %+v/%+v", s, d, ro, rb, fo, fb)
					}
				}
			}
		})
	}
}

// TestRoundtripFlightAllocs is the header-lifecycle allocation gate:
// a fresh-header roundtrip costs O(1) allocations (the header), and a
// reused-header roundtrip costs zero on every plane.
func TestRoundtripFlightAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	const n = 32
	for _, tc := range resetPlanes(t, n, 29) {
		t.Run(tc.name, func(t *testing.T) {
			pl, err := Compile(tc.plane)
			if err != nil {
				t.Fatal(err)
			}
			pairs := [][2]int32{{0, 9}, {3, 17}, {8, 25}, {30, 2}, {12, 21}}
			// Warm: allocate the reusable header and grow its storage.
			var hdr sim.Header
			for _, pr := range pairs {
				if _, _, hdr, err = sim.RoundtripFlightReusing(pl, hdr, pr[0], pr[1], 0); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(100, func() {
				pr := pairs[i%len(pairs)]
				i++
				var err error
				if _, _, hdr, err = sim.RoundtripFlightReusing(pl, hdr, pr[0], pr[1], 0); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("reused-header roundtrip allocates %.1f times, want 0", allocs)
			}
			freshAllocs := testing.AllocsPerRun(100, func() {
				pr := pairs[i%len(pairs)]
				i++
				if _, _, err := sim.RoundtripFlight(pl, pr[0], pr[1], 0); err != nil {
					t.Fatal(err)
				}
			})
			if freshAllocs > 3 {
				t.Fatalf("fresh-header roundtrip allocates %.1f times, want O(1) (<= 3)", freshAllocs)
			}
		})
	}
}
