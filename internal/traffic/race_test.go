package traffic

import (
	"math/rand"
	"sync"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// TestConcurrentForwardingMatchesSequential certifies the read-only
// forwarding contract every plane implementation promises: many
// goroutines hammer ONE shared built scheme and every concurrent trace
// must be node-identical to the sequential sim.Run trace for the same
// (src, dst) pair. Run under -race (as CI does) this proves Forward,
// NewHeader and BeginReturn never mutate shared table state.
func TestConcurrentForwardingMatchesSequential(t *testing.T) {
	const (
		n          = 48
		seed       = 17
		goroutines = 8
	)
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 6, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)

	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.NewExStretch(g, m, perm, rng, core.ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := core.NewPolynomialStretch(g, m, perm, core.PolyConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rzp, err := NewRTZPlane(sub, perm)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := rtz.NewHop(g, m, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hpp, err := NewHopPlane(hop, perm)
	if err != nil {
		t.Fatal(err)
	}

	// A fixed shared pair set, covering every source.
	var pairs [][2]int32
	for s := int32(0); s < n; s++ {
		for _, d := range []int32{(s + 1) % n, (s + n/2) % n, (s*7 + 3) % n} {
			if s != d {
				pairs = append(pairs, [2]int32{s, d})
			}
		}
	}

	for _, tc := range []struct {
		name  string
		plane sim.Plane
	}{
		{"stretch6", s6},
		{"exstretch-k2", ex},
		{"polystretch-k2", poly},
		{"rtz", rzp},
		{"hop", hpp},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := make([]*sim.RoundtripTrace, len(pairs))
			for i, p := range pairs {
				tr, err := sim.Roundtrip(tc.plane, p[0], p[1], 0)
				if err != nil {
					t.Fatalf("sequential pair %v: %v", p, err)
				}
				want[i] = tr
			}
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			diffs := make([]string, goroutines)
			for gi := 0; gi < goroutines; gi++ {
				wg.Add(1)
				go func(gi int) {
					defer wg.Done()
					// Each goroutine walks the pair list from its own
					// offset so distinct pairs are in flight at once.
					for k := range pairs {
						i := (k + gi*len(pairs)/goroutines) % len(pairs)
						p := pairs[i]
						tr, err := sim.Roundtrip(tc.plane, p[0], p[1], 0)
						if err != nil {
							errs[gi] = err
							return
						}
						if !samePath(tr.Out.Path, want[i].Out.Path) || !samePath(tr.Back.Path, want[i].Back.Path) {
							diffs[gi] = tc.name
							return
						}
						if tr.Weight() != want[i].Weight() || tr.MaxHeaderWords() != want[i].MaxHeaderWords() {
							diffs[gi] = tc.name
							return
						}
					}
				}(gi)
			}
			wg.Wait()
			for gi := range errs {
				if errs[gi] != nil {
					t.Fatalf("goroutine %d: %v", gi, errs[gi])
				}
				if diffs[gi] != "" {
					t.Fatalf("goroutine %d: concurrent trace diverged from sequential", gi)
				}
			}
		})
	}
}

func samePath(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
