package traffic

import (
	"math"
	"math/rand"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// buildStretchSix builds a small §2 scheme for engine tests.
func buildStretchSix(t testing.TB, n int, seed int64) (*core.StretchSix, *graph.DenseMetric, *names.Permutation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)
	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s6, m, perm
}

func TestCompileValidates(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil plane compiled")
	}
	s6, _, _ := buildStretchSix(t, 32, 1)
	pl, err := Compile(s6)
	if err != nil {
		t.Fatal(err)
	}
	if pl.N() != 32 {
		t.Fatalf("plane N = %d, want 32", pl.N())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	s6, _, _ := buildStretchSix(t, 24, 1)
	pl, err := Compile(s6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(pl, Config{Packets: 0}); err == nil {
		t.Fatal("zero packets accepted")
	}
	if _, err := Run(pl, Config{Packets: 10, Workload: Spec{Kind: "bogus"}}); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestSplitPartition(t *testing.T) {
	for _, c := range []struct {
		total   int64
		workers int
	}{{100, 4}, {101, 4}, {3, 8}, {1, 1}, {7, 3}} {
		qs := SplitQuota(c.total, c.workers)
		var sum int64
		for i, q := range qs {
			sum += q
			if i > 0 && q > qs[i-1] {
				t.Fatalf("split(%d,%d) = %v not front-loaded", c.total, c.workers, qs)
			}
		}
		if sum != c.total {
			t.Fatalf("split(%d,%d) sums to %d", c.total, c.workers, sum)
		}
	}
}

// TestEngineMatchesSequentialReplay is the determinism contract: a
// concurrent engine run must produce exactly the stats a sequential
// replay of the same per-worker pair streams produces through the
// trace-recording sim.Run path.
func TestEngineMatchesSequentialReplay(t *testing.T) {
	const (
		n       = 72
		seed    = 42
		packets = 6000
		workers = 4
	)
	s6, m, _ := buildStretchSix(t, n, seed)
	pl, err := Compile(s6)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Kind: Zipf, ZipfTheta: 0.9}
	res, err := Run(pl, Config{
		Workers: workers, Packets: packets, Workload: spec, Seed: seed, Oracle: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != packets {
		t.Fatalf("served %d packets, want %d", res.Packets, packets)
	}

	// Sequential replay through sim.Run (the full-trace path).
	wl, err := NewWorkload(spec, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	var (
		hops, weight int64
		hopHist      eval.Hist
		hdrHist      eval.Hist
		stretches    []float64
	)
	for w, quota := range SplitQuota(packets, workers) {
		gen := wl.Generator(w)
		for i := int64(0); i < quota; i++ {
			src, dst := gen.Next()
			tr, err := s6.Roundtrip(src, dst)
			if err != nil {
				t.Fatalf("replay worker %d packet %d: %v", w, i, err)
			}
			hops += int64(tr.Hops())
			weight += int64(tr.Weight())
			hopHist.Add(tr.Hops())
			hdrHist.Add(tr.MaxHeaderWords())
			r := m.R(s6.NodeOf(src), s6.NodeOf(dst))
			stretches = append(stretches, float64(tr.Weight())/float64(r))
		}
	}
	if res.Hops != hops || res.Weight != weight {
		t.Fatalf("engine hops/weight %d/%d, replay %d/%d", res.Hops, res.Weight, hops, weight)
	}
	if res.HopHist != hopHist {
		t.Fatalf("hop histograms diverge:\n%s\nvs\n%s", res.HopHist.Format("hops"), hopHist.Format("hops"))
	}
	if res.HdrHist != hdrHist {
		t.Fatalf("header histograms diverge")
	}
	want := eval.QuantilesOf(stretches)
	got := res.Stretch
	for _, pair := range [][2]float64{
		{got.P50, want.P50}, {got.P95, want.P95}, {got.P99, want.P99},
		{got.Max, want.Max}, {got.Mean, want.Mean},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-12 {
			t.Fatalf("stretch quantiles diverge: engine %+v, replay %+v", got, want)
		}
	}
	if got.Max > 6.0000001 {
		t.Fatalf("stretch-6 bound violated under traffic: max %v", got.Max)
	}
}

// TestEngineStatsIndependentOfScheduling runs the same configuration
// twice and demands identical distributions (only Elapsed may differ).
func TestEngineStatsIndependentOfScheduling(t *testing.T) {
	s6, m, _ := buildStretchSix(t, 48, 9)
	pl, err := Compile(s6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Workers: 8, Packets: 4000, Workload: Spec{Kind: Hotspot}, Seed: 9, Oracle: m}
	a, err := Run(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hops != b.Hops || a.Weight != b.Weight || a.HopHist != b.HopHist || a.Stretch != b.Stretch {
		t.Fatal("two identical runs produced different stats")
	}
}

// TestEngineSampling checks the stretch sampling stride records the
// expected subset without touching the full-coverage counters.
func TestEngineSampling(t *testing.T) {
	s6, m, _ := buildStretchSix(t, 32, 3)
	pl, err := Compile(s6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pl, Config{Workers: 3, Packets: 1000, Seed: 3, Oracle: m, SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 1000 {
		t.Fatalf("packets %d", res.Packets)
	}
	// Workers serve 334/333/333 packets: ceil each /10 = 34+34+34.
	if res.Sampled != 102 {
		t.Fatalf("sampled %d, want 102", res.Sampled)
	}
	if res.HopHist.N != 1000 {
		t.Fatalf("hop histogram covers %d packets, want all 1000", res.HopHist.N)
	}
}

// TestEngineServesSubstratePlanes drives traffic through the RTZ and Hop
// substrate adapters and sanity-checks their stretch.
func TestEngineServesSubstratePlanes(t *testing.T) {
	const n, seed = 48, 7
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 6, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)

	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRTZPlane(sub, perm)
	if err != nil {
		t.Fatal(err)
	}
	hop, err := rtz.NewHop(g, m, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewHopPlane(hop, perm)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name  string
		plane sim.Plane
		bound float64
	}{
		{"rtz", rp, 3.0000001},
		// The hop substrate's roundtrip-via-root bound is looser; just
		// require it finite and positive.
		{"hop", hp, math.Inf(1)},
	} {
		pl, err := Compile(tc.plane)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := Run(pl, Config{Workers: 4, Packets: 3000, Workload: Spec{Kind: RPC}, Seed: seed, Oracle: m})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Packets != 3000 {
			t.Fatalf("%s: served %d", tc.name, res.Packets)
		}
		if res.Stretch.Max > tc.bound {
			t.Fatalf("%s: max stretch %v above bound %v", tc.name, res.Stretch.Max, tc.bound)
		}
		if res.Stretch.P50 < 1 {
			t.Fatalf("%s: p50 stretch %v below 1", tc.name, res.Stretch.P50)
		}
	}
}
