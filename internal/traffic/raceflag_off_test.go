//go:build !race

package traffic

const raceEnabled = false
