package traffic

import (
	"fmt"

	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// Plane is a compiled forwarding plane: a sim.Plane certified for
// concurrent service. Compile seals the graph's CSR index eagerly and
// probes one roundtrip so a misconfigured plane fails at compile time,
// not packet 731,204 of a run.
type Plane struct {
	sim.Plane
	n int
}

// N returns the size of the plane's name universe.
func (p *Plane) N() int { return p.n }

// flattenable is implemented by wrappers (core.Deployment) whose
// per-hop dispatch provably reduces to an inner plane; Compile
// substitutes the inner plane so serving pays no indirection tax.
type flattenable interface {
	Flatten() sim.Plane
}

// Compile freezes a forwarding surface for concurrent service. The
// returned plane shares the scheme's tables — compilation adds no copy;
// its guarantee is that everything the hot path touches (tables, CSR
// port index) is fully built and read-only before the first worker
// starts, so the engine's goroutines forward with zero locks. Wrapper
// planes that can prove an indirection-free equivalent (a Deployment's
// per-node routers all delegate to one assembled scheme) are flattened
// here, at compile time, rather than on every hop.
func Compile(p sim.Plane) (*Plane, error) {
	if p == nil {
		return nil, fmt.Errorf("traffic: nil plane")
	}
	for {
		f, ok := p.(flattenable)
		if !ok {
			break
		}
		inner := f.Flatten()
		if inner == nil || inner == p {
			break
		}
		p = inner
	}
	g := p.Graph()
	if g == nil {
		return nil, fmt.Errorf("traffic: plane has no graph")
	}
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("traffic: plane needs at least 2 nodes, got %d", n)
	}
	g.Seal()
	// Probe one roundtrip between two arbitrary names; names are a
	// permutation of {0..n-1}, so 0 and 1 always exist.
	if _, _, err := sim.RoundtripFlight(p, 0, 1, 0); err != nil {
		return nil, fmt.Errorf("traffic: compile probe: %w", err)
	}
	return &Plane{Plane: p, n: n}, nil
}

// rtzHeader carries one roundtrip over the stretch-3 substrate: the leg
// header plus the source's address R3(s) learned at injection, so the
// return leg routes with node-local state only (§1.1.1's reply rule).
type rtzHeader struct {
	srcName, dstName int32
	srcLabel         rtz.Label
	leg              rtz.Header
}

// Words implements sim.Header.
func (h *rtzHeader) Words() int { return 2 + h.srcLabel.Words() + h.leg.Words() }

// FixedWords implements sim.FixedSizeHeader: the leg is only rewritten
// between legs (NewHeader/ResetHeader/BeginReturn), and forwarding
// mutates nothing but the leg's phase, so the size is leg-invariant and
// the runners need not re-measure it on every hop.
func (h *rtzHeader) FixedWords() bool { return true }

// RTZPlane adapts the name-dependent RTZ stretch-3 substrate to the
// sim.Plane contract, so the traffic engine can serve it as a baseline
// next to the TINN schemes. The adapter resolves a destination name to
// its address R3 at header-creation time — modeling a source that was
// handed the address out of band, which is exactly the name-dependent
// model's assumption.
type RTZPlane struct {
	sub  *rtz.Scheme
	perm *names.Permutation
}

// NewRTZPlane wraps a built substrate with a naming.
func NewRTZPlane(sub *rtz.Scheme, perm *names.Permutation) (*RTZPlane, error) {
	if perm.N() != sub.Graph().N() {
		return nil, fmt.Errorf("traffic: naming covers %d nodes, substrate has %d", perm.N(), sub.Graph().N())
	}
	return &RTZPlane{sub: sub, perm: perm}, nil
}

// Substrate returns the wrapped stretch-3 scheme (the wire codec's
// decomposition hook).
func (p *RTZPlane) Substrate() *rtz.Scheme { return p.sub }

// Naming returns the plane's name permutation.
func (p *RTZPlane) Naming() *names.Permutation { return p.perm }

// NewHeader implements sim.Plane.
func (p *RTZPlane) NewHeader(srcName, dstName int32) (sim.Header, error) {
	if err := checkName(p.perm, srcName); err != nil {
		return nil, err
	}
	if err := checkName(p.perm, dstName); err != nil {
		return nil, err
	}
	src := graph.NodeID(p.perm.Node(srcName))
	dst := graph.NodeID(p.perm.Node(dstName))
	return &rtzHeader{
		srcName:  srcName,
		dstName:  dstName,
		srcLabel: p.sub.LabelOf(src),
		leg:      rtz.Header{Dest: dst, Label: p.sub.LabelOf(dst), Phase: rtz.PhaseSeek},
	}, nil
}

// ResetHeader implements sim.Plane: re-arm an earlier header for a new
// roundtrip in place. The labels are copied from the substrate's tables,
// so the reset allocates nothing.
func (p *RTZPlane) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*rtzHeader)
	if !ok {
		return fmt.Errorf("traffic: rtz plane got %T header", h)
	}
	if err := checkName(p.perm, srcName); err != nil {
		return err
	}
	if err := checkName(p.perm, dstName); err != nil {
		return err
	}
	src := graph.NodeID(p.perm.Node(srcName))
	dst := graph.NodeID(p.perm.Node(dstName))
	hh.srcName, hh.dstName = srcName, dstName
	hh.srcLabel = p.sub.LabelOf(src)
	hh.leg = rtz.Header{Dest: dst, Label: p.sub.LabelOf(dst), Phase: rtz.PhaseSeek}
	return nil
}

// BeginReturn implements sim.Plane.
func (p *RTZPlane) BeginReturn(h sim.Header) error {
	hh, ok := h.(*rtzHeader)
	if !ok {
		return fmt.Errorf("traffic: rtz plane got %T header", h)
	}
	hh.leg = rtz.Header{Dest: hh.srcLabel.Node, Label: hh.srcLabel, Phase: rtz.PhaseSeek}
	return nil
}

// Forward implements sim.Forwarder: pure delegation to the substrate's
// node-local forwarding function.
func (p *RTZPlane) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	hh, ok := h.(*rtzHeader)
	if !ok {
		return 0, false, fmt.Errorf("traffic: rtz plane got %T header", h)
	}
	return rtz.Forward(p.sub.Tables[at], &hh.leg)
}

// NodeOf implements sim.Plane.
func (p *RTZPlane) NodeOf(name int32) graph.NodeID { return graph.NodeID(p.perm.Node(name)) }

// Graph implements sim.Plane.
func (p *RTZPlane) Graph() *graph.Graph { return p.sub.Graph() }

var _ sim.Plane = (*RTZPlane)(nil)

// hopHeader carries one roundtrip over the hop substrate: the handshake
// R2(s,t) resolved at injection, and the live leg within its tree.
type hopHeader struct {
	hs  rtz.Handshake
	leg rtz.HopHeader
}

// Words implements sim.Header.
func (h *hopHeader) Words() int { return h.hs.Words() + h.leg.Words() }

// FixedWords implements sim.FixedSizeHeader: forwarding only flips the
// leg's Descending bit, so the size is leg-invariant.
func (h *hopHeader) FixedWords() bool { return true }

// HopPlane adapts the Lemma 5 double-tree-cover substrate ("Hop") to the
// sim.Plane contract: each roundtrip runs out and back inside the
// handshake's most convenient shared tree.
type HopPlane struct {
	hop  *rtz.HopScheme
	perm *names.Permutation
}

// NewHopPlane wraps a built hop substrate with a naming.
func NewHopPlane(hop *rtz.HopScheme, perm *names.Permutation) (*HopPlane, error) {
	if perm.N() != hop.Graph().N() {
		return nil, fmt.Errorf("traffic: naming covers %d nodes, substrate has %d", perm.N(), hop.Graph().N())
	}
	return &HopPlane{hop: hop, perm: perm}, nil
}

// Substrate returns the wrapped hop scheme (the wire codec's
// decomposition hook).
func (p *HopPlane) Substrate() *rtz.HopScheme { return p.hop }

// Naming returns the plane's name permutation.
func (p *HopPlane) Naming() *names.Permutation { return p.perm }

// NewHeader implements sim.Plane: it resolves the handshake R2(s,t) —
// the pairwise state §3.3's dictionary would have stored — and arms the
// outbound leg toward t's label in the shared tree.
func (p *HopPlane) NewHeader(srcName, dstName int32) (sim.Header, error) {
	if err := checkName(p.perm, srcName); err != nil {
		return nil, err
	}
	if err := checkName(p.perm, dstName); err != nil {
		return nil, err
	}
	u := graph.NodeID(p.perm.Node(srcName))
	v := graph.NodeID(p.perm.Node(dstName))
	hs, _, err := p.hop.R2(u, v)
	if err != nil {
		return nil, fmt.Errorf("traffic: handshake (%d,%d): %w", srcName, dstName, err)
	}
	return &hopHeader{hs: hs, leg: rtz.HopHeader{Ref: hs.Ref, Target: hs.VLabel}}, nil
}

// ResetHeader implements sim.Plane: resolve the new pair's handshake and
// re-arm the header in place.
func (p *HopPlane) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*hopHeader)
	if !ok {
		return fmt.Errorf("traffic: hop plane got %T header", h)
	}
	if err := checkName(p.perm, srcName); err != nil {
		return err
	}
	if err := checkName(p.perm, dstName); err != nil {
		return err
	}
	u := graph.NodeID(p.perm.Node(srcName))
	v := graph.NodeID(p.perm.Node(dstName))
	hs, _, err := p.hop.R2(u, v)
	if err != nil {
		return fmt.Errorf("traffic: handshake (%d,%d): %w", srcName, dstName, err)
	}
	hh.hs = hs
	hh.leg = rtz.HopHeader{Ref: hs.Ref, Target: hs.VLabel}
	return nil
}

// BeginReturn implements sim.Plane: rewind the leg toward the source's
// label in the same tree.
func (p *HopPlane) BeginReturn(h sim.Header) error {
	hh, ok := h.(*hopHeader)
	if !ok {
		return fmt.Errorf("traffic: hop plane got %T header", h)
	}
	hh.leg = rtz.HopHeader{Ref: hh.hs.Ref, Target: hh.hs.ULabel}
	return nil
}

// Forward implements sim.Forwarder.
func (p *HopPlane) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	hh, ok := h.(*hopHeader)
	if !ok {
		return 0, false, fmt.Errorf("traffic: hop plane got %T header", h)
	}
	return rtz.ForwardHop(p.hop.Tables[at], &hh.leg)
}

// NodeOf implements sim.Plane.
func (p *HopPlane) NodeOf(name int32) graph.NodeID { return graph.NodeID(p.perm.Node(name)) }

// Graph implements sim.Plane.
func (p *HopPlane) Graph() *graph.Graph { return p.hop.Graph() }

var _ sim.Plane = (*HopPlane)(nil)

func checkName(perm *names.Permutation, name int32) error {
	if name < 0 || int(name) >= perm.N() {
		return fmt.Errorf("traffic: name %d outside [0,%d)", name, perm.N())
	}
	return nil
}
