package eval

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Percentile returns the q-th percentile (0 <= q <= 100) of an ascending
// sorted slice using the nearest-rank definition: the smallest element
// such that at least q% of the samples are <= it. This is the single
// quantile implementation shared by the stretch tables, the distance
// profiles and the traffic engine's serving stats.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(float64(len(sorted))*q/100)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Quantiles aggregates one sample set's distribution summary: the
// p50/p95/p99/max ladder every serving report quotes.
type Quantiles struct {
	N    int
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

// QuantilesOf summarizes the samples. The input is sorted in place.
func QuantilesOf(xs []float64) Quantiles {
	var q Quantiles
	q.N = len(xs)
	if q.N == 0 {
		return q
	}
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	q.Mean = sum / float64(q.N)
	q.P50 = Percentile(xs, 50)
	q.P95 = Percentile(xs, 95)
	q.P99 = Percentile(xs, 99)
	q.Max = xs[q.N-1]
	return q
}

// QuantileCuts splits n ascending-sorted samples into k near-equal-count
// buckets, returning [lo, hi) index ranges. Empty ranges are dropped, so
// the result may hold fewer than k buckets when n < k.
func QuantileCuts(n, k int) [][2]int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	cuts := make([][2]int, 0, k)
	for b := 0; b < k; b++ {
		lo := b * n / k
		hi := (b + 1) * n / k
		if lo < hi {
			cuts = append(cuts, [2]int{lo, hi})
		}
	}
	return cuts
}

// Hist is a compact power-of-two histogram over non-negative integers:
// bucket 0 counts the value 0 and bucket i >= 1 counts values in
// [2^(i-1), 2^i). Merging is bucket-wise addition, so per-worker shards
// fold into an aggregate without locks or atomics.
type Hist struct {
	Buckets [34]int64
	N       int64
	Sum     int64
	MaxV    int64
}

// Add records one value. Negative values are clamped to 0; values at or
// above 2^33 land in the top bucket (Sum/MaxV stay exact).
func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
	h.N++
	h.Sum += int64(v)
	if int64(v) > h.MaxV {
		h.MaxV = int64(v)
	}
}

// Merge folds another histogram into this one.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.N += o.N
	h.Sum += o.Sum
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
}

// Mean returns the average recorded value.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an approximate q-quantile (0 < q <= 1) of the
// recorded values: the midpoint of the power-of-two bucket containing
// the nearest-rank sample. Resolution is the bucket width — good
// enough for the stage-timing tables, exact for hop counts that fit
// one bucket.
func (h *Hist) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	rank := int64(q * float64(h.N))
	if rank < 1 {
		rank = 1
	}
	if rank > h.N {
		rank = h.N
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen >= rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo)/2
			if mid > h.MaxV {
				mid = h.MaxV
			}
			return mid
		}
	}
	return h.MaxV
}

// bucketBounds returns the [lo, hi] value range of bucket i.
func bucketBounds(i int) (int64, int64) {
	if i == 0 {
		return 0, 0
	}
	return int64(1) << (i - 1), int64(1)<<i - 1
}

// Format renders the non-empty buckets as an aligned table with share
// bars, labeling the value column with unit.
func (h *Hist) Format(unit string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %7s\n", unit, "count", "share")
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		share := float64(c) / float64(h.N)
		bar := strings.Repeat("#", int(share*40+0.5))
		if lo == hi {
			fmt.Fprintf(&b, "%-16d %12d %6.1f%% %s\n", lo, c, 100*share, bar)
		} else {
			fmt.Fprintf(&b, "%6d-%-9d %12d %6.1f%% %s\n", lo, hi, c, 100*share, bar)
		}
	}
	fmt.Fprintf(&b, "mean %.2f  max %d  n %d\n", h.Mean(), h.MaxV, h.N)
	return b.String()
}
