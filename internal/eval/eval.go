// Package eval is the experiment harness: it measures stretch
// distributions, table sizes and header growth for every scheme and
// regenerates the paper's Fig. 1 comparison table (experiment E1) and the
// space-accounting sweeps (E9).
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
)

// RoundtripFunc routes one roundtrip between two NAMES.
type RoundtripFunc func(srcName, dstName int32) (*sim.RoundtripTrace, error)

// StretchStats aggregates measured roundtrip stretch over a pair set.
type StretchStats struct {
	Pairs          int
	Max            float64
	Mean           float64
	P99            float64
	MaxHeaderWords int
}

// Pairs enumerates ordered node pairs: all of them when n*(n-1) <= limit,
// otherwise a uniform sample of size limit.
func Pairs(n, limit int, rng *rand.Rand) [][2]graph.NodeID {
	var out [][2]graph.NodeID
	if n*(n-1) <= limit {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					out = append(out, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
				}
			}
		}
		return out
	}
	for len(out) < limit {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			out = append(out, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
		}
	}
	return out
}

// measureStretch drives route over the pairs and accumulates the
// statistics shared by MeasureRoundtrips and MeasureFlights: route
// returns one roundtrip's total weight and peak header words.
func measureStretch(m graph.DistanceOracle, pairs [][2]graph.NodeID,
	route func(u, v graph.NodeID) (graph.Dist, int, error)) (StretchStats, error) {
	var stats StretchStats
	stretches := make([]float64, 0, len(pairs))
	var sum float64
	for _, p := range pairs {
		weight, headerWords, err := route(p[0], p[1])
		if err != nil {
			return stats, fmt.Errorf("eval: pair (%d,%d): %w", p[0], p[1], err)
		}
		r := m.R(p[0], p[1])
		if r <= 0 {
			return stats, fmt.Errorf("eval: degenerate roundtrip distance for (%d,%d)", p[0], p[1])
		}
		s := float64(weight) / float64(r)
		stretches = append(stretches, s)
		sum += s
		if s > stats.Max {
			stats.Max = s
		}
		if headerWords > stats.MaxHeaderWords {
			stats.MaxHeaderWords = headerWords
		}
	}
	stats.Pairs = len(pairs)
	if len(stretches) > 0 {
		stats.Mean = sum / float64(len(stretches))
		sort.Float64s(stretches)
		stats.P99 = Percentile(stretches, 99)
	}
	return stats, nil
}

// MeasureRoundtrips drives the given roundtrip function over the pairs
// and reports stretch statistics against the metric.
func MeasureRoundtrips(m graph.DistanceOracle, perm *names.Permutation, rt RoundtripFunc, pairs [][2]graph.NodeID) (StretchStats, error) {
	return measureStretch(m, pairs, func(u, v graph.NodeID) (graph.Dist, int, error) {
		trace, err := rt(perm.Name(int32(u)), perm.Name(int32(v)))
		if err != nil {
			return 0, 0, err
		}
		return trace.Weight(), trace.MaxHeaderWords(), nil
	})
}

// MeasureFlights is MeasureRoundtrips on the allocation-lean runner: it
// drives the pairs through the plane with one reused header and no
// per-hop path recording (the traffic engine's hot-path discipline), so
// measuring a large pair set costs O(1) headers instead of one trace per
// pair. Routes — and therefore every reported statistic — are identical
// to MeasureRoundtrips over the scheme's Roundtrip.
func MeasureFlights(m graph.DistanceOracle, perm *names.Permutation, p sim.Plane, pairs [][2]graph.NodeID) (StretchStats, error) {
	var hdr sim.Header
	return measureStretch(m, pairs, func(u, v graph.NodeID) (graph.Dist, int, error) {
		var out, back sim.Flight
		var err error
		out, back, hdr, err = sim.RoundtripFlightReusing(p, hdr, perm.Name(int32(u)), perm.Name(int32(v)), 0)
		if err != nil {
			return 0, 0, err
		}
		hw := out.MaxHeaderWords
		if back.MaxHeaderWords > hw {
			hw = back.MaxHeaderWords
		}
		return out.Weight + back.Weight, hw, nil
	})
}

// Row is one line of the Fig. 1 comparison table, augmented with
// measured values.
type Row struct {
	Scheme          string
	TableSizeForm   string
	Roundtrip       bool
	NameIndependent bool
	StretchBound    string
	Measured        StretchStats
	MaxTableWords   int
	AvgTableWords   float64
	BuildTime       time.Duration
}

// Fig1Config parameterizes the Fig. 1 regeneration.
type Fig1Config struct {
	N          int
	ExtraEdges int
	MaxWeight  graph.Dist
	Seed       int64
	PairLimit  int
	Ks         []int // tradeoff parameters for ExStretch/Poly rows
	// Lazy builds and measures every scheme through the bounded lazy
	// oracle instead of the dense matrix. Outputs are identical; peak
	// memory drops from n^2 words to LazyCacheRows·n.
	Lazy          bool
	LazyCacheRows int
}

func (c *Fig1Config) fill() {
	if c.N == 0 {
		c.N = 64
	}
	if c.ExtraEdges == 0 {
		c.ExtraEdges = 4 * c.N
	}
	if c.MaxWeight == 0 {
		c.MaxWeight = 8
	}
	if c.PairLimit == 0 {
		c.PairLimit = 4000
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{3}
	}
}

// Fig1 builds every scheme on one random strongly connected digraph and
// measures them over a shared pair set — the empirical analogue of the
// paper's comparison table.
func Fig1(cfg Fig1Config) ([]Row, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.RandomSC(cfg.N, cfg.ExtraEdges, cfg.MaxWeight, rng)
	var m graph.DistanceOracle
	if cfg.Lazy {
		m = graph.NewLazyOracle(g, cfg.LazyCacheRows)
	} else {
		m = graph.AllPairs(g)
	}
	perm := names.Random(cfg.N, rng)
	pairs := Pairs(cfg.N, cfg.PairLimit, rng)
	var rows []Row

	// Baseline: the name-dependent RTZ substrate ([35]'s role).
	start := time.Now()
	sub, err := rtz.New(g, m, rng, rtz.Config{})
	if err != nil {
		return nil, err
	}
	buildRTZ := time.Since(start)
	rtzRoundtrip := func(srcName, dstName int32) (*sim.RoundtripTrace, error) {
		src := graph.NodeID(perm.Node(srcName))
		dst := graph.NodeID(perm.Node(dstName))
		outW, outH, err := sub.Route(src, sub.LabelOf(dst))
		if err != nil {
			return nil, err
		}
		backW, backH, err := sub.Route(dst, sub.LabelOf(src))
		if err != nil {
			return nil, err
		}
		return &sim.RoundtripTrace{
			Out:  &sim.Trace{Weight: outW, Hops: outH, Path: []graph.NodeID{dst}},
			Back: &sim.Trace{Weight: backW, Hops: backH, Path: []graph.NodeID{src}},
		}, nil
	}
	st, err := MeasureRoundtrips(m, perm, rtzRoundtrip, pairs)
	if err != nil {
		return nil, fmt.Errorf("eval: rtz baseline: %w", err)
	}
	rows = append(rows, Row{
		Scheme: "rtz-stretch3 [35]", TableSizeForm: "O~(n^1/2)",
		Roundtrip: true, NameIndependent: false, StretchBound: "3",
		Measured: st, MaxTableWords: sub.MaxTableWords(), AvgTableWords: sub.AvgTableWords(),
		BuildTime: buildRTZ,
	})

	// This paper, stretch 6.
	start = time.Now()
	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		return nil, err
	}
	build6 := time.Since(start)
	st, err = MeasureRoundtrips(m, perm, s6.Roundtrip, pairs)
	if err != nil {
		return nil, fmt.Errorf("eval: stretch6: %w", err)
	}
	rows = append(rows, Row{
		Scheme: "stretch6 (this paper §2)", TableSizeForm: "O~(n^1/2)",
		Roundtrip: true, NameIndependent: true, StretchBound: "6",
		Measured: st, MaxTableWords: s6.MaxTableWords(), AvgTableWords: s6.AvgTableWords(),
		BuildTime: build6,
	})

	for _, k := range cfg.Ks {
		start = time.Now()
		ex, err := core.NewExStretch(g, m, perm, rng, core.ExStretchConfig{K: k})
		if err != nil {
			return nil, err
		}
		buildEx := time.Since(start)
		st, err = MeasureRoundtrips(m, perm, ex.Roundtrip, pairs)
		if err != nil {
			return nil, fmt.Errorf("eval: exstretch k=%d: %w", k, err)
		}
		rows = append(rows, Row{
			Scheme:        fmt.Sprintf("exstretch k=%d (this paper §3)", k),
			TableSizeForm: fmt.Sprintf("O~(n^1/%d)", k),
			Roundtrip:     true, NameIndependent: true,
			StretchBound: fmt.Sprintf("(2^%d-1)(4k-2+eps)", k),
			Measured:     st, MaxTableWords: ex.MaxTableWords(), AvgTableWords: ex.AvgTableWords(),
			BuildTime: buildEx,
		})

		start = time.Now()
		poly, err := core.NewPolynomialStretch(g, m, perm, core.PolyConfig{K: k})
		if err != nil {
			return nil, err
		}
		buildPoly := time.Since(start)
		st, err = MeasureRoundtrips(m, perm, poly.Roundtrip, pairs)
		if err != nil {
			return nil, fmt.Errorf("eval: polystretch k=%d: %w", k, err)
		}
		rows = append(rows, Row{
			Scheme:        fmt.Sprintf("polystretch k=%d (this paper §4)", k),
			TableSizeForm: fmt.Sprintf("O~(k^2 n^2/%d logD)", k),
			Roundtrip:     true, NameIndependent: true,
			StretchBound: fmt.Sprintf("%d", 8*k*k+4*k-4),
			Measured:     st, MaxTableWords: poly.MaxTableWords(), AvgTableWords: poly.AvgTableWords(),
			BuildTime: buildPoly,
		})
	}
	return rows, nil
}

// FormatRows renders rows as an aligned text table.
func FormatRows(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-30s %-20s %-3s %-4s %-22s %8s %8s %8s %10s %10s\n",
		"scheme", "table size", "rt", "tinn", "stretch bound", "maxS", "meanS", "p99S", "maxTblW", "avgTblW")
	for _, r := range rows {
		rt, ni := "n", "n"
		if r.Roundtrip {
			rt = "y"
		}
		if r.NameIndependent {
			ni = "y"
		}
		fmt.Fprintf(&b, "%-30s %-20s %-3s %-4s %-22s %8.3f %8.3f %8.3f %10d %10.1f\n",
			r.Scheme, r.TableSizeForm, rt, ni, r.StretchBound,
			r.Measured.Max, r.Measured.Mean, r.Measured.P99,
			r.MaxTableWords, r.AvgTableWords)
	}
	return b.String()
}

// SpacePoint is one (n, table-size) sample of the E9 space sweep.
type SpacePoint struct {
	N             int
	Scheme        string
	MaxTableWords int
	AvgTableWords float64
}

// SpaceSweep measures table sizes of the stretch-6 scheme across graph
// sizes, demonstrating the O~(sqrt n) scaling.
func SpaceSweep(ns []int, seed int64) ([]SpacePoint, error) {
	var pts []SpacePoint
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed + int64(n)))
		g := graph.RandomSC(n, 4*n, 8, rng)
		m := graph.AllPairs(g)
		perm := names.Random(n, rng)
		s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
		if err != nil {
			return nil, fmt.Errorf("eval: space sweep n=%d: %w", n, err)
		}
		pts = append(pts, SpacePoint{
			N: n, Scheme: "stretch6",
			MaxTableWords: s6.MaxTableWords(), AvgTableWords: s6.AvgTableWords(),
		})
	}
	return pts, nil
}

// FormatSpacePoints renders a space sweep as text.
func FormatSpacePoints(pts []SpacePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-12s %12s %12s %14s\n", "n", "scheme", "maxTblWords", "avgTblWords", "avg/sqrt(n)")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-10d %-12s %12d %12.1f %14.2f\n",
			p.N, p.Scheme, p.MaxTableWords, p.AvgTableWords,
			p.AvgTableWords/math.Sqrt(float64(p.N)))
	}
	return b.String()
}
