package eval

import (
	"math/rand"
	"strings"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

func TestProfileByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomSC(40, 160, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := Pairs(g.N(), 2000, rng)
	buckets, err := ProfileByDistance(m, perm, s6.Roundtrip, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets, want 4", len(buckets))
	}
	total := 0
	for i, b := range buckets {
		total += b.Pairs
		if b.MeanStretch < 1 || b.MaxStretch > 6 {
			t.Fatalf("bucket %d implausible: %+v", i, b)
		}
		if b.RMin > b.RMax {
			t.Fatalf("bucket %d range inverted: %+v", i, b)
		}
		if i > 0 && b.RMin < buckets[i-1].RMin {
			t.Fatalf("buckets not sorted by distance")
		}
	}
	if total != len(pairs) {
		t.Fatalf("buckets cover %d pairs, want %d", total, len(pairs))
	}
	out := FormatProfile(buckets)
	if !strings.Contains(out, "r(s,t) range") {
		t.Fatalf("formatted profile missing header:\n%s", out)
	}
}

func TestProfileBucketClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomSC(10, 40, 3, rng)
	m := graph.AllPairs(g)
	perm := names.Identity(g.N())
	s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := Pairs(g.N(), 5, rng)
	// More buckets than pairs: must clamp, not crash.
	buckets, err := ProfileByDistance(m, perm, s6.Roundtrip, pairs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) == 0 || len(buckets) > 5 {
		t.Fatalf("bucket clamping broken: %d buckets for 5 pairs", len(buckets))
	}
	// Zero buckets requested: default applies.
	if _, err := ProfileByDistance(m, perm, s6.Roundtrip, pairs, 0); err != nil {
		t.Fatal(err)
	}
}
