package eval

import (
	"math/rand"
	"testing"
)

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {99, 10}, {100, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Errorf("Percentile(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
}

func TestQuantilesOf(t *testing.T) {
	// Shuffled 1..100: every percentile is exact.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	q := QuantilesOf(xs)
	if q.N != 100 || q.P50 != 50 || q.P95 != 95 || q.P99 != 99 || q.Max != 100 {
		t.Fatalf("quantiles %+v wrong", q)
	}
	if q.Mean != 50.5 {
		t.Fatalf("mean %v, want 50.5", q.Mean)
	}
}

func TestQuantileCuts(t *testing.T) {
	cuts := QuantileCuts(10, 4)
	if len(cuts) != 4 {
		t.Fatalf("got %d cuts, want 4", len(cuts))
	}
	covered := 0
	prev := 0
	for _, c := range cuts {
		if c[0] != prev {
			t.Fatalf("cuts %v not contiguous", cuts)
		}
		covered += c[1] - c[0]
		prev = c[1]
	}
	if covered != 10 {
		t.Fatalf("cuts cover %d of 10", covered)
	}
	// More buckets than samples: one bucket per sample, none empty.
	if got := len(QuantileCuts(3, 8)); got != 3 {
		t.Fatalf("QuantileCuts(3, 8) yields %d buckets, want 3", got)
	}
}

func TestHistAddMergeBuckets(t *testing.T) {
	var a, b Hist
	a.Add(0)
	a.Add(1)
	a.Add(7)
	b.Add(8)
	b.Add(100)
	a.Merge(&b)
	if a.N != 5 || a.MaxV != 100 || a.Sum != 116 {
		t.Fatalf("merged hist N=%d MaxV=%d Sum=%d", a.N, a.MaxV, a.Sum)
	}
	// 0 -> bucket 0; 1 -> bucket 1; 7 -> bucket 3 [4,7]; 8 -> bucket 4
	// [8,15]; 100 -> bucket 7 [64,127].
	for i, want := range map[int]int64{0: 1, 1: 1, 3: 1, 4: 1, 7: 1} {
		if a.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, a.Buckets[i], want)
		}
	}
	if s := a.Format("v"); s == "" {
		t.Fatal("empty format")
	}
}
