package eval

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"rtroute/internal/blocks"
	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/wire"
)

// EncodedSpacePoint is one sample of the E14 empirical space
// certification: per-node routing state measured through the wire codec
// — real bytes and real entry counts, not abstract words.
type EncodedSpacePoint struct {
	N          int
	Scheme     string
	MaxBytes   int     // largest node's encoded LocalState
	AvgBytes   float64 // mean encoded LocalState
	AvgEntries float64 // mean table entries per node (dictionary + substrate)
}

// EncodedSpaceConfig tunes EncodedSpaceSweep.
type EncodedSpaceConfig struct {
	// Ns are the graph sizes to sample (default 256, 1024, 4096).
	Ns []int
	// Seed drives graph generation, naming and construction.
	Seed int64
	// Lazy builds through the bounded lazy oracle (default when any
	// n >= 2048, so the sweep never materializes an n^2 matrix).
	Lazy bool
	// LazyCacheRows bounds the lazy oracle's cache (<= 0 = default).
	LazyCacheRows int
}

// EncodedSpaceSweep builds the stretch-6 scheme across graph sizes and
// measures every node's LocalState through the wire codec. The paper's
// Theorem 6 claims Õ(sqrt n) per-node tables: entries grow as sqrt n
// (times the Lemma 1 assignment's residual log factor) while each entry
// — an o(log^2 n)-bit R3 label — widens with log n, so the entry-count
// exponent is the sqrt-n certification and the byte exponent sits one
// log-width above it. The sweep uses the deterministic greedy block
// assignment (blocks.Config.Greedy): the Lemma is existential, so the
// space bound is measured on the leanest verifying assignment.
func EncodedSpaceSweep(cfg EncodedSpaceConfig) ([]EncodedSpacePoint, error) {
	ns := cfg.Ns
	if len(ns) == 0 {
		ns = []int{256, 1024, 4096}
	}
	var pts []EncodedSpacePoint
	for _, n := range ns {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		g := graph.RandomSC(n, 4*n, 8, rng)
		var m graph.DistanceOracle
		if cfg.Lazy || n >= 2048 {
			m = graph.NewLazyOracle(g, cfg.LazyCacheRows)
		} else {
			m = graph.AllPairs(g)
		}
		perm := names.Random(n, rng)
		s6, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{
			Blocks: blocks.Config{Greedy: true},
		})
		if err != nil {
			return nil, fmt.Errorf("eval: encoded space sweep n=%d: %w", n, err)
		}
		sizes, err := wire.NodeSizes(s6)
		if err != nil {
			return nil, fmt.Errorf("eval: encoded space sweep n=%d: %w", n, err)
		}
		_, locals, err := core.Decompose(s6)
		if err != nil {
			return nil, fmt.Errorf("eval: encoded space sweep n=%d: %w", n, err)
		}
		pt := EncodedSpacePoint{N: n, Scheme: "stretch6"}
		totalBytes, totalEntries := 0, 0
		for v, b := range sizes {
			totalBytes += b
			if b > pt.MaxBytes {
				pt.MaxBytes = b
			}
			l := locals[v].S6
			totalEntries += len(l.Entries) + len(l.BlockHolder) +
				len(l.Tab3.InPorts) + len(l.Tab3.Direct)
		}
		pt.AvgBytes = float64(totalBytes) / float64(len(sizes))
		pt.AvgEntries = float64(totalEntries) / float64(len(sizes))
		pts = append(pts, pt)
	}
	return pts, nil
}

// loglogSlope is the least-squares slope of log(y) against log(N).
func loglogSlope(pts []EncodedSpacePoint, y func(EncodedSpacePoint) float64) float64 {
	if len(pts) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		xv, yv := math.Log(float64(p.N)), math.Log(y(p))
		sx += xv
		sy += yv
		sxx += xv * xv
		sxy += xv * yv
	}
	n := float64(len(pts))
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// EncodedSpaceSlope returns the growth exponent of encoded bytes per
// node: the entry-count exponent plus the log-width of each entry.
func EncodedSpaceSlope(pts []EncodedSpacePoint) float64 {
	return loglogSlope(pts, func(p EncodedSpacePoint) float64 { return p.AvgBytes })
}

// EncodedEntriesSlope returns the growth exponent of table entries per
// node — the paper's Õ(sqrt n) claim with the polylog entry width
// factored out (expect ~0.5-0.65 at these sizes).
func EncodedEntriesSlope(pts []EncodedSpacePoint) float64 {
	return loglogSlope(pts, func(p EncodedSpacePoint) float64 { return p.AvgEntries })
}

// FormatEncodedSpace renders the sweep with both fitted exponents.
func FormatEncodedSpace(pts []EncodedSpacePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %14s %14s %14s %12s\n",
		"n", "scheme", "maxBytes/node", "avgBytes/node", "entries/node", "bytes/entry")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-8d %-10s %14d %14.1f %14.1f %12.1f\n",
			p.N, p.Scheme, p.MaxBytes, p.AvgBytes, p.AvgEntries, p.AvgBytes/p.AvgEntries)
	}
	fmt.Fprintf(&b, "log-log slope, entries/node vs n: %.3f (Theorem 6's O~(sqrt n) table entries)\n",
		EncodedEntriesSlope(pts))
	fmt.Fprintf(&b, "log-log slope, bytes/node   vs n: %.3f (entries exponent + log-width of each o(log^2 n)-bit label)\n",
		EncodedSpaceSlope(pts))
	return b.String()
}
