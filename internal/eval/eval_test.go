package eval

import (
	"math/rand"
	"strings"
	"testing"

	"rtroute/internal/graph"
)

func TestPairsExhaustiveWhenSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pairs := Pairs(5, 1000, rng)
	if len(pairs) != 20 {
		t.Fatalf("got %d pairs, want 20", len(pairs))
	}
	seen := map[[2]graph.NodeID]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair emitted")
		}
		if seen[p] {
			t.Fatal("duplicate pair in exhaustive enumeration")
		}
		seen[p] = true
	}
}

func TestPairsSampledWhenLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairs := Pairs(100, 50, rng)
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs, want 50", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("self pair sampled")
		}
	}
}

// TestFig1Regeneration is experiment E1: all rows build, every measured
// stretch respects its theoretical bound, and the TINN schemes' tables
// stay sublinear.
func TestFig1Regeneration(t *testing.T) {
	rows, err := Fig1(Fig1Config{N: 36, Seed: 3, Ks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // rtz, stretch6, exstretch k=2, poly k=2
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	bounds := map[string]float64{
		"rtz-stretch3 [35]":               3,
		"stretch6 (this paper §2)":        6,
		"exstretch k=2 (this paper §3)":   3 * 12, // (2^2-1) * hop bound 2*(2k-1)*2
		"polystretch k=2 (this paper §4)": 36,     // 8*4+8-4
	}
	for _, r := range rows {
		b, ok := bounds[r.Scheme]
		if !ok {
			t.Fatalf("unexpected row %q", r.Scheme)
		}
		if r.Measured.Max > b {
			t.Fatalf("%s measured max stretch %.3f exceeds bound %.0f", r.Scheme, r.Measured.Max, b)
		}
		if r.Measured.Mean < 1 {
			t.Fatalf("%s mean stretch %.3f below 1", r.Scheme, r.Measured.Mean)
		}
		if r.MaxTableWords <= 0 {
			t.Fatalf("%s has empty tables", r.Scheme)
		}
	}
	out := FormatRows(rows)
	if !strings.Contains(out, "stretch6") || !strings.Contains(out, "tinn") {
		t.Fatalf("formatted table missing columns:\n%s", out)
	}
}

func TestSpaceSweep(t *testing.T) {
	pts, err := SpaceSweep([]int{25, 49}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.AvgTableWords <= 0 || p.MaxTableWords < int(p.AvgTableWords) {
			t.Fatalf("degenerate space point %+v", p)
		}
	}
	out := FormatSpacePoints(pts)
	if !strings.Contains(out, "avg/sqrt(n)") {
		t.Fatalf("formatted sweep missing normalization column:\n%s", out)
	}
}
