package eval

import (
	"fmt"
	"sort"
	"strings"

	"rtroute/internal/graph"
	"rtroute/internal/names"
)

// ProfileBucket aggregates measured stretch over one roundtrip-distance
// quantile — the "where does the scheme pay" series: dictionary detours
// hurt nearby destinations relatively more, which is exactly the
// neighborhood-size tradeoff the paper's schemes tune.
type ProfileBucket struct {
	RMin, RMax  graph.Dist
	Pairs       int
	MeanStretch float64
	MaxStretch  float64
}

// ProfileByDistance measures the roundtrip function over the pairs and
// buckets stretch by quantiles of the true roundtrip distance.
func ProfileByDistance(m graph.DistanceOracle, perm *names.Permutation, rt RoundtripFunc, pairs [][2]graph.NodeID, buckets int) ([]ProfileBucket, error) {
	if buckets < 1 {
		buckets = 4
	}
	type sample struct {
		r       graph.Dist
		stretch float64
	}
	samples := make([]sample, 0, len(pairs))
	for _, p := range pairs {
		trace, err := rt(perm.Name(int32(p[0])), perm.Name(int32(p[1])))
		if err != nil {
			return nil, fmt.Errorf("eval: profile pair (%d,%d): %w", p[0], p[1], err)
		}
		r := m.R(p[0], p[1])
		if r <= 0 {
			return nil, fmt.Errorf("eval: degenerate pair (%d,%d)", p[0], p[1])
		}
		samples = append(samples, sample{r: r, stretch: float64(trace.Weight()) / float64(r)})
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].r < samples[j].r })

	cuts := QuantileCuts(len(samples), buckets)
	out := make([]ProfileBucket, 0, len(cuts))
	for _, c := range cuts {
		lo, hi := c[0], c[1]
		bucket := ProfileBucket{RMin: samples[lo].r, RMax: samples[hi-1].r, Pairs: hi - lo}
		var sum float64
		for _, s := range samples[lo:hi] {
			sum += s.stretch
			if s.stretch > bucket.MaxStretch {
				bucket.MaxStretch = s.stretch
			}
		}
		bucket.MeanStretch = sum / float64(bucket.Pairs)
		out = append(out, bucket)
	}
	return out, nil
}

// FormatProfile renders a distance profile as an aligned table.
func FormatProfile(buckets []ProfileBucket) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %8s %10s %10s\n", "r(s,t) range", "pairs", "meanS", "maxS")
	for _, bk := range buckets {
		fmt.Fprintf(&b, "[%6d, %6d]    %8d %10.3f %10.3f\n",
			bk.RMin, bk.RMax, bk.Pairs, bk.MeanStretch, bk.MaxStretch)
	}
	return b.String()
}
