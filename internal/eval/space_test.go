package eval

import (
	"os"
	"testing"
)

// TestEncodedSpaceSweepSmall exercises the sweep end to end at small
// sizes: bytes and entries must grow strictly but sublinearly.
func TestEncodedSpaceSweepSmall(t *testing.T) {
	pts, err := EncodedSpaceSweep(EncodedSpaceConfig{Ns: []int{64, 128, 256}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgBytes <= pts[i-1].AvgBytes {
			t.Fatalf("avg bytes not increasing: %+v", pts)
		}
	}
	if s := EncodedSpaceSlope(pts); s <= 0 || s >= 1 {
		t.Fatalf("byte slope %.3f outside (0,1): per-node state must grow sublinearly", s)
	}
	if out := FormatEncodedSpace(pts); len(out) == 0 {
		t.Fatal("empty report")
	}
}

// TestEncodedSpaceCert is the E14 acceptance run over the paper-scale
// sizes (gated: RTROUTE_LARGE=1, ~2 minutes): per-node table entries
// must grow as O~(sqrt n) — log-log slope within [0.5, 0.65] — and
// encoded bytes at most one log-width above it.
func TestEncodedSpaceCert(t *testing.T) {
	if os.Getenv("RTROUTE_LARGE") == "" {
		t.Skip("set RTROUTE_LARGE=1 to run the n=4096 space certification")
	}
	pts, err := EncodedSpaceSweep(EncodedSpaceConfig{Ns: []int{256, 1024, 4096}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatEncodedSpace(pts))
	es := EncodedEntriesSlope(pts)
	if es < 0.5 || es > 0.65 {
		t.Fatalf("entries/node slope %.3f outside [0.5, 0.65]", es)
	}
	bs := EncodedSpaceSlope(pts)
	if bs < es || bs > 0.8 {
		t.Fatalf("bytes/node slope %.3f outside [entries slope %.3f, 0.8]", bs, es)
	}
}
