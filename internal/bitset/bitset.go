// Package bitset provides a dense fixed-capacity bit set used by the
// sparse-cover construction, where cluster-merging repeatedly asks
// "does cluster S intersect the growing set Y?" over thousands of
// clusters.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is unusable; create
// with New.
type Set struct {
	words []uint64
	n     int
}

// New returns a set with capacity for bits 0..n-1, initially empty.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity the set was created with.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) { s.words[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i from the set.
func (s *Set) Remove(i int) { s.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool { return s.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds every element of o to s.
func (s *Set) UnionWith(o *Set) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Intersects reports whether s and o share any element.
func (s *Set) Intersects(o *Set) bool {
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every element of o is in s.
func (s *Set) ContainsAll(o *Set) bool {
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn for each element in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}
