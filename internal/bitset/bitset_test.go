package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) did not stick", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 7 {
		t.Fatalf("Remove(64) failed: has=%v count=%d", s.Has(64), s.Count())
	}
}

func TestEmptyAndClear(t *testing.T) {
	s := New(100)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(42)
	if s.Empty() {
		t.Fatal("set with element reports empty")
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear did not empty the set")
	}
}

func TestUnionIntersectsContains(t *testing.T) {
	a, b := New(200), New(200)
	a.Add(3)
	a.Add(150)
	b.Add(150)
	b.Add(199)
	if !a.Intersects(b) {
		t.Fatal("sets sharing 150 do not intersect")
	}
	b.Remove(150)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	a.UnionWith(b)
	if !a.Has(199) || a.Count() != 3 {
		t.Fatalf("union wrong: count=%d", a.Count())
	}
	if !a.ContainsAll(b) {
		t.Fatal("superset does not ContainsAll subset")
	}
	if b.ContainsAll(a) {
		t.Fatal("subset claims to contain superset")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(64)
	a.Add(10)
	c := a.Clone()
	c.Add(20)
	if a.Has(20) {
		t.Fatal("clone mutation leaked")
	}
	if !c.Has(10) {
		t.Fatal("clone lost element")
	}
}

func TestSliceAndForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{5, 64, 65, 200, 299}
	for _, i := range []int{299, 5, 200, 64, 65} { // insert out of order
		s.Add(i)
	}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestQuickAgainstMap(t *testing.T) {
	err := quick.Check(func(ops []uint16) bool {
		s := New(1 << 10)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % (1 << 10)
			switch op % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Has(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, i := range s.Slice() {
			if !ref[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapBoundary(t *testing.T) {
	s := New(64)
	s.Add(63)
	if !s.Has(63) || s.Count() != 1 {
		t.Fatal("boundary bit 63 broken")
	}
	if s.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", s.Cap())
	}
}
