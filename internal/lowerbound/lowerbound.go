// Package lowerbound implements the Theorem 15 reduction: any TINN
// roundtrip routing scheme with stretch < 2 on the bidirected version N'
// of an undirected network N induces a one-way routing scheme on N with
// stretch < 3 — which Gavoille–Gengler proved needs Ω(n)-bit tables.
//
// The reduction is constructive and checkable: given any roundtrip
// scheme R on a bidirected graph, the derived one-way scheme routes from
// u to v along R's forward leg. The package verifies the inequality chain
// of the proof on concrete instances:
//
//	p_R(u,v) + p_R(v,u) >= 3 d(u,v) + d(v,u) = 2r(u,v) whenever the
//	one-way leg has stretch >= 3,
//
// so a roundtrip scheme beating stretch 2 everywhere would give one-way
// stretch < 3 everywhere — contradiction with the lower bound.
package lowerbound

import (
	"fmt"

	"rtroute/internal/graph"
	"rtroute/internal/sim"
)

// RoundtripScheme is the minimal interface the reduction needs: route a
// roundtrip between two named nodes and report both legs.
type RoundtripScheme interface {
	Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error)
}

// PairReport records the reduction's quantities for one ordered pair.
type PairReport struct {
	U, V            graph.NodeID
	Forward, Back   graph.Dist // measured one-way leg lengths
	D               graph.Dist // d(u,v) = d(v,u) on a bidirected graph
	RoundtripWeight graph.Dist
}

// OneWayStretch returns the induced one-way scheme's stretch for the
// forward leg.
func (p PairReport) OneWayStretch() float64 { return float64(p.Forward) / float64(p.D) }

// RoundtripStretch returns the roundtrip stretch (r = 2d on bidirected
// graphs).
func (p PairReport) RoundtripStretch() float64 {
	return float64(p.RoundtripWeight) / float64(2*p.D)
}

// Analyze runs the reduction over all ordered pairs of a bidirected
// graph: it measures each roundtrip, derives the induced one-way scheme's
// stretch, and verifies the proof's arithmetic — if the roundtrip stretch
// is below 2 for a pair, the induced one-way stretch must be below 3 for
// that pair or its reverse.
func Analyze(g *graph.Graph, m graph.DistanceOracle, s RoundtripScheme, name func(graph.NodeID) int32) ([]PairReport, error) {
	if err := checkBidirected(g); err != nil {
		return nil, err
	}
	n := g.N()
	var reports []PairReport
	for u := 0; u < n; u++ {
		// Both directions anchored at u: d(u,·) and d(·,u) come from two
		// row fetches per source, so a lazy oracle never thrashes here.
		fwd := m.FromSource(graph.NodeID(u))
		rev := m.ToSink(graph.NodeID(u))
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(name(graph.NodeID(u)), name(graph.NodeID(v)))
			if err != nil {
				return nil, fmt.Errorf("lowerbound: roundtrip (%d,%d): %w", u, v, err)
			}
			d := fwd[v]
			if d != rev[v] {
				return nil, fmt.Errorf("lowerbound: graph not distance-symmetric at (%d,%d)", u, v)
			}
			rep := PairReport{
				U: graph.NodeID(u), V: graph.NodeID(v),
				Forward: rt.Out.Weight, Back: rt.Back.Weight,
				D:               d,
				RoundtripWeight: rt.Weight(),
			}
			// Proof arithmetic: if both one-way legs have stretch >= 3,
			// then p(u,v)+p(v,u) >= 3d + d... in fact >= 2r already from
			// one leg: p(u,v) >= 3d(u,v) implies
			// p(u,v)+p(v,u) >= 3d(u,v) + d(v,u) = 2r(u,v) since
			// p(v,u) >= d(v,u). Cross-check measured values.
			if rep.Forward >= 3*d {
				if rep.RoundtripWeight < 2*(2*d) {
					return nil, fmt.Errorf("lowerbound: proof arithmetic violated at (%d,%d): forward %d >= 3*%d yet roundtrip %d < %d",
						u, v, rep.Forward, d, rep.RoundtripWeight, 4*d)
				}
			}
			reports = append(reports, rep)
		}
	}
	return reports, nil
}

func checkBidirected(g *graph.Graph) error {
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(graph.NodeID(u)) {
			found := false
			for _, back := range g.Out(e.To) {
				if back.To == graph.NodeID(u) && back.Weight == e.Weight {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("lowerbound: graph not bidirected at edge (%d,%d)", u, e.To)
			}
		}
	}
	return nil
}

// Summary aggregates the reduction over all pairs.
type Summary struct {
	Pairs               int
	MaxRoundtripStretch float64
	MaxOneWayStretch    float64
	// PairsBelow2 counts roundtrips with stretch < 2; if ALL pairs are
	// below 2 with o(n) tables, the Gavoille–Gengler bound is
	// contradicted — so on hard instances some pair must reach 2.
	PairsBelow2 int
}

// Summarize folds pair reports into a Summary.
func Summarize(reports []PairReport) Summary {
	s := Summary{Pairs: len(reports)}
	for _, r := range reports {
		if rs := r.RoundtripStretch(); rs > s.MaxRoundtripStretch {
			s.MaxRoundtripStretch = rs
		}
		if os := r.OneWayStretch(); os > s.MaxOneWayStretch {
			s.MaxOneWayStretch = os
		}
		if r.RoundtripStretch() < 2 {
			s.PairsBelow2++
		}
	}
	return s
}
