package lowerbound

import (
	"math/rand"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

// TestTheorem15Reduction is experiment E8: run a real TINN roundtrip
// scheme (StretchSix) on bidirected graphs and verify the reduction's
// arithmetic plus the induced one-way stretch relation
// oneWay <= roundtrip * 2 - 1 implied by p(v,u) >= d(v,u).
func TestTheorem15Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := graph.RandomSC(24, 72, 4, rng)
	g := graph.Bidirect(base)
	g.AssignPorts(rng.Intn)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	s, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Analyze(g, m, s, func(v graph.NodeID) int32 { return perm.Name(int32(v)) })
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != g.N()*(g.N()-1) {
		t.Fatalf("got %d reports, want %d", len(reports), g.N()*(g.N()-1))
	}
	sum := Summarize(reports)
	if sum.MaxRoundtripStretch > 6 {
		t.Fatalf("roundtrip stretch %f exceeds the scheme's bound", sum.MaxRoundtripStretch)
	}
	// The relation the proof pivots on: one-way stretch s1 and roundtrip
	// stretch s2 satisfy s1 <= 2*s2 - 1 because the return leg is at
	// least d.
	for _, r := range reports {
		if r.OneWayStretch() > 2*r.RoundtripStretch()-1+1e-9 {
			t.Fatalf("relation s1 <= 2 s2 - 1 violated at (%d,%d): %f vs %f",
				r.U, r.V, r.OneWayStretch(), r.RoundtripStretch())
		}
	}
}

func TestAnalyzeRejectsDirectedGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomSC(10, 30, 3, rng) // not bidirected
	m := graph.AllPairs(g)
	perm := names.Identity(g.N())
	s, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(g, m, s, func(v graph.NodeID) int32 { return perm.Name(int32(v)) }); err == nil {
		t.Fatal("directed graph accepted by bidirected-only reduction")
	}
}

func TestSummaryCounts(t *testing.T) {
	reports := []PairReport{
		{D: 10, Forward: 10, Back: 10, RoundtripWeight: 20}, // stretch 1
		{D: 10, Forward: 30, Back: 30, RoundtripWeight: 60}, // stretch 3
	}
	s := Summarize(reports)
	if s.Pairs != 2 || s.PairsBelow2 != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if s.MaxRoundtripStretch != 3 || s.MaxOneWayStretch != 3 {
		t.Fatalf("summary maxima wrong: %+v", s)
	}
}

func TestBidirectedGridReduction(t *testing.T) {
	// The classic lower-bound substrate is highly symmetric; verify the
	// machinery on a grid too.
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid(4, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Reversed(g.N())
	s, err := core.NewStretchSix(g, m, perm, rng, core.Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Analyze(g, m, s, func(v graph.NodeID) int32 { return perm.Name(int32(v)) })
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(reports)
	if sum.MaxRoundtripStretch > 6 {
		t.Fatalf("grid roundtrip stretch %f exceeds 6", sum.MaxRoundtripStretch)
	}
}
