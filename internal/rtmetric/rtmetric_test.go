package rtmetric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtroute/internal/graph"
)

func newSpace(t *testing.T, seed int64, n, extra int, maxW graph.Dist) *Space {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, extra, maxW, rng)
	return New(g, graph.AllPairs(g), nil)
}

func TestInitIsTotalOrderStartingAtV(t *testing.T) {
	s := newSpace(t, 1, 40, 120, 10)
	for v := 0; v < s.G.N(); v++ {
		ord := s.Init(graph.NodeID(v))
		if len(ord) != s.G.N() {
			t.Fatalf("Init_%d has %d entries, want %d", v, len(ord), s.G.N())
		}
		if ord[0] != graph.NodeID(v) {
			t.Fatalf("Init_%d starts at %d, want %d (r(v,v)=0 is unique minimum)", v, ord[0], v)
		}
		seen := make(map[graph.NodeID]bool)
		for _, u := range ord {
			if seen[u] {
				t.Fatalf("Init_%d repeats node %d", v, u)
			}
			seen[u] = true
		}
		// Strictly increasing under Less.
		for i := 0; i+1 < len(ord); i++ {
			if !s.Less(graph.NodeID(v), ord[i], ord[i+1]) {
				t.Fatalf("Init_%d not sorted at position %d (%d vs %d)", v, i, ord[i], ord[i+1])
			}
		}
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	s := newSpace(t, 2, 25, 75, 7)
	n := s.G.N()
	for v := 0; v < n; v++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				la := s.Less(graph.NodeID(v), graph.NodeID(a), graph.NodeID(b))
				lb := s.Less(graph.NodeID(v), graph.NodeID(b), graph.NodeID(a))
				if a == b && (la || lb) {
					t.Fatalf("Less(%d; %d,%d): irreflexivity violated", v, a, b)
				}
				if a != b && la == lb {
					t.Fatalf("Less(%d; %d,%d): totality/antisymmetry violated (both %v)", v, a, b, la)
				}
			}
		}
	}
}

func TestLessTransitivity(t *testing.T) {
	s := newSpace(t, 3, 20, 60, 9)
	err := quick.Check(func(a, b, c uint8) bool {
		n := s.G.N()
		v := graph.NodeID(0)
		x, y, z := graph.NodeID(int(a)%n), graph.NodeID(int(b)%n), graph.NodeID(int(c)%n)
		if s.Less(v, x, y) && s.Less(v, y, z) {
			return s.Less(v, x, z)
		}
		return true
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankConsistentWithInit(t *testing.T) {
	s := newSpace(t, 4, 30, 90, 5)
	for v := 0; v < s.G.N(); v++ {
		ord := s.Init(graph.NodeID(v))
		for i, u := range ord {
			if got := s.Rank(graph.NodeID(v), u); got != i {
				t.Fatalf("Rank(%d,%d) = %d, want %d", v, u, got, i)
			}
		}
	}
}

func TestNeighborhoodMonotone(t *testing.T) {
	s := newSpace(t, 5, 36, 100, 4)
	v := graph.NodeID(7)
	n6 := s.Neighborhood(v, 6)
	n12 := s.Neighborhood(v, 12)
	if len(n6) != 6 || len(n12) != 12 {
		t.Fatalf("sizes: %d, %d; want 6, 12", len(n6), len(n12))
	}
	for i := range n6 {
		if n6[i] != n12[i] {
			t.Fatal("smaller neighborhood is not a prefix of the larger one")
		}
	}
}

func TestNeighborhoodRoundtripDominance(t *testing.T) {
	// Every node inside N(v) must be roundtrip-closer-or-equal to v than
	// every node outside — the fact the stretch-6 analysis leans on
	// (r(s,w) <= r(s,t) when w ∈ N(s), t ∉ N(s)).
	s := newSpace(t, 6, 32, 96, 8)
	for v := 0; v < s.G.N(); v++ {
		size := 6
		nbhd := s.Neighborhood(graph.NodeID(v), size)
		inSet := make(map[graph.NodeID]bool, size)
		var maxIn graph.Dist
		for _, u := range nbhd {
			inSet[u] = true
			if r := s.M.R(graph.NodeID(v), u); r > maxIn {
				maxIn = r
			}
		}
		for u := 0; u < s.G.N(); u++ {
			if !inSet[graph.NodeID(u)] {
				if r := s.M.R(graph.NodeID(v), graph.NodeID(u)); r < maxIn {
					t.Fatalf("node %d outside N(%d) has r=%d < max inside %d", u, v, r, maxIn)
				}
			}
		}
	}
}

func TestContains(t *testing.T) {
	s := newSpace(t, 7, 20, 60, 3)
	v := graph.NodeID(3)
	nbhd := s.Neighborhood(v, 5)
	for _, u := range nbhd {
		if !s.Contains(v, 5, u) {
			t.Fatalf("Contains(%d, 5, %d) = false for member", v, u)
		}
	}
	count := 0
	for u := 0; u < s.G.N(); u++ {
		if s.Contains(v, 5, graph.NodeID(u)) {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("Contains admits %d nodes, want 5", count)
	}
}

func TestBall(t *testing.T) {
	s := newSpace(t, 8, 24, 72, 6)
	for v := 0; v < s.G.N(); v += 5 {
		for _, m := range []graph.Dist{0, 3, 10, 1 << 40} {
			ball := s.Ball(graph.NodeID(v), m)
			inBall := make(map[graph.NodeID]bool)
			for _, u := range ball {
				inBall[u] = true
				if s.M.R(graph.NodeID(v), u) > m {
					t.Fatalf("ball(%d,%d) contains %d with r=%d", v, m, u, s.M.R(graph.NodeID(v), u))
				}
			}
			for u := 0; u < s.G.N(); u++ {
				if !inBall[graph.NodeID(u)] && s.M.R(graph.NodeID(v), graph.NodeID(u)) <= m {
					t.Fatalf("ball(%d,%d) misses %d", v, m, u)
				}
			}
		}
	}
}

func TestBallContainsSelf(t *testing.T) {
	s := newSpace(t, 9, 10, 30, 2)
	ball := s.Ball(2, 0)
	if len(ball) != 1 || ball[0] != 2 {
		t.Fatalf("Ball(v, 0) = %v, want [v]", ball)
	}
}

func TestTieBreakByID(t *testing.T) {
	// Symmetric 4-cycle (bidirected): many roundtrip ties; the order must
	// fall back to IDs deterministically.
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.MustAddEdge(graph.NodeID(i), graph.NodeID((i+1)%4), 1)
		g.MustAddEdge(graph.NodeID((i+1)%4), graph.NodeID(i), 1)
	}
	m := graph.AllPairs(g)
	s := New(g, m, nil)
	ord := s.Init(0)
	// r(0,1) = r(0,3) = 2; d(1,0) = d(3,0) = 1; tie broken by ID: 1 < 3.
	if !(ord[0] == 0 && ord[1] == 1) {
		t.Fatalf("Init_0 = %v; want 0 then 1 (ID tie-break)", ord)
	}

	// With reversed IDs, 3 must now precede 1.
	ids := []int32{0, 3, 2, 1}
	s2 := New(g, m, ids)
	ord2 := s2.Init(0)
	if !(ord2[0] == 0 && ord2[1] == 3) {
		t.Fatalf("Init_0 with reversed ids = %v; want 0 then 3", ord2)
	}
}

func TestNeighborhoodSizes(t *testing.T) {
	tests := []struct {
		n, k int
		want []int
	}{
		{16, 2, []int{1, 4, 16}},
		{16, 4, []int{1, 2, 4, 8, 16}},
		{100, 2, []int{1, 10, 100}},
		{27, 3, []int{1, 3, 9, 27}},
		{30, 3, []int{1, 4, 10, 30}}, // ceilings for non-perfect powers
	}
	for _, tc := range tests {
		got := NeighborhoodSizes(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("NeighborhoodSizes(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("NeighborhoodSizes(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			}
		}
	}
}

func TestNeighborhoodSizesMonotone(t *testing.T) {
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%500 + 2
		k := int(kRaw)%6 + 1
		sizes := NeighborhoodSizes(n, k)
		for i := 0; i+1 < len(sizes); i++ {
			if sizes[i] > sizes[i+1] {
				return false
			}
		}
		return sizes[0] == 1 && sizes[k] == n
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
