// Package rtmetric implements the roundtrip-metric machinery of §1.1 and
// §2 of the paper: the total orders Init_v induced by the roundtrip
// distance r(u,v) = d(u,v) + d(v,u), the neighborhood balls N_i(v) (the
// first n^(i/k) nodes of Init_v), and the radius balls Nhat_m(v) used by
// the sparse-cover construction of §4.
package rtmetric

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"rtroute/internal/graph"
)

// Space bundles a graph, a distance oracle, and (lazily computed) Init_v
// total orders. The tie-breaking IDs default to the topological node
// indices; in TINN deployments callers may supply the node-name
// permutation instead (the paper's IDu, §2).
//
// Building Init_v touches only the two distance rows anchored at v
// (d(v,·) and d(·,v)), so a Space over a lazy oracle costs two Dijkstras
// per ordered node instead of an eager all-pairs pass.
type Space struct {
	G   *graph.Graph
	M   graph.DistanceOracle
	ids []int32

	initOrders [][]graph.NodeID // lazily filled per source node
	ranks      [][]int32        // ranks[v][u] = position of u in Init_v
}

// New creates a Space over g with a distance oracle m. If ids is nil the
// topological indices are used for tie-breaking.
func New(g *graph.Graph, m graph.DistanceOracle, ids []int32) *Space {
	if m.N() != g.N() {
		panic(fmt.Sprintf("rtmetric: metric over %d nodes, graph has %d", m.N(), g.N()))
	}
	if ids != nil && len(ids) != g.N() {
		panic(fmt.Sprintf("rtmetric: %d ids for %d nodes", len(ids), g.N()))
	}
	if ids == nil {
		ids = make([]int32, g.N())
		for i := range ids {
			ids[i] = int32(i)
		}
	}
	return &Space{
		G:          g,
		M:          m,
		ids:        ids,
		initOrders: make([][]graph.NodeID, g.N()),
		ranks:      make([][]int32, g.N()),
	}
}

// Less reports whether a ≺_v b in the total order of §2: first by
// roundtrip distance r(v,·), then by distance d(·,v) toward v, then by ID.
func (s *Space) Less(v, a, b graph.NodeID) bool {
	ra, rb := s.M.R(v, a), s.M.R(v, b)
	if ra != rb {
		return ra < rb
	}
	da, db := s.M.D(a, v), s.M.D(b, v)
	if da != db {
		return da < db
	}
	return s.ids[a] < s.ids[b]
}

// orderFor materializes Init_v and its rank array. It fetches the two
// distance rows anchored at v once and sorts on them directly, so the
// comparator never goes back to the oracle: O(n log n) with exactly one
// FromSource and one ToSink fetch regardless of oracle kind.
func (s *Space) orderFor(v graph.NodeID) ([]graph.NodeID, []int32) {
	n := s.G.N()
	fwd := s.M.FromSource(v) // d(v, u)
	rev := s.M.ToSink(v)     // d(u, v)
	key := make([]graph.Dist, n)
	for u := 0; u < n; u++ {
		key[u] = graph.RFromRows(fwd, rev, graph.NodeID(u)) // r(v, u)
	}
	ord := make([]graph.NodeID, n)
	for i := range ord {
		ord[i] = graph.NodeID(i)
	}
	sort.Slice(ord, func(i, j int) bool {
		a, b := ord[i], ord[j]
		if key[a] != key[b] {
			return key[a] < key[b]
		}
		if rev[a] != rev[b] {
			return rev[a] < rev[b]
		}
		return s.ids[a] < s.ids[b]
	})
	rank := make([]int32, n)
	for i, u := range ord {
		rank[u] = int32(i)
	}
	return ord, rank
}

// Init returns the total order Init_v = v ≺_v u1 ≺_v u2 ≺_v ... over all
// n nodes. The returned slice is cached and must not be modified.
func (s *Space) Init(v graph.NodeID) []graph.NodeID {
	if ord := s.initOrders[v]; ord != nil {
		return ord
	}
	ord, rank := s.orderFor(v)
	s.initOrders[v] = ord
	s.ranks[v] = rank
	return ord
}

// Rank returns the position of u in Init_v (0 for u == v).
func (s *Space) Rank(v, u graph.NodeID) int {
	s.Init(v)
	return int(s.ranks[v][u])
}

// Neighborhood returns the first size nodes of Init_v (v itself included,
// as in the paper where Init_v begins with v). size is clamped to [1, n].
func (s *Space) Neighborhood(v graph.NodeID, size int) []graph.NodeID {
	n := s.G.N()
	if size < 1 {
		size = 1
	}
	if size > n {
		size = n
	}
	return s.Init(v)[:size]
}

// Contains reports whether u is among the first size nodes of Init_v,
// without materializing the slice.
func (s *Space) Contains(v graph.NodeID, size int, u graph.NodeID) bool {
	return s.Rank(v, u) < size
}

// Ball returns Nhat_m(v) = {w : r(v,w) <= m}, the radius ball of §4.
// Row-oriented: one FromSource plus one ToSink fetch.
func (s *Space) Ball(v graph.NodeID, m graph.Dist) []graph.NodeID {
	fwd, rev := s.M.FromSource(v), s.M.ToSink(v)
	var ball []graph.NodeID
	for u := 0; u < s.G.N(); u++ {
		if graph.RFromRows(fwd, rev, graph.NodeID(u)) <= m {
			ball = append(ball, graph.NodeID(u))
		}
	}
	return ball
}

// Precompute fills the Init_v cache for every node using a worker pool.
// The lazy cache is not safe for concurrent fills, so parallel scheme
// builders call Precompute once and then read the orders freely.
// workers <= 0 selects GOMAXPROCS.
func (s *Space) Precompute(workers int) {
	n := s.G.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	src := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range src {
				ord, rank := s.orderFor(graph.NodeID(v))
				// Each worker writes only its own v's slots: disjoint.
				s.initOrders[v] = ord
				s.ranks[v] = rank
			}
		}()
	}
	for v := 0; v < n; v++ {
		src <- v
	}
	close(src)
	wg.Wait()
}

// InvalidateOrders drops the cached Init_v orders of the given nodes so
// they are recomputed — against the oracle's current rows — on next
// access. The incremental maintainers call this with the churn dirty set:
// a node outside the may-use affected set of a topology event has
// bit-identical distance rows in both directions, hence a bit-identical
// Init order, so its cache entry stays valid across the mutation.
func (s *Space) InvalidateOrders(nodes []graph.NodeID) {
	for _, v := range nodes {
		s.initOrders[v] = nil
		s.ranks[v] = nil
	}
}

// NeighborhoodSizes returns the sizes |N_i(v)| = ceil(n^(i/k)) for
// i = 0..k, clamped to n. The paper assumes n is a perfect k-th power;
// ceiling sizes preserve every containment the proofs use
// (N_0 ⊆ N_1 ⊆ ... ⊆ N_k = V) for arbitrary n.
func NeighborhoodSizes(n, k int) []int {
	if k < 1 {
		panic(fmt.Sprintf("rtmetric: k must be >= 1, got %d", k))
	}
	sizes := make([]int, k+1)
	for i := 0; i <= k; i++ {
		s := int(math.Ceil(math.Pow(float64(n), float64(i)/float64(k))))
		if s < 1 {
			s = 1
		}
		if s > n {
			s = n
		}
		sizes[i] = s
	}
	sizes[k] = n
	return sizes
}
