// Package parallel provides the small worker-pool helper the scheme
// builders use to parallelize their per-node preprocessing loops (each
// node's table depends only on read-only shared state).
package parallel

import (
	"runtime"
	"sync"
)

// ForEach invokes fn(i) for i in [0, n) across a pool of workers.
// workers <= 0 selects GOMAXPROCS. fn calls for distinct i may run
// concurrently; callers must ensure per-i writes are disjoint. The first
// error is returned after all workers drain.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	src := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range src {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		src <- i
	}
	close(src)
	wg.Wait()
	return firstErr
}
