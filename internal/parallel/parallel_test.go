package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachVisitsAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var visited [100]int32
		err := ForEach(100, workers, func(i int) error {
			atomic.AddInt32(&visited[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range visited {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachSequentialFallbackStopsEarly(t *testing.T) {
	boom := errors.New("stop")
	count := 0
	err := ForEach(100, 1, func(i int) error {
		count++
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 6 {
		t.Fatalf("sequential mode: err=%v count=%d", err, count)
	}
}
