package cover

import (
	"math"
	"math/rand"
	"testing"

	"rtroute/internal/graph"
)

func rtMetric(m *graph.Metric) Metric {
	return func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
}

// inducedRTRadius computes the exact roundtrip radius of the cluster from
// its seed center within the induced subgraph — the quantity Theorem 10
// property 2 bounds by (2k-1)d.
func inducedRTRadius(g *graph.Graph, c Cluster) graph.Dist {
	inSet := make(map[graph.NodeID]bool, len(c.Nodes))
	for _, v := range c.Nodes {
		inSet[v] = true
	}
	sub := graph.New(g.N())
	for _, v := range c.Nodes {
		for _, e := range g.Out(v) {
			if inSet[e.To] {
				sub.MustAddEdge(v, e.To, e.Weight)
			}
		}
	}
	from := graph.Dijkstra(sub, c.Center)
	to := graph.DijkstraRev(sub, c.Center)
	var rad graph.Dist
	for _, v := range c.Nodes {
		if from.Dist[v] >= graph.Inf || to.Dist[v] >= graph.Inf {
			return graph.Inf
		}
		if r := from.Dist[v] + to.Dist[v]; r > rad {
			rad = r
		}
	}
	return rad
}

// TestCoverTheorem10 verifies all three properties of Theorem 10 on
// random strongly connected digraphs for several (k, d) combinations.
// This regenerates experiment E5 (Figs. 7-8).
func TestCoverTheorem10(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		g := graph.RandomSC(48, 144, 6, rng)
		m := graph.AllPairs(g)
		dm := rtMetric(m)
		for _, k := range []int{2, 3} {
			for _, d := range []graph.Dist{2, 5, 10, m.RTDiam()} {
				res, err := Build(g, dm, k, d)
				if err != nil {
					t.Fatalf("trial %d k=%d d=%d: %v", trial, k, d, err)
				}
				// Property 1: home cluster contains Nhat_d(v).
				for v := 0; v < g.N(); v++ {
					home := res.HomeCluster(graph.NodeID(v))
					inHome := make(map[graph.NodeID]bool)
					for _, u := range home.Nodes {
						inHome[u] = true
					}
					for u := 0; u < g.N(); u++ {
						if dm(graph.NodeID(v), graph.NodeID(u)) <= d && !inHome[graph.NodeID(u)] {
							t.Fatalf("k=%d d=%d: home of %d misses ball member %d", k, d, v, u)
						}
					}
				}
				// Property 2: induced roundtrip radius <= (2k-1)d.
				bound := graph.Dist(2*k-1) * d
				for ci, c := range res.Clusters {
					if rad := inducedRTRadius(g, c); rad > bound {
						t.Fatalf("k=%d d=%d: cluster %d radius %d > bound %d", k, d, ci, rad, bound)
					}
				}
				// Property 3: overlap <= 2k * n^(1/k).
				overlapBound := int(math.Ceil(2 * float64(k) * math.Pow(float64(g.N()), 1/float64(k))))
				if got := res.MaxOverlap(g.N()); got > overlapBound {
					t.Fatalf("k=%d d=%d: max overlap %d > bound %d", k, d, got, overlapBound)
				}
			}
		}
	}
}

func TestCoverClustersAreStronglyConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomSC(40, 100, 8, rng)
	m := graph.AllPairs(g)
	res, err := Build(g, rtMetric(m), 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range res.Clusters {
		if inducedRTRadius(g, c) >= graph.Inf {
			t.Fatalf("cluster %d does not induce a strongly connected subgraph", ci)
		}
	}
}

func TestCoverOnRing(t *testing.T) {
	// On an n-ring every roundtrip distance is n, so a ball of radius
	// d < n is a singleton, and one of radius >= n is everything.
	g := graph.Ring(10, nil)
	m := graph.AllPairs(g)
	res, err := Build(g, rtMetric(m), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if len(c.Nodes) != 1 {
			t.Fatalf("ring with d < n should give singleton clusters, got %d nodes", len(c.Nodes))
		}
	}
	if len(res.Clusters) != 10 {
		t.Fatalf("expected 10 singleton clusters, got %d", len(res.Clusters))
	}

	res2, err := Build(g, rtMetric(m), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Balls of radius n cover everything; the merged cluster must be V.
	if got := len(res2.HomeCluster(0).Nodes); got != 10 {
		t.Fatalf("home cluster size = %d, want 10", got)
	}
}

func TestCoverInputValidation(t *testing.T) {
	g := graph.Ring(4, nil)
	m := graph.AllPairs(g)
	if _, err := Build(g, rtMetric(m), 1, 2); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Build(g, rtMetric(m), 2, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestBallGrowingCover(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomSC(40, 120, 5, rng)
	m := graph.AllPairs(g)
	dm := rtMetric(m)
	for _, k := range []int{2, 3} {
		d := graph.Dist(4)
		res, err := BuildBallGrowing(g, dm, k, d)
		if err != nil {
			t.Fatal(err)
		}
		// Home cluster contains Nhat_d(v) for every v (core property).
		for v := 0; v < g.N(); v++ {
			home := res.HomeCluster(graph.NodeID(v))
			inHome := make(map[graph.NodeID]bool)
			for _, u := range home.Nodes {
				inHome[u] = true
			}
			for u := 0; u < g.N(); u++ {
				if dm(graph.NodeID(v), graph.NodeID(u)) <= d && !inHome[graph.NodeID(u)] {
					t.Fatalf("k=%d: ball-growing home of %d misses %d", k, v, u)
				}
			}
		}
		// Radius bound (k+1)d from the seed.
		bound := graph.Dist(k+1) * d
		for ci, c := range res.Clusters {
			if rad := inducedRTRadius(g, c); rad > bound {
				t.Fatalf("k=%d: ball-growing cluster %d radius %d > %d", k, ci, rad, bound)
			}
		}
	}
}

func TestScalesLadder(t *testing.T) {
	s := Scales(100, 2)
	want := []graph.Dist{2, 4, 8, 16, 32, 64, 128}
	if len(s) != len(want) {
		t.Fatalf("Scales(100,2) = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Scales(100,2) = %v, want %v", s, want)
		}
	}
	// Strictly increasing and reaching the diameter for fractional bases.
	s = Scales(57, 1.5)
	for i := 0; i+1 < len(s); i++ {
		if s[i] >= s[i+1] {
			t.Fatalf("Scales(57,1.5) not strictly increasing: %v", s)
		}
	}
	if s[len(s)-1] < 57 {
		t.Fatalf("Scales(57,1.5) does not reach the diameter: %v", s)
	}
	// Tiny diameters still get one level.
	if got := Scales(1, 2); len(got) != 1 || got[0] < 1 {
		t.Fatalf("Scales(1,2) = %v", got)
	}
}

func TestHierarchyHomeTreeSpansBall(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomSC(36, 108, 4, rng)
	m := graph.AllPairs(g)
	h, err := BuildHierarchy(g, m, 2, 2, VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range h.Levels {
		for v := 0; v < g.N(); v++ {
			ht := lvl.HomeTree(graph.NodeID(v))
			for u := 0; u < g.N(); u++ {
				if m.R(graph.NodeID(v), graph.NodeID(u)) <= lvl.Scale && !ht.Contains(graph.NodeID(u)) {
					t.Fatalf("scale %d: home tree of %d misses Nhat member %d", lvl.Scale, v, u)
				}
			}
		}
	}
}

func TestHierarchyTreeHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomSC(36, 108, 4, rng)
	m := graph.AllPairs(g)
	k := 2
	h, err := BuildHierarchy(g, m, k, 2, VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range h.Levels {
		bound := graph.Dist(2*k-1) * lvl.Scale
		for ti, tr := range lvl.Trees {
			if tr.RTHeight() > bound {
				t.Fatalf("scale %d tree %d: RTHeight %d > (2k-1)*scale = %d",
					lvl.Scale, ti, tr.RTHeight(), bound)
			}
		}
	}
}

func TestHierarchyTopLevelSpansV(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomSC(30, 90, 6, rng)
	m := graph.AllPairs(g)
	h, err := BuildHierarchy(g, m, 2, 2, VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	top := h.Levels[len(h.Levels)-1]
	for v := 0; v < g.N(); v++ {
		ht := top.HomeTree(graph.NodeID(v))
		if len(ht.Members) != g.N() {
			t.Fatalf("top-level home tree of %d has %d members, want %d", v, len(ht.Members), g.N())
		}
	}
}

func TestBestTreeGuarantee(t *testing.T) {
	// For every pair (u,v), BestTree must return a tree whose
	// root-roundtrip cost is at most 2*(2k-1)*scale where scale is the
	// first level covering r(u,v) — the R2/Hop guarantee the §3 scheme
	// relies on.
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomSC(32, 96, 5, rng)
	m := graph.AllPairs(g)
	k := 2
	h, err := BuildHierarchy(g, m, k, 2, VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			_, cost, ok := h.BestTree(graph.NodeID(u), graph.NodeID(v))
			if !ok {
				t.Fatalf("no shared tree for (%d,%d)", u, v)
			}
			r := m.R(graph.NodeID(u), graph.NodeID(v))
			var scale graph.Dist = -1
			for _, lvl := range h.Levels {
				if lvl.Scale >= r {
					scale = lvl.Scale
					break
				}
			}
			if scale < 0 {
				t.Fatalf("no level covers r(%d,%d) = %d", u, v, r)
			}
			bound := 2 * graph.Dist(2*k-1) * scale
			if cost > bound {
				t.Fatalf("BestTree(%d,%d) cost %d > bound %d (r=%d scale=%d)", u, v, cost, bound, r, scale)
			}
		}
	}
}

func TestMembershipsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomSC(30, 90, 4, rng)
	m := graph.AllPairs(g)
	h, err := BuildHierarchy(g, m, 2, 2, VariantAwerbuchPeleg)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for _, ref := range h.Memberships(graph.NodeID(v)) {
			if !h.Tree(ref).Contains(graph.NodeID(v)) {
				t.Fatalf("membership %v does not contain %d", ref, v)
			}
		}
	}
	if h.MaxMemberships() == 0 {
		t.Fatal("no memberships recorded")
	}
	// Per-level overlap bound propagates: max memberships <= levels * 2k*n^(1/k).
	perLevel := int(math.Ceil(2 * 2 * math.Sqrt(float64(g.N()))))
	if h.MaxMemberships() > len(h.Levels)*perLevel {
		t.Fatalf("max memberships %d exceeds levels*bound = %d", h.MaxMemberships(), len(h.Levels)*perLevel)
	}
}

func TestVariantString(t *testing.T) {
	if VariantAwerbuchPeleg.String() != "awerbuch-peleg" {
		t.Fatal("bad string for AP variant")
	}
	if VariantBallGrowing.String() != "ball-growing" {
		t.Fatal("bad string for ball-growing variant")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant should still stringify")
	}
}
