// Package cover implements the sparse cover machinery of §4 of the paper:
// the PartialCover and Cover algorithms of Figs. 7 and 8 (generalized
// Awerbuch–Peleg sparse partitions over an arbitrary distance metric,
// Theorem 10), the roundtrip double-tree covers and home-tree hierarchy
// of Theorem 13, and — for the §4.4 ablation — an RTZ-style ball-growing
// cover with weaker per-vertex guarantees.
package cover

import (
	"fmt"
	"math"

	"rtroute/internal/bitset"
	"rtroute/internal/graph"
)

// Metric is a distance function over node pairs. Theorem 10 holds for any
// metric; the schemes instantiate it with the roundtrip distance.
type Metric func(u, v graph.NodeID) graph.Dist

// Cluster is one output cluster of a cover: a node set with the seed
// center the construction grew it from.
type Cluster struct {
	Center graph.NodeID
	Nodes  []graph.NodeID
}

// Result is a cover of the graph: clusters plus, for every node v, the
// index of the cluster guaranteed to contain all of Nhat_d(v) (its "home"
// cluster, Theorem 10 property 1 / Theorem 13 home double-tree).
type Result struct {
	D        graph.Dist
	Clusters []Cluster
	Home     []int32
}

// ball is an input cluster of PartialCover: the ball Nhat_d(seed).
type ball struct {
	seed graph.NodeID
	set  *bitset.Set
}

// partialOutput reports one PartialCover invocation's results in terms of
// input ball indices.
type partialOutput struct {
	merged  []mergedCluster
	covered []int // ball indices subsumed this round (the paper's DR)
}

type mergedCluster struct {
	center graph.NodeID
	set    *bitset.Set
	subs   []int // covered ball indices whose union is this cluster
}

// partialCover is Fig. 7 verbatim: given the collection R (active balls,
// as indices into balls), it produces disjoint merged clusters DT, each
// the union of a sub-collection Y of input balls, removing from the
// active set every ball intersecting an output cluster.
func partialCover(balls []ball, active []int, k int, n int) partialOutput {
	ratio := math.Pow(float64(len(active)), 1/float64(k))
	inU := make(map[int]bool, len(active))
	for _, i := range active {
		inU[i] = true
	}
	remaining := append([]int(nil), active...)
	var out partialOutput

	for len(remaining) > 0 {
		// Select the arbitrary seed cluster S0 deterministically: first
		// remaining ball.
		var s0 = -1
		for _, i := range remaining {
			if inU[i] {
				s0 = i
				break
			}
		}
		if s0 < 0 {
			break
		}

		// Growth loop (lines 5–9): Z/Y are collections of ball indices,
		// zset/yset their unions.
		zcol := []int{s0}
		zset := balls[s0].set.Clone()
		var ycol []int
		var yset *bitset.Set
		for {
			ycol, yset = zcol, zset
			zcol = nil
			for _, i := range remaining {
				if inU[i] && balls[i].set.Intersects(yset) {
					zcol = append(zcol, i)
				}
			}
			zset = bitset.New(n)
			for _, i := range zcol {
				zset.UnionWith(balls[i].set)
			}
			if float64(len(zcol)) <= ratio*float64(len(ycol)) {
				break
			}
		}

		// Lines 10–12: remove Z from U, emit Y's union, record covered.
		for _, i := range zcol {
			delete(inU, i)
		}
		next := remaining[:0]
		for _, i := range remaining {
			if inU[i] {
				next = append(next, i)
			}
		}
		remaining = next

		out.merged = append(out.merged, mergedCluster{
			center: balls[s0].seed,
			set:    yset,
			subs:   append([]int(nil), ycol...),
		})
		out.covered = append(out.covered, ycol...)
	}
	return out
}

// Build is Fig. 8 (algorithm Cover) instantiated for Theorem 10: it
// covers the balls {Nhat_d(v)} of the given metric, guaranteeing
//
//  1. for every v some cluster contains all of Nhat_d(v) (Home[v]),
//  2. cluster radius (within the induced subgraph, from the seed center)
//     at most (2k-1)d, and
//  3. every node appears in at most 2k*n^(1/k) clusters.
func Build(g *graph.Graph, dm Metric, k int, d graph.Dist) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("cover: k must be >= 2, got %d", k)
	}
	if d < 1 {
		return nil, fmt.Errorf("cover: d must be >= 1, got %d", d)
	}
	n := g.N()
	balls := make([]ball, n)
	for v := 0; v < n; v++ {
		s := bitset.New(n)
		for u := 0; u < n; u++ {
			if dm(graph.NodeID(v), graph.NodeID(u)) <= d {
				s.Add(u)
			}
		}
		balls[v] = ball{seed: graph.NodeID(v), set: s}
	}

	res := &Result{D: d, Home: make([]int32, n)}
	for i := range res.Home {
		res.Home[i] = -1
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}

	for len(active) > 0 {
		out := partialCover(balls, active, k, n)
		if len(out.covered) == 0 {
			return nil, fmt.Errorf("cover: PartialCover made no progress with %d active balls", len(active))
		}
		for _, mc := range out.merged {
			idx := int32(len(res.Clusters))
			nodes := make([]graph.NodeID, 0, mc.set.Count())
			mc.set.ForEach(func(i int) { nodes = append(nodes, graph.NodeID(i)) })
			res.Clusters = append(res.Clusters, Cluster{Center: mc.center, Nodes: nodes})
			for _, bi := range mc.subs {
				res.Home[balls[bi].seed] = idx
			}
		}
		covered := make(map[int]bool, len(out.covered))
		for _, i := range out.covered {
			covered[i] = true
		}
		next := active[:0]
		for _, i := range active {
			if !covered[i] {
				next = append(next, i)
			}
		}
		active = next
	}

	for v, h := range res.Home {
		if h < 0 {
			return nil, fmt.Errorf("cover: node %d has no home cluster", v)
		}
	}
	return res, nil
}

// BuildBallGrowing is the ablation baseline discussed in §4.4: an
// RTZ-flavored region-growing cover. It repeatedly picks an uncovered
// node v and grows j until |Ball(v,(j+1)d)| <= n^(1/k) * |Ball(v,jd)|,
// emits Ball(v,(j+1)d) as a cluster, and assigns every still-homeless
// node of the core Ball(v,jd) this cluster as home. It yields radius at
// most (k+1)d — better than (2k-1)d — but unlike Build it gives no
// deterministic bound on how many clusters a node appears in, which is
// the property the paper's storage analysis needs.
func BuildBallGrowing(g *graph.Graph, dm Metric, k int, d graph.Dist) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cover: k must be >= 1, got %d", k)
	}
	if d < 1 {
		return nil, fmt.Errorf("cover: d must be >= 1, got %d", d)
	}
	n := g.N()
	ratio := math.Pow(float64(n), 1/float64(k))
	res := &Result{D: d, Home: make([]int32, n)}
	for i := range res.Home {
		res.Home[i] = -1
	}

	ballAt := func(v graph.NodeID, radius graph.Dist) []graph.NodeID {
		var out []graph.NodeID
		for u := 0; u < n; u++ {
			if dm(v, graph.NodeID(u)) <= radius {
				out = append(out, graph.NodeID(u))
			}
		}
		return out
	}

	for v := 0; v < n; v++ {
		if res.Home[v] >= 0 {
			continue
		}
		var core, cluster []graph.NodeID
		for j := graph.Dist(1); ; j++ {
			core = ballAt(graph.NodeID(v), j*d)
			cluster = ballAt(graph.NodeID(v), (j+1)*d)
			if float64(len(cluster)) <= ratio*float64(len(core)) {
				break
			}
		}
		idx := int32(len(res.Clusters))
		res.Clusters = append(res.Clusters, Cluster{Center: graph.NodeID(v), Nodes: cluster})
		for _, u := range core {
			if res.Home[u] < 0 {
				res.Home[u] = idx
			}
		}
	}
	return res, nil
}

// MaxOverlap returns the largest number of clusters any single node
// appears in — the quantity Theorem 10 property 3 bounds by 2k*n^(1/k).
func (r *Result) MaxOverlap(n int) int {
	counts := make([]int, n)
	for _, c := range r.Clusters {
		for _, v := range c.Nodes {
			counts[v]++
		}
	}
	m := 0
	for _, c := range counts {
		if c > m {
			m = c
		}
	}
	return m
}

// HomeCluster returns v's home cluster.
func (r *Result) HomeCluster(v graph.NodeID) Cluster {
	return r.Clusters[r.Home[v]]
}
