package cover

import (
	"fmt"
	"math"

	"rtroute/internal/graph"
	"rtroute/internal/tree"
)

// TreeRef names one double-tree in a Hierarchy: level index and tree
// index within the level. TreeRefs are the "identifiers for double-trees"
// the §4 scheme stores and writes into headers (poly-log bits).
type TreeRef struct {
	Level int32
	Index int32
}

// Level is one scale of the Theorem 13 hierarchy: a sparse cover at
// roundtrip radius Scale, with a double-tree per cluster and each node's
// home tree.
type Level struct {
	Scale graph.Dist
	Cover *Result
	Trees []*tree.Tree
}

// HomeTree returns v's home double-tree at this level, guaranteed to
// span Nhat_Scale(v) (Theorem 13 property 1).
func (l *Level) HomeTree(v graph.NodeID) *tree.Tree {
	return l.Trees[l.Cover.Home[v]]
}

// Hierarchy is the full §4 structure: covers at geometrically increasing
// roundtrip scales, double-trees on every cluster, and per-node tree
// memberships for storage accounting.
type Hierarchy struct {
	K      int
	Base   float64
	Levels []Level

	memberships [][]TreeRef
}

// Variant selects the cover construction for a hierarchy.
type Variant int

const (
	// VariantAwerbuchPeleg is the paper's Theorem 10 cover (Figs. 7–8):
	// radius (2k-1)d, overlap 2k*n^(1/k), home tree spans Nhat_d(v).
	VariantAwerbuchPeleg Variant = iota
	// VariantBallGrowing is the §4.4 ablation: radius (k+1)d, no
	// deterministic overlap bound.
	VariantBallGrowing
)

func (v Variant) String() string {
	switch v {
	case VariantAwerbuchPeleg:
		return "awerbuch-peleg"
	case VariantBallGrowing:
		return "ball-growing"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Scales returns the geometric scale ladder 2, ceil(base^2)... capped at
// the first value >= rtDiam. The ladder always has at least one level and
// strictly increases.
func Scales(rtDiam graph.Dist, base float64) []graph.Dist {
	if base < 1.01 {
		base = 1.01
	}
	if rtDiam < 2 {
		rtDiam = 2
	}
	var scales []graph.Dist
	x := 2.0
	for {
		s := graph.Dist(math.Ceil(x))
		if len(scales) == 0 || s > scales[len(scales)-1] {
			scales = append(scales, s)
		}
		if s >= rtDiam {
			return scales
		}
		x *= base
	}
}

// BuildHierarchy constructs covers and double-trees at every scale of the
// ladder for the roundtrip metric of m. base is the scale ratio (the
// paper uses 2; §4.4 notes 1+eps tightens the hop stretch at the price of
// more levels). m may be any distance oracle: the ball constructions scan
// r(v, ·) with a fixed anchor, which a lazy oracle serves from two cached
// rows per node.
func BuildHierarchy(g *graph.Graph, m graph.DistanceOracle, k int, base float64, variant Variant) (*Hierarchy, error) {
	// The ball scans below call rt with a fixed anchor across each inner
	// loop, so cache the anchor's two rows here instead of paying the
	// oracle's per-call bookkeeping n times per anchor. Build and
	// BuildBallGrowing are single-goroutine, so plain captures suffice.
	var (
		anchor   graph.NodeID = -1
		fwd, rev []graph.Dist
	)
	rt := func(u, v graph.NodeID) graph.Dist {
		if u != anchor {
			fwd, rev = m.FromSource(u), m.ToSink(u)
			anchor = u
		}
		return graph.RFromRows(fwd, rev, v)
	}
	h := &Hierarchy{K: k, Base: base, memberships: make([][]TreeRef, g.N())}
	for li, scale := range Scales(graph.RTDiamOf(m), base) {
		var (
			res *Result
			err error
		)
		switch variant {
		case VariantAwerbuchPeleg:
			res, err = Build(g, rt, k, scale)
		case VariantBallGrowing:
			res, err = BuildBallGrowing(g, rt, k, scale)
		default:
			return nil, fmt.Errorf("cover: unknown variant %v", variant)
		}
		if err != nil {
			return nil, fmt.Errorf("cover: level %d (scale %d): %w", li, scale, err)
		}
		lvl := Level{Scale: scale, Cover: res, Trees: make([]*tree.Tree, len(res.Clusters))}
		for ci, c := range res.Clusters {
			t, err := tree.BuildDouble(g, c.Center, c.Nodes)
			if err != nil {
				return nil, fmt.Errorf("cover: level %d cluster %d: %w", li, ci, err)
			}
			lvl.Trees[ci] = t
			for _, v := range c.Nodes {
				h.memberships[v] = append(h.memberships[v], TreeRef{Level: int32(li), Index: int32(ci)})
			}
		}
		h.Levels = append(h.Levels, lvl)
	}
	return h, nil
}

// Tree resolves a TreeRef.
func (h *Hierarchy) Tree(ref TreeRef) *tree.Tree {
	return h.Levels[ref.Level].Trees[ref.Index]
}

// N returns the number of nodes the hierarchy was built over.
func (h *Hierarchy) N() int { return len(h.memberships) }

// Memberships returns all trees containing v across all levels; callers
// must not modify the slice. Its length is the per-node tree count the
// storage analysis charges for.
func (h *Hierarchy) Memberships(v graph.NodeID) []TreeRef {
	return h.memberships[v]
}

// MaxMemberships returns the largest per-node tree count across the whole
// hierarchy (Theorem 13 property 3 times the number of levels).
func (h *Hierarchy) MaxMemberships() int {
	m := 0
	for _, refs := range h.memberships {
		if len(refs) > m {
			m = len(refs)
		}
	}
	return m
}

// RoundtripViaRoot returns the cost of the route u -> root -> v -> root
// -> u inside tree t, the "Hop" roundtrip of §3, or false if either node
// is outside the tree.
func RoundtripViaRoot(t *tree.Tree, u, v graph.NodeID) (graph.Dist, bool) {
	du, ok1 := t.DistTo(u)
	fu, ok2 := t.DistFrom(u)
	dv, ok3 := t.DistTo(v)
	fv, ok4 := t.DistFrom(v)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, false
	}
	return du + fu + dv + fv, true
}

// BestTree returns the shared tree minimizing RoundtripViaRoot(u,v) —
// the "most convenient double tree" of §3.3's R2(u,v) — or false if no
// tree contains both (cannot happen for a full hierarchy, whose top level
// spans V). The home-tree guarantee bounds the returned cost by
// 2*(2k-1)*scale at u's first level whose scale reaches r(u,v).
func (h *Hierarchy) BestTree(u, v graph.NodeID) (TreeRef, graph.Dist, bool) {
	var (
		bestRef  TreeRef
		bestCost graph.Dist = graph.Inf
		found    bool
	)
	for _, ref := range h.memberships[u] {
		t := h.Tree(ref)
		cost, ok := RoundtripViaRoot(t, u, v)
		if ok && (cost < bestCost || (cost == bestCost && less(ref, bestRef))) {
			bestRef, bestCost, found = ref, cost, true
		}
	}
	return bestRef, bestCost, found
}

func less(a, b TreeRef) bool {
	return a.Level < b.Level || (a.Level == b.Level && a.Index < b.Index)
}
