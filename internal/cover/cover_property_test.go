package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rtroute/internal/graph"
)

// Property-based sweeps of Theorem 10 over random (graph, k, d)
// combinations — the theorem promises worst-case properties for EVERY
// parameterization, so random sampling of the parameter space is the
// right generator.

func TestQuickTheorem10Coverage(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, kRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 16 + int(seedRaw)%24
		g := graph.RandomSC(n, 3*n, 5, rng)
		m := graph.AllPairs(g)
		dm := func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
		k := 2 + int(kRaw)%3
		d := graph.Dist(1 + int(dRaw)%20)
		res, err := Build(g, dm, k, d)
		if err != nil {
			return false
		}
		// Property 1 for every node.
		for v := 0; v < n; v++ {
			home := res.HomeCluster(graph.NodeID(v))
			inHome := make(map[graph.NodeID]bool, len(home.Nodes))
			for _, u := range home.Nodes {
				inHome[u] = true
			}
			for u := 0; u < n; u++ {
				if dm(graph.NodeID(v), graph.NodeID(u)) <= d && !inHome[graph.NodeID(u)] {
					return false
				}
			}
		}
		// Property 3.
		bound := int(math.Ceil(2 * float64(k) * math.Pow(float64(n), 1/float64(k))))
		return res.MaxOverlap(n) <= bound
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickClusterDisjointnessPerRound(t *testing.T) {
	// Within one PartialCover invocation, output clusters are pairwise
	// disjoint (Lemma 11 property 2). We verify the observable corollary
	// on the final cover: every ball is contained in its home cluster and
	// home assignments are total.
	err := quick.Check(func(seedRaw uint16, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 12 + int(seedRaw)%20
		g := graph.RandomSC(n, 3*n, 4, rng)
		m := graph.AllPairs(g)
		dm := func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
		d := graph.Dist(1 + int(dRaw)%15)
		res, err := Build(g, dm, 2, d)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if res.Home[v] < 0 || int(res.Home[v]) >= len(res.Clusters) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickBallGrowingRadius(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, kRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 12 + int(seedRaw)%20
		g := graph.RandomSC(n, 3*n, 4, rng)
		m := graph.AllPairs(g)
		dm := func(u, v graph.NodeID) graph.Dist { return m.R(u, v) }
		k := 1 + int(kRaw)%4
		d := graph.Dist(1 + int(dRaw)%12)
		res, err := BuildBallGrowing(g, dm, k, d)
		if err != nil {
			return false
		}
		// Global-metric radius from the seed is bounded by (k+1)d;
		// induced radius equals it for balls (cycle closure).
		for _, c := range res.Clusters {
			for _, v := range c.Nodes {
				if dm(c.Center, v) > graph.Dist(k+1)*d {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickScalesLadderInvariants(t *testing.T) {
	err := quick.Check(func(diamRaw uint16, baseRaw uint8) bool {
		diam := graph.Dist(1 + int(diamRaw)%100000)
		base := 1.1 + float64(baseRaw%40)/10 // 1.1 .. 5.0
		s := Scales(diam, base)
		if len(s) == 0 {
			return false
		}
		for i := 0; i+1 < len(s); i++ {
			if s[i] >= s[i+1] {
				return false
			}
		}
		return s[len(s)-1] >= diam || diam < 2
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}
