package core

import (
	"math/rand"
	"testing"

	"rtroute/internal/blocks"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

func buildExStretch(t testing.TB, seed int64, g *graph.Graph, perm *names.Permutation, k int) (*ExStretch, *graph.Metric) {
	t.Helper()
	m := graph.AllPairs(g)
	rng := rand.New(rand.NewSource(seed))
	if perm == nil {
		perm = names.Random(g.N(), rng)
	}
	s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// ladderScale returns the smallest base-2 ladder scale >= r (the hop
// substrate's level granularity).
func ladderScale(r graph.Dist) graph.Dist {
	s := graph.Dist(2)
	for s < r {
		s *= 2
	}
	return s
}

// TestExStretchDelivers is experiment E4's correctness half (Lemma 7):
// packets reach t and return to s for every ordered pair, k in {2,3}.
func TestExStretchDelivers(t *testing.T) {
	for _, k := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(k)))
		g := graph.RandomSC(36, 144, 6, rng)
		perm := names.Random(g.N(), rng)
		s, _ := buildExStretch(t, int64(k)+50, g, perm, k)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				if _, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v))); err != nil {
					t.Fatalf("k=%d roundtrip (%d,%d): %v", k, u, v, err)
				}
			}
		}
	}
}

// TestExStretchLemma8 verifies the geometric waypoint bound
// r(v_i, v_i+1) <= 2^i * r(s,t) for every pair and every leg.
func TestExStretchLemma8(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		rng := rand.New(rand.NewSource(int64(k) + 10))
		g := graph.RandomSC(32, 128, 5, rng)
		perm := names.Random(g.N(), rng)
		s, m := buildExStretch(t, int64(k)+60, g, perm, k)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				wps, err := s.Waypoints(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatalf("k=%d waypoints (%d,%d): %v", k, u, v, err)
				}
				if wps[len(wps)-1] != graph.NodeID(v) {
					t.Fatalf("k=%d: waypoint walk (%d,%d) ends at %d", k, u, v, wps[len(wps)-1])
				}
				rst := m.R(graph.NodeID(u), graph.NodeID(v))
				// The i-th VISITED leg corresponds to hop index >= its
				// position, so position-based 2^i bounds are valid:
				// skipped waypoints only lower the index.
				pow := graph.Dist(1)
				for i := 0; i+1 < len(wps); i++ {
					leg := m.R(wps[i], wps[i+1])
					if leg > pow*rst*(1<<uint(k)) { // defensive slack never hit; precise check below
						t.Fatalf("leg absurdly long")
					}
					pow *= 2
				}
				// Precise Lemma 8 check with true hop indices.
				if err := checkLemma8(s, m, perm, graph.NodeID(u), graph.NodeID(v), rst); err != nil {
					t.Fatalf("k=%d pair (%d,%d): %v", k, u, v, err)
				}
			}
		}
	}
}

// checkLemma8 recomputes the waypoint walk with hop indices and asserts
// r(v_i, v_i+1) <= 2^i r(s,t) using the paper's indexing (legs between
// consecutive hop indices, including skipped self-legs of cost 0).
func checkLemma8(s *ExStretch, m *graph.Metric, perm *names.Permutation, src, dst graph.NodeID, rst graph.Dist) error {
	cur := src
	for hop := 0; hop < s.K(); hop++ {
		tab := s.nodes[cur]
		nextName, _, err := s.lookupNext(tab, hop, perm.Name(int32(dst)))
		if err != nil {
			return err
		}
		next := graph.NodeID(perm.Node(nextName))
		if leg := m.R(cur, next); leg > (1<<uint(hop))*rst {
			return &lemma8Violation{hop: hop, leg: leg, bound: (1 << uint(hop)) * rst}
		}
		cur = next
	}
	return nil
}

type lemma8Violation struct {
	hop   int
	leg   graph.Dist
	bound graph.Dist
}

func (e *lemma8Violation) Error() string {
	return "Lemma 8 violated"
}

// TestExStretchTheorem9Bound asserts the end-to-end stretch bound with
// our substrate's constants: the total roundtrip is at most the sum over
// legs of the hop substrate's per-leg bound 2*(2k_c-1)*scale(r_leg),
// which with Lemma 8 gives the (2^k - 1)-type growth of Theorem 9.
func TestExStretchTheorem9Bound(t *testing.T) {
	for _, k := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(k) + 20))
		g := graph.RandomSC(30, 120, 5, rng)
		perm := names.Random(g.N(), rng)
		s, m := buildExStretch(t, int64(k)+70, g, perm, k)
		kc := k // cover parameter defaults to K
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				wps, err := s.Waypoints(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				var bound graph.Dist
				for i := 0; i+1 < len(wps); i++ {
					bound += 2 * graph.Dist(2*kc-1) * ladderScale(m.R(wps[i], wps[i+1]))
				}
				if got := rt.Weight(); got > bound {
					t.Fatalf("k=%d pair (%d,%d): roundtrip %d > substrate bound %d", k, u, v, got, bound)
				}
			}
		}
	}
}

func TestExStretchSelfRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := graph.RandomSC(20, 80, 4, rng)
	perm := names.Random(g.N(), rng)
	s, _ := buildExStretch(t, 31, g, perm, 2)
	rt, err := s.Roundtrip(perm.Name(5), perm.Name(5))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Weight() != 0 {
		t.Fatalf("self roundtrip weight %d, want 0", rt.Weight())
	}
}

func TestExStretchHeaderBound(t *testing.T) {
	// Headers are o(k log^2 n): a k-deep stack of handshakes. Assert the
	// stack never exceeds k records via the word count.
	rng := rand.New(rand.NewSource(32))
	g := graph.RandomSC(64, 256, 5, rng)
	perm := names.Random(g.N(), rng)
	k := 3
	s, _ := buildExStretch(t, 33, g, perm, k)
	// Worst-case single handshake: 2 + 2 labels of (1+2*log2(64)) = 13
	// words each => 28; k of them plus leg/bookkeeping.
	perHS := 2 + 2*(1+2*6+1)
	bound := 5 + (3 + 14) + k*(1+perHS)
	for trial := 0; trial < 400; trial++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		rt, err := s.Roundtrip(perm.Name(u), perm.Name(v))
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.MaxHeaderWords(); got > bound {
			t.Fatalf("header %d words > bound %d", got, bound)
		}
	}
}

func TestExStretchAdversarialNaming(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := graph.RandomSC(25, 100, 4, rng)
	m := graph.AllPairs(g)
	for _, perm := range []*names.Permutation{names.Identity(g.N()), names.Reversed(g.N())} {
		s, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(35)), ExStretchConfig{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				if _, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v))); err != nil {
					t.Fatalf("naming broke delivery at (%d,%d): %v", u, v, err)
				}
			}
		}
	}
}

func TestExStretchKValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g := graph.RandomSC(10, 40, 3, rng)
	m := graph.AllPairs(g)
	if _, err := NewExStretch(g, m, names.Identity(10), rng, ExStretchConfig{K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewExStretch(g, m, names.Identity(10), rng, ExStretchConfig{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestExStretchTableTradeoff(t *testing.T) {
	// Larger k must shrink tables (the whole point of the tradeoff):
	// compare k=2 vs k=4 on the same 256-node graph.
	rng := rand.New(rand.NewSource(37))
	g := graph.RandomSC(256, 1024, 5, rng)
	perm := names.Random(g.N(), rng)
	m := graph.AllPairs(g)
	s2, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(38)), ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(39)), ExStretchConfig{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s4.AvgTableWords() >= s2.AvgTableWords() {
		t.Fatalf("k=4 tables (%.0f words) not smaller than k=2 (%.0f words)",
			s4.AvgTableWords(), s2.AvgTableWords())
	}
}

func TestExStretchCoverKDecoupled(t *testing.T) {
	// The word length K (dictionary depth) and the cover parameter
	// (substrate quality) are independent knobs; K=3 dictionaries over a
	// k=2 cover must still deliver everywhere.
	rng := rand.New(rand.NewSource(70))
	g := graph.RandomSC(30, 120, 5, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: 3, CoverK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatalf("K=3/CoverK=2 roundtrip (%d,%d): %v", u, v, err)
			}
			if rt.Weight() < m.R(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("roundtrip below optimum at (%d,%d)", u, v)
			}
		}
	}
}

func TestExStretchFinerScaleBase(t *testing.T) {
	// The eps knob: a finer substrate ladder must keep correctness and
	// must not worsen the aggregate stretch.
	rng := rand.New(rand.NewSource(71))
	g := graph.RandomSC(26, 104, 5, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	coarse, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(72)), ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(72)), ExStretchConfig{K: 2, ScaleBase: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	var coarseTotal, fineTotal graph.Dist
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			a, err := coarse.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := fine.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			coarseTotal += a.Weight()
			fineTotal += b.Weight()
		}
	}
	if fineTotal > coarseTotal*11/10 {
		t.Fatalf("finer ladder markedly worse in aggregate: %d vs %d", fineTotal, coarseTotal)
	}
}

func TestExStretchWaypointPrefixInvariant(t *testing.T) {
	// Every waypoint v_i (0 < i < k) must hold a block matching the
	// first i digits of the destination name — the §3.4 invariant. Use a
	// graph large enough (and a low block boost) that the assignment is
	// actually sparse, otherwise every node holds every block and the
	// walk degenerates to a single hop.
	rng := rand.New(rand.NewSource(40))
	g := graph.RandomSC(64, 256, 4, rng)
	perm := names.Random(g.N(), rng)
	m := graph.AllPairs(g)
	k := 3
	s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{
		K:      k,
		Blocks: blocks.Config{Boost: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	multiHopWalks := 0
	for u := 0; u < g.N(); u += 2 {
		for v := 1; v < g.N(); v += 3 {
			if u == v {
				continue
			}
			dst := perm.Name(int32(v))
			cur := graph.NodeID(u)
			moved := 0
			for hop := 0; hop < k; hop++ {
				nextName, _, err := s.lookupNext(s.nodes[cur], hop, dst)
				if err != nil {
					t.Fatal(err)
				}
				next := graph.NodeID(perm.Node(nextName))
				if next != cur {
					moved++
				}
				if hop+1 < k && !s.HoldsPrefix(next, hop+1, dst) {
					t.Fatalf("waypoint %d (hop %d) holds no block matching prefix of name %d", next, hop+1, dst)
				}
				cur = next
			}
			if moved > 1 {
				multiHopWalks++
			}
		}
	}
	if multiHopWalks == 0 {
		t.Fatal("test vacuous: no walk used more than one waypoint; shrink Boost or grow n")
	}
}
