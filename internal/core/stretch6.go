package core

import (
	"fmt"
	"math/rand"

	"rtroute/internal/blocks"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/parallel"
	"rtroute/internal/rtmetric"
	"rtroute/internal/rtz"
	"rtroute/internal/sealed"
	"rtroute/internal/sim"
)

// StretchSix is the §2 scheme: a TINN compact roundtrip routing scheme
// with O~(sqrt n) tables and stretch 6.
//
// Per-node storage (§2.1):
//  1. for every v in N(u) — the first ceil(sqrt n) nodes of Init_u — the
//     pair (name(v), R3(v));
//  2. for every block index i, the name of a node t in N(u) with
//     B_i in S_t (Lemma 1 guarantees one exists);
//  3. for every block B in S_u and every name j in B, the pair
//     (j, R3(node named j));
//  4. the substrate table Tab3(u) of the stretch-3 name-dependent scheme.
type StretchSix struct {
	g         *graph.Graph
	perm      *names.Permutation
	sub       *rtz.Scheme
	uni       blocks.Universe
	viaSource bool
	nodes     []*s6Table
}

type s6Table struct {
	selfName int32
	ownLabel rtz.Label
	// labels merges storage items (1) and (3): destination name -> R3.
	// Builder state only: sealLabels compiles it into the probe table
	// the forwarding hot path reads and then drops the map, so a
	// long-lived serving plane does not hold the dictionary twice.
	labels map[int32]rtz.Label
	lbl    sealed.Table[rtz.Label]
	// blockHolder is storage item (2): block id -> name of a
	// neighborhood node holding that block.
	blockHolder []int32
	// tab3 is storage item (4).
	tab3 *rtz.Table

	neighborEntries int // size of (1), for accounting
}

// sealLabels compiles the labels map into the probe table and releases
// the builder map.
func (t *s6Table) sealLabels() {
	t.lbl = sealed.Compile(t.labels)
	t.labels = nil
}

// label resolves a destination name against the sealed dictionary.
func (t *s6Table) label(name int32) (rtz.Label, bool) {
	if !t.lbl.Built() {
		l, ok := t.labels[name]
		return l, ok
	}
	return t.lbl.Get(name)
}

func (t *s6Table) words() int {
	w := 2 + t.ownLabel.Words() + t.tab3.Words() + 2*len(t.blockHolder)
	t.lbl.Range(func(_ int32, l rtz.Label) {
		w += 1 + l.Words()
	})
	for _, l := range t.labels { // unsealed builder state, if any
		w += 1 + l.Words()
	}
	return w
}

// S6Stage tracks the ViaSource variant's progress through its
// s -> w -> s -> t itinerary.
type S6Stage int8

const (
	S6StageDirect S6Stage = iota
	S6StageFetch
	S6StageFetchReturn
	S6StageFinal
)

// S6Header is the packet header of Fig. 3.
type S6Header struct {
	Mode     Mode
	DestName int32
	SrcName  int32
	SrcLabel rtz.Label
	DictName int32 // name of the dictionary waypoint w, -1 when direct
	Stage    S6Stage
	Fetched  rtz.Label // R3(t) fetched at w (ViaSource variant only)
	Leg      rtz.Header
	LegSet   bool

	// Cached word counts of Leg, SrcLabel and Fetched. The header is
	// measured on every hop but rewritten only at waypoints, so Words
	// must not re-walk the label structures per hop; setLeg/setSrcLabel/
	// setFetched keep the caches in step (locked by
	// TestS6HeaderWordsCacheConsistent).
	legW, srcW, fetchedW int32
}

func (h *S6Header) setLeg(l rtz.Header) {
	h.Leg = l
	h.legW = int32(l.Words())
	h.LegSet = true
}

func (h *S6Header) setSrcLabel(l rtz.Label) {
	h.SrcLabel = l
	h.srcW = int32(l.Words())
}

func (h *S6Header) setFetched(l rtz.Label) {
	h.Fetched = l
	h.fetchedW = int32(l.Words())
}

// SyncCaches recomputes the cached word counts from the label fields.
// The wire decoder writes the exported fields directly and then calls
// this once, so a decoded header measures exactly like a live one.
func (h *S6Header) SyncCaches() {
	h.legW = int32(h.Leg.Words())
	h.srcW = int32(h.SrcLabel.Words())
	h.fetchedW = int32(h.Fetched.Words())
}

// PrimeWordCaches is SyncCaches for the lazy flight-frame decoder,
// which may leave SrcLabel/Fetched undecoded on a forwarding shard: all
// three word counts travel in the frame's fixed section, so the header
// measures exactly like the fully decoded original without re-walking
// any label structure per crossing.
func (h *S6Header) PrimeWordCaches(legW, srcW, fetchedW int32) {
	h.legW = legW
	h.srcW = srcW
	h.fetchedW = fetchedW
}

// Words implements sim.Header.
func (h *S6Header) Words() int {
	w := 6 + int(h.legW)
	if h.Mode >= ModeOutbound {
		w += int(h.srcW)
	}
	if h.Stage == S6StageFetchReturn || h.Stage == S6StageFinal {
		w += int(h.fetchedW)
	}
	return w
}

// wordsRecomputed is the reference implementation of Words, re-deriving
// every cached component; the cache-consistency test compares the two.
func (h *S6Header) wordsRecomputed() int {
	w := 6 + h.Leg.Words()
	if h.Mode >= ModeOutbound {
		w += h.SrcLabel.Words()
	}
	if h.Stage == S6StageFetchReturn || h.Stage == S6StageFinal {
		w += h.Fetched.Words()
	}
	return w
}

var _ sim.Header = (*S6Header)(nil)
var _ sim.Forwarder = (*StretchSix)(nil)
var _ Scheme = (*StretchSix)(nil)

// Stretch6Config tunes construction.
type Stretch6Config struct {
	// Blocks configures the Lemma 1 assignment.
	Blocks blocks.Config
	// Substrate configures the stretch-3 scheme.
	Substrate rtz.Config
	// ViaSource selects the variant discussed at the end of §2.2: route
	// s -> w -> s to fetch the destination's address, then s -> t -> s.
	// Same worst-case stretch 6, but "it can result in longer paths
	// since it always routes back through s" — the E3 ablation measures
	// exactly that.
	ViaSource bool
	// BuildWorkers parallelizes per-node table construction
	// (0 = GOMAXPROCS, 1 = sequential). Output is identical either way.
	BuildWorkers int
}

// NewStretchSix builds the scheme over g with naming perm. m may be any
// distance oracle; construction never requires the dense n×n matrix.
func NewStretchSix(g *graph.Graph, m graph.DistanceOracle, perm *names.Permutation, rng *rand.Rand, cfg Stretch6Config) (*StretchSix, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("core: stretch-6 needs at least 2 nodes, got %d", n)
	}
	if perm.N() != n {
		return nil, fmt.Errorf("core: naming covers %d nodes, graph has %d", perm.N(), n)
	}
	space := rtmetric.New(g, m, perm.Names)
	sub, err := rtz.New(g, m, rng, cfg.Substrate)
	if err != nil {
		return nil, fmt.Errorf("core: stretch-3 substrate: %w", err)
	}
	bcfg := cfg.Blocks
	bcfg.Names = perm.Names
	assign, err := blocks.Assign(space, 2, rng, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: block assignment: %w", err)
	}

	s := &StretchSix{g: g, perm: perm, sub: sub, uni: assign.U, viaSource: cfg.ViaSource, nodes: make([]*s6Table, n)}
	nbhdSize := rtmetric.NeighborhoodSizes(n, 2)[1]

	// Per-node tables depend only on read-only shared state; fill the
	// Init cache first, then build nodes in parallel.
	space.Precompute(cfg.BuildWorkers)
	err = parallel.ForEach(n, cfg.BuildWorkers, func(u int) error {
		tab, err := buildS6Node(u, perm, sub, space, assign, nbhdSize)
		if err != nil {
			return err
		}
		tab.sealLabels()
		s.nodes[u] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// buildS6Node constructs one node's §2.1 table from the shared read-only
// build state. It is the unit of work both the fresh builder (which then
// seals the label map) and the incremental maintainer (which keeps it
// patchable) run per node.
func buildS6Node(u int, perm *names.Permutation, sub *rtz.Scheme, space *rtmetric.Space, assign *blocks.Assignment, nbhdSize int) (*s6Table, error) {
	numBlocks := assign.U.NumBlocks()
	tab := &s6Table{
		selfName:    perm.Name(int32(u)),
		ownLabel:    sub.LabelOf(graph.NodeID(u)),
		labels:      make(map[int32]rtz.Label),
		blockHolder: make([]int32, numBlocks),
		tab3:        sub.Tables[u],
	}
	for i := range tab.blockHolder {
		tab.blockHolder[i] = -1
	}
	nbhd := space.Neighborhood(graph.NodeID(u), nbhdSize)
	// (1) neighborhood dictionary.
	for _, v := range nbhd {
		tab.labels[perm.Name(int32(v))] = sub.LabelOf(v)
	}
	tab.neighborEntries = len(nbhd)
	// (2) block holders: the Init_u-nearest holder in N(u).
	for _, v := range nbhd {
		for _, b := range assign.Sets[v] {
			if tab.blockHolder[b] < 0 {
				tab.blockHolder[b] = perm.Name(int32(v))
			}
		}
	}
	for b := 0; b < numBlocks; b++ {
		// Blocks holding no real names need no holder; every block
		// of a real name must be covered (Lemma 1).
		if tab.blockHolder[b] < 0 && len(assign.U.NamesInBlock(blocks.BlockID(b))) > 0 {
			return nil, fmt.Errorf("core: node %d has no holder for block %d in its neighborhood", u, b)
		}
	}
	// (3) dictionary entries of the blocks stored here.
	for _, b := range assign.Sets[u] {
		for _, nm := range assign.U.NamesInBlock(b) {
			v := perm.Node(nm)
			tab.labels[nm] = sub.LabelOf(graph.NodeID(v))
		}
	}
	return tab, nil
}

// SchemeName implements Scheme.
func (s *StretchSix) SchemeName() string {
	if s.viaSource {
		return "stretch6(via-source)"
	}
	return "stretch6"
}

// Forward implements the Fig. 3 local routing algorithm.
func (s *StretchSix) Forward(at graph.NodeID, header sim.Header) (graph.PortID, bool, error) {
	h, ok := header.(*S6Header)
	if !ok {
		return 0, false, fmt.Errorf("core: stretch-6 got %T header", header)
	}
	tab := s.nodes[at]
	nx := tab.selfName

	switch h.Mode {
	case ModeNewPacket:
		h.Mode = ModeOutbound
		h.SrcName = nx
		h.setSrcLabel(tab.ownLabel)
		h.DictName = -1
		if h.DestName == nx {
			return 0, true, nil
		}
		if lbl, ok := tab.label(h.DestName); ok {
			h.setLeg(rtz.Header{Dest: lbl.Node, Label: lbl, Phase: rtz.PhaseSeek})
		} else {
			if h.DestName < 0 || int(h.DestName) >= s.uni.N {
				return 0, false, fmt.Errorf("core: destination name %d outside the name space [0,%d)", h.DestName, s.uni.N)
			}
			holder := tab.blockHolder[s.uni.BlockOf(h.DestName)]
			if holder < 0 {
				return 0, false, fmt.Errorf("core: no dictionary holder for name %d at source %d", h.DestName, nx)
			}
			lbl, ok := tab.label(holder)
			if !ok {
				return 0, false, fmt.Errorf("core: holder %d for name %d not in neighborhood table of %d", holder, h.DestName, nx)
			}
			h.DictName = holder
			if s.viaSource {
				h.Stage = S6StageFetch
			}
			h.setLeg(rtz.Header{Dest: lbl.Node, Label: lbl, Phase: rtz.PhaseSeek})
		}

	case ModeReturnPacket:
		h.Mode = ModeInbound
		if nx == h.SrcName {
			return 0, true, nil
		}
		h.setLeg(rtz.Header{Dest: h.SrcLabel.Node, Label: h.SrcLabel, Phase: rtz.PhaseSeek})

	case ModeOutbound:
		switch {
		case nx == h.DestName:
			return 0, true, nil
		case nx == h.DictName:
			// Remote dictionary lookup (Fig. 3's DictID branch).
			lbl, ok := tab.label(h.DestName)
			if !ok {
				return 0, false, fmt.Errorf("core: dictionary node %d lacks entry for %d", nx, h.DestName)
			}
			h.DictName = -1
			if h.Stage == S6StageFetch {
				// §2.2 variant: carry R3(t) back to the source first.
				h.setFetched(lbl)
				h.Stage = S6StageFetchReturn
				h.setLeg(rtz.Header{Dest: h.SrcLabel.Node, Label: h.SrcLabel, Phase: rtz.PhaseSeek})
			} else {
				h.setLeg(rtz.Header{Dest: lbl.Node, Label: lbl, Phase: rtz.PhaseSeek})
			}
		case nx == h.SrcName && h.Stage == S6StageFetchReturn:
			// Back at the source with the fetched address: head to t.
			h.Stage = S6StageFinal
			h.setLeg(rtz.Header{Dest: h.Fetched.Node, Label: h.Fetched, Phase: rtz.PhaseSeek})
		}

	case ModeInbound:
		if nx == h.SrcName {
			return 0, true, nil
		}

	default:
		return 0, false, fmt.Errorf("core: invalid mode %v", h.Mode)
	}

	if !h.LegSet {
		return 0, false, fmt.Errorf("core: packet at %d has no active leg", nx)
	}
	port, delivered, err := rtz.Forward(tab.tab3, &h.Leg)
	if err != nil {
		return 0, false, err
	}
	if delivered {
		// The substrate thinks the leg target is here, but the mode
		// logic above did not recognize this node as a waypoint: the
		// name/label tables disagree, which is a construction bug.
		return 0, false, fmt.Errorf("core: leg delivered at %d without waypoint match", nx)
	}
	return port, false, nil
}

// NewHeader implements sim.Plane: a fresh Fig. 3 header addressed to
// dstName (the source name is learned at the first Forward, as the model
// requires).
func (s *StretchSix) NewHeader(srcName, dstName int32) (sim.Header, error) {
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return nil, fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	h := &S6Header{Mode: ModeNewPacket, DestName: dstName, DictName: -1}
	h.legW = int32(h.Leg.Words())
	return h, nil
}

// ResetHeader implements sim.Plane: rewrite an earlier header in place
// into a fresh Fig. 3 outbound header, allocating nothing.
func (s *StretchSix) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*S6Header)
	if !ok {
		return fmt.Errorf("core: stretch-6 got %T header", h)
	}
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	*hh = S6Header{Mode: ModeNewPacket, DestName: dstName, DictName: -1}
	hh.legW = int32(hh.Leg.Words())
	return nil
}

// BeginReturn implements sim.Plane: flip the delivered outbound header
// into the acknowledgment leg.
func (s *StretchSix) BeginReturn(h sim.Header) error {
	hh, ok := h.(*S6Header)
	if !ok {
		return fmt.Errorf("core: stretch-6 got %T header", h)
	}
	hh.Mode = ModeReturnPacket
	return nil
}

// NodeOf implements sim.Plane.
func (s *StretchSix) NodeOf(name int32) graph.NodeID { return graph.NodeID(s.perm.Node(name)) }

// Graph implements sim.Plane.
func (s *StretchSix) Graph() *graph.Graph { return s.g }

// Roundtrip implements Scheme: it routes srcName -> dstName and the
// acknowledgment back, as two sim runs sharing one header (the reply
// reuses the topology learned on the way out, §1.1.1).
func (s *StretchSix) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(s, srcName, dstName, 0)
}

// MaxTableWords implements Scheme.
func (s *StretchSix) MaxTableWords() int {
	m := 0
	for _, t := range s.nodes {
		if w := t.words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords implements Scheme.
func (s *StretchSix) AvgTableWords() float64 {
	total := 0
	for _, t := range s.nodes {
		total += t.words()
	}
	return float64(total) / float64(len(s.nodes))
}

// NeighborhoodEntries reports the size of storage item (1) at each node,
// for the space-accounting experiments.
func (s *StretchSix) NeighborhoodEntries(v graph.NodeID) int { return s.nodes[v].neighborEntries }
