package core

import (
	"fmt"

	"rtroute/internal/graph"
	"rtroute/internal/sim"
)

// ShardView is the slice of a Deployment one cluster shard serves: the
// per-node Routers of the nodes assigned to that shard, plus the
// injection surface (NewHeader/BeginReturn and the naming), which is the
// model's source-side global knowledge and therefore available on every
// shard. Forwarding is the restricted part — a ShardView refuses to
// forward at a node another shard owns, so a serving layer built on it
// provably touches only shard-local routing state between boundary
// crossings.
//
// A ShardView implements sim.Plane; like the Deployment it views, it is
// safe for any number of concurrent goroutines.
type ShardView struct {
	dep   *Deployment
	shard int32
	owner []int32 // node -> owning shard
}

// ShardView returns the view of d restricted to the routers that
// owner assigns to the given shard. owner must map every node to a
// non-negative shard index; the slice is retained, not copied — callers
// must not mutate it afterwards.
func (d *Deployment) ShardView(shard int, owner []int32) (*ShardView, error) {
	n := d.Graph().N()
	if len(owner) != n {
		return nil, fmt.Errorf("core: shard view: owner maps %d nodes, deployment has %d", len(owner), n)
	}
	if shard < 0 {
		return nil, fmt.Errorf("core: shard view: negative shard %d", shard)
	}
	nodes := 0
	for v, s := range owner {
		if s < 0 {
			return nil, fmt.Errorf("core: shard view: node %d assigned to negative shard %d", v, s)
		}
		if int(s) == shard {
			nodes++
		}
	}
	if nodes == 0 {
		return nil, fmt.Errorf("core: shard view: shard %d owns no nodes", shard)
	}
	return &ShardView{dep: d, shard: int32(shard), owner: owner}, nil
}

var _ sim.Plane = (*ShardView)(nil)

// Shard returns the shard index this view serves.
func (v *ShardView) Shard() int { return int(v.shard) }

// Deployment returns the deployment the view restricts.
func (v *ShardView) Deployment() *Deployment { return v.dep }

// Owns reports whether this shard serves the given node.
func (v *ShardView) Owns(node graph.NodeID) bool {
	return node >= 0 && int(node) < len(v.owner) && v.owner[node] == v.shard
}

// OwnsName reports whether this shard serves the named node. Unlike
// NodeOf it tolerates names outside the deployment — it reports false —
// because the lazy flight-frame decoder probes it with names taken
// straight from untrusted network input.
func (v *ShardView) OwnsName(name int32) bool {
	if name < 0 || int(name) >= len(v.owner) {
		return false
	}
	return v.Owns(v.dep.NodeOf(name))
}

// Owner returns the shard that serves the given node.
func (v *ShardView) Owner(node graph.NodeID) int { return int(v.owner[node]) }

// NodeCount returns how many nodes this shard owns.
func (v *ShardView) NodeCount() int {
	n := 0
	for _, s := range v.owner {
		if s == v.shard {
			n++
		}
	}
	return n
}

// Forward implements sim.Forwarder for shard-local nodes only: a packet
// at a foreign node is a serving-layer bug (it should have been framed
// and shipped to its owner), reported as an error rather than silently
// forwarded with state this shard does not hold.
func (v *ShardView) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	if !v.Owns(at) {
		if at < 0 || int(at) >= len(v.owner) {
			return 0, false, fmt.Errorf("core: shard %d asked to forward at nonexistent node %d", v.shard, at)
		}
		return 0, false, fmt.Errorf("core: shard %d asked to forward at node %d owned by shard %d",
			v.shard, at, v.owner[at])
	}
	return v.dep.Forward(at, h)
}

// NewHeader implements sim.Plane (injection-side global knowledge).
func (v *ShardView) NewHeader(srcName, dstName int32) (sim.Header, error) {
	return v.dep.NewHeader(srcName, dstName)
}

// ResetHeader implements sim.Plane.
func (v *ShardView) ResetHeader(h sim.Header, srcName, dstName int32) error {
	return v.dep.ResetHeader(h, srcName, dstName)
}

// BeginReturn implements sim.Plane.
func (v *ShardView) BeginReturn(h sim.Header) error { return v.dep.BeginReturn(h) }

// NodeOf implements sim.Plane.
func (v *ShardView) NodeOf(name int32) graph.NodeID { return v.dep.NodeOf(name) }

// Graph implements sim.Plane.
func (v *ShardView) Graph() *graph.Graph { return v.dep.Graph() }
