package core

import (
	"math/rand"
	"testing"

	"rtroute/internal/graph"
	"rtroute/internal/names"
)

// TestParallelBuildDeterminism: per-node construction has no randomness,
// so any worker count must produce byte-identical routing behavior.
func TestParallelBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomSC(40, 160, 6, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)

	buildS6 := func(workers int) *StretchSix {
		s, err := NewStretchSix(g, m, perm, rand.New(rand.NewSource(2)), Stretch6Config{BuildWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	buildEx := func(workers int) *ExStretch {
		s, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(3)), ExStretchConfig{K: 2, BuildWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	buildPoly := func(workers int) *PolynomialStretch {
		s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2, BuildWorkers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	pairsEqual := func(a, b Scheme) {
		t.Helper()
		for u := 0; u < g.N(); u += 3 {
			for v := 1; v < g.N(); v += 4 {
				if u == v {
					continue
				}
				ta, err := a.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				tb, err := b.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				if ta.Weight() != tb.Weight() || ta.Hops() != tb.Hops() {
					t.Fatalf("%s: worker counts disagree at (%d,%d): %d/%d vs %d/%d",
						a.SchemeName(), u, v, ta.Weight(), ta.Hops(), tb.Weight(), tb.Hops())
				}
			}
		}
	}

	pairsEqual(buildS6(1), buildS6(8))
	pairsEqual(buildEx(1), buildEx(8))
	pairsEqual(buildPoly(1), buildPoly(8))

	// Table accounting must match too.
	if a, b := buildS6(1).MaxTableWords(), buildS6(8).MaxTableWords(); a != b {
		t.Fatalf("stretch6 table words differ: %d vs %d", a, b)
	}
	if a, b := buildEx(1).MaxTableWords(), buildEx(8).MaxTableWords(); a != b {
		t.Fatalf("exstretch table words differ: %d vs %d", a, b)
	}
	if a, b := buildPoly(1).MaxTableWords(), buildPoly(8).MaxTableWords(); a != b {
		t.Fatalf("poly table words differ: %d vs %d", a, b)
	}
}
