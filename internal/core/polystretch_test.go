package core

import (
	"math/rand"
	"testing"

	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

func buildPoly(t testing.TB, seed int64, g *graph.Graph, perm *names.Permutation, k int) (*PolynomialStretch, *graph.Metric) {
	t.Helper()
	m := graph.AllPairs(g)
	if perm == nil {
		perm = names.Random(g.N(), rand.New(rand.NewSource(seed)))
	}
	s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// polyBound is the §4.3 stretch bound 8k^2 + 4k - 4.
func polyBound(k int) graph.Dist {
	return graph.Dist(8*k*k + 4*k - 4)
}

// TestPolyStretchBound is experiment E6: the §4.3 worst-case stretch
// bound holds for every ordered pair, for k in {2, 3}.
func TestPolyStretchBound(t *testing.T) {
	for _, k := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(k)))
		g := graph.RandomSC(36, 144, 6, rng)
		perm := names.Random(g.N(), rng)
		s, m := buildPoly(t, int64(k)+80, g, perm, k)
		bound := polyBound(k)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatalf("k=%d roundtrip (%d,%d): %v", k, u, v, err)
				}
				r := m.R(graph.NodeID(u), graph.NodeID(v))
				if got := rt.Weight(); got > bound*r {
					t.Fatalf("k=%d: poly stretch violated at (%d,%d): %d > %d * %d", k, u, v, got, bound, r)
				}
				if got := rt.Weight(); got < r {
					t.Fatalf("k=%d: roundtrip (%d,%d) = %d beats optimum %d", k, u, v, got, r)
				}
			}
		}
	}
}

func TestPolyStretchDeliversOnHardGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, g := range []*graph.Graph{
		graph.Ring(20, rng),
		graph.Grid(4, 5, rng),
		graph.LayeredSC(4, 5, 4, rng),
	} {
		perm := names.Random(g.N(), rng)
		s, m := buildPoly(t, 91, g, perm, 2)
		bound := polyBound(2)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatalf("roundtrip (%d,%d) on %d-node graph: %v", u, v, g.N(), err)
				}
				if rt.Weight() > bound*m.R(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("stretch violated at (%d,%d) on %d-node graph", u, v, g.N())
				}
			}
		}
	}
}

func TestPolySelfRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := graph.RandomSC(18, 72, 4, rng)
	perm := names.Random(g.N(), rng)
	s, _ := buildPoly(t, 93, g, perm, 2)
	rt, err := s.Roundtrip(perm.Name(2), perm.Name(2))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Weight() != 0 {
		t.Fatalf("self roundtrip weight %d, want 0", rt.Weight())
	}
}

func TestPolyHeaderBound(t *testing.T) {
	// The §4 header carries two tree labels plus bookkeeping: O(log n)
	// words at all times.
	rng := rand.New(rand.NewSource(94))
	g := graph.RandomSC(64, 256, 5, rng)
	perm := names.Random(g.N(), rng)
	s, _ := buildPoly(t, 95, g, perm, 2)
	bound := 8 + 2*(1+2*7) // two labels with <= log2(64)+1 light hops
	for trial := 0; trial < 400; trial++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		rt, err := s.Roundtrip(perm.Name(u), perm.Name(v))
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.MaxHeaderWords(); got > bound {
			t.Fatalf("header %d words > bound %d", got, bound)
		}
	}
}

func TestPolyAdversarialNamings(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	g := graph.RandomSC(24, 96, 5, rng)
	m := graph.AllPairs(g)
	for _, perm := range []*names.Permutation{
		names.Identity(g.N()),
		names.Reversed(g.N()),
		names.Random(g.N(), rng),
	} {
		s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		bound := polyBound(2)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				if rt.Weight() > bound*m.R(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("naming broke poly bound at (%d,%d)", u, v)
				}
			}
		}
	}
}

func TestPolyBallGrowingVariantStillDelivers(t *testing.T) {
	// E10 ablation: with the ball-growing cover the home-tree property
	// still holds in our construction (cores pick their grower's tree),
	// so routing must still deliver; the paper's (2k-1) radius bound is
	// replaced by (k+1).
	rng := rand.New(rand.NewSource(97))
	g := graph.RandomSC(30, 120, 5, rng)
	perm := names.Random(g.N(), rng)
	m := graph.AllPairs(g)
	s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2, Variant: cover.VariantBallGrowing})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			if _, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v))); err != nil {
				t.Fatalf("ball-growing variant failed at (%d,%d): %v", u, v, err)
			}
		}
	}
}

func TestPolyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	g := graph.RandomSC(10, 40, 3, rng)
	m := graph.AllPairs(g)
	if _, err := NewPolynomialStretch(g, m, names.Identity(10), PolyConfig{K: 1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewPolynomialStretch(g, m, names.Identity(4), PolyConfig{K: 2}); err == nil {
		t.Fatal("mismatched naming accepted")
	}
}

func TestPolyLevelsMatchLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.RandomSC(26, 104, 6, rng)
	perm := names.Random(g.N(), rng)
	s, m := buildPoly(t, 100, g, perm, 2)
	want := len(cover.Scales(m.RTDiam(), 2))
	if s.Levels() != want {
		t.Fatalf("Levels() = %d, ladder has %d", s.Levels(), want)
	}
}

func TestPolyFinerBaseNotWorse(t *testing.T) {
	// Scale base 1.5 yields more levels but finer home trees; aggregate
	// cost must not regress beyond the coarse ladder's bound. (It may be
	// modestly higher per pair; we check the bound still holds.)
	rng := rand.New(rand.NewSource(101))
	g := graph.RandomSC(24, 96, 5, rng)
	perm := names.Random(g.N(), rng)
	m := graph.AllPairs(g)
	s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2, ScaleBase: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	bound := polyBound(2)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			if rt.Weight() > bound*m.R(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("base-1.5 ladder broke bound at (%d,%d)", u, v)
			}
		}
	}
}
