package core

import (
	"fmt"
	"sort"

	"rtroute/internal/blocks"
	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// This file is the per-node decomposition layer: every built scheme
// splits into one LocalState per node — only that node's tables — and a
// Deployment reassembles per-node Routers that forward purely from local
// state plus the arriving header. The portable LocalState structs are
// the schema the wire codec encodes; all slices are kept in a canonical
// sorted order so that encoding is deterministic (the golden-file tests
// lock this).

// Kind identifies a scheme on the wire and in a deployment.
type Kind uint8

const (
	// KindStretchSix is the §2 scheme (stretch 6, O~(sqrt n) tables).
	KindStretchSix Kind = 1
	// KindExStretch is the §3 exponential-tradeoff scheme.
	KindExStretch Kind = 2
	// KindPolynomial is the §4 polynomial-tradeoff scheme.
	KindPolynomial Kind = 3
	// KindRTZ is the name-dependent stretch-3 substrate plane.
	KindRTZ Kind = 4
	// KindHop is the Lemma 5 double-tree-cover substrate plane.
	KindHop Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindStretchSix:
		return "stretch6"
	case KindExStretch:
		return "exstretch"
	case KindPolynomial:
		return "polystretch"
	case KindRTZ:
		return "rtz"
	case KindHop:
		return "hop"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// S6Entry is one dictionary entry of the stretch-6 scheme: a TINN name
// and the topology-dependent address R3 it resolves to.
type S6Entry struct {
	Name  int32
	Label rtz.Label
}

// RTZDirect is one cluster (direct-routing) entry of a stretch-3 table.
type RTZDirect struct {
	Dst  graph.NodeID
	Port graph.PortID
}

// RTZTableLocal is one node's stretch-3 substrate table in portable
// form: per-center in-ports and tree states, plus the direct entries
// sorted by destination.
type RTZTableLocal struct {
	InPorts    []graph.PortID
	TreeStates []tree.State
	Direct     []RTZDirect
}

// S6Local is one node's complete StretchSix state (§2.1 items 1-4).
type S6Local struct {
	SelfName        int32
	OwnLabel        rtz.Label
	Entries         []S6Entry // items (1)+(3), sorted by Name
	BlockHolder     []int32   // item (2), indexed by block id, -1 = none
	NeighborEntries int32     // |item (1)|, for space accounting
	Tab3            RTZTableLocal
}

// RTZLocal is one node's state in a stretch-3 substrate plane: its table
// plus its own address (the deployment gathers the addresses into the
// injection directory).
type RTZLocal struct {
	SelfLabel rtz.Label
	Table     RTZTableLocal
}

// ExNeighbor is one (name, handshake) entry of an ExStretch table.
type ExNeighbor struct {
	Name int32
	HS   rtz.Handshake
}

// ExDictLocal is one prefix-advancing dictionary entry (item 3a).
type ExDictLocal struct {
	Level      int8
	Prefix     int32
	Tau        int32
	TargetName int32
	HS         rtz.Handshake
}

// HopEntryLocal is one double-tree membership entry of a hop table.
type HopEntryLocal struct {
	Ref    cover.TreeRef
	State  tree.State
	InPort graph.PortID
	IsRoot bool
}

// ExLocal is one node's complete ExStretch state (§3.3 items 1-3 plus
// the §3.5 global label).
type ExLocal struct {
	SelfName  int32
	Neighbors []ExNeighbor    // item (2), sorted by Name
	Dict      []ExDictLocal   // item (3a), sorted by (Level, Prefix, Tau)
	Full      []ExNeighbor    // item (3b), sorted by Name
	Global    []ExGlobal      // §3.5 per-level label, level order
	HopTab    []HopEntryLocal // item (1), sorted by Ref
}

// PolyDictLocal is one own-prefix dictionary entry of a §4 tree entry.
type PolyDictLocal struct {
	J     int8
	Tau   int32
	Name  int32
	Label tree.Label
}

// PolyTreeLocal is one node's state for one tree of the §4 hierarchy.
type PolyTreeLocal struct {
	Ref      cover.TreeRef
	State    tree.State
	InPort   graph.PortID
	IsRoot   bool
	OwnLabel tree.Label
	Dict     []PolyDictLocal // sorted by (J, Tau)
}

// PolyLocal is one node's complete PolynomialStretch state (§4.1).
type PolyLocal struct {
	SelfName int32
	Home     []cover.TreeRef // per level
	Trees    []PolyTreeLocal // sorted by Ref
}

// HopLocal is one node's state in a hop substrate plane.
type HopLocal struct {
	Members []HopMember // membership order: sorted by (level, index)
}

// LocalState is one node's complete routing state: exactly one of the
// kind-specific pointers is set. It is the unit the space bounds are
// certified over — everything a per-node Router forwards with, and
// everything the wire codec charges to the node.
type LocalState struct {
	Node graph.NodeID
	S6   *S6Local
	Ex   *ExLocal
	Poly *PolyLocal
	RTZ  *RTZLocal
	Hop  *HopLocal
}

// SchemeState is a fully decomposed scheme: the network fabric, the
// naming, the scheme's O(1) shared parameters, and one LocalState per
// node. It is the in-memory form of the wire format.
type SchemeState struct {
	Kind  Kind
	Graph *graph.Graph
	Names []int32 // Names[v] = TINN name of node v

	// O(1) shared parameters ("global knowledge" in the paper's sense,
	// like n itself). The base-q name universe is re-derived from
	// (n, K), never stored.
	K            int  // exstretch / poly tradeoff parameter
	Levels       int  // poly: scale-ladder length
	ViaSource    bool // stretch6 §2.2 variant
	DirectReturn bool // exstretch §3.5 variant
}

// Decompose splits a built plane into per-node local states plus O(1)
// shared parameters. It accepts the three TINN schemes, the two core
// substrate planes, and an already-assembled Deployment.
func Decompose(p sim.Plane) (*SchemeState, []LocalState, error) {
	switch s := p.(type) {
	case *StretchSix:
		return decomposeS6(s)
	case *ExStretch:
		return decomposeEx(s)
	case *PolynomialStretch:
		return decomposePoly(s)
	case *RTZPlane:
		return decomposeRTZ(s)
	case *HopPlane:
		return decomposeHop(s)
	case *Deployment:
		return Decompose(s.scheme)
	default:
		return nil, nil, fmt.Errorf("core: cannot decompose %T", p)
	}
}

func decomposeS6(s *StretchSix) (*SchemeState, []LocalState, error) {
	n := s.g.N()
	st := &SchemeState{Kind: KindStretchSix, Graph: s.g, Names: s.perm.Names, ViaSource: s.viaSource}
	locals := make([]LocalState, n)
	for v := 0; v < n; v++ {
		t := s.nodes[v]
		loc := &S6Local{
			SelfName:        t.selfName,
			OwnLabel:        t.ownLabel,
			BlockHolder:     append([]int32(nil), t.blockHolder...),
			NeighborEntries: int32(t.neighborEntries),
			Tab3:            rtzTableLocal(t.tab3),
		}
		if t.lbl.Built() {
			t.lbl.Range(func(nm int32, l rtz.Label) {
				loc.Entries = append(loc.Entries, S6Entry{Name: nm, Label: l})
			})
		} else {
			for nm, l := range t.labels {
				loc.Entries = append(loc.Entries, S6Entry{Name: nm, Label: l})
			}
		}
		sort.Slice(loc.Entries, func(i, j int) bool { return loc.Entries[i].Name < loc.Entries[j].Name })
		locals[v] = LocalState{Node: graph.NodeID(v), S6: loc}
	}
	return st, locals, nil
}

func rtzTableLocal(t *rtz.Table) RTZTableLocal {
	loc := RTZTableLocal{
		InPorts:    append([]graph.PortID(nil), t.InPorts...),
		TreeStates: append([]tree.State(nil), t.TreeStates...),
	}
	t.DirectEntries(func(dst graph.NodeID, port graph.PortID) {
		loc.Direct = append(loc.Direct, RTZDirect{Dst: dst, Port: port})
	})
	sort.Slice(loc.Direct, func(i, j int) bool { return loc.Direct[i].Dst < loc.Direct[j].Dst })
	return loc
}

func decomposeEx(s *ExStretch) (*SchemeState, []LocalState, error) {
	n := s.g.N()
	st := &SchemeState{Kind: KindExStretch, Graph: s.g, Names: s.perm.Names, K: s.k, DirectReturn: s.directReturn}
	locals := make([]LocalState, n)
	for v := 0; v < n; v++ {
		t := s.nodes[v]
		loc := &ExLocal{
			SelfName: t.selfName,
			Global:   append([]ExGlobal(nil), t.global...),
		}
		for nm, hs := range t.neighbors {
			loc.Neighbors = append(loc.Neighbors, ExNeighbor{Name: nm, HS: hs})
		}
		sort.Slice(loc.Neighbors, func(i, j int) bool { return loc.Neighbors[i].Name < loc.Neighbors[j].Name })
		for k, e := range t.dict {
			loc.Dict = append(loc.Dict, ExDictLocal{
				Level: k.Level, Prefix: k.Prefix, Tau: k.Tau,
				TargetName: e.TargetName, HS: e.HS,
			})
		}
		sort.Slice(loc.Dict, func(i, j int) bool {
			a, b := loc.Dict[i], loc.Dict[j]
			if a.Level != b.Level {
				return a.Level < b.Level
			}
			if a.Prefix != b.Prefix {
				return a.Prefix < b.Prefix
			}
			return a.Tau < b.Tau
		})
		for nm, hs := range t.full {
			loc.Full = append(loc.Full, ExNeighbor{Name: nm, HS: hs})
		}
		sort.Slice(loc.Full, func(i, j int) bool { return loc.Full[i].Name < loc.Full[j].Name })
		loc.HopTab = hopEntriesLocal(t.hopTab)
		locals[v] = LocalState{Node: graph.NodeID(v), Ex: loc}
	}
	return st, locals, nil
}

func hopEntriesLocal(t *rtz.HopTable) []HopEntryLocal {
	out := make([]HopEntryLocal, 0, len(t.Trees))
	for ref, e := range t.Trees {
		out = append(out, HopEntryLocal{Ref: ref, State: e.State, InPort: e.InPort, IsRoot: e.IsRoot})
	}
	sort.Slice(out, func(i, j int) bool { return refLess(out[i].Ref, out[j].Ref) })
	return out
}

func decomposePoly(s *PolynomialStretch) (*SchemeState, []LocalState, error) {
	n := s.g.N()
	st := &SchemeState{Kind: KindPolynomial, Graph: s.g, Names: s.perm.Names, K: s.k, Levels: s.levels}
	locals := make([]LocalState, n)
	for v := 0; v < n; v++ {
		t := s.nodes[v]
		loc := &PolyLocal{
			SelfName: t.selfName,
			Home:     append([]cover.TreeRef(nil), t.home...),
		}
		for ref, e := range t.trees {
			te := PolyTreeLocal{
				Ref: ref, State: e.state, InPort: e.inPort, IsRoot: e.isRoot, OwnLabel: e.ownLabel,
			}
			for k, d := range e.dict {
				te.Dict = append(te.Dict, PolyDictLocal{J: k.J, Tau: k.Tau, Name: d.Name, Label: d.Label})
			}
			sort.Slice(te.Dict, func(i, j int) bool {
				a, b := te.Dict[i], te.Dict[j]
				if a.J != b.J {
					return a.J < b.J
				}
				return a.Tau < b.Tau
			})
			loc.Trees = append(loc.Trees, te)
		}
		sort.Slice(loc.Trees, func(i, j int) bool { return refLess(loc.Trees[i].Ref, loc.Trees[j].Ref) })
		locals[v] = LocalState{Node: graph.NodeID(v), Poly: loc}
	}
	return st, locals, nil
}

func decomposeRTZ(p *RTZPlane) (*SchemeState, []LocalState, error) {
	g := p.sub.Graph()
	n := g.N()
	st := &SchemeState{Kind: KindRTZ, Graph: g, Names: p.perm.Names}
	locals := make([]LocalState, n)
	for v := 0; v < n; v++ {
		locals[v] = LocalState{Node: graph.NodeID(v), RTZ: &RTZLocal{
			SelfLabel: p.sub.Labels[v],
			Table:     rtzTableLocal(p.sub.Tables[v]),
		}}
	}
	return st, locals, nil
}

func decomposeHop(p *HopPlane) (*SchemeState, []LocalState, error) {
	n := p.g.N()
	st := &SchemeState{Kind: KindHop, Graph: p.g, Names: p.perm.Names}
	locals := make([]LocalState, n)
	for v := 0; v < n; v++ {
		locals[v] = LocalState{Node: graph.NodeID(v), Hop: &HopLocal{
			Members: append([]HopMember(nil), p.members[v]...),
		}}
	}
	return st, locals, nil
}

// Assemble reconstructs a Deployment from a decomposed scheme: per-node
// Routers over the reassembled tables, route-identical to the scheme the
// state was decomposed from.
func Assemble(st *SchemeState, locals []LocalState) (*Deployment, error) {
	if st.Graph == nil {
		return nil, fmt.Errorf("core: assemble: nil graph")
	}
	n := st.Graph.N()
	if n < 2 {
		return nil, fmt.Errorf("core: assemble: need at least 2 nodes, got %d", n)
	}
	if len(locals) != n {
		return nil, fmt.Errorf("core: assemble: %d nodes but %d local states", n, len(locals))
	}
	perm, err := names.NewPermutation(st.Names)
	if err != nil {
		return nil, fmt.Errorf("core: assemble: %w", err)
	}
	var scheme Scheme
	switch st.Kind {
	case KindStretchSix:
		scheme, err = assembleS6(st, perm, locals)
	case KindExStretch:
		scheme, err = assembleEx(st, perm, locals)
	case KindPolynomial:
		scheme, err = assemblePoly(st, perm, locals)
	case KindRTZ:
		scheme, err = assembleRTZ(st, perm, locals)
	case KindHop:
		scheme, err = assembleHop(st, perm, locals)
	default:
		return nil, fmt.Errorf("core: assemble: unknown kind %v", st.Kind)
	}
	if err != nil {
		return nil, err
	}
	return NewDeployment(scheme, st.Kind), nil
}

func localKindErr(v int, want Kind) error {
	return fmt.Errorf("core: assemble: node %d local state is not %v state", v, want)
}

func assembleRTZTable(self graph.NodeID, loc *RTZTableLocal, centers int) (*rtz.Table, error) {
	if len(loc.InPorts) != len(loc.TreeStates) {
		return nil, fmt.Errorf("core: assemble: node %d has %d in-ports but %d tree states",
			self, len(loc.InPorts), len(loc.TreeStates))
	}
	if centers >= 0 && len(loc.InPorts) != centers {
		return nil, fmt.Errorf("core: assemble: node %d covers %d centers, want %d", self, len(loc.InPorts), centers)
	}
	t := &rtz.Table{
		Self:       self,
		InPorts:    append([]graph.PortID(nil), loc.InPorts...),
		TreeStates: append([]tree.State(nil), loc.TreeStates...),
		Direct:     make(map[graph.NodeID]graph.PortID, len(loc.Direct)),
	}
	for _, d := range loc.Direct {
		t.Direct[d.Dst] = d.Port
	}
	t.Seal()
	return t, nil
}

func assembleS6(st *SchemeState, perm *names.Permutation, locals []LocalState) (Scheme, error) {
	n := st.Graph.N()
	uni := blocks.NewUniverse(n, 2)
	s := &StretchSix{g: st.Graph, perm: perm, uni: uni, viaSource: st.ViaSource, nodes: make([]*s6Table, n)}
	centers := -1
	for v := 0; v < n; v++ {
		loc := locals[v].S6
		if loc == nil {
			return nil, localKindErr(v, KindStretchSix)
		}
		if len(loc.BlockHolder) != uni.NumBlocks() {
			return nil, fmt.Errorf("core: assemble: node %d has %d block holders, universe has %d blocks",
				v, len(loc.BlockHolder), uni.NumBlocks())
		}
		tab3, err := assembleRTZTable(graph.NodeID(v), &loc.Tab3, centers)
		if err != nil {
			return nil, err
		}
		centers = len(tab3.InPorts)
		tab := &s6Table{
			selfName:        loc.SelfName,
			ownLabel:        loc.OwnLabel,
			labels:          make(map[int32]rtz.Label, len(loc.Entries)),
			blockHolder:     append([]int32(nil), loc.BlockHolder...),
			tab3:            tab3,
			neighborEntries: int(loc.NeighborEntries),
		}
		for _, e := range loc.Entries {
			tab.labels[e.Name] = e.Label
		}
		tab.sealLabels()
		s.nodes[v] = tab
	}
	return s, nil
}

func assembleEx(st *SchemeState, perm *names.Permutation, locals []LocalState) (Scheme, error) {
	n := st.Graph.N()
	if st.K < 2 {
		return nil, fmt.Errorf("core: assemble: exstretch needs K >= 2, got %d", st.K)
	}
	s := &ExStretch{
		g: st.Graph, perm: perm, uni: blocks.NewUniverse(n, st.K),
		k: st.K, directReturn: st.DirectReturn, nodes: make([]*exTable, n),
	}
	for v := 0; v < n; v++ {
		loc := locals[v].Ex
		if loc == nil {
			return nil, localKindErr(v, KindExStretch)
		}
		tab := &exTable{
			selfName:  loc.SelfName,
			neighbors: make(map[int32]rtz.Handshake, len(loc.Neighbors)),
			dict:      make(map[exDictKey]exDictEntry, len(loc.Dict)),
			full:      make(map[int32]rtz.Handshake, len(loc.Full)),
			hopTab:    assembleHopTable(graph.NodeID(v), loc.HopTab),
			global:    append([]ExGlobal(nil), loc.Global...),
		}
		for _, e := range loc.Neighbors {
			tab.neighbors[e.Name] = e.HS
		}
		for _, e := range loc.Dict {
			tab.dict[exDictKey{Level: e.Level, Prefix: e.Prefix, Tau: e.Tau}] =
				exDictEntry{TargetName: e.TargetName, HS: e.HS}
		}
		for _, e := range loc.Full {
			tab.full[e.Name] = e.HS
		}
		s.nodes[v] = tab
	}
	return s, nil
}

func assembleHopTable(self graph.NodeID, entries []HopEntryLocal) *rtz.HopTable {
	t := &rtz.HopTable{Self: self, Trees: make(map[cover.TreeRef]rtz.HopEntry, len(entries))}
	for _, e := range entries {
		t.Trees[e.Ref] = rtz.HopEntry{State: e.State, InPort: e.InPort, IsRoot: e.IsRoot}
	}
	return t
}

func assemblePoly(st *SchemeState, perm *names.Permutation, locals []LocalState) (Scheme, error) {
	n := st.Graph.N()
	if st.K < 2 {
		return nil, fmt.Errorf("core: assemble: polystretch needs K >= 2, got %d", st.K)
	}
	if st.Levels < 1 {
		return nil, fmt.Errorf("core: assemble: polystretch needs >= 1 level, got %d", st.Levels)
	}
	s := &PolynomialStretch{
		g: st.Graph, perm: perm, uni: blocks.NewUniverse(n, st.K),
		k: st.K, levels: st.Levels, nodes: make([]*polyTable, n),
	}
	for v := 0; v < n; v++ {
		loc := locals[v].Poly
		if loc == nil {
			return nil, localKindErr(v, KindPolynomial)
		}
		if len(loc.Home) != st.Levels {
			return nil, fmt.Errorf("core: assemble: node %d has %d home trees, ladder has %d levels",
				v, len(loc.Home), st.Levels)
		}
		tab := &polyTable{
			selfName: loc.SelfName,
			trees:    make(map[cover.TreeRef]*polyTreeEntry, len(loc.Trees)),
			home:     append([]cover.TreeRef(nil), loc.Home...),
		}
		for _, te := range loc.Trees {
			e := &polyTreeEntry{
				state: te.State, inPort: te.InPort, isRoot: te.IsRoot, ownLabel: te.OwnLabel,
				dict: make(map[polyDictKey]polyDictEntry, len(te.Dict)),
			}
			for _, d := range te.Dict {
				e.dict[polyDictKey{J: d.J, Tau: d.Tau}] = polyDictEntry{Name: d.Name, Label: d.Label}
			}
			tab.trees[te.Ref] = e
		}
		s.nodes[v] = tab
	}
	return s, nil
}

func assembleRTZ(st *SchemeState, perm *names.Permutation, locals []LocalState) (Scheme, error) {
	n := st.Graph.N()
	tables := make([]*rtz.Table, n)
	labels := make([]rtz.Label, n)
	centers := -1
	for v := 0; v < n; v++ {
		loc := locals[v].RTZ
		if loc == nil {
			return nil, localKindErr(v, KindRTZ)
		}
		t, err := assembleRTZTable(graph.NodeID(v), &loc.Table, centers)
		if err != nil {
			return nil, err
		}
		centers = len(t.InPorts)
		tables[v] = t
		labels[v] = loc.SelfLabel
	}
	sub, err := rtz.AssembleScheme(st.Graph, tables, labels)
	if err != nil {
		return nil, err
	}
	return NewRTZPlane(sub, perm)
}

func assembleHop(st *SchemeState, perm *names.Permutation, locals []LocalState) (Scheme, error) {
	n := st.Graph.N()
	tables := make([]*rtz.HopTable, n)
	members := make([][]HopMember, n)
	for v := 0; v < n; v++ {
		loc := locals[v].Hop
		if loc == nil {
			return nil, localKindErr(v, KindHop)
		}
		ms := append([]HopMember(nil), loc.Members...)
		t := &rtz.HopTable{Self: graph.NodeID(v), Trees: make(map[cover.TreeRef]rtz.HopEntry, len(ms))}
		for _, m := range ms {
			t.Trees[m.Ref] = rtz.HopEntry{State: m.State, InPort: m.InPort, IsRoot: m.IsRoot}
		}
		tables[v] = t
		members[v] = ms
	}
	return AssembleHopPlane(st.Graph, perm, tables, members)
}

// Router is one node's forwarding agent in a Deployment: it forwards
// packets using only its own node's local state plus the arriving
// header — the paper's F(table(x), header(P)) with x fixed.
type Router struct {
	node graph.NodeID
	fwd  sim.Forwarder
}

// Node returns the node this router serves.
func (r *Router) Node() graph.NodeID { return r.node }

// Forward applies the node-local forwarding function to an arriving
// packet header.
func (r *Router) Forward(h sim.Header) (port graph.PortID, delivered bool, err error) {
	return r.fwd.Forward(r.node, h)
}

// Deployment is a scheme reassembled as per-node Routers. It implements
// sim.Plane — the sequential tracer and the concurrent traffic engine
// drive it exactly like a monolithic scheme — but every Forward is
// dispatched through the addressed node's Router. Header injection
// (NewHeader/BeginReturn) delegates to the assembled scheme, which holds
// only the deployment-wide shared state the model grants sources (the
// naming and, for the name-dependent substrates, the address directory
// gathered from the nodes' own labels).
type Deployment struct {
	kind      Kind
	scheme    Scheme
	routers   []Router
	nodeBytes []int // per-node wire bytes, set when restored from a snapshot
}

var _ Scheme = (*Deployment)(nil)

// NewDeployment wraps an assembled scheme into per-node routers.
func NewDeployment(s Scheme, kind Kind) *Deployment {
	n := s.Graph().N()
	d := &Deployment{kind: kind, scheme: s, routers: make([]Router, n)}
	for v := 0; v < n; v++ {
		d.routers[v] = Router{node: graph.NodeID(v), fwd: s}
	}
	return d
}

// Rebind repoints the deployment at a rebuilt scheme without replacing
// the Deployment value its callers hold: the scheme pointer and every
// per-node router's forwarder are swapped in place. The cluster's churn
// repair path uses this for kinds with no incremental maintainer — the
// shard rebuilds the plane from scratch and rebinds under its epoch
// fence, so views and stats wired to the Deployment stay attached.
func (d *Deployment) Rebind(s Scheme) {
	d.scheme = s
	for v := range d.routers {
		d.routers[v].fwd = s
	}
}

// Deploy decomposes a built scheme into per-node local states and
// reassembles them as a Deployment — the in-process equivalent of a
// marshal/unmarshal roundtrip, certifying that per-node state suffices.
func Deploy(p sim.Plane) (*Deployment, error) {
	st, locals, err := Decompose(p)
	if err != nil {
		return nil, err
	}
	return Assemble(st, locals)
}

// Kind returns the deployed scheme kind.
func (d *Deployment) Kind() Kind { return d.kind }

// Router returns node v's forwarding agent.
func (d *Deployment) Router(v graph.NodeID) *Router { return &d.routers[v] }

// Routers returns all per-node routers; callers must not modify the
// slice.
func (d *Deployment) Routers() []Router { return d.routers }

// Scheme returns the assembled scheme backing the routers.
func (d *Deployment) Scheme() Scheme { return d.scheme }

// Flatten returns the assembled scheme as a serving plane with the
// per-hop router indirection removed: Router(v).Forward(h) is by
// construction Scheme().Forward(v, h), so a compiler of planes (the
// traffic engine's Compile) may substitute the scheme on the hot path
// without changing a single route. Tracing through the Deployment
// itself still dispatches hop by hop through the routers.
func (d *Deployment) Flatten() sim.Plane { return d.scheme }

// Naming returns the deployment's name permutation.
func (d *Deployment) Naming() *names.Permutation {
	switch s := d.scheme.(type) {
	case *StretchSix:
		return s.perm
	case *ExStretch:
		return s.perm
	case *PolynomialStretch:
		return s.perm
	case *RTZPlane:
		return s.perm
	case *HopPlane:
		return s.perm
	default:
		return nil
	}
}

// SetEncodedSizes records the per-node wire sizes (bytes); the codec
// calls this when a deployment is restored from or measured against a
// snapshot.
func (d *Deployment) SetEncodedSizes(sizes []int) { d.nodeBytes = sizes }

// EncodedSize returns node v's table size in wire bytes — the empirical
// Theorem 6/11 space bound — or -1 when the deployment was assembled
// in-process without going through the codec.
func (d *Deployment) EncodedSize(v graph.NodeID) int {
	if d.nodeBytes == nil {
		return -1
	}
	return d.nodeBytes[v]
}

// EncodedSizes returns the per-node wire sizes, or nil.
func (d *Deployment) EncodedSizes() []int { return d.nodeBytes }

// Forward implements sim.Forwarder by dispatching to the addressed
// node's Router.
func (d *Deployment) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	if at < 0 || int(at) >= len(d.routers) {
		return 0, false, fmt.Errorf("core: deployment has no router for node %d", at)
	}
	r := &d.routers[at]
	return r.fwd.Forward(r.node, h)
}

// NewHeader implements sim.Plane.
func (d *Deployment) NewHeader(srcName, dstName int32) (sim.Header, error) {
	return d.scheme.NewHeader(srcName, dstName)
}

// ResetHeader implements sim.Plane.
func (d *Deployment) ResetHeader(h sim.Header, srcName, dstName int32) error {
	return d.scheme.ResetHeader(h, srcName, dstName)
}

// BeginReturn implements sim.Plane.
func (d *Deployment) BeginReturn(h sim.Header) error { return d.scheme.BeginReturn(h) }

// NodeOf implements sim.Plane.
func (d *Deployment) NodeOf(name int32) graph.NodeID { return d.scheme.NodeOf(name) }

// Graph implements sim.Plane.
func (d *Deployment) Graph() *graph.Graph { return d.scheme.Graph() }

// SchemeName implements Scheme. The name matches the monolithic
// scheme's, so measurement reports compare line for line.
func (d *Deployment) SchemeName() string { return d.scheme.SchemeName() }

// Roundtrip implements Scheme — routed through the per-node routers.
func (d *Deployment) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(d, srcName, dstName, 0)
}

// MaxTableWords implements Scheme.
func (d *Deployment) MaxTableWords() int { return d.scheme.MaxTableWords() }

// AvgTableWords implements Scheme.
func (d *Deployment) AvgTableWords() float64 { return d.scheme.AvgTableWords() }
