package core

import (
	"fmt"
	"math/rand"
	"reflect"

	"rtroute/internal/blocks"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtmetric"
	"rtroute/internal/rtz"
)

// MaintainReport accounts one incremental RebuildNodes pass across the
// layered scheme state, for the churn experiments' delta-cost metrics.
type MaintainReport struct {
	// DirtyNodes is the size of the dirty set: nodes whose per-node
	// solver state (distance rows, Init orders, dictionary contents) was
	// re-derived. The "delta-rebuild touched X% of nodes" metric.
	DirtyNodes int
	// RebuiltTrees / RebuiltClusters account the substrate delta
	// (rtz.MaintainReport).
	RebuiltTrees    int
	RebuiltClusters int
	// PatchedLabels counts stale R3 copies rewritten by value in clean
	// nodes' dictionaries — cheap pointer-chase work, no solver runs.
	PatchedLabels int
	// RebuiltTables counts per-node scheme tables rebuilt outright.
	RebuiltTables int
	// FullRebuild is set when the maintainer had to fall back to
	// rebuilding every per-node table (block-assignment drift, or a
	// scheme kind with no incremental path).
	FullRebuild bool
}

// S6Maintainer keeps a live StretchSix plane route-identical to what a
// from-scratch build would produce on the (mutating) graph, rebuilding
// only what a churn event's may-use affected set can touch:
//
//   - the stretch-3 substrate delta-rebuilds via rtz.Maintainer;
//   - dirty nodes' Init orders are invalidated and their §2.1 tables
//     rebuilt through the exact same per-node constructor the fresh
//     builder runs;
//   - the Lemma 1 block assignment is re-derived from an identically
//     re-seeded stream against the maintained order cache — replaying
//     the fresh builder's sample-and-verify loop bit-exactly, so even
//     its retry behavior under the new topology is reproduced — and if
//     the resulting sets drift from the cached ones (a verification
//     retry fired), the maintainer falls back to a full table rebuild;
//   - clean nodes' stale copies of changed substrate addresses are
//     patched by value through a name->holders reverse index.
type S6Maintainer struct {
	s        *StretchSix
	m        graph.DistanceOracle
	perm     *names.Permutation
	cfg      Stretch6Config
	seed     int64
	subM     *rtz.Maintainer
	space    *rtmetric.Space
	assign   *blocks.Assignment
	nbhdSize int
	// holders[name] lists the nodes whose label dictionary carries an
	// entry for that name (items 1+3); used to patch changed substrate
	// addresses without rebuilding the holder.
	holders map[int32][]graph.NodeID
}

// NewStretchSixMaintained builds a StretchSix plane exactly as
// NewStretchSix seeded with seed would (same rng consumption, same
// substrate, same assignment, same tables) and returns it with its
// maintainer. The plane's label dictionaries stay unsealed so they can
// be patched in place; routing behavior is identical.
func NewStretchSixMaintained(g *graph.Graph, m graph.DistanceOracle, perm *names.Permutation, seed int64, cfg Stretch6Config) (*S6Maintainer, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("core: stretch-6 needs at least 2 nodes, got %d", n)
	}
	if perm.N() != n {
		return nil, fmt.Errorf("core: naming covers %d nodes, graph has %d", perm.N(), n)
	}
	space := rtmetric.New(g, m, perm.Names)
	rng := rand.New(rand.NewSource(seed))
	subM, err := rtz.NewMaintained(g, m, rng, cfg.Substrate)
	if err != nil {
		return nil, fmt.Errorf("core: stretch-3 substrate: %w", err)
	}
	sub := subM.Scheme()
	bcfg := cfg.Blocks
	bcfg.Names = perm.Names
	assign, err := blocks.Assign(space, 2, rng, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: block assignment: %w", err)
	}

	mt := &S6Maintainer{
		s:        &StretchSix{g: g, perm: perm, sub: sub, uni: assign.U, viaSource: cfg.ViaSource, nodes: make([]*s6Table, n)},
		m:        m,
		perm:     perm,
		cfg:      cfg,
		seed:     seed,
		subM:     subM,
		space:    space,
		assign:   assign,
		nbhdSize: rtmetric.NeighborhoodSizes(n, 2)[1],
		holders:  make(map[int32][]graph.NodeID),
	}
	space.Precompute(cfg.BuildWorkers)
	for u := 0; u < n; u++ {
		tab, err := buildS6Node(u, perm, sub, space, assign, mt.nbhdSize)
		if err != nil {
			return nil, err
		}
		mt.s.nodes[u] = tab
		for nm := range tab.labels {
			mt.holders[nm] = append(mt.holders[nm], graph.NodeID(u))
		}
	}
	return mt, nil
}

// Plane returns the maintained live plane.
func (mt *S6Maintainer) Plane() *StretchSix { return mt.s }

// Substrate returns the maintained stretch-3 substrate maintainer.
func (mt *S6Maintainer) Substrate() *rtz.Maintainer { return mt.subM }

// RebuildNodes incorporates the topology mutations whose may-use
// affected set is covered by dirty (see churn.Affected). The graph must
// already be mutated. On return the plane is route-identical — LocalState
// for LocalState — to a fresh NewStretchSix(seed) build on the current
// graph.
func (mt *S6Maintainer) RebuildNodes(dirty []graph.NodeID) (MaintainReport, error) {
	return mt.RebuildNodesOwned(dirty, nil)
}

// RebuildNodesOwned is RebuildNodes restricted to a shard's slice of the
// plane. The global layers — the substrate delta, the Init-order
// invalidation, the block-assignment replay — still process the full
// dirty set, because every node's table derives from them; but the
// per-node table rebuilds and label patches, the dominant cost, are
// filtered to nodes owned reports true for. Foreign tables go stale,
// harmlessly: a shard never forwards at a foreign node, and the cluster
// certification compares owned LocalStates only. owned == nil means all
// nodes (plain RebuildNodes).
func (mt *S6Maintainer) RebuildNodesOwned(dirty []graph.NodeID, owned func(graph.NodeID) bool) (MaintainReport, error) {
	rep := MaintainReport{DirtyNodes: len(dirty)}

	// 1. Substrate delta.
	subRep, err := mt.subM.Apply(dirty)
	if err != nil {
		return rep, err
	}
	rep.RebuiltTrees = subRep.RebuiltTrees
	rep.RebuiltClusters = subRep.RebuiltClusters

	// 2. Dirty nodes' Init orders are stale; everything else's provably
	// is not.
	mt.space.InvalidateOrders(dirty)

	// 3. Replay the block assignment from an identically re-seeded
	// stream against the maintained order cache. Usually the draws and
	// the verification outcome are unchanged and Sets come back
	// bit-identical; if the new topology shifts the sample-and-verify
	// loop, fall back to a full table rebuild below.
	rng := rand.New(rand.NewSource(mt.seed))
	rng.Perm(mt.s.g.N()) // the substrate's center draw precedes the assignment
	bcfg := mt.cfg.Blocks
	bcfg.Names = mt.perm.Names
	assign, err := blocks.Assign(mt.space, 2, rng, bcfg)
	if err != nil {
		return rep, fmt.Errorf("core: block assignment under churn: %w", err)
	}
	rebuild := dirty
	if !reflect.DeepEqual(assign.Sets, mt.assign.Sets) {
		rep.FullRebuild = true
		all := make([]graph.NodeID, mt.s.g.N())
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		rebuild = all
	}
	mt.assign = assign
	mt.s.uni = assign.U

	// 4. Rebuild dirty nodes' tables through the fresh builder's own
	// per-node constructor, keeping the name->holders index in step.
	rebuilt := make(map[graph.NodeID]bool, len(rebuild))
	for _, u := range rebuild {
		if owned != nil && !owned(u) {
			continue
		}
		old := mt.s.nodes[u]
		tab, err := buildS6Node(int(u), mt.perm, mt.subM.Scheme(), mt.space, assign, mt.nbhdSize)
		if err != nil {
			return rep, err
		}
		for nm := range old.labels {
			if _, still := tab.labels[nm]; !still {
				mt.holders[nm] = removeHolder(mt.holders[nm], u)
			}
		}
		for nm := range tab.labels {
			if _, had := old.labels[nm]; !had {
				mt.holders[nm] = append(mt.holders[nm], u)
			}
		}
		mt.s.nodes[u] = tab
		rebuilt[u] = true
		rep.RebuiltTables++
	}

	// 5. Patch stale copies of changed substrate addresses in clean
	// nodes: value writes via the reverse index, no solver work.
	for _, x := range subRep.ChangedLabels {
		lbl := mt.subM.Scheme().LabelOf(x)
		if !rebuilt[x] && (owned == nil || owned(x)) {
			mt.s.nodes[x].ownLabel = lbl
		}
		nm := mt.perm.Name(int32(x))
		for _, v := range mt.holders[nm] {
			if rebuilt[v] || (owned != nil && !owned(v)) {
				continue
			}
			if _, ok := mt.s.nodes[v].labels[nm]; ok {
				mt.s.nodes[v].labels[nm] = lbl
				rep.PatchedLabels++
			}
		}
	}
	return rep, nil
}

func removeHolder(s []graph.NodeID, u graph.NodeID) []graph.NodeID {
	for i, v := range s {
		if v == u {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
