package core

import (
	"math/rand"
	"testing"

	"rtroute/internal/blocks"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

// Ablation tests for the variants the paper discusses but does not adopt
// (DESIGN.md §6, experiments E3/E4 ablation rows).

// TestStretchSixViaSourceBound: the §2.2 remark's variant
// (s -> w -> s -> t -> s) has the same worst-case stretch 6.
func TestStretchSixViaSourceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomSC(36, 144, 7, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	s, err := NewStretchSix(g, m, perm, rand.New(rand.NewSource(2)), Stretch6Config{ViaSource: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.SchemeName() != "stretch6(via-source)" {
		t.Fatalf("scheme name %q", s.SchemeName())
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatalf("via-source roundtrip (%d,%d): %v", u, v, err)
			}
			if r := m.R(graph.NodeID(u), graph.NodeID(v)); rt.Weight() > 6*r {
				t.Fatalf("via-source stretch violated at (%d,%d): %d > 6*%d", u, v, rt.Weight(), r)
			}
		}
	}
}

// TestStretchSixViaSourceIsLonger: the paper predicts the variant "can
// result in longer paths since it always routes back through s". Compare
// aggregate routed weight on the same instance — the variant must never
// win in total, and must lose strictly somewhere.
func TestStretchSixViaSourceIsLonger(t *testing.T) {
	// A sparse block assignment (low boost, larger n) makes remote
	// dictionary lookups actually happen; with every block everywhere
	// the two variants coincide and the comparison is vacuous.
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomSC(100, 400, 6, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	sparse := blocks.Config{Boost: 1.2}
	std, err := NewStretchSix(g, m, perm, rand.New(rand.NewSource(4)), Stretch6Config{Blocks: sparse})
	if err != nil {
		t.Fatal(err)
	}
	via, err := NewStretchSix(g, m, perm, rand.New(rand.NewSource(4)), Stretch6Config{Blocks: sparse, ViaSource: true})
	if err != nil {
		t.Fatal(err)
	}
	var stdTotal, viaTotal graph.Dist
	strictlyLonger := false
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			a, err := std.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := via.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			stdTotal += a.Weight()
			viaTotal += b.Weight()
			if b.Weight() > a.Weight() {
				strictlyLonger = true
			}
		}
	}
	if viaTotal < stdTotal {
		t.Fatalf("via-source total %d beat standard total %d; paper predicts the opposite", viaTotal, stdTotal)
	}
	if !strictlyLonger {
		t.Fatal("via-source never longer on any pair; ablation vacuous (same-seed tables may coincide)")
	}
}

// TestExStretchDirectReturnDelivers: the §3.5 variant still delivers for
// every pair and keeps the source reachable via some shared tree.
func TestExStretchDirectReturnDelivers(t *testing.T) {
	for _, k := range []int{2, 3} {
		rng := rand.New(rand.NewSource(int64(k) + 5))
		g := graph.RandomSC(30, 120, 5, rng)
		m := graph.AllPairs(g)
		perm := names.Random(g.N(), rng)
		s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: k, DirectReturn: true})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatalf("k=%d direct-return (%d,%d): %v", k, u, v, err)
				}
				if rt.Weight() < m.R(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("k=%d: roundtrip below optimum at (%d,%d)", k, u, v)
				}
			}
		}
	}
}

// TestExStretchDirectReturnReturnLegBound: the direct return leg routes
// through the lowest shared tree, so its weight is bounded by the
// hierarchy's scale covering r(s,t) — the 2^k(2k+eps) term of the
// remark's bound, independent of the outbound waypoint chain.
func TestExStretchDirectReturnReturnLegBound(t *testing.T) {
	k := 2
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomSC(28, 112, 5, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: k, DirectReturn: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			r := m.R(graph.NodeID(u), graph.NodeID(v))
			scale := graph.Dist(2)
			for scale < r {
				scale *= 2
			}
			// Return leg: up to the root and down inside a tree of
			// radius (2k-1)*scale.
			bound := 2 * graph.Dist(2*k-1) * scale
			if rt.Back.Weight > bound {
				t.Fatalf("direct return leg (%d,%d) = %d > bound %d", u, v, rt.Back.Weight, bound)
			}
		}
	}
}

// TestExStretchDirectReturnHeaderTradeoff: the variant swaps the
// handshake stack for per-level global labels; verify the stack stays
// empty and tables grew (the "two sets of routing tables").
func TestExStretchDirectReturnHeaderTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomSC(32, 128, 5, rng)
	m := graph.AllPairs(g)
	perm := names.Random(g.N(), rng)
	std, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(10)), ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewExStretch(g, m, perm, rand.New(rand.NewSource(10)), ExStretchConfig{K: 2, DirectReturn: true})
	if err != nil {
		t.Fatal(err)
	}
	if direct.AvgTableWords() <= std.AvgTableWords() {
		t.Fatalf("direct-return tables (%.1f) not larger than standard (%.1f)",
			direct.AvgTableWords(), std.AvgTableWords())
	}
	if direct.SchemeName() != "exstretch(k=2,direct-return)" {
		t.Fatalf("scheme name %q", direct.SchemeName())
	}
}
