package core

import (
	"fmt"

	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// This file adapts the two name-dependent substrates (the RTZ stretch-3
// scheme and the Lemma 5 double-tree-cover "Hop" scheme) to the full
// Scheme contract, with exported header types so the wire codec can
// encode their packets, and with injection state that is strictly
// per-node — the property the Decompose/Assemble deployment path relies
// on. They mirror the adapters in internal/traffic (which predate them
// and remain for the engine's own tests) hop for hop: route identity
// between the two is locked by the deployment tests.

// RTZHeader carries one roundtrip over the stretch-3 substrate: the live
// leg plus the source's address R3(s) resolved at injection, so the
// return leg routes with node-local state only (§1.1.1's reply rule).
type RTZHeader struct {
	SrcName, DstName int32
	SrcLabel         rtz.Label
	Leg              rtz.Header
}

// Words implements sim.Header.
func (h *RTZHeader) Words() int { return 2 + h.SrcLabel.Words() + h.Leg.Words() }

// FixedWords implements sim.FixedSizeHeader: forwarding mutates only the
// leg's phase, so the size is leg-invariant.
func (h *RTZHeader) FixedWords() bool { return true }

// RTZPlane is the stretch-3 substrate as a servable Scheme: node-local
// forwarding over the substrate tables, with destination addresses
// resolved out of band at injection time (the name-dependent model's
// assumption).
type RTZPlane struct {
	sub  *rtz.Scheme
	perm *names.Permutation
}

var _ Scheme = (*RTZPlane)(nil)
var _ sim.Header = (*RTZHeader)(nil)

// NewRTZPlane wraps a built substrate with a naming.
func NewRTZPlane(sub *rtz.Scheme, perm *names.Permutation) (*RTZPlane, error) {
	if perm.N() != sub.Graph().N() {
		return nil, fmt.Errorf("core: naming covers %d nodes, substrate has %d", perm.N(), sub.Graph().N())
	}
	return &RTZPlane{sub: sub, perm: perm}, nil
}

// Substrate returns the wrapped stretch-3 scheme.
func (p *RTZPlane) Substrate() *rtz.Scheme { return p.sub }

// Naming returns the plane's name permutation.
func (p *RTZPlane) Naming() *names.Permutation { return p.perm }

// SchemeName implements Scheme.
func (p *RTZPlane) SchemeName() string { return "rtz-stretch3" }

// NewHeader implements sim.Plane.
func (p *RTZPlane) NewHeader(srcName, dstName int32) (sim.Header, error) {
	h := &RTZHeader{}
	if err := p.arm(h, srcName, dstName); err != nil {
		return nil, err
	}
	return h, nil
}

// ResetHeader implements sim.Plane.
func (p *RTZPlane) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*RTZHeader)
	if !ok {
		return fmt.Errorf("core: rtz plane got %T header", h)
	}
	return p.arm(hh, srcName, dstName)
}

func (p *RTZPlane) arm(h *RTZHeader, srcName, dstName int32) error {
	if err := checkPlaneName(p.perm, srcName); err != nil {
		return err
	}
	if err := checkPlaneName(p.perm, dstName); err != nil {
		return err
	}
	src := graph.NodeID(p.perm.Node(srcName))
	dst := graph.NodeID(p.perm.Node(dstName))
	h.SrcName, h.DstName = srcName, dstName
	h.SrcLabel = p.sub.LabelOf(src)
	h.Leg = rtz.Header{Dest: dst, Label: p.sub.LabelOf(dst), Phase: rtz.PhaseSeek}
	return nil
}

// BeginReturn implements sim.Plane.
func (p *RTZPlane) BeginReturn(h sim.Header) error {
	hh, ok := h.(*RTZHeader)
	if !ok {
		return fmt.Errorf("core: rtz plane got %T header", h)
	}
	hh.Leg = rtz.Header{Dest: hh.SrcLabel.Node, Label: hh.SrcLabel, Phase: rtz.PhaseSeek}
	return nil
}

// Forward implements sim.Forwarder: pure delegation to the substrate's
// node-local forwarding function.
func (p *RTZPlane) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	hh, ok := h.(*RTZHeader)
	if !ok {
		return 0, false, fmt.Errorf("core: rtz plane got %T header", h)
	}
	return rtz.Forward(p.sub.Tables[at], &hh.Leg)
}

// NodeOf implements sim.Plane.
func (p *RTZPlane) NodeOf(name int32) graph.NodeID { return graph.NodeID(p.perm.Node(name)) }

// Graph implements sim.Plane.
func (p *RTZPlane) Graph() *graph.Graph { return p.sub.Graph() }

// Roundtrip implements Scheme.
func (p *RTZPlane) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(p, srcName, dstName, 0)
}

// MaxTableWords implements Scheme.
func (p *RTZPlane) MaxTableWords() int { return p.sub.MaxTableWords() }

// AvgTableWords implements Scheme.
func (p *RTZPlane) AvgTableWords() float64 { return p.sub.AvgTableWords() }

// HopMember is one double-tree membership of a node: the O(1) routing
// entry plus the node's own address and root distances in that tree —
// everything injection needs, all of it chargeable to this node alone.
type HopMember struct {
	Ref      cover.TreeRef
	State    tree.State
	InPort   graph.PortID
	IsRoot   bool
	OwnLabel tree.Label
	DistTo   graph.Dist // d_C(v, root) within the tree's cluster
	DistFrom graph.Dist // d_C(root, v)
}

// HopHeader carries one roundtrip over the hop substrate: the handshake
// R2(s,t) resolved at injection, and the live leg within its tree.
type HopHeader struct {
	HS  rtz.Handshake
	Leg rtz.HopHeader
}

// Words implements sim.Header.
func (h *HopHeader) Words() int { return h.HS.Words() + h.Leg.Words() }

// FixedWords implements sim.FixedSizeHeader.
func (h *HopHeader) FixedWords() bool { return true }

// HopPlane is the Lemma 5 substrate as a servable Scheme. Unlike the
// monolithic rtz.HopScheme — whose R2 consults the global cover
// hierarchy — a HopPlane resolves handshakes from the two endpoints'
// per-node membership lists alone, which is what makes it decomposable:
// R2(u,v) is the shared tree minimizing the roundtrip through the root,
// exactly Hierarchy.BestTree's rule, computed by intersecting u's and
// v's membership lists (both sorted by (level, index)).
type HopPlane struct {
	g       *graph.Graph
	perm    *names.Permutation
	tables  []*rtz.HopTable
	members [][]HopMember
	memIdx  []map[cover.TreeRef]int32
}

var _ Scheme = (*HopPlane)(nil)
var _ sim.Header = (*HopHeader)(nil)

// NewHopPlane extracts the per-node membership lists from a built hop
// substrate and wraps them with a naming.
func NewHopPlane(hop *rtz.HopScheme, perm *names.Permutation) (*HopPlane, error) {
	g := hop.Graph()
	n := g.N()
	if perm.N() != n {
		return nil, fmt.Errorf("core: naming covers %d nodes, substrate has %d", perm.N(), n)
	}
	members := make([][]HopMember, n)
	for v := 0; v < n; v++ {
		refs := hop.Hierarchy.Memberships(graph.NodeID(v))
		ms := make([]HopMember, 0, len(refs))
		for _, ref := range refs {
			t := hop.Hierarchy.Tree(ref)
			e, ok := hop.Tables[v].Trees[ref]
			if !ok {
				return nil, fmt.Errorf("core: hop table of %d lacks membership %v", v, ref)
			}
			lbl, ok1 := t.LabelOf(graph.NodeID(v))
			dt, ok2 := t.DistTo(graph.NodeID(v))
			df, ok3 := t.DistFrom(graph.NodeID(v))
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("core: tree %v lacks label/distances for %d", ref, v)
			}
			ms = append(ms, HopMember{
				Ref: ref, State: e.State, InPort: e.InPort, IsRoot: e.IsRoot,
				OwnLabel: lbl, DistTo: dt, DistFrom: df,
			})
		}
		members[v] = ms
	}
	return AssembleHopPlane(g, perm, hop.Tables, members)
}

// AssembleHopPlane builds a hop plane directly from per-node state — the
// deployment/wire reassembly path. members[v] must be in the hierarchy's
// membership order (sorted by (level, index)) for handshake tie-breaking
// to match the monolithic substrate.
func AssembleHopPlane(g *graph.Graph, perm *names.Permutation, tables []*rtz.HopTable, members [][]HopMember) (*HopPlane, error) {
	n := g.N()
	if perm.N() != n || len(tables) != n || len(members) != n {
		return nil, fmt.Errorf("core: hop plane needs %d nodes of state, got %d tables / %d member lists / %d names",
			n, len(tables), len(members), perm.N())
	}
	idx := make([]map[cover.TreeRef]int32, n)
	for v := 0; v < n; v++ {
		m := make(map[cover.TreeRef]int32, len(members[v]))
		for i, mem := range members[v] {
			m[mem.Ref] = int32(i)
		}
		idx[v] = m
	}
	return &HopPlane{g: g, perm: perm, tables: tables, members: members, memIdx: idx}, nil
}

// Members returns v's membership list; callers must not modify it.
func (p *HopPlane) Members(v graph.NodeID) []HopMember { return p.members[v] }

// Tables returns the per-node hop tables; callers must not modify them.
func (p *HopPlane) Tables() []*rtz.HopTable { return p.tables }

// Naming returns the plane's name permutation.
func (p *HopPlane) Naming() *names.Permutation { return p.perm }

// R2 resolves the handshake for (u,v) from the endpoints' membership
// lists: the shared tree minimizing the roundtrip through the root, ties
// broken toward the lower (level, index) — Hierarchy.BestTree's rule.
func (p *HopPlane) R2(u, v graph.NodeID) (rtz.Handshake, graph.Dist, error) {
	var (
		best    graph.Dist = graph.Inf
		bestU   *HopMember
		bestV   *HopMember
		bestRef cover.TreeRef
	)
	vIdx := p.memIdx[v]
	for i := range p.members[u] {
		mu := &p.members[u][i]
		j, ok := vIdx[mu.Ref]
		if !ok {
			continue
		}
		mv := &p.members[v][j]
		cost := mu.DistTo + mu.DistFrom + mv.DistTo + mv.DistFrom
		if cost < best || (cost == best && bestU != nil && refLess(mu.Ref, bestRef)) {
			best, bestU, bestV, bestRef = cost, mu, mv, mu.Ref
		}
	}
	if bestU == nil {
		return rtz.Handshake{}, 0, fmt.Errorf("core: no shared double-tree for (%d,%d)", u, v)
	}
	return rtz.Handshake{Ref: bestU.Ref, ULabel: bestU.OwnLabel, VLabel: bestV.OwnLabel}, best, nil
}

// SchemeName implements Scheme.
func (p *HopPlane) SchemeName() string { return "hop-substrate" }

// NewHeader implements sim.Plane.
func (p *HopPlane) NewHeader(srcName, dstName int32) (sim.Header, error) {
	h := &HopHeader{}
	if err := p.arm(h, srcName, dstName); err != nil {
		return nil, err
	}
	return h, nil
}

// ResetHeader implements sim.Plane.
func (p *HopPlane) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*HopHeader)
	if !ok {
		return fmt.Errorf("core: hop plane got %T header", h)
	}
	return p.arm(hh, srcName, dstName)
}

func (p *HopPlane) arm(h *HopHeader, srcName, dstName int32) error {
	if err := checkPlaneName(p.perm, srcName); err != nil {
		return err
	}
	if err := checkPlaneName(p.perm, dstName); err != nil {
		return err
	}
	u := graph.NodeID(p.perm.Node(srcName))
	v := graph.NodeID(p.perm.Node(dstName))
	hs, _, err := p.R2(u, v)
	if err != nil {
		return fmt.Errorf("core: handshake (%d,%d): %w", srcName, dstName, err)
	}
	h.HS = hs
	h.Leg = rtz.HopHeader{Ref: hs.Ref, Target: hs.VLabel}
	return nil
}

// BeginReturn implements sim.Plane.
func (p *HopPlane) BeginReturn(h sim.Header) error {
	hh, ok := h.(*HopHeader)
	if !ok {
		return fmt.Errorf("core: hop plane got %T header", h)
	}
	hh.Leg = rtz.HopHeader{Ref: hh.HS.Ref, Target: hh.HS.ULabel}
	return nil
}

// Forward implements sim.Forwarder.
func (p *HopPlane) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	hh, ok := h.(*HopHeader)
	if !ok {
		return 0, false, fmt.Errorf("core: hop plane got %T header", h)
	}
	return rtz.ForwardHop(p.tables[at], &hh.Leg)
}

// NodeOf implements sim.Plane.
func (p *HopPlane) NodeOf(name int32) graph.NodeID { return graph.NodeID(p.perm.Node(name)) }

// Graph implements sim.Plane.
func (p *HopPlane) Graph() *graph.Graph { return p.g }

// Roundtrip implements Scheme.
func (p *HopPlane) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(p, srcName, dstName, 0)
}

// MaxTableWords implements Scheme.
func (p *HopPlane) MaxTableWords() int {
	m := 0
	for _, t := range p.tables {
		if w := t.Words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords implements Scheme.
func (p *HopPlane) AvgTableWords() float64 {
	total := 0
	for _, t := range p.tables {
		total += t.Words()
	}
	return float64(total) / float64(len(p.tables))
}

func refLess(a, b cover.TreeRef) bool {
	return a.Level < b.Level || (a.Level == b.Level && a.Index < b.Index)
}

func checkPlaneName(perm *names.Permutation, name int32) error {
	if name < 0 || int(name) >= perm.N() {
		return fmt.Errorf("core: name %d outside [0,%d)", name, perm.N())
	}
	return nil
}
