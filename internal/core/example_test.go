package core_test

import (
	"fmt"
	"math/rand"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

// Example builds the §2 stretch-6 scheme over a small seeded digraph,
// routes one roundtrip by NAME, and then certifies the per-node
// decomposition: Deploy splits the scheme into per-node router state
// and reassembles it, route-identically.
func Example() {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomSC(24, 96, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(24, rng)

	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(7)), core.Stretch6Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	tr, err := s6.Roundtrip(3, 17)
	if err != nil {
		fmt.Println(err)
		return
	}
	src := graph.NodeID(perm.Node(3))
	dst := graph.NodeID(perm.Node(17))
	fmt.Println("stretch within 6:", float64(tr.Weight()) <= 6*float64(m.R(src, dst)))

	dep, err := core.Deploy(s6)
	if err != nil {
		fmt.Println(err)
		return
	}
	tr2, err := dep.Roundtrip(3, 17)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("deployment route-identical:", tr2.Weight() == tr.Weight() && tr2.Hops() == tr.Hops())
	// Output:
	// stretch within 6: true
	// deployment route-identical: true
}
