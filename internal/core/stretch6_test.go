package core

import (
	"math"
	"math/rand"
	"testing"

	"rtroute/internal/blocks"
	"rtroute/internal/graph"
	"rtroute/internal/names"
)

func buildStretch6(t testing.TB, seed int64, g *graph.Graph, perm *names.Permutation) (*StretchSix, *graph.Metric) {
	t.Helper()
	m := graph.AllPairs(g)
	rng := rand.New(rand.NewSource(seed))
	if perm == nil {
		perm = names.Random(g.N(), rng)
	}
	s, err := NewStretchSix(g, m, perm, rng, Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

// TestStretchSixBound is experiment E3: Lemma 3's stretch-6 guarantee is
// a worst-case bound, so we assert it for EVERY ordered pair on several
// random weighted digraphs under adversarial naming.
func TestStretchSixBound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomSC(40, 160, 9, rng)
		perm := names.Random(g.N(), rng)
		s, m := buildStretch6(t, seed+100, g, perm)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatalf("seed %d roundtrip %d->%d: %v", seed, u, v, err)
				}
				r := m.R(graph.NodeID(u), graph.NodeID(v))
				if got := rt.Weight(); got > 6*r {
					t.Fatalf("seed %d: stretch-6 violated for (%d,%d): %d > 6*%d", seed, u, v, got, r)
				}
				if got := rt.Weight(); got < r {
					t.Fatalf("seed %d: roundtrip (%d,%d) = %d beats optimum %d (metric bug)", seed, u, v, got, r)
				}
			}
		}
	}
}

func TestStretchSixSelfRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomSC(20, 80, 5, rng)
	perm := names.Random(g.N(), rng)
	s, _ := buildStretch6(t, 5, g, perm)
	rt, err := s.Roundtrip(perm.Name(3), perm.Name(3))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Weight() != 0 || rt.Hops() != 0 {
		t.Fatalf("self roundtrip cost %d weight, %d hops; want 0", rt.Weight(), rt.Hops())
	}
}

func TestStretchSixHeaderBound(t *testing.T) {
	// Headers must stay O(log^2 n) bits; in words that is O(log n).
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomSC(128, 512, 7, rng)
	perm := names.Random(g.N(), rng)
	s, _ := buildStretch6(t, 7, g, perm)
	logn := int(math.Ceil(math.Log2(float64(g.N()))))
	bound := 12 + 6*logn // generous constant: two R3 labels + bookkeeping
	for trial := 0; trial < 300; trial++ {
		u := int32(rng.Intn(g.N()))
		v := int32(rng.Intn(g.N()))
		rt, err := s.Roundtrip(perm.Name(u), perm.Name(v))
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.MaxHeaderWords(); got > bound {
			t.Fatalf("header grew to %d words; O(log n) bound %d", got, bound)
		}
	}
}

func TestStretchSixAdversarialNamings(t *testing.T) {
	// The same topology under identity, reversed and random namings must
	// all meet the bound: the scheme may not exploit name/topology
	// correlation (the whole point of TINN).
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomSC(32, 128, 6, rng)
	m := graph.AllPairs(g)
	for _, perm := range []*names.Permutation{
		names.Identity(g.N()),
		names.Reversed(g.N()),
		names.Random(g.N(), rng),
	} {
		s, err := NewStretchSix(g, m, perm, rand.New(rand.NewSource(9)), Stretch6Config{})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				if rt.Weight() > 6*m.R(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("naming broke stretch bound at (%d,%d)", u, v)
				}
			}
		}
	}
}

func TestStretchSixOnRing(t *testing.T) {
	// Rings force maximal one-way asymmetry.
	rng := rand.New(rand.NewSource(10))
	g := graph.Ring(25, rng)
	perm := names.Random(g.N(), rng)
	s, m := buildStretch6(t, 11, g, perm)
	for u := 0; u < g.N(); u += 3 {
		for v := 0; v < g.N(); v += 2 {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			if rt.Weight() > 6*m.R(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("ring stretch violated at (%d,%d)", u, v)
			}
		}
	}
}

func TestStretchSixOnGridAndLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, g := range []*graph.Graph{
		graph.Grid(5, 6, rng),
		graph.LayeredSC(4, 6, 4, rng),
		graph.ScaleFreeSC(30, 2, 5, rng),
	} {
		perm := names.Random(g.N(), rng)
		s, m := buildStretch6(t, 13, g, perm)
		for u := 0; u < g.N(); u += 2 {
			for v := 1; v < g.N(); v += 3 {
				if u == v {
					continue
				}
				rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
				if err != nil {
					t.Fatal(err)
				}
				if rt.Weight() > 6*m.R(graph.NodeID(u), graph.NodeID(v)) {
					t.Fatalf("stretch violated at (%d,%d) on %d-node graph", u, v, g.N())
				}
			}
		}
	}
}

func TestStretchSixTableGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("table growth measurement needs n=1024")
	}
	// E9: average table size should scale ~sqrt(n)*polylog. At small n
	// the O(log n) block count equals the sqrt(n) block universe, so the
	// sqrt regime only shows at n >= 256; quadrupling 256 -> 1024 must
	// grow tables well under 4x.
	sizes := map[int]float64{}
	for _, n := range []int{256, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomSC(n, 4*n, 8, rng)
		perm := names.Random(n, rng)
		m := graph.AllPairs(g)
		s, err := NewStretchSix(g, m, perm, rng, Stretch6Config{
			Blocks: blocks.Config{Boost: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		sizes[n] = s.AvgTableWords()
	}
	if ratio := sizes[1024] / sizes[256]; ratio > 3.2 {
		t.Fatalf("table growth ratio %.2f for 4x nodes; expected ~2x (sqrt growth)", ratio)
	}
}

func TestStretchSixArbitraryWeights(t *testing.T) {
	// §2 allows ARBITRARY positive weights (no polynomial restriction):
	// exercise huge weight spread.
	rng := rand.New(rand.NewSource(14))
	g := graph.RandomSC(24, 96, 1_000_000_000, rng)
	perm := names.Random(g.N(), rng)
	s, m := buildStretch6(t, 15, g, perm)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			if rt.Weight() > 6*m.R(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("huge weights broke bound at (%d,%d)", u, v)
			}
		}
	}
}

func TestStretchSixRejectsBadInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := graph.RandomSC(10, 20, 3, rng)
	m := graph.AllPairs(g)
	if _, err := NewStretchSix(graph.New(1), graph.AllPairs(graph.New(1)), names.Identity(1), rng, Stretch6Config{}); err == nil {
		t.Fatal("single-node graph accepted")
	}
	if _, err := NewStretchSix(g, m, names.Identity(5), rng, Stretch6Config{}); err == nil {
		t.Fatal("mismatched naming accepted")
	}
}

func TestStretchSixStretchDistribution(t *testing.T) {
	// Mean stretch should be comfortably below the worst case — a sanity
	// check that the scheme is not pathologically pinned at its bound.
	rng := rand.New(rand.NewSource(17))
	g := graph.RandomSC(48, 240, 6, rng)
	perm := names.Random(g.N(), rng)
	s, m := buildStretch6(t, 18, g, perm)
	var total, count float64
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			rt, err := s.Roundtrip(perm.Name(int32(u)), perm.Name(int32(v)))
			if err != nil {
				t.Fatal(err)
			}
			total += float64(rt.Weight()) / float64(m.R(graph.NodeID(u), graph.NodeID(v)))
			count++
		}
	}
	mean := total / count
	if mean > 4.0 {
		t.Fatalf("mean stretch %.2f suspiciously close to the worst case 6", mean)
	}
	if mean < 1.0 {
		t.Fatalf("mean stretch %.2f below 1 (accounting bug)", mean)
	}
}
