package core

import (
	"math/rand"
	"testing"

	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/sim"
)

// wordsCheckingForwarder wraps a StretchSix and compares the header's
// cached Words against the recomputed reference after every hop.
type wordsCheckingForwarder struct {
	t *testing.T
	s *StretchSix
}

func (f wordsCheckingForwarder) Forward(at graph.NodeID, h sim.Header) (graph.PortID, bool, error) {
	port, delivered, err := f.s.Forward(at, h)
	hh := h.(*S6Header)
	if got, want := hh.Words(), hh.wordsRecomputed(); got != want {
		f.t.Fatalf("at node %d (mode %v stage %v): cached Words %d != recomputed %d",
			at, hh.Mode, hh.Stage, got, want)
	}
	return port, delivered, err
}

// TestS6HeaderWordsCacheConsistent drives full roundtrips — including
// the via-source variant, whose Fetched stages exercise every cached
// component — and asserts the cached word count never drifts from the
// reference implementation.
func TestS6HeaderWordsCacheConsistent(t *testing.T) {
	const n = 32
	for _, viaSource := range []bool{false, true} {
		rng := rand.New(rand.NewSource(31))
		g := graph.RandomSC(n, 4*n, 6, rng)
		m := graph.AllPairs(g)
		perm := names.Random(n, rng)
		s6, err := NewStretchSix(g, m, perm, rng, Stretch6Config{ViaSource: viaSource})
		if err != nil {
			t.Fatal(err)
		}
		f := wordsCheckingForwarder{t: t, s: s6}
		for src := int32(0); src < n; src++ {
			dst := (src*11 + 5) % n
			if src == dst {
				continue
			}
			h, err := s6.NewHeader(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := h.Words(), h.(*S6Header).wordsRecomputed(); got != want {
				t.Fatalf("fresh header: cached Words %d != recomputed %d", got, want)
			}
			if _, err := sim.Run(g, f, s6.NodeOf(src), h, 0); err != nil {
				t.Fatalf("outbound (%d,%d) via-source=%v: %v", src, dst, viaSource, err)
			}
			if err := s6.BeginReturn(h); err != nil {
				t.Fatal(err)
			}
			if _, err := sim.Run(g, f, s6.NodeOf(dst), h, 0); err != nil {
				t.Fatalf("return (%d,%d) via-source=%v: %v", src, dst, viaSource, err)
			}
			if err := s6.ResetHeader(h, src, dst); err != nil {
				t.Fatal(err)
			}
			if got, want := h.Words(), h.(*S6Header).wordsRecomputed(); got != want {
				t.Fatalf("reset header: cached Words %d != recomputed %d", got, want)
			}
		}
	}
}
