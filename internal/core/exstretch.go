package core

import (
	"fmt"
	"math/rand"

	"rtroute/internal/blocks"
	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/parallel"
	"rtroute/internal/rtmetric"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// ExStretch is the §3 scheme (Figs. 4 and 6): the exponential
// stretch/space tradeoff. A packet visits waypoints s = v_0, v_1, ...,
// v_k = t where each v_i holds a block whose prefix matches the first i
// digits of the destination name; each leg is routed with the
// name-dependent handshake R2(v_i, v_i+1) through a shared double-tree
// ("Hop"), and the return trip pops the handshake stack.
//
// Per-node storage (§3.3):
//  1. the hop substrate's table Tab(u);
//  2. for every v in N_1(u): (name(v), R2(u,v));
//  3. for every block in S'_u = S_u ∪ {own block}:
//     (a) for every level i < k-1 and digit τ: R2(u,v) for the
//     Init_u-nearest v holding a block matching σ^i and continuing
//     with τ — indexed here by (i, σ^i value, τ), which deduplicates
//     blocks sharing a prefix;
//     (b) for every name j in the block: R2(u, node named j).
type ExStretch struct {
	g            *graph.Graph
	perm         *names.Permutation
	hop          *rtz.HopScheme
	uni          blocks.Universe
	assign       *blocks.Assignment
	k            int
	directReturn bool

	nodes []*exTable
}

// ExGlobal is one level of a node's globally valid label: its home
// double-tree and its address within it (DirectReturn variant).
type ExGlobal struct {
	Ref   cover.TreeRef
	Label tree.Label
}

type exDictKey struct {
	Level  int8
	Prefix int32
	Tau    int32
}

type exDictEntry struct {
	TargetName int32
	HS         rtz.Handshake
}

type exTable struct {
	selfName int32
	// neighbors is storage item (2): name -> handshake.
	neighbors map[int32]rtz.Handshake
	// dict is storage item (3a).
	dict map[exDictKey]exDictEntry
	// full is storage item (3b): names covered by held blocks.
	full map[int32]rtz.Handshake
	// hopTab is storage item (1).
	hopTab *rtz.HopTable
	// global is the node's own globally valid label, present only in the
	// DirectReturn variant (the "second set of routing tables" of §3.5).
	global []ExGlobal
}

func (t *exTable) words() int {
	w := 1 + t.hopTab.Words()
	for _, hs := range t.neighbors {
		w += 1 + hs.Words()
	}
	for _, e := range t.dict {
		w += 4 + e.HS.Words()
	}
	for _, hs := range t.full {
		w += 1 + hs.Words()
	}
	for _, g := range t.global {
		w += 2 + g.Label.Words()
	}
	return w
}

// ExWaypoint is one stack record: the waypoint we departed from and the
// handshake used, so the return trip can retrace it.
type ExWaypoint struct {
	Name int32
	HS   rtz.Handshake
}

// ExHeader is the packet header of Fig. 6.
type ExHeader struct {
	Mode             Mode
	DestName         int32
	SrcName          int32
	Hop              int8
	NextWaypointName int32
	Stack            []ExWaypoint
	Global           []ExGlobal // source's global label (DirectReturn)
	Leg              rtz.HopHeader
	LegSet           bool
}

// Words implements sim.Header. The stack holds at most k handshakes:
// o(k log^2 n) bits as Theorem 9 states. The DirectReturn variant trades
// the stack for the per-level global label.
func (h *ExHeader) Words() int {
	w := 5 + h.Leg.Words()
	for _, rec := range h.Stack {
		w += 1 + rec.HS.Words()
	}
	for _, g := range h.Global {
		w += 2 + g.Label.Words()
	}
	return w
}

var _ sim.Header = (*ExHeader)(nil)
var _ sim.Forwarder = (*ExStretch)(nil)
var _ Scheme = (*ExStretch)(nil)

// ExStretchConfig tunes construction.
type ExStretchConfig struct {
	// K is the tradeoff parameter (word length); >= 2. Tables scale as
	// O~(n^(1/k)) and stretch as (2^k - 1) times the hop stretch.
	K int
	// CoverK is the sparse-cover parameter of the hop substrate;
	// defaults to K.
	CoverK int
	// ScaleBase is the hop substrate's cover scale ratio (default 2).
	ScaleBase float64
	// Variant selects the cover construction (default Awerbuch–Peleg).
	Variant cover.Variant
	// Blocks configures the Lemma 4 assignment.
	Blocks blocks.Config
	// DirectReturn selects the §3.5 variant: instead of retracing the
	// waypoint stack, the packet carries the source's globally valid
	// label (its home tree and address at every level) and the
	// destination routes straight back through the lowest shared tree.
	// The paper notes this costs "longer headers and two sets of routing
	// tables" for a worse worst case — the E4 ablation measures it.
	DirectReturn bool
	// BuildWorkers parallelizes per-node table construction
	// (0 = GOMAXPROCS, 1 = sequential). Output is identical either way.
	BuildWorkers int
}

// NewExStretch builds the scheme. m may be any distance oracle.
func NewExStretch(g *graph.Graph, m graph.DistanceOracle, perm *names.Permutation, rng *rand.Rand, cfg ExStretchConfig) (*ExStretch, error) {
	n := g.N()
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: exstretch needs K >= 2, got %d", cfg.K)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: exstretch needs at least 2 nodes, got %d", n)
	}
	if perm.N() != n {
		return nil, fmt.Errorf("core: naming covers %d nodes, graph has %d", perm.N(), n)
	}
	coverK := cfg.CoverK
	if coverK < 2 {
		coverK = cfg.K
	}
	base := cfg.ScaleBase
	if base <= 1 {
		base = 2
	}

	space := rtmetric.New(g, m, perm.Names)
	hop, err := rtz.NewHop(g, m, coverK, base, cfg.Variant)
	if err != nil {
		return nil, fmt.Errorf("core: hop substrate: %w", err)
	}
	bcfg := cfg.Blocks
	bcfg.Names = perm.Names
	assign, err := blocks.Assign(space, cfg.K, rng, bcfg)
	if err != nil {
		return nil, fmt.Errorf("core: block assignment: %w", err)
	}

	s := &ExStretch{
		g: g, perm: perm, hop: hop, uni: assign.U, assign: assign,
		k: cfg.K, directReturn: cfg.DirectReturn,
		nodes: make([]*exTable, n),
	}
	sizes := rtmetric.NeighborhoodSizes(n, cfg.K)

	r2 := func(u, v graph.NodeID) (rtz.Handshake, error) {
		hs, _, err := hop.R2(u, v)
		return hs, err
	}

	// Per-node tables read only shared immutable state (hierarchy,
	// assignment, Init orders); build them in parallel.
	space.Precompute(cfg.BuildWorkers)
	err = parallel.ForEach(n, cfg.BuildWorkers, func(u int) error {
		tab := &exTable{
			selfName:  perm.Name(int32(u)),
			neighbors: make(map[int32]rtz.Handshake),
			dict:      make(map[exDictKey]exDictEntry),
			full:      make(map[int32]rtz.Handshake),
			hopTab:    hop.Tables[u],
		}
		// (2) N_1(u) handshakes.
		for _, v := range space.Neighborhood(graph.NodeID(u), sizes[1]) {
			if v == graph.NodeID(u) {
				continue
			}
			hs, err := r2(graph.NodeID(u), v)
			if err != nil {
				return err
			}
			tab.neighbors[perm.Name(int32(v))] = hs
		}
		// (3a) prefix-advancing dictionary, deduplicated by (level,
		// prefix value, next digit).
		initOrder := space.Init(graph.NodeID(u))
		for _, b := range assign.Sets[u] {
			for i := 0; i < cfg.K-1; i++ {
				prefix := assign.U.BlockPrefix(b, i)
				for tau := int32(0); tau < int32(assign.U.Q); tau++ {
					key := exDictKey{Level: int8(i), Prefix: prefix, Tau: tau}
					if _, done := tab.dict[key]; done {
						continue
					}
					target := graph.NodeID(-1)
					for _, w := range initOrder {
						if holdsPrefixDigit(assign, w, i, prefix, tau) {
							target = w
							break
						}
					}
					if target < 0 {
						continue // no holder anywhere: prefix+τ class unrealized
					}
					var hs rtz.Handshake
					if target != graph.NodeID(u) {
						var err error
						if hs, err = r2(graph.NodeID(u), target); err != nil {
							return err
						}
					}
					tab.dict[key] = exDictEntry{TargetName: perm.Name(int32(target)), HS: hs}
				}
			}
		}
		// (3b) full dictionary entries of held blocks.
		for _, b := range assign.Sets[u] {
			for _, nm := range assign.U.NamesInBlock(b) {
				v := graph.NodeID(perm.Node(nm))
				var hs rtz.Handshake
				if v != graph.NodeID(u) {
					var err error
					if hs, err = r2(graph.NodeID(u), v); err != nil {
						return err
					}
				}
				tab.full[nm] = hs
			}
		}
		// Global label for the §3.5 direct-return variant.
		if cfg.DirectReturn {
			for li, lvl := range hop.Hierarchy.Levels {
				ref := cover.TreeRef{Level: int32(li), Index: lvl.Cover.Home[u]}
				lbl, ok := hop.Hierarchy.Tree(ref).LabelOf(graph.NodeID(u))
				if !ok {
					return fmt.Errorf("core: home tree %v lacks label for %d", ref, u)
				}
				tab.global = append(tab.global, ExGlobal{Ref: ref, Label: lbl})
			}
		}
		s.nodes[u] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// holdsPrefixDigit reports whether node w holds a block matching the
// given length-i prefix whose (i+1)-st digit is tau.
func holdsPrefixDigit(a *blocks.Assignment, w graph.NodeID, i int, prefix, tau int32) bool {
	for _, b := range a.Sets[w] {
		if a.U.BlockPrefix(b, i) == prefix && a.U.BlockPrefix(b, i+1) == prefix*int32(a.U.Q)+tau {
			return true
		}
	}
	return false
}

// SchemeName implements Scheme.
func (s *ExStretch) SchemeName() string {
	if s.directReturn {
		return fmt.Sprintf("exstretch(k=%d,direct-return)", s.k)
	}
	return fmt.Sprintf("exstretch(k=%d)", s.k)
}

// lookupNext finds the next waypoint from node u at hop index i (the
// packet has matched i digits so far): the (3a) dictionary for i+1 < k,
// or the (3b) full entry for the final hop.
func (s *ExStretch) lookupNext(tab *exTable, hopIdx int, destName int32) (int32, rtz.Handshake, error) {
	if hopIdx+1 >= s.k {
		hs, ok := tab.full[destName]
		if !ok {
			return 0, rtz.Handshake{}, fmt.Errorf("core: node %d lacks full entry for %d", tab.selfName, destName)
		}
		return destName, hs, nil
	}
	key := exDictKey{
		Level:  int8(hopIdx),
		Prefix: s.uni.Prefix(destName, hopIdx),
		Tau:    s.uni.Prefix(destName, hopIdx+1) % int32(s.uni.Q),
	}
	e, ok := tab.dict[key]
	if !ok {
		return 0, rtz.Handshake{}, fmt.Errorf("core: node %d lacks dictionary entry %+v for %d", tab.selfName, key, destName)
	}
	return e.TargetName, e.HS, nil
}

// advance runs the Fig. 4 waypoint loop at the current node: skip
// waypoints colocated here, then arm the leg toward the next real
// waypoint (pushing the handshake for the return trip).
func (s *ExStretch) advance(tab *exTable, h *ExHeader) error {
	for {
		if int(h.Hop) >= s.k {
			return fmt.Errorf("core: advance called at hop %d >= k", h.Hop)
		}
		nextName, hs, err := s.lookupNext(tab, int(h.Hop), h.DestName)
		if err != nil {
			return err
		}
		h.Hop++
		if nextName == tab.selfName {
			if int(h.Hop) >= s.k {
				return fmt.Errorf("core: final waypoint equals non-destination node %d", tab.selfName)
			}
			continue
		}
		if !s.directReturn {
			h.Stack = append(h.Stack, ExWaypoint{Name: tab.selfName, HS: hs})
		}
		h.NextWaypointName = nextName
		h.Leg = rtz.HopHeader{Ref: hs.Ref, Target: hs.VLabel}
		h.LegSet = true
		return nil
	}
}

// Forward implements the Fig. 6 local routing algorithm.
func (s *ExStretch) Forward(at graph.NodeID, header sim.Header) (graph.PortID, bool, error) {
	h, ok := header.(*ExHeader)
	if !ok {
		return 0, false, fmt.Errorf("core: exstretch got %T header", header)
	}
	tab := s.nodes[at]
	nx := tab.selfName

	switch h.Mode {
	case ModeNewPacket:
		h.Mode = ModeOutbound
		h.SrcName = nx
		h.Hop = 0
		h.Stack = h.Stack[:0]
		if s.directReturn {
			h.Global = tab.global
		}
		if h.DestName == nx {
			return 0, true, nil
		}
		if err := s.advance(tab, h); err != nil {
			return 0, false, err
		}

	case ModeOutbound:
		if nx == h.NextWaypointName {
			// Deliver only when the destination is the leg target: a
			// packet merely passing through t mid-leg must continue, or
			// the return trip would pop a handshake whose tree need not
			// contain t.
			if nx == h.DestName {
				return 0, true, nil
			}
			if err := s.advance(tab, h); err != nil {
				return 0, false, err
			}
		}

	case ModeReturnPacket:
		h.Mode = ModeInbound
		if nx == h.SrcName {
			return 0, true, nil
		}
		if s.directReturn {
			// §3.5 variant: route straight home through the lowest
			// shared tree of the source's global label.
			for _, g := range h.Global {
				if _, ok := tab.hopTab.Trees[g.Ref]; ok {
					h.NextWaypointName = h.SrcName
					h.Leg = rtz.HopHeader{Ref: g.Ref, Target: g.Label}
					h.LegSet = true
					break
				}
			}
			if !h.LegSet {
				return 0, false, fmt.Errorf("core: no shared tree with source %d at %d", h.SrcName, nx)
			}
			break
		}
		if len(h.Stack) == 0 {
			return 0, false, fmt.Errorf("core: return packet at %d with empty waypoint stack", nx)
		}
		rec := h.Stack[len(h.Stack)-1]
		h.Stack = h.Stack[:len(h.Stack)-1]
		h.NextWaypointName = rec.Name
		h.Leg = rtz.HopHeader{Ref: rec.HS.Ref, Target: rec.HS.ULabel}
		h.LegSet = true

	case ModeInbound:
		if nx == h.NextWaypointName {
			if len(h.Stack) == 0 {
				if nx != h.SrcName {
					return 0, false, fmt.Errorf("core: stack empty at %d but source is %d", nx, h.SrcName)
				}
				return 0, true, nil
			}
			rec := h.Stack[len(h.Stack)-1]
			h.Stack = h.Stack[:len(h.Stack)-1]
			h.NextWaypointName = rec.Name
			h.Leg = rtz.HopHeader{Ref: rec.HS.Ref, Target: rec.HS.ULabel}
		}

	default:
		return 0, false, fmt.Errorf("core: invalid mode %v", h.Mode)
	}

	if !h.LegSet {
		return 0, false, fmt.Errorf("core: packet at %d has no active leg", nx)
	}
	port, delivered, err := rtz.ForwardHop(tab.hopTab, &h.Leg)
	if err != nil {
		return 0, false, err
	}
	if delivered {
		return 0, false, fmt.Errorf("core: hop leg delivered at %d without waypoint match", nx)
	}
	return port, false, nil
}

// NewHeader implements sim.Plane.
func (s *ExStretch) NewHeader(srcName, dstName int32) (sim.Header, error) {
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return nil, fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	return &ExHeader{Mode: ModeNewPacket, DestName: dstName}, nil
}

// ResetHeader implements sim.Plane: rewrite an earlier header in place
// into a fresh Fig. 6 outbound header. The waypoint stack keeps its
// capacity, so a reused header stops allocating once it has seen a
// k-waypoint route.
func (s *ExStretch) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*ExHeader)
	if !ok {
		return fmt.Errorf("core: exstretch got %T header", h)
	}
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	*hh = ExHeader{Mode: ModeNewPacket, DestName: dstName, Stack: hh.Stack[:0]}
	return nil
}

// BeginReturn implements sim.Plane.
func (s *ExStretch) BeginReturn(h sim.Header) error {
	hh, ok := h.(*ExHeader)
	if !ok {
		return fmt.Errorf("core: exstretch got %T header", h)
	}
	hh.Mode = ModeReturnPacket
	return nil
}

// NodeOf implements sim.Plane.
func (s *ExStretch) NodeOf(name int32) graph.NodeID { return graph.NodeID(s.perm.Node(name)) }

// Graph implements sim.Plane.
func (s *ExStretch) Graph() *graph.Graph { return s.g }

// Roundtrip implements Scheme.
func (s *ExStretch) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(s, srcName, dstName, 0)
}

// Waypoints returns the waypoint node sequence s = v_0, ..., v_k = t the
// scheme visits for this pair, computed from the same tables the packet
// would consult. Exposed for the Lemma 8 experiments.
func (s *ExStretch) Waypoints(srcName, dstName int32) ([]graph.NodeID, error) {
	cur := graph.NodeID(s.perm.Node(srcName))
	dst := graph.NodeID(s.perm.Node(dstName))
	seq := []graph.NodeID{cur}
	if cur == dst {
		return seq, nil
	}
	for hop := 0; hop < s.k; {
		tab := s.nodes[cur]
		nextName, _, err := s.lookupNext(tab, hop, dstName)
		if err != nil {
			return nil, err
		}
		hop++
		next := graph.NodeID(s.perm.Node(nextName))
		if next == cur {
			continue
		}
		seq = append(seq, next)
		cur = next
	}
	if cur != dst {
		return nil, fmt.Errorf("core: waypoint walk ended at %d, want %d", cur, dst)
	}
	return seq, nil
}

// K returns the tradeoff parameter.
func (s *ExStretch) K() int { return s.k }

// PrefixStep is one stop of the Fig. 5 prefix-matching walk.
type PrefixStep struct {
	Node    graph.NodeID
	Name    int32
	Digits  []int // base-q digits of the waypoint's name
	Matched int   // digits of the destination matched by a held block
}

// PrefixTrace reports the Fig. 5 walk: each waypoint with its name
// digits and the destination-prefix length its blocks match — the
// "increasingly matching the destination" illustration.
func (s *ExStretch) PrefixTrace(srcName, dstName int32) ([]PrefixStep, error) {
	if s.assign == nil {
		return nil, fmt.Errorf("core: PrefixTrace unavailable on an assembled deployment (block assignment not part of local state)")
	}
	wps, err := s.Waypoints(srcName, dstName)
	if err != nil {
		return nil, err
	}
	steps := make([]PrefixStep, 0, len(wps))
	for _, w := range wps {
		nm := s.perm.Name(int32(w))
		matched := 0
		for i := s.k; i >= 0; i-- {
			if s.HoldsPrefix(w, i, dstName) {
				matched = i
				break
			}
		}
		if nm == dstName {
			matched = s.k
		}
		steps = append(steps, PrefixStep{Node: w, Name: nm, Digits: s.uni.Digits(nm), Matched: matched})
	}
	return steps, nil
}

// Universe exposes the base-q name coding for display tools.
func (s *ExStretch) Universe() blocks.Universe { return s.uni }

// HoldsPrefix reports whether node v stores a block whose first i digits
// match the first i digits of the given name — the §3.4 waypoint
// invariant. Exposed for the experiments. On an assembled Deployment the
// block assignment is not part of any node's local state, so HoldsPrefix
// reports false for every query; use PrefixTrace, which returns an
// explicit error, when deployment-origin schemes may reach this code.
func (s *ExStretch) HoldsPrefix(v graph.NodeID, i int, name int32) bool {
	if s.assign == nil {
		return false
	}
	want := s.uni.Prefix(name, i)
	for _, b := range s.assign.Sets[v] {
		if s.uni.BlockPrefix(b, i) == want {
			return true
		}
	}
	return false
}

// HopSubstrate exposes the hop scheme for experiments.
func (s *ExStretch) HopSubstrate() *rtz.HopScheme { return s.hop }

// MaxTableWords implements Scheme.
func (s *ExStretch) MaxTableWords() int {
	m := 0
	for _, t := range s.nodes {
		if w := t.words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords implements Scheme.
func (s *ExStretch) AvgTableWords() float64 {
	total := 0
	for _, t := range s.nodes {
		total += t.words()
	}
	return float64(total) / float64(len(s.nodes))
}
