// Package core implements the paper's three TINN compact roundtrip
// routing schemes:
//
//   - StretchSix (§2, Fig. 3): O~(sqrt n) tables, O(log^2 n) headers,
//     roundtrip stretch 6, arbitrary positive edge weights.
//   - ExStretch (§3, Figs. 4/6): O~(n^(1/k)) tables for fixed k, headers
//     o(k log^2 n), stretch (2^k - 1) times the hop substrate's roundtrip
//     stretch — the exponential tradeoff.
//   - PolynomialStretch (§4, Figs. 9/11): O~(k^2 n^(2/k) log RTDiam)
//     tables, stretch 8k^2 + 4k - 4 — the polynomial tradeoff.
//
// All three are TINN: node names are an adversarial permutation of
// {0..n-1}; packets arrive carrying only the destination's name; routing
// tables are keyed by name; everything topology-dependent is learned from
// the distributed dictionary en route and written into the packet header.
package core

import (
	"rtroute/internal/sim"
)

// Mode is the packet lifecycle marker used by all schemes' headers
// (NewPacket / Outbound / ReturnPacket / Inbound of Figs. 3 and 6).
type Mode int8

const (
	ModeNewPacket Mode = iota
	ModeOutbound
	ModeReturnPacket
	ModeInbound
)

func (m Mode) String() string {
	switch m {
	case ModeNewPacket:
		return "new"
	case ModeOutbound:
		return "outbound"
	case ModeReturnPacket:
		return "return"
	case ModeInbound:
		return "inbound"
	default:
		return "invalid"
	}
}

// Scheme is the common interface of the three TINN roundtrip routing
// schemes, written against names only: a caller routes to a destination
// NAME, never to a topological index.
//
// Every Scheme is a sim.Plane: once construction returns, its tables are
// frozen and Forward/NewHeader/BeginReturn mutate only the packet header,
// so one built scheme may serve any number of concurrent goroutines —
// the contract the traffic engine's sharded workers rely on, certified
// by the concurrent-forwarding race tests.
type Scheme interface {
	sim.Plane
	// SchemeName identifies the algorithm for reports.
	SchemeName() string
	// Roundtrip routes a packet from the node named srcName to the node
	// named dstName and an acknowledgment back, returning both traces.
	Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error)
	// MaxTableWords returns the largest local routing table in words.
	MaxTableWords() int
	// AvgTableWords returns the mean local routing table size in words.
	AvgTableWords() float64
}
