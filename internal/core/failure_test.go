package core

import (
	"math/rand"
	"strings"
	"testing"

	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/sim"
)

// Failure-injection tests: a production routing stack must fail loudly
// and diagnosably — never panic, never loop silently — when handed
// corrupted headers, foreign labels, or impossible modes.

type bogusHeader struct{}

func (bogusHeader) Words() int { return 1 }

func buildAllSchemes(t *testing.T, seed int64, n int) (*graph.Graph, *names.Permutation, []sim.Forwarder) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 5, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)
	s6, err := NewStretchSix(g, m, perm, rng, Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	poly, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g, perm, []sim.Forwarder{s6, ex, poly}
}

func TestForwardRejectsWrongHeaderType(t *testing.T) {
	_, _, schemes := buildAllSchemes(t, 1, 16)
	for _, sch := range schemes {
		if _, _, err := sch.Forward(0, bogusHeader{}); err == nil {
			t.Fatalf("%T accepted a foreign header type", sch)
		}
	}
}

func TestForwardRejectsInvalidMode(t *testing.T) {
	_, _, schemes := buildAllSchemes(t, 2, 16)
	headers := []sim.Header{
		&S6Header{Mode: Mode(99), DestName: 1},
		&ExHeader{Mode: Mode(99), DestName: 1},
		&PolyHeader{Mode: Mode(99), DestName: 1},
	}
	for i, sch := range schemes {
		if _, _, err := sch.Forward(0, headers[i]); err == nil {
			t.Fatalf("%T accepted an invalid mode", sch)
		} else if !strings.Contains(err.Error(), "mode") {
			t.Fatalf("%T error does not mention the mode: %v", sch, err)
		}
	}
}

func TestStretchSixUnknownDestinationName(t *testing.T) {
	// A name outside [0,n) has no block; the source must fail with a
	// diagnosable error rather than forward garbage.
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomSC(16, 64, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	s, err := NewStretchSix(g, m, perm, rng, Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := &S6Header{Mode: ModeNewPacket, DestName: 9999, DictName: -1}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked on unknown name: %v", r)
		}
	}()
	if _, _, err := s.Forward(0, h); err == nil {
		// Some block universes cover 9999 legitimately; then routing
		// proceeds but can never deliver — the simulator's hop budget
		// must catch it.
		if _, err := sim.Run(g, s, 0, h, 64); err == nil {
			t.Fatal("unknown destination silently 'delivered'")
		}
	}
}

func TestExStretchEmptyStackReturnFails(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomSC(16, 64, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	s, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A ReturnPacket at a node that is not the source with no stack is a
	// protocol violation and must error.
	h := &ExHeader{Mode: ModeReturnPacket, DestName: perm.Name(3), SrcName: perm.Name(5)}
	if _, _, err := s.Forward(3, h); err == nil {
		t.Fatal("empty-stack return accepted away from the source")
	}
}

func TestPolyLadderExhaustionIsDiagnosed(t *testing.T) {
	// Corrupt the header to the top level and force a failure return:
	// escalation past the ladder must produce an explicit error.
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomSC(16, 64, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	s, err := NewPolynomialStretch(g, m, perm, PolyConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := graph.NodeID(2)
	h := &PolyHeader{
		Mode:     ModeOutbound,
		DestName: 9999, // unmatchable: every dictionary lookup fails
		SrcName:  s.nodes[src].selfName,
		Level:    int32(s.Levels() - 1),
		Ref:      s.nodes[src].home[s.Levels()-1],
	}
	h.NextWaypointName = h.SrcName
	e := s.nodes[src].trees[h.Ref]
	h.SourceLabel = e.ownLabel
	_, _, err = s.Forward(src, h)
	if err == nil || !strings.Contains(err.Error(), "ladder") {
		t.Fatalf("ladder exhaustion not diagnosed: %v", err)
	}
}

func TestForeignLabelIsCaught(t *testing.T) {
	// Route with a header whose leg targets a tree from a DIFFERENT
	// build: the hop table lookup must fail cleanly.
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomSC(16, 64, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	ex, err := NewExStretch(g, m, perm, rng, ExStretchConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := &ExHeader{Mode: ModeOutbound, DestName: perm.Name(7), SrcName: perm.Name(0), NextWaypointName: -2, LegSet: true}
	h.Leg.Ref.Level = 99 // no such tree anywhere
	if _, _, err := ex.Forward(0, h); err == nil {
		t.Fatal("foreign tree reference accepted")
	}
}

func TestRoundtripToUnknownNamePanicsSafely(t *testing.T) {
	// The public Roundtrip maps names through the permutation; names
	// outside [0,n) are a caller bug and may panic — but must not
	// corrupt the scheme for later calls.
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomSC(16, 64, 4, rng)
	m := graph.AllPairs(g)
	perm := names.Random(16, rng)
	s, err := NewStretchSix(g, m, perm, rng, Stretch6Config{})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }() // expected: index out of range
		_, _ = s.Roundtrip(0, 12345)
	}()
	// The scheme must still work.
	if _, err := s.Roundtrip(perm.Name(1), perm.Name(9)); err != nil {
		t.Fatalf("scheme corrupted by bad call: %v", err)
	}
}
