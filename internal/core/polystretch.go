package core

import (
	"fmt"

	"rtroute/internal/blocks"
	"rtroute/internal/cover"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/parallel"
	"rtroute/internal/rtmetric"
	"rtroute/internal/sim"
	"rtroute/internal/tree"
)

// PolynomialStretch is the §4 scheme (Figs. 9 and 11): the polynomial
// stretch/space tradeoff built on the Theorem 13 double-tree cover
// hierarchy. Routing searches the source's home double-tree at
// exponentially increasing scales; within a tree the packet prefix-
// matches the destination name through a series of waypoints, always
// relaying through the tree's center; failure (a missing dictionary
// entry) sends it back to the source, which escalates one level.
//
// Per-node storage (§4.1), for every level and every double-tree C the
// node belongs to: its O(1) tree-routing state, its own label
// TreeR(C,u), the first link toward the center, and for every
// (j < k, τ ∈ Σ) the label of the nearest node in C matching u's own
// name on the first j digits and continuing with τ.
type PolynomialStretch struct {
	g    *graph.Graph
	perm *names.Permutation
	hier *cover.Hierarchy // nil on an assembled Deployment; forwarding never consults it
	uni  blocks.Universe
	k    int
	// levels is the length of the scale ladder, kept as a plain count so
	// that escalation works from per-node state alone (the hierarchy
	// itself is not part of any node's local routing state).
	levels int

	nodes []*polyTable
}

type polyDictKey struct {
	J   int8
	Tau int32
}

type polyDictEntry struct {
	Name  int32
	Label tree.Label
}

type polyTreeEntry struct {
	state    tree.State
	inPort   graph.PortID
	isRoot   bool
	ownLabel tree.Label
	dict     map[polyDictKey]polyDictEntry
}

type polyTable struct {
	selfName int32
	trees    map[cover.TreeRef]*polyTreeEntry
	home     []cover.TreeRef // per level
}

func (t *polyTable) words() int {
	w := 1 + 2*len(t.home)
	for _, e := range t.trees {
		w += 6 + e.ownLabel.Words()
		for _, d := range e.dict {
			w += 3 + d.Label.Words()
		}
	}
	return w
}

// PolyHeader is the packet header of Fig. 11.
type PolyHeader struct {
	Mode             Mode
	DestName         int32
	SrcName          int32
	Level            int32
	Found            bool
	Ref              cover.TreeRef
	SourceLabel      tree.Label
	NextWaypointName int32
	Target           tree.Label
	Descending       bool
}

// Words implements sim.Header.
func (h *PolyHeader) Words() int {
	return 8 + h.SourceLabel.Words() + h.Target.Words()
}

var _ sim.Header = (*PolyHeader)(nil)
var _ sim.Forwarder = (*PolynomialStretch)(nil)
var _ Scheme = (*PolynomialStretch)(nil)

// PolyConfig tunes construction.
type PolyConfig struct {
	// K is the tradeoff parameter (both the cover parameter and the
	// name word length); >= 2.
	K int
	// ScaleBase is the level ladder ratio (the paper uses 2).
	ScaleBase float64
	// Variant selects the cover construction (default Awerbuch–Peleg;
	// the §4.4 discussion explains why ball-growing weakens the scheme).
	Variant cover.Variant
	// BuildWorkers parallelizes per-node table construction
	// (0 = GOMAXPROCS, 1 = sequential). Output is identical either way.
	BuildWorkers int
}

// NewPolynomialStretch builds the scheme. m may be any distance oracle.
func NewPolynomialStretch(g *graph.Graph, m graph.DistanceOracle, perm *names.Permutation, cfg PolyConfig) (*PolynomialStretch, error) {
	n := g.N()
	if cfg.K < 2 {
		return nil, fmt.Errorf("core: polynomial stretch needs K >= 2, got %d", cfg.K)
	}
	if n < 2 {
		return nil, fmt.Errorf("core: polynomial stretch needs at least 2 nodes, got %d", n)
	}
	if perm.N() != n {
		return nil, fmt.Errorf("core: naming covers %d nodes, graph has %d", perm.N(), n)
	}
	base := cfg.ScaleBase
	if base <= 1 {
		base = 2
	}
	hier, err := cover.BuildHierarchy(g, m, cfg.K, base, cfg.Variant)
	if err != nil {
		return nil, fmt.Errorf("core: hierarchy: %w", err)
	}
	space := rtmetric.New(g, m, perm.Names)
	uni := blocks.NewUniverse(n, cfg.K)

	s := &PolynomialStretch{g: g, perm: perm, hier: hier, uni: uni, k: cfg.K, levels: len(hier.Levels), nodes: make([]*polyTable, n)}
	space.Precompute(cfg.BuildWorkers)
	err = parallel.ForEach(n, cfg.BuildWorkers, func(u int) error {
		tab := &polyTable{
			selfName: perm.Name(int32(u)),
			trees:    make(map[cover.TreeRef]*polyTreeEntry),
			home:     make([]cover.TreeRef, len(hier.Levels)),
		}
		for li, lvl := range hier.Levels {
			tab.home[li] = cover.TreeRef{Level: int32(li), Index: lvl.Cover.Home[u]}
		}
		initOrder := space.Init(graph.NodeID(u))
		for _, ref := range hier.Memberships(graph.NodeID(u)) {
			tr := hier.Tree(ref)
			st, _ := tr.State(graph.NodeID(u))
			own, _ := tr.LabelOf(graph.NodeID(u))
			e := &polyTreeEntry{
				state:    st,
				isRoot:   tr.Root == graph.NodeID(u),
				ownLabel: own,
				dict:     make(map[polyDictKey]polyDictEntry),
			}
			if !e.isRoot {
				p, ok := tr.InPort(graph.NodeID(u))
				if !ok {
					return fmt.Errorf("core: tree %v lacks in-port for %d", ref, u)
				}
				e.inPort = p
			}
			// Dictionary (c): nearest member matching own-name prefix j
			// and continuing with τ.
			selfName := perm.Name(int32(u))
			for j := 0; j < cfg.K; j++ {
				myPrefix := uni.Prefix(selfName, j)
				for tau := int32(0); tau < int32(uni.Q); tau++ {
					wantPrefix := myPrefix*int32(uni.Q) + tau
					for _, w := range initOrder {
						if w == graph.NodeID(u) || !tr.Contains(w) {
							continue
						}
						if uni.Prefix(perm.Name(int32(w)), j+1) == wantPrefix {
							lbl, _ := tr.LabelOf(w)
							e.dict[polyDictKey{J: int8(j), Tau: tau}] = polyDictEntry{
								Name:  perm.Name(int32(w)),
								Label: lbl,
							}
							break
						}
					}
				}
			}
			tab.trees[ref] = e
		}
		s.nodes[u] = tab
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// SchemeName implements Scheme.
func (s *PolynomialStretch) SchemeName() string { return fmt.Sprintf("polystretch(k=%d)", s.k) }

// computeNext implements NextNode (§4.2) at the current node, escalating
// levels at the source when the current tree has no matching entry.
func (s *PolynomialStretch) computeNext(tab *polyTable, h *PolyHeader) error {
	for {
		e, ok := tab.trees[h.Ref]
		if !ok {
			return fmt.Errorf("core: node %d outside its routing tree %v", tab.selfName, h.Ref)
		}
		matched := s.uni.MatchLen(tab.selfName, h.DestName)
		key := polyDictKey{J: int8(matched), Tau: s.uni.Prefix(h.DestName, matched+1) % int32(s.uni.Q)}
		if d, ok := e.dict[key]; ok {
			h.NextWaypointName = d.Name
			h.Target = d.Label
			h.Descending = false
			return nil
		}
		// Failure in this tree.
		if tab.selfName != h.SrcName {
			// Send the packet home; the source will escalate.
			h.NextWaypointName = h.SrcName
			h.Target = h.SourceLabel
			h.Descending = false
			return nil
		}
		// At the source: escalate to the next level's home tree.
		if err := s.escalate(tab, h); err != nil {
			return err
		}
	}
}

// escalate moves the search to the source's home tree one level up
// (Fig. 11's "Level <- Level * 2" step on the scale ladder).
func (s *PolynomialStretch) escalate(tab *polyTable, h *PolyHeader) error {
	if int(h.Level)+1 >= s.levels {
		return fmt.Errorf("core: level ladder exhausted routing %d -> %d", h.SrcName, h.DestName)
	}
	h.Level++
	h.Ref = tab.home[h.Level]
	he, ok := tab.trees[h.Ref]
	if !ok {
		return fmt.Errorf("core: source %d missing home tree %v", tab.selfName, h.Ref)
	}
	h.SourceLabel = he.ownLabel
	return nil
}

// Forward implements the Fig. 11 local routing algorithm.
func (s *PolynomialStretch) Forward(at graph.NodeID, header sim.Header) (graph.PortID, bool, error) {
	h, ok := header.(*PolyHeader)
	if !ok {
		return 0, false, fmt.Errorf("core: polystretch got %T header", header)
	}
	tab := s.nodes[at]
	nx := tab.selfName

	switch h.Mode {
	case ModeNewPacket:
		h.Mode = ModeOutbound
		h.SrcName = nx
		h.Level = 0
		if h.DestName == nx {
			return 0, true, nil
		}
		h.Ref = tab.home[0]
		he, ok := tab.trees[h.Ref]
		if !ok {
			return 0, false, fmt.Errorf("core: source %d missing home tree %v", nx, h.Ref)
		}
		h.SourceLabel = he.ownLabel
		if err := s.computeNext(tab, h); err != nil {
			return 0, false, err
		}

	case ModeOutbound:
		if nx == h.DestName {
			// t is always safe to deliver at: it is a member of the
			// current tree whenever the packet reaches it inside that
			// tree, and the return routes within the same tree.
			return 0, true, nil
		}
		if nx == h.NextWaypointName {
			if nx == h.SrcName {
				// A failure return just completed: the current tree is
				// exhausted, so escalate before searching again.
				if err := s.escalate(tab, h); err != nil {
					return 0, false, err
				}
			}
			if err := s.computeNext(tab, h); err != nil {
				return 0, false, err
			}
		}

	case ModeReturnPacket:
		h.Mode = ModeInbound
		h.Found = true
		if nx == h.SrcName {
			return 0, true, nil
		}
		h.NextWaypointName = h.SrcName
		h.Target = h.SourceLabel
		h.Descending = false

	case ModeInbound:
		if nx == h.SrcName {
			return 0, true, nil
		}

	default:
		return 0, false, fmt.Errorf("core: invalid mode %v", h.Mode)
	}

	// Forward within the current tree: climb to the root, then descend.
	e, ok := tab.trees[h.Ref]
	if !ok {
		return 0, false, fmt.Errorf("core: node %d outside tree %v mid-route", nx, h.Ref)
	}
	if !h.Descending {
		if e.isRoot {
			h.Descending = true
		} else {
			return e.inPort, false, nil
		}
	}
	port, delivered, err := tree.NextPort(e.state, h.Target)
	if err != nil {
		return 0, false, fmt.Errorf("core: descent at %d: %w", nx, err)
	}
	if delivered {
		return 0, false, fmt.Errorf("core: tree leg delivered at %d without waypoint match", nx)
	}
	return port, false, nil
}

// NewHeader implements sim.Plane.
func (s *PolynomialStretch) NewHeader(srcName, dstName int32) (sim.Header, error) {
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return nil, fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	return &PolyHeader{Mode: ModeNewPacket, DestName: dstName}, nil
}

// ResetHeader implements sim.Plane: rewrite an earlier header in place
// into a fresh Fig. 11 outbound header, allocating nothing.
func (s *PolynomialStretch) ResetHeader(h sim.Header, srcName, dstName int32) error {
	hh, ok := h.(*PolyHeader)
	if !ok {
		return fmt.Errorf("core: polystretch got %T header", h)
	}
	if dstName < 0 || int(dstName) >= s.perm.N() {
		return fmt.Errorf("core: destination name %d outside [0,%d)", dstName, s.perm.N())
	}
	*hh = PolyHeader{Mode: ModeNewPacket, DestName: dstName}
	return nil
}

// BeginReturn implements sim.Plane.
func (s *PolynomialStretch) BeginReturn(h sim.Header) error {
	hh, ok := h.(*PolyHeader)
	if !ok {
		return fmt.Errorf("core: polystretch got %T header", h)
	}
	hh.Mode = ModeReturnPacket
	return nil
}

// NodeOf implements sim.Plane.
func (s *PolynomialStretch) NodeOf(name int32) graph.NodeID {
	return graph.NodeID(s.perm.Node(name))
}

// Graph implements sim.Plane.
func (s *PolynomialStretch) Graph() *graph.Graph { return s.g }

// Roundtrip implements Scheme.
func (s *PolynomialStretch) Roundtrip(srcName, dstName int32) (*sim.RoundtripTrace, error) {
	return sim.Roundtrip(s, srcName, dstName, 0)
}

// K returns the tradeoff parameter.
func (s *PolynomialStretch) K() int { return s.k }

// HomeTreeRoot returns the name of the center of srcName's home
// double-tree at the given level — the relay node of Fig. 10.
func (s *PolynomialStretch) HomeTreeRoot(srcName int32, level int) (int32, error) {
	if s.hier == nil {
		return 0, fmt.Errorf("core: HomeTreeRoot unavailable on an assembled deployment (hierarchy not part of local state)")
	}
	if level < 0 || level >= len(s.hier.Levels) {
		return 0, fmt.Errorf("core: level %d outside ladder of %d", level, len(s.hier.Levels))
	}
	v := graph.NodeID(s.perm.Node(srcName))
	ref := s.nodes[v].home[level]
	return s.perm.Name(int32(s.hier.Tree(ref).Root)), nil
}

// Levels returns the number of levels in the hierarchy.
func (s *PolynomialStretch) Levels() int { return s.levels }

// MaxTableWords implements Scheme.
func (s *PolynomialStretch) MaxTableWords() int {
	m := 0
	for _, t := range s.nodes {
		if w := t.words(); w > m {
			m = w
		}
	}
	return m
}

// AvgTableWords implements Scheme.
func (s *PolynomialStretch) AvgTableWords() float64 {
	total := 0
	for _, t := range s.nodes {
		total += t.words()
	}
	return float64(total) / float64(len(s.nodes))
}
