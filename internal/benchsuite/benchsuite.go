// Package benchsuite holds the canonical performance suite — Dijkstra,
// EdgeByPort, MetricBuild, TrafficThroughput — as exported benchmark
// bodies, so one implementation serves both surfaces: `go test -bench`
// (bench_test.go delegates here) and `rtbench -exp bench`, which runs
// the suite outside `go test` and captures the perf trajectory as a
// committed artifact (BENCH_PR<k>.json) with ns/op, allocs/op and the
// engine's packets/s, comparable number-for-number across PRs
// (`make bench-json`, `make benchcmp`).
package benchsuite

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the committed trajectory artifact.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Results     []Result `json:"results"`
}

// Run executes the whole canonical suite. Each entry runs through
// testing.Benchmark (~1s of iterations), so a full run takes on the
// order of ten seconds.
func Run() *Report {
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, e := range suite() {
		res := testing.Benchmark(e.fn)
		r := Result{
			Name:        e.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		if len(res.Extra) > 0 {
			r.Extra = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				r.Extra[k] = v
			}
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// Format renders the report as an aligned text table.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "go %s  GOMAXPROCS %d  %s\n\n", r.GoVersion, r.GOMAXPROCS, r.GeneratedAt)
	fmt.Fprintf(&b, "%-34s %14s %10s %12s  %s\n", "benchmark", "ns/op", "allocs/op", "B/op", "extra")
	for _, res := range r.Results {
		var extra []string
		for k, v := range res.Extra {
			extra = append(extra, fmt.Sprintf("%s=%.0f", k, v))
		}
		fmt.Fprintf(&b, "%-34s %14.1f %10d %12d  %s\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, strings.Join(extra, " "))
	}
	return b.String()
}

type entry struct {
	name string
	fn   func(b *testing.B)
}

// suite builds the canonical benchmark list. Construction (graphs,
// schemes, compiled planes) happens inside each closure but outside the
// timed region.
func suite() []entry {
	return []entry{
		{"dijkstra/pooled", BenchDijkstraPooled},
		{"dijkstra/scratch", BenchDijkstraScratch},
		{"edgebyport/adversarial", BenchEdgeByPortAdversarial},
		{"edgebyport/dense", BenchEdgeByPortDense},
		{"metricbuild/dense-sequential", BenchMetricDenseSequential},
		{"metricbuild/dense-parallel", BenchMetricDenseParallel},
		{"metricbuild/lazy-single-row", BenchMetricLazySingleRow},
		{"traffic/stretch6-workers=1", BenchTrafficSingleWorker},
		{"traffic/deployment-workers=1", BenchDeploymentForward},
		{"cluster/stretch6-shards=8", BenchClusterThroughput},
		{"cluster/stretch6-shards=8+sink", BenchClusterTelemetry},
		{"wire/marshal-stretch6", BenchMarshalScheme},
	}
}

func dijkstraGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(19))
	return graph.RandomSC(1024, 8192, 16, rng)
}

func BenchDijkstraPooled(b *testing.B) {
	g := dijkstraGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := graph.Dijkstra(g, graph.NodeID(i%g.N()))
		if res.Dist[(i+1)%g.N()] >= graph.Inf {
			b.Fatal("unreachable in SC graph")
		}
	}
}

func BenchDijkstraScratch(b *testing.B) {
	g := dijkstraGraph()
	s := graph.NewSSSPScratch(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Dijkstra(g, graph.NodeID(i%g.N()))
		if res.Dist[(i+1)%g.N()] >= graph.Inf {
			b.Fatal("unreachable in SC graph")
		}
	}
}

// BenchEdgeByPortAdversarial resolves ports on a graph whose labels were
// scattered over [0, 4n) by AssignPorts: the open-addressed path.
func BenchEdgeByPortAdversarial(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	g := graph.RandomSC(1024, 16*1024, 8, rng)
	benchEdgeByPort(b, g)
}

// BenchEdgeByPortDense resolves ports on a graph with the default
// contiguous per-node labels: the flat dense-table path.
func BenchEdgeByPortDense(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	adv := graph.RandomSC(1024, 16*1024, 8, rng)
	// Same topology, default contiguous labels (AddEdge order).
	g := graph.New(adv.N())
	for u := 0; u < adv.N(); u++ {
		for _, e := range adv.Out(graph.NodeID(u)) {
			g.MustAddEdge(graph.NodeID(u), e.To, e.Weight)
		}
	}
	benchEdgeByPort(b, g)
}

// benchEdgeByPort probes the public per-hop surface (Graph.EdgeByPort,
// including its per-call index load) so the rows stay comparable with
// the historical BenchmarkEdgeByPort trajectory; the PortTable-hoisted
// path is what the traffic row measures end-to-end.
func benchEdgeByPort(b *testing.B, g *graph.Graph) {
	n := g.N()
	probes := make([]struct {
		u graph.NodeID
		p graph.PortID
	}, n)
	for u := 0; u < n; u++ {
		edges := g.Out(graph.NodeID(u))
		probes[u].u = graph.NodeID(u)
		probes[u].p = edges[len(edges)-1].Port
	}
	g.Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := probes[i%n]
		if _, ok := g.EdgeByPort(pr.u, pr.p); !ok {
			b.Fatal("probe port missing")
		}
	}
}

func metricGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(31))
	return graph.RandomSC(512, 2048, 8, rng)
}

func BenchMetricDenseSequential(b *testing.B) {
	g := metricGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := graph.AllPairsSequential(g); m.N() != g.N() {
			b.Fatal("bad metric")
		}
	}
}

func BenchMetricDenseParallel(b *testing.B) {
	g := metricGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := graph.AllPairs(g); m.N() != g.N() {
			b.Fatal("bad metric")
		}
	}
}

// BenchMetricLazyFullSweep drives the lazy oracle through a full 2n-row
// sweep at a 64-row cache — the worst case a scheme build can demand of
// it. Not part of the JSON suite; bench_test.go delegates here.
func BenchMetricLazyFullSweep(b *testing.B) {
	g := metricGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := graph.NewLazyOracle(g, 64)
		var sink graph.Dist
		for u := 0; u < g.N(); u++ {
			sink += o.FromSource(graph.NodeID(u))[0] + o.ToSink(graph.NodeID(u))[0]
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchMetricLazySingleRow(b *testing.B) {
	g := metricGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := graph.NewLazyOracle(g, 2)
		if o.FromSource(graph.NodeID(i % g.N()))[0] < 0 {
			b.Fatal("impossible")
		}
	}
}

// benchStretchSix builds the shared 256-node StretchSix instance the
// serving benchmarks compile.
func benchStretchSix(b *testing.B) *core.StretchSix {
	rng := rand.New(rand.NewSource(1))
	n := 256
	g := graph.RandomSC(n, 4*n, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(1)), core.Stretch6Config{})
	if err != nil {
		b.Fatal(err)
	}
	return s6
}

func benchServe(b *testing.B, pl *traffic.Plane) {
	b.ResetTimer()
	res, err := traffic.Run(pl, traffic.Config{
		Workers:  1,
		Packets:  int64(b.N),
		Seed:     1,
		Workload: traffic.Spec{Kind: traffic.Zipf},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.PacketsPerSec(), "packets/s")
	b.ReportMetric(res.HopsPerSec(), "hops/s")
}

// BenchTrafficSingleWorker is the single-worker serving benchmark: one compiled
// StretchSix plane, Zipf workload, one roundtrip per iteration.
func BenchTrafficSingleWorker(b *testing.B) {
	pl, err := traffic.Compile(benchStretchSix(b))
	if err != nil {
		b.Fatal(err)
	}
	benchServe(b, pl)
}

// BenchDeploymentForward serves the identical workload through a
// wire-restored Deployment — per-node Router dispatch on every hop. The
// PR4 acceptance bar: within 10% of the monolithic compiled plane.
func BenchDeploymentForward(b *testing.B) {
	blob, err := wire.MarshalScheme(benchStretchSix(b))
	if err != nil {
		b.Fatal(err)
	}
	dep, err := wire.UnmarshalScheme(blob)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := traffic.Compile(dep)
	if err != nil {
		b.Fatal(err)
	}
	benchServe(b, pl)
}

// BenchClusterThroughput serves the Zipf workload through an 8-shard
// channel-bus cluster of the wire-restored Deployment: every
// boundary-crossing hop marshals the live header into a packet frame
// and the owning shard decodes and resumes it — the E15 serving row.
// Cross-shard frames per roundtrip is reported alongside the rates.
func BenchClusterThroughput(b *testing.B) {
	benchCluster(b, false)
}

// BenchClusterTelemetry is the same run with the telemetry plane
// attached at rtserve defaults (sampled stage timing, heat sketches,
// flight recorder armed): the pair of rows is the observability
// overhead measurement — the PR 7 acceptance bar keeps them within a
// few percent of each other.
func BenchClusterTelemetry(b *testing.B) {
	benchCluster(b, true)
}

func benchCluster(b *testing.B, sink bool) {
	blob, err := wire.MarshalScheme(benchStretchSix(b))
	if err != nil {
		b.Fatal(err)
	}
	dep, err := wire.UnmarshalScheme(blob)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cluster.Config{
		Shards:    8,
		Placement: cluster.RTZAligned,
		Packets:   int64(b.N),
		Seed:      1,
		InFlight:  4096,
		Workload:  traffic.Spec{Kind: traffic.Zipf},
	}
	if sink {
		shape := cfg.SinkShape()
		shape.TraceEvery = 1024
		cfg.Sink = telemetry.New(shape)
	}
	// Collect the build-time garbage (scheme construction, all-pairs
	// distances) before timing: leftover heap from earlier runs in the
	// same process otherwise inflates GC pressure for later ones.
	runtime.GC()
	b.ResetTimer()
	res, err := cluster.Run(dep, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.PacketsPerSec(), "packets/s")
	b.ReportMetric(res.HopsPerSec(), "hops/s")
	if res.Packets > 0 {
		b.ReportMetric(res.CrossingsPerRT(), "xframes/rt")
		b.ReportMetric(res.AllocsPerRT(), "allocs/rt")
	}
	b.ReportMetric(res.WindowOccupancy, "window-occ")
}

// BenchMarshalScheme measures full-scheme snapshot encoding (256-node
// StretchSix), reporting the blob size alongside ns/op.
func BenchMarshalScheme(b *testing.B) {
	s6 := benchStretchSix(b)
	blob, err := wire.MarshalScheme(s6)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportMetric(float64(len(blob)), "blobBytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.MarshalScheme(s6); err != nil {
			b.Fatal(err)
		}
	}
}
