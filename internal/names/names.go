// Package names implements the TINN node-name machinery of §1.1.2: node
// names as adversarial permutations of {0..n-1}, plus the hashing
// reduction of [Arias et al. 2006] that lets nodes choose arbitrary
// (e.g. 128-bit) names: a universal hash family maps self-chosen names
// onto {0..n-1} with O(1) expected collisions per slot, so dictionaries
// keyed by hashed name grow only by a constant factor.
package names

import (
	"fmt"
	"math/rand"
)

// Permutation maps topological node indices to TINN names and back.
// Names[v] is the name of node v; Node(name) inverts.
type Permutation struct {
	Names []int32
	nodes []int32
}

// NewPermutation validates that names is a permutation of {0..n-1} and
// builds the inverse.
func NewPermutation(names []int32) (*Permutation, error) {
	n := len(names)
	nodes := make([]int32, n)
	seen := make([]bool, n)
	for v, nm := range names {
		if nm < 0 || int(nm) >= n {
			return nil, fmt.Errorf("names: name %d out of range [0,%d)", nm, n)
		}
		if seen[nm] {
			return nil, fmt.Errorf("names: duplicate name %d", nm)
		}
		seen[nm] = true
		nodes[nm] = int32(v)
	}
	return &Permutation{Names: names, nodes: nodes}, nil
}

// Identity returns the identity naming on n nodes.
func Identity(n int) *Permutation {
	names := make([]int32, n)
	for i := range names {
		names[i] = int32(i)
	}
	p, _ := NewPermutation(names)
	return p
}

// Random returns a uniformly random adversarial naming.
func Random(n int, rng *rand.Rand) *Permutation {
	names := make([]int32, n)
	for i, v := range rng.Perm(n) {
		names[i] = int32(v)
	}
	p, _ := NewPermutation(names)
	return p
}

// Reversed returns the naming n-1, n-2, ..., 0 — a deterministic
// adversarial choice that de-correlates names from indices.
func Reversed(n int) *Permutation {
	names := make([]int32, n)
	for i := range names {
		names[i] = int32(n - 1 - i)
	}
	p, _ := NewPermutation(names)
	return p
}

// Name returns the name of node v.
func (p *Permutation) Name(v int32) int32 { return p.Names[v] }

// Node returns the node carrying the given name.
func (p *Permutation) Node(name int32) int32 { return p.nodes[name] }

// N returns the number of nodes.
func (p *Permutation) N() int { return len(p.Names) }

// --- Hashing reduction for self-chosen names ---

// hashPrime is a Mersenne prime comfortably above any 61-bit key chunk,
// giving a true universal family h(x) = ((a*x + b) mod p) mod n.
const hashPrime = (1 << 61) - 1

// Hasher is one member of the universal hash family, mapping arbitrary
// byte-string names to slots {0..n-1}.
type Hasher struct {
	A, B uint64
	N    int
}

// NewHasher draws a hash function from the family. Per the paper's
// footnote, the function must be chosen AFTER the adversary fixes the
// names, which the caller controls by seeding rng appropriately.
func NewHasher(n int, rng *rand.Rand) Hasher {
	a := uint64(rng.Int63n(hashPrime-1)) + 1
	b := uint64(rng.Int63n(hashPrime))
	return Hasher{A: a, B: b, N: n}
}

// mulmod computes (x * y) mod hashPrime without overflow via 128-bit
// schoolbook multiplication and Mersenne folding (2^61 ≡ 1 mod p).
func mulmod(x, y uint64) uint64 {
	hi, lo := umul128(x, y)
	return reduce128(hi, lo)
}

// umul128 returns the 128-bit product of x and y.
func umul128(x, y uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	xl, xh := x&mask, x>>32
	yl, yh := y&mask, y>>32
	ll := xl * yl
	lh := xl * yh
	hl := xh * yl
	hh := xh * yh
	mid := lh + (ll >> 32) + (hl & mask)
	lo = (mid << 32) | (ll & mask)
	hi = hh + (mid >> 32) + (hl >> 32)
	return hi, lo
}

// reduce128 reduces a 128-bit value modulo 2^61 - 1.
func reduce128(hi, lo uint64) uint64 {
	// value = hi*2^64 + lo; 2^64 ≡ 8 (mod 2^61-1).
	r := (lo & hashPrime) + (lo >> 61) + ((hi << 3) & hashPrime) + (hi >> 58)
	for r >= hashPrime {
		r -= hashPrime
	}
	return r
}

func foldMersenne(x uint64) uint64 {
	r := (x & hashPrime) + (x >> 61)
	if r >= hashPrime {
		r -= hashPrime
	}
	return r
}

// Slot hashes an arbitrary byte-string name into {0..n-1}.
func (h Hasher) Slot(name []byte) int32 {
	// Fold the name into a single value over GF(p) Horner-style, then
	// apply the affine universal map.
	var acc uint64
	for _, b := range name {
		acc = foldMersenne(mulmod(acc, 257) + uint64(b) + 1)
	}
	v := foldMersenne(mulmod(h.A, acc) + h.B)
	return int32(v % uint64(h.N))
}

// Directory realizes the reduction end to end: it assigns each
// self-chosen name a slot and keeps per-slot buckets, mirroring how a
// TINN dictionary keyed by hashed name stores all colliding full names in
// the same block entry.
type Directory struct {
	Hash    Hasher
	Buckets map[int32][]string
}

// NewDirectory hashes all names. Duplicate full names are rejected —
// the model requires unique self-chosen names.
func NewDirectory(fullNames []string, n int, rng *rand.Rand) (*Directory, error) {
	d := &Directory{Hash: NewHasher(n, rng), Buckets: make(map[int32][]string)}
	seen := make(map[string]bool, len(fullNames))
	for _, nm := range fullNames {
		if seen[nm] {
			return nil, fmt.Errorf("names: duplicate self-chosen name %q", nm)
		}
		seen[nm] = true
		slot := d.Hash.Slot([]byte(nm))
		d.Buckets[slot] = append(d.Buckets[slot], nm)
	}
	return d, nil
}

// SlotOf returns the hashed slot of a full name.
func (d *Directory) SlotOf(fullName string) int32 { return d.Hash.Slot([]byte(fullName)) }

// Bucket returns all full names sharing a slot (the constant-factor
// dictionary blowup).
func (d *Directory) Bucket(slot int32) []string { return d.Buckets[slot] }

// MaxBucket returns the largest bucket size.
func (d *Directory) MaxBucket() int {
	m := 0
	for _, b := range d.Buckets {
		if len(b) > m {
			m = len(b)
		}
	}
	return m
}
