package names

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPermutationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, p := range []*Permutation{Identity(20), Random(20, rng), Reversed(20)} {
		if p.N() != 20 {
			t.Fatalf("N = %d, want 20", p.N())
		}
		for v := int32(0); v < 20; v++ {
			if p.Node(p.Name(v)) != v {
				t.Fatalf("Node(Name(%d)) = %d", v, p.Node(p.Name(v)))
			}
		}
	}
}

func TestNewPermutationValidation(t *testing.T) {
	if _, err := NewPermutation([]int32{0, 2, 1}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if _, err := NewPermutation([]int32{0, 0, 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewPermutation([]int32{0, 3, 1}); err == nil {
		t.Fatal("out-of-range name accepted")
	}
	if _, err := NewPermutation([]int32{0, -1, 1}); err == nil {
		t.Fatal("negative name accepted")
	}
}

func TestReversedIsAdversarial(t *testing.T) {
	p := Reversed(5)
	for v := int32(0); v < 5; v++ {
		if p.Name(v) != 4-v {
			t.Fatalf("Reversed(5).Name(%d) = %d, want %d", v, p.Name(v), 4-v)
		}
	}
}

func TestHasherDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := NewHasher(100, rng)
	a := h.Slot([]byte("node-alpha"))
	b := h.Slot([]byte("node-alpha"))
	if a != b {
		t.Fatalf("same name hashed to %d and %d", a, b)
	}
	if a < 0 || int(a) >= 100 {
		t.Fatalf("slot %d out of range", a)
	}
}

func TestHasherDistinguishesNames(t *testing.T) {
	// Hash 1000 names into 1024 slots: we expect many distinct slots;
	// a broken fold (e.g. ignoring bytes) would collapse them.
	rng := rand.New(rand.NewSource(3))
	h := NewHasher(1024, rng)
	slots := map[int32]bool{}
	for i := 0; i < 1000; i++ {
		slots[h.Slot([]byte(fmt.Sprintf("peer-%d", i)))] = true
	}
	if len(slots) < 500 {
		t.Fatalf("only %d distinct slots for 1000 names", len(slots))
	}
}

func TestHasherOrderSensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	h := NewHasher(1<<20, rng)
	if h.Slot([]byte("ab")) == h.Slot([]byte("ba")) {
		t.Fatal("hash ignores byte order (likely, not certain — change seed if flaky)")
	}
	if h.Slot([]byte("a")) == h.Slot([]byte("a\x00")) {
		t.Fatal("hash ignores trailing zero byte")
	}
}

func TestMulmodAgainstBigIntSemantics(t *testing.T) {
	// Verify mulmod against the naive algorithm on small operands where
	// direct 64-bit multiplication cannot overflow.
	err := quick.Check(func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		return mulmod(x, y) == (x*y)%hashPrime
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Known big-operand identities: (p-1)*(p-1) mod p = 1.
	pm1 := uint64(hashPrime - 1)
	if got := mulmod(pm1, pm1); got != 1 {
		t.Fatalf("(p-1)^2 mod p = %d, want 1", got)
	}
	if got := mulmod(hashPrime, 12345); got != 0 {
		t.Fatalf("p * x mod p = %d, want 0", got)
	}
}

func TestDirectoryBucketLoad(t *testing.T) {
	// The reduction's promise: hashing m self-chosen names into n = m
	// slots keeps the maximum bucket O(log n / log log n) w.h.p. and the
	// AVERAGE load constant. Assert a generous max-bucket ceiling.
	rng := rand.New(rand.NewSource(5))
	n := 2048
	fullNames := make([]string, n)
	for i := range fullNames {
		fullNames[i] = fmt.Sprintf("peer-%08x-%d", rng.Uint32(), i)
	}
	d, err := NewDirectory(fullNames, n, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxBucket() > 12 {
		t.Fatalf("max bucket %d implausibly large for %d names in %d slots", d.MaxBucket(), n, n)
	}
	// Every name must land in the bucket of its slot.
	for _, nm := range fullNames {
		slot := d.SlotOf(nm)
		found := false
		for _, b := range d.Bucket(slot) {
			if b == nm {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("name %q missing from its bucket", nm)
		}
	}
}

func TestDirectoryRejectsDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewDirectory([]string{"a", "b", "a"}, 10, rng); err == nil {
		t.Fatal("duplicate self-chosen names accepted")
	}
}

func TestFoldMersenne(t *testing.T) {
	if foldMersenne(hashPrime) != 0 {
		t.Fatal("fold(p) != 0")
	}
	if foldMersenne(hashPrime-1) != hashPrime-1 {
		t.Fatal("fold(p-1) changed")
	}
	if foldMersenne(hashPrime+5) != 5 {
		t.Fatal("fold(p+5) != 5")
	}
}

func TestUmul128KnownValues(t *testing.T) {
	hi, lo := umul128(1<<32, 1<<32)
	if hi != 1 || lo != 0 {
		t.Fatalf("2^32 * 2^32 = (%d, %d), want (1, 0)", hi, lo)
	}
	hi, lo = umul128(0xffffffffffffffff, 2)
	if hi != 1 || lo != 0xfffffffffffffffe {
		t.Fatalf("max*2 = (%d, %#x)", hi, lo)
	}
	hi, lo = umul128(12345, 6789)
	if hi != 0 || lo != 12345*6789 {
		t.Fatalf("small product wrong: (%d,%d)", hi, lo)
	}
}
