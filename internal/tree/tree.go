// Package tree implements fixed-port compact routing on rooted trees
// (Lemma 14 of the paper, after Thorup–Zwick and Fraigniaud–Gavoille):
// given a shortest-path out-tree rooted at r, every node keeps O(1) words
// of state and every destination gets an O(log n)-entry label such that
// the route from r to any node u follows the tree path exactly — in the
// fixed-port model, using only (local state, label) at each step.
//
// The package also builds in-trees (every member stores the port of its
// next hop on a shortest path toward the root) and double-trees, the
// union of the two used throughout §3 and §4.
//
// The label scheme is heavy-path decomposition: each tree node records
// its DFS interval and the port plus interval of its heavy child; a
// label lists, for every light edge on the root-to-destination path, the
// branch node's DFS entry time and the port taken there. Any root-to-node
// path crosses at most log2(n) light edges, so labels have O(log n)
// entries.
package tree

import (
	"fmt"
	"math"

	"rtroute/internal/graph"
)

// State is the O(1)-word node-local routing state for one tree.
type State struct {
	Tin, Tout           int32        // DFS interval of this node's subtree
	HeavyPort           graph.PortID // port to heavy child, -1 if leaf
	HeavyTin, HeavyTout int32        // DFS interval of the heavy child's subtree
}

// LightHop records one light edge of a root-to-node tree path: at the
// branch node whose DFS entry time is BranchTin, leave on Port.
type LightHop struct {
	BranchTin int32
	Port      graph.PortID
}

// Label is the topology-dependent address of a node within one tree.
type Label struct {
	Tin   int32
	Light []LightHop
}

// Words returns the size of the label in machine words, the unit used by
// the header-size accounting of the schemes (O(log^2 n) bits total).
func (l Label) Words() int { return 1 + 2*len(l.Light) }

// ErrNotInSubtree is reported by NextPort when the current node is not an
// ancestor of the destination — i.e. the caller violated the route-
// through-the-root discipline.
var ErrNotInSubtree = fmt.Errorf("tree: current node is not an ancestor of the destination")

// NextPort is the out-tree forwarding function: given only the current
// node's per-tree State and the destination Label, it returns the port to
// take, or delivered = true when the label addresses the current node.
func NextPort(st State, lbl Label) (port graph.PortID, delivered bool, err error) {
	if lbl.Tin == st.Tin {
		return 0, true, nil
	}
	if lbl.Tin < st.Tin || lbl.Tin > st.Tout {
		return 0, false, ErrNotInSubtree
	}
	if st.HeavyPort >= 0 && lbl.Tin >= st.HeavyTin && lbl.Tin <= st.HeavyTout {
		return st.HeavyPort, false, nil
	}
	for _, h := range lbl.Light {
		if h.BranchTin == st.Tin {
			return h.Port, false, nil
		}
	}
	return 0, false, fmt.Errorf("tree: no light-hop entry for branch node (tin=%d) toward tin=%d", st.Tin, lbl.Tin)
}

// Tree is a double-tree over a member set: a shortest-path out-tree from
// Root (with compact routing state and labels) plus an in-tree (every
// member's next-hop port toward Root on a shortest path). Distances are
// measured in the subgraph induced by the member set, as §4 requires for
// clusters.
type Tree struct {
	Root graph.NodeID
	// Members in ascending node order.
	Members []graph.NodeID

	states   map[graph.NodeID]State
	labels   map[graph.NodeID]Label
	inPort   map[graph.NodeID]graph.PortID
	distFrom map[graph.NodeID]graph.Dist // d_C(Root, v)
	distTo   map[graph.NodeID]graph.Dist // d_C(v, Root)
	rtHeight graph.Dist
}

// BuildDouble builds the double-tree for the given member set rooted at
// root. members == nil means all nodes of g. It fails if the induced
// subgraph does not strongly connect the members through themselves.
func BuildDouble(g *graph.Graph, root graph.NodeID, members []graph.NodeID) (*Tree, error) {
	n := g.N()
	inSet := make([]bool, n)
	if members == nil {
		members = make([]graph.NodeID, n)
		for i := range members {
			members[i] = graph.NodeID(i)
			inSet[i] = true
		}
	} else {
		sorted := append([]graph.NodeID(nil), members...)
		sortNodeIDs(sorted)
		members = sorted
		for _, v := range members {
			inSet[v] = true
		}
	}
	if !inSet[root] {
		return nil, fmt.Errorf("tree: root %d not in member set", root)
	}

	t := &Tree{
		Root:     root,
		Members:  members,
		states:   make(map[graph.NodeID]State, len(members)),
		labels:   make(map[graph.NodeID]Label, len(members)),
		inPort:   make(map[graph.NodeID]graph.PortID, len(members)),
		distFrom: make(map[graph.NodeID]graph.Dist, len(members)),
		distTo:   make(map[graph.NodeID]graph.Dist, len(members)),
	}

	// Restricted forward Dijkstra: out-tree parents.
	distFrom, parentFrom := restrictedDijkstra(g, root, inSet, false)
	// Restricted reverse Dijkstra: in-tree next hops.
	distTo, nextTo := restrictedDijkstra(g, root, inSet, true)
	for _, v := range members {
		if distFrom[v] >= graph.Inf || distTo[v] >= graph.Inf {
			return nil, fmt.Errorf("tree: member %d unreachable within the induced subgraph of root %d", v, root)
		}
		t.distFrom[v] = distFrom[v]
		t.distTo[v] = distTo[v]
		if rt := distFrom[v] + distTo[v]; rt > t.rtHeight {
			t.rtHeight = rt
		}
		if v != root {
			port, ok := g.PortTo(v, nextTo[v])
			if !ok {
				return nil, fmt.Errorf("tree: missing edge (%d,%d) for in-tree", v, nextTo[v])
			}
			t.inPort[v] = port
		}
	}

	if err := t.buildOutRouting(g, parentFrom); err != nil {
		return nil, err
	}
	return t, nil
}

// buildOutRouting computes DFS intervals, heavy children and labels for
// the out-tree given parent pointers.
func (t *Tree) buildOutRouting(g *graph.Graph, parent []graph.NodeID) error {
	children := make(map[graph.NodeID][]graph.NodeID, len(t.Members))
	for _, v := range t.Members {
		if v == t.Root {
			continue
		}
		p := parent[v]
		children[p] = append(children[p], v)
	}

	// Iterative post-order to compute subtree sizes.
	size := make(map[graph.NodeID]int32, len(t.Members))
	type frame struct {
		node graph.NodeID
		idx  int
	}
	stack := []frame{{node: t.Root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		kids := children[f.node]
		if f.idx < len(kids) {
			c := kids[f.idx]
			f.idx++
			stack = append(stack, frame{node: c})
			continue
		}
		s := int32(1)
		for _, c := range kids {
			s += size[c]
		}
		size[f.node] = s
		stack = stack[:len(stack)-1]
	}

	// Iterative pre-order DFS assigning tin/tout, visiting the heavy
	// child first (cosmetic; correctness only needs intervals).
	tin := make(map[graph.NodeID]int32, len(t.Members))
	tout := make(map[graph.NodeID]int32, len(t.Members))
	heavy := make(map[graph.NodeID]graph.NodeID, len(t.Members))
	var counter int32
	stack = stack[:0]
	stack = append(stack, frame{node: t.Root})
	order := make([]graph.NodeID, 0, len(t.Members))
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx == 0 {
			tin[f.node] = counter
			counter++
			order = append(order, f.node)
			// Pick the heavy child (max subtree size, ties by node id).
			var h graph.NodeID = -1
			var hs int32 = -1
			for _, c := range children[f.node] {
				if size[c] > hs || (size[c] == hs && (h < 0 || c < h)) {
					h, hs = c, size[c]
				}
			}
			if h >= 0 {
				heavy[f.node] = h
			}
		}
		kids := children[f.node]
		if f.idx < len(kids) {
			c := kids[f.idx]
			f.idx++
			stack = append(stack, frame{node: c})
			continue
		}
		tout[f.node] = counter - 1
		stack = stack[:len(stack)-1]
	}
	if int(counter) != len(t.Members) {
		return fmt.Errorf("tree: DFS visited %d of %d members", counter, len(t.Members))
	}

	for _, v := range t.Members {
		st := State{Tin: tin[v], Tout: tout[v], HeavyPort: -1}
		if h, ok := heavy[v]; ok {
			port, ok := g.PortTo(v, h)
			if !ok {
				return fmt.Errorf("tree: missing edge (%d,%d) for out-tree", v, h)
			}
			st.HeavyPort = port
			st.HeavyTin = tin[h]
			st.HeavyTout = tout[h]
		}
		t.states[v] = st
	}

	// Labels: walk each root-to-node path once in DFS order, carrying the
	// light-hop prefix.
	prefix := make(map[graph.NodeID][]LightHop, len(t.Members))
	prefix[t.Root] = nil
	for _, v := range order {
		if v == t.Root {
			continue
		}
		p := parent[v]
		pp := prefix[p]
		if heavy[p] == v {
			prefix[v] = pp
		} else {
			port, ok := g.PortTo(p, v)
			if !ok {
				return fmt.Errorf("tree: missing edge (%d,%d) for light hop", p, v)
			}
			hops := make([]LightHop, len(pp), len(pp)+1)
			copy(hops, pp)
			prefix[v] = append(hops, LightHop{BranchTin: tin[p], Port: port})
		}
	}
	for _, v := range t.Members {
		t.labels[v] = Label{Tin: tin[v], Light: prefix[v]}
	}
	return nil
}

// restrictedDijkstra runs Dijkstra from root over the subgraph induced by
// inSet, on graph's pooled scratches. Forward mode returns parent
// pointers (predecessor on shortest root->v path); reverse mode returns
// next-hop pointers (successor on shortest v->root path). The returned
// slices are owned by the caller.
func restrictedDijkstra(g *graph.Graph, root graph.NodeID, inSet []bool, reverse bool) ([]graph.Dist, []graph.NodeID) {
	var r graph.SSSP
	if reverse {
		r = graph.DijkstraRevRestricted(g, root, inSet)
	} else {
		r = graph.DijkstraRestricted(g, root, inSet)
	}
	return r.Dist, r.Parent
}

func sortNodeIDs(s []graph.NodeID) {
	// Insertion sort is fine for the small member slices used in tests;
	// larger callers pass pre-sorted slices. Use a simple shell sort to
	// stay dependable on big inputs too.
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			for j := i; j >= gap && s[j] < s[j-gap]; j -= gap {
				s[j], s[j-gap] = s[j-gap], s[j]
			}
		}
	}
}

// Contains reports whether v is a member of the tree.
func (t *Tree) Contains(v graph.NodeID) bool {
	_, ok := t.states[v]
	return ok
}

// State returns v's per-tree routing state.
func (t *Tree) State(v graph.NodeID) (State, bool) {
	st, ok := t.states[v]
	return st, ok
}

// LabelOf returns v's address within the out-tree.
func (t *Tree) LabelOf(v graph.NodeID) (Label, bool) {
	l, ok := t.labels[v]
	return l, ok
}

// InPort returns the port of v's next hop toward the root on the in-tree
// (undefined for the root itself).
func (t *Tree) InPort(v graph.NodeID) (graph.PortID, bool) {
	p, ok := t.inPort[v]
	return p, ok
}

// DistFrom returns d_C(Root, v) within the member-induced subgraph.
func (t *Tree) DistFrom(v graph.NodeID) (graph.Dist, bool) {
	d, ok := t.distFrom[v]
	return d, ok
}

// DistTo returns d_C(v, Root) within the member-induced subgraph.
func (t *Tree) DistTo(v graph.NodeID) (graph.Dist, bool) {
	d, ok := t.distTo[v]
	return d, ok
}

// RTHeight returns max_v (d_C(Root,v) + d_C(v,Root)), the roundtrip
// height of the double-tree (§3.2).
func (t *Tree) RTHeight() graph.Dist { return t.rtHeight }

// MaxLabelWords returns the largest label size in words, bounded by
// O(log n) per the heavy-path argument.
func (t *Tree) MaxLabelWords() int {
	m := 0
	for _, l := range t.labels {
		if w := l.Words(); w > m {
			m = w
		}
	}
	return m
}

// TheoreticalLabelBound returns the heavy-path bound on light hops for a
// tree of the given size: floor(log2(size)) light edges on any path.
func TheoreticalLabelBound(size int) int {
	if size <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(size))))
}
