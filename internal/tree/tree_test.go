package tree

import (
	"math/rand"
	"testing"

	"rtroute/internal/graph"
)

// routeDown simulates out-tree routing from the root to dst using only
// per-node State and the destination Label, returning the traversed path
// weight and hop count.
func routeDown(t *testing.T, g *graph.Graph, tr *Tree, dst graph.NodeID) (graph.Dist, int) {
	t.Helper()
	lbl, ok := tr.LabelOf(dst)
	if !ok {
		t.Fatalf("no label for %d", dst)
	}
	cur := tr.Root
	var weight graph.Dist
	hops := 0
	for {
		st, ok := tr.State(cur)
		if !ok {
			t.Fatalf("route left the tree at node %d", cur)
		}
		port, delivered, err := NextPort(st, lbl)
		if err != nil {
			t.Fatalf("NextPort at %d toward %d: %v", cur, dst, err)
		}
		if delivered {
			if cur != dst {
				t.Fatalf("delivered at %d, want %d", cur, dst)
			}
			return weight, hops
		}
		e, ok := g.EdgeByPort(cur, port)
		if !ok {
			t.Fatalf("node %d has no port %d", cur, port)
		}
		weight += e.Weight
		cur = e.To
		if hops++; hops > g.N() {
			t.Fatalf("routing loop toward %d", dst)
		}
	}
}

// routeUp simulates in-tree routing from src to the root via InPort.
func routeUp(t *testing.T, g *graph.Graph, tr *Tree, src graph.NodeID) graph.Dist {
	t.Helper()
	cur := src
	var weight graph.Dist
	hops := 0
	for cur != tr.Root {
		port, ok := tr.InPort(cur)
		if !ok {
			t.Fatalf("no in-port at %d", cur)
		}
		e, ok := g.EdgeByPort(cur, port)
		if !ok {
			t.Fatalf("node %d has no port %d", cur, port)
		}
		weight += e.Weight
		cur = e.To
		if hops++; hops > g.N() {
			t.Fatalf("in-tree loop from %d", src)
		}
	}
	return weight
}

func TestOutTreeRoutesAreShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomSC(60, 240, 10, rng)
		root := graph.NodeID(rng.Intn(g.N()))
		tr, err := BuildDouble(g, root, nil)
		if err != nil {
			t.Fatal(err)
		}
		sp := graph.Dijkstra(g, root)
		for v := 0; v < g.N(); v++ {
			w, _ := routeDown(t, g, tr, graph.NodeID(v))
			if w != sp.Dist[v] {
				t.Fatalf("trial %d: route root->%d weight %d, shortest %d", trial, v, w, sp.Dist[v])
			}
		}
	}
}

func TestInTreeRoutesAreShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomSC(60, 240, 10, rng)
	root := graph.NodeID(13)
	tr, err := BuildDouble(g, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	rev := graph.DijkstraRev(g, root)
	for v := 0; v < g.N(); v++ {
		w := routeUp(t, g, tr, graph.NodeID(v))
		if w != rev.Dist[v] {
			t.Fatalf("route %d->root weight %d, shortest %d", v, w, rev.Dist[v])
		}
	}
}

func TestClusterRestrictedTree(t *testing.T) {
	// Build a double tree over a strict subset and verify distances are
	// measured within the induced subgraph (which can be longer than in
	// the full graph).
	g := graph.New(5)
	// Cycle 0->1->2->0 (cluster), plus a shortcut 1->4->2 outside.
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 0, 1)
	g.MustAddEdge(1, 4, 1)
	g.MustAddEdge(4, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	members := []graph.NodeID{0, 1, 2}
	tr, err := BuildDouble(g, 0, members)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := tr.DistFrom(2)
	if d != 11 { // 0->1->2 inside the cluster; the 1->4->2 shortcut is out
		t.Fatalf("induced d(0,2) = %d, want 11", d)
	}
	if tr.Contains(4) || tr.Contains(3) {
		t.Fatal("tree contains non-members")
	}
	w, _ := routeDown(t, g, tr, 2)
	if w != 11 {
		t.Fatalf("restricted route weight %d, want 11", w)
	}
}

func TestBuildDoubleErrors(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(1, 2, 1) // 2 has no path back inside {0,1,2}

	if _, err := BuildDouble(g, 3, []graph.NodeID{0, 1}); err == nil {
		t.Fatal("expected error: root not a member")
	}
	if _, err := BuildDouble(g, 0, []graph.NodeID{0, 1, 2}); err == nil {
		t.Fatal("expected error: member set not strongly connected")
	}
}

func TestRTHeight(t *testing.T) {
	g := graph.Ring(8, nil) // r(v, root) = 8 for all v != root
	tr, err := BuildDouble(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RTHeight() != 8 {
		t.Fatalf("ring RTHeight = %d, want 8", tr.RTHeight())
	}
}

func TestLabelSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 64, 256, 1024} {
		g := graph.RandomSC(n, 3*n, 8, rng)
		tr, err := BuildDouble(g, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		bound := TheoreticalLabelBound(n)
		for v := 0; v < n; v++ {
			lbl, _ := tr.LabelOf(graph.NodeID(v))
			if len(lbl.Light) > bound {
				t.Fatalf("n=%d: label of %d has %d light hops, bound %d", n, v, len(lbl.Light), bound)
			}
		}
	}
}

func TestNextPortRejectsNonAncestor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomSC(30, 90, 5, rng)
	tr, err := BuildDouble(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find two nodes where neither is an ancestor of the other.
	for a := 1; a < g.N(); a++ {
		for b := 1; b < g.N(); b++ {
			sa, _ := tr.State(graph.NodeID(a))
			sb, _ := tr.State(graph.NodeID(b))
			disjoint := sb.Tin > sa.Tout || sb.Tout < sa.Tin
			if !disjoint {
				continue
			}
			lb, _ := tr.LabelOf(graph.NodeID(b))
			if _, _, err := NextPort(sa, lb); err == nil {
				t.Fatalf("NextPort(%d -> %d) should fail for non-ancestor", a, b)
			}
			return
		}
	}
	t.Skip("no disjoint-subtree pair found (star-shaped tree)")
}

func TestDFSIntervalsAreLaminar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomSC(80, 320, 6, rng)
	tr, err := BuildDouble(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// Collect all intervals; any two must be nested or disjoint, and tins unique.
	type iv struct{ lo, hi int32 }
	ivs := make([]iv, 0, n)
	seen := map[int32]bool{}
	for v := 0; v < n; v++ {
		st, ok := tr.State(graph.NodeID(v))
		if !ok {
			t.Fatalf("missing state for %d", v)
		}
		if st.Tin < 0 || st.Tout >= int32(n) || st.Tin > st.Tout {
			t.Fatalf("bad interval [%d,%d] at %d", st.Tin, st.Tout, v)
		}
		if seen[st.Tin] {
			t.Fatalf("duplicate tin %d", st.Tin)
		}
		seen[st.Tin] = true
		ivs = append(ivs, iv{st.Tin, st.Tout})
	}
	for i := 0; i < len(ivs); i++ {
		for j := i + 1; j < len(ivs); j++ {
			a, b := ivs[i], ivs[j]
			nested := (a.lo <= b.lo && b.hi <= a.hi) || (b.lo <= a.lo && a.hi <= b.hi)
			disjoint := a.hi < b.lo || b.hi < a.lo
			if !nested && !disjoint {
				t.Fatalf("intervals [%d,%d] and [%d,%d] cross", a.lo, a.hi, b.lo, b.hi)
			}
		}
	}
}

func TestHeavyChildIsLargest(t *testing.T) {
	// Deterministic star-with-path: root 0 has children 1 (leaf) and 2,
	// where 2 heads a long path. Heavy child of 0 must be 2.
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	// Return edges for strong connectivity.
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(5, 0, 1)
	tr, err := BuildDouble(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := tr.State(0)
	s2, _ := tr.State(2)
	if st.HeavyTin != s2.Tin || st.HeavyTout != s2.Tout {
		t.Fatalf("heavy child of root should be node 2's subtree [%d,%d], got [%d,%d]",
			s2.Tin, s2.Tout, st.HeavyTin, st.HeavyTout)
	}
	// Leaf has no heavy child.
	s1, _ := tr.State(1)
	if s1.HeavyPort != -1 {
		t.Fatalf("leaf 1 has heavy port %d, want -1", s1.HeavyPort)
	}
}

func TestRootLabelDeliversImmediately(t *testing.T) {
	g := graph.Ring(5, nil)
	tr, err := BuildDouble(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	lbl, _ := tr.LabelOf(2)
	st, _ := tr.State(2)
	_, delivered, err := NextPort(st, lbl)
	if err != nil || !delivered {
		t.Fatalf("root label should deliver at root: delivered=%v err=%v", delivered, err)
	}
	if lbl.Words() != 1 {
		t.Fatalf("root label Words() = %d, want 1", lbl.Words())
	}
}

func TestAdversarialPortsDoNotBreakRouting(t *testing.T) {
	// Build the tree AFTER an extra adversarial port relabeling (the
	// fixed-port model) and ensure routing still delivers optimally.
	rng := rand.New(rand.NewSource(6))
	g := graph.RandomSC(50, 200, 7, rng)
	g.AssignPorts(rng.Intn) // extra scramble
	tr, err := BuildDouble(g, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := graph.Dijkstra(g, 9)
	for v := 0; v < g.N(); v += 3 {
		w, _ := routeDown(t, g, tr, graph.NodeID(v))
		if w != sp.Dist[v] {
			t.Fatalf("adversarial ports: route to %d has weight %d, want %d", v, w, sp.Dist[v])
		}
	}
}

func TestDoubleTreeOnGrid(t *testing.T) {
	g := graph.Grid(5, 5, nil)
	tr, err := BuildDouble(g, 12, nil) // center of the grid
	if err != nil {
		t.Fatal(err)
	}
	// Grid is bidirected: RTHeight = 2 * eccentricity of center = 2*4.
	if tr.RTHeight() != 8 {
		t.Fatalf("grid RTHeight = %d, want 8", tr.RTHeight())
	}
	for v := 0; v < g.N(); v++ {
		down, _ := routeDown(t, g, tr, graph.NodeID(v))
		up := routeUp(t, g, tr, graph.NodeID(v))
		if down != up {
			t.Fatalf("grid asymmetric tree distances at %d: %d vs %d", v, down, up)
		}
	}
}
