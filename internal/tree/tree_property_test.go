package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtroute/internal/graph"
)

// Property-based tests on the tree-routing substrate: over random graph
// seeds and roots, routing from the root must follow the exact
// shortest-path distance, labels must respect the heavy-path bound, and
// in-tree + out-tree distances must compose into RTHeight.

func TestQuickOutTreeOptimality(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, rootRaw, dstRaw uint8) bool {
		seed := int64(seedRaw)
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(seedRaw)%30
		g := graph.RandomSC(n, 3*n, 7, rng)
		root := graph.NodeID(int(rootRaw) % n)
		dst := graph.NodeID(int(dstRaw) % n)
		tr, err := BuildDouble(g, root, nil)
		if err != nil {
			return false
		}
		sp := graph.Dijkstra(g, root)
		lbl, ok := tr.LabelOf(dst)
		if !ok {
			return false
		}
		cur := root
		var weight graph.Dist
		for hops := 0; ; hops++ {
			if hops > n {
				return false
			}
			st, ok := tr.State(cur)
			if !ok {
				return false
			}
			port, delivered, err := NextPort(st, lbl)
			if err != nil {
				return false
			}
			if delivered {
				return cur == dst && weight == sp.Dist[dst]
			}
			e, ok := g.EdgeByPort(cur, port)
			if !ok {
				return false
			}
			weight += e.Weight
			cur = e.To
		}
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickRTHeightComposition(t *testing.T) {
	err := quick.Check(func(seedRaw uint16, rootRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 15 + int(seedRaw)%25
		g := graph.RandomSC(n, 3*n, 5, rng)
		root := graph.NodeID(int(rootRaw) % n)
		tr, err := BuildDouble(g, root, nil)
		if err != nil {
			return false
		}
		var maxRT graph.Dist
		for v := 0; v < n; v++ {
			from, ok1 := tr.DistFrom(graph.NodeID(v))
			to, ok2 := tr.DistTo(graph.NodeID(v))
			if !ok1 || !ok2 {
				return false
			}
			if rt := from + to; rt > maxRT {
				maxRT = rt
			}
		}
		return maxRT == tr.RTHeight()
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickLabelBoundOverSeeds(t *testing.T) {
	err := quick.Check(func(seedRaw uint16) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 32 + int(seedRaw)%96
		g := graph.RandomSC(n, 3*n, 6, rng)
		tr, err := BuildDouble(g, 0, nil)
		if err != nil {
			return false
		}
		bound := TheoreticalLabelBound(n)
		for v := 0; v < n; v++ {
			lbl, _ := tr.LabelOf(graph.NodeID(v))
			if len(lbl.Light) > bound {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickInTreeNextHopDecreasesDistance(t *testing.T) {
	// Following InPort must strictly decrease the remaining distance to
	// the root — the invariant that makes in-tree routing loop-free.
	err := quick.Check(func(seedRaw uint16, rootRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seedRaw)))
		n := 15 + int(seedRaw)%25
		g := graph.RandomSC(n, 3*n, 5, rng)
		root := graph.NodeID(int(rootRaw) % n)
		tr, err := BuildDouble(g, root, nil)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if graph.NodeID(v) == root {
				continue
			}
			port, ok := tr.InPort(graph.NodeID(v))
			if !ok {
				return false
			}
			e, ok := g.EdgeByPort(graph.NodeID(v), port)
			if !ok {
				return false
			}
			dv, _ := tr.DistTo(graph.NodeID(v))
			dn, _ := tr.DistTo(e.To)
			if dn >= dv {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}
