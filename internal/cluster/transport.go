package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by transport operations after Close: receivers
// treat it as clean shutdown, senders as "stop injecting".
var ErrClosed = errors.New("cluster: transport closed")

// InFrame is one received transport message: the frame bytes plus, for
// messages that arrived on an accepted client connection (TCP), the
// connection's reply token for Reply. The receiver owns Data.
type InFrame struct {
	Data []byte
	Conn uint64
}

// Transport is one shard's connection to the rest of the cluster: a
// frame-oriented message fabric. Frames are opaque length-delimited
// byte slices (the wire frame codec's output); the transport neither
// reads nor retains them after delivery. Implementations must allow
// concurrent Send/SendBatch/Reply from many goroutines and concurrent
// Recv from a shard's worker pool.
type Transport interface {
	// Send delivers one frame to shard to's mailbox. It blocks while
	// the destination mailbox is full and returns ErrClosed after the
	// transport shuts down.
	Send(to int, frame []byte) error
	// SendBatch delivers many frames to one shard as a single mailbox
	// message — the engine's amortization lever: a worker accumulates
	// everything a dequeue batch emits toward each destination and pays
	// one rendezvous per destination, not per frame. Ownership of the
	// slice transfers to the transport.
	SendBatch(to int, frames []InFrame) error
	// Recv returns the next batch from this shard's mailbox, blocking
	// until at least one frame is available. The caller owns the
	// returned slice.
	Recv() ([]InFrame, error)
	// TryRecv is the non-blocking Recv: ok=false when the mailbox is
	// momentarily empty. Workers drain with TryRecv before flushing
	// their outbound accumulations, so batches grow to the work
	// actually queued instead of collapsing to singletons.
	TryRecv() ([]InFrame, bool, error)
	// Reply writes a frame back to the accepted client connection
	// identified by conn (see InFrame.Conn). Transports without client
	// connections return an error.
	Reply(conn uint64, frame []byte) error
	// Close shuts the transport down, unblocking all Send/Recv calls.
	Close() error
}

// Window is the pipelining credit counter: an injector Takes credits
// before starting roundtrips, completions Put them back, and the credit
// total caps how many roundtrips are ever in flight — the backpressure
// that keeps mailbox occupancy bounded (and the cluster deadlock-free
// by counting: mailbox capacity = window size). Unlike a semaphore
// channel, Take hands out credits in bulk, so a windowed injector pays
// one synchronization per burst, not per roundtrip, and Put is a lone
// atomic add on the completion path.
//
// Put also samples occupancy (window size minus available credits) at
// each completion, so a run can report how full the pipeline actually
// ran — the satellite metric distinguishing "window too small" from
// "crossings too slow".
type Window struct {
	size     int64
	avail    atomic.Int64
	occSum   atomic.Int64
	occCount atomic.Int64
	// wake is a capacity-1 signal channel: a Put into an empty window
	// leaves a token a blocked Take will find even if it was not yet
	// parked (no missed wakeups).
	wake chan struct{}
}

// NewWindow creates a window of n credits, all available.
func NewWindow(n int) *Window {
	w := &Window{size: int64(n), wake: make(chan struct{}, 1)}
	w.avail.Store(int64(n))
	return w
}

// Size returns the window's credit total.
func (w *Window) Size() int { return int(w.size) }

// Take acquires between 1 and max credits, blocking while the window is
// empty. It returns 0 only when done closes first — the injector's
// shutdown signal.
func (w *Window) Take(max int, done <-chan struct{}) int {
	for {
		avail := w.avail.Load()
		for avail > 0 {
			take := int64(max)
			if take > avail {
				take = avail
			}
			if w.avail.CompareAndSwap(avail, avail-take) {
				if avail > take {
					// Credits remain: pass the signal on so another
					// blocked taker re-checks too.
					select {
					case w.wake <- struct{}{}:
					default:
					}
				}
				return int(take)
			}
			avail = w.avail.Load()
		}
		select {
		case <-w.wake:
		case <-done:
			return 0
		}
	}
}

// Put returns n credits and samples pipeline occupancy.
func (w *Window) Put(n int) {
	after := w.avail.Add(int64(n))
	w.occSum.Add(w.size - after)
	w.occCount.Add(1)
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// Occupancy returns the mean number of in-flight roundtrips observed at
// completion times (0 when nothing completed).
func (w *Window) Occupancy() float64 {
	n := w.occCount.Load()
	if n == 0 {
		return 0
	}
	return float64(w.occSum.Load()) / float64(n)
}

// ChanBus is the in-process transport: one bounded mailbox channel per
// shard, each element a batch of frames. It is the deterministic-test
// and benchmark fabric — same frame bytes as TCP, no sockets — and also
// the deadlock-freedom reference: with at most InFlight roundtrips live
// and every live roundtrip occupying at most one queued frame, a
// mailbox capacity of InFlight batches means sends never cycle-wait.
type ChanBus struct {
	inboxes []chan []InFrame
	closed  chan struct{}
	once    sync.Once
}

// NewChanBus creates a bus for the given shard count, each mailbox
// holding up to capacity batches.
func NewChanBus(shards, capacity int) *ChanBus {
	b := &ChanBus{inboxes: make([]chan []InFrame, shards), closed: make(chan struct{})}
	for i := range b.inboxes {
		b.inboxes[i] = make(chan []InFrame, capacity)
	}
	return b
}

// Send delivers a single frame to shard to's mailbox (injectors use the
// bus directly; shards go through their Endpoint).
func (b *ChanBus) Send(to int, frame []byte) error {
	return b.SendBatch(to, []InFrame{{Data: frame}})
}

// SendBatch delivers a batch of frames to shard to's mailbox.
func (b *ChanBus) SendBatch(to int, frames []InFrame) error {
	if to < 0 || to >= len(b.inboxes) {
		return fmt.Errorf("cluster: send to unknown shard %d (bus has %d)", to, len(b.inboxes))
	}
	if len(frames) == 0 {
		return nil
	}
	select {
	case b.inboxes[to] <- frames:
		return nil
	case <-b.closed:
		return ErrClosed
	}
}

// Close shuts the bus down; queued frames are discarded.
func (b *ChanBus) Close() error {
	b.once.Do(func() { close(b.closed) })
	return nil
}

// Done returns a channel closed when the bus shuts down, so producers
// blocked on anything other than the bus (an in-flight window, say) can
// wake up on shutdown too.
func (b *ChanBus) Done() <-chan struct{} { return b.closed }

// Endpoint returns shard's view of the bus.
func (b *ChanBus) Endpoint(shard int) Transport {
	return &busEndpoint{bus: b, shard: shard}
}

type busEndpoint struct {
	bus   *ChanBus
	shard int
}

func (e *busEndpoint) Send(to int, frame []byte) error { return e.bus.Send(to, frame) }

func (e *busEndpoint) SendBatch(to int, frames []InFrame) error { return e.bus.SendBatch(to, frames) }

func (e *busEndpoint) Recv() ([]InFrame, error) {
	select {
	case frames := <-e.bus.inboxes[e.shard]:
		return frames, nil
	case <-e.bus.closed:
		return nil, ErrClosed
	}
}

func (e *busEndpoint) TryRecv() ([]InFrame, bool, error) {
	select {
	case frames := <-e.bus.inboxes[e.shard]:
		return frames, true, nil
	case <-e.bus.closed:
		return nil, false, ErrClosed
	default:
		return nil, false, nil
	}
}

func (e *busEndpoint) Reply(conn uint64, frame []byte) error {
	return fmt.Errorf("cluster: channel bus has no client connections (reply token %d)", conn)
}

func (e *busEndpoint) Close() error { return e.bus.Close() }
