package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by transport operations after Close: receivers
// treat it as clean shutdown, senders as "stop injecting".
var ErrClosed = errors.New("cluster: transport closed")

// InFrame is one received transport message: the frame bytes plus, for
// messages that arrived on an accepted client connection (TCP), the
// connection's reply token for Reply. The receiver owns Data.
type InFrame struct {
	Data []byte
	Conn uint64
}

// Transport is one shard's connection to the rest of the cluster: a
// frame-oriented message fabric. Frames are opaque length-delimited
// byte slices (the wire frame codec's output); the transport neither
// reads nor retains them after delivery. Implementations must allow
// concurrent Send/SendBatch/Reply from many goroutines and concurrent
// Recv from a shard's worker pool.
type Transport interface {
	// Send delivers one frame to shard to's mailbox. It blocks while
	// the destination mailbox is full and returns ErrClosed after the
	// transport shuts down.
	Send(to int, frame []byte) error
	// SendBatch delivers many frames to one shard as a single mailbox
	// message — the engine's amortization lever: a worker accumulates
	// everything a dequeue batch emits toward each destination and pays
	// one rendezvous per destination, not per frame. Ownership of the
	// slice transfers to the transport.
	SendBatch(to int, frames []InFrame) error
	// Recv returns the next batch from this shard's mailbox, blocking
	// until at least one frame is available. The caller owns the
	// returned slice.
	Recv() ([]InFrame, error)
	// TryRecv is the non-blocking Recv: ok=false when the mailbox is
	// momentarily empty. Workers drain with TryRecv before flushing
	// their outbound accumulations, so batches grow to the work
	// actually queued instead of collapsing to singletons.
	TryRecv() ([]InFrame, bool, error)
	// Reply writes a frame back to the accepted client connection
	// identified by conn (see InFrame.Conn). Transports without client
	// connections return an error.
	Reply(conn uint64, frame []byte) error
	// Close shuts the transport down, unblocking all Send/Recv calls.
	Close() error
}

// ChanBus is the in-process transport: one bounded mailbox channel per
// shard, each element a batch of frames. It is the deterministic-test
// and benchmark fabric — same frame bytes as TCP, no sockets — and also
// the deadlock-freedom reference: with at most InFlight roundtrips live
// and every live roundtrip occupying at most one queued frame, a
// mailbox capacity of InFlight batches means sends never cycle-wait.
type ChanBus struct {
	inboxes []chan []InFrame
	closed  chan struct{}
	once    sync.Once
}

// NewChanBus creates a bus for the given shard count, each mailbox
// holding up to capacity batches.
func NewChanBus(shards, capacity int) *ChanBus {
	b := &ChanBus{inboxes: make([]chan []InFrame, shards), closed: make(chan struct{})}
	for i := range b.inboxes {
		b.inboxes[i] = make(chan []InFrame, capacity)
	}
	return b
}

// Send delivers a single frame to shard to's mailbox (injectors use the
// bus directly; shards go through their Endpoint).
func (b *ChanBus) Send(to int, frame []byte) error {
	return b.SendBatch(to, []InFrame{{Data: frame}})
}

// SendBatch delivers a batch of frames to shard to's mailbox.
func (b *ChanBus) SendBatch(to int, frames []InFrame) error {
	if to < 0 || to >= len(b.inboxes) {
		return fmt.Errorf("cluster: send to unknown shard %d (bus has %d)", to, len(b.inboxes))
	}
	if len(frames) == 0 {
		return nil
	}
	select {
	case b.inboxes[to] <- frames:
		return nil
	case <-b.closed:
		return ErrClosed
	}
}

// Close shuts the bus down; queued frames are discarded.
func (b *ChanBus) Close() error {
	b.once.Do(func() { close(b.closed) })
	return nil
}

// Done returns a channel closed when the bus shuts down, so producers
// blocked on anything other than the bus (an in-flight window, say) can
// wake up on shutdown too.
func (b *ChanBus) Done() <-chan struct{} { return b.closed }

// Endpoint returns shard's view of the bus.
func (b *ChanBus) Endpoint(shard int) Transport {
	return &busEndpoint{bus: b, shard: shard}
}

type busEndpoint struct {
	bus   *ChanBus
	shard int
}

func (e *busEndpoint) Send(to int, frame []byte) error { return e.bus.Send(to, frame) }

func (e *busEndpoint) SendBatch(to int, frames []InFrame) error { return e.bus.SendBatch(to, frames) }

func (e *busEndpoint) Recv() ([]InFrame, error) {
	select {
	case frames := <-e.bus.inboxes[e.shard]:
		return frames, nil
	case <-e.bus.closed:
		return nil, ErrClosed
	}
}

func (e *busEndpoint) TryRecv() ([]InFrame, bool, error) {
	select {
	case frames := <-e.bus.inboxes[e.shard]:
		return frames, true, nil
	case <-e.bus.closed:
		return nil, false, ErrClosed
	default:
		return nil, false, nil
	}
}

func (e *busEndpoint) Reply(conn uint64, frame []byte) error {
	return fmt.Errorf("cluster: channel bus has no client connections (reply token %d)", conn)
}

func (e *busEndpoint) Close() error { return e.bus.Close() }
