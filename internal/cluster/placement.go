package cluster

import (
	"fmt"
	"sort"

	"rtroute/internal/core"
	"rtroute/internal/graph"
)

// Policy selects how nodes are partitioned across shards. Because TINN
// names carry no topology, *any* deterministic map works for
// correctness — the policies differ only in how many hops cross shard
// boundaries, which is exactly the deployment question the E15
// experiment measures.
type Policy string

const (
	// Contiguous assigns node index ranges [v*S/n] — the naive "rack by
	// arrival order" layout.
	Contiguous Policy = "contiguous"
	// Hash scatters nodes by a splitmix64 of their index — the
	// consistent-hashing layout a name-addressed store would pick.
	Hash Policy = "hash"
	// RTZAligned co-locates each stretch-3 cluster (the nodes sharing a
	// nearest center) on one shard, balancing cluster groups across
	// shards — placement that *uses* the scheme's own locality
	// structure. Available for schemes carrying RTZ labels (stretch6
	// and the rtz substrate plane).
	RTZAligned Policy = "rtz"
)

// Placement maps every node to its owning shard.
type Placement struct {
	Shards int
	Policy Policy
	// Owner[v] is the shard serving node v.
	Owner []int32
}

// NewPlacement partitions the deployment's nodes across shards under
// the given policy. The result is deterministic: same deployment, shard
// count and policy always produce the same map, so every daemon of a
// TCP cluster computes an identical placement from its own snapshot
// copy.
func NewPlacement(dep *core.Deployment, shards int, policy Policy) (*Placement, error) {
	n := dep.Graph().N()
	if shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("cluster: %d shards over %d nodes leaves empty shards", shards, n)
	}
	p := &Placement{Shards: shards, Policy: policy, Owner: make([]int32, n)}
	switch policy {
	case Contiguous, "":
		p.Policy = Contiguous
		for v := 0; v < n; v++ {
			p.Owner[v] = int32(v * shards / n)
		}
	case Hash:
		for v := 0; v < n; v++ {
			p.Owner[v] = int32(splitmix64(uint64(v)) % uint64(shards))
		}
		if err := p.fillEmpty(n); err != nil {
			return nil, err
		}
	case RTZAligned:
		centers, err := rtzCenters(dep)
		if err != nil {
			return nil, err
		}
		if err := p.alignToCenters(centers); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("cluster: unknown placement policy %q", policy)
	}
	return p, nil
}

// Shard returns node v's owning shard.
func (p *Placement) Shard(v graph.NodeID) int { return int(p.Owner[v]) }

// Counts returns how many nodes each shard owns.
func (p *Placement) Counts() []int {
	counts := make([]int, p.Shards)
	for _, s := range p.Owner {
		counts[s]++
	}
	return counts
}

// CrossEdgeFraction reports the fraction of graph edges whose endpoints
// live on different shards — the static ceiling on how often a uniform
// random walk would cross shard boundaries under this placement.
func (p *Placement) CrossEdgeFraction(g *graph.Graph) float64 {
	if g.M() == 0 {
		return 0
	}
	cross := 0
	for v := 0; v < g.N(); v++ {
		for _, e := range g.Out(graph.NodeID(v)) {
			if p.Owner[v] != p.Owner[e.To] {
				cross++
			}
		}
	}
	return float64(cross) / float64(g.M())
}

// fillEmpty repairs a hashed placement on tiny node counts where some
// shard drew no nodes: it moves one node from the fullest shard into
// each empty one (deterministically, lowest index first).
func (p *Placement) fillEmpty(n int) error {
	counts := p.Counts()
	for s, c := range counts {
		if c > 0 {
			continue
		}
		donor, max := -1, 1
		for t, ct := range counts {
			if ct > max {
				donor, max = t, ct
			}
		}
		if donor < 0 {
			return fmt.Errorf("cluster: cannot fill empty shard %d", s)
		}
		for v := 0; v < n; v++ {
			if p.Owner[v] == int32(donor) {
				p.Owner[v] = int32(s)
				counts[donor]--
				counts[s]++
				break
			}
		}
	}
	return nil
}

// rtzCenters extracts each node's stretch-3 cluster center from the
// deployment's per-node state.
func rtzCenters(dep *core.Deployment) ([]graph.NodeID, error) {
	_, locals, err := core.Decompose(dep)
	if err != nil {
		return nil, err
	}
	centers := make([]graph.NodeID, len(locals))
	for v := range locals {
		switch {
		case locals[v].S6 != nil:
			centers[v] = locals[v].S6.OwnLabel.Center
		case locals[v].RTZ != nil:
			centers[v] = locals[v].RTZ.SelfLabel.Center
		default:
			return nil, fmt.Errorf("cluster: %s placement needs a scheme with RTZ labels (stretch6 or rtz), got %s",
				RTZAligned, dep.Kind())
		}
	}
	return centers, nil
}

// alignToCenters groups nodes by cluster center and packs whole
// clusters onto shards, largest first onto the least-loaded shard — a
// deterministic LPT bin packing that keeps shard loads balanced while
// never splitting a cluster.
func (p *Placement) alignToCenters(centers []graph.NodeID) error {
	bySize := map[graph.NodeID]int{}
	for _, c := range centers {
		bySize[c]++
	}
	if len(bySize) < p.Shards {
		return fmt.Errorf("cluster: %s placement has %d clusters for %d shards; use fewer shards",
			RTZAligned, len(bySize), p.Shards)
	}
	order := make([]graph.NodeID, 0, len(bySize))
	for c := range bySize {
		order = append(order, c)
	}
	sort.Slice(order, func(i, j int) bool {
		if bySize[order[i]] != bySize[order[j]] {
			return bySize[order[i]] > bySize[order[j]]
		}
		return order[i] < order[j]
	})
	load := make([]int, p.Shards)
	shardOf := make(map[graph.NodeID]int32, len(order))
	for _, c := range order {
		best := 0
		for s := 1; s < p.Shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		shardOf[c] = int32(best)
		load[best] += bySize[c]
	}
	for v, c := range centers {
		p.Owner[v] = shardOf[c]
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed integer
// hash with no shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
