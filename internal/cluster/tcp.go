package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP transport: the same frames the channel bus carries, as
// length-prefixed segments over sockets. One rtserve daemon per shard
// listens on its address from a shared address list; shard-to-shard
// links are dialed lazily (daemons start in any order), and client
// connections (rtroute -connect) are accepted on the same listener —
// the protocol is symmetric, a frame is a frame. Wire format of one
// segment: a 4-byte big-endian length, then that many frame bytes.

// maxTCPFrame bounds one frame segment; headers are O(log^2 n) words,
// so anything near this is hostile input, not traffic.
const maxTCPFrame = 1 << 24

// tcpDialRetries * tcpDialBackoff bounds how long a shard waits for a
// peer daemon to come up before failing the Send. This inline wait is
// paid only on a link's first use (daemons start in any order); once a
// link has been up, losing it marks the peer down and sends fail fast
// with *PeerDownError while a background redialer repairs the link off
// the serving path.
const (
	tcpDialRetries = 40
	tcpDialBackoff = 250 * time.Millisecond
)

// PeerDownError is the typed send failure for a shard link that was up
// and broke: the frame was not delivered, the caller should count and
// drop (non-strict serving) or abort (strict), and the transport is
// already redialing in the background — retrying the send inside the
// hot path would stall every worker on one dead peer.
type PeerDownError struct {
	Shard int
	Err   error
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("cluster: peer shard %d down: %v", e.Shard, e.Err)
}

func (e *PeerDownError) Unwrap() error { return e.Err }

// TCPTransport is one shard's socket fabric.
type TCPTransport struct {
	shard int
	addrs []string
	ln    net.Listener

	inbox  chan []InFrame
	closed chan struct{}
	once   sync.Once

	mu    sync.Mutex
	peers []tcpPeer           // lazily dialed shard->shard links, by shard index
	conns map[uint64]*tcpConn // accepted connections, by reply token
	next  uint64

	// Link-health counters for the telemetry plane: peerDowns counts
	// up->down transitions (each one a burst of fast-failing sends),
	// redials counts background dial attempts spent repairing them.
	peerDowns atomic.Int64
	redials   atomic.Int64
}

// LinkStats reports the transport's link-health counters: how many
// times an up link broke, and how many background dial attempts the
// redialer has spent. Safe to call concurrently with serving.
func (t *TCPTransport) LinkStats() (peerDowns, redials int64) {
	return t.peerDowns.Load(), t.redials.Load()
}

// tcpPeer is one outgoing shard link's state machine: virgin (never
// connected — the first send dials inline with backoff, since daemons
// start in any order), up (conn != nil), or down (was up, broke — sends
// fail fast, a single background goroutine redials).
type tcpPeer struct {
	conn      *tcpConn // non-nil = up
	everUp    bool
	redialing bool
	lastErr   error
}

// tcpConn serializes writes to one socket. The length-prefix assembly
// buffer is reused across writes (guarded by the same mutex), so a
// steady frame stream allocates nothing per send.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	wbuf []byte
}

func (p *tcpConn) writeFrame(frame []byte) error {
	return p.writeFrames([]InFrame{{Data: frame}})
}

func (p *tcpConn) writeFrames(frames []InFrame) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	buf := p.wbuf[:0]
	for i := range frames {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(frames[i].Data)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, frames[i].Data...)
	}
	p.wbuf = buf
	_, err := p.c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame segment.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxTCPFrame {
		return nil, fmt.Errorf("cluster: tcp frame length %d outside (0, %d]", n, maxTCPFrame)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ListenTCP starts shard's endpoint of a TCP cluster whose shard i
// listens on addrs[i].
func ListenTCP(shard int, addrs []string) (*TCPTransport, error) {
	if shard < 0 || shard >= len(addrs) {
		return nil, fmt.Errorf("cluster: shard %d outside address list of %d", shard, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[shard])
	if err != nil {
		return nil, err
	}
	return NewTCPTransport(shard, ln, addrs), nil
}

// NewTCPTransport wraps an existing listener (tests use ":0" listeners
// and exchange the resolved addresses). addrs[shard] is ignored; the
// other entries are where peers are dialed.
func NewTCPTransport(shard int, ln net.Listener, addrs []string) *TCPTransport {
	t := &TCPTransport{
		shard: shard, addrs: addrs, ln: ln,
		inbox:  make(chan []InFrame, 4096),
		closed: make(chan struct{}),
		peers:  make([]tcpPeer, len(addrs)),
		conns:  make(map[uint64]*tcpConn),
	}
	go t.acceptLoop()
	return t
}

// Addr returns the listener's resolved address.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) acceptLoop() {
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.next++
		id := t.next
		tc := &tcpConn{c: c}
		t.conns[id] = tc
		t.mu.Unlock()
		go t.readLoop(tc, id)
	}
}

func (t *TCPTransport) readLoop(tc *tcpConn, id uint64) {
	defer func() {
		t.mu.Lock()
		delete(t.conns, id)
		t.mu.Unlock()
		tc.c.Close()
	}()
	// Frames already sitting in the read buffer are delivered as one
	// batch: the socket-side mirror of the senders' batching.
	rd := bufio.NewReaderSize(tc.c, 64*1024)
	for {
		frame, err := readFrame(rd)
		if err != nil {
			return
		}
		batch := []InFrame{{Data: frame, Conn: id}}
		for len(batch) < 256 && rd.Buffered() >= 4 {
			frame, err = readFrame(rd)
			if err != nil {
				return
			}
			batch = append(batch, InFrame{Data: frame, Conn: id})
		}
		select {
		case t.inbox <- batch:
		case <-t.closed:
			return
		}
	}
}

// peer returns the link to a shard. A virgin link (never connected) is
// dialed inline, waiting with backoff for a daemon that has not come up
// yet; a link that was up and broke fails fast with *PeerDownError and
// leaves reconnection to the background redialer.
func (t *TCPTransport) peer(to int) (*tcpConn, error) {
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("cluster: send to unknown shard %d (cluster has %d)", to, len(t.addrs))
	}
	t.mu.Lock()
	p := &t.peers[to]
	if c := p.conn; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	if p.everUp {
		err := &PeerDownError{Shard: to, Err: p.lastErr}
		t.mu.Unlock()
		return nil, err
	}
	t.mu.Unlock()
	var lastErr error
	for i := 0; i < tcpDialRetries; i++ {
		select {
		case <-t.closed:
			return nil, ErrClosed
		default:
		}
		if c, err := t.dialPeer(to); err == nil || err == ErrClosed {
			return c, err
		} else {
			lastErr = err
		}
		time.Sleep(tcpDialBackoff)
	}
	return nil, fmt.Errorf("cluster: shard %d unreachable at %s: %w", to, t.addrs[to], lastErr)
}

// dialPeer attempts one dial and, on success, installs the conn as the
// link (unless another goroutine already did, or Close ran meanwhile).
func (t *TCPTransport) dialPeer(to int) (*tcpConn, error) {
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, err
	}
	select {
	case <-t.closed:
		// Close ran while we were dialing; registering the conn
		// now would leak it past Close's cleanup loop.
		c.Close()
		return nil, ErrClosed
	default:
	}
	t.mu.Lock()
	p := &t.peers[to]
	if p.conn == nil {
		p.conn = &tcpConn{c: c}
		p.everUp = true
		p.lastErr = nil
		go t.monitorPeer(to, p.conn)
	} else {
		c.Close() // another goroutine won the race
	}
	tc := p.conn
	t.mu.Unlock()
	return tc, nil
}

// monitorPeer is the dialed side's read loop. The protocol is symmetric,
// so any frames the peer writes back on the link are delivered like
// accepted-side traffic; mostly, though, the blocking Read is how peer
// death reaches this side between writes. Without it a dead peer is only
// discovered when a later write trips over the reset — and a send wedged
// mid-batch against full socket buffers never gets that far. The read
// error marks the peer down at once, and markPeerDown's conn close
// unblocks any write in flight, so the wedged SendBatch fails typed
// (*PeerDownError) instead of hanging.
func (t *TCPTransport) monitorPeer(to int, tc *tcpConn) {
	rd := bufio.NewReaderSize(tc.c, 64*1024)
	for {
		frame, err := readFrame(rd)
		if err != nil {
			select {
			case <-t.closed:
				return // transport shutdown, not a peer flap
			default:
			}
			t.markPeerDown(to, tc, fmt.Errorf("cluster: peer link read: %w", err))
			return
		}
		select {
		case t.inbox <- []InFrame{{Data: frame}}:
		case <-t.closed:
			return
		}
	}
}

// markPeerDown transitions a link out of the up state after a write
// failure. Idempotent under races via conn pointer equality: of several
// workers failing on the same dead conn, only the first records the
// error and starts the (single) background redialer; a worker failing
// on a conn that has already been replaced changes nothing.
func (t *TCPTransport) markPeerDown(to int, tc *tcpConn, err error) {
	t.mu.Lock()
	p := &t.peers[to]
	if p.conn != tc {
		t.mu.Unlock()
		return
	}
	p.conn = nil
	p.lastErr = err
	t.peerDowns.Add(1)
	if !p.redialing {
		p.redialing = true
		go t.redialPeer(to)
	}
	t.mu.Unlock()
	tc.c.Close()
}

// redialPeer repairs a down link off the serving path, retrying with
// backoff until the peer answers or the transport closes.
func (t *TCPTransport) redialPeer(to int) {
	defer func() {
		t.mu.Lock()
		t.peers[to].redialing = false
		t.mu.Unlock()
	}()
	for {
		select {
		case <-t.closed:
			return
		default:
		}
		t.redials.Add(1)
		if _, err := t.dialPeer(to); err == nil || err == ErrClosed {
			return
		}
		select {
		case <-t.closed:
			return
		case <-time.After(tcpDialBackoff):
		}
	}
}

// Send implements Transport. A send to this shard itself loops back
// through the inbox without touching a socket.
func (t *TCPTransport) Send(to int, frame []byte) error {
	return t.SendBatch(to, []InFrame{{Data: frame}})
}

// SendBatch implements Transport: one socket write carries the whole
// batch of length-prefixed frames.
func (t *TCPTransport) SendBatch(to int, frames []InFrame) error {
	if len(frames) == 0 {
		return nil
	}
	if to == t.shard {
		select {
		case t.inbox <- frames:
			return nil
		case <-t.closed:
			return ErrClosed
		}
	}
	p, err := t.peer(to)
	if err != nil {
		return err
	}
	if err := p.writeFrames(frames); err != nil {
		t.markPeerDown(to, p, err)
		return &PeerDownError{Shard: to, Err: err}
	}
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv() ([]InFrame, error) {
	select {
	case frames := <-t.inbox:
		return frames, nil
	case <-t.closed:
		return nil, ErrClosed
	}
}

// TryRecv implements Transport.
func (t *TCPTransport) TryRecv() ([]InFrame, bool, error) {
	select {
	case frames := <-t.inbox:
		return frames, true, nil
	case <-t.closed:
		return nil, false, ErrClosed
	default:
		return nil, false, nil
	}
}

// Reply implements Transport: write back to an accepted connection.
func (t *TCPTransport) Reply(conn uint64, frame []byte) error {
	t.mu.Lock()
	tc := t.conns[conn]
	t.mu.Unlock()
	if tc == nil {
		return fmt.Errorf("cluster: reply to closed connection %d", conn)
	}
	return tc.writeFrame(frame)
}

// CloseAccept stops accepting new connections without disturbing the
// ones already up: the first stage of a graceful shutdown, where the
// daemon drains in-flight roundtrips before Close tears the rest down.
// Idempotent; Close after CloseAccept closes the listener again, which
// is a no-op.
func (t *TCPTransport) CloseAccept() error {
	return t.ln.Close()
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.once.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for _, tc := range t.conns {
			tc.c.Close()
		}
		for i := range t.peers {
			if tc := t.peers[i].conn; tc != nil {
				tc.c.Close()
			}
		}
		t.mu.Unlock()
	})
	return nil
}
