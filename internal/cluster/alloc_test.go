package cluster

import (
	"runtime"
	"testing"

	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
)

// allocGate runs one 4-shard zipf serving phase and returns the result
// plus the whole-process Mallocs delta around it — the backstop for
// allocation sites the per-worker tracked ledger does not know about.
func allocGate(t *testing.T, sink *telemetry.Sink) (*Result, uint64) {
	t.Helper()
	deps, _ := testDeployments(t, 64, 7)
	dep := deps["stretch6"]
	cfg := Config{
		Shards: 4, Workers: 1, Packets: 20000,
		Workload: traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
		Seed:     5, InFlight: 512, Batch: 64,
		Sink: sink,
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := Run(dep, cfg)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != cfg.Packets {
		t.Fatalf("served %d of %d packets", res.Packets, cfg.Packets)
	}
	return res, after.Mallocs - before.Mallocs
}

// TestClusterZeroAllocsPerRoundtrip is the crossing-path allocation
// gate: with flight frames patched in place, recycled frame slabs and
// batched completion tracking, a steady-state roundtrip allocates
// nothing on the serving path. The process-wide Mallocs delta still
// sees the one-time warmup — goroutine stacks, first-batch slab
// growth, histogram spine — so the gate is amortized: well under one
// allocation per roundtrip, where a single per-crossing allocation
// would show up as ~7 and a single per-roundtrip allocation as 1. The
// per-worker tracked ledger (the Result's own AllocsPerRT) must stay
// under the same bound and under the process-wide count it refines.
func TestClusterZeroAllocsPerRoundtrip(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	res, mallocs := allocGate(t, nil)
	if perRT := float64(mallocs) / float64(res.Packets); perRT >= 0.25 {
		t.Fatalf("%.3f process allocs per roundtrip (%d over %d roundtrips), want amortized zero (< 0.25)",
			perRT, mallocs, res.Packets)
	}
	if perRT := res.AllocsPerRT(); perRT >= 0.25 {
		t.Fatalf("%.3f tracked allocs per roundtrip (%d over %d roundtrips), want amortized zero (< 0.25)",
			perRT, res.TrackedAllocs, res.Packets)
	}
	if uint64(res.TrackedAllocs) > mallocs {
		t.Fatalf("tracked allocs %d exceed process mallocs %d — the ledger overcounts", res.TrackedAllocs, mallocs)
	}
}

// TestClusterZeroAllocsWithSink re-runs the gate with a telemetry sink
// attached at default sampling: the observability plane must not spend
// the allocation budget it exists to audit. Publish copies, sampled
// laps and the heat sketch all reuse per-probe storage, so the only
// added steady-state allocations are the sink's own construction —
// amortized to zero over the run.
func TestClusterZeroAllocsWithSink(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	shape := Config{Shards: 4, Workers: 1}.SinkShape()
	shape.TraceEvery = 1024
	sink := telemetry.New(shape)
	res, mallocs := allocGate(t, sink)
	if perRT := float64(mallocs) / float64(res.Packets); perRT >= 0.25 {
		t.Fatalf("%.3f process allocs per roundtrip with sink attached (%d over %d roundtrips), want < 0.25",
			perRT, mallocs, res.Packets)
	}
	snap := sink.Snapshot()
	if snap.Totals.Packets != res.Packets {
		t.Fatalf("sink saw %d packets, run served %d", snap.Totals.Packets, res.Packets)
	}
}
