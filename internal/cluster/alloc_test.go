package cluster

import (
	"testing"

	"rtroute/internal/traffic"
)

// TestClusterZeroAllocsPerRoundtrip is the crossing-path allocation
// gate: with flight frames patched in place, recycled frame slabs and
// batched completion tracking, a steady-state roundtrip allocates
// nothing on the serving path. The run's Mallocs counter (measured
// across the whole serving phase) still sees the one-time warmup —
// goroutine stacks, first-batch slab growth, histogram spine — so the
// gate is amortized: well under one allocation per roundtrip, where a
// single per-crossing allocation would show up as ~7 and a single
// per-roundtrip allocation as 1.
func TestClusterZeroAllocsPerRoundtrip(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	deps, _ := testDeployments(t, 64, 7)
	dep := deps["stretch6"]
	cfg := Config{
		Shards: 4, Workers: 1, Packets: 20000,
		Workload: traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
		Seed:     5, InFlight: 512, Batch: 64,
	}
	res, err := Run(dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != cfg.Packets {
		t.Fatalf("served %d of %d packets", res.Packets, cfg.Packets)
	}
	if perRT := res.AllocsPerRT(); perRT >= 0.25 {
		t.Fatalf("%.3f allocs per roundtrip (%d over %d roundtrips), want amortized zero (< 0.25)",
			perRT, res.Mallocs, res.Packets)
	}
}
