package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
)

// TestWindowOccupancy locks the credit window's arithmetic: bulk Take
// capped at availability, Put sampling occupancy as size minus credits
// after return, Occupancy as the mean of those samples, and Take
// yielding 0 once done closes.
func TestWindowOccupancy(t *testing.T) {
	w := NewWindow(4)
	done := make(chan struct{})
	if w.Size() != 4 {
		t.Fatalf("Size() = %d, want 4", w.Size())
	}
	if got := w.Take(2, done); got != 2 {
		t.Fatalf("Take(2) = %d, want 2", got)
	}
	if got := w.Occupancy(); got != 0 {
		t.Fatalf("Occupancy before any Put = %f, want 0", got)
	}
	// Two in flight, one completes: 3 credits back in the window, so
	// the sample is 1. The second completion samples 0.
	w.Put(1)
	w.Put(1)
	if got := w.Occupancy(); got != 0.5 {
		t.Fatalf("Occupancy = %f, want 0.5 (samples 1 and 0)", got)
	}
	// Bulk Take never over-claims: a burst of 10 gets what is there.
	if got := w.Take(10, done); got != 4 {
		t.Fatalf("Take(10) on a full window of 4 = %d, want 4", got)
	}
	close(done)
	if got := w.Take(1, done); got != 0 {
		t.Fatalf("Take on an empty window with done closed = %d, want 0 (shutdown)", got)
	}
}

// TestWindowConcurrent exercises the window's atomics under the race
// detector: takers and putters on all sides, credits conserved.
func TestWindowConcurrent(t *testing.T) {
	const (
		size  = 8
		procs = 4
		iters = 2000
	)
	w := NewWindow(size)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := w.Take(3, done)
				if n == 0 {
					t.Error("Take returned 0 without shutdown")
					return
				}
				w.Put(n)
			}
		}()
	}
	wg.Wait()
	if got := w.Take(size, done); got != size {
		t.Fatalf("after balanced Take/Put, %d credits available, want %d", got, size)
	}
	// On a single-core host the goroutines may serialize perfectly
	// (every Put refills the window), so 0 is a legal mean; only the
	// upper bound is guaranteed.
	if occ := w.Occupancy(); occ < 0 || occ > size {
		t.Fatalf("Occupancy = %f, want in [0, %d]", occ, size)
	}
}

// TestClusterLiveSnapshot runs the in-process cluster with a sink
// attached and a poller hammering Snapshot/Sub concurrently with the
// serving loop — the -race certification that live reads never tear —
// then pins the end-of-run contract: the final snapshot's counters
// equal the engine's own Result, shard by shard and in total, because
// workers publish copies of the same stats structs the Result merges.
func TestClusterLiveSnapshot(t *testing.T) {
	deps, _ := testDeployments(t, 64, 7)
	dep := deps["stretch6"]
	cfg := Config{
		Shards: 4, Workers: 2, Packets: 10000,
		Workload: traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
		Seed:     5, InFlight: 256, Batch: 64,
	}
	shape := cfg.SinkShape()
	shape.TraceEvery = 64 // recorder on, so traced frames race the poller too
	sink := telemetry.New(shape)
	cfg.Sink = sink

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var prev *telemetry.Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := sink.Snapshot()
			if diff := snap.Sub(prev); diff.Totals.Packets < 0 {
				t.Error("snapshot diff went backwards")
				return
			}
			sink.Events(0)
			prev = snap
		}
	}()

	res, err := Run(dep, cfg)
	close(stop)
	pollWG.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != cfg.Packets {
		t.Fatalf("served %d of %d packets", res.Packets, cfg.Packets)
	}

	// Workers publish once more on exit, so the final snapshot is exact.
	snap := sink.Snapshot()
	if snap.Totals.Packets != res.Packets || snap.Totals.Hops != res.Hops || snap.Totals.Weight != res.Weight {
		t.Fatalf("snapshot totals (%d pkts, %d hops, %d weight) != result (%d, %d, %d)",
			snap.Totals.Packets, snap.Totals.Hops, snap.Totals.Weight, res.Packets, res.Hops, res.Weight)
	}
	if snap.Injectors == nil || snap.Injectors.Injects != res.Packets {
		t.Fatalf("injector snapshot %+v, want %d injects", snap.Injectors, res.Packets)
	}
	if snap.Totals.Allocs != res.TrackedAllocs {
		t.Fatalf("snapshot allocs %d != result tracked allocs %d", snap.Totals.Allocs, res.TrackedAllocs)
	}
	for i, st := range res.PerShard {
		got := snap.Shards[i]
		want := telemetry.Counters{
			Packets: st.Packets, Hops: st.Hops, Weight: st.Weight,
			FramesIn: st.FramesIn, FramesOut: st.FramesOut,
			Errors: st.Errors, Allocs: st.Allocs,
		}
		if got.Counters != want {
			t.Fatalf("shard %d snapshot %+v != result stats %+v", i, got.Counters, want)
		}
		if got.Batches <= 0 {
			t.Fatalf("shard %d published no batches", i)
		}
	}
	// Run registers the window gauges on the sink it was handed.
	var sawSize bool
	for _, g := range snap.Gauges {
		if g.Name == "window_size" {
			sawSize = true
			if g.Value != float64(res.InFlight) {
				t.Fatalf("window_size gauge %f, want %d", g.Value, res.InFlight)
			}
		}
	}
	if !sawSize {
		t.Fatalf("window_size gauge not registered; gauges: %+v", snap.Gauges)
	}
}

// metricsDoc is the /metrics JSON root the daemons serve.
type metricsDoc struct {
	Telemetry telemetry.Snapshot `json:"telemetry"`
	Shard     int                `json:"shard"`
}

// TestTCPMetricsEndpoint is the serving-plane end-to-end test: two
// loopback TCP daemons, each with its own sink and telemetry HTTP
// endpoint, a client running tagged roundtrips — then the acceptance
// contract itself: the counters scraped over /metrics equal the
// shard's own Stats() exactly, and /trace?rt=1 replays the recorded
// hop events.
func TestTCPMetricsEndpoint(t *testing.T) {
	deps, _ := testDeployments(t, 32, 9)
	dep := deps["stretch6"]
	const shards = 2
	place, err := NewPlacement(dep, shards, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	dep.Graph().Seal()

	lns := make([]net.Listener, shards)
	addrs := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*TCPTransport, shards)
	ss := make([]*Shard, shards)
	sinks := make([]*telemetry.Sink, shards)
	httpAddrs := make([]string, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		trs[i] = NewTCPTransport(i, lns[i], addrs)
		view, err := dep.ShardView(i, place.Owner)
		if err != nil {
			t.Fatal(err)
		}
		// One sink per daemon, exactly as rtserve wires it: one shard
		// row labeled with the daemon's shard number, tracing every
		// tagged roundtrip.
		sinks[i] = telemetry.New(telemetry.Config{
			Shards: []int{i}, Workers: 2, TraceEvery: 1,
		})
		shard := i
		srv, bound, err := telemetry.Serve("127.0.0.1:0", sinks[i], func() map[string]any {
			return map[string]any{"shard": shard}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		httpAddrs[i] = bound
		ss[i] = NewShard(view, place, trs[i], Options{Workers: 2, Sink: sinks[i], SinkShard: 0})
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			if err := sh.Serve(); err != nil {
				t.Errorf("shard %d: %v", sh.Index(), err)
			}
		}(ss[i])
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
		wg.Wait()
	}()

	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for src := int32(0); src < 32; src += 3 {
		if _, _, err := cl.Roundtrip(src, (src+7)%32); err != nil {
			t.Fatalf("roundtrip %d: %v", src, err)
		}
	}

	// The exactness contract: what /metrics serves equals Stats().
	// Workers publish at batch boundaries just after the client sees
	// its completion, so poll until the last publish lands.
	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < shards; i++ {
		st := ss[i].Stats()
		want := telemetry.Counters{
			Packets: st.Packets, Hops: st.Hops, Weight: st.Weight,
			FramesIn: st.FramesIn, FramesOut: st.FramesOut,
			Errors: st.Errors, Allocs: st.Allocs,
		}
		var doc metricsDoc
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := client.Get("http://" + httpAddrs[i] + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("GET /metrics on daemon %d: status %d, err %v", i, resp.StatusCode, err)
			}
			doc = metricsDoc{}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("daemon %d /metrics JSON: %v\n%s", i, err, body)
			}
			if doc.Telemetry.Totals == want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("daemon %d /metrics never matched Stats(): got %+v, want %+v",
					i, doc.Telemetry.Totals, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if doc.Shard != i {
			t.Fatalf("daemon %d /metrics extra field shard = %d", i, doc.Shard)
		}
		if len(doc.Telemetry.Shards) != 1 || doc.Telemetry.Shards[0].Shard != i {
			t.Fatalf("daemon %d snapshot shard rows: %+v", i, doc.Telemetry.Shards)
		}

		// The Prometheus rendering serves the same packet counter.
		resp, err := client.Get(fmt.Sprintf("http://%s/metrics?format=prometheus", httpAddrs[i]))
		if err != nil {
			t.Fatal(err)
		}
		prom, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		wantLine := fmt.Sprintf("rtroute_packets_total{shard=%q} %d", fmt.Sprint(i), st.Packets)
		if !strings.Contains(string(prom), wantLine) {
			t.Fatalf("daemon %d prometheus output misses %q:\n%s", i, wantLine, prom)
		}
	}

	// Every Roundtrip is tagged rt=1 and TraceEvery is 1, so both
	// daemons' recorders hold the hop history; merged across daemons it
	// must include the inject and the completion.
	seen := map[string]bool{}
	for i := 0; i < shards; i++ {
		resp, err := client.Get("http://" + httpAddrs[i] + "/trace?rt=1")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var events []telemetry.Event
		if err := json.Unmarshal(body, &events); err != nil {
			t.Fatalf("daemon %d /trace JSON: %v\n%s", i, err, body)
		}
		for _, ev := range events {
			if ev.Rt != 1 {
				t.Fatalf("daemon %d trace leaked rt %d into rt=1 filter", i, ev.Rt)
			}
			seen[ev.Kind.String()] = true
		}
	}
	for _, kind := range []string{"inject", "hop", "flip", "complete"} {
		if !seen[kind] {
			t.Fatalf("no %q event recorded across daemons; saw %v", kind, seen)
		}
	}

	// The pprof surface answers (contents are the runtime's business).
	resp, err := client.Get("http://" + httpAddrs[0] + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ status %d", resp.StatusCode)
	}
}
