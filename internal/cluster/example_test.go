package cluster_test

import (
	"fmt"
	"math/rand"

	"rtroute/internal/cluster"
	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/traffic"
)

// Example shards a deployed scheme across an in-process 8-shard
// cluster and serves a deterministic workload through it: packets that
// cross shard boundaries travel as wire-encoded frames over the
// channel bus, and the aggregates are exactly those of a sequential
// single-process replay of the same pair multiset.
func Example() {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomSC(48, 192, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(48, rng)
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(11)), core.Stretch6Config{})
	if err != nil {
		fmt.Println(err)
		return
	}
	dep, err := core.Deploy(s6)
	if err != nil {
		fmt.Println(err)
		return
	}

	res, err := cluster.Run(dep, cluster.Config{
		Shards:    8,
		Placement: cluster.RTZAligned,
		Packets:   4000,
		Seed:      1,
		Workload:  traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("packets:", res.Packets, "hops:", res.Hops, "weight:", res.Weight)
	fmt.Println("crossed shard boundaries:", res.CrossShard > 0)
	// Output:
	// packets: 4000 hops: 32795 weight: 85259
	// crossed shard boundaries: true
}
