package cluster

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"rtroute/internal/sim"
	"rtroute/internal/wire"
)

// TestTCPFlappingPeer locks the peer link state machine: a link that
// was up and breaks must fail sends fast with *PeerDownError — not
// block the send path in the dial-retry loop — and must recover on its
// own once the peer is back, via the background redialer.
func TestTCPFlappingPeer(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	trA := NewTCPTransport(0, lnA, addrs)
	defer trA.Close()
	trB := NewTCPTransport(1, lnB, addrs)

	frame := []byte("ping")
	if err := trA.Send(1, frame); err != nil {
		t.Fatalf("send on fresh link: %v", err)
	}
	if got, err := trB.Recv(); err != nil || string(got[0].Data) != "ping" {
		t.Fatalf("recv on fresh link: %v %q", err, got)
	}

	// Kill the peer. The established link keeps absorbing writes until
	// the kernel surfaces the reset, so spin until the failure lands —
	// it must be the typed error, and it must arrive well before the
	// inline dial-retry budget (the old behavior blocked here for
	// tcpDialRetries * tcpDialBackoff = 10s).
	trB.Close()
	var sendErr error
	start := time.Now()
	for time.Since(start) < 5*time.Second {
		if sendErr = trA.Send(1, frame); sendErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	var down *PeerDownError
	if !errors.As(sendErr, &down) {
		t.Fatalf("send to dead peer: got %v, want *PeerDownError", sendErr)
	}
	if down.Shard != 1 {
		t.Fatalf("PeerDownError.Shard = %d, want 1", down.Shard)
	}
	if downs, _ := trA.LinkStats(); downs < 1 {
		t.Fatalf("LinkStats peerDowns = %d after a link broke, want >= 1", downs)
	}
	failStart := time.Now()
	if err := trA.Send(1, frame); !errors.As(err, &down) {
		t.Fatalf("send while down: got %v, want *PeerDownError", err)
	}
	if d := time.Since(failStart); d > tcpDialBackoff {
		t.Fatalf("send while down took %v; must fail fast, not redial inline", d)
	}

	// Bring the peer back on the same address. The background redialer
	// owns recovery: keep probing with sends until one goes through.
	lnB2, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	trB2 := NewTCPTransport(1, lnB2, addrs)
	defer trB2.Close()
	recovered := false
	for start = time.Now(); time.Since(start) < 10*time.Second; {
		if err := trA.Send(1, frame); err == nil {
			recovered = true
			break
		} else if !errors.As(err, &down) {
			t.Fatalf("send during recovery: got %v, want *PeerDownError", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("link never recovered after peer restart")
	}
	if got, err := trB2.Recv(); err != nil || string(got[0].Data) != "ping" {
		t.Fatalf("recv after recovery: %v %q", err, got)
	}
	// Recovery goes through the background redialer only (the inline
	// path fails fast once a link has been up), so the redial counter
	// must have moved; the down counter records the one transition.
	downs, redials := trA.LinkStats()
	if redials < 1 {
		t.Fatalf("LinkStats redials = %d after background recovery, want >= 1", redials)
	}
	if downs < 1 {
		t.Fatalf("LinkStats peerDowns = %d after flap, want >= 1", downs)
	}
}

// TestTCPLoopback is the network smoke test: two shard daemons over
// loopback TCP, a client dialed into shard 0, and roundtrips whose
// certified totals must match the single-process tracer — including
// injects for sources shard 0 does not own (the re-route path) and
// completions that travel shard 1 -> shard 0 -> client.
func TestTCPLoopback(t *testing.T) {
	deps, _ := testDeployments(t, 32, 9)
	dep := deps["stretch6"]
	const shards = 2
	place, err := NewPlacement(dep, shards, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	dep.Graph().Seal()

	lns := make([]net.Listener, shards)
	addrs := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*TCPTransport, shards)
	ss := make([]*Shard, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		trs[i] = NewTCPTransport(i, lns[i], addrs)
		view, err := dep.ShardView(i, place.Owner)
		if err != nil {
			t.Fatal(err)
		}
		ss[i] = NewShard(view, place, trs[i], Options{Workers: 2})
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			if err := sh.Serve(); err != nil {
				t.Errorf("shard %d: %v", sh.Index(), err)
			}
		}(ss[i])
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
		wg.Wait()
	}()

	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	kind, nodes, nshards, err := cl.Info()
	if err != nil {
		t.Fatal(err)
	}
	if kind != dep.Kind() || nodes != 32 || nshards != shards {
		t.Fatalf("info reported (%v, %d, %d), want (%v, 32, %d)", kind, nodes, nshards, dep.Kind(), shards)
	}

	// Pair names chosen so that both shards see injects: names are a
	// random permutation, so walking all (src, src+7) pairs covers
	// sources on both sides of the partition.
	served := 0
	for src := int32(0); src < 32; src += 3 {
		dst := (src + 7) % 32
		out, back, err := cl.Roundtrip(src, dst)
		if err != nil {
			t.Fatalf("roundtrip %d->%d: %v", src, dst, err)
		}
		want, err := sim.Roundtrip(dep, src, dst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int(out.Hops) != want.Out.Hops || out.Weight != want.Out.Weight ||
			int(back.Hops) != want.Back.Hops || back.Weight != want.Back.Weight {
			t.Fatalf("roundtrip %d->%d: cluster (out %d/%d, back %d/%d), tracer (out %d/%d, back %d/%d)",
				src, dst, out.Hops, out.Weight, back.Hops, back.Weight,
				want.Out.Hops, want.Out.Weight, want.Back.Hops, want.Back.Weight)
		}
		if int(out.MaxHeaderWords) != want.Out.MaxHeaderWords || int(back.MaxHeaderWords) != want.Back.MaxHeaderWords {
			t.Fatalf("roundtrip %d->%d: header words (%d,%d), tracer (%d,%d)",
				src, dst, out.MaxHeaderWords, back.MaxHeaderWords,
				want.Out.MaxHeaderWords, want.Back.MaxHeaderWords)
		}
		served++
	}
	if served == 0 {
		t.Fatal("no roundtrips served")
	}

	// A garbage segment must not take the daemon down: the shard drops
	// it (non-strict) and keeps serving this very connection.
	if err := (&tcpConn{c: cl.conn}).writeFrame([]byte("not a frame")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Roundtrip(1, 2); err != nil {
		t.Fatalf("roundtrip after garbage frame: %v", err)
	}
	if st := ss[0].Stats(); st.Errors == 0 {
		t.Fatal("garbage frame was not counted as an error")
	}

	// Hostile but well-formed frames must not take the daemon down
	// either: an out-of-range At (would index the placement), and
	// negative leg totals (would inflate the hop budget).
	hostile, err := wire.MarshalFrame(&wire.Frame{
		Kind: wire.FramePacket, SrcName: 1, DstName: 2, At: -7,
		Home: wire.HomeLocal, Header: []byte{0xff},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&tcpConn{c: cl.conn}).writeFrame(hostile); err != nil {
		t.Fatal(err)
	}
	negHops, err := wire.MarshalFrame(&wire.Frame{
		Kind: wire.FramePacket, SrcName: 1, DstName: 2, At: 0,
		Out:  wire.LegTotals{Hops: -1 << 30},
		Home: wire.HomeLocal, Header: []byte{0xff},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := (&tcpConn{c: cl.conn}).writeFrame(negHops); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Roundtrip(2, 9); err != nil {
		t.Fatalf("roundtrip after hostile frames: %v", err)
	}
}

// TestTCPPeerDeathDetectedByMonitor locks the dialed side's read loop:
// a peer that dies must be marked down by the monitor's blocking Read —
// with no writes issued at all — so the very first send after the death
// fails fast and typed instead of pumping writes into a dead socket
// until the kernel surfaces the reset. Also checks the symmetric half:
// a frame the peer writes back on the dialed link is delivered like
// accepted-side traffic.
func TestTCPPeerDeathDetectedByMonitor(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	trA := NewTCPTransport(0, lnA, addrs)
	defer trA.Close()
	trB := NewTCPTransport(1, lnB, addrs)

	if err := trA.Send(1, []byte("ping")); err != nil {
		t.Fatalf("send on fresh link: %v", err)
	}
	got, err := trB.Recv()
	if err != nil || string(got[0].Data) != "ping" {
		t.Fatalf("recv on fresh link: %v %q", err, got)
	}
	// The peer replies on the accepted conn — the same socket as A's
	// dialed link — and A's monitor must hand it to the inbox.
	if err := trB.Reply(got[0].Conn, []byte("pong")); err != nil {
		t.Fatalf("reply on accepted conn: %v", err)
	}
	if got, err := trA.Recv(); err != nil || string(got[0].Data) != "pong" {
		t.Fatalf("recv on dialed link: %v %q", err, got)
	}

	// Kill the peer and issue NO sends: the monitor alone must flip the
	// link down.
	trB.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if downs, _ := trA.LinkStats(); downs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never marked the dead peer down (no writes issued)")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	var down *PeerDownError
	if err := trA.Send(1, []byte("ping")); !errors.As(err, &down) {
		t.Fatalf("first send after peer death: got %v, want *PeerDownError", err)
	}
	if d := time.Since(start); d > tcpDialBackoff {
		t.Fatalf("first send after peer death took %v; must fail fast", d)
	}
}

// TestTCPPeerFlapMidBatch kills the peer while a SendBatch is wedged
// mid-write against full socket buffers. The monitor's read error closes
// the conn, which unblocks the in-flight write, so the wedged send must
// return *PeerDownError promptly — never hang.
func TestTCPPeerFlapMidBatch(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The peer is a raw listener that accepts and never reads, so the
	// sender's socket buffers fill and a batch write blocks in the kernel.
	sink, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), sink.Addr().String()}
	trA := NewTCPTransport(0, lnA, addrs)
	defer trA.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		if c, err := sink.Accept(); err == nil {
			accepted <- c
		}
	}()

	big := make([]byte, 1<<20)
	done := make(chan error, 1)
	go func() {
		for {
			if err := trA.SendBatch(1, []InFrame{{Data: big}}); err != nil {
				done <- err
				return
			}
		}
	}()

	var peerConn net.Conn
	select {
	case peerConn = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("sender never dialed the peer")
	}
	// Give the sender time to wedge against the unread socket...
	time.Sleep(200 * time.Millisecond)
	// ...then kill the peer mid-batch: accepted conn and listener both.
	peerConn.Close()
	sink.Close()

	select {
	case err := <-done:
		var down *PeerDownError
		if !errors.As(err, &down) {
			t.Fatalf("mid-batch send after peer death: got %v, want *PeerDownError", err)
		}
		if down.Shard != 1 {
			t.Fatalf("PeerDownError.Shard = %d, want 1", down.Shard)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send still wedged 5s after mid-batch peer death; must fail typed, not hang")
	}
	if downs, _ := trA.LinkStats(); downs < 1 {
		t.Fatalf("LinkStats peerDowns = %d after mid-batch flap, want >= 1", downs)
	}
}
