package cluster

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"rtroute/internal/sim"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// TestPipelinedTCPMatchesSequential certifies out-of-order completion
// end to end: a client keeps a deep window of tagged roundtrips in
// flight over loopback TCP against a live 2-shard cluster, accepts the
// completions in whatever order the shards finish them, and the
// per-pair totals — and the aggregates built from them, including the
// stretch quantiles — must be exactly the sequential single-process
// tracer's.
func TestPipelinedTCPMatchesSequential(t *testing.T) {
	deps, m := testDeployments(t, 48, 13)
	for _, name := range []string{"stretch6", "rtz"} {
		dep := deps[name]
		n := dep.Graph().N()
		const shards = 2
		place, err := NewPlacement(dep, shards, Contiguous)
		if err != nil {
			t.Fatal(err)
		}
		dep.Graph().Seal()

		lns := make([]net.Listener, shards)
		addrs := make([]string, shards)
		for i := range lns {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			lns[i] = ln
			addrs[i] = ln.Addr().String()
		}
		trs := make([]*TCPTransport, shards)
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			trs[i] = NewTCPTransport(i, lns[i], addrs)
			view, err := dep.ShardView(i, place.Owner)
			if err != nil {
				t.Fatal(err)
			}
			sh := NewShard(view, place, trs[i], Options{Workers: 2})
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := sh.Serve(); err != nil {
					t.Errorf("%s: shard %d: %v", name, sh.Index(), err)
				}
			}()
		}

		// Enough pairs to wrap the window several times over, from a
		// seeded rng so the run is reproducible.
		rng := rand.New(rand.NewSource(29))
		pairs := make([]Pair, 512)
		for i := range pairs {
			src := int32(rng.Intn(n))
			dst := int32(rng.Intn(n - 1))
			if dst >= src {
				dst++
			}
			pairs[i] = Pair{Src: src, Dst: dst}
		}

		cl, err := DialClient(addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		got := &Result{}
		var samples []traffic.Sample
		err = cl.Roundtrips(pairs, 128, func(i int, out, back wire.LegTotals) error {
			wOut, wBack, err := sim.RoundtripFlight(dep, pairs[i].Src, pairs[i].Dst, 0)
			if err != nil {
				return err
			}
			if int(out.Hops) != wOut.Hops || out.Weight != wOut.Weight ||
				int(back.Hops) != wBack.Hops || back.Weight != wBack.Weight ||
				int(out.MaxHeaderWords) != wOut.MaxHeaderWords ||
				int(back.MaxHeaderWords) != wBack.MaxHeaderWords {
				t.Fatalf("%s: pair %d (%d->%d): cluster (out %d/%d/%d, back %d/%d/%d) diverges from tracer (out %d/%d/%d, back %d/%d/%d)",
					name, i, pairs[i].Src, pairs[i].Dst,
					out.Hops, out.Weight, out.MaxHeaderWords, back.Hops, back.Weight, back.MaxHeaderWords,
					wOut.Hops, wOut.Weight, wOut.MaxHeaderWords,
					wBack.Hops, wBack.Weight, wBack.MaxHeaderWords)
			}
			got.Packets++
			got.Hops += int64(out.Hops) + int64(back.Hops)
			got.Weight += int64(out.Weight) + int64(back.Weight)
			got.HopHist.Add(int(out.Hops + back.Hops))
			samples = append(samples, traffic.Sample{
				Src: dep.NodeOf(pairs[i].Src), Dst: dep.NodeOf(pairs[i].Dst),
				Weight: out.Weight + back.Weight,
			})
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cl.Close()
		for _, tr := range trs {
			tr.Close()
		}
		wg.Wait()

		if got.Packets != int64(len(pairs)) {
			t.Fatalf("%s: %d completions for %d pairs", name, got.Packets, len(pairs))
		}
		gotQ, err := traffic.StretchQuantiles(m, samples)
		if err != nil {
			t.Fatal(err)
		}
		// The quantiles must equal those of the same pairs served
		// strictly one at a time.
		var seqSamples []traffic.Sample
		for _, p := range pairs {
			wOut, wBack, err := sim.RoundtripFlight(dep, p.Src, p.Dst, 0)
			if err != nil {
				t.Fatal(err)
			}
			seqSamples = append(seqSamples, traffic.Sample{
				Src: dep.NodeOf(p.Src), Dst: dep.NodeOf(p.Dst),
				Weight: wOut.Weight + wBack.Weight,
			})
		}
		wantQ, err := traffic.StretchQuantiles(m, seqSamples)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotQ, wantQ) {
			t.Fatalf("%s: pipelined stretch quantiles %+v diverge from sequential %+v", name, gotQ, wantQ)
		}
	}
}

// reorderEndpoint is the delivery adversary: it shuffles every batch it
// hands to the shard and randomly holds a suffix back for a later call,
// so frames cross and overtake far more aggressively than loopback TCP
// ever would. It never holds frames while letting a worker block: any
// held frames are returned by the next Recv or TryRecv before the
// underlying (blocking) receive is consulted, and holding only happens
// on calls that return at least one frame to a worker that will call
// again.
type reorderEndpoint struct {
	Transport
	mu   sync.Mutex
	rng  *rand.Rand
	held []InFrame
}

func (r *reorderEndpoint) takeHeld() ([]InFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.held) == 0 {
		return nil, false
	}
	out := r.held
	r.held = nil
	return out, true
}

// scramble shuffles frames and holds back a random suffix (never all of
// them) for a later call.
func (r *reorderEndpoint) scramble(frames []InFrame) []InFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng.Shuffle(len(frames), func(i, j int) { frames[i], frames[j] = frames[j], frames[i] })
	if len(frames) > 1 {
		keep := 1 + r.rng.Intn(len(frames))
		r.held = append(r.held, frames[keep:]...)
		frames = frames[:keep]
	}
	return frames
}

func (r *reorderEndpoint) Recv() ([]InFrame, error) {
	if out, ok := r.takeHeld(); ok {
		return out, nil
	}
	frames, err := r.Transport.Recv()
	if err != nil {
		return nil, err
	}
	// Merge whatever else is already queued so the shuffle has
	// something to reorder across.
	for len(frames) < 1024 {
		more, ok, err := r.Transport.TryRecv()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		frames = append(frames, more...)
	}
	return r.scramble(frames), nil
}

func (r *reorderEndpoint) TryRecv() ([]InFrame, bool, error) {
	if out, ok := r.takeHeld(); ok {
		return out, true, nil
	}
	frames, ok, err := r.Transport.TryRecv()
	if err != nil || !ok {
		return nil, ok, err
	}
	return r.scramble(frames), true, nil
}

// TestClusterSurvivesReorderingAdversary re-runs the tentpole
// certification with the adversary spliced into every shard's endpoint:
// aggressive cross-batch reordering must not change a single aggregate,
// because roundtrip identity travels in the frames, not in delivery
// order.
func TestClusterSurvivesReorderingAdversary(t *testing.T) {
	deps, m := testDeployments(t, 64, 7)
	for name, dep := range deps {
		cfg := Config{
			Shards: 8, Workers: 2, Packets: 2000,
			Workload: traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
			Seed:     11, Oracle: m, SampleEvery: 3, InFlight: 64, Batch: 16,
			wrapEndpoint: func(shard int, tr Transport) Transport {
				return &reorderEndpoint{Transport: tr, rng: rand.New(rand.NewSource(int64(100 + shard)))}
			},
		}
		got, err := Run(dep, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := replay(t, dep, cfg)
		if got.Packets != want.Packets || got.Hops != want.Hops || got.Weight != want.Weight {
			t.Fatalf("%s: totals (packets,hops,weight) = (%d,%d,%d), replay (%d,%d,%d)",
				name, got.Packets, got.Hops, got.Weight, want.Packets, want.Hops, want.Weight)
		}
		if !reflect.DeepEqual(got.HopHist, want.HopHist) || !reflect.DeepEqual(got.HdrHist, want.HdrHist) {
			t.Fatalf("%s: histograms diverge from sequential replay under reordering", name)
		}
		if got.Sampled != want.Sampled || !reflect.DeepEqual(got.Stretch, want.Stretch) {
			t.Fatalf("%s: stretch quantiles %+v over %d samples, replay %+v over %d",
				name, got.Stretch, got.Sampled, want.Stretch, want.Sampled)
		}
	}
}
