package cluster

import (
	"errors"
	"fmt"
	"sync"

	"rtroute/internal/core"
	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// ShardStats is one shard's serving record, shaped like the traffic
// engine's per-worker stats so cluster and single-process reports read
// line for line: Packets/Hops/Weight count the roundtrips *completed*
// at this shard (a roundtrip completes where its source lives), while
// FramesIn/FramesOut count the packet frames this shard exchanged with
// other shards — the cross-boundary traffic the placement policies
// compete on.
type ShardStats struct {
	Shard   int
	Nodes   int
	Packets int64
	Hops    int64
	Weight  int64
	// FramesIn / FramesOut are packet frames received from / shipped to
	// other shards (injects and completion reports excluded).
	FramesIn  int64
	FramesOut int64
	// Errors counts malformed or undeliverable frames dropped in
	// non-strict (daemon) mode.
	Errors int64
}

// shardWorker is one worker goroutine's private state: counters,
// histograms, samples and scratch, touched by exactly one goroutine
// until the post-run merge.
type shardWorker struct {
	stats   ShardStats
	hopHist eval.Hist
	hdrHist eval.Hist
	samples []traffic.Sample
	frame   wire.Frame
	// hdec decodes arriving packet headers into reusable storage; a
	// decoded header lives only for the one advance() call, so one
	// scratch per worker suffices.
	hdec wire.HeaderDecoder
	// inject is the reusable injection header (ResetHeader per
	// roundtrip, the traffic engine's allocation discipline).
	inject sim.Header
	// sizeHint right-sizes outbound frame buffers from the sizes seen
	// so far.
	sizeHint int
	// pending accumulates outbound frames per destination shard while a
	// received batch is processed; flush ships each destination's
	// accumulation as one transport message.
	pending [][]InFrame
	// free recycles fully-processed inbound frame buffers as outbound
	// marshal buffers, keeping the crossing hot path allocation-free in
	// steady state.
	free [][]byte
}

// outBuf pops a recycled buffer (or nil) for an outbound frame.
func (st *shardWorker) outBuf() []byte {
	if n := len(st.free); n > 0 {
		b := st.free[n-1]
		st.free = st.free[:n-1]
		return b[:0]
	}
	return make([]byte, 0, st.sizeHint)
}

// recycle returns a dead inbound buffer to the worker's free list.
func (st *shardWorker) recycle(b []byte) {
	if cap(b) > 0 && len(st.free) < 64 {
		st.free = append(st.free, b)
	}
}

// Options tunes a Shard.
type Options struct {
	// Workers is this shard's serving pool size (default 1).
	Workers int
	// Batch bounds how many outbound frames a worker accumulates per
	// destination shard before an early flush (default 64). Received
	// batch sizes are whatever the senders accumulated.
	Batch int
	// MaxHops bounds each leg (0 = sim's default 4n budget).
	MaxHops int
	// Strict aborts the worker on any error (the in-process engine's
	// mode, where an error means a broken invariant). Non-strict mode
	// — the network daemon's — drops the offending frame, counts it,
	// and keeps serving: a hostile client frame must not take the
	// shard down.
	Strict bool
	// OnDone, when non-nil, observes every roundtrip completed with
	// Home == HomeLocal (the in-process engine's completion hook).
	OnDone func(*wire.Frame)
}

// Shard is one serving process of a cluster: the ShardView holding its
// nodes' routers, the placement that says who owns everything else, and
// a transport to ship boundary-crossing packets as wire frames. The
// same Shard runs under the in-process engine (Run) and the network
// daemon (Serve); only the transport differs.
type Shard struct {
	view    *core.ShardView
	place   *Placement
	tr      Transport
	opts    Options
	info    wire.Frame
	workers []shardWorker
}

// NewShard assembles one shard over its view, placement and transport.
func NewShard(view *core.ShardView, place *Placement, tr Transport, opts Options) *Shard {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Batch < 1 {
		opts.Batch = 64
	}
	s := &Shard{
		view: view, place: place, tr: tr, opts: opts,
		workers: make([]shardWorker, opts.Workers),
	}
	s.info = wire.Frame{
		Kind:       wire.FrameInfo,
		SchemeKind: view.Deployment().Kind(),
		Nodes:      int32(view.Graph().N()),
		Shards:     int32(place.Shards),
	}
	return s
}

// Index returns the shard's index.
func (s *Shard) Index() int { return s.view.Shard() }

// Stats merges the shard's per-worker counters (call after the workers
// have stopped, or accept a racy snapshot).
func (s *Shard) Stats() ShardStats {
	out := ShardStats{Shard: s.view.Shard(), Nodes: s.view.NodeCount()}
	for i := range s.workers {
		w := &s.workers[i].stats
		out.Packets += w.Packets
		out.Hops += w.Hops
		out.Weight += w.Weight
		out.FramesIn += w.FramesIn
		out.FramesOut += w.FramesOut
		out.Errors += w.Errors
	}
	return out
}

// hists merges the shard's histograms and samples into the caller's.
func (s *Shard) hists(hop, hdr *eval.Hist, samples *[]traffic.Sample) {
	for i := range s.workers {
		hop.Merge(&s.workers[i].hopHist)
		hdr.Merge(&s.workers[i].hdrHist)
		*samples = append(*samples, s.workers[i].samples...)
	}
}

// Serve pumps the shard's mailbox with its worker pool until the
// transport closes, then returns the first worker error (nil on clean
// shutdown). This is the daemon loop rtserve runs and the body the
// in-process engine spawns per shard.
func (s *Shard) Serve() error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.workers))
	for w := range s.workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = s.worker(w)
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// worker is one mailbox pump: block for a batch, handle each frame,
// then flush everything the batch emitted — one transport message per
// destination shard, the send-side half of the batching discipline.
func (s *Shard) worker(w int) error {
	st := &s.workers[w]
	st.pending = make([][]InFrame, s.place.Shards)
	for {
		frames, err := s.tr.Recv()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		// Drain everything immediately available before flushing, so the
		// outbound accumulations grow to the queued work instead of
		// collapsing to singleton batches.
		processed := 0
		for {
			for i := range frames {
				if err := s.handle(st, frames[i]); err != nil {
					if s.opts.Strict {
						return err
					}
					st.stats.Errors++
				}
				// handle never retains the inbound bytes (headers are
				// decoded into the worker's arena before it returns), so
				// the buffer can carry the next outbound frame.
				st.recycle(frames[i].Data)
			}
			processed += len(frames)
			if processed >= 4*s.opts.Batch {
				break
			}
			var ok bool
			if frames, ok, err = s.tr.TryRecv(); err != nil || !ok {
				break
			}
		}
		if err != nil {
			if errors.Is(err, ErrClosed) {
				// Flush is pointless on a closed transport; exit cleanly.
				return nil
			}
			if s.opts.Strict {
				return err
			}
			st.stats.Errors++
		}
		if err := s.flush(st); err != nil {
			if s.opts.Strict && !errors.Is(err, ErrClosed) {
				return err
			}
		}
	}
}

// ship queues one outbound frame, early-flushing a destination that
// reaches the batch bound.
func (s *Shard) ship(st *shardWorker, to int, data []byte) error {
	if to < 0 || to >= len(st.pending) {
		return fmt.Errorf("cluster: frame addressed to unknown shard %d", to)
	}
	st.pending[to] = append(st.pending[to], InFrame{Data: data})
	if len(st.pending[to]) >= s.opts.Batch {
		frames := st.pending[to]
		st.pending[to] = nil
		return s.tr.SendBatch(to, frames)
	}
	return nil
}

// flush ships every destination's accumulated frames. Every frame of a
// batch a transport refuses is counted as dropped — each is a live
// roundtrip — so a daemon with a dead peer shows the loss in its
// errors column instead of reporting a healthy shard.
func (s *Shard) flush(st *shardWorker) error {
	var firstErr error
	for to, frames := range st.pending {
		if len(frames) == 0 {
			continue
		}
		st.pending[to] = nil
		if err := s.tr.SendBatch(to, frames); err != nil {
			st.stats.Errors += int64(len(frames))
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// handle processes one received frame.
func (s *Shard) handle(st *shardWorker, in InFrame) error {
	f := &st.frame
	err := wire.UnmarshalFrame(in.Data, f)
	if err != nil {
		return err
	}
	switch f.Kind {
	case wire.FrameInject:
		// Fresh client injects are stamped with their reply route
		// before anything else, so re-routing preserves it.
		if f.Home == wire.HomeClient {
			f.Home = int32(s.view.Shard())
			f.Origin = in.Conn
		}
		if err := checkName(s.view, f.SrcName); err != nil {
			return err
		}
		if err := checkName(s.view, f.DstName); err != nil {
			return err
		}
		src := s.view.NodeOf(f.SrcName)
		if !s.view.Owns(src) {
			// Header creation is the source's job: route the inject to
			// the shard that owns the source node.
			data, err := wire.MarshalFrame(f, nil)
			if err != nil {
				return err
			}
			return s.ship(st, s.place.Shard(src), data)
		}
		h := st.inject
		if h == nil {
			if h, err = s.view.NewHeader(f.SrcName, f.DstName); err != nil {
				return err
			}
			st.inject = h
		} else if err = s.view.ResetHeader(h, f.SrcName, f.DstName); err != nil {
			return err
		}
		f.Return = false
		f.Out, f.Back = wire.LegTotals{}, wire.LegTotals{}
		return s.advance(st, f, h, sim.Flight{Last: src, MaxHeaderWords: h.Words()})
	case wire.FramePacket:
		st.stats.FramesIn++
		// A packet frame's routing fields are untrusted input on the
		// network transport: validate them before any array access.
		if err := checkName(s.view, f.SrcName); err != nil {
			return err
		}
		if err := checkName(s.view, f.DstName); err != nil {
			return err
		}
		if f.At < 0 || int(f.At) >= s.view.Graph().N() {
			return fmt.Errorf("cluster: packet frame at node %d outside [0,%d)", f.At, s.view.Graph().N())
		}
		h, err := st.hdec.DecodeBare(f.Header)
		if err != nil {
			return err
		}
		f.Header = nil
		var fl sim.Flight
		if !f.Return {
			fl = flightOf(f.Out, f.At)
		} else {
			fl = flightOf(f.Back, f.At)
		}
		return s.advance(st, f, h, fl)
	case wire.FrameDone:
		// A completion report passing through its home shard on the way
		// back to the client connection that injected it.
		return s.tr.Reply(f.Origin, in.Data)
	case wire.FrameInfoReq:
		data, err := wire.MarshalFrame(&s.info, nil)
		if err != nil {
			return err
		}
		return s.tr.Reply(in.Conn, data)
	default:
		return fmt.Errorf("cluster: shard %d received unexpected %d frame", s.view.Shard(), f.Kind)
	}
}

// advance drives a packet as far as this shard can take it: segment by
// segment through the roundtrip protocol — outbound leg, the flip at
// the destination (which is local when the outbound leg delivers here),
// return leg — until the packet either completes or crosses onto a
// foreign node, at which point it is framed (header wire-encoded) and
// shipped to the owner.
func (s *Shard) advance(st *shardWorker, f *wire.Frame, h sim.Header, fl sim.Flight) error {
	g := s.view.Graph()
	for {
		delivered, err := sim.FlySegment(g, s.view, h, &fl, s.opts.MaxHops, s.view.Owns)
		if err != nil {
			return err
		}
		if !delivered {
			if !f.Return {
				f.Out = totalsOf(fl)
			} else {
				f.Back = totalsOf(fl)
			}
			f.At = fl.Last
			f.Kind = wire.FramePacket
			data, err := wire.AppendFrame(st.outBuf(), f, h)
			if err != nil {
				return err
			}
			if len(data) > st.sizeHint {
				st.sizeHint = len(data) + len(data)/4
			}
			st.stats.FramesOut++
			return s.ship(st, s.place.Shard(fl.Last), data)
		}
		if !f.Return {
			dst := s.view.NodeOf(f.DstName)
			if fl.Last != dst {
				return fmt.Errorf("cluster: outbound %d->%d delivered at wrong node %d", f.SrcName, f.DstName, fl.Last)
			}
			f.Out = totalsOf(fl)
			if err := s.view.BeginReturn(h); err != nil {
				return err
			}
			f.Return = true
			fl = sim.Flight{Last: dst, MaxHeaderWords: h.Words()}
			continue
		}
		src := s.view.NodeOf(f.SrcName)
		if fl.Last != src {
			return fmt.Errorf("cluster: return %d->%d delivered at wrong node %d", f.DstName, f.SrcName, fl.Last)
		}
		f.Back = totalsOf(fl)
		return s.complete(st, f)
	}
}

// complete records a finished roundtrip and routes its completion
// report home.
func (s *Shard) complete(st *shardWorker, f *wire.Frame) error {
	hops := int(f.Out.Hops) + int(f.Back.Hops)
	weight := f.Out.Weight + f.Back.Weight
	st.stats.Packets++
	st.stats.Hops += int64(hops)
	st.stats.Weight += int64(weight)
	st.hopHist.Add(hops)
	hw := f.Out.MaxHeaderWords
	if f.Back.MaxHeaderWords > hw {
		hw = f.Back.MaxHeaderWords
	}
	st.hdrHist.Add(int(hw))
	if f.Home == wire.HomeLocal {
		if f.Sampled {
			st.samples = append(st.samples, traffic.Sample{
				Src:    s.view.NodeOf(f.SrcName),
				Dst:    s.view.NodeOf(f.DstName),
				Weight: weight,
			})
		}
		if s.opts.OnDone != nil {
			s.opts.OnDone(f)
		}
		return nil
	}
	done := wire.Frame{
		Kind: wire.FrameDone, SrcName: f.SrcName, DstName: f.DstName,
		Out: f.Out, Back: f.Back, Origin: f.Origin, Sampled: f.Sampled,
	}
	data, err := wire.MarshalFrame(&done, nil)
	if err != nil {
		return err
	}
	if int(f.Home) == s.view.Shard() {
		return s.tr.Reply(f.Origin, data)
	}
	return s.ship(st, int(f.Home), data)
}

func totalsOf(fl sim.Flight) wire.LegTotals {
	return wire.LegTotals{Hops: int32(fl.Hops), Weight: fl.Weight, MaxHeaderWords: int32(fl.MaxHeaderWords)}
}

func flightOf(t wire.LegTotals, at graph.NodeID) sim.Flight {
	return sim.Flight{Hops: int(t.Hops), Weight: t.Weight, MaxHeaderWords: int(t.MaxHeaderWords), Last: at}
}

func checkName(v *core.ShardView, name int32) error {
	if name < 0 || int(name) >= v.Graph().N() {
		return fmt.Errorf("cluster: name %d outside [0,%d)", name, v.Graph().N())
	}
	return nil
}
