package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtroute/internal/churn"
	"rtroute/internal/core"
	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// ShardStats is one shard's serving record, shaped like the traffic
// engine's per-worker stats so cluster and single-process reports read
// line for line: Packets/Hops/Weight count the roundtrips *completed*
// at this shard (a roundtrip completes where its source lives), while
// FramesIn/FramesOut count the packet frames this shard exchanged with
// other shards — the cross-boundary traffic the placement policies
// compete on.
type ShardStats struct {
	Shard   int
	Nodes   int
	Packets int64
	Hops    int64
	Weight  int64
	// FramesIn / FramesOut are packet frames received from / shipped to
	// other shards (injects and completion reports excluded).
	FramesIn  int64
	FramesOut int64
	// Errors counts malformed or undeliverable frames dropped in
	// non-strict (daemon) mode.
	Errors int64
	// Drops / Misroutes count roundtrips lost while the shard converged
	// under churn (Options.Repair armed): a typed unroutable failure —
	// the packet hit an administratively down edge — versus any other
	// forwarding casualty of momentarily stale tables (wrong-node
	// delivery, hop-budget exhaustion, a vanished out-port). Both are
	// accounted completions: the issuer gets a FrameDrop (or OnLost
	// call), never a hang.
	Drops     int64
	Misroutes int64
	// Allocs counts tracked allocation events at the worker's known
	// allocation sites — buffer-pool misses, slab-pool misses, sample
	// growth, the once-per-worker inject header. Per-worker and
	// attributable, unlike a whole-process ReadMemStats delta; the
	// build-tag alloc gate keeps a process-wide measurement as the
	// backstop for sites this ledger does not know about.
	Allocs int64
}

// shardWorker is one worker goroutine's private state: counters,
// histograms, samples and scratch, touched by exactly one goroutine
// until the post-run merge.
type shardWorker struct {
	stats   ShardStats
	hopHist eval.Hist
	hdrHist eval.Hist
	samples []traffic.Sample
	frame   wire.Frame
	// hdec decodes arriving packet headers into reusable storage; a
	// decoded header lives only for the one advance() call, so one
	// scratch per worker suffices.
	hdec wire.HeaderDecoder
	// inject is the reusable injection header (ResetHeader per
	// roundtrip, the traffic engine's allocation discipline).
	inject sim.Header
	// sizeHint right-sizes outbound frame buffers from the sizes seen
	// so far.
	sizeHint int
	// pending accumulates outbound frames per destination shard while a
	// received batch is processed; flush ships each destination's
	// accumulation as one transport message.
	pending [][]InFrame
	// free recycles fully-processed inbound frame buffers as outbound
	// marshal buffers, keeping the crossing hot path allocation-free in
	// steady state.
	free [][]byte
	// slabs recycles received batch slices as pending accumulations, so
	// ship() grows no fresh slice per flushed batch.
	slabs [][]InFrame
	// p is the worker's telemetry probe (nil = telemetry off; every
	// probe method is a nil-receiver no-op).
	p *telemetry.Probe
	// hook records per-hop trace events for roundtrips armed by the
	// trace sampler; trRt/trRet carry the roundtrip tag and leg into
	// the hook without a per-hop closure allocation.
	hook  sim.HopHook
	trRt  uint64
	trRet bool
	// worker is this worker's index, the trace events' tid.
	worker int
	// churn stashes churn batches decoded mid-batch; they are applied
	// after the read fence is released (see applyChurn).
	churn []churnBatch
}

// publish hands the probe a copy of the worker's counters at a batch
// boundary — the reader-visible state /metrics and Snapshot merge, by
// construction field-for-field identical to the end-of-run ShardStats.
func (st *shardWorker) publish() {
	if st.p == nil {
		return
	}
	st.p.Publish(telemetry.Counters{
		Packets: st.stats.Packets, Hops: st.stats.Hops, Weight: st.stats.Weight,
		FramesIn: st.stats.FramesIn, FramesOut: st.stats.FramesOut,
		Errors: st.stats.Errors, Allocs: st.stats.Allocs,
	})
}

// slab pops a recycled batch slice for a pending accumulation, or cuts
// a fresh one at full batch capacity (a single allocation instead of
// append's doubling climb from nil).
func (st *shardWorker) slab(batch int) []InFrame {
	if n := len(st.slabs); n > 0 {
		s := st.slabs[n-1]
		st.slabs = st.slabs[:n-1]
		return s
	}
	st.stats.Allocs++
	return make([]InFrame, 0, batch)
}

// recycleSlab returns a fully-processed received batch slice to the
// worker, keeping only slices that can hold a full outbound batch —
// received batches also include singleton sends (injector frames), and
// pooling their cap-1 backing arrays would make every ship() regrow
// them. The elements are cleared: every buffer in it has already been
// recycled or shipped.
func (st *shardWorker) recycleSlab(frames []InFrame, batch int) {
	if cap(frames) >= batch && len(st.slabs) < 64 {
		clear(frames)
		st.slabs = append(st.slabs, frames[:0])
	}
}

// outBuf pops a recycled buffer (or nil) for an outbound frame.
func (st *shardWorker) outBuf() []byte {
	for n := len(st.free); n > 0; n = len(st.free) {
		b := st.free[n-1]
		st.free = st.free[:n-1]
		if cap(b) >= st.sizeHint {
			return b[:0]
		}
		// Too small for the frames this worker ships: an encode into it
		// would grow (allocate) anyway, and the undersized buffer would
		// come straight back to the list to repeat the miss. Drop it;
		// the pool converges to right-sized buffers.
	}
	st.stats.Allocs++
	return make([]byte, 0, st.sizeHint)
}

// recycle returns a dead inbound buffer to the worker's free list.
func (st *shardWorker) recycle(b []byte) {
	if cap(b) > 0 && len(st.free) < 256 {
		st.free = append(st.free, b)
	}
}

// Options tunes a Shard.
type Options struct {
	// Workers is this shard's serving pool size (default 1).
	Workers int
	// Batch bounds how many outbound frames a worker accumulates per
	// destination shard before an early flush (default 64). Received
	// batch sizes are whatever the senders accumulated.
	Batch int
	// MaxHops bounds each leg (0 = sim's default 4n budget).
	MaxHops int
	// Strict aborts the worker on any error (the in-process engine's
	// mode, where an error means a broken invariant). Non-strict mode
	// — the network daemon's — drops the offending frame, counts it,
	// and keeps serving: a hostile client frame must not take the
	// shard down.
	Strict bool
	// OnDone, when non-nil, observes every roundtrip completed with
	// Home == HomeLocal (the in-process engine's completion hook).
	OnDone func(*wire.Frame)
	// Sink, when non-nil, attaches the telemetry plane; SinkShard is
	// this shard's row in the sink's Config.Shards (the in-process
	// engine passes the shard index, a daemon passes 0 for its
	// single-shard sink).
	Sink      *telemetry.Sink
	SinkShard int
	// Repair, when non-nil, arms the shard's churn plane: FrameChurn
	// batches are accepted off the fabric, ordered by sequence number,
	// and applied under the epoch fence — the callback mutates this
	// shard's graph replica and rebuilds the owned slice of its tables
	// while in-flight roundtrips drain on the previous epoch's routes.
	// It also switches serving to lossy mode: forwarding failures that
	// strict mode treats as broken invariants become accounted drops
	// (see ShardStats.Drops/Misroutes), because under convergence they
	// are expected casualties, not bugs. A Repair error poisons the
	// shard — the worker returns it even in daemon mode, since a shard
	// that half-applied a batch must never serve.
	Repair func(seq uint64, events []churn.Event) error
	// OnRepaired, when non-nil, observes each applied batch in sequence
	// order (the in-process driver's ack). When nil and the batch
	// arrived on an accepted client connection, the shard acknowledges
	// by echoing an empty batch with the same sequence number.
	OnRepaired func(seq uint64)
	// OnLost observes lossy completions whose Home is HomeLocal, with
	// the wire drop reason (DropUnroutable / DropMisroute); remote homes
	// get a FrameDrop instead.
	OnLost func(f *wire.Frame, reason byte)
}

// Shard is one serving process of a cluster: the ShardView holding its
// nodes' routers, the placement that says who owns everything else, and
// a transport to ship boundary-crossing packets as wire frames. The
// same Shard runs under the in-process engine (Run) and the network
// daemon (Serve); only the transport differs.
type Shard struct {
	view    *core.ShardView
	place   *Placement
	tr      Transport
	opts    Options
	info    wire.Frame
	workers []shardWorker
	// seg is the shard's hoisted segment runner: port table, ownership
	// predicate and hop budget resolved once, not per packet — and
	// rebuilt under the write fence after each repair, because it caches
	// the graph's port table at construction.
	seg *sim.SegmentRunner

	// The epoch fence (armed when opts.Repair != nil; a cold RWMutex
	// otherwise, never locked). Workers hold the read side across one
	// received batch — decode, forward, flush — so a repair's write side
	// is exactly a barrier at batch granularity: in-flight roundtrips
	// complete (or drop, accounted) on the old epoch's routes, the
	// repair runs alone, and the next batch serves the new epoch. No
	// global stop-the-world: each shard fences independently.
	armed bool
	fence sync.RWMutex
	// churnMu orders repair application; pendingC parks batches that
	// arrived ahead of sequence (the fabric reorders freely) and nextSeq
	// is the next batch to apply — sequence numbers start at 1.
	churnMu  sync.Mutex
	pendingC map[uint64]churnBatch
	nextSeq  uint64

	// Lossy-mode and repair counters, shard-level atomics: workers add
	// from inside the read fence, gauges read concurrently.
	drops       atomic.Int64
	misroutes   atomic.Int64
	repairs     atomic.Int64
	repairNanos atomic.Int64
}

// churnBatch is one decoded churn frame parked for in-order application.
type churnBatch struct {
	seq    uint64
	events []churn.Event
	conn   uint64 // accepted-connection reply token, 0 = none
}

// NewShard assembles one shard over its view, placement and transport.
func NewShard(view *core.ShardView, place *Placement, tr Transport, opts Options) *Shard {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Batch < 1 {
		opts.Batch = 64
	}
	s := &Shard{
		view: view, place: place, tr: tr, opts: opts,
		workers: make([]shardWorker, opts.Workers),
		// The segment runner guards every hop with view.Owns before
		// forwarding, so it can call the deployment directly and skip
		// the view's own per-hop ownership re-check.
		seg: sim.NewSegmentRunner(view.Graph(), view.Deployment(), opts.MaxHops, view.Owns),
	}
	if opts.Repair != nil {
		s.armed = true
		s.pendingC = make(map[uint64]churnBatch)
		s.nextSeq = 1
	}
	s.info = wire.Frame{
		Kind:       wire.FrameInfo,
		SchemeKind: view.Deployment().Kind(),
		Nodes:      int32(view.Graph().N()),
		Shards:     int32(place.Shards),
	}
	return s
}

// Index returns the shard's index.
func (s *Shard) Index() int { return s.view.Shard() }

// Stats merges the shard's per-worker counters (call after the workers
// have stopped, or accept a racy snapshot).
func (s *Shard) Stats() ShardStats {
	out := ShardStats{Shard: s.view.Shard(), Nodes: s.view.NodeCount()}
	for i := range s.workers {
		w := &s.workers[i].stats
		out.Packets += w.Packets
		out.Hops += w.Hops
		out.Weight += w.Weight
		out.FramesIn += w.FramesIn
		out.FramesOut += w.FramesOut
		out.Errors += w.Errors
		out.Allocs += w.Allocs
	}
	out.Drops = s.drops.Load()
	out.Misroutes = s.misroutes.Load()
	return out
}

// ChurnStats returns the shard's churn-plane counters: lossy
// completions by reason, repairs applied, and total repair wall time.
// Safe to read while serving (gauges poll it live).
func (s *Shard) ChurnStats() (drops, misroutes, repairs, repairNanos int64) {
	return s.drops.Load(), s.misroutes.Load(), s.repairs.Load(), s.repairNanos.Load()
}

// hists merges the shard's histograms and samples into the caller's.
func (s *Shard) hists(hop, hdr *eval.Hist, samples *[]traffic.Sample) {
	for i := range s.workers {
		hop.Merge(&s.workers[i].hopHist)
		hdr.Merge(&s.workers[i].hdrHist)
		*samples = append(*samples, s.workers[i].samples...)
	}
}

// Serve pumps the shard's mailbox with its worker pool until the
// transport closes, then returns the first worker error (nil on clean
// shutdown). This is the daemon loop rtserve runs and the body the
// in-process engine spawns per shard.
func (s *Shard) Serve() error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.workers))
	for w := range s.workers {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = s.worker(w)
		}(w)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// worker is one mailbox pump: block for a batch, handle each frame,
// then flush everything the batch emitted — one transport message per
// destination shard, the send-side half of the batching discipline.
//
// Telemetry rides the same rhythm: each Recv opens a batch on the
// worker's probe (counting it, charging the blocked time to
// recv-wait, and — on sampled batches — arming the Lap chain t that
// threads through every handle and the final flush), and each batch
// closes with a counter publish. An unsampled batch carries t == 0
// and every Lap passes it through for free.
func (s *Shard) worker(w int) error {
	st := &s.workers[w]
	st.worker = w
	st.pending = make([][]InFrame, s.place.Shards)
	st.p = s.opts.Sink.Probe(s.opts.SinkShard, w)
	if st.p != nil {
		shard := s.view.Shard()
		st.hook = func(at graph.NodeID, hops int, weight graph.Dist) {
			st.p.Record(telemetry.EvHop, st.trRt, shard, st.worker, int32(at), -1, int32(hops), st.trRet)
		}
		defer st.publish()
	}
	for {
		wait0 := st.p.Now()
		frames, err := s.tr.Recv()
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
		// The epoch fence's read side spans the whole batch: every route
		// this batch forwards is computed against one consistent epoch of
		// the shard's tables, and a repair waiting on the write side gets
		// in after the flush, never mid-packet.
		s.rlock()
		t := st.p.BatchStart(wait0)
		// Drain everything immediately available before flushing, so the
		// outbound accumulations grow to the queued work instead of
		// collapsing to singleton batches.
		processed := 0
		for {
			for i := range frames {
				var retained bool
				retained, t, err = s.handle(st, frames[i], t)
				if err != nil {
					if s.opts.Strict {
						s.runlock()
						return err
					}
					st.stats.Errors++
				}
				// A clean crossing repatches the received buffer in place
				// and ships those same bytes (retained); any other outcome
				// leaves the buffer dead, free to carry the next outbound
				// frame.
				if !retained {
					st.recycle(frames[i].Data)
				}
			}
			processed += len(frames)
			st.recycleSlab(frames, s.opts.Batch)
			if processed >= 4*s.opts.Batch {
				break
			}
			var ok bool
			if frames, ok, err = s.tr.TryRecv(); err != nil || !ok {
				break
			}
		}
		if err != nil {
			if errors.Is(err, ErrClosed) {
				// Flush is pointless on a closed transport; exit cleanly.
				s.runlock()
				return nil
			}
			if s.opts.Strict {
				s.runlock()
				return err
			}
			st.stats.Errors++
		}
		if _, err := s.flush(st, t); err != nil {
			if s.opts.Strict && !errors.Is(err, ErrClosed) {
				s.runlock()
				return err
			}
		}
		s.runlock()
		st.publish()
		// Repairs run outside the read fence: the batch that carried the
		// churn frame has fully drained, so the write side only contends
		// with the other workers' serving batches.
		if err := s.applyChurn(st); err != nil {
			return err
		}
	}
}

// rlock / runlock are the fence's read side, free when churn is unarmed.
func (s *Shard) rlock() {
	if s.armed {
		s.fence.RLock()
	}
}

func (s *Shard) runlock() {
	if s.armed {
		s.fence.RUnlock()
	}
}

// applyChurn applies the worker's stashed churn batches — plus any
// previously parked out-of-order batches they unblock — in sequence
// order under the write fence. A Repair error is returned (and poisons
// the shard) regardless of Strict: serving from a half-applied epoch is
// never an option.
func (s *Shard) applyChurn(st *shardWorker) error {
	if len(st.churn) == 0 {
		return nil
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	for _, b := range st.churn {
		s.pendingC[b.seq] = b
	}
	st.churn = st.churn[:0]
	for {
		b, ok := s.pendingC[s.nextSeq]
		if !ok {
			return nil
		}
		delete(s.pendingC, s.nextSeq)
		start := time.Now()
		s.fence.Lock()
		err := s.opts.Repair(b.seq, b.events)
		if err == nil {
			// The runner cached the pre-repair port table; rebuild it
			// against the mutated graph before anyone routes again.
			s.seg = sim.NewSegmentRunner(s.view.Graph(), s.view.Deployment(), s.opts.MaxHops, s.view.Owns)
		}
		s.fence.Unlock()
		if err != nil {
			// Poison the whole shard, not just this worker: the other
			// workers must never serve an epoch the repair may have left
			// half-applied, and closing the transport is what stops the
			// pool. Serve then returns this error.
			s.tr.Close()
			return fmt.Errorf("cluster: shard %d repair of churn batch %d: %w", s.view.Shard(), b.seq, err)
		}
		s.repairs.Add(1)
		s.repairNanos.Add(time.Since(start).Nanoseconds())
		s.nextSeq++
		if s.opts.OnRepaired != nil {
			s.opts.OnRepaired(b.seq)
		} else if b.conn != 0 {
			// Ack the injecting client connection: an empty batch echoing
			// the sequence number.
			if err := s.tr.Reply(b.conn, wire.AppendChurnFrame(nil, b.seq, nil)); err != nil {
				st.stats.Errors++
			}
		}
	}
}

// ship queues one outbound frame, early-flushing a destination that
// reaches the batch bound. t threads the sampled-batch Lap chain so
// an early flush's send rendezvous lands in the send stage, not in
// whatever stage surrounds the caller.
func (s *Shard) ship(st *shardWorker, to int, data []byte, t int64) (int64, error) {
	if to < 0 || to >= len(st.pending) {
		return t, fmt.Errorf("cluster: frame addressed to unknown shard %d", to)
	}
	if st.pending[to] == nil {
		st.pending[to] = st.slab(s.opts.Batch)
	}
	st.pending[to] = append(st.pending[to], InFrame{Data: data})
	if len(st.pending[to]) >= s.opts.Batch {
		frames := st.pending[to]
		st.pending[to] = nil
		err := s.tr.SendBatch(to, frames)
		return st.p.Lap(telemetry.StageSend, t), err
	}
	return t, nil
}

// flush ships every destination's accumulated frames. Every frame of a
// batch a transport refuses is counted as dropped — each is a live
// roundtrip — so a daemon with a dead peer shows the loss in its
// errors column instead of reporting a healthy shard.
func (s *Shard) flush(st *shardWorker, t int64) (int64, error) {
	var firstErr error
	for to, frames := range st.pending {
		if len(frames) == 0 {
			continue
		}
		st.pending[to] = nil
		if err := s.tr.SendBatch(to, frames); err != nil {
			st.stats.Errors += int64(len(frames))
			if firstErr == nil {
				firstErr = err
			}
		}
		t = st.p.Lap(telemetry.StageSend, t)
	}
	return t, firstErr
}

// handle processes one received frame. retained reports that the
// inbound buffer was shipped onward (a repatched flight frame) and must
// not be recycled. t is the sampled-batch Lap chain (0 = unsampled),
// threaded through and returned so the worker's whole batch is tiled
// by stage attributions.
func (s *Shard) handle(st *shardWorker, in InFrame, t int64) (retained bool, tOut int64, err error) {
	// The two fixed-layout kinds have their own decoders; everything
	// else — including any message that fails the peek (bad magic, a
	// foreign version) — goes through UnmarshalFrame for the full
	// diagnostic.
	if k, ok := wire.PeekFrameKind(in.Data); ok {
		switch k {
		case wire.FrameFlight:
			return s.handleFlight(st, in, t)
		case wire.FrameInjectBatch:
			t, err = s.handleInjectBatch(st, in, t)
			return false, t, err
		case wire.FrameChurn:
			return false, t, s.stashChurn(st, in)
		}
	}
	f := &st.frame
	if err := wire.UnmarshalFrame(in.Data, f); err != nil {
		return false, t, err
	}
	switch f.Kind {
	case wire.FrameInject:
		t, err = s.inject(st, f, in.Conn, t)
		return false, t, err
	case wire.FramePacket:
		// The legacy varint packet frame: still decoded (older clients,
		// hostile-input resilience), re-framed as a flight frame at its
		// next crossing.
		st.stats.FramesIn++
		// A packet frame's routing fields are untrusted input on the
		// network transport: validate them before any array access.
		if err := checkName(s.view, f.SrcName); err != nil {
			return false, t, err
		}
		if err := checkName(s.view, f.DstName); err != nil {
			return false, t, err
		}
		if f.At < 0 || int(f.At) >= s.view.Graph().N() {
			return false, t, fmt.Errorf("cluster: packet frame at node %d outside [0,%d)", f.At, s.view.Graph().N())
		}
		h, err := st.hdec.DecodeBare(f.Header)
		if err != nil {
			return false, t, err
		}
		f.Header = nil
		t = st.p.Lap(telemetry.StageDecode, t)
		var fl sim.Flight
		if !f.Return {
			fl = flightOf(f.Out, f.At)
		} else {
			fl = flightOf(f.Back, f.At)
		}
		return s.advance(st, f, h, fl, nil, wire.FlightState{}, t)
	case wire.FrameDone, wire.FrameDrop:
		// A completion (or lossy-completion) report passing through its
		// home shard on the way back to the client connection that
		// injected it.
		err := s.tr.Reply(f.Origin, in.Data)
		return false, st.p.Lap(telemetry.StageSend, t), err
	case wire.FrameInfoReq:
		data, err := wire.MarshalFrame(&s.info, nil)
		if err != nil {
			return false, t, err
		}
		err = s.tr.Reply(in.Conn, data)
		return false, st.p.Lap(telemetry.StageSend, t), err
	default:
		return false, t, fmt.Errorf("cluster: shard %d received unexpected %d frame", s.view.Shard(), f.Kind)
	}
}

// handleFlight resumes an in-flight packet from its fixed-layout frame:
// the preamble and the scheme's waypoint scalars decode at fixed
// offsets, the label blobs only if this shard owns the endpoint that
// reads them, and the received bytes ride along so the next crossing
// can ship them repatched or copy the skipped blobs verbatim.
func (s *Shard) handleFlight(st *shardWorker, in InFrame, t int64) (bool, int64, error) {
	f := &st.frame
	if err := wire.UnmarshalFlightFrame(in.Data, f); err != nil {
		return false, t, err
	}
	st.stats.FramesIn++
	if err := checkName(s.view, f.SrcName); err != nil {
		return false, t, err
	}
	if err := checkName(s.view, f.DstName); err != nil {
		return false, t, err
	}
	if f.At < 0 || int(f.At) >= s.view.Graph().N() {
		return false, t, fmt.Errorf("cluster: flight frame at node %d outside [0,%d)", f.At, s.view.Graph().N())
	}
	h, fs, err := st.hdec.DecodeFlight(f, s.view)
	if err != nil {
		return false, t, err
	}
	f.Header = nil
	t = st.p.Lap(telemetry.StageDecode, t)
	if st.p.Traced(f.Rt) {
		hops := int32(f.Out.Hops + f.Back.Hops)
		st.p.Record(telemetry.EvArrive, f.Rt, s.view.Shard(), st.worker, int32(f.At), -1, hops, f.Return)
	}
	var fl sim.Flight
	if !f.Return {
		fl = flightOf(f.Out, f.At)
	} else {
		fl = flightOf(f.Back, f.At)
	}
	return s.advance(st, f, h, fl, in.Data, fs, t)
}

// stashChurn decodes a churn frame and parks it for application after
// the read fence drops. Events are fully validated against this graph
// here, before anything mutates, so a malformed batch is a clean reject
// — counted in daemon mode — and a Repair failure can only mean the
// repair itself went wrong (which rightly poisons the shard).
func (s *Shard) stashChurn(st *shardWorker, in InFrame) error {
	if !s.armed {
		return fmt.Errorf("cluster: shard %d received a churn frame but has no repair hook", s.view.Shard())
	}
	seq, events, err := wire.DecodeChurnFrame(in.Data, nil)
	if err != nil {
		return err
	}
	if seq == 0 {
		return fmt.Errorf("cluster: churn batch with sequence number 0")
	}
	n := s.view.Graph().N()
	for i, ev := range events {
		switch ev.Kind {
		case churn.EdgeDown, churn.EdgeUp, churn.WeightChange:
			if int(ev.U) >= n || int(ev.V) >= n {
				return fmt.Errorf("cluster: churn event %d touches edge (%d,%d) outside [0,%d)", i, ev.U, ev.V, n)
			}
		default:
			if int(ev.Node) >= n {
				return fmt.Errorf("cluster: churn event %d touches node %d outside [0,%d)", i, ev.Node, n)
			}
		}
	}
	st.churn = append(st.churn, churnBatch{seq: seq, events: events, conn: in.Conn})
	return nil
}

// handleInjectBatch starts every roundtrip of a batched inject message.
func (s *Shard) handleInjectBatch(st *shardWorker, in InFrame, t int64) (int64, error) {
	err := wire.ForEachInject(in.Data, &st.frame, func(f *wire.Frame) error {
		var err error
		t, err = s.inject(st, f, in.Conn, t)
		return err
	})
	return t, err
}

// inject starts (or re-routes) one requested roundtrip.
func (s *Shard) inject(st *shardWorker, f *wire.Frame, conn uint64, t int64) (int64, error) {
	// Fresh client injects are stamped with their reply route
	// before anything else, so re-routing preserves it.
	if f.Home == wire.HomeClient {
		f.Home = int32(s.view.Shard())
		f.Origin = conn
	}
	if err := checkName(s.view, f.SrcName); err != nil {
		return t, err
	}
	if err := checkName(s.view, f.DstName); err != nil {
		return t, err
	}
	src := s.view.NodeOf(f.SrcName)
	if !s.view.Owns(src) {
		// Header creation is the source's job: route the inject to
		// the shard that owns the source node.
		f.Kind = wire.FrameInject
		data, err := wire.AppendFrame(st.outBuf(), f, nil)
		if err != nil {
			return t, err
		}
		t = st.p.Lap(telemetry.StageEncode, t)
		return s.ship(st, s.place.Shard(src), data, t)
	}
	h := st.inject
	var err error
	if h == nil {
		if h, err = s.view.NewHeader(f.SrcName, f.DstName); err != nil {
			return t, err
		}
		st.stats.Allocs++
		st.inject = h
	} else if err = s.view.ResetHeader(h, f.SrcName, f.DstName); err != nil {
		return t, err
	}
	if st.p.Traced(f.Rt) {
		st.p.Record(telemetry.EvInject, f.Rt, s.view.Shard(), st.worker, int32(src), -1, 0, false)
	}
	f.Return = false
	f.Out, f.Back = wire.LegTotals{}, wire.LegTotals{}
	_, t, err = s.advance(st, f, h, sim.Flight{Last: src, MaxHeaderWords: h.Words()}, nil, wire.FlightState{}, t)
	return t, err
}

// advance drives a packet as far as this shard can take it: segment by
// segment through the roundtrip protocol — outbound leg, the flip at
// the destination (which is local when the outbound leg delivers here),
// return leg — until the packet either completes or crosses onto a
// foreign node, at which point it is shipped to the owner as a flight
// frame. prev, when non-nil, is the flight frame the header arrived in
// (with its decode snapshot fs): a crossing whose header kept its shape
// ships those same bytes repatched — the zero-decode, zero-encode,
// zero-copy crossing — and a reshaped header re-encodes, with the label
// blobs this shard never decoded copied from prev verbatim. retained
// reports the repatch case: prev now belongs to the transport.
func (s *Shard) advance(st *shardWorker, f *wire.Frame, h sim.Header, fl sim.Flight, prev []byte, fs wire.FlightState, t int64) (retained bool, tOut int64, err error) {
	traced := st.p.Traced(f.Rt)
	for {
		var delivered bool
		if traced && st.hook != nil {
			// The hooked runner records every hop; trRt/trRet feed the
			// hook without a per-packet closure.
			st.trRt, st.trRet = f.Rt, f.Return
			delivered, err = s.seg.FlyHooked(h, &fl, st.hook)
		} else {
			delivered, err = s.seg.Fly(h, &fl)
		}
		if err != nil {
			if s.armed {
				// Under convergence a forwarding failure is an expected
				// casualty, not a broken invariant: a packet that hit a
				// down edge is a typed drop, anything else — hop budget
				// burned looping on stale tables, a vanished out-port —
				// a misroute. Either way the roundtrip completes as an
				// accounted loss; nothing hangs.
				reason := wire.DropMisroute
				if errors.Is(err, sim.ErrUnroutable) {
					reason = wire.DropUnroutable
				}
				t, err = s.lose(st, f, reason, t)
				return false, t, err
			}
			return false, t, err
		}
		if !delivered {
			t = st.p.Lap(telemetry.StageRoute, t)
			if !f.Return {
				f.Out = totalsOf(fl)
			} else {
				f.Back = totalsOf(fl)
			}
			f.At = fl.Last
			f.Kind = wire.FrameFlight
			to := s.place.Shard(fl.Last)
			st.stats.FramesOut++
			if traced {
				hops := int32(f.Out.Hops + f.Back.Hops)
				st.p.Record(telemetry.EvDepart, f.Rt, s.view.Shard(), st.worker, int32(f.At), int32(to), hops, f.Return)
			}
			if prev != nil && fs.CanPatch(f, h) {
				if err := wire.RepatchFlight(prev, f, h); err != nil {
					return false, t, err
				}
				t = st.p.Lap(telemetry.StageEncode, t)
				t, err = s.ship(st, to, prev, t)
				return true, t, err
			}
			data, err := wire.AppendFlightFrame(st.outBuf(), f, h, prev)
			if err != nil {
				return false, t, err
			}
			if len(data) > st.sizeHint {
				st.sizeHint = len(data) + len(data)/4
			}
			t = st.p.Lap(telemetry.StageEncode, t)
			t, err = s.ship(st, to, data, t)
			return false, t, err
		}
		if !f.Return {
			dst := s.view.NodeOf(f.DstName)
			if fl.Last != dst {
				if s.armed {
					t, err = s.lose(st, f, wire.DropMisroute, t)
					return false, t, err
				}
				return false, t, fmt.Errorf("cluster: outbound %d->%d delivered at wrong node %d", f.SrcName, f.DstName, fl.Last)
			}
			f.Out = totalsOf(fl)
			if err := s.view.BeginReturn(h); err != nil {
				return false, t, err
			}
			f.Return = true
			if traced {
				st.p.Record(telemetry.EvFlip, f.Rt, s.view.Shard(), st.worker, int32(dst), -1, f.Out.Hops, true)
			}
			fl = sim.Flight{Last: dst, MaxHeaderWords: h.Words()}
			continue
		}
		src := s.view.NodeOf(f.SrcName)
		if fl.Last != src {
			if s.armed {
				t, err = s.lose(st, f, wire.DropMisroute, t)
				return false, t, err
			}
			return false, t, fmt.Errorf("cluster: return %d->%d delivered at wrong node %d", f.DstName, f.SrcName, fl.Last)
		}
		f.Back = totalsOf(fl)
		t = st.p.Lap(telemetry.StageRoute, t)
		t, err = s.complete(st, f, t)
		return false, t, err
	}
}

// complete records a finished roundtrip and routes its completion
// report home.
func (s *Shard) complete(st *shardWorker, f *wire.Frame, t int64) (int64, error) {
	hops := int(f.Out.Hops) + int(f.Back.Hops)
	weight := f.Out.Weight + f.Back.Weight
	st.stats.Packets++
	st.stats.Hops += int64(hops)
	st.stats.Weight += int64(weight)
	st.hopHist.Add(hops)
	hw := f.Out.MaxHeaderWords
	if f.Back.MaxHeaderWords > hw {
		hw = f.Back.MaxHeaderWords
	}
	st.hdrHist.Add(int(hw))
	st.p.Heat(f.DstName)
	if st.p.Traced(f.Rt) {
		st.p.Record(telemetry.EvComplete, f.Rt, s.view.Shard(), st.worker, int32(s.view.NodeOf(f.SrcName)), -1, int32(hops), true)
	}
	if f.Home == wire.HomeLocal {
		if f.Sampled {
			if len(st.samples) == cap(st.samples) {
				st.stats.Allocs++
			}
			st.samples = append(st.samples, traffic.Sample{
				Src:    s.view.NodeOf(f.SrcName),
				Dst:    s.view.NodeOf(f.DstName),
				Weight: weight,
			})
		}
		if s.opts.OnDone != nil {
			s.opts.OnDone(f)
		}
		return st.p.Lap(telemetry.StageComplete, t), nil
	}
	done := wire.Frame{
		Kind: wire.FrameDone, SrcName: f.SrcName, DstName: f.DstName,
		Out: f.Out, Back: f.Back, Origin: f.Origin, Rt: f.Rt, Sampled: f.Sampled,
	}
	t = st.p.Lap(telemetry.StageComplete, t)
	data, err := wire.AppendFrame(st.outBuf(), &done, nil)
	if err != nil {
		return t, err
	}
	t = st.p.Lap(telemetry.StageEncode, t)
	if int(f.Home) == s.view.Shard() {
		err := s.tr.Reply(f.Origin, data)
		return st.p.Lap(telemetry.StageSend, t), err
	}
	return s.ship(st, int(f.Home), data, t)
}

// lose completes a roundtrip as an accounted loss: the shard-level
// counter for the reason is bumped and the report is routed home
// exactly like a FrameDone — delivered to OnLost for local homes,
// shipped (or replied) as a FrameDrop otherwise. The issuer always
// hears about the roundtrip exactly once.
func (s *Shard) lose(st *shardWorker, f *wire.Frame, reason byte, t int64) (int64, error) {
	if reason == wire.DropUnroutable {
		s.drops.Add(1)
	} else {
		s.misroutes.Add(1)
	}
	if f.Home == wire.HomeLocal {
		if s.opts.OnLost != nil {
			s.opts.OnLost(f, reason)
		}
		return st.p.Lap(telemetry.StageComplete, t), nil
	}
	drop := wire.Frame{
		Kind: wire.FrameDrop, SrcName: f.SrcName, DstName: f.DstName,
		Origin: f.Origin, Rt: f.Rt, Reason: reason,
	}
	t = st.p.Lap(telemetry.StageComplete, t)
	data, err := wire.AppendFrame(st.outBuf(), &drop, nil)
	if err != nil {
		return t, err
	}
	t = st.p.Lap(telemetry.StageEncode, t)
	if int(f.Home) == s.view.Shard() {
		err := s.tr.Reply(f.Origin, data)
		return st.p.Lap(telemetry.StageSend, t), err
	}
	return s.ship(st, int(f.Home), data, t)
}

func totalsOf(fl sim.Flight) wire.LegTotals {
	return wire.LegTotals{Hops: int32(fl.Hops), Weight: fl.Weight, MaxHeaderWords: int32(fl.MaxHeaderWords)}
}

func flightOf(t wire.LegTotals, at graph.NodeID) sim.Flight {
	return sim.Flight{Hops: int(t.Hops), Weight: t.Weight, MaxHeaderWords: int(t.MaxHeaderWords), Last: at}
}

func checkName(v *core.ShardView, name int32) error {
	if name < 0 || int(name) >= v.Graph().N() {
		return fmt.Errorf("cluster: name %d outside [0,%d)", name, v.Graph().N())
	}
	return nil
}
