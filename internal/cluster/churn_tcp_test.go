package cluster

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtroute/internal/churn"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
	"rtroute/internal/wire"
)

// localPair finds a (srcName, dstName) pair whose entire roundtrip path
// stays on shard 0, so it can be served with every peer dead.
func localPair(t *testing.T, dep interface {
	NodeOf(int32) graph.NodeID
	Graph() *graph.Graph
}, place *Placement, p sim.Plane) (int32, int32) {
	t.Helper()
	n := int32(p.Graph().N())
	for a := int32(0); a < n; a++ {
		if place.Shard(p.NodeOf(a)) != 0 {
			continue
		}
		for b := int32(0); b < n; b++ {
			if a == b || place.Shard(p.NodeOf(b)) != 0 {
				continue
			}
			tr, err := sim.Roundtrip(p, a, b, 0)
			if err != nil {
				t.Fatal(err)
			}
			local := true
			for _, leg := range []*sim.Trace{tr.Out, tr.Back} {
				for _, v := range leg.Path {
					if place.Shard(v) != 0 {
						local = false
						break
					}
				}
			}
			if local {
				return a, b
			}
		}
	}
	t.Fatal("no shard-local roundtrip pair exists under this placement")
	return 0, 0
}

// TestTCPPeerDeathMidRepair kills a peer daemon while another shard's
// repair holds the write fence. The contract under test: the repair is
// a shard-local act, so it completes and acks despite the dead peer;
// while the fence is held not a single roundtrip is served (no
// half-patched epoch is ever observable); and after the repair the
// shard keeps serving everything it can complete locally.
func TestTCPPeerDeathMidRepair(t *testing.T) {
	deps, _ := testDeployments(t, 32, 21)
	dep := deps["stretch6"]
	const shards = 2
	place, err := NewPlacement(dep, shards, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	dep.Graph().Seal()
	src, dst := localPair(t, dep, place, dep)
	want, err := sim.Roundtrip(dep, src, dst, 0)
	if err != nil {
		t.Fatal(err)
	}

	lns := make([]net.Listener, shards)
	addrs := make([]string, shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*TCPTransport, shards)
	ss := make([]*Shard, shards)

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	var repairs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		trs[i] = NewTCPTransport(i, lns[i], addrs)
		view, err := dep.ShardView(i, place.Owner)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Workers: 2}
		if i == 0 {
			opts.Repair = func(seq uint64, events []churn.Event) error {
				once.Do(func() { close(entered) })
				<-release
				repairs.Add(1)
				return nil
			}
		}
		ss[i] = NewShard(view, place, trs[i], opts)
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			if err := sh.Serve(); err != nil {
				t.Errorf("shard %d: %v", sh.Index(), err)
			}
		}(ss[i])
	}
	defer func() {
		trs[0].Close()
		wg.Wait()
	}()

	cl, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if out, back, err := cl.Roundtrip(src, dst); err != nil {
		t.Fatalf("warmup roundtrip: %v", err)
	} else if int(out.Hops) != want.Out.Hops || int(back.Hops) != want.Back.Hops {
		t.Fatalf("warmup roundtrip hops (%d,%d), tracer (%d,%d)", out.Hops, back.Hops, want.Out.Hops, want.Back.Hops)
	}

	// Ship a churn batch; the repair hook parks holding the write fence.
	ack := make(chan error, 1)
	go func() {
		ack <- cl.Churn(1, []churn.Event{{Kind: churn.WeightChange, U: 0, V: 1, Weight: 5, At: 0.25}})
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("repair hook never entered")
	}

	// A roundtrip issued mid-repair must not be served while the fence is
	// held: every worker parks on the read side until the repair is done.
	cl2, err := DialClient(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	probe := make(chan error, 1)
	go func() {
		_, _, err := cl2.Roundtrip(src, dst)
		probe <- err
	}()
	select {
	case err := <-probe:
		t.Fatalf("roundtrip completed (err=%v) while the repair held the write fence", err)
	case <-time.After(200 * time.Millisecond):
	}

	// Kill the peer mid-repair, then let the repair finish. It must
	// complete — the repair touches only this shard's replica — and the
	// fenced roundtrip must then be served on the repaired epoch.
	trs[1].Close()
	close(release)
	select {
	case err := <-ack:
		if err != nil {
			t.Fatalf("churn ack after mid-repair peer death: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("churn batch never acked after mid-repair peer death")
	}
	if got := repairs.Load(); got != 1 {
		t.Fatalf("repair hook ran %d times, want 1", got)
	}
	if _, _, reps, _ := ss[0].ChurnStats(); reps != 1 {
		t.Fatalf("shard counted %d repairs, want 1", reps)
	}
	select {
	case err := <-probe:
		if err != nil {
			t.Fatalf("fenced roundtrip after repair: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fenced roundtrip never completed after the repair released")
	}

	// The survivor keeps serving local traffic with its only peer dead.
	if out, back, err := cl.Roundtrip(src, dst); err != nil {
		t.Fatalf("roundtrip after peer death: %v", err)
	} else if int(out.Hops) != want.Out.Hops || out.Weight != want.Out.Weight ||
		int(back.Hops) != want.Back.Hops || back.Weight != want.Back.Weight {
		t.Fatalf("post-repair roundtrip (out %d/%d, back %d/%d) diverges from tracer (out %d/%d, back %d/%d)",
			out.Hops, out.Weight, back.Hops, back.Weight,
			want.Out.Hops, want.Out.Weight, want.Back.Hops, want.Back.Weight)
	}
}

// TestRepairFailurePoisonsShard locks the rollback half of the
// mid-repair contract: a Repair hook that fails must take the whole
// worker pool down — Serve returns the error, nothing keeps serving a
// possibly half-applied epoch — even in non-strict (daemon) mode.
func TestRepairFailurePoisonsShard(t *testing.T) {
	deps, _ := testDeployments(t, 32, 23)
	dep := deps["stretch6"]
	place, err := NewPlacement(dep, 1, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	dep.Graph().Seal()
	view, err := dep.ShardView(0, place.Owner)
	if err != nil {
		t.Fatal(err)
	}
	bus := NewChanBus(1, 16)
	sh := NewShard(view, place, bus.Endpoint(0), Options{
		Workers: 2, Strict: false,
		Repair: func(seq uint64, events []churn.Event) error {
			return errors.New("replica wedged")
		},
	})
	served := make(chan error, 1)
	go func() { served <- sh.Serve() }()

	if err := bus.Send(0, wire.AppendChurnFrame(nil, 1, []churn.Event{
		{Kind: churn.WeightChange, U: 0, V: 1, Weight: 5, At: 0.25},
	})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err == nil || !strings.Contains(err.Error(), "repair of churn batch 1") {
			t.Fatalf("Serve returned %v, want the poisoning repair error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still running 5s after a failed repair; the shard must stop, not keep serving")
	}
}
