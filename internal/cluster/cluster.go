// Package cluster is the networked shard-serving layer: it partitions a
// Deployment's per-node Routers across S shards and forwards packets
// *between* shards as wire-encoded frames over a pluggable Transport —
// the step from "per-node state suffices in one process" (PR 4's
// deployment) to "routers live on different machines", which is the
// regime the paper's topology-independent names and sublinear tables
// are for.
//
// A shard owns a subset of nodes (Placement: contiguous, hashed, or
// aligned to the scheme's own stretch-3 clusters) and forwards packets
// hop by hop with only its nodes' local state (core.ShardView). When a
// packet's next node belongs to another shard, the live header is
// marshaled (wire.MarshalHeader) into a packet frame together with the
// roundtrip's routing preamble and shipped to the owner, who resumes
// the leg exactly where it stopped — sim.FlySegment makes the chain of
// per-shard segments hop-for-hop identical to one single-process fly
// loop, which is what the route-identity tests certify against
// sim.Run.
//
// Two transports share the protocol: ChanBus (bounded in-process
// mailboxes — deterministic tests and benchmarks) and TCPTransport
// (length-prefixed frames over sockets — one rtserve daemon per shard,
// rtroute -connect as client). Run is the in-process engine with
// traffic-engine-shaped stats; Shard.Serve is the daemon loop.
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtroute/internal/core"
	"rtroute/internal/eval"
	"rtroute/internal/graph"
	"rtroute/internal/sim"
	"rtroute/internal/telemetry"
	"rtroute/internal/traffic"
	"rtroute/internal/wire"
)

// Config parameterizes one in-process cluster run.
type Config struct {
	// Shards is the number of serving shards (default 8).
	Shards int
	// Workers is each shard's serving pool size (default 1).
	Workers int
	// Placement selects the node partition (default Contiguous).
	Placement Policy
	// Packets is the total number of roundtrips to serve; required > 0.
	Packets int64
	// Workload selects the pair distribution (zero value = uniform).
	Workload traffic.Spec
	// Seed makes the workload reproducible: same (Seed, Injectors,
	// Workload, Packets) injects the identical pair multiset.
	Seed int64
	// MaxHops bounds each leg (0 = sim's default 4n budget).
	MaxHops int
	// Oracle, when non-nil, enables stretch accounting over the sampled
	// packets (consulted only in the post-run merge, never on the hot
	// path).
	Oracle graph.DistanceOracle
	// SampleEvery marks every k-th packet of each injector stream for
	// stretch accounting (0 or 1 = every packet).
	SampleEvery int
	// Injectors is the number of deterministic injection streams
	// (default = Shards). Part of the pair-multiset contract.
	Injectors int
	// InFlight caps concurrently live roundtrips (default 512). With
	// every live roundtrip occupying at most one queued frame, mailbox
	// capacity = InFlight makes the bus deadlock-free by counting.
	InFlight int
	// Batch bounds one mailbox dequeue (default 64).
	Batch int
	// Sink, when non-nil, attaches the telemetry plane: per-worker
	// probes on every shard and injector, sampled stage timing, heat
	// sketches and (when the sink's TraceEvery is set) the flight
	// recorder — in which case injects are stamped with roundtrip
	// tags. The sink's Config.Shards/Workers/Injectors shape must
	// match this Config; SinkShape builds a matching one.
	Sink *telemetry.Sink
	// wrapEndpoint, when non-nil, wraps each shard's transport endpoint
	// — the test hook the reordering-adversary certification uses to
	// shuffle deliveries without a second transport implementation.
	wrapEndpoint func(shard int, tr Transport) Transport
}

// Result aggregates one cluster run, shaped like traffic.Result plus
// the cross-shard accounting.
type Result struct {
	Shards    int
	Workers   int
	Placement Policy
	Packets   int64
	Hops      int64
	Weight    int64
	// CrossShard counts packet frames shipped between shards — hops
	// whose tail and head live on different shards.
	CrossShard int64
	Elapsed    time.Duration
	HopHist    eval.Hist // per-roundtrip hop counts
	HdrHist    eval.Hist // per-roundtrip peak header words
	Stretch    eval.Quantiles
	Sampled    int
	PerShard   []ShardStats
	// CrossEdgeFraction is the static fraction of graph edges crossing
	// shards under the placement (the measured CrossShardRatio's
	// topology-blind baseline).
	CrossEdgeFraction float64
	// InFlight is the run's window size (resolved default included).
	InFlight int
	// WindowOccupancy is the mean number of in-flight roundtrips
	// sampled at completion times — how full the pipeline actually ran.
	WindowOccupancy float64
	// TrackedAllocs counts allocation events at the engine's known
	// allocation sites — per-worker pool misses plus injector batch
	// buffers — summed from the per-worker telemetry counters. Unlike
	// the whole-process ReadMemStats delta this replaced, it is
	// attributable per shard and immune to concurrent test goroutines;
	// the build-tag alloc gate keeps a process-wide measurement as the
	// backstop.
	TrackedAllocs int64
}

// PacketsPerSec returns the serving rate.
func (r *Result) PacketsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Elapsed.Seconds()
}

// HopsPerSec returns the per-hop forwarding rate.
func (r *Result) HopsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Hops) / r.Elapsed.Seconds()
}

// CrossShardRatio returns the fraction of hops that crossed a shard
// boundary — the number the placement policies compete on.
func (r *Result) CrossShardRatio() float64 {
	if r.Hops == 0 {
		return 0
	}
	return float64(r.CrossShard) / float64(r.Hops)
}

// CrossingsPerRT returns the mean shard crossings per roundtrip.
func (r *Result) CrossingsPerRT() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.CrossShard) / float64(r.Packets)
}

// AllocsPerRT returns the mean tracked allocation events per roundtrip
// over the serving phase.
func (r *Result) AllocsPerRT() float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.TrackedAllocs) / float64(r.Packets)
}

// SinkShape returns a telemetry.Config matching this run config's
// probe shape, resolving the same defaults Run does. Callers set the
// sampling knobs (SampleEvery, TraceEvery, HeatK...) and pass
// telemetry.New of it as cfg.Sink.
func (cfg Config) SinkShape() telemetry.Config {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 8
	}
	injectors := cfg.Injectors
	if injectors <= 0 {
		injectors = shards
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return telemetry.Config{Shards: ids, Workers: workers, Injectors: injectors}
}

// Run serves cfg.Packets roundtrips through an in-process cluster: S
// shards over a channel bus, each pumping its own mailbox with Workers
// goroutines, plus deterministic injector streams throttled by the
// InFlight window. The pair multiset — and therefore every distribution
// in the Result — is a pure function of (Seed, Injectors, Workload,
// Packets); Elapsed and the rates vary between runs.
func Run(dep *core.Deployment, cfg Config) (*Result, error) {
	if cfg.Packets <= 0 {
		return nil, fmt.Errorf("cluster: packets must be > 0, got %d", cfg.Packets)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 8
	}
	injectors := cfg.Injectors
	if injectors <= 0 {
		injectors = shards
	}
	inFlight := cfg.InFlight
	if inFlight <= 0 {
		inFlight = 512
	}
	stride := int64(cfg.SampleEvery)
	if stride < 1 {
		stride = 1
	}
	place, err := NewPlacement(dep, shards, cfg.Placement)
	if err != nil {
		return nil, err
	}
	g := dep.Graph()
	g.Seal()
	// Compile-time probe: a misconfigured plane fails here, not at
	// packet 731,204 (names 0 and 1 always exist).
	if _, _, err := sim.RoundtripFlight(dep, 0, 1, cfg.MaxHops); err != nil {
		return nil, fmt.Errorf("cluster: probe roundtrip: %w", err)
	}
	wl, err := traffic.NewWorkload(cfg.Workload, g.N(), cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Mailbox capacity = InFlight: every live roundtrip occupies at
	// most one queued frame anywhere (a batched inject of k roundtrips
	// is one message, strictly fewer), so sends can never cycle-wait.
	bus := NewChanBus(shards, inFlight)
	remaining := cfg.Packets
	window := NewWindow(inFlight)
	cfg.Sink.RegisterGauge("window_size", func() float64 { return float64(window.Size()) })
	cfg.Sink.RegisterGauge("window_occupancy", window.Occupancy)
	onDone := func(*wire.Frame) {
		window.Put(1)
		if atomic.AddInt64(&remaining, -1) == 0 {
			bus.Close()
		}
	}
	ss := make([]*Shard, shards)
	for i := 0; i < shards; i++ {
		view, err := dep.ShardView(i, place.Owner)
		if err != nil {
			return nil, err
		}
		tr := Transport(bus.Endpoint(i))
		if cfg.wrapEndpoint != nil {
			tr = cfg.wrapEndpoint(i, tr)
		}
		ss[i] = NewShard(view, place, tr, Options{
			Workers: cfg.Workers, Batch: cfg.Batch, MaxHops: cfg.MaxHops,
			Strict: true, OnDone: onDone,
			Sink: cfg.Sink, SinkShard: i,
		})
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	abort := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
		bus.Close()
	}
	start := time.Now()
	for _, sh := range ss {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			if err := sh.Serve(); err != nil {
				abort(err)
			}
		}(sh)
	}
	quotas := traffic.SplitQuota(cfg.Packets, injectors)
	sample := cfg.Oracle != nil
	// Roundtrip tags cost frame bytes, so injects are tagged only when
	// the flight recorder wants them; tag 0 means untraced everywhere.
	tagging := cfg.Sink.Tracing()
	injAllocs := make([]int64, injectors)
	// Injectors run windowed: take a burst of credits, generate that
	// many pairs, ship them grouped per owning shard as one inject-batch
	// message each — one window rendezvous and one mailbox send per
	// burst instead of per roundtrip. The burst scales with the window
	// (Take never over-claims: it hands out at most what is available).
	burst := inFlight / (2 * injectors)
	if burst < 64 {
		burst = 64
	}
	if burst > 256 {
		burst = 256
	}
	for i := 0; i < injectors; i++ {
		wg.Add(1)
		go func(i int, quota int64) {
			defer wg.Done()
			gen := wl.Generator(i)
			byOwner := make([][]wire.InjectEntry, shards)
			// The injector's probe mirrors the worker discipline: one
			// BatchStart per burst (credit wait is its own — excluded —
			// stage), publish after every burst.
			ip := cfg.Sink.InjectorProbe(i)
			allocs := &injAllocs[i]
			var sent int64
			if ip != nil {
				defer func() { ip.Publish(telemetry.Counters{Injects: sent, Allocs: *allocs}) }()
			}
			for sent < quota {
				want := burst
				if rem := quota - sent; rem < int64(want) {
					want = int(rem)
				}
				t := ip.BatchStart(0)
				n := window.Take(want, bus.Done())
				t = ip.Lap(telemetry.StageCredit, t)
				if n == 0 {
					return // run aborted under us
				}
				for k := 0; k < n; k++ {
					src, dst := gen.Next()
					owner := place.Shard(dep.NodeOf(src))
					if len(byOwner[owner]) == cap(byOwner[owner]) {
						*allocs++
					}
					e := wire.InjectEntry{
						Src: src, Dst: dst,
						Sampled: sample && (sent+int64(k))%stride == 0,
					}
					if tagging {
						// Unique, never-zero tag: injector in the high bits,
						// the injector-local sequence (starting at 1) below.
						e.Rt = uint64(i)<<40 | uint64(sent+int64(k)+1)
					}
					byOwner[owner] = append(byOwner[owner], e)
				}
				sent += int64(n)
				t = ip.Lap(telemetry.StageInject, t)
				for o := range byOwner {
					if len(byOwner[o]) == 0 {
						continue
					}
					// The shard owns the buffer after Send (it recycles it
					// into its frame pool), so each batch cuts a fresh one —
					// sized upfront, one allocation per ~burst roundtrips.
					buf := make([]byte, 0, 32+len(byOwner[o])*21)
					*allocs++
					data := wire.AppendInjectBatch(buf, wire.HomeLocal, 0, byOwner[o])
					byOwner[o] = byOwner[o][:0]
					if err := bus.Send(o, data); err != nil {
						return // bus closed: run aborted under us
					}
				}
				ip.Lap(telemetry.StageSend, t)
				if ip != nil {
					ip.Publish(telemetry.Counters{Injects: sent, Allocs: *allocs})
				}
			}
		}(i, quotas[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	if left := atomic.LoadInt64(&remaining); left != 0 {
		return nil, fmt.Errorf("cluster: run stopped with %d roundtrips unserved", left)
	}

	res := &Result{
		Shards: shards, Workers: ss[0].opts.Workers, Placement: place.Policy,
		Elapsed: elapsed, PerShard: make([]ShardStats, shards),
		CrossEdgeFraction: place.CrossEdgeFraction(g),
		InFlight:          inFlight,
		WindowOccupancy:   window.Occupancy(),
	}
	for _, a := range injAllocs {
		res.TrackedAllocs += a
	}
	var samples []traffic.Sample
	for i, sh := range ss {
		st := sh.Stats()
		res.PerShard[i] = st
		res.Packets += st.Packets
		res.Hops += st.Hops
		res.Weight += st.Weight
		res.CrossShard += st.FramesOut
		res.TrackedAllocs += st.Allocs
		sh.hists(&res.HopHist, &res.HdrHist, &samples)
	}
	if cfg.Oracle != nil {
		res.Stretch, err = traffic.StretchQuantiles(cfg.Oracle, samples)
		if err != nil {
			return nil, err
		}
		res.Sampled = len(samples)
	}
	return res, nil
}

// Format renders the result as the E15 sharded-serving report.
func (r *Result) Format() string {
	var b []byte
	b = appendf(b, "packets %d  shards %d  workers/shard %d  placement %s  elapsed %v\n",
		r.Packets, r.Shards, r.Workers, r.Placement, r.Elapsed.Round(time.Millisecond))
	b = appendf(b, "throughput %.0f packets/s  %.0f hops/s  (%.1f hops/roundtrip)\n",
		r.PacketsPerSec(), r.HopsPerSec(), r.HopHist.Mean())
	b = appendf(b, "cross-shard %d frames  ratio %.3f of hops  (static cross-edge fraction %.3f)\n",
		r.CrossShard, r.CrossShardRatio(), r.CrossEdgeFraction)
	b = appendf(b, "pipeline window %d  mean occupancy %.1f  crossings/rt %.2f  tracked-allocs/rt %.3f\n",
		r.InFlight, r.WindowOccupancy, r.CrossingsPerRT(), r.AllocsPerRT())
	if r.Sampled > 0 {
		b = appendf(b, "stretch (over %d sampled packets): p50 %.3f  p95 %.3f  p99 %.3f  max %.3f  mean %.3f\n",
			r.Sampled, r.Stretch.P50, r.Stretch.P95, r.Stretch.P99, r.Stretch.Max, r.Stretch.Mean)
	}
	b = appendf(b, "\nroundtrip hops\n%s", r.HopHist.Format("hops"))
	b = appendf(b, "\npeak header words\n%s", r.HdrHist.Format("words"))
	b = appendf(b, "\n%-6s %6s %10s %12s %10s %10s %8s %8s\n", "shard", "nodes", "packets", "hops", "frames-in", "frames-out", "errors", "allocs")
	for _, st := range r.PerShard {
		b = appendf(b, "%-6d %6d %10d %12d %10d %10d %8d %8d\n",
			st.Shard, st.Nodes, st.Packets, st.Hops, st.FramesIn, st.FramesOut, st.Errors, st.Allocs)
	}
	return string(b)
}

func appendf(b []byte, format string, args ...any) []byte {
	return append(b, fmt.Sprintf(format, args...)...)
}
