package cluster

import (
	"bufio"
	"fmt"
	"net"

	"rtroute/internal/core"
	"rtroute/internal/wire"
)

// Client is a roundtrip client of a TCP cluster: it dials any shard
// daemon, asks it to describe the deployment, and injects roundtrips.
// The dialed shard stamps each inject with a reply route and — when the
// source node lives elsewhere — re-routes it to the owner, so a client
// needs one connection to one daemon, not the whole address list. The
// completion report always comes back on this connection.
//
// A Client is synchronous and not safe for concurrent use; open one per
// goroutine (the daemons multiplex any number).
type Client struct {
	conn net.Conn
	rd   *bufio.Reader
}

// DialClient connects to one shard daemon.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(f *wire.Frame) error {
	data, err := wire.MarshalFrame(f, nil)
	if err != nil {
		return err
	}
	return (&tcpConn{c: c.conn}).writeFrame(data)
}

func (c *Client) recv(want wire.FrameKind, f *wire.Frame) error {
	data, err := readFrame(c.rd)
	if err != nil {
		return err
	}
	if err := wire.UnmarshalFrame(data, f); err != nil {
		return err
	}
	if f.Kind != want {
		return fmt.Errorf("cluster: expected %d frame, got %d", want, f.Kind)
	}
	return nil
}

// Info asks the dialed shard what it serves.
func (c *Client) Info() (kind core.Kind, nodes, shards int, err error) {
	if err := c.send(&wire.Frame{Kind: wire.FrameInfoReq}); err != nil {
		return 0, 0, 0, err
	}
	var f wire.Frame
	if err := c.recv(wire.FrameInfo, &f); err != nil {
		return 0, 0, 0, err
	}
	return f.SchemeKind, int(f.Nodes), int(f.Shards), nil
}

// Roundtrip routes one roundtrip srcName -> dstName -> srcName through
// the cluster and returns both legs' totals.
func (c *Client) Roundtrip(srcName, dstName int32) (out, back wire.LegTotals, err error) {
	err = c.send(&wire.Frame{
		Kind: wire.FrameInject, SrcName: srcName, DstName: dstName, Home: wire.HomeClient,
	})
	if err != nil {
		return out, back, err
	}
	var f wire.Frame
	if err := c.recv(wire.FrameDone, &f); err != nil {
		return out, back, err
	}
	if f.SrcName != srcName || f.DstName != dstName {
		return out, back, fmt.Errorf("cluster: completion for (%d,%d), expected (%d,%d)",
			f.SrcName, f.DstName, srcName, dstName)
	}
	return f.Out, f.Back, nil
}
