package cluster

import (
	"bufio"
	"fmt"
	"net"

	"rtroute/internal/churn"
	"rtroute/internal/core"
	"rtroute/internal/wire"
)

// Client is a roundtrip client of a TCP cluster: it dials any shard
// daemon, asks it to describe the deployment, and injects roundtrips.
// The dialed shard stamps each inject with a reply route and — when the
// source node lives elsewhere — re-routes it to the owner, so a client
// needs one connection to one daemon, not the whole address list. The
// completion report always comes back on this connection.
//
// A Client is not safe for concurrent use; open one per goroutine (the
// daemons multiplex any number). Within one goroutine it pipelines:
// Roundtrips keeps a window of tagged roundtrips in flight and accepts
// their completions in whatever order the cluster finishes them.
type Client struct {
	conn net.Conn
	tc   *tcpConn
	rd   *bufio.Reader
	buf  []byte // reusable frame marshal buffer

	// OnDrop, when non-nil, accepts lossy completions: a cluster
	// converging under churn reports a dropped or misrouted roundtrip
	// with a FrameDrop instead of a FrameDone, and Roundtrips invokes
	// OnDrop with the pair's index and the wire drop reason. When nil, a
	// drop report is an error — the legacy strict contract.
	OnDrop func(i int, reason byte) error
}

// DialClient connects to one shard daemon.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, tc: &tcpConn{c: conn}, rd: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(f *wire.Frame) error {
	data, err := wire.AppendFrame(c.buf[:0], f, nil)
	if err != nil {
		return err
	}
	c.buf = data
	return c.tc.writeFrame(data)
}

func (c *Client) recv(want wire.FrameKind, f *wire.Frame) error {
	data, err := readFrame(c.rd)
	if err != nil {
		return err
	}
	if err := wire.UnmarshalFrame(data, f); err != nil {
		return err
	}
	if f.Kind != want {
		return fmt.Errorf("cluster: expected %d frame, got %d", want, f.Kind)
	}
	return nil
}

// Info asks the dialed shard what it serves.
func (c *Client) Info() (kind core.Kind, nodes, shards int, err error) {
	if err := c.send(&wire.Frame{Kind: wire.FrameInfoReq}); err != nil {
		return 0, 0, 0, err
	}
	var f wire.Frame
	if err := c.recv(wire.FrameInfo, &f); err != nil {
		return 0, 0, 0, err
	}
	return f.SchemeKind, int(f.Nodes), int(f.Shards), nil
}

// Roundtrip routes one roundtrip srcName -> dstName -> srcName through
// the cluster and returns both legs' totals. The inject carries
// roundtrip tag 1 — the tag a single in-flight roundtrip would get from
// Roundtrips — so a daemon running with trace sampling records it in
// the flight recorder (the predicate admits rt%every == 1).
func (c *Client) Roundtrip(srcName, dstName int32) (out, back wire.LegTotals, err error) {
	err = c.send(&wire.Frame{
		Kind: wire.FrameInject, SrcName: srcName, DstName: dstName, Home: wire.HomeClient, Rt: 1,
	})
	if err != nil {
		return out, back, err
	}
	var f wire.Frame
	if err := c.recv(wire.FrameDone, &f); err != nil {
		return out, back, err
	}
	if f.SrcName != srcName || f.DstName != dstName {
		return out, back, fmt.Errorf("cluster: completion for (%d,%d), expected (%d,%d)",
			f.SrcName, f.DstName, srcName, dstName)
	}
	return f.Out, f.Back, nil
}

// Pair is one requested roundtrip src -> dst -> src.
type Pair struct {
	Src, Dst int32
}

// injectBatchCap bounds how many injects share one socket write in
// Roundtrips; beyond this, batching buys nothing and only delays the
// first inject behind the encoding of the rest.
const injectBatchCap = 64

// Roundtrips pipelines the pairs through the cluster, keeping up to
// window of them in flight at once. Each inject is tagged with a
// roundtrip id (its index, plus one so the tag is never zero) which the
// cluster echoes on the completion report, so completions are accepted
// in whatever order the shards finish them; each is invoked once per
// pair, in completion order, with the pair's index and leg totals.
// Injects are batched into single socket writes as the window opens.
func (c *Client) Roundtrips(pairs []Pair, window int, each func(i int, out, back wire.LegTotals) error) error {
	if window < 1 {
		window = 1
	}
	seen := make([]bool, len(pairs))
	entries := make([]wire.InjectEntry, 0, injectBatchCap)
	next, done, inflight := 0, 0, 0
	var f wire.Frame
	for done < len(pairs) {
		if next < len(pairs) && inflight < window {
			entries = entries[:0]
			for next < len(pairs) && inflight < window && len(entries) < injectBatchCap {
				entries = append(entries, wire.InjectEntry{
					Src: pairs[next].Src, Dst: pairs[next].Dst, Rt: uint64(next) + 1,
				})
				next++
				inflight++
			}
			c.buf = wire.AppendInjectBatch(c.buf[:0], wire.HomeClient, 0, entries)
			if err := c.tc.writeFrame(c.buf); err != nil {
				return err
			}
			continue
		}
		if err := c.recvCompletion(&f); err != nil {
			return err
		}
		if f.Rt == 0 || f.Rt > uint64(len(pairs)) {
			return fmt.Errorf("cluster: completion with unknown roundtrip id %d", f.Rt)
		}
		i := int(f.Rt - 1)
		if seen[i] {
			return fmt.Errorf("cluster: duplicate completion for roundtrip %d", f.Rt)
		}
		if f.SrcName != pairs[i].Src || f.DstName != pairs[i].Dst {
			return fmt.Errorf("cluster: completion %d for (%d,%d), expected (%d,%d)",
				f.Rt, f.SrcName, f.DstName, pairs[i].Src, pairs[i].Dst)
		}
		seen[i] = true
		done++
		inflight--
		if f.Kind == wire.FrameDrop {
			if err := c.OnDrop(i, f.Reason); err != nil {
				return err
			}
			continue
		}
		if each != nil {
			if err := each(i, f.Out, f.Back); err != nil {
				return err
			}
		}
	}
	return nil
}

// recvCompletion reads the next completion report: a FrameDone, or —
// when OnDrop is set — a FrameDrop from a cluster converging under
// churn.
func (c *Client) recvCompletion(f *wire.Frame) error {
	data, err := readFrame(c.rd)
	if err != nil {
		return err
	}
	if err := wire.UnmarshalFrame(data, f); err != nil {
		return err
	}
	switch {
	case f.Kind == wire.FrameDone:
		return nil
	case f.Kind == wire.FrameDrop && c.OnDrop != nil:
		return nil
	case f.Kind == wire.FrameDrop:
		return fmt.Errorf("cluster: roundtrip %d dropped (reason %d) but the client has no OnDrop hook", f.Rt, f.Reason)
	default:
		return fmt.Errorf("cluster: expected %d frame, got %d", wire.FrameDone, f.Kind)
	}
}

// Churn ships one churn event batch to the dialed daemon and blocks
// until the daemon acknowledges having applied the repair (an empty
// batch echoing the sequence number). Sequence numbers start at 1 and
// must increase by one per call — the daemon applies batches in order.
func (c *Client) Churn(seq uint64, events []churn.Event) error {
	c.buf = wire.AppendChurnFrame(c.buf[:0], seq, events)
	if err := c.tc.writeFrame(c.buf); err != nil {
		return err
	}
	data, err := readFrame(c.rd)
	if err != nil {
		return err
	}
	ackSeq, ackEvs, err := wire.DecodeChurnFrame(data, nil)
	if err != nil {
		return fmt.Errorf("cluster: churn ack: %w", err)
	}
	if ackSeq != seq || len(ackEvs) != 0 {
		return fmt.Errorf("cluster: churn ack for batch %d carries seq %d, %d events", seq, ackSeq, len(ackEvs))
	}
	return nil
}
