package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"rtroute/internal/core"
	"rtroute/internal/graph"
	"rtroute/internal/names"
	"rtroute/internal/rtz"
	"rtroute/internal/sim"
	"rtroute/internal/traffic"
)

// testDeployments builds a Deployment of every scheme kind over a
// shared seeded graph.
func testDeployments(t testing.TB, n int, seed int64) (map[string]*core.Deployment, *graph.Metric) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomSC(n, 4*n, 8, rng)
	m := graph.AllPairs(g)
	perm := names.Random(n, rng)

	deps := make(map[string]*core.Deployment)
	add := func(name string, p sim.Plane, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dep, err := core.Deploy(p)
		if err != nil {
			t.Fatalf("%s: deploy: %v", name, err)
		}
		deps[name] = dep
	}
	s6, err := core.NewStretchSix(g, m, perm, rand.New(rand.NewSource(seed)), core.Stretch6Config{})
	add("stretch6", s6, err)
	ex, err := core.NewExStretch(g, m, perm, rand.New(rand.NewSource(seed)), core.ExStretchConfig{K: 2})
	add("exstretch", ex, err)
	poly, err := core.NewPolynomialStretch(g, m, perm, core.PolyConfig{K: 2})
	add("polystretch", poly, err)
	sub, err := rtz.New(g, m, rand.New(rand.NewSource(seed)), rtz.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := core.NewRTZPlane(sub, perm)
	add("rtz", rp, err)
	hop, err := rtz.NewHop(g, m, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := core.NewHopPlane(hop, perm)
	add("hop", hp, err)
	return deps, m
}

// replay re-serves the exact pair multiset of a cluster run through the
// sequential single-process runner and returns the same aggregates.
func replay(t *testing.T, dep *core.Deployment, cfg Config) *Result {
	t.Helper()
	injectors := cfg.Injectors
	if injectors <= 0 {
		injectors = cfg.Shards
	}
	stride := int64(cfg.SampleEvery)
	if stride < 1 {
		stride = 1
	}
	wl, err := traffic.NewWorkload(cfg.Workload, dep.Graph().N(), cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	var samples []traffic.Sample
	for i, quota := range traffic.SplitQuota(cfg.Packets, injectors) {
		gen := wl.Generator(i)
		for j := int64(0); j < quota; j++ {
			src, dst := gen.Next()
			out, back, err := sim.RoundtripFlight(dep, src, dst, cfg.MaxHops)
			if err != nil {
				t.Fatalf("replay %d->%d: %v", src, dst, err)
			}
			weight := out.Weight + back.Weight
			hops := out.Hops + back.Hops
			res.Packets++
			res.Hops += int64(hops)
			res.Weight += int64(weight)
			res.HopHist.Add(hops)
			hw := out.MaxHeaderWords
			if back.MaxHeaderWords > hw {
				hw = back.MaxHeaderWords
			}
			res.HdrHist.Add(hw)
			if cfg.Oracle != nil && j%stride == 0 {
				samples = append(samples, traffic.Sample{Src: dep.NodeOf(src), Dst: dep.NodeOf(dst), Weight: weight})
			}
		}
	}
	if cfg.Oracle != nil {
		res.Stretch, err = traffic.StretchQuantiles(cfg.Oracle, samples)
		if err != nil {
			t.Fatal(err)
		}
		res.Sampled = len(samples)
	}
	return res
}

// TestClusterMatchesSequentialRun is the tentpole certification: an
// 8-shard channel-bus cluster — packets wire-encoded at every shard
// crossing, decoded and resumed by the owner — must produce exactly the
// hop counts, routed weights, header peaks and stretch quantiles of a
// sequential single-process sim replay over the identical pair
// multiset, for every scheme kind. Run under -race this also certifies
// the engine's concurrency discipline.
func TestClusterMatchesSequentialRun(t *testing.T) {
	deps, m := testDeployments(t, 64, 7)
	for name, dep := range deps {
		cfg := Config{
			Shards: 8, Workers: 2, Packets: 3000,
			Workload: traffic.Spec{Kind: traffic.Zipf, ZipfTheta: 0.9},
			Seed:     11, Oracle: m, SampleEvery: 3, InFlight: 64, Batch: 16,
		}
		got, err := Run(dep, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := replay(t, dep, cfg)
		if got.Packets != want.Packets || got.Hops != want.Hops || got.Weight != want.Weight {
			t.Fatalf("%s: totals (packets,hops,weight) = (%d,%d,%d), replay (%d,%d,%d)",
				name, got.Packets, got.Hops, got.Weight, want.Packets, want.Hops, want.Weight)
		}
		if !reflect.DeepEqual(got.HopHist, want.HopHist) {
			t.Fatalf("%s: hop histogram diverges from sequential replay", name)
		}
		if !reflect.DeepEqual(got.HdrHist, want.HdrHist) {
			t.Fatalf("%s: header histogram diverges from sequential replay", name)
		}
		if got.Sampled != want.Sampled || !reflect.DeepEqual(got.Stretch, want.Stretch) {
			t.Fatalf("%s: stretch quantiles %+v over %d samples, replay %+v over %d",
				name, got.Stretch, got.Sampled, want.Stretch, want.Sampled)
		}
		if got.CrossShard == 0 {
			t.Fatalf("%s: 8-shard run reported zero cross-shard frames", name)
		}
		var fromShards int64
		for _, st := range got.PerShard {
			fromShards += st.Packets
			if st.Errors != 0 {
				t.Fatalf("%s: shard %d reported %d errors", name, st.Shard, st.Errors)
			}
		}
		if fromShards != cfg.Packets {
			t.Fatalf("%s: per-shard packets sum to %d, want %d", name, fromShards, cfg.Packets)
		}
	}
}

// TestPlacementPolicies locks the partition invariants: every policy
// covers all nodes with non-empty shards deterministically, and the
// rtz-aligned policy never splits a stretch-3 cluster across shards.
func TestPlacementPolicies(t *testing.T) {
	deps, _ := testDeployments(t, 96, 3)
	dep := deps["stretch6"]
	for _, policy := range []Policy{Contiguous, Hash, RTZAligned} {
		p, err := NewPlacement(dep, 6, policy)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		for _, c := range p.Counts() {
			if c == 0 {
				t.Fatalf("%s: empty shard in %v", policy, p.Counts())
			}
		}
		again, err := NewPlacement(dep, 6, policy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Owner, again.Owner) {
			t.Fatalf("%s: placement is not deterministic", policy)
		}
		frac := p.CrossEdgeFraction(dep.Graph())
		if frac <= 0 || frac >= 1 {
			t.Fatalf("%s: cross-edge fraction %.3f out of (0,1)", policy, frac)
		}
	}
	// rtz-aligned: nodes sharing a center share a shard.
	p, err := NewPlacement(dep, 6, RTZAligned)
	if err != nil {
		t.Fatal(err)
	}
	centers, err := rtzCenters(dep)
	if err != nil {
		t.Fatal(err)
	}
	shardOfCenter := map[graph.NodeID]int32{}
	for v, c := range centers {
		if s, ok := shardOfCenter[c]; ok && s != p.Owner[v] {
			t.Fatalf("cluster of center %d split across shards %d and %d", c, s, p.Owner[v])
		}
		shardOfCenter[c] = p.Owner[v]
	}
	// Policies without rtz labels must refuse rtz alignment.
	if _, err := NewPlacement(deps["polystretch"], 6, RTZAligned); err == nil {
		t.Fatal("rtz-aligned placement accepted a scheme without rtz labels")
	}
}

// TestShardViewRefusesForeignForward locks the locality discipline: a
// shard must not forward with state it does not hold.
func TestShardViewRefusesForeignForward(t *testing.T) {
	deps, _ := testDeployments(t, 16, 5)
	dep := deps["rtz"]
	p, err := NewPlacement(dep, 2, Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	view, err := dep.ShardView(0, p.Owner)
	if err != nil {
		t.Fatal(err)
	}
	var foreign graph.NodeID = -1
	for v := 0; v < 16; v++ {
		if p.Owner[v] != 0 {
			foreign = graph.NodeID(v)
			break
		}
	}
	h, err := view.NewHeader(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := view.Forward(foreign, h); err == nil {
		t.Fatalf("shard 0 forwarded at foreign node %d", foreign)
	}
	if _, err := dep.ShardView(99, p.Owner); err == nil {
		t.Fatal("empty shard view accepted")
	}
}
