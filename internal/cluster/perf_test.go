package cluster

import (
	"testing"

	"rtroute/internal/traffic"
)

// BenchmarkRunConfigs sweeps the engine's operating points: scheme kind
// (header codec cost), placement (cross-shard fraction) and in-flight
// window (batching depth). Not part of the canonical suite; a map for
// tuning the E15 defaults.
func BenchmarkRunConfigs(b *testing.B) {
	deps, _ := testDeployments(b, 256, 1)
	for _, tc := range []struct {
		name     string
		dep      string
		place    Policy
		inFlight int
		workers  int
	}{
		{"stretch6/contig/512", "stretch6", Contiguous, 512, 1},
		{"stretch6/rtz/512", "stretch6", RTZAligned, 512, 1},
		{"stretch6/rtz/4096", "stretch6", RTZAligned, 4096, 1},
		{"rtz/rtz/512", "rtz", RTZAligned, 512, 1},
		{"rtz/rtz/4096", "rtz", RTZAligned, 4096, 1},
		{"hop/contig/4096", "hop", Contiguous, 4096, 1},
		{"hop/rtz-na-hash/4096", "hop", Hash, 4096, 1},
		{"exstretch/hash/4096", "exstretch", Hash, 4096, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			dep := deps[tc.dep]
			b.ResetTimer()
			res, err := Run(dep, Config{
				Shards: 8, Workers: tc.workers, Placement: tc.place,
				Packets: int64(b.N), Seed: 1, InFlight: tc.inFlight,
				Workload: traffic.Spec{Kind: traffic.Zipf},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PacketsPerSec(), "packets/s")
			b.ReportMetric(float64(res.CrossShard)/float64(res.Packets), "xframes/rt")
			b.ReportMetric(res.HopHist.Mean(), "hops/rt")
		})
	}
}
