//go:build race

package cluster

// raceEnabled skips allocation-count assertions under the race detector,
// whose instrumentation changes allocation behavior.
const raceEnabled = true
