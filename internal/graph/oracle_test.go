package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLazyOracleMatchesDense is the oracle-equivalence property test:
// on seeded random strongly connected digraphs, every D/R/FromSource/
// ToSink answer of the lazy oracle must equal the dense matrix, including
// under a cache small enough to force constant eviction.
func TestLazyOracleMatchesDense(t *testing.T) {
	for _, tc := range []struct {
		seed      int64
		n, extra  int
		maxW      Dist
		cacheRows int
	}{
		{seed: 1, n: 24, extra: 60, maxW: 8, cacheRows: 0},
		{seed: 2, n: 40, extra: 100, maxW: 16, cacheRows: 4}, // tiny cache: evict constantly
		{seed: 3, n: 64, extra: 300, maxW: 1, cacheRows: 2},  // minimum cache
		{seed: 4, n: 33, extra: 50, maxW: 31, cacheRows: 8},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		g := RandomSC(tc.n, tc.extra, tc.maxW, rng)
		g.AssignPorts(rng.Intn)
		dense := AllPairs(g)
		lazy := NewLazyOracle(g, tc.cacheRows)

		if lazy.N() != dense.N() {
			t.Fatalf("seed %d: N mismatch lazy=%d dense=%d", tc.seed, lazy.N(), dense.N())
		}
		for u := 0; u < tc.n; u++ {
			fwd := lazy.FromSource(NodeID(u))
			rev := lazy.ToSink(NodeID(u))
			for v := 0; v < tc.n; v++ {
				if want := dense.D(NodeID(u), NodeID(v)); fwd[v] != want {
					t.Fatalf("seed %d: FromSource(%d)[%d] = %d, dense %d", tc.seed, u, v, fwd[v], want)
				}
				if want := dense.D(NodeID(v), NodeID(u)); rev[v] != want {
					t.Fatalf("seed %d: ToSink(%d)[%d] = %d, dense %d", tc.seed, u, v, rev[v], want)
				}
			}
		}
		// Scattered point queries after the row sweep (cache now cold for
		// most rows).
		for i := 0; i < 500; i++ {
			u := NodeID(rng.Intn(tc.n))
			v := NodeID(rng.Intn(tc.n))
			if got, want := lazy.D(u, v), dense.D(u, v); got != want {
				t.Fatalf("seed %d: lazy.D(%d,%d) = %d, dense %d", tc.seed, u, v, got, want)
			}
			if got, want := lazy.R(u, v), dense.R(u, v); got != want {
				t.Fatalf("seed %d: lazy.R(%d,%d) = %d, dense %d", tc.seed, u, v, got, want)
			}
		}
		st := lazy.Stats()
		if st.PeakRows > lazy.Capacity() {
			t.Fatalf("seed %d: peak %d rows exceeds capacity %d", tc.seed, st.PeakRows, lazy.Capacity())
		}
		if tc.cacheRows > 0 && tc.cacheRows < 2*tc.n && st.Evictions == 0 {
			t.Fatalf("seed %d: expected evictions with cache %d over %d nodes", tc.seed, tc.cacheRows, tc.n)
		}
	}
}

// TestLazyOracleUnreachable checks Inf handling on a graph that is not
// strongly connected: R must be Inf whenever either direction is.
func TestLazyOracleUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 5) // 1 cannot reach anyone; 2 is isolated
	lazy := NewLazyOracle(g, 0)
	dense := AllPairs(g)
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if got, want := lazy.D(NodeID(u), NodeID(v)), dense.D(NodeID(u), NodeID(v)); got != want {
				t.Fatalf("D(%d,%d) = %d, want %d", u, v, got, want)
			}
			if got, want := lazy.R(NodeID(u), NodeID(v)), dense.R(NodeID(u), NodeID(v)); got != want {
				t.Fatalf("R(%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
	if lazy.R(0, 1) != Inf {
		t.Fatal("roundtrip through a one-way edge must be Inf")
	}
}

// TestLazyOracleConcurrent hammers one lazy oracle from many goroutines
// with a cache far smaller than the working set, so hits, misses,
// evictions and in-flight sharing all interleave. Run with -race this is
// the cache's concurrency test; in any mode it checks answers stay equal
// to the dense matrix under contention.
func TestLazyOracleConcurrent(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(11))
	g := RandomSC(n, 4*n, 8, rng)
	dense := AllPairs(g)
	lazy := NewLazyOracle(g, 6)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				u := NodeID(r.Intn(n))
				v := NodeID(r.Intn(n))
				switch i % 4 {
				case 0:
					if got, want := lazy.D(u, v), dense.D(u, v); got != want {
						errs <- "D mismatch under concurrency"
						return
					}
				case 1:
					if got, want := lazy.R(u, v), dense.R(u, v); got != want {
						errs <- "R mismatch under concurrency"
						return
					}
				case 2:
					row := lazy.FromSource(u)
					if row[v] != dense.D(u, v) {
						errs <- "FromSource mismatch under concurrency"
						return
					}
				default:
					row := lazy.ToSink(u)
					if row[v] != dense.D(v, u) {
						errs <- "ToSink mismatch under concurrency"
						return
					}
				}
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// In-flight rows are never evicted, so under contention the peak may
	// exceed the capacity — but only by the number of concurrent
	// computations.
	if st := lazy.Stats(); st.PeakRows > lazy.Capacity()+workers {
		t.Fatalf("peak rows %d exceeded capacity %d + %d in-flight under concurrency",
			st.PeakRows, lazy.Capacity(), workers)
	}
}

// TestRTDiamAndDiamOf checks the oracle-generic diameter helpers agree
// with the dense methods on both implementations.
func TestRTDiamAndDiamOf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomSC(30, 90, 7, rng)
	dense := AllPairs(g)
	lazy := NewLazyOracle(g, 3)
	if got, want := RTDiamOf(lazy), dense.RTDiam(); got != want {
		t.Fatalf("RTDiamOf(lazy) = %d, dense RTDiam %d", got, want)
	}
	if got, want := RTDiamOf(dense), dense.RTDiam(); got != want {
		t.Fatalf("RTDiamOf(dense) = %d, RTDiam %d", got, want)
	}
	if got, want := DiamOf(lazy), dense.Diam(); got != want {
		t.Fatalf("DiamOf(lazy) = %d, dense Diam %d", got, want)
	}
}

// TestAllPairsDefaultMatchesSequential locks in that the now-default
// parallel dense build is bit-identical to the sequential one.
func TestAllPairsDefaultMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := RandomSC(50, 200, 9, rng)
	seq := AllPairsSequential(g)
	par := AllPairs(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if seq.D(NodeID(u), NodeID(v)) != par.D(NodeID(u), NodeID(v)) {
				t.Fatalf("parallel all-pairs differs at (%d,%d)", u, v)
			}
		}
	}
}
