package graph

// DistanceOracle abstracts how schemes obtain shortest-path distances.
// Two implementations ship with the package:
//
//   - DenseMetric: the eager all-pairs matrix — O(n^2) words, O(1)
//     queries. Built (in parallel) by AllPairs / AllPairsParallel.
//   - LazyOracle: forward/reverse single-source rows computed on demand
//     and held in a bounded, concurrency-safe LRU — O(cache · n) words,
//     ideal when n^2 distances do not fit in memory.
//
// Row-oriented consumers (Init orders, cluster construction, the
// Theorem 15 reduction) should fetch FromSource/ToSink once per node and
// index the rows, rather than calling D/R per pair: on the lazy oracle a
// row fetch is one Dijkstra, while scattered D calls for varying sources
// may thrash the cache.
type DistanceOracle interface {
	// N returns the number of nodes the oracle answers for.
	N() int
	// D returns the one-way shortest distance d(u,v), Inf if unreachable.
	D(u, v NodeID) Dist
	// R returns the roundtrip distance r(u,v) = d(u,v) + d(v,u), Inf if
	// either direction is unreachable.
	R(u, v NodeID) Dist
	// FromSource returns the row d(u, ·). Callers must not modify it.
	FromSource(u NodeID) []Dist
	// ToSink returns the column d(·, v). Callers must not modify it.
	ToSink(v NodeID) []Dist
}

var (
	_ DistanceOracle = (*DenseMetric)(nil)
	_ DistanceOracle = (*LazyOracle)(nil)
)

// RFromRows combines the two rows anchored at one node into the
// roundtrip distance r(anchor, u): Inf if either direction is
// unreachable. fwd must be FromSource(anchor) and rev ToSink(anchor) (or
// the transposed pair for a destination anchor — the sum is symmetric).
func RFromRows(fwd, rev []Dist, u NodeID) Dist {
	if fwd[u] >= Inf || rev[u] >= Inf {
		return Inf
	}
	return fwd[u] + rev[u]
}

// RTDiamOf returns the roundtrip diameter max_{u,v} r(u,v) of any oracle
// using O(n) row fetches (2n Dijkstras on a lazy oracle).
func RTDiamOf(o DistanceOracle) Dist {
	if m, ok := o.(*DenseMetric); ok {
		return m.RTDiam()
	}
	n := o.N()
	var diam Dist
	for u := 0; u < n; u++ {
		fwd, rev := o.FromSource(NodeID(u)), o.ToSink(NodeID(u))
		for v := u + 1; v < n; v++ {
			r := RFromRows(fwd, rev, NodeID(v))
			if r >= Inf {
				return Inf
			}
			if r > diam {
				diam = r
			}
		}
	}
	return diam
}

// DiamOf returns the one-way diameter max_{u,v} d(u,v) of any oracle.
func DiamOf(o DistanceOracle) Dist {
	if m, ok := o.(*DenseMetric); ok {
		return m.Diam()
	}
	n := o.N()
	var diam Dist
	for u := 0; u < n; u++ {
		for _, d := range o.FromSource(NodeID(u)) {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
