package graph

// StronglyConnected reports whether g is strongly connected, i.e. whether
// every node can reach every other node. All schemes in this repository
// require strong connectivity (the roundtrip metric is infinite otherwise).
func StronglyConnected(g *Graph) bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	return len(SCCs(g)) == 1
}

// SCCs returns the strongly connected components of g using Tarjan's
// algorithm (iterative, so deep graphs do not overflow the stack).
// Components are returned in reverse topological order.
func SCCs(g *Graph) [][]NodeID {
	n := g.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		comps   [][]NodeID
		stack   []NodeID
		counter int32
	)

	type frame struct {
		node NodeID
		edge int32 // next out-edge index to explore
	}
	var callStack []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{node: NodeID(start)})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			u := f.node
			if int(f.edge) < len(g.out[u]) {
				v := g.out[u][f.edge].To
				f.edge++
				if index[v] == unvisited {
					index[v] = counter
					low[v] = counter
					counter++
					stack = append(stack, v)
					onStack[v] = true
					callStack = append(callStack, frame{node: v})
				} else if onStack[v] && index[v] < low[u] {
					low[u] = index[v]
				}
				continue
			}
			// All edges of u explored: pop the frame.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].node
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
			if low[u] == index[u] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == u {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
