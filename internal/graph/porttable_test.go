package graph

import (
	"math/rand"
	"testing"
)

// probePorts collects, for node u, every live port label plus a halo of
// absent probes around each (gaps, off-by-ones, negatives).
func probePorts(g *Graph, u NodeID) []PortID {
	var out []PortID
	for _, e := range g.out[u] {
		out = append(out, e.Port, e.Port-1, e.Port+1, e.Port+17, -e.Port-3)
	}
	out = append(out, 0, -1, 1<<20)
	return out
}

// checkPortEquivalence asserts that the compiled O(1) tables and the
// binary-search fallback agree for every probe at every node.
func checkPortEquivalence(t *testing.T, g *Graph, label string) {
	t.Helper()
	idx := g.index()
	for u := 0; u < g.N(); u++ {
		for _, p := range probePorts(g, NodeID(u)) {
			fast, okFast := idx.edgeByPort(NodeID(u), p)
			slow, okSlow := idx.edgeByPortBinary(NodeID(u), p)
			if okFast != okSlow || fast != slow {
				t.Fatalf("%s: node %d port %d: table (%+v,%v) != binary search (%+v,%v)",
					label, u, p, fast, okFast, slow, okSlow)
			}
			pub, okPub := g.EdgeByPort(NodeID(u), p)
			if okPub != okSlow || pub != slow {
				t.Fatalf("%s: node %d port %d: EdgeByPort (%+v,%v) != binary search (%+v,%v)",
					label, u, p, pub, okPub, slow, okSlow)
			}
		}
	}
}

// TestPortTableEquivalence is the property test locking the sealed dense
// and hashed port tables to the binary-search fallback, across default
// contiguous labels, adversarial AssignPorts labels, crafted sparse and
// negative-gap labelings, and post-mutation re-seals.
func TestPortTableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 6 + rng.Intn(40)
		g := RandomSC(n, 2*n+rng.Intn(4*n), 7, rng)

		// Adversarial labels from the generator (sparse: hash path).
		checkPortEquivalence(t, g, "adversarial")

		// Post-mutation re-seal: relabel everything contiguously (dense
		// path) through setPort, which must invalidate the old index.
		for u := 0; u < n; u++ {
			for slot := range g.out[u] {
				g.setPort(NodeID(u), slot, PortID(slot))
			}
		}
		checkPortEquivalence(t, g, "dense-after-reseal")

		// Negative and widely gapped labels: base offsets below zero,
		// spans too wide for the dense table at some nodes, narrow at
		// others.
		for u := 0; u < n; u++ {
			for slot := range g.out[u] {
				var p PortID
				switch u % 3 {
				case 0: // negative contiguous block
					p = PortID(slot) - 5
				case 1: // wide random gaps (hash path)
					p = PortID(slot)*PortID(997) - 400
				default: // small gaps (dense path with holes)
					p = PortID(slot)*3 + 1
				}
				g.setPort(NodeID(u), slot, p)
			}
		}
		checkPortEquivalence(t, g, "negative-gap")

		// Growing the graph must also invalidate and re-seal correctly.
		// AddEdge's default label (the out-degree) may collide with the
		// custom labels above, so give the new edge a fresh unique one —
		// the same discipline the generators follow by relabeling after
		// construction.
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+Dist(rng.Intn(5)))
			g.setPort(u, len(g.out[u])-1, PortID(1<<18+len(g.out[u])))
		}
		checkPortEquivalence(t, g, "after-addedge")
	}
}

// TestPortTablePathsExercised makes sure the property test actually
// covers both compiled representations: a contiguously labeled graph
// must compile dense tables, an AssignPorts graph must produce at least
// one hashed node.
func TestPortTablePathsExercised(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := RandomSC(64, 384, 5, rng) // AssignPorts inside the generator
	idx := g.index()
	var hashed, dense int
	for u := 0; u < g.N(); u++ {
		if idx.hashStart[u+1] > idx.hashStart[u] {
			hashed++
		}
		if idx.denseStart[u+1] > idx.denseStart[u] {
			dense++
		}
	}
	if hashed == 0 {
		t.Fatal("adversarial labeling compiled no hashed port tables")
	}

	c := New(4)
	c.MustAddEdge(0, 1, 1)
	c.MustAddEdge(0, 2, 1)
	c.MustAddEdge(1, 2, 1)
	c.MustAddEdge(2, 3, 1)
	c.MustAddEdge(3, 0, 1)
	cidx := c.index()
	for u := 0; u < 4; u++ {
		if lo, hi := cidx.outStart[u], cidx.outStart[u+1]; hi > lo {
			if cidx.denseStart[u+1] == cidx.denseStart[u] {
				t.Fatalf("contiguously labeled node %d not compiled dense", u)
			}
		}
	}
}

// TestPortTableExtremeSpan is the int32-overflow regression guard: port
// labels at opposite ends of the int32 range (restorable via the graph
// reader) make max-min+1 overflow int32; the span math must stay in
// int64 so such nodes compile as hashed, not as a corrupt dense table.
func TestPortTableExtremeSpan(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 0, 1)
	g.MustAddEdge(2, 0, 1)
	g.setPort(0, 0, -2000000000)
	g.setPort(0, 1, 2000000000)
	checkPortEquivalence(t, g, "extreme-span")
	if e, ok := g.EdgeByPort(0, -2000000000); !ok || e.To != 1 {
		t.Fatalf("extreme negative port lookup: (%+v, %v)", e, ok)
	}
	if e, ok := g.EdgeByPort(0, 2000000000); !ok || e.To != 2 {
		t.Fatalf("extreme positive port lookup: (%+v, %v)", e, ok)
	}
}

func TestPortTableSnapshotSurvivesMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := RandomSC(16, 48, 4, rng)
	pt := g.PortTable()
	u := NodeID(0)
	e0 := g.out[u][0]
	// Mutate after snapshotting: the snapshot keeps answering from the
	// old sealed index; the graph's own lookups re-seal.
	g.setPort(u, 0, e0.Port+100)
	if got, ok := pt.EdgeByPort(u, e0.Port); !ok || got.To != e0.To {
		t.Fatalf("snapshot lost pre-mutation port %d: (%+v, %v)", e0.Port, got, ok)
	}
	if _, ok := g.EdgeByPort(u, e0.Port+100); !ok {
		t.Fatal("re-sealed graph does not see the new port")
	}
}
