package graph

import (
	"math/rand"
	"testing"
)

// floydWarshall is an independent reference implementation used to verify
// Dijkstra and AllPairs.
func floydWarshall(g *Graph) [][]Dist {
	n := g.N()
	d := make([][]Dist, n)
	for i := range d {
		d[i] = make([]Dist, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = Inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Out(NodeID(u)) {
			if e.Weight < d[u][e.To] {
				d[u][e.To] = e.Weight
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if d[i][k] >= Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		g := RandomSC(40, 120, 20, rng)
		want := floydWarshall(g)
		for u := 0; u < g.N(); u++ {
			got := Dijkstra(g, NodeID(u))
			for v := 0; v < g.N(); v++ {
				if got.Dist[v] != want[u][v] {
					t.Fatalf("trial %d: d(%d,%d) = %d, want %d", trial, u, v, got.Dist[v], want[u][v])
				}
			}
		}
	}
}

func TestDijkstraRevMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := RandomSC(60, 240, 15, rng)
	m := AllPairs(g)
	for sink := 0; sink < g.N(); sink += 7 {
		rev := DijkstraRev(g, NodeID(sink))
		for v := 0; v < g.N(); v++ {
			if rev.Dist[v] != m.D(NodeID(v), NodeID(sink)) {
				t.Fatalf("reverse dist(%d->%d) = %d, want %d", v, sink, rev.Dist[v], m.D(NodeID(v), NodeID(sink)))
			}
		}
	}
}

func TestDijkstraParentsFormShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := RandomSC(50, 200, 9, rng)
	src := NodeID(0)
	res := Dijkstra(g, src)
	for v := 1; v < g.N(); v++ {
		// Walk parents back to src, accumulating weight; must equal Dist.
		var sum Dist
		cur := NodeID(v)
		steps := 0
		for cur != src {
			p := res.Parent[cur]
			if p < 0 {
				t.Fatalf("node %d has no parent but dist %d", cur, res.Dist[cur])
			}
			w := edgeWeight(t, g, p, cur)
			sum += w
			cur = p
			if steps++; steps > g.N() {
				t.Fatalf("parent chain from %d does not terminate", v)
			}
		}
		if sum != res.Dist[v] {
			t.Fatalf("parent path weight to %d = %d, want %d", v, sum, res.Dist[v])
		}
	}
}

func TestDijkstraRevParentsAreNextHops(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := RandomSC(50, 200, 9, rng)
	sink := NodeID(17)
	rev := DijkstraRev(g, sink)
	for v := 0; v < g.N(); v++ {
		if NodeID(v) == sink {
			continue
		}
		next := rev.Parent[v]
		if next < 0 {
			t.Fatalf("node %d has no next hop toward sink", v)
		}
		w := edgeWeight(t, g, NodeID(v), next)
		if rev.Dist[v] != w+rev.Dist[next] {
			t.Fatalf("next-hop property violated at %d: %d != %d + %d", v, rev.Dist[v], w, rev.Dist[next])
		}
	}
}

func edgeWeight(t *testing.T, g *Graph, u, v NodeID) Dist {
	t.Helper()
	for _, e := range g.Out(u) {
		if e.To == v {
			return e.Weight
		}
	}
	t.Fatalf("edge (%d,%d) not found", u, v)
	return 0
}

func TestRoundtripMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 5; trial++ {
		g := RandomSC(30, 90, 25, rng)
		m := AllPairs(g)
		n := g.N()
		for u := 0; u < n; u++ {
			if m.R(NodeID(u), NodeID(u)) != 0 {
				t.Fatalf("r(%d,%d) = %d, want 0", u, u, m.R(NodeID(u), NodeID(u)))
			}
			for v := 0; v < n; v++ {
				if u == v {
					continue
				}
				ruv := m.R(NodeID(u), NodeID(v))
				if ruv <= 0 {
					t.Fatalf("r(%d,%d) = %d, want > 0", u, v, ruv)
				}
				if ruv != m.R(NodeID(v), NodeID(u)) {
					t.Fatalf("r not symmetric at (%d,%d)", u, v)
				}
			}
		}
		// Triangle inequality on a sample of triples.
		for i := 0; i < 2000; i++ {
			u, v, w := NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if m.R(u, w) > m.R(u, v)+m.R(v, w) {
				t.Fatalf("triangle inequality violated: r(%d,%d)=%d > r(%d,%d)+r(%d,%d)=%d",
					u, w, m.R(u, w), u, v, v, w, m.R(u, v)+m.R(v, w))
			}
		}
	}
}

func TestRingDistances(t *testing.T) {
	// On a directed n-ring, d(u,v) = (v-u) mod n and r(u,v) = n for u != v.
	n := 12
	g := Ring(n, nil)
	m := AllPairs(g)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := Dist((v - u + n) % n)
			if got := m.D(NodeID(u), NodeID(v)); got != want {
				t.Fatalf("ring d(%d,%d) = %d, want %d", u, v, got, want)
			}
			if u != v {
				if got := m.R(NodeID(u), NodeID(v)); got != Dist(n) {
					t.Fatalf("ring r(%d,%d) = %d, want %d", u, v, got, n)
				}
			}
		}
	}
	if m.RTDiam() != Dist(n) {
		t.Fatalf("ring RTDiam = %d, want %d", m.RTDiam(), n)
	}
	if m.Diam() != Dist(n-1) {
		t.Fatalf("ring Diam = %d, want %d", m.Diam(), n-1)
	}
}

func TestUnreachableIsInf(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	res := Dijkstra(g, 0)
	if res.Dist[2] != Inf {
		t.Fatalf("dist to unreachable node = %d, want Inf", res.Dist[2])
	}
	m := AllPairs(g)
	if m.R(0, 1) != Inf {
		t.Fatalf("roundtrip through one-way edge should be Inf, got %d", m.R(0, 1))
	}
}

func TestGridSymmetry(t *testing.T) {
	g := Grid(4, 5, nil)
	m := AllPairs(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if m.D(NodeID(u), NodeID(v)) != m.D(NodeID(v), NodeID(u)) {
				t.Fatalf("bidirected grid asymmetric at (%d,%d)", u, v)
			}
		}
	}
}
