package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// scanEdgeByPort is the pre-CSR O(degree) reference implementation.
func scanEdgeByPort(g *Graph, u NodeID, port PortID) (Edge, bool) {
	for _, e := range g.Out(u) {
		if e.Port == port {
			return e, true
		}
	}
	return Edge{}, false
}

// TestEdgeByPortMatchesScan checks the sealed binary-search lookup
// against the linear scan for every (node, port) pair, with adversarial
// (non-sequential, sparse) port labels.
func TestEdgeByPortMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := RandomSC(60, 240, 9, rng)
	g.AssignPorts(rng.Intn)
	space := PortID(4 * g.N())
	for u := 0; u < g.N(); u++ {
		for p := PortID(0); p < space; p++ {
			got, okGot := g.EdgeByPort(NodeID(u), p)
			want, okWant := scanEdgeByPort(g, NodeID(u), p)
			if okGot != okWant || got != want {
				t.Fatalf("EdgeByPort(%d,%d) = (%v,%v), scan (%v,%v)", u, p, got, okGot, want, okWant)
			}
		}
	}
}

// TestPortToAndHasEdge cross-checks the O(1) pair lookups against the
// adjacency on a relabeled graph, including negatives.
func TestPortToAndHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomSC(40, 150, 5, rng)
	g.AssignPorts(rng.Intn)
	present := make(map[uint64]PortID)
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			present[pairKey(NodeID(u), e.To)] = e.Port
		}
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			port, ok := g.PortTo(NodeID(u), NodeID(v))
			wantPort, wantOk := present[pairKey(NodeID(u), NodeID(v))]
			if ok != wantOk || (ok && port != wantPort) {
				t.Fatalf("PortTo(%d,%d) = (%d,%v), want (%d,%v)", u, v, port, ok, wantPort, wantOk)
			}
			if g.HasEdge(NodeID(u), NodeID(v)) != wantOk {
				t.Fatalf("HasEdge(%d,%d) = %v, want %v", u, v, !wantOk, wantOk)
			}
		}
	}
}

// TestMutationInvalidatesIndex interleaves lookups (which seal the CSR
// index) with mutations (which must invalidate it) and checks the
// lookups always see the current graph.
func TestMutationInvalidatesIndex(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	if _, ok := g.EdgeByPort(0, 0); !ok { // seals
		t.Fatal("missing initial edge by port")
	}
	g.MustAddEdge(0, 2, 1) // default port 1; must invalidate the index
	e, ok := g.EdgeByPort(0, 1)
	if !ok || e.To != 2 {
		t.Fatalf("EdgeByPort after AddEdge = (%v,%v), want edge to 2", e, ok)
	}
	rng := rand.New(rand.NewSource(3))
	g.AssignPorts(rng.Intn) // relabels; must invalidate again
	for _, e := range g.Out(0) {
		got, ok := g.EdgeByPort(0, e.Port)
		if !ok || got != e {
			t.Fatalf("EdgeByPort(0,%d) after AssignPorts = (%v,%v), want %v", e.Port, got, ok, e)
		}
	}
	if _, ok := g.EdgeByPort(0, -1); ok {
		t.Fatal("EdgeByPort matched a label that does not exist")
	}
}

// TestConcurrentSealing has many goroutines trigger the first index
// build at once and then read through it; run with -race this checks the
// double-checked sealing protocol.
func TestConcurrentSealing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := RandomSC(50, 200, 4, rng)
	g.AssignPorts(rng.Intn)
	type snap struct {
		u    NodeID
		e    Edge
		port PortID
	}
	var want []snap
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			want = append(want, snap{NodeID(u), e, e.Port})
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, s := range want {
				e, ok := g.EdgeByPort(s.u, s.port)
				if !ok || e != s.e {
					t.Errorf("concurrent EdgeByPort(%d,%d) = (%v,%v), want %v", s.u, s.port, e, ok, s.e)
					return
				}
				if p, ok := g.PortTo(s.u, s.e.To); !ok || p != s.port {
					t.Errorf("concurrent PortTo(%d,%d) = (%d,%v), want %d", s.u, s.e.To, p, ok, s.port)
					return
				}
				out := g.Out(s.u)
				if len(out) == 0 {
					t.Errorf("concurrent Out(%d) empty", s.u)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestReversePreservesPorts locks in the documented Reverse contract:
// the reversed edge (v,u) keeps the port of (u,v) unless that label is
// already taken among v's reversed out-edges, in which case it falls
// back to the smallest unused value — and labels stay unique per node
// either way.
func TestReversePreservesPorts(t *testing.T) {
	// Collision-free case: a cycle. Every reversed edge must keep its
	// original label exactly.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 0, 4)
	rng := rand.New(rand.NewSource(13))
	g.AssignPorts(rng.Intn)
	r := g.Reverse()
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			p, ok := r.PortTo(e.To, NodeID(u))
			if !ok {
				t.Fatalf("Reverse lost edge (%d,%d)", e.To, u)
			}
			if p != e.Port {
				t.Fatalf("collision-free Reverse changed port of (%d,%d): %d -> %d", u, e.To, e.Port, p)
			}
		}
	}

	// Forced collision: two edges into node 2 carrying the same label at
	// their tails; after reversal node 2 has both as out-edges and must
	// keep one label and re-label the other uniquely.
	h := New(3)
	h.MustAddEdge(0, 2, 1)
	h.MustAddEdge(1, 2, 1)
	h.setPort(0, 0, 5)
	h.setPort(1, 0, 5)
	hr := h.Reverse()
	ports := map[PortID]bool{}
	kept := false
	for _, e := range hr.Out(2) {
		if ports[e.Port] {
			t.Fatalf("Reverse produced duplicate port %d at node 2", e.Port)
		}
		ports[e.Port] = true
		if e.Port == 5 {
			kept = true
		}
	}
	if !kept {
		t.Fatal("Reverse preserved neither of the colliding original labels")
	}
	if len(ports) != 2 {
		t.Fatalf("node 2 should have 2 reversed out-edges, got %d", len(ports))
	}

	// Round-trip sanity on a random graph: reversing twice preserves the
	// edge set and weights, and every node's ports stay unique.
	big := RandomSC(30, 90, 6, rng)
	big.AssignPorts(rng.Intn)
	rr := big.Reverse().Reverse()
	if rr.M() != big.M() {
		t.Fatalf("double Reverse changed edge count: %d -> %d", big.M(), rr.M())
	}
	for u := 0; u < big.N(); u++ {
		seen := map[PortID]bool{}
		for _, e := range rr.Out(NodeID(u)) {
			if seen[e.Port] {
				t.Fatalf("double Reverse duplicate port %d at %d", e.Port, u)
			}
			seen[e.Port] = true
			if !big.HasEdge(NodeID(u), e.To) {
				t.Fatalf("double Reverse invented edge (%d,%d)", u, e.To)
			}
		}
	}
}
