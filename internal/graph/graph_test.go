package graph

import (
	"math/rand"
	"testing"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		w       Dist
		wantErr bool
	}{
		{"valid", 0, 1, 5, false},
		{"duplicate", 0, 1, 7, true},
		{"self-loop", 1, 1, 1, true},
		{"zero weight", 1, 2, 0, true},
		{"negative weight", 1, 2, -3, true},
		{"out of range u", 3, 0, 1, true},
		{"out of range v", 0, 3, 1, true},
		{"negative node", -1, 0, 1, true},
		{"weight at Inf", 1, 2, Inf, true},
		{"second valid", 1, 2, 9, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.w)
			if (err != nil) != tc.wantErr {
				t.Fatalf("AddEdge(%d,%d,%d) error = %v, wantErr = %v", tc.u, tc.v, tc.w, err, tc.wantErr)
			}
		})
	}
	if g.M() != 2 {
		t.Fatalf("M() = %d, want 2", g.M())
	}
}

func TestHasEdgeAndPortTo(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 2, 3)
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatal("expected edges missing")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("unexpected edge (1,0)")
	}
	p, ok := g.PortTo(0, 2)
	if !ok {
		t.Fatal("PortTo(0,2) not found")
	}
	e, ok := g.EdgeByPort(0, p)
	if !ok || e.To != 2 {
		t.Fatalf("EdgeByPort(0,%d) = %+v, %v; want edge to 2", p, e, ok)
	}
}

func TestDefaultPortsAreSequential(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	for i, e := range g.Out(0) {
		if e.Port != PortID(i) {
			t.Fatalf("default port of edge %d = %d, want %d", i, e.Port, i)
		}
	}
}

func TestAssignPortsUniquePerNode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomSC(64, 256, 10, rng)
	for u := 0; u < g.N(); u++ {
		seen := map[PortID]bool{}
		for _, e := range g.Out(NodeID(u)) {
			if seen[e.Port] {
				t.Fatalf("node %d has duplicate port %d", u, e.Port)
			}
			seen[e.Port] = true
			if e.Port < 0 || int(e.Port) >= 4*g.N() {
				t.Fatalf("port %d outside adversarial space [0,%d)", e.Port, 4*g.N())
			}
		}
	}
}

func TestPortsAreAdversarial(t *testing.T) {
	// After AssignPorts, at least one node should have a port label that
	// differs from the sequential default — i.e. relabeling actually
	// happened (fixed-port model, §1.1.3).
	rng := rand.New(rand.NewSource(7))
	g := RandomSC(32, 128, 1, rng)
	nonSequential := false
	for u := 0; u < g.N() && !nonSequential; u++ {
		for i, e := range g.Out(NodeID(u)) {
			if e.Port != PortID(i) {
				nonSequential = true
				break
			}
		}
	}
	if !nonSequential {
		t.Fatal("AssignPorts left every port sequential; adversarial relabeling failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
	if g.HasEdge(1, 2) {
		t.Fatal("mutation of clone leaked into original")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 5)
	r := g.Reverse()
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 1) {
		t.Fatal("Reverse missing flipped edges")
	}
	if r.HasEdge(0, 1) {
		t.Fatal("Reverse kept original edge direction")
	}
	if r.M() != 2 {
		t.Fatalf("Reverse M() = %d, want 2", r.M())
	}
}

func TestInEdgesMirrorOutEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := RandomSC(50, 200, 9, rng)
	outCount := 0
	for u := 0; u < g.N(); u++ {
		outCount += len(g.Out(NodeID(u)))
		for _, e := range g.Out(NodeID(u)) {
			found := false
			for _, ie := range g.In(e.To) {
				if ie.From == NodeID(u) && ie.Weight == e.Weight {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from in-adjacency", u, e.To)
			}
		}
	}
	inCount := 0
	for u := 0; u < g.N(); u++ {
		inCount += len(g.In(NodeID(u)))
	}
	if outCount != inCount || outCount != g.M() {
		t.Fatalf("edge accounting mismatch: out=%d in=%d M=%d", outCount, inCount, g.M())
	}
}

func TestTotalAndMaxWeight(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 4)
	g.MustAddEdge(1, 2, 7)
	g.MustAddEdge(2, 0, 2)
	if got := g.TotalWeight(); got != 13 {
		t.Fatalf("TotalWeight = %d, want 13", got)
	}
	if got := g.MaxWeight(); got != 7 {
		t.Fatalf("MaxWeight = %d, want 7", got)
	}
}
