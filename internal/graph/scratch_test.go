package graph

import (
	"math/rand"
	"testing"
)

// refDijkstra is an independent O(n^2) reference implementation used to
// certify the specialized 4-ary-heap core.
func refDijkstra(g *Graph, root NodeID, reverse bool, inSet []bool) ([]Dist, []NodeID) {
	n := g.N()
	dist := make([]Dist, n)
	parent := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = Inf
		parent[i] = -1
	}
	dist[root] = 0
	for {
		u := NodeID(-1)
		best := Inf
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				best = dist[v]
				u = NodeID(v)
			}
		}
		if u < 0 {
			return dist, parent
		}
		done[u] = true
		if reverse {
			for _, e := range g.In(u) {
				if inSet != nil && !inSet[e.From] {
					continue
				}
				if nd := dist[u] + e.Weight; nd < dist[e.From] {
					dist[e.From] = nd
					parent[e.From] = u
				}
			}
		} else {
			for _, e := range g.Out(u) {
				if inSet != nil && !inSet[e.To] {
					continue
				}
				if nd := dist[u] + e.Weight; nd < dist[e.To] {
					dist[e.To] = nd
					parent[e.To] = u
				}
			}
		}
	}
}

func checkDistances(t *testing.T, got SSSP, wantDist []Dist, label string) {
	t.Helper()
	for v := range wantDist {
		if got.Dist[v] != wantDist[v] {
			t.Fatalf("%s: dist[%d] = %d, want %d", label, v, got.Dist[v], wantDist[v])
		}
	}
}

// checkParents verifies that every reachable non-root node's parent edge
// lies on a shortest path (the exact parent choice is tie-break
// dependent; determinism is asserted separately).
func checkParents(t *testing.T, g *Graph, root NodeID, reverse bool, res SSSP, label string) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if NodeID(v) == root || res.Dist[v] >= Inf {
			if NodeID(v) != root && res.Parent[v] != -1 {
				t.Fatalf("%s: unreachable %d has parent %d", label, v, res.Parent[v])
			}
			continue
		}
		p := res.Parent[v]
		if p < 0 {
			t.Fatalf("%s: reachable %d has no parent", label, v)
		}
		var w Dist = -1
		if reverse {
			for _, e := range g.Out(NodeID(v)) {
				if e.To == p {
					w = e.Weight
				}
			}
		} else {
			for _, e := range g.Out(p) {
				if e.To == NodeID(v) {
					w = e.Weight
				}
			}
		}
		if w < 0 {
			t.Fatalf("%s: parent edge (%d,%d) does not exist", label, p, v)
		}
		if res.Dist[p]+w != res.Dist[v] {
			t.Fatalf("%s: parent edge (%d,%d) not on a shortest path", label, p, v)
		}
	}
}

func TestSSSPScratchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSSSPScratch(0)
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(56)
		g := RandomSC(n, 3*n, 9, rng)
		root := NodeID(rng.Intn(n))
		for _, reverse := range []bool{false, true} {
			wantDist, _ := refDijkstra(g, root, reverse, nil)
			var got SSSP
			if reverse {
				got = s.DijkstraRev(g, root)
			} else {
				got = s.Dijkstra(g, root)
			}
			checkDistances(t, got, wantDist, "full")
			checkParents(t, g, root, reverse, got, "full")
		}
		// Restricted run over a random induced subset containing root.
		inSet := make([]bool, n)
		for v := range inSet {
			inSet[v] = rng.Intn(3) > 0
		}
		inSet[root] = true
		wantDist, _ := refDijkstra(g, root, false, inSet)
		got := s.DijkstraRestricted(g, root, inSet)
		checkDistances(t, got, wantDist, "restricted")
		wantDist, _ = refDijkstra(g, root, true, inSet)
		got = s.DijkstraRevRestricted(g, root, inSet)
		checkDistances(t, got, wantDist, "restricted-rev")
	}
}

// TestSSSPScratchMatchesPackageDijkstra locks scratch reuse to the
// package entry points: same graph, same roots, byte-identical rows and
// parents (both paths share one core, so this is a reuse/epoch test).
func TestSSSPScratchMatchesPackageDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomSC(64, 256, 8, rng)
	s := NewSSSPScratch(g.N())
	for root := 0; root < g.N(); root += 7 {
		want := Dijkstra(g, NodeID(root))
		got := s.Dijkstra(g, NodeID(root))
		for v := range want.Dist {
			if got.Dist[v] != want.Dist[v] || got.Parent[v] != want.Parent[v] {
				t.Fatalf("root %d node %d: scratch (%d,%d) != fresh (%d,%d)",
					root, v, got.Dist[v], got.Parent[v], want.Dist[v], want.Parent[v])
			}
		}
	}
}

// TestSSSPScratchReuseAcrossGraphs exercises the epoch-stamped reset: a
// scratch hopping between graphs of different sizes must never leak
// state from a previous run.
func TestSSSPScratchReuseAcrossGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewSSSPScratch(0)
	sizes := []int{40, 8, 64, 8, 40, 16}
	for trial, n := range sizes {
		g := RandomSC(n, 3*n, 5, rng)
		root := NodeID(trial % n)
		wantDist, _ := refDijkstra(g, root, false, nil)
		got := s.Dijkstra(g, root)
		if len(got.Dist) != n {
			t.Fatalf("trial %d: row length %d, want %d", trial, len(got.Dist), n)
		}
		checkDistances(t, got, wantDist, "reuse")
	}
}

func TestDijkstraScratchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	rng := rand.New(rand.NewSource(17))
	g := RandomSC(128, 512, 8, rng)
	g.Seal()
	s := NewSSSPScratch(g.N())
	s.Dijkstra(g, 0) // warm
	var sink Dist
	allocs := testing.AllocsPerRun(50, func() {
		res := s.Dijkstra(g, 3)
		sink += res.Dist[7]
		res = s.DijkstraRev(g, 5)
		sink += res.Dist[2]
	})
	if allocs != 0 {
		t.Fatalf("scratch Dijkstra allocates %.1f times per pair of runs, want 0 (sink %d)", allocs, sink)
	}
}

// TestSSSPScratchEpochWraparound forces the uint32 epoch to wrap and
// checks that stamps are cleared rather than misread.
func TestSSSPScratchEpochWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := RandomSC(12, 36, 4, rng)
	s := NewSSSPScratch(g.N())
	want := s.Dijkstra(g, 1)
	wantCopy := append([]Dist(nil), want.Dist...)
	s.epoch = ^uint32(0) - 1 // two runs from wrapping
	for i := 0; i < 4; i++ {
		got := s.Dijkstra(g, 1)
		for v := range wantCopy {
			if got.Dist[v] != wantCopy[v] {
				t.Fatalf("run %d after wrap: dist[%d] = %d, want %d", i, v, got.Dist[v], wantCopy[v])
			}
		}
	}
}
