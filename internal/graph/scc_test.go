package graph

import (
	"math/rand"
	"testing"
)

func TestSCCsSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, gen := range []struct {
		name string
		g    *Graph
	}{
		{"ring", Ring(10, nil)},
		{"randomSC", RandomSC(50, 100, 5, rng)},
		{"grid", Grid(4, 4, nil)},
		{"scaleFree", ScaleFreeSC(60, 2, 5, rng)},
		{"layered", LayeredSC(4, 5, 5, rng)},
		{"gnp", RandomGNP(40, 0.1, 5, rng)},
		{"complete", Complete(10, 5, rng)},
	} {
		t.Run(gen.name, func(t *testing.T) {
			if !StronglyConnected(gen.g) {
				t.Fatalf("%s generator produced a graph that is not strongly connected", gen.name)
			}
		})
	}
}

func TestSCCsMultipleComponents(t *testing.T) {
	// Two 3-cycles joined by a one-way edge: exactly 2 SCCs.
	g := New(6)
	for i := 0; i < 3; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%3), 1)
		g.MustAddEdge(NodeID(3+i), NodeID(3+(i+1)%3), 1)
	}
	g.MustAddEdge(0, 3, 1)
	comps := SCCs(g)
	if len(comps) != 2 {
		t.Fatalf("got %d SCCs, want 2", len(comps))
	}
	if StronglyConnected(g) {
		t.Fatal("graph with a one-way bridge reported strongly connected")
	}
}

func TestSCCsDAG(t *testing.T) {
	// A path 0 -> 1 -> 2 -> 3: every node is its own SCC, and the
	// components come out in reverse topological order.
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	comps := SCCs(g)
	if len(comps) != 4 {
		t.Fatalf("got %d SCCs, want 4", len(comps))
	}
	// Reverse topological order: sinks first.
	order := make(map[NodeID]int)
	for i, comp := range comps {
		for _, v := range comp {
			order[v] = i
		}
	}
	if !(order[3] < order[2] && order[2] < order[1] && order[1] < order[0]) {
		t.Fatalf("SCCs not in reverse topological order: %v", comps)
	}
}

func TestSCCsCoverAllNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := New(100)
	// Random sparse digraph, possibly disconnected.
	for i := 0; i < 150; i++ {
		u, v := NodeID(rng.Intn(100)), NodeID(rng.Intn(100))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1)
		}
	}
	comps := SCCs(g)
	seen := make([]bool, 100)
	total := 0
	for _, comp := range comps {
		for _, v := range comp {
			if seen[v] {
				t.Fatalf("node %d in two SCCs", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != 100 {
		t.Fatalf("SCCs cover %d nodes, want 100", total)
	}
}

func TestSCCsDeepPathNoOverflow(t *testing.T) {
	// A 200k-node directed path would overflow a recursive Tarjan; the
	// iterative version must handle it.
	n := 200000
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(i+1), 1)
	}
	comps := SCCs(g)
	if len(comps) != n {
		t.Fatalf("got %d SCCs, want %d", len(comps), n)
	}
}

func TestSingletonAndEmpty(t *testing.T) {
	if !StronglyConnected(New(0)) {
		t.Fatal("empty graph should be trivially strongly connected")
	}
	if !StronglyConnected(New(1)) {
		t.Fatal("singleton graph should be strongly connected")
	}
	if got := len(SCCs(New(3))); got != 3 {
		t.Fatalf("edgeless graph: %d SCCs, want 3", got)
	}
}
