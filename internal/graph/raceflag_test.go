//go:build race

package graph

// raceEnabled skips allocation-count assertions under the race detector,
// whose instrumentation changes allocation behavior.
const raceEnabled = true
