package graph

import (
	"math/rand"
	"testing"
)

// TestLazyOracleInvalidatesOnMutation is the stale-row regression test:
// before the generation check, a LazyOracle kept serving rows measured on
// the pre-mutation graph, silently wrong once churn reweights an edge.
func TestLazyOracleInvalidatesOnMutation(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 0, 10)

	o := NewLazyOracle(g, 8)
	if d := o.D(0, 2); d != 20 {
		t.Fatalf("d(0,2) = %d before mutation, want 20", d)
	}
	if d := o.ToSink(2)[0]; d != 20 {
		t.Fatalf("reverse d(0,2) = %d before mutation, want 20", d)
	}

	if err := g.SetEdgeWeight(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if d := o.D(0, 2); d != 11 {
		t.Fatalf("d(0,2) = %d after reweight, want 11 (stale cached row served)", d)
	}
	if d := o.ToSink(2)[0]; d != 11 {
		t.Fatalf("reverse d(0,2) = %d after reweight, want 11 (stale cached row served)", d)
	}
	if st := o.Stats(); st.Invalidations == 0 {
		t.Fatalf("stats report no invalidations after a mutation: %+v", st)
	}

	// Down/up flap round-trips the row to its original value.
	if err := g.SetEdgeWeight(1, 2, DownWeight); err != nil {
		t.Fatal(err)
	}
	if d := o.D(1, 2); d < DownWeight {
		t.Fatalf("d(1,2) = %d with edge down, want >= DownWeight (path via down edge)", d)
	}
	if err := g.SetEdgeWeight(1, 2, 10); err != nil {
		t.Fatal(err)
	}
	if d := o.D(0, 2); d != 20 {
		t.Fatalf("d(0,2) = %d after edge recovery, want 20", d)
	}
}

// TestLazyOracleGenerationStableAcrossQueries checks that queries alone
// never flush the cache: hits keep accumulating while the graph is quiet.
func TestLazyOracleGenerationStableAcrossQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomSC(40, 80, 16, rng)
	g.Seal()
	o := NewLazyOracle(g, 16)
	for i := 0; i < 10; i++ {
		o.FromSource(3)
	}
	st := o.Stats()
	if st.Invalidations != 0 {
		t.Fatalf("queries without mutation flushed the cache: %+v", st)
	}
	if st.Hits < 9 {
		t.Fatalf("expected repeat queries to hit, got %+v", st)
	}
}
