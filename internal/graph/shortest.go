package graph

import "sync"

// SSSP holds the result of a single-source (or single-sink) shortest path
// computation.
type SSSP struct {
	// Dist[v] is the shortest distance from the source to v (forward run)
	// or from v to the sink (reverse run). Inf if unreachable.
	Dist []Dist
	// Parent[v] is the predecessor of v on a shortest path in the
	// traversal tree, or -1 for the root / unreachable nodes. For a
	// forward run Parent[v] is the node before v on a shortest
	// source->v path; for a reverse run it is the node after v on a
	// shortest v->sink path (v's next hop toward the sink).
	Parent []NodeID
}

// heapNode is one entry of the scratch's specialized priority queue:
// a plain (dist, node) pair, never boxed through an interface.
type heapNode struct {
	dist Dist
	node NodeID
}

// SSSPScratch is the reusable state of the Dijkstra core: distance,
// parent and heap-position arrays plus the 4-ary min-heap storage, all
// reused across runs so a steady-state shortest-path computation
// allocates nothing.
//
// Re-initialization is O(touched), not O(n): every per-node array is
// guarded by an epoch stamp, so starting a new run is one counter
// increment and entries are lazily initialized the first time the run
// touches their node. The heap is index-tracked (decrease-key instead of
// lazy deletion), so its size is bounded by n and pops carry final
// distances only.
//
// The SSSP values returned by the scratch's methods alias the scratch's
// own buffers: they are valid until the next run on the same scratch and
// must be treated as read-only. Callers that need the rows to outlive the
// scratch copy them. A scratch is not safe for concurrent use; use one
// per goroutine (AllPairsParallel does) or the package-level pool.
//
// The zero value is a valid empty scratch; buffers grow on first use.
type SSSPScratch struct {
	dist   []Dist
	parent []NodeID
	pos    []int32 // node -> heap index; -1 once settled. Valid when stamped.
	stamp  []uint32
	epoch  uint32
	heap   []heapNode
}

// NewSSSPScratch returns a scratch pre-sized for n-node graphs.
func NewSSSPScratch(n int) *SSSPScratch {
	s := &SSSPScratch{}
	s.ensure(n)
	return s
}

// ensure grows the per-node arrays to cover n nodes.
func (s *SSSPScratch) ensure(n int) {
	if len(s.dist) >= n {
		return
	}
	s.dist = make([]Dist, n)
	s.parent = make([]NodeID, n)
	s.pos = make([]int32, n)
	s.stamp = make([]uint32, n) // zeroed: nothing is stamped for any epoch >= 1
	s.epoch = 0
	if cap(s.heap) < n {
		s.heap = make([]heapNode, 0, n)
	}
}

// begin opens a new run: bump the epoch (un-stamping every node in O(1))
// and empty the heap. Epoch 0 is never used as a live epoch so that
// freshly zeroed stamp arrays mean "untouched".
func (s *SSSPScratch) begin() {
	s.epoch++
	if s.epoch == 0 { // wrapped after 2^32 runs: stamps are ambiguous, clear them
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.heap = s.heap[:0]
}

// less is the heap order: by distance, ties broken by node id. This is a
// strict total order, so the pop sequence — and therefore every parent
// choice — is identical to the previous container/heap implementation.
func less(a, b heapNode) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.node < b.node)
}

// push inserts a node that is not currently in the heap.
func (s *SSSPScratch) push(node NodeID, d Dist) {
	s.heap = append(s.heap, heapNode{dist: d, node: node})
	s.siftUp(len(s.heap) - 1)
}

// decrease lowers the key of a node already in the heap.
func (s *SSSPScratch) decrease(node NodeID, d Dist) {
	i := int(s.pos[node])
	s.heap[i].dist = d
	s.siftUp(i)
}

func (s *SSSPScratch) siftUp(i int) {
	h := s.heap
	it := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(it, h[p]) {
			break
		}
		h[i] = h[p]
		s.pos[h[i].node] = int32(i)
		i = p
	}
	h[i] = it
	s.pos[it.node] = int32(i)
}

func (s *SSSPScratch) siftDown(i int) {
	h := s.heap
	n := len(h)
	it := h[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if less(h[j], h[best]) {
				best = j
			}
		}
		if !less(h[best], it) {
			break
		}
		h[i] = h[best]
		s.pos[h[i].node] = int32(i)
		i = best
	}
	h[i] = it
	s.pos[it.node] = int32(i)
}

// popMin removes and returns the heap minimum, marking the node settled.
func (s *SSSPScratch) popMin() heapNode {
	h := s.heap
	top := h[0]
	s.pos[top.node] = -1
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		s.heap = h[:last]
		s.siftDown(0)
	} else {
		s.heap = h[:0]
	}
	return top
}

// relax offers the tentative distance nd to v via parent.
func (s *SSSPScratch) relax(v NodeID, nd Dist, parent NodeID) {
	if s.stamp[v] != s.epoch {
		s.stamp[v] = s.epoch
		s.dist[v] = nd
		s.parent[v] = parent
		s.push(v, nd)
		return
	}
	if nd < s.dist[v] {
		s.dist[v] = nd
		s.parent[v] = parent
		s.decrease(v, nd)
	}
}

// Dijkstra computes shortest distances from src over out-edges, reusing
// the scratch's buffers: zero allocations in steady state. The returned
// slices alias the scratch and are valid until its next run.
func (s *SSSPScratch) Dijkstra(g *Graph, src NodeID) SSSP {
	return s.run(g, src, false, nil)
}

// DijkstraRev computes, for every node v, the shortest distance from v TO
// sink, running over in-edges; Parent[v] is v's next hop toward the sink.
// Same reuse contract as Dijkstra.
func (s *SSSPScratch) DijkstraRev(g *Graph, sink NodeID) SSSP {
	return s.run(g, sink, true, nil)
}

// DijkstraRestricted is Dijkstra over the subgraph induced by the nodes
// with inSet[v] true (the root is always traversed). Nodes outside the
// set report Inf / -1.
func (s *SSSPScratch) DijkstraRestricted(g *Graph, src NodeID, inSet []bool) SSSP {
	return s.run(g, src, false, inSet)
}

// DijkstraRevRestricted is DijkstraRev over the subgraph induced by inSet.
func (s *SSSPScratch) DijkstraRevRestricted(g *Graph, sink NodeID, inSet []bool) SSSP {
	return s.run(g, sink, true, inSet)
}

// run is the single Dijkstra loop behind every variant. When the graph is
// sealed it walks the flat CSR arrays directly (one index load for the
// whole run instead of one per pop); otherwise it uses the per-node build
// slices.
func (s *SSSPScratch) run(g *Graph, root NodeID, reverse bool, inSet []bool) SSSP {
	n := g.N()
	s.ensure(n)
	s.begin()
	s.stamp[root] = s.epoch
	s.dist[root] = 0
	s.parent[root] = -1
	s.push(root, 0)
	idx := g.idx.Load()
	for len(s.heap) > 0 {
		top := s.popMin()
		u, du := top.node, top.dist
		if reverse {
			var edges []InEdge
			if idx != nil {
				edges = idx.inEdges[idx.inStart[u]:idx.inStart[u+1]]
			} else {
				edges = g.in[u]
			}
			for _, e := range edges {
				if inSet != nil && !inSet[e.From] {
					continue
				}
				s.relax(e.From, du+e.Weight, u)
			}
		} else {
			var edges []Edge
			if idx != nil {
				edges = idx.outEdges[idx.outStart[u]:idx.outStart[u+1]]
			} else {
				edges = g.out[u]
			}
			for _, e := range edges {
				if inSet != nil && !inSet[e.To] {
					continue
				}
				s.relax(e.To, du+e.Weight, u)
			}
		}
	}
	// Normalize untouched entries so the returned rows are complete: one
	// predictable compare per node, writes only for unreached nodes.
	ep := s.epoch
	for v := 0; v < n; v++ {
		if s.stamp[v] != ep {
			s.dist[v] = Inf
			s.parent[v] = -1
		}
	}
	return SSSP{Dist: s.dist[:n:n], Parent: s.parent[:n:n]}
}

// scratchPool recycles scratches for the one-shot package-level entry
// points (Dijkstra, DijkstraRev, the lazy oracle's row fills), so even
// callers without their own scratch pay only for the rows they keep.
var scratchPool = sync.Pool{New: func() any { return &SSSPScratch{} }}

func getScratch() *SSSPScratch  { return scratchPool.Get().(*SSSPScratch) }
func putScratch(s *SSSPScratch) { scratchPool.Put(s) }

// runPooled executes one run on a pooled scratch and copies the result
// rows into caller-owned slices — the shared body of every package-level
// entry point.
func runPooled(run func(*SSSPScratch) SSSP) SSSP {
	s := getScratch()
	r := run(s)
	out := SSSP{
		Dist:   append([]Dist(nil), r.Dist...),
		Parent: append([]NodeID(nil), r.Parent...),
	}
	putScratch(s)
	return out
}

// Dijkstra computes shortest distances from src over out-edges. The
// returned slices are freshly allocated and owned by the caller; use an
// SSSPScratch directly for the zero-allocation contract.
func Dijkstra(g *Graph, src NodeID) SSSP {
	return runPooled(func(s *SSSPScratch) SSSP { return s.Dijkstra(g, src) })
}

// DijkstraRev computes, for every node v, the shortest distance from v TO
// sink, by running Dijkstra over in-edges. Parent[v] is v's successor on a
// shortest v->sink path, i.e. the next hop toward the sink. The returned
// slices are owned by the caller.
func DijkstraRev(g *Graph, sink NodeID) SSSP {
	return runPooled(func(s *SSSPScratch) SSSP { return s.DijkstraRev(g, sink) })
}

// DijkstraRestricted is Dijkstra over the subgraph induced by the nodes
// with inSet[v] true (the root is always traversed); nodes outside the
// set report Inf / -1. Pooled scratch, caller-owned result slices.
func DijkstraRestricted(g *Graph, src NodeID, inSet []bool) SSSP {
	return runPooled(func(s *SSSPScratch) SSSP { return s.DijkstraRestricted(g, src, inSet) })
}

// DijkstraRevRestricted is DijkstraRev over the subgraph induced by
// inSet. Pooled scratch, caller-owned result slices.
func DijkstraRevRestricted(g *Graph, sink NodeID, inSet []bool) SSSP {
	return runPooled(func(s *SSSPScratch) SSSP { return s.DijkstraRevRestricted(g, sink, inSet) })
}

// DenseMetric is the eager all-pairs distance matrix of a graph together
// with the derived roundtrip metric r(u,v) = d(u,v) + d(v,u) (§1.1 of the
// paper): O(n^2) words, O(1) queries. It is the reference DistanceOracle;
// see LazyOracle for the bounded-memory alternative.
type DenseMetric struct {
	n int
	d [][]Dist

	// tr is the lazily built transpose (tr[v][u] = d(u,v)), so ToSink is
	// an O(1) slice return after the first call instead of an O(n) copy
	// per call. Built once under trOnce; costs one extra n^2 block only
	// when some consumer actually asks for columns.
	trOnce sync.Once
	tr     [][]Dist
}

// Metric is the historical name of DenseMetric, kept as an alias for the
// experiment harness and tests.
type Metric = DenseMetric

// AllPairs computes the full distance matrix. The per-source Dijkstras
// are embarrassingly parallel, so it fans out over GOMAXPROCS workers;
// use AllPairsSequential for a single-threaded build (benchmark baseline).
func AllPairs(g *Graph) *DenseMetric {
	return AllPairsParallel(g, 0)
}

// AllPairsSequential runs the n forward Dijkstras on the calling
// goroutine through one reused scratch. Same output as AllPairs.
func AllPairsSequential(g *Graph) *DenseMetric {
	n := g.N()
	m := &DenseMetric{n: n, d: make([][]Dist, n)}
	s := getScratch()
	for u := 0; u < n; u++ {
		r := s.Dijkstra(g, NodeID(u))
		m.d[u] = append([]Dist(nil), r.Dist...)
	}
	putScratch(s)
	return m
}

// N returns the number of nodes the metric was computed over.
func (m *DenseMetric) N() int { return m.n }

// D returns the one-way shortest distance d(u,v).
func (m *DenseMetric) D(u, v NodeID) Dist { return m.d[u][v] }

// R returns the roundtrip distance r(u,v) = d(u,v) + d(v,u). R is a
// genuine metric on strongly connected digraphs: symmetric, zero iff
// u == v, and satisfying the triangle inequality.
func (m *DenseMetric) R(u, v NodeID) Dist {
	duv, dvu := m.d[u][v], m.d[v][u]
	if duv >= Inf || dvu >= Inf {
		return Inf
	}
	return duv + dvu
}

// FromSource implements DistanceOracle: the row d(u, ·). The returned
// slice is owned by the metric and must not be modified.
func (m *DenseMetric) FromSource(u NodeID) []Dist { return m.d[u] }

// ToSink implements DistanceOracle: the column d(·, v). The first call
// builds the full transpose once (concurrency-safe); every call returns
// a cached slice that must not be modified.
func (m *DenseMetric) ToSink(v NodeID) []Dist {
	m.trOnce.Do(func() {
		tr := make([][]Dist, m.n)
		for u := 0; u < m.n; u++ {
			tr[u] = make([]Dist, m.n)
		}
		for u := 0; u < m.n; u++ {
			row := m.d[u]
			for w := 0; w < m.n; w++ {
				tr[w][u] = row[w]
			}
		}
		m.tr = tr
	})
	return m.tr[v]
}

// RTDiam returns the roundtrip diameter max_{u,v} r(u,v).
func (m *DenseMetric) RTDiam() Dist {
	var diam Dist
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			if r := m.R(NodeID(u), NodeID(v)); r > diam {
				diam = r
			}
		}
	}
	return diam
}

// Diam returns the one-way diameter max_{u,v} d(u,v).
func (m *DenseMetric) Diam() Dist {
	var diam Dist
	for u := range m.d {
		for _, d := range m.d[u] {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
