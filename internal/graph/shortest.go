package graph

import (
	"container/heap"
	"sync"
)

// SSSP holds the result of a single-source (or single-sink) shortest path
// computation.
type SSSP struct {
	// Dist[v] is the shortest distance from the source to v (forward run)
	// or from v to the sink (reverse run). Inf if unreachable.
	Dist []Dist
	// Parent[v] is the predecessor of v on a shortest path in the
	// traversal tree, or -1 for the root / unreachable nodes. For a
	// forward run Parent[v] is the node before v on a shortest
	// source->v path; for a reverse run it is the node after v on a
	// shortest v->sink path (v's next hop toward the sink).
	Parent []NodeID
}

type heapItem struct {
	node NodeID
	dist Dist
}

type distHeap struct {
	items []heapItem
	pos   []int32 // node -> index in items, -1 if absent
}

func newDistHeap(n int) *distHeap {
	h := &distHeap{pos: make([]int32, n)}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *distHeap) Len() int { return len(h.items) }
func (h *distHeap) Less(i, j int) bool {
	return h.items[i].dist < h.items[j].dist ||
		(h.items[i].dist == h.items[j].dist && h.items[i].node < h.items[j].node)
}
func (h *distHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].node] = int32(i)
	h.pos[h.items[j].node] = int32(j)
}
func (h *distHeap) Push(x any) {
	it := x.(heapItem)
	h.pos[it.node] = int32(len(h.items))
	h.items = append(h.items, it)
}
func (h *distHeap) Pop() any {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	h.pos[it.node] = -1
	return it
}

// decreaseOrPush lowers node's key to d, inserting it if absent.
func (h *distHeap) decreaseOrPush(node NodeID, d Dist) {
	if i := h.pos[node]; i >= 0 {
		h.items[i].dist = d
		heap.Fix(h, int(i))
		return
	}
	heap.Push(h, heapItem{node: node, dist: d})
}

// Dijkstra computes shortest distances from src over out-edges.
func Dijkstra(g *Graph, src NodeID) SSSP {
	return dijkstra(g, src, false)
}

// DijkstraRev computes, for every node v, the shortest distance from v TO
// sink, by running Dijkstra over in-edges. Parent[v] is v's successor on a
// shortest v->sink path, i.e. the next hop toward the sink.
func DijkstraRev(g *Graph, sink NodeID) SSSP {
	return dijkstra(g, sink, true)
}

func dijkstra(g *Graph, root NodeID, reverse bool) SSSP {
	n := g.N()
	res := SSSP{
		Dist:   make([]Dist, n),
		Parent: make([]NodeID, n),
	}
	for i := range res.Dist {
		res.Dist[i] = Inf
		res.Parent[i] = -1
	}
	res.Dist[root] = 0
	h := newDistHeap(n)
	heap.Push(h, heapItem{node: root, dist: 0})
	for h.Len() > 0 {
		it := heap.Pop(h).(heapItem)
		u := it.node
		if it.dist > res.Dist[u] {
			continue
		}
		if reverse {
			for _, e := range g.In(u) {
				if nd := it.dist + e.Weight; nd < res.Dist[e.From] {
					res.Dist[e.From] = nd
					res.Parent[e.From] = u
					h.decreaseOrPush(e.From, nd)
				}
			}
		} else {
			for _, e := range g.Out(u) {
				if nd := it.dist + e.Weight; nd < res.Dist[e.To] {
					res.Dist[e.To] = nd
					res.Parent[e.To] = u
					h.decreaseOrPush(e.To, nd)
				}
			}
		}
	}
	return res
}

// DenseMetric is the eager all-pairs distance matrix of a graph together
// with the derived roundtrip metric r(u,v) = d(u,v) + d(v,u) (§1.1 of the
// paper): O(n^2) words, O(1) queries. It is the reference DistanceOracle;
// see LazyOracle for the bounded-memory alternative.
type DenseMetric struct {
	n int
	d [][]Dist

	// tr is the lazily built transpose (tr[v][u] = d(u,v)), so ToSink is
	// an O(1) slice return after the first call instead of an O(n) copy
	// per call. Built once under trOnce; costs one extra n^2 block only
	// when some consumer actually asks for columns.
	trOnce sync.Once
	tr     [][]Dist
}

// Metric is the historical name of DenseMetric, kept as an alias for the
// experiment harness and tests.
type Metric = DenseMetric

// AllPairs computes the full distance matrix. The per-source Dijkstras
// are embarrassingly parallel, so it fans out over GOMAXPROCS workers;
// use AllPairsSequential for a single-threaded build (benchmark baseline).
func AllPairs(g *Graph) *DenseMetric {
	return AllPairsParallel(g, 0)
}

// AllPairsSequential runs the n forward Dijkstras on the calling
// goroutine. Same output as AllPairs.
func AllPairsSequential(g *Graph) *DenseMetric {
	n := g.N()
	m := &DenseMetric{n: n, d: make([][]Dist, n)}
	for u := 0; u < n; u++ {
		m.d[u] = Dijkstra(g, NodeID(u)).Dist
	}
	return m
}

// N returns the number of nodes the metric was computed over.
func (m *DenseMetric) N() int { return m.n }

// D returns the one-way shortest distance d(u,v).
func (m *DenseMetric) D(u, v NodeID) Dist { return m.d[u][v] }

// R returns the roundtrip distance r(u,v) = d(u,v) + d(v,u). R is a
// genuine metric on strongly connected digraphs: symmetric, zero iff
// u == v, and satisfying the triangle inequality.
func (m *DenseMetric) R(u, v NodeID) Dist {
	duv, dvu := m.d[u][v], m.d[v][u]
	if duv >= Inf || dvu >= Inf {
		return Inf
	}
	return duv + dvu
}

// FromSource implements DistanceOracle: the row d(u, ·). The returned
// slice is owned by the metric and must not be modified.
func (m *DenseMetric) FromSource(u NodeID) []Dist { return m.d[u] }

// ToSink implements DistanceOracle: the column d(·, v). The first call
// builds the full transpose once (concurrency-safe); every call returns
// a cached slice that must not be modified.
func (m *DenseMetric) ToSink(v NodeID) []Dist {
	m.trOnce.Do(func() {
		tr := make([][]Dist, m.n)
		for u := 0; u < m.n; u++ {
			tr[u] = make([]Dist, m.n)
		}
		for u := 0; u < m.n; u++ {
			row := m.d[u]
			for w := 0; w < m.n; w++ {
				tr[w][u] = row[w]
			}
		}
		m.tr = tr
	})
	return m.tr[v]
}

// RTDiam returns the roundtrip diameter max_{u,v} r(u,v).
func (m *DenseMetric) RTDiam() Dist {
	var diam Dist
	for u := 0; u < m.n; u++ {
		for v := u + 1; v < m.n; v++ {
			if r := m.R(NodeID(u), NodeID(v)); r > diam {
				diam = r
			}
		}
	}
	return diam
}

// Diam returns the one-way diameter max_{u,v} d(u,v).
func (m *DenseMetric) Diam() Dist {
	var diam Dist
	for u := range m.d {
		for _, d := range m.d[u] {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
