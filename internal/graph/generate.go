package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the synthetic workloads used throughout the evaluation.
// Every generator takes an explicit *rand.Rand so experiments are
// reproducible from a seed; every generator returns a strongly connected
// digraph with positive integer weights and adversarially permuted ports.

// RandomSC returns a random strongly connected digraph with n nodes and
// approximately extra+n edges: a Hamiltonian cycle through a random
// permutation guarantees strong connectivity, then extra random edges are
// layered on top. Weights are uniform in [1, maxW].
func RandomSC(n, extra int, maxW Dist, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: RandomSC needs n >= 2, got %d", n))
	}
	if maxW < 1 {
		maxW = 1
	}
	g := New(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[(i+1)%n])
		g.MustAddEdge(u, v, 1+Dist(rng.Int63n(int64(maxW))))
	}
	for added := 0; added < extra; {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1+Dist(rng.Int63n(int64(maxW))))
		added++
	}
	g.AssignPorts(rng.Intn)
	return g
}

// RandomGNP returns an Erdős–Rényi digraph G(n, p) restricted to remain
// strongly connected: edges are sampled independently with probability p,
// then a random Hamiltonian cycle is added to guarantee connectivity.
func RandomGNP(n int, p float64, maxW Dist, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: RandomGNP needs n >= 2, got %d", n))
	}
	if maxW < 1 {
		maxW = 1
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < p {
				g.MustAddEdge(NodeID(u), NodeID(v), 1+Dist(rng.Int63n(int64(maxW))))
			}
		}
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[(i+1)%n])
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+Dist(rng.Int63n(int64(maxW))))
		}
	}
	g.AssignPorts(rng.Intn)
	return g
}

// Ring returns a directed cycle 0 -> 1 -> ... -> n-1 -> 0 with unit
// weights. Rings maximize the asymmetry between d(u,v) and d(v,u) and so
// exercise the roundtrip metric's worst cases.
func Ring(n int, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Ring needs n >= 2, got %d", n))
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID((i+1)%n), 1)
	}
	if rng != nil {
		g.AssignPorts(rng.Intn)
	}
	return g
}

// Grid returns a rows x cols bidirected grid (each undirected grid edge
// becomes two directed edges) with unit weights. Bidirected graphs have
// d(u,v) == d(v,u), the symmetric extreme of the roundtrip metric, and are
// the substrate of the Theorem 15 lower-bound reduction.
func Grid(rows, cols int, rng *rand.Rand) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic(fmt.Sprintf("graph: Grid needs >= 2 nodes, got %dx%d", rows, cols))
	}
	g := New(rows * cols)
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), 1)
				g.MustAddEdge(id(r, c+1), id(r, c), 1)
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), 1)
				g.MustAddEdge(id(r+1, c), id(r, c), 1)
			}
		}
	}
	if rng != nil {
		g.AssignPorts(rng.Intn)
	}
	return g
}

// Bidirect returns the directed graph obtained by replacing each edge of g
// with a pair of oppositely directed edges of the same weight — the
// construction in the proof of Theorem 15. Edges already paired are kept.
func Bidirect(g *Graph) *Graph {
	b := New(g.N())
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			if !b.HasEdge(NodeID(u), e.To) {
				b.MustAddEdge(NodeID(u), e.To, e.Weight)
			}
			if !b.HasEdge(e.To, NodeID(u)) {
				b.MustAddEdge(e.To, NodeID(u), e.Weight)
			}
		}
	}
	return b
}

// ScaleFreeSC returns a preferential-attachment digraph made strongly
// connected with a closing random cycle. Each new node attaches deg
// out-edges to nodes sampled with probability proportional to in-degree
// (plus smoothing), producing the heavy-tailed degree distribution of
// peer-to-peer overlays — the application domain the paper's conclusion
// motivates.
func ScaleFreeSC(n, deg int, maxW Dist, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: ScaleFreeSC needs n >= 2, got %d", n))
	}
	if deg < 1 {
		deg = 1
	}
	if maxW < 1 {
		maxW = 1
	}
	g := New(n)
	indeg := make([]int, n)
	total := 0
	sample := func(limit int) NodeID {
		// Weighted sample over [0, limit) by indeg+1.
		t := rng.Intn(total + limit)
		acc := 0
		for v := 0; v < limit; v++ {
			acc += indeg[v] + 1
			if t < acc {
				return NodeID(v)
			}
		}
		return NodeID(limit - 1)
	}
	for u := 1; u < n; u++ {
		for j := 0; j < deg && j < u; j++ {
			v := sample(u)
			if g.HasEdge(NodeID(u), v) {
				continue
			}
			g.MustAddEdge(NodeID(u), v, 1+Dist(rng.Int63n(int64(maxW))))
			indeg[v]++
			total++
		}
	}
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		u := NodeID(perm[i])
		v := NodeID(perm[(i+1)%n])
		if !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+Dist(rng.Int63n(int64(maxW))))
		}
	}
	g.AssignPorts(rng.Intn)
	return g
}

// LayeredSC returns a layered digraph: layers of width nodes with random
// forward edges between consecutive layers and a single heavy "return"
// path from the last layer to the first. The forward/return asymmetry
// makes d(u,v) and d(v,u) wildly different, stressing roundtrip amortization.
func LayeredSC(layers, width int, maxW Dist, rng *rand.Rand) *Graph {
	if layers < 2 || width < 1 {
		panic(fmt.Sprintf("graph: LayeredSC needs layers >= 2, width >= 1, got %d,%d", layers, width))
	}
	if maxW < 1 {
		maxW = 1
	}
	n := layers * width
	g := New(n)
	id := func(l, i int) NodeID { return NodeID(l*width + i) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			// Every node gets >= 1 forward edge; extras at random.
			j := rng.Intn(width)
			g.MustAddEdge(id(l, i), id(l+1, j), 1+Dist(rng.Int63n(int64(maxW))))
			for k := 0; k < 2; k++ {
				j2 := rng.Intn(width)
				if !g.HasEdge(id(l, i), id(l+1, j2)) {
					g.MustAddEdge(id(l, i), id(l+1, j2), 1+Dist(rng.Int63n(int64(maxW))))
				}
			}
		}
	}
	// Intra-layer cycles so each layer is internally reachable.
	for l := 0; l < layers; l++ {
		if width > 1 {
			for i := 0; i < width; i++ {
				if !g.HasEdge(id(l, i), id(l, (i+1)%width)) {
					g.MustAddEdge(id(l, i), id(l, (i+1)%width), 1+Dist(rng.Int63n(int64(maxW))))
				}
			}
		}
	}
	// Return edge closing the layered flow into a strongly connected whole.
	g.MustAddEdge(id(layers-1, 0), id(0, 0), 1+Dist(rng.Int63n(int64(maxW))))
	g.AssignPorts(rng.Intn)
	return g
}

// Complete returns the complete digraph on n nodes with weights uniform in
// [1, maxW].
func Complete(n int, maxW Dist, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Complete needs n >= 2, got %d", n))
	}
	if maxW < 1 {
		maxW = 1
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				g.MustAddEdge(NodeID(u), NodeID(v), 1+Dist(rng.Int63n(int64(maxW))))
			}
		}
	}
	g.AssignPorts(rng.Intn)
	return g
}
