// Package graph implements the directed weighted graph substrate used by
// every routing scheme in this repository: strongly connected digraphs with
// positive integer edge weights, adversarial fixed-port edge labels,
// shortest-path machinery (forward and reverse Dijkstra, all-pairs), and
// Tarjan strong-connectivity checking.
//
// Weights are int64 so that all distance arithmetic — and therefore every
// stretch-bound check in the test suite — is exact. The paper's weight
// model (positive reals in [1, W]) is faithfully represented: any rational
// instance can be scaled to integers without changing shortest paths.
package graph

import (
	"fmt"
	"math"
)

// Dist is an exact (integer) path length. Roundtrip distances, cluster
// radii and stretch-bound checks are all computed in Dist arithmetic.
type Dist = int64

// Inf is the distance between unreachable pairs. It is far below the
// int64 overflow threshold so that Inf+Inf does not wrap.
const Inf Dist = math.MaxInt64 / 4

// NodeID indexes a vertex. In the TINN model the *topological* index used
// by package graph is distinct from the node's *name*; see internal/names.
type NodeID = int32

// PortID is an adversarial local edge label (fixed-port model, §1.1.3 of
// the paper): unique per node among its out-edges, drawn from a set of
// size O(n), with no global consistency.
type PortID = int32

// Edge is a directed edge as seen from its tail.
type Edge struct {
	To     NodeID
	Weight Dist
	Port   PortID
}

// InEdge is a directed edge as seen from its head.
type InEdge struct {
	From   NodeID
	Weight Dist
}

// Graph is a directed graph with positive weights and fixed-port labels.
// The zero value is an empty graph; use New to create one with n nodes.
type Graph struct {
	out [][]Edge
	in  [][]InEdge
	m   int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{
		out: make([][]Edge, n),
		in:  make([][]InEdge, n),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the directed edge (u, v) with weight w. The edge's port
// label defaults to the current out-degree of u; AssignPorts can later
// re-label all ports adversarially. AddEdge rejects self-loops,
// non-positive weights, duplicate edges and out-of-range endpoints.
func (g *Graph) AddEdge(u, v NodeID, w Dist) error {
	n := NodeID(g.N())
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop at %d", u)
	case w <= 0:
		return fmt.Errorf("graph: non-positive weight %d on (%d,%d)", w, u, v)
	case w >= Inf:
		return fmt.Errorf("graph: weight %d on (%d,%d) exceeds Inf", w, u, v)
	}
	for _, e := range g.out[u] {
		if e.To == v {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
		}
	}
	g.out[u] = append(g.out[u], Edge{To: v, Weight: w, Port: PortID(len(g.out[u]))})
	g.in[v] = append(g.in[v], InEdge{From: u, Weight: w})
	g.m++
	return nil
}

// MustAddEdge is AddEdge for construction code where the arguments are
// known valid; it panics on error.
func (g *Graph) MustAddEdge(u, v NodeID, w Dist) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	for _, e := range g.out[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// Out returns the out-edge slice of u. Callers must not modify it.
func (g *Graph) Out(u NodeID) []Edge { return g.out[u] }

// In returns the in-edge slice of u. Callers must not modify it.
func (g *Graph) In(u NodeID) []InEdge { return g.in[u] }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// EdgeByPort returns the out-edge of u labeled with the given port.
// This is the only lookup a forwarding function may use to move a packet:
// routing tables store ports, and the simulator resolves them here.
func (g *Graph) EdgeByPort(u NodeID, port PortID) (Edge, bool) {
	for _, e := range g.out[u] {
		if e.Port == port {
			return e, true
		}
	}
	return Edge{}, false
}

// PortTo returns the port label of the edge (u, v).
func (g *Graph) PortTo(u, v NodeID) (PortID, bool) {
	for _, e := range g.out[u] {
		if e.To == v {
			return e.Port, true
		}
	}
	return 0, false
}

// AssignPorts relabels every node's out-edge ports adversarially: each
// node's ports become distinct values drawn from [0, 4n), permuted with
// the supplied source of randomness, mirroring §1.1.3 ("v may have another
// link called port 200, but this might go to a different vertex").
// intn must behave like (*math/rand.Rand).Intn.
func (g *Graph) AssignPorts(intn func(int) int) {
	space := 4 * g.N()
	if space < 4 {
		space = 4
	}
	for u := range g.out {
		used := make(map[PortID]bool, len(g.out[u]))
		for i := range g.out[u] {
			for {
				p := PortID(intn(space))
				if !used[p] {
					used[p] = true
					g.out[u][i].Port = p
					break
				}
			}
		}
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	for u := range g.out {
		c.out[u] = append([]Edge(nil), g.out[u]...)
		c.in[u] = append([]InEdge(nil), g.in[u]...)
	}
	return c
}

// Reverse returns the graph with every edge direction flipped. Port labels
// on the reversed edges are assigned sequentially.
func (g *Graph) Reverse() *Graph {
	r := New(g.N())
	for u, edges := range g.out {
		for _, e := range edges {
			r.MustAddEdge(e.To, NodeID(u), e.Weight)
		}
	}
	return r
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Dist {
	var s Dist
	for _, edges := range g.out {
		for _, e := range edges {
			s += e.Weight
		}
	}
	return s
}

// MaxWeight returns the largest edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() Dist {
	var w Dist
	for _, edges := range g.out {
		for _, e := range edges {
			if e.Weight > w {
				w = e.Weight
			}
		}
	}
	return w
}
