// Package graph implements the directed weighted graph substrate used by
// every routing scheme in this repository: strongly connected digraphs with
// positive integer edge weights, adversarial fixed-port edge labels,
// shortest-path machinery (forward and reverse Dijkstra, all-pairs, lazy
// per-row oracles), and Tarjan strong-connectivity checking.
//
// Weights are int64 so that all distance arithmetic — and therefore every
// stretch-bound check in the test suite — is exact. The paper's weight
// model (positive reals in [1, W]) is faithfully represented: any rational
// instance can be scaled to integers without changing shortest paths.
//
// Storage model: adjacency is built incrementally as per-node edge slices
// (the only mutable representation), and the first port/pair lookup seals
// a CSR index over it — flat edge arrays with offset tables, per-node
// O(1) port tables (flat dense or open-addressed, with a binary-searched
// sorted order as fallback), and an (u,v)→slot hash — so the per-hop hot
// path (EdgeByPort, PortTo, HasEdge) costs O(1) instead of an
// O(degree) scan. Mutations invalidate the index; it is rebuilt lazily and
// concurrency-safely on the next lookup. Mutating a graph concurrently
// with reads is not safe (like the built-in map); concurrent reads,
// including the ones that trigger sealing, are.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"rtroute/internal/sealed"
)

// Dist is an exact (integer) path length. Roundtrip distances, cluster
// radii and stretch-bound checks are all computed in Dist arithmetic.
type Dist = int64

// Inf is the distance between unreachable pairs. It is far below the
// int64 overflow threshold so that Inf+Inf does not wrap.
const Inf Dist = math.MaxInt64 / 4

// DownWeight marks an administratively down edge in a churning graph.
// A down edge keeps its adjacency slot — so port labels, CSR layout and
// neighbor lists are bit-stable across down/up flaps — but its weight is
// pushed so high that, on a graph that stays strongly connected over the
// live edges, no shortest path (and no shortest-path tie) ever uses it.
// Forwarding layers treat traversing an edge of weight >= DownWeight as
// a routing failure rather than a hop.
const DownWeight Dist = Inf / 2

// NodeID indexes a vertex. In the TINN model the *topological* index used
// by package graph is distinct from the node's *name*; see internal/names.
type NodeID = int32

// PortID is an adversarial local edge label (fixed-port model, §1.1.3 of
// the paper): unique per node among its out-edges, drawn from a set of
// size O(n), with no global consistency.
type PortID = int32

// Edge is a directed edge as seen from its tail.
type Edge struct {
	To     NodeID
	Weight Dist
	Port   PortID
}

// InEdge is a directed edge as seen from its head.
type InEdge struct {
	From   NodeID
	Weight Dist
}

// pairKey packs a directed node pair for the (u,v)→slot hash.
func pairKey(u, v NodeID) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// csrIndex is the sealed lookup index: the adjacency flattened into CSR
// arrays plus O(1) per-node port tables (with a binary-searched sorted
// order as the fallback). It is immutable once published.
type csrIndex struct {
	outStart []int32 // len n+1; out-edges of u are outEdges[outStart[u]:outStart[u+1]]
	outEdges []Edge  // flat copy, same per-node slot order as the build slices
	inStart  []int32
	inEdges  []InEdge
	// portPorts[outStart[u]+i] is the i-th smallest port label at u and
	// portSlot[outStart[u]+i] the slot (index into u's out-edge segment)
	// carrying it: the fallback path binary-searches the segment.
	portPorts []PortID
	portSlot  []int32

	// O(1) port resolution, compiled at seal time. A node whose label
	// span (max-min+1) is close to its degree gets a flat dense table —
	// one array load per hop, the common case for default contiguous
	// labels; every other node with out-edges gets a sealed
	// open-addressed hash (power-of-two segment, linear probing, load
	// factor <= 1/2) so adversarially scattered labels are O(1) expected
	// too. Slot values are stored +1 so that 0 means "no edge".
	denseBase  []PortID // len n: smallest port label at u (dense nodes)
	denseStart []int32  // len n+1, offsets into denseSlot; empty segment = not dense
	denseSlot  []int32  // port - base -> slot+1, 0 = hole
	hashStart  []int32  // len n+1, offsets into hashKey/hashSlot; pow2 segments
	hashKey    []PortID
	hashSlot   []int32 // slot+1, 0 = empty
}

// denseSpanOK reports whether a node with the given degree and port
// label span should be compiled as a flat dense table. The 4x+8 bound
// caps the dense tables' total memory at a small multiple of the edge
// count while still accepting contiguous and lightly gapped labelings.
// The span is computed in int64: extreme labels restored by the graph
// reader can make max-min+1 overflow int32.
func denseSpanOK(span int64, deg int32) bool { return span <= 4*int64(deg)+8 }

// portHash spreads a port label for the open-addressed segments. Unlike
// the non-negative id spaces sealed.Hash serves elsewhere, port labels
// may be any int32, so hash the raw bit pattern the same way.
func portHash(p PortID) uint32 { return sealed.Hash(p) }

// Graph is a directed graph with positive weights and fixed-port labels.
// The zero value is an empty graph; use New to create one with n nodes.
type Graph struct {
	out [][]Edge
	in  [][]InEdge
	m   int
	// pair maps (u,v) to the slot of the edge in out[u]. Maintained
	// eagerly by AddEdge, so HasEdge/PortTo and duplicate detection are
	// O(1) even while the graph is still being built.
	pair map[uint64]int32

	// idx is the sealed CSR index, nil until the first port lookup and
	// after any mutation. sealMu serializes (re)builds.
	idx    atomic.Pointer[csrIndex]
	sealMu sync.Mutex

	// gen counts mutations. Caching layers (LazyOracle, churn
	// maintainers) snapshot it and treat a later mismatch as "every
	// derived row is stale".
	gen atomic.Uint64
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{
		out:  make([][]Edge, n),
		in:   make([][]InEdge, n),
		pair: make(map[uint64]int32),
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of directed edges.
func (g *Graph) M() int { return g.m }

// invalidate drops the sealed index after a mutation.
func (g *Graph) invalidate() {
	g.idx.Store(nil)
	g.gen.Add(1)
}

// Generation returns the mutation counter: any two calls separated by a
// mutation return different values. Derived caches key their contents to
// the generation they were computed under.
func (g *Graph) Generation() uint64 { return g.gen.Load() }

// Seal forces the CSR lookup index to build now instead of on the first
// port lookup. Plane compilation calls it so that the traffic engine's
// workers start against a fully sealed, immutable index rather than
// racing (safely, but serially) to trigger the lazy seal on their first
// hop. Sealing an already-sealed graph is a no-op.
func (g *Graph) Seal() { g.index() }

// index returns the sealed CSR index, building it on first use. Safe for
// concurrent callers; the built index is immutable.
func (g *Graph) index() *csrIndex {
	if idx := g.idx.Load(); idx != nil {
		return idx
	}
	g.sealMu.Lock()
	defer g.sealMu.Unlock()
	if idx := g.idx.Load(); idx != nil {
		return idx
	}
	n := g.N()
	idx := &csrIndex{
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
		outEdges: make([]Edge, 0, g.m),
		inEdges:  make([]InEdge, 0, g.m),
	}
	for u := 0; u < n; u++ {
		idx.outStart[u] = int32(len(idx.outEdges))
		idx.outEdges = append(idx.outEdges, g.out[u]...)
		idx.inStart[u] = int32(len(idx.inEdges))
		idx.inEdges = append(idx.inEdges, g.in[u]...)
	}
	idx.outStart[n] = int32(len(idx.outEdges))
	idx.inStart[n] = int32(len(idx.inEdges))

	idx.portPorts = make([]PortID, len(idx.outEdges))
	idx.portSlot = make([]int32, len(idx.outEdges))
	for u := 0; u < n; u++ {
		lo, hi := idx.outStart[u], idx.outStart[u+1]
		seg := idx.portSlot[lo:hi]
		for i := range seg {
			seg[i] = int32(i)
		}
		edges := idx.outEdges[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return edges[seg[i]].Port < edges[seg[j]].Port })
		for i, s := range seg {
			idx.portPorts[int(lo)+i] = edges[s].Port
		}
	}
	idx.compilePortTables(n)
	g.idx.Store(idx)
	return idx
}

// compilePortTables builds the O(1) port-resolution tables over the
// already-populated CSR arrays.
func (idx *csrIndex) compilePortTables(n int) {
	idx.denseBase = make([]PortID, n)
	idx.denseStart = make([]int32, n+1)
	idx.hashStart = make([]int32, n+1)
	// Size both flat stores in one pass, then fill.
	for u := 0; u < n; u++ {
		idx.denseStart[u+1] = idx.denseStart[u]
		idx.hashStart[u+1] = idx.hashStart[u]
		lo, hi := idx.outStart[u], idx.outStart[u+1]
		deg := hi - lo
		if deg == 0 {
			continue
		}
		minP, maxP := idx.outEdges[lo].Port, idx.outEdges[lo].Port
		for _, e := range idx.outEdges[lo+1 : hi] {
			if e.Port < minP {
				minP = e.Port
			}
			if e.Port > maxP {
				maxP = e.Port
			}
		}
		span := int64(maxP) - int64(minP) + 1
		idx.denseBase[u] = minP
		if denseSpanOK(span, deg) {
			idx.denseStart[u+1] += int32(span)
		} else {
			size := int32(2)
			for size < 2*deg {
				size <<= 1
			}
			idx.hashStart[u+1] += size
		}
	}
	idx.denseSlot = make([]int32, idx.denseStart[n])
	idx.hashKey = make([]PortID, idx.hashStart[n])
	idx.hashSlot = make([]int32, idx.hashStart[n])
	for u := 0; u < n; u++ {
		lo, hi := idx.outStart[u], idx.outStart[u+1]
		if ds, de := idx.denseStart[u], idx.denseStart[u+1]; de > ds {
			base := int32(idx.denseBase[u])
			for slot := lo; slot < hi; slot++ {
				idx.denseSlot[ds+int32(idx.outEdges[slot].Port)-base] = slot - lo + 1
			}
			continue
		}
		hs, he := idx.hashStart[u], idx.hashStart[u+1]
		if he == hs {
			continue
		}
		mask := uint32(he-hs) - 1
		for slot := lo; slot < hi; slot++ {
			p := idx.outEdges[slot].Port
			i := portHash(p) & mask
			for idx.hashSlot[hs+int32(i)] != 0 {
				i = (i + 1) & mask
			}
			idx.hashKey[hs+int32(i)] = p
			idx.hashSlot[hs+int32(i)] = slot - lo + 1
		}
	}
}

// edgeByPort resolves (u, port) against the sealed tables: dense, then
// hashed, then the binary-search fallback.
func (idx *csrIndex) edgeByPort(u NodeID, port PortID) (Edge, bool) {
	lo := idx.outStart[u]
	if ds, de := idx.denseStart[u], idx.denseStart[u+1]; de > ds {
		off := int32(port) - int32(idx.denseBase[u])
		if off < 0 || off >= de-ds {
			return Edge{}, false
		}
		s := idx.denseSlot[ds+off]
		if s == 0 {
			return Edge{}, false
		}
		return idx.outEdges[lo+s-1], true
	}
	if hs, he := idx.hashStart[u], idx.hashStart[u+1]; he > hs {
		mask := uint32(he-hs) - 1
		for i := portHash(port) & mask; ; i = (i + 1) & mask {
			s := idx.hashSlot[hs+int32(i)]
			if s == 0 {
				return Edge{}, false
			}
			if idx.hashKey[hs+int32(i)] == port {
				return idx.outEdges[lo+s-1], true
			}
		}
	}
	return idx.edgeByPortBinary(u, port)
}

// edgeByPortBinary is the pre-compilation lookup: binary search over the
// node's port-sorted slot order. Kept as the fallback for nodes without a
// compiled table and as the reference the property tests compare the O(1)
// tables against.
func (idx *csrIndex) edgeByPortBinary(u NodeID, port PortID) (Edge, bool) {
	lo, hi := int(idx.outStart[u]), int(idx.outStart[u+1])
	ports := idx.portPorts[lo:hi]
	i := sort.Search(len(ports), func(i int) bool { return ports[i] >= port })
	if i < len(ports) && ports[i] == port {
		return idx.outEdges[lo+int(idx.portSlot[lo+i])], true
	}
	return Edge{}, false
}

// PortTable is an immutable snapshot of a sealed graph's port-resolution
// index. Hot forwarding loops take one per run so every hop is a direct
// table lookup with no per-hop atomic index load. Taking a PortTable
// seals the graph; mutations made afterwards are not reflected in the
// snapshot (the next PortTable call returns the rebuilt index).
type PortTable struct{ idx *csrIndex }

// PortTable returns the sealed port-resolution snapshot, building the
// index if needed.
func (g *Graph) PortTable() PortTable { return PortTable{idx: g.index()} }

// EdgeByPort returns the out-edge of u labeled with the given port in
// O(1) (dense or hashed table; binary-search fallback).
func (t PortTable) EdgeByPort(u NodeID, port PortID) (Edge, bool) {
	return t.idx.edgeByPort(u, port)
}

// AddEdge inserts the directed edge (u, v) with weight w. The edge's port
// label defaults to the current out-degree of u; AssignPorts can later
// re-label all ports adversarially. AddEdge rejects self-loops,
// non-positive weights, duplicate edges and out-of-range endpoints.
func (g *Graph) AddEdge(u, v NodeID, w Dist) error {
	n := NodeID(g.N())
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop at %d", u)
	case w <= 0:
		return fmt.Errorf("graph: non-positive weight %d on (%d,%d)", w, u, v)
	case w >= Inf:
		return fmt.Errorf("graph: weight %d on (%d,%d) exceeds Inf", w, u, v)
	}
	if _, dup := g.pair[pairKey(u, v)]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.pair[pairKey(u, v)] = int32(len(g.out[u]))
	g.out[u] = append(g.out[u], Edge{To: v, Weight: w, Port: PortID(len(g.out[u]))})
	g.in[v] = append(g.in[v], InEdge{From: u, Weight: w})
	g.m++
	g.invalidate()
	return nil
}

// AddEdgePort inserts the edge with an explicit port label — the
// snapshot-restore path (graph.Read, the wire codec). The label is
// restored verbatim; callers loading untrusted input should finish with
// ValidatePorts, which rejects per-node duplicates.
func (g *Graph) AddEdgePort(u, v NodeID, w Dist, port PortID) error {
	if err := g.AddEdge(u, v, w); err != nil {
		return err
	}
	g.setPort(u, len(g.out[u])-1, port)
	return nil
}

// ValidatePorts reports the first duplicate per-node out-port label, if
// any — the invariant EdgeByPort resolution relies on.
func (g *Graph) ValidatePorts() error {
	for u := range g.out {
		seen := make(map[PortID]bool, len(g.out[u]))
		for _, e := range g.out[u] {
			if seen[e.Port] {
				return fmt.Errorf("graph: node %d has duplicate port %d", u, e.Port)
			}
			seen[e.Port] = true
		}
	}
	return nil
}

// MustAddEdge is AddEdge for construction code where the arguments are
// known valid; it panics on error.
func (g *Graph) MustAddEdge(u, v NodeID, w Dist) {
	if err := g.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// SetEdgeWeight changes the weight of the existing edge (u, v) in place,
// preserving its port label and adjacency slot — the churn-plane mutation:
// weight perturbation uses ordinary weights, edge down/up toggles between
// the real weight and DownWeight. Weights up to and including DownWeight
// are accepted (unlike AddEdge, which rejects anything that high).
func (g *Graph) SetEdgeWeight(u, v NodeID, w Dist) error {
	slot, ok := g.pair[pairKey(u, v)]
	if !ok {
		return fmt.Errorf("graph: no edge (%d,%d) to reweight", u, v)
	}
	if w <= 0 || w > DownWeight {
		return fmt.Errorf("graph: weight %d on (%d,%d) outside (0, DownWeight]", w, u, v)
	}
	g.out[u][slot].Weight = w
	for i := range g.in[v] {
		if g.in[v][i].From == u {
			g.in[v][i].Weight = w
			break
		}
	}
	g.invalidate()
	return nil
}

// EdgeWeight returns the weight of the edge (u, v), if present.
func (g *Graph) EdgeWeight(u, v NodeID) (Dist, bool) {
	slot, ok := g.pair[pairKey(u, v)]
	if !ok {
		return 0, false
	}
	return g.out[u][slot].Weight, true
}

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.pair[pairKey(u, v)]
	return ok
}

// Out returns the out-edge slice of u. Callers must not modify it. When
// the graph is sealed the slice aliases the flat CSR array, so iterating
// adjacent nodes walks contiguous memory.
func (g *Graph) Out(u NodeID) []Edge {
	if idx := g.idx.Load(); idx != nil {
		return idx.outEdges[idx.outStart[u]:idx.outStart[u+1]]
	}
	return g.out[u]
}

// In returns the in-edge slice of u. Callers must not modify it.
func (g *Graph) In(u NodeID) []InEdge {
	if idx := g.idx.Load(); idx != nil {
		return idx.inEdges[idx.inStart[u]:idx.inStart[u+1]]
	}
	return g.in[u]
}

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u NodeID) int { return len(g.out[u]) }

// EdgeByPort returns the out-edge of u labeled with the given port.
// This is the only lookup a forwarding function may use to move a packet:
// routing tables store ports, and the simulator resolves them here. On a
// sealed graph it is O(1): one array load for dense labelings, an
// open-addressed probe for scattered ones. Loops that resolve many ports
// should hoist g.PortTable() and query that instead.
func (g *Graph) EdgeByPort(u NodeID, port PortID) (Edge, bool) {
	return g.index().edgeByPort(u, port)
}

// PortTo returns the port label of the edge (u, v) in O(1).
func (g *Graph) PortTo(u, v NodeID) (PortID, bool) {
	slot, ok := g.pair[pairKey(u, v)]
	if !ok {
		return 0, false
	}
	return g.out[u][slot].Port, true
}

// setPort relabels the port of the edge in the given slot of u's
// out-edge list, invalidating the sealed index. Internal mutation hook
// for AssignPorts and the graph reader.
func (g *Graph) setPort(u NodeID, slot int, port PortID) {
	g.out[u][slot].Port = port
	g.invalidate()
}

// AssignPorts relabels every node's out-edge ports adversarially: each
// node's ports become distinct values drawn from [0, 4n), permuted with
// the supplied source of randomness, mirroring §1.1.3 ("v may have another
// link called port 200, but this might go to a different vertex").
// intn must behave like (*math/rand.Rand).Intn.
func (g *Graph) AssignPorts(intn func(int) int) {
	space := 4 * g.N()
	if space < 4 {
		space = 4
	}
	for u := range g.out {
		used := make(map[PortID]bool, len(g.out[u]))
		for i := range g.out[u] {
			for {
				p := PortID(intn(space))
				if !used[p] {
					used[p] = true
					g.out[u][i].Port = p
					break
				}
			}
		}
	}
	g.invalidate()
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.m = g.m
	for u := range g.out {
		c.out[u] = append([]Edge(nil), g.out[u]...)
		c.in[u] = append([]InEdge(nil), g.in[u]...)
	}
	for k, v := range g.pair {
		c.pair[k] = v
	}
	return c
}

// Reverse returns the graph with every edge direction flipped. Each
// reversed edge (v,u) keeps the port label of the original edge (u,v)
// whenever that label is still free among v's reversed out-edges;
// colliding labels fall back to the smallest unused non-negative value.
// Reversing twice therefore preserves most port labels, but callers that
// need specific labels after a Reverse should call AssignPorts (or check
// PortTo) rather than assume preservation.
func (g *Graph) Reverse() *Graph {
	r := New(g.N())
	used := make([]map[PortID]bool, g.N())
	for u := range used {
		used[u] = make(map[PortID]bool)
	}
	var collided []NodeID // heads (in r) that need fallback labels, in edge order
	var colSlot []int32
	for u, edges := range g.out {
		for _, e := range edges {
			r.MustAddEdge(e.To, NodeID(u), e.Weight)
			slot := int32(len(r.out[e.To]) - 1)
			if !used[e.To][e.Port] {
				used[e.To][e.Port] = true
				r.out[e.To][slot].Port = e.Port
			} else {
				collided = append(collided, e.To)
				colSlot = append(colSlot, slot)
			}
		}
	}
	for i, v := range collided {
		p := PortID(0)
		for used[v][p] {
			p++
		}
		used[v][p] = true
		r.out[v][colSlot[i]].Port = p
	}
	r.invalidate()
	return r
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() Dist {
	var s Dist
	for _, edges := range g.out {
		for _, e := range edges {
			s += e.Weight
		}
	}
	return s
}

// MaxWeight returns the largest edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() Dist {
	var w Dist
	for _, edges := range g.out {
		for _, e := range edges {
			if e.Weight > w {
				w = e.Weight
			}
		}
	}
	return w
}
