package graph_test

import (
	"fmt"

	"rtroute/internal/graph"
)

// Example builds a tiny weighted digraph by hand and queries shortest
// and roundtrip distances through the two oracle implementations —
// dense (the n×n matrix) and lazy (rows on demand behind a bounded
// cache) — which always agree.
func Example() {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 2) // ports are assigned in insertion order
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 0, 4)

	dense := graph.AllPairs(g)
	lazy := graph.NewLazyOracle(g, 2)
	fmt.Println("d(0,2) =", dense.D(0, 2), lazy.D(0, 2))
	fmt.Println("r(0,2) =", dense.R(0, 2), lazy.R(0, 2)) // roundtrip: 0->2->0
	// Output:
	// d(0,2) = 5 5
	// r(0,2) = 9 9
}

// ExampleDijkstra runs one single-source shortest-path pass.
func ExampleDijkstra() {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	g.MustAddEdge(2, 3, 1)
	res := graph.Dijkstra(g, 0)
	fmt.Println(res.Dist[2], res.Dist[3])
	// Output:
	// 2 3
}
