package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomSC(40, 160, 12, rng)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		a, b := g.Out(NodeID(u)), back.Out(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d: %+v vs %+v", u, i, a[i], b[i])
			}
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := `# a comment
rtroute-graph v1

n 3
# another comment
e 0 1 5 7
e 1 2 2 0
e 2 0 1 3
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("got %d nodes %d edges", g.N(), g.M())
	}
	p, ok := g.PortTo(0, 1)
	if !ok || p != 7 {
		t.Fatalf("port(0,1) = %d, %v; want 7", p, ok)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad header", "nonsense v9\nn 2\n"},
		{"missing n", "rtroute-graph v1\n"},
		{"bad n", "rtroute-graph v1\nn x\n"},
		{"negative n", "rtroute-graph v1\nn -4\n"},
		{"bad edge", "rtroute-graph v1\nn 2\ne 0 zebra 1 0\n"},
		{"self loop", "rtroute-graph v1\nn 2\ne 0 0 1 0\n"},
		{"zero weight", "rtroute-graph v1\nn 2\ne 0 1 0 0\n"},
		{"out of range", "rtroute-graph v1\nn 2\ne 0 5 1 0\n"},
		{"dup port", "rtroute-graph v1\nn 3\ne 0 1 1 9\ne 0 2 1 9\n"},
		{"dup edge", "rtroute-graph v1\nn 2\ne 0 1 1 0\ne 0 1 2 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("malformed input accepted: %q", tc.in)
			}
		})
	}
}

func TestDOTOutput(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 4)
	dot := g.DOT("toy")
	for _, want := range []string{"digraph toy", "0 -> 1", "label=4"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestAllPairsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomSC(80, 320, 9, rng)
	seq := AllPairs(g)
	for _, workers := range []int{0, 1, 2, 7, 100} {
		par := AllPairsParallel(g, workers)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if seq.D(NodeID(u), NodeID(v)) != par.D(NodeID(u), NodeID(v)) {
					t.Fatalf("workers=%d: d(%d,%d) differs", workers, u, v)
				}
			}
		}
	}
}
