package graph

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultLazyCacheRows is the row budget NewLazyOracle uses when the
// caller passes cacheRows <= 0: enough to keep every scheme-construction
// phase streaming without recomputation on mid-size graphs, while holding
// peak oracle memory to cacheRows·n words instead of n^2.
const DefaultLazyCacheRows = 256

// LazyOracle is a DistanceOracle that computes single-source distance
// rows on demand — a forward Dijkstra for FromSource, a reverse Dijkstra
// for ToSink — and retains up to a fixed number of completed rows in an
// LRU cache. It never materializes the n×n matrix, so schemes built over
// it scale to graphs where the dense metric cannot be allocated.
//
// The oracle is safe for concurrent use: concurrent requests for the same
// row share one Dijkstra (the losers block until the winner publishes),
// and rows already cached are returned without recomputation. Rows handed
// out remain valid after eviction (eviction only drops the cache's
// reference); callers must treat them as read-only.
//
// The oracle snapshots nothing: it runs Dijkstra over the live graph.
// Mutating the graph between queries is safe: every query checks the
// graph's mutation generation and flushes rows computed under an older
// one, so a cached row never outlives the topology it was measured on.
// (Mutating concurrently with in-flight queries remains unsafe, exactly
// as for the graph itself; a reader racing a mutation may observe the
// pre-mutation row once, never a torn one.)
type LazyOracle struct {
	g        *Graph
	capacity int

	mu    sync.Mutex
	rows  map[rowKey]*rowEntry
	lru   list.List // front = most recently used; values are *rowEntry
	gen   uint64    // graph generation the cached rows were computed under
	stats LazyStats
}

type rowKey struct {
	node NodeID
	rev  bool
}

type rowEntry struct {
	key   rowKey
	elem  *list.Element
	ready chan struct{} // closed once dist is published
	dist  []Dist
}

// computed reports whether the entry's row has been published (its ready
// channel closed). Non-blocking.
func (e *rowEntry) computed() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// LazyStats reports cache behavior for tests and benchmarks.
type LazyStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Invalidations counts whole-cache flushes triggered by graph
	// mutations (generation mismatches observed at query time).
	Invalidations uint64
	// PeakRows is the largest number of rows ever resident at once,
	// counting rows still being computed; peak oracle memory is about
	// PeakRows * n * 8 bytes. It can exceed the capacity by the number
	// of concurrent computations in flight (in-flight rows are never
	// evicted), but never under single-threaded use.
	PeakRows int
}

// NewLazyOracle creates a lazy oracle over g holding at most cacheRows
// completed rows (forward and reverse rows count separately).
// cacheRows <= 0 selects DefaultLazyCacheRows; the cap is clamped to at
// least 2 so that a roundtrip query (one forward plus one reverse row of
// the same node) never evicts its own working set.
func NewLazyOracle(g *Graph, cacheRows int) *LazyOracle {
	if cacheRows <= 0 {
		cacheRows = DefaultLazyCacheRows
	}
	if cacheRows < 2 {
		cacheRows = 2
	}
	return &LazyOracle{
		g:        g,
		capacity: cacheRows,
		rows:     make(map[rowKey]*rowEntry),
	}
}

// N implements DistanceOracle.
func (o *LazyOracle) N() int { return o.g.N() }

// Capacity returns the maximum number of cached rows.
func (o *LazyOracle) Capacity() int { return o.capacity }

// Stats returns a snapshot of cache counters.
func (o *LazyOracle) Stats() LazyStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// row returns the requested distance row, computing it at most once per
// residency. The double-checked entry protocol: under the lock we either
// find an entry (hit — possibly still being computed by another
// goroutine) or insert a placeholder and become its computer; the
// Dijkstra itself runs outside the lock.
func (o *LazyOracle) row(key rowKey) []Dist {
	o.mu.Lock()
	// Generation check: rows cached under an older graph generation are
	// stale — drop the whole cache before serving. In-flight entries are
	// unlinked too (their computation finishes and feeds earlier waiters,
	// but no later request can hit them).
	if gen := o.g.Generation(); gen != o.gen {
		if o.lru.Len() > 0 {
			o.stats.Invalidations++
		}
		o.rows = make(map[rowKey]*rowEntry)
		o.lru.Init()
		o.gen = gen
	}
	if e, ok := o.rows[key]; ok {
		o.lru.MoveToFront(e.elem)
		o.stats.Hits++
		o.mu.Unlock()
		<-e.ready
		return e.dist
	}
	e := &rowEntry{key: key, ready: make(chan struct{})}
	e.elem = o.lru.PushFront(e)
	o.rows[key] = e
	o.stats.Misses++
	// Evict from the cold end, skipping rows whose computation is still
	// in flight: evicting those would break single-flight dedup (a
	// re-request would start a duplicate Dijkstra) and hide their memory
	// from PeakRows. Under contention the cache may therefore briefly
	// hold capacity + in-flight rows; PeakRows reports that honestly.
	for el := o.lru.Back(); el != nil && o.lru.Len() > o.capacity; {
		victim := el.Value.(*rowEntry)
		prev := el.Prev()
		if victim != e && victim.computed() {
			o.lru.Remove(el)
			delete(o.rows, victim.key)
			o.stats.Evictions++
		}
		el = prev
	}
	if o.lru.Len() > o.stats.PeakRows {
		o.stats.PeakRows = o.lru.Len()
	}
	o.mu.Unlock()

	// Pooled scratch: the only allocation a row fill retains is the
	// cached row itself.
	s := getScratch()
	var r SSSP
	if key.rev {
		r = s.DijkstraRev(o.g, key.node)
	} else {
		r = s.Dijkstra(o.g, key.node)
	}
	e.dist = append([]Dist(nil), r.Dist...)
	putScratch(s)
	close(e.ready)
	return e.dist
}

// FromSource implements DistanceOracle: d(u, ·) via one forward Dijkstra.
func (o *LazyOracle) FromSource(u NodeID) []Dist {
	o.check(u)
	return o.row(rowKey{node: u})
}

// ToSink implements DistanceOracle: d(·, v) via one reverse Dijkstra.
func (o *LazyOracle) ToSink(v NodeID) []Dist {
	o.check(v)
	return o.row(rowKey{node: v, rev: true})
}

// D implements DistanceOracle.
func (o *LazyOracle) D(u, v NodeID) Dist { return o.FromSource(u)[v] }

// R implements DistanceOracle. Both directions come from rows anchored at
// u (forward row and reverse row), so any fixed-u scan stays within two
// cached rows.
func (o *LazyOracle) R(u, v NodeID) Dist {
	duv := o.FromSource(u)[v]
	dvu := o.ToSink(u)[v]
	if duv >= Inf || dvu >= Inf {
		return Inf
	}
	return duv + dvu
}

func (o *LazyOracle) check(u NodeID) {
	if u < 0 || int(u) >= o.g.N() {
		panic(fmt.Sprintf("graph: lazy oracle query for node %d outside [0,%d)", u, o.g.N()))
	}
}
