package graph

import (
	"math/rand"
	"testing"
)

func TestRandomSCDeterministic(t *testing.T) {
	g1 := RandomSC(30, 60, 10, rand.New(rand.NewSource(5)))
	g2 := RandomSC(30, 60, 10, rand.New(rand.NewSource(5)))
	if g1.M() != g2.M() {
		t.Fatalf("same seed produced different edge counts: %d vs %d", g1.M(), g2.M())
	}
	for u := 0; u < g1.N(); u++ {
		e1, e2 := g1.Out(NodeID(u)), g2.Out(NodeID(u))
		if len(e1) != len(e2) {
			t.Fatalf("node %d degree differs", u)
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", u, i, e1[i], e2[i])
			}
		}
	}
}

func TestRandomSCEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := RandomSC(50, 75, 10, rng)
	if g.M() != 50+75 {
		t.Fatalf("M = %d, want %d", g.M(), 125)
	}
}

func TestRandomSCWeightsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomSC(40, 100, 17, rng)
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Out(NodeID(u)) {
			if e.Weight < 1 || e.Weight > 17 {
				t.Fatalf("weight %d outside [1,17]", e.Weight)
			}
		}
	}
}

func TestBidirectSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := RandomSC(30, 60, 5, rng)
	b := Bidirect(g)
	for u := 0; u < b.N(); u++ {
		for _, e := range b.Out(NodeID(u)) {
			w, ok := b.PortTo(e.To, NodeID(u))
			_ = w
			if !ok {
				t.Fatalf("bidirected graph missing reverse of (%d,%d)", u, e.To)
			}
		}
	}
	m := AllPairs(b)
	for u := 0; u < b.N(); u++ {
		for v := 0; v < b.N(); v++ {
			if m.D(NodeID(u), NodeID(v)) != m.D(NodeID(v), NodeID(u)) {
				t.Fatalf("Bidirect distances asymmetric at (%d,%d)", u, v)
			}
		}
	}
}

func TestGeneratorPanicsOnBadInput(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"RandomSC n=1", func() { RandomSC(1, 0, 1, rand.New(rand.NewSource(1))) }},
		{"Ring n=1", func() { Ring(1, nil) }},
		{"Grid 1x1", func() { Grid(1, 1, nil) }},
		{"LayeredSC layers=1", func() { LayeredSC(1, 3, 1, rand.New(rand.NewSource(1))) }},
		{"Complete n=1", func() { Complete(1, 1, rand.New(rand.NewSource(1))) }},
		{"New negative", func() { New(-1) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestLayeredAsymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := LayeredSC(6, 4, 3, rng)
	m := AllPairs(g)
	// In a layered graph, going "forward" is much cheaper than coming
	// back; check at least one pair is strongly asymmetric.
	asym := false
	for u := 0; u < g.N() && !asym; u++ {
		for v := 0; v < g.N(); v++ {
			duv, dvu := m.D(NodeID(u), NodeID(v)), m.D(NodeID(v), NodeID(u))
			if duv > 0 && dvu > 3*duv {
				asym = true
				break
			}
		}
	}
	if !asym {
		t.Fatal("layered graph shows no forward/backward asymmetry")
	}
}
