package graph

import (
	"runtime"
	"sync"
)

// AllPairsParallel computes the same metric as AllPairs using a worker
// pool — the all-pairs pass dominates preprocessing, and the per-source
// Dijkstras are embarrassingly parallel. workers <= 0 selects GOMAXPROCS.
func AllPairsParallel(g *Graph, workers int) *Metric {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return AllPairsSequential(g)
	}
	m := &Metric{n: n, d: make([][]Dist, n)}
	var wg sync.WaitGroup
	src := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker: every row after the first is a
			// zero-allocation Dijkstra plus one owned-row copy.
			s := NewSSSPScratch(n)
			for u := range src {
				m.d[u] = append([]Dist(nil), s.Dijkstra(g, NodeID(u)).Dist...)
			}
		}()
	}
	for u := 0; u < n; u++ {
		src <- u
	}
	close(src)
	wg.Wait()
	return m
}
