package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo serializes g in the textual exchange format:
//
//	rtroute-graph v1
//	n <nodes>
//	e <from> <to> <weight> <port>
//
// one edge per line, deterministic order (by tail node, then edge slot).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	count := func(n int, err error) error {
		total += int64(n)
		return err
	}
	if err := count(fmt.Fprintf(bw, "rtroute-graph v1\nn %d\n", g.N())); err != nil {
		return total, err
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.out[u] {
			if err := count(fmt.Fprintf(bw, "e %d %d %d %d\n", u, e.To, e.Weight, e.Port)); err != nil {
				return total, err
			}
		}
	}
	return total, bw.Flush()
}

// Read parses the WriteTo format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" && !strings.HasPrefix(s, "#") {
				return s, true
			}
		}
		return "", false
	}

	header, ok := next()
	if !ok || header != "rtroute-graph v1" {
		return nil, fmt.Errorf("graph: bad header %q at line %d", header, line)
	}
	sizeLine, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: missing node count")
	}
	var n int
	if _, err := fmt.Sscanf(sizeLine, "n %d", &n); err != nil {
		return nil, fmt.Errorf("graph: bad node count %q at line %d: %w", sizeLine, line, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	g := New(n)
	for {
		edgeLine, ok := next()
		if !ok {
			break
		}
		var u, v NodeID
		var w Dist
		var port PortID
		if _, err := fmt.Sscanf(edgeLine, "e %d %d %d %d", &u, &v, &w, &port); err != nil {
			return nil, fmt.Errorf("graph: bad edge %q at line %d: %w", edgeLine, line, err)
		}
		if err := g.AddEdgePort(u, v, w, port); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Reject duplicate port labels that a hand-edited file might carry.
	if err := g.ValidatePorts(); err != nil {
		return nil, err
	}
	return g, nil
}

// DOT renders the graph in Graphviz format, weights as labels. Intended
// for eyeballing small instances.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for u := 0; u < g.N(); u++ {
		for _, e := range g.out[u] {
			fmt.Fprintf(&b, "  %d -> %d [label=%d];\n", u, e.To, e.Weight)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
