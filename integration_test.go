package rtroute

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSchemeFamilyMatrix routes sampled pairs for every scheme on every
// graph family and asserts each scheme's worst-case bound. This is the
// repository's broadest integration sweep: TINN naming, adversarial
// ports, simulator-only forwarding, exact bound checks.
func TestSchemeFamilyMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	families := []struct {
		name string
		g    *Graph
	}{
		{"random", RandomSC(40, 160, 8, rng)},
		{"gnp", RandomGNP(36, 0.12, 6, rng)},
		{"ring", Ring(24, rng)},
		{"grid", Grid(5, 5, rng)},
		{"scalefree", ScaleFreeSC(40, 2, 5, rng)},
		{"layered", LayeredSC(5, 6, 5, rng)},
		{"complete", Complete(16, 9, rng)},
		{"bidirected", mustAssignPorts(Bidirect(RandomSC(24, 72, 4, rng)), rng)},
	}

	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			sys, err := NewSystem(fam.g, RandomNaming(fam.g.N(), rng))
			if err != nil {
				t.Fatal(err)
			}
			schemes := []struct {
				name  string
				bound float64
				sch   Scheme
			}{}
			s6, err := sys.BuildStretchSix(1)
			if err != nil {
				t.Fatalf("stretch6: %v", err)
			}
			schemes = append(schemes, struct {
				name  string
				bound float64
				sch   Scheme
			}{"stretch6", 6, s6})
			ex, err := sys.BuildExStretch(2, 2)
			if err != nil {
				t.Fatalf("exstretch: %v", err)
			}
			// ExStretch bound with our substrate: (2^2-1) legs, each
			// within 2*(2k-1)*scale where scale < 2*2^ceil(log r)...
			// use the conservative derived cap (2^k-1)*2*(2k-1)*2 = 36.
			schemes = append(schemes, struct {
				name  string
				bound float64
				sch   Scheme
			}{"exstretch-k2", 36, ex})
			poly, err := sys.BuildPolynomial(2)
			if err != nil {
				t.Fatalf("poly: %v", err)
			}
			schemes = append(schemes, struct {
				name  string
				bound float64
				sch   Scheme
			}{"poly-k2", 36, poly})

			for _, entry := range schemes {
				stats, err := MeasureScheme(sys, entry.sch, 600, 3)
				if err != nil {
					t.Fatalf("%s on %s: %v", entry.name, fam.name, err)
				}
				if stats.Max > entry.bound {
					t.Fatalf("%s on %s: measured max stretch %.3f > bound %.0f",
						entry.name, fam.name, stats.Max, entry.bound)
				}
				if stats.Mean < 1 {
					t.Fatalf("%s on %s: mean %.3f below 1", entry.name, fam.name, stats.Mean)
				}
			}
		})
	}
}

func mustAssignPorts(g *Graph, rng *rand.Rand) *Graph {
	g.AssignPorts(rng.Intn)
	return g
}

// TestConcurrentRoundtrips drives many goroutines through one built
// scheme: tables are read-only after construction and headers are
// per-packet, so concurrent routing must be race-free (run with -race).
func TestConcurrentRoundtrips(t *testing.T) {
	sys := newTestSystem(t, 77, 48)
	schemes := make([]Scheme, 0, 3)
	s6, err := sys.BuildStretchSix(1)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := sys.BuildExStretch(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	poly, err := sys.BuildPolynomial(2)
	if err != nil {
		t.Fatal(err)
	}
	schemes = append(schemes, s6, ex, poly)

	for _, sch := range schemes {
		sch := sch
		t.Run(sch.SchemeName(), func(t *testing.T) {
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 50; i++ {
						u := int32(rng.Intn(48))
						v := int32(rng.Intn(48))
						if u == v {
							continue
						}
						tr, err := sch.Roundtrip(u, v)
						if err != nil {
							errs <- fmt.Errorf("goroutine %d: %w", seed, err)
							return
						}
						if st := sys.Stretch(u, v, tr); st < 1 {
							errs <- fmt.Errorf("goroutine %d: stretch %f < 1", seed, st)
							return
						}
					}
				}(int64(w))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestMinimalNetworks exercises the smallest legal systems.
func TestMinimalNetworks(t *testing.T) {
	// Two nodes, two edges: the minimum strongly connected digraph.
	g := NewGraph(2)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 0, 5)
	sys, err := NewSystem(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	s6, err := sys.BuildStretchSix(1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s6.Roundtrip(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Weight() != 8 {
		t.Fatalf("2-node roundtrip weight %d, want 8 (it is the only cycle)", tr.Weight())
	}
	ex, err := sys.BuildExStretch(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr, err = ex.Roundtrip(1, 0); err != nil || tr.Weight() != 8 {
		t.Fatalf("exstretch 2-node roundtrip: %d, %v", tr.Weight(), err)
	}
	poly, err := sys.BuildPolynomial(2)
	if err != nil {
		t.Fatal(err)
	}
	if tr, err = poly.Roundtrip(0, 1); err != nil || tr.Weight() != 8 {
		t.Fatalf("poly 2-node roundtrip: %d, %v", tr.Weight(), err)
	}
}

// TestDeterministicBuilds: same seeds, same graph -> identical measured
// behavior across two independently built systems.
func TestDeterministicBuilds(t *testing.T) {
	build := func() (*System, Scheme) {
		rng := rand.New(rand.NewSource(5))
		g := RandomSC(30, 120, 6, rng)
		sys, err := NewSystem(g, RandomNaming(30, rng))
		if err != nil {
			t.Fatal(err)
		}
		s6, err := sys.BuildStretchSix(9)
		if err != nil {
			t.Fatal(err)
		}
		return sys, s6
	}
	sysA, schA := build()
	_, schB := build()
	for u := int32(0); u < 30; u += 3 {
		for v := int32(1); v < 30; v += 4 {
			if u == v {
				continue
			}
			a, err := schA.Roundtrip(u, v)
			if err != nil {
				t.Fatal(err)
			}
			b, err := schB.Roundtrip(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if a.Weight() != b.Weight() || a.Hops() != b.Hops() {
				t.Fatalf("nondeterministic build: (%d,%d) gives %d/%d vs %d/%d",
					u, v, a.Weight(), a.Hops(), b.Weight(), b.Hops())
			}
		}
	}
	_ = sysA
}
